(* pops — command-line driver for the POPS library.

   Subcommands mirror the tool flow of the paper:
     pops tmin       — delay bounds of a path (Section 3.1)
     pops size       — constant-sensitivity sizing to a constraint (3.2)
     pops flimit     — library characterisation (4.1, Table 2)
     pops protocol   — the full optimization protocol (Fig. 7)
     pops curve      — delay/area trade-off sweep (Fig. 6)
     pops circuit    — inspect a benchmark circuit (netlist, STA, power)
     pops simulate   — transient-simulate a sized path (HSPICE stand-in)
     pops flow       — netlist-level timing closure (Path Selection)
     pops bench-file — analyze / optimize an ISCAS .bench netlist file

   Paths come either from a benchmark circuit's critical spine
   (--circuit c432) or from an explicit gate list
   (--gates inv,nand2,inv --cout 60 --branch 5). *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Library = Pops_cell.Library
module Path = Pops_delay.Path
module Netlist = Pops_netlist.Netlist
module Paths = Pops_sta.Paths
module Timing = Pops_sta.Timing
module NPower = Pops_sta.Power
module Transient = Pops_spice.Transient
module Bounds = Pops_core.Bounds
module Sens = Pops_core.Sensitivity
module Buffers = Pops_core.Buffers
module Domains = Pops_core.Domains
module Tradeoff = Pops_core.Tradeoff
module Protocol = Pops_core.Protocol
module Power = Pops_core.Power
module Profiles = Pops_circuits.Profiles
module Table = Pops_util.Table
module Diag = Pops_robust.Diag
module Outcome = Pops_robust.Outcome

open Cmdliner

let tech = Tech.cmos025
let lib = Library.make tech

(* ------------------------------------------------------------------ *)
(* exit codes and diagnostics                                          *)
(* ------------------------------------------------------------------ *)

(* the documented contract (docs/robustness.md): 0 = success (possibly
   degraded), 1 = constraint unmet, 2 = invalid input, 3 = internal
   error.  Never a raw backtrace. *)
let exit_unmet = 1
let exit_invalid = 2
let exit_internal = 3

let exit_code_of_diag d =
  match Diag.classify d.Diag.code with
  | `Invalid_input -> exit_invalid
  | `Constraint -> exit_unmet
  | `Degradation -> 0
  | `Internal -> exit_internal

(* flush stdout first so diagnostics land after the output they follow
   when both streams go to the same terminal or cram capture *)
let report_diag d =
  flush stdout;
  prerr_endline ("pops: " ^ Diag.one_line d)

let report_degradations diags =
  List.iter
    (fun d -> if d.Diag.severity <> Diag.Info then report_diag d)
    diags

(* every command body runs under this guard: a typed diagnostic maps to
   its documented exit code, anything else is an internal error (3) *)
let guard f =
  match f () with
  | code -> code
  | exception Diag.Fatal d ->
    report_diag d;
    exit_code_of_diag d
  | exception e ->
    prerr_endline ("pops: internal error: " ^ Printexc.to_string e);
    exit_internal

(* ------------------------------------------------------------------ *)
(* path acquisition                                                    *)
(* ------------------------------------------------------------------ *)

let parse_kinds s =
  let names = String.split_on_char ',' s |> List.map String.trim in
  let kinds = List.map Gk.of_name names in
  if List.exists Option.is_none kinds then
    Error
      (Printf.sprintf "unknown gate in %S (known: %s)" s
         (String.concat ", " (List.map Gk.name Gk.all)))
  else Ok (List.map Option.get kinds)

let path_of_spec ~circuit ~gates ~cout ~branch =
  match (circuit, gates) with
  | Some name, None -> (
    match Profiles.find name with
    | None ->
      Error
        (Printf.sprintf "unknown circuit %S (known: %s)" name
           (String.concat ", " (List.map (fun p -> p.Profiles.name) Profiles.all)))
    | Some p ->
      let nl, spine = Profiles.circuit tech p in
      Ok ((Paths.extract ~lib nl spine).Paths.path, Printf.sprintf "critical path of %s" name))
  | None, Some s -> (
    match parse_kinds s with
    | Error e -> Error e
    | Ok kinds ->
      Ok
        ( Path.of_kinds ~lib ~branch ~c_out:cout kinds,
          Printf.sprintf "custom path [%s]" s ))
  | Some _, Some _ -> Error "give either --circuit or --gates, not both"
  | None, None -> Error "a path is required: --circuit <name> or --gates <list>"

let circuit_arg =
  Arg.(value & opt (some string) None & info [ "circuit"; "c" ] ~docv:"NAME"
         ~doc:"Benchmark circuit (Adder16, fpd, c432, ... c7552); uses its critical path.")

let gates_arg =
  Arg.(value & opt (some string) None & info [ "gates"; "g" ] ~docv:"KINDS"
         ~doc:"Comma-separated gate kinds for a custom path, e.g. inv,nand2,nor3,inv.")

let cout_arg =
  Arg.(value & opt float 60. & info [ "cout" ] ~docv:"FF"
         ~doc:"Terminal load of a custom path (fF).")

let branch_arg =
  Arg.(value & opt float 0. & info [ "branch" ] ~docv:"FF"
         ~doc:"Off-path branch load per stage of a custom path (fF).")

let tc_ratio_arg =
  Arg.(value & opt float 1.2 & info [ "tc-ratio" ] ~docv:"R"
         ~doc:"Delay constraint as a multiple of the path's Tmin.")

let tc_ps_arg =
  Arg.(value & opt (some float) None & info [ "tc" ] ~docv:"PS"
         ~doc:"Delay constraint in picoseconds (overrides --tc-ratio).")

let vt_assign_arg =
  Arg.(value & flag & info [ "vt-assign" ]
         ~doc:"After sizing, run the multi-Vt leakage pass: promote \
               off-critical gates to higher threshold classes while the \
               constraint stays met.")

let with_path f circuit gates cout branch =
  match path_of_spec ~circuit ~gates ~cout ~branch with
  | Error e ->
    prerr_endline ("pops: " ^ e);
    exit_invalid
  | Ok (path, label) -> guard (fun () -> f path label)

let resolve_tc path tc_ps tc_ratio =
  match tc_ps with
  | Some tc -> tc
  | None -> tc_ratio *. (Bounds.compute path).Bounds.tmin

(* ------------------------------------------------------------------ *)
(* tmin                                                                *)
(* ------------------------------------------------------------------ *)

let run_tmin check circuit gates cout branch =
  with_path
    (fun path label ->
      let b = Bounds.compute path in
      Printf.printf "%s: %d stages\n" label (Path.length path);
      Printf.printf "Tmax (all gates at minimum drive) = %.1f ps\n" b.Bounds.tmax;
      Printf.printf "Tmin (link-equation optimum)      = %.1f ps\n" b.Bounds.tmin;
      Printf.printf "area at Tmin                      = %.1f um\n"
        (Path.area path b.Bounds.sizing_tmin);
      let t = Table.create [ ("stage", Table.Right); ("gate", Table.Left);
                             ("cin (fF)", Table.Right); ("branch (fF)", Table.Right) ] in
      List.iteri
        (fun i kind ->
          Table.add_row t
            [ string_of_int i; Gk.name kind;
              Table.cell_f b.Bounds.sizing_tmin.(i);
              Table.cell_f path.Path.stages.(i).Path.branch ])
        (Path.stage_kinds path);
      Table.print t;
      if check then begin
        let ok =
          Bounds.verify_stationary ~beta:b.Bounds.beta_tmin path b.Bounds.sizing_tmin
        in
        Printf.printf "stationarity check: %s\n" (if ok then "PASS" else "FAIL");
        (* a non-stationary "optimum" is the solver's bug, not the user's *)
        if not ok then exit_internal else 0
      end
      else 0)
    circuit gates cout branch

let tmin_cmd =
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Verify the optimum is stationary.")
  in
  Cmd.v (Cmd.info "tmin" ~doc:"Compute the delay bounds (Tmin, Tmax) of a path")
    Term.(const run_tmin $ check $ circuit_arg $ gates_arg $ cout_arg $ branch_arg)

(* ------------------------------------------------------------------ *)
(* size                                                                *)
(* ------------------------------------------------------------------ *)

let run_size snap tc_ps tc_ratio circuit gates cout branch =
  with_path
    (fun path label ->
      let tc = resolve_tc path tc_ps tc_ratio in
      Printf.printf "%s: sizing for Tc = %.1f ps\n" label tc;
      match Sens.size_for_constraint path ~tc with
      | Error (`Infeasible tmin) ->
        Printf.printf
          "INFEASIBLE: Tc is below the minimum achievable delay (%.1f ps).\n\
           Use `pops protocol' to apply structure modification.\n"
          tmin;
        1
      | Ok r ->
        Printf.printf "met with delay = %.1f ps, area = %.1f um (a = %.4f ps/um)\n"
          r.Sens.delay r.Sens.area r.Sens.a;
        let sizing, code =
          if snap then begin
            let leg = Pops_core.Discrete.legalize ~lib path ~tc r.Sens.sizing in
            Printf.printf
              "grid-legalised: delay = %.1f ps, area = %.1f um (%d repair bumps)%s\n"
              leg.Pops_core.Discrete.delay leg.Pops_core.Discrete.area
              leg.Pops_core.Discrete.bumps
              (if leg.Pops_core.Discrete.met then "" else " - MISSED Tc");
            (leg.Pops_core.Discrete.sizing, if leg.Pops_core.Discrete.met then 0 else 1)
          end
          else (r.Sens.sizing, 0)
        in
        let power = Power.of_path path sizing in
        Printf.printf "switched capacitance %.1f fF, dynamic power %.2f uW @100MHz\n"
          power.Power.switched_cap power.Power.dynamic_uw;
        let t = Table.create [ ("stage", Table.Right); ("gate", Table.Left);
                               ("cin (fF)", Table.Right) ] in
        List.iteri
          (fun i kind ->
            Table.add_row t
              [ string_of_int i; Gk.name kind; Table.cell_f sizing.(i) ])
          (Path.stage_kinds path);
        Table.print t;
        code)
    circuit gates cout branch

let size_cmd =
  let snap =
    Arg.(value & flag & info [ "snap" ]
           ~doc:"Legalise the sizing onto the library's discrete drive grid.")
  in
  Cmd.v (Cmd.info "size" ~doc:"Size a path for a delay constraint at minimum area")
    Term.(const run_size $ snap $ tc_ps_arg $ tc_ratio_arg $ circuit_arg $ gates_arg
          $ cout_arg $ branch_arg)

(* ------------------------------------------------------------------ *)
(* flimit                                                              *)
(* ------------------------------------------------------------------ *)

let run_flimit driver =
  match Gk.of_name driver with
  | None ->
    prerr_endline ("pops: unknown driver gate " ^ driver);
    exit_invalid
  | Some driver ->
    let t = Table.create
        ~title:(Printf.sprintf "buffer-insertion fan-out limits (driver: %s)" (Gk.name driver))
        [ ("gate", Table.Left); ("Flimit", Table.Right) ] in
    List.iter
      (fun (gate, f) ->
        Table.add_row t
          [ Gk.name gate;
            (if Float.is_finite f then Table.cell_f ~decimals:1 f else "never") ])
      (Buffers.characterize_library ~lib ~driver
         [ Gk.Inv; Gk.Nand 2; Gk.Nand 3; Gk.Nand 4; Gk.Nor 2; Gk.Nor 3; Gk.Nor 4;
           Gk.Aoi21; Gk.Oai21 ]);
    Table.print t;
    0

let flimit_cmd =
  let driver =
    Arg.(value & opt string "inv" & info [ "driver" ] ~docv:"GATE"
           ~doc:"Gate driving the characterised cell.")
  in
  Cmd.v (Cmd.info "flimit" ~doc:"Characterise the library's buffer-insertion limits")
    Term.(const run_flimit $ driver)

(* ------------------------------------------------------------------ *)
(* protocol                                                            *)
(* ------------------------------------------------------------------ *)

let run_protocol tc_ps tc_ratio no_restructure circuit gates cout branch =
  with_path
    (fun path label ->
      let tc = resolve_tc path tc_ps tc_ratio in
      let r = Protocol.run ~allow_restructure:(not no_restructure) ~lib ~tc path in
      Printf.printf "%s under Tc = %.1f ps\n" label tc;
      Format.printf "%a@." Protocol.pp_report r;
      List.iter
        (fun rw ->
          Printf.printf "  rewrite at stage %d: %s -> %s (+%d side inverters)\n"
            rw.Pops_core.Restructure.stage
            (Gk.name rw.Pops_core.Restructure.from_kind)
            (Gk.name rw.Pops_core.Restructure.to_kind)
            rw.Pops_core.Restructure.side_inverters)
        r.Protocol.rewrites;
      if r.Protocol.met then 0 else 1)
    circuit gates cout branch

let protocol_cmd =
  let no_restructure =
    Arg.(value & flag & info [ "no-restructure" ]
           ~doc:"Disable the De Morgan restructuring alternative.")
  in
  Cmd.v (Cmd.info "protocol" ~doc:"Run the full optimization protocol (Fig. 7)")
    Term.(const run_protocol $ tc_ps_arg $ tc_ratio_arg $ no_restructure
          $ circuit_arg $ gates_arg $ cout_arg $ branch_arg)

(* ------------------------------------------------------------------ *)
(* curve                                                               *)
(* ------------------------------------------------------------------ *)

let run_curve points circuit gates cout branch =
  with_path
    (fun path label ->
      let plain, buffered = Tradeoff.sizing_vs_buffering ~lib ~points path in
      Printf.printf "%s: delay/area fronts\n" label;
      let t = Table.create [ ("a (ps/um)", Table.Right); ("delay (ps)", Table.Right);
                             ("area sizing (um)", Table.Right);
                             ("area buffered (um)", Table.Right) ] in
      List.iter2
        (fun p b ->
          Table.add_row t
            [ Printf.sprintf "%.4f" p.Tradeoff.a;
              Table.cell_f ~decimals:1 p.Tradeoff.delay;
              Table.cell_f ~decimals:1 p.Tradeoff.area;
              Printf.sprintf "%.1f (d=%.0f)" b.Tradeoff.area b.Tradeoff.delay ])
        plain buffered;
      Table.print t;
      (match Tradeoff.crossover_delay plain buffered with
      | Some d -> Printf.printf "buffering pays below %.1f ps\n" d
      | None -> Printf.printf "buffering does not pay on this path\n");
      0)
    circuit gates cout branch

let curve_cmd =
  let points =
    Arg.(value & opt int 15 & info [ "points" ] ~docv:"N" ~doc:"Points per front.")
  in
  Cmd.v (Cmd.info "curve" ~doc:"Sweep the delay/area trade-off (Fig. 6)")
    Term.(const run_curve $ points $ circuit_arg $ gates_arg $ cout_arg $ branch_arg)

(* ------------------------------------------------------------------ *)
(* circuit                                                             *)
(* ------------------------------------------------------------------ *)

let run_circuit name k tc =
  match Profiles.find name with
  | None ->
    prerr_endline ("pops: unknown circuit " ^ name);
    exit_invalid
  | Some p ->
    guard @@ fun () ->
    let nl, spine = Profiles.circuit tech p in
    Format.printf "%a@." Netlist.pp_stats nl;
    let timing = Timing.analyze ~lib nl in
    Printf.printf "STA critical delay: %.1f ps (path of %d nodes)\n"
      (Timing.critical_delay timing)
      (List.length (Timing.critical_path timing));
    print_string
      (Pops_sta.Report.render_path ~lib nl timing (Timing.critical_path timing));
    (match tc with
    | Some tc -> print_string (Pops_sta.Report.endpoint_summary ~lib ~tc nl timing)
    | None -> ());
    Printf.printf "spine length: %d\n" (List.length spine);
    let power = NPower.analyze ~lib nl in
    Printf.printf "area %.1f um, dynamic power %.2f uW @100MHz\n"
      power.NPower.area power.NPower.dynamic_uw;
    let worst = Paths.k_worst ~k ~lib nl in
    let t = Table.create ~title:(Printf.sprintf "%d most critical paths" k)
        [ ("#", Table.Right); ("gates", Table.Right); ("delay (ps)", Table.Right) ] in
    List.iteri
      (fun i ex ->
        let sizing =
          Array.of_list
            (List.map (fun id -> (Netlist.node nl id).Netlist.cin) ex.Paths.nodes)
        in
        Table.add_row t
          [ string_of_int (i + 1);
            string_of_int (List.length ex.Paths.nodes);
            Table.cell_f ~decimals:1 (Path.delay_worst ex.Paths.path sizing) ])
      worst;
    Table.print t;
    0

let circuit_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Benchmark circuit name.")
  in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"How many paths to list.") in
  Cmd.v (Cmd.info "circuit" ~doc:"Inspect a benchmark circuit (netlist, STA, paths, power)")
    Term.(const run_circuit $ name_arg $ k $ tc_ps_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let run_simulate at_tmin circuit gates cout branch =
  with_path
    (fun path label ->
      let sizing =
        if at_tmin then (Bounds.compute path).Bounds.sizing_tmin
        else Path.min_sizing path
      in
      let analytic = Path.delay_worst path sizing in
      let sim = Transient.simulate_path_worst path sizing in
      Printf.printf "%s (%s sizing)\n" label (if at_tmin then "Tmin" else "minimum");
      Printf.printf "analytic model : %.1f ps\n" analytic;
      Printf.printf "transient sim  : %.1f ps (ratio %.2f)\n" sim.Transient.total_delay
        (sim.Transient.total_delay /. analytic);
      let t = Table.create [ ("stage", Table.Right); ("sim delay (ps)", Table.Right);
                             ("sim transition (ps)", Table.Right) ] in
      Array.iteri
        (fun i d ->
          Table.add_row t
            [ string_of_int i; Table.cell_f ~decimals:1 d;
              Table.cell_f ~decimals:1 sim.Transient.stage_transitions.(i) ])
        sim.Transient.stage_delays;
      Table.print t;
      0)
    circuit gates cout branch

let simulate_cmd =
  let at_tmin =
    Arg.(value & flag & info [ "tmin" ] ~doc:"Simulate the Tmin sizing instead of minimum drive.")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Transient-simulate a path (the HSPICE stand-in)")
    Term.(const run_simulate $ at_tmin $ circuit_arg $ gates_arg $ cout_arg $ branch_arg)

(* ------------------------------------------------------------------ *)
(* flow                                                                *)
(* ------------------------------------------------------------------ *)

let finish_flow outcome =
  match outcome with
  | Outcome.Failed d ->
    report_diag d;
    exit_code_of_diag d
  | Outcome.Exact r | Outcome.Degraded (r, _) ->
    report_degradations (Outcome.diags outcome);
    Format.printf "%a@." Pops_flow.Flow.pp_report r;
    List.iter
      (fun it ->
        Printf.printf "  round %d: %.1f ps, %s on a %d-gate path\n"
          it.Pops_flow.Flow.round it.Pops_flow.Flow.critical_delay
          (Protocol.strategy_to_string it.Pops_flow.Flow.strategy)
          it.Pops_flow.Flow.path_gates)
      r.Pops_flow.Flow.iterations;
    (match r.Pops_flow.Flow.outcome with
    | Pops_flow.Flow.Met -> 0
    | _ -> exit_unmet)

let run_flow name tc_ps tc_ratio rounds vt_assign =
  match Profiles.find name with
  | None ->
    prerr_endline ("pops: unknown circuit " ^ name);
    exit_invalid
  | Some p ->
    guard @@ fun () ->
    let nl, _ = Profiles.circuit tech p in
    let d0 = Timing.critical_delay (Timing.analyze ~lib nl) in
    let tc = match tc_ps with Some tc -> tc | None -> tc_ratio *. d0 in
    Printf.printf "%s: STA critical delay %.1f ps, target Tc = %.1f ps\n" name d0 tc;
    finish_flow (Pops_flow.Flow.optimize_o ~max_rounds:rounds ~vt_assign ~lib ~tc nl)

let flow_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Benchmark circuit name.")
  in
  let rounds =
    Arg.(value & opt int 20 & info [ "rounds" ] ~doc:"Iteration budget.")
  in
  let tc_ratio =
    Arg.(value & opt float 0.8 & info [ "tc-ratio" ] ~docv:"R"
           ~doc:"Target as a multiple of the initial STA critical delay.")
  in
  Cmd.v (Cmd.info "flow" ~doc:"Netlist-level timing closure (the Path Selection loop)")
    Term.(const run_flow $ name_arg $ tc_ps_arg $ tc_ratio $ rounds $ vt_assign_arg)

(* ------------------------------------------------------------------ *)
(* bench-file: work on ISCAS .bench netlists                           *)
(* ------------------------------------------------------------------ *)

let name_fn names =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, id) -> Hashtbl.replace tbl id name) names;
  fun id ->
    match Hashtbl.find_opt tbl id with
    | Some n -> n
    | None -> Printf.sprintf "n%d" id

let run_bench_file file do_flow tc_ps tc_ratio vt_assign out =
  match Pops_netlist.Bench_io.parse_file_o tech file with
  | Outcome.Failed d ->
    report_diag d;
    (* a malformed .bench is invalid input whatever the code says *)
    max exit_invalid (exit_code_of_diag d)
  | (Outcome.Exact (nl, names) | Outcome.Degraded ((nl, names), _)) as parsed ->
    guard @@ fun () ->
    (* line-accurate .bench diagnostics from the validation pass (e.g.
       zero-fanout gates) go to stderr; they degrade quality, not
       correctness, so the run continues with exit 0 *)
    report_degradations (Outcome.diags parsed);
    Format.printf "%a@." Netlist.pp_stats nl;
    let d0 = Timing.critical_delay (Timing.analyze ~lib nl) in
    Printf.printf "STA critical delay: %.1f ps\n" d0;
    let code =
      if do_flow then begin
        let tc = match tc_ps with Some tc -> tc | None -> tc_ratio *. d0 in
        Printf.printf "optimizing to Tc = %.1f ps ...\n" tc;
        finish_flow
          (Pops_flow.Flow.optimize_o ~vt_assign ~name:(name_fn names) ~lib ~tc
             nl)
      end
      else 0
    in
    (match out with
    | Some path ->
      Pops_netlist.Bench_io.write_file ~names nl path;
      Printf.printf "wrote %s (with cin/wire annotations)\n" path
    | None -> ());
    code

let bench_file_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"ISCAS .bench netlist file.")
  in
  let do_flow =
    Arg.(value & flag & info [ "flow" ] ~doc:"Run the timing-closure flow on it.")
  in
  let tc_ratio =
    Arg.(value & opt float 0.8 & info [ "tc-ratio" ] ~docv:"R"
           ~doc:"Flow target as a multiple of the initial critical delay.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the (optimized) netlist back in .bench syntax.")
  in
  Cmd.v (Cmd.info "bench-file" ~doc:"Analyze or optimize an ISCAS .bench netlist file")
    Term.(const run_bench_file $ file $ do_flow $ tc_ps_arg $ tc_ratio
          $ vt_assign_arg $ out)

(* ------------------------------------------------------------------ *)
(* serve / optimize: the multi-tenant NDJSON job engine                *)
(* ------------------------------------------------------------------ *)

module Engine = Pops_serve.Engine
module Server = Pops_serve.Server
module Session = Pops_serve.Session
module Listener = Pops_serve.Listener
module Sjson = Pops_serve.Json

let engine_config window tenant_sweeps job_sweeps job_wall_ms cache_cap
    bounds_cache no_times =
  {
    Engine.default_config with
    Engine.window;
    tenant_sweeps;
    job_sweeps;
    job_wall_ms;
    netlist_cache = cache_cap;
    bounds_cache;
    times = not no_times;
  }

let window_arg =
  Arg.(value & opt int Engine.default_config.Engine.window
       & info [ "window" ] ~docv:"N"
           ~doc:"Maximum jobs fanned out concurrently per batch.")

let tenant_sweeps_arg =
  Arg.(value & opt (some int) None & info [ "tenant-sweeps" ] ~docv:"N"
         ~doc:"Aggregate solver-sweep budget per tenant; jobs beyond it are \
               rejected at admission.")

let job_sweeps_arg =
  Arg.(value & opt (some int) None & info [ "job-sweeps" ] ~docv:"N"
         ~doc:"Per-job solver-sweep cap (the flow degrades gracefully at the cap).")

let job_wall_ms_arg =
  Arg.(value & opt (some float) None & info [ "job-wall-ms" ] ~docv:"MS"
         ~doc:"Per-job wall-clock cap. Protects the server from pathological \
               inputs, at the cost of determinism.")

let cache_cap_arg =
  Arg.(value & opt int Engine.default_config.Engine.netlist_cache
       & info [ "cache" ] ~docv:"N"
           ~doc:"Parsed-netlist cache capacity (distinct netlist contents).")

let bounds_cache_arg =
  Arg.(value & opt int Engine.default_config.Engine.bounds_cache
       & info [ "bounds-cache" ] ~docv:"N"
           ~doc:"Path-characterisation (Bounds) memo capacity.")

let no_times_arg =
  Arg.(value & flag & info [ "no-times" ]
         ~doc:"Omit wall-clock fields from result lines, making the output a \
               pure function of the job stream (used by the test suites).")

let no_summary_arg =
  Arg.(value & flag & info [ "no-summary" ]
         ~doc:"Do not append the summary line at end of stream.")

let idle_timeout_arg =
  Arg.(value & opt (some float) None & info [ "idle-timeout" ] ~docv:"SECONDS"
         ~doc:"Close an idle stream/connection after this many seconds \
               without traffic (deadline-exceeded diagnostic; clean exit).")

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Listen on a Unix domain socket instead of stdio. A stale \
               socket file left by a killed server is cleaned up; a live \
               one is an error.")

let listen_arg =
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT"
         ~doc:"Listen on a TCP address instead of stdio (port 0 picks a \
               free port, reported on stderr).")

let queue_limit_arg =
  Arg.(value & opt int Session.default_config.Session.queue_limit
       & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Per-session bound on decoded jobs waiting to run; further \
                 requests are shed with a typed $(i,overloaded) result \
                 carrying a retry_after_ms hint.")

let max_sessions_arg =
  Arg.(value & opt int Listener.default_config.Listener.max_sessions
       & info [ "max-sessions" ] ~docv:"N"
           ~doc:"Concurrent-connection cap; beyond it new connections wait \
                 in the kernel backlog (backpressure).")

let retry_after_ms_arg =
  Arg.(value & opt int Session.default_config.Session.retry_after_ms
       & info [ "retry-after-ms" ] ~docv:"MS"
           ~doc:"Retry hint carried by shed (overloaded) results.")

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> Error (s ^ ": expected HOST:PORT")
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 -> Ok (host, p)
    | _ -> Error (port ^ ": not a port number"))

let run_listener engine ~listener_config address =
  match Listener.create ~config:listener_config ~log:report_diag engine address
  with
  | Error e ->
    prerr_endline ("pops: " ^ e);
    exit_invalid
  | Ok l ->
    (* a vanished client must surface as a classified write error on its
       own session, never as a process-killing SIGPIPE *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let drain = Sys.Signal_handle (fun _ -> Listener.request_drain l) in
    Sys.set_signal Sys.sigterm drain;
    Sys.set_signal Sys.sigint drain;
    Printf.eprintf "pops: listening on %s\n%!"
      (Listener.address_name (Listener.address l));
    Listener.run l

let run_serve window tenant_sweeps job_sweeps job_wall_ms cache_cap bounds_cache
    no_times no_summary socket listen idle_timeout queue_limit max_sessions
    retry_after_ms =
  guard @@ fun () ->
  let config =
    engine_config window tenant_sweeps job_sweeps job_wall_ms cache_cap
      bounds_cache no_times
  in
  let engine = Engine.create ~config tech in
  match (socket, listen) with
  | Some _, Some _ ->
    prerr_endline "pops: give --socket or --listen, not both";
    exit_invalid
  | None, None ->
    Server.serve engine ~summary:(not no_summary) ?idle_timeout ~log:report_diag
      Unix.stdin stdout
  | _ -> (
    let session =
      { Session.queue_limit; idle_timeout; retry_after_ms;
        summary = not no_summary }
    in
    let listener_config = { Listener.max_sessions; session } in
    let address =
      match (socket, listen) with
      | Some path, None -> Ok (Listener.Unix_socket path)
      | None, Some hp ->
        Result.map (fun (h, p) -> Listener.Tcp (h, p)) (parse_hostport hp)
      | _ -> assert false
    in
    match address with
    | Error e ->
      prerr_endline ("pops: " ^ e);
      exit_invalid
    | Ok address -> run_listener engine ~listener_config address)

let serve_cmd =
  let doc =
    "Serve optimization jobs from an NDJSON stream (stdio, Unix socket or TCP)"
  in
  Cmd.v (Cmd.info "serve" ~doc
           ~man:[ `S Manpage.s_description;
                  `P "Long-lived multi-tenant job engine: one JSON request per \
                      input line, one result per output line in submission \
                      order, batched across the domain pool with per-tenant \
                      budgets and cross-request netlist caching. With \
                      $(b,--socket) or $(b,--listen) it becomes a supervised \
                      listener: each connection is an isolated session with \
                      its own deadlines, bounded queue and summary line, and \
                      SIGTERM drains in-flight work before exiting 0. See \
                      docs/serving.md for the schema and the ops contract." ])
    Term.(const run_serve $ window_arg $ tenant_sweeps_arg $ job_sweeps_arg
          $ job_wall_ms_arg $ cache_cap_arg $ bounds_cache_arg $ no_times_arg
          $ no_summary_arg $ socket_arg $ listen_arg $ idle_timeout_arg
          $ queue_limit_arg $ max_sessions_arg $ retry_after_ms_arg)

(* ------------------------------------------------------------------ *)
(* client: stream stdin to a listener and report the worst exit        *)
(* ------------------------------------------------------------------ *)

let exit_of_status_name = function
  | "ok" | "degraded" -> 0
  | "unmet" | "rejected" | "overloaded" -> 1
  | "invalid" -> 2
  | "failed" -> 3
  | _ -> 0

(* the per-line worst-exit bookkeeping mirrors Job.exit_of_status on
   the server side; the summary line's worst_exit field wins when
   present so a --no-times stream still exits faithfully *)
let client_line_exit line =
  match Sjson.parse line with
  | Error _ -> 0
  | Ok (Sjson.Obj fields) -> (
    match List.assoc_opt "summary" fields with
    | Some (Sjson.Bool true) -> (
      match List.assoc_opt "worst_exit" fields with
      | Some (Sjson.Num e) -> int_of_float e
      | _ -> 0)
    | _ -> (
      match List.assoc_opt "exit" fields with
      | Some (Sjson.Num e) -> int_of_float e
      | _ -> (
        match List.assoc_opt "status" fields with
        | Some (Sjson.Str s) -> exit_of_status_name s
        | _ -> 0)))
  | Ok _ -> 0

let run_client socket connect =
  guard @@ fun () ->
  let addr =
    match (socket, connect) with
    | Some path, None -> Ok (Unix.ADDR_UNIX path)
    | None, Some hp ->
      Result.bind (parse_hostport hp) (fun (host, port) ->
          match
            try Ok (Unix.inet_addr_of_string host)
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                Error (host ^ ": unknown host")
              | h -> Ok h.Unix.h_addr_list.(0))
          with
          | Ok a -> Ok (Unix.ADDR_INET (a, port))
          | Error e -> Error e)
    | _ -> Error "give exactly one of --socket PATH or --connect HOST:PORT"
  in
  match addr with
  | Error e ->
    prerr_endline ("pops: " ^ e);
    exit_invalid
  | Ok addr -> (
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fd =
      Unix.socket ~cloexec:true
        (Unix.domain_of_sockaddr addr)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd addr with
    | exception Unix.Unix_error (e, _, _) ->
      prerr_endline ("pops: connect: " ^ Unix.error_message e);
      exit_invalid
    | () ->
      let input = In_channel.input_all stdin in
      let rec send pos =
        if pos < String.length input then
          send (pos + Unix.write_substring fd input pos (String.length input - pos))
      in
      send 0;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Bytes.create 65536 in
      let acc = Buffer.create 4096 in
      let worst = ref 0 in
      let received = ref false in
      let rec pop_lines () =
        let s = Buffer.contents acc in
        match String.index_opt s '\n' with
        | None -> ()
        | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear acc;
          Buffer.add_substring acc s (i + 1) (String.length s - i - 1);
          print_endline line;
          received := true;
          worst := max !worst (client_line_exit line);
          pop_lines ()
      in
      let rec recv () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          pop_lines ();
          recv ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
        | exception Unix.Unix_error (e, _, _) ->
          prerr_endline ("pops: read: " ^ Unix.error_message e);
          worst := max !worst exit_internal
      in
      recv ();
      pop_lines ();
      if Buffer.length acc > 0 then begin
        received := true;
        print_endline (Buffer.contents acc)
      end;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      flush stdout;
      (* a session the server killed before answering anything (e.g. an
         injected write fault) must not look like success *)
      if (not !received) && String.trim input <> "" then begin
        prerr_endline "pops: connection closed with no response";
        exit_internal
      end
      else !worst)

let client_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Connect to a Unix domain socket listener.")
  in
  let connect =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
           ~doc:"Connect to a TCP listener.")
  in
  let doc = "Send an NDJSON job stream to a pops listener" in
  Cmd.v (Cmd.info "client" ~doc
           ~man:[ `S Manpage.s_description;
                  `P "Streams stdin to a $(b,pops serve --socket/--listen) \
                      server, prints the result lines, and exits with the \
                      worst per-job code (the same contract as $(b,pops \
                      optimize --jobs)). Used by the test suite and handy \
                      for scripted probes: echo '{\"action\":\"health\"}' | \
                      pops client --socket /run/pops.sock." ])
    Term.(const run_client $ socket $ connect)

(* one-shot mode: generate a scale benchmark circuit and close timing on
   it with the incremental flow — the full-chip loop without needing a
   job file or a netlist on disk *)
let run_optimize_generated gates shape name tc_ps tc_ratio rounds vt_assign =
  guard @@ fun () ->
  let shape =
    match String.lowercase_ascii shape with
    | "grid" -> Pops_netlist.Generator.Grid
    | "spine" -> Pops_netlist.Generator.Spine
    | "iscas" -> Pops_netlist.Generator.Iscas
    | s ->
      prerr_endline ("pops: unknown shape " ^ s ^ " (grid, spine or iscas)");
      exit exit_invalid
  in
  let nl = Pops_netlist.Generator.generate_scale tech ~name ~gates ~shape in
  let d0 = Timing.critical_delay (Timing.analyze ~lib nl) in
  let tc = match tc_ps with Some tc -> tc | None -> tc_ratio *. d0 in
  Printf.printf
    "%s: %d gates (%s), STA critical delay %.1f ps, target Tc = %.1f ps\n" name
    (Netlist.gate_count nl)
    (Pops_netlist.Generator.scale_shape_name shape)
    d0 tc;
  finish_flow (Pops_flow.Flow.optimize_o ~max_rounds:rounds ~vt_assign ~lib ~tc nl)

let run_optimize jobs gates shape name tc_ps tc_ratio rounds vt_assign window
    tenant_sweeps job_sweeps job_wall_ms cache_cap bounds_cache no_times summary
    =
  match (jobs, gates) with
  | Some _, Some _ ->
    prerr_endline "pops: give either --jobs or --gates, not both";
    exit_invalid
  | None, None ->
    prerr_endline "pops: one of --jobs FILE or --gates N is required";
    exit_invalid
  | None, Some gates ->
    run_optimize_generated gates shape name tc_ps tc_ratio rounds vt_assign
  | Some jobs, None ->
    guard @@ fun () ->
    let config =
      engine_config window tenant_sweeps job_sweeps job_wall_ms cache_cap
        bounds_cache no_times
    in
    let engine = Engine.create ~config tech in
    Server.run_jobs_file engine ~summary jobs stdout

let optimize_cmd =
  let jobs =
    Arg.(value & opt (some file) None & info [ "jobs" ] ~docv:"FILE"
           ~doc:"NDJSON job file (one request object per line; blank and # \
                 lines are skipped).")
  in
  let gates =
    Arg.(value & opt (some int) None & info [ "gates" ] ~docv:"N"
           ~doc:"One-shot mode: generate an N-gate scale benchmark circuit \
                 and run the timing-closure flow on it.")
  in
  let shape =
    Arg.(value & opt string "iscas" & info [ "shape" ] ~docv:"SHAPE"
           ~doc:"Circuit shape for --gates: grid, spine or iscas.")
  in
  let gen_name =
    Arg.(value & opt string "cli" & info [ "name" ] ~docv:"NAME"
           ~doc:"Generator seed name for --gates (deterministic circuits).")
  in
  let tc_ratio =
    Arg.(value & opt float 0.8 & info [ "tc-ratio" ] ~docv:"R"
           ~doc:"One-shot flow target as a multiple of the initial critical \
                 delay.")
  in
  let rounds =
    Arg.(value & opt int 20 & info [ "rounds" ] ~doc:"One-shot iteration budget.")
  in
  let summary =
    Arg.(value & flag & info [ "summary" ]
           ~doc:"Append the cache/tenant summary line after the results.")
  in
  let doc =
    "Run a batch of jobs through the serve engine, or close timing on a \
     generated circuit (--gates)"
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(const run_optimize $ jobs $ gates $ shape $ gen_name $ tc_ps_arg
          $ tc_ratio $ rounds $ vt_assign_arg $ window_arg $ tenant_sweeps_arg
          $ job_sweeps_arg $ job_wall_ms_arg $ cache_cap_arg $ bounds_cache_arg
          $ no_times_arg $ summary)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "POPS - low-power oriented CMOS circuit optimization (DATE 2005 reproduction)" in
  Cmd.group (Cmd.info "pops" ~version:"1.0.0" ~doc)
    [ tmin_cmd; size_cmd; flimit_cmd; protocol_cmd; curve_cmd; circuit_cmd;
      simulate_cmd; flow_cmd; bench_file_cmd; serve_cmd; client_cmd;
      optimize_cmd ]

let () = exit (Cmd.eval' main_cmd)
