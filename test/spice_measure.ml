(* Regenerates test/spice_tolerances.golden: sweeps random oracle chains
   (the same domain the spice.model_tracks_simulation property draws
   from) per technology, records the observed sim/model delay ratio
   range, and prints it widened by a safety margin.

     dune exec test/spice_measure.exe -- [cases-per-tech] > test/spice_tolerances.golden
*)

open Pops_check
module C = Circuit
module Rng = Pops_util.Rng
module Tech = Pops_process.Tech
module Path = Pops_delay.Path
module Transient = Pops_spice.Transient

let () =
  let cases = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200 in
  Printf.printf "# sim/model total-delay ratio bands for the SPICE differential oracle\n";
  Printf.printf "# (spice.model_tracks_simulation in test/pops_prop.ml)\n";
  Printf.printf
    "# regenerate: dune exec test/spice_measure.exe -- %d > test/spice_tolerances.golden\n"
    cases;
  Printf.printf "# <technology> <lo> <hi>\n";
  Array.iter
    (fun tech ->
      let rng = Rng.of_string ("spice-measure-" ^ tech.Tech.name) in
      let lo = ref infinity and hi = ref neg_infinity in
      for i = 1 to cases do
        let size = 1 + (i * 19 / cases) in
        let s = C.sanitize_spice (C.spice_chain.Gen.gen rng size) in
        let s = { s with C.p_tech = tech } in
        let p = C.to_path s in
        let x = Path.clamp_sizing p (C.sizing s) in
        let sim = Transient.simulate_path ~steps_per_stage:500 p x in
        let ratio = sim.Transient.total_delay /. Path.delay p x in
        if ratio < !lo then lo := ratio;
        if ratio > !hi then hi := ratio
      done;
      (* widen by 5% of the band centre on each side, floored at ±0.02 *)
      let margin = Float.max 0.02 (0.05 *. ((!lo +. !hi) /. 2.)) in
      Printf.printf "%s %.3f %.3f\n" tech.Tech.name (!lo -. margin) (!hi +. margin))
    C.technologies
