(* Regenerates test/spice_tolerances.golden: sweeps random oracle chains
   (the same domain the spice.model_tracks_simulation property draws
   from) per technology, records the observed sim/model delay ratio
   range, and prints it widened by a safety margin.

     dune exec test/spice_measure.exe -- [cases-per-tech] > test/spice_tolerances.golden
*)

open Pops_check
module C = Circuit
module Rng = Pops_util.Rng
module Tech = Pops_process.Tech
module Vt = Pops_process.Vt
module Path = Pops_delay.Path
module Transient = Pops_spice.Transient

(* one measured band: sweep [cases] sanitized chains drawn from [seed]'s
   stream, building the path with [mk] (plain or per-Vt), and return the
   observed sim/model total-delay ratio range widened by a safety margin
   of 5% of the band centre on each side, floored at +-0.02 *)
let band ~cases ~seed ~tech mk =
  let rng = Rng.of_string seed in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = 1 to cases do
    let size = 1 + (i * 19 / cases) in
    let s = C.sanitize_spice (C.spice_chain.Gen.gen rng size) in
    let s = { s with C.p_tech = tech } in
    let p = mk s in
    let x = Path.clamp_sizing p (C.sizing s) in
    let sim = Transient.simulate_path ~steps_per_stage:500 p x in
    let ratio = sim.Transient.total_delay /. Path.delay p x in
    if ratio < !lo then lo := ratio;
    if ratio > !hi then hi := ratio
  done;
  let margin = Float.max 0.02 (0.05 *. ((!lo +. !hi) /. 2.)) in
  (!lo -. margin, !hi +. margin)

let () =
  let cases = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200 in
  Printf.printf "# sim/model total-delay ratio bands for the SPICE differential oracle\n";
  Printf.printf "# (spice.model_tracks_simulation in test/pops_prop.ml)\n";
  Printf.printf
    "# regenerate: dune exec test/spice_measure.exe -- %d > test/spice_tolerances.golden\n"
    cases;
  Printf.printf "# <technology> <lo> <hi>\n";
  Printf.printf "# <technology>.<vt-class> <lo> <hi> <leak-factor>\n";
  Array.iter
    (fun tech ->
      let lo, hi =
        band ~cases ~seed:("spice-measure-" ^ tech.Tech.name) ~tech C.to_path
      in
      Printf.printf "%s %.3f %.3f\n" tech.Tech.name lo hi)
    C.technologies;
  (* per-Vt-class rows: the simulator sees the class's threshold shift
     through the path's tech record, the model through the Vt-variant
     cells; the fourth column locks the class's leakage multiplier
     (transistors cut off cleanly in the simulator, so subthreshold
     leakage is checked at the model level, not differentially) *)
  Array.iter
    (fun tech ->
      Array.iter
        (fun vt ->
          let seed =
            Printf.sprintf "spice-measure-%s-%s" tech.Tech.name (Vt.name vt)
          in
          let lo, hi = band ~cases ~seed ~tech (fun s -> C.to_vt_path s vt) in
          Printf.printf "%s.%s %.3f %.3f %.6g\n" tech.Tech.name (Vt.name vt) lo
            hi
            (Tech.vt_leak_factor tech vt))
        Vt.all)
    C.technologies
