(* Tests for Pops_delay: edge algebra, the eq. (1)-(3) model, and the
   bounded-path delay/gradient machinery everything downstream relies on. *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Cell = Pops_cell.Cell
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Model = Pops_delay.Model
module Path = Pops_delay.Path
module N = Pops_util.Numerics

(* deterministic property tests: fixed RNG seed per test *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let tech = Tech.cmos025
let lib = Library.make tech
let inv = Library.find lib Gk.Inv

let check_close ?(eps = 1e-9) msg expected actual =
  if not (N.close ~rtol:eps ~atol:eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- edge --- *)

let test_edge_algebra () =
  Alcotest.(check bool) "flip rise" true (Edge.equal Edge.Falling (Edge.flip Edge.Rising));
  Alcotest.(check bool) "double flip" true
    (Edge.equal Edge.Rising (Edge.flip (Edge.flip Edge.Rising)));
  Alcotest.(check bool) "inverting propagate" true
    (Edge.equal Edge.Falling (Edge.propagate ~inverting:true Edge.Rising));
  Alcotest.(check bool) "non-inverting propagate" true
    (Edge.equal Edge.Rising (Edge.propagate ~inverting:false Edge.Rising))

(* --- model --- *)

let test_transition_linear_in_load () =
  let t1 = Model.transition_time inv ~edge:Edge.Falling ~cin:5. ~cload:10. in
  let t2 = Model.transition_time inv ~edge:Edge.Falling ~cin:5. ~cload:20. in
  check_close ~eps:1e-9 "doubling load doubles transition" (2. *. t1) t2

let test_transition_inverse_in_drive () =
  let t1 = Model.transition_time inv ~edge:Edge.Falling ~cin:5. ~cload:10. in
  let t2 = Model.transition_time inv ~edge:Edge.Falling ~cin:10. ~cload:10. in
  check_close ~eps:1e-9 "doubling drive halves transition" (t1 /. 2.) t2

let test_rising_slower_than_falling () =
  let tf = Model.transition_time inv ~edge:Edge.Falling ~cin:5. ~cload:10. in
  let tr = Model.transition_time inv ~edge:Edge.Rising ~cin:5. ~cload:10. in
  Alcotest.(check bool) "P weaker at nominal k" true (tr > tf)

let test_slope_term_adds_delay () =
  let d_fast, _ =
    Model.stage_delay inv ~edge_out:Edge.Falling ~tau_in:0. ~cin:5. ~cload:10.
  in
  let d_slow, _ =
    Model.stage_delay inv ~edge_out:Edge.Falling ~tau_in:100. ~cin:5. ~cload:10.
  in
  check_close ~eps:1e-9 "slope contributes vT*tau_in/2"
    (Tech.vtn_reduced tech *. 100. /. 2.)
    (d_slow -. d_fast)

let test_opts_disable_terms () =
  let no_slope = { Model.with_slope = false; with_coupling = true } in
  let d1, _ =
    Model.stage_delay ~opts:no_slope inv ~edge_out:Edge.Falling ~tau_in:500. ~cin:5.
      ~cload:10.
  in
  let d2, _ =
    Model.stage_delay ~opts:no_slope inv ~edge_out:Edge.Falling ~tau_in:0. ~cin:5.
      ~cload:10.
  in
  check_close "slope disabled" d1 d2;
  let no_coupling = { Model.with_slope = true; with_coupling = false } in
  let d3, tau_out =
    Model.stage_delay ~opts:no_coupling inv ~edge_out:Edge.Falling ~tau_in:0. ~cin:5.
      ~cload:10.
  in
  check_close ~eps:1e-9 "no coupling -> tau_out/2" (tau_out /. 2.) d3

let test_coupling_increases_delay () =
  let d_with, _ = Model.stage_delay inv ~edge_out:Edge.Falling ~tau_in:0. ~cin:5. ~cload:10. in
  let no_coupling = { Model.with_slope = true; with_coupling = false } in
  let d_without, _ =
    Model.stage_delay ~opts:no_coupling inv ~edge_out:Edge.Falling ~tau_in:0. ~cin:5.
      ~cload:10.
  in
  Alcotest.(check bool) "Miller coupling slows the gate" true (d_with > d_without)

let test_fo4_plausible () =
  let d = Model.fo4_delay tech in
  Alcotest.(check bool) (Printf.sprintf "FO4 = %.1f ps plausible for 250nm" d) true
    (d > 30. && d < 300.)

let test_fast_input_range () =
  Alcotest.(check bool) "fast input ok" true
    (Model.fast_input_range inv ~edge_out:Edge.Falling ~tau_in:10. ~cin:5. ~cload:10.);
  Alcotest.(check bool) "slow input flagged" false
    (Model.fast_input_range inv ~edge_out:Edge.Falling ~tau_in:10000. ~cin:5. ~cload:10.)

(* --- path --- *)

let mk_path ?(branch = 0.) ?(c_out = 50.) kinds =
  Path.of_kinds ~lib ~branch ~c_out kinds

let chain5 = mk_path [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nor 2; Gk.Inv ]

let test_path_make_validations () =
  (match Path.make ~tech ~c_out:10. [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty path accepted");
  match Path.make ~tech ~c_out:(-1.) [ { Path.cell = inv; branch = 0. } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative c_out accepted"

let test_edges_alternate () =
  (* all-inverting 5-chain starting Rising: outputs F,R,F,R,F *)
  let p = chain5 in
  let expected = [| Edge.Falling; Edge.Rising; Edge.Falling; Edge.Rising; Edge.Falling |] in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "edge %d" i) true (Edge.equal e p.Path.edges.(i)))
    expected

let test_clamp_fixes_drive () =
  let x = Array.make 5 100. in
  let y = Path.clamp_sizing chain5 x in
  check_close "drive pinned" chain5.Path.drive_cin y.(0);
  Alcotest.(check bool) "interior preserved" true (y.(2) = 100.)

let test_delay_positive_and_finite () =
  let d = Path.delay chain5 (Path.min_sizing chain5) in
  Alcotest.(check bool) "positive" true (d > 0. && Float.is_finite d)

let test_upsizing_interior_reduces_delay_at_min () =
  (* from the all-minimum sizing, enlarging the gate that drives the large
     terminal load (50 fF ~ 18x cmin) must reduce the path delay. *)
  let x = Path.min_sizing chain5 in
  let d0 = Path.delay chain5 x in
  let y = Array.copy x in
  y.(4) <- y.(4) *. 2.;
  let d1 = Path.delay chain5 y in
  Alcotest.(check bool) "upsizing the loaded output gate helps" true (d1 < d0)

let test_oversizing_eventually_hurts () =
  (* delay is convex: blowing one gate up enormously re-increases delay
     because it loads its driver. *)
  let x = Path.min_sizing chain5 in
  let y = Array.copy x in
  y.(2) <- y.(2) *. 2000.;
  Alcotest.(check bool) "oversizing hurts" true
    (Path.delay chain5 y > Path.delay chain5 x)

let test_delay_per_stage_sums () =
  let x = Path.min_sizing chain5 in
  let per = Path.delay_per_stage chain5 x in
  let sum = Array.fold_left (fun acc (d, _) -> acc +. d) 0. per in
  check_close ~eps:1e-9 "per-stage sums to total" (Path.delay chain5 x) sum

let test_loads_structure () =
  let x = Path.clamp_sizing chain5 [| 0.; 10.; 10.; 10.; 10. |] in
  let loads = Path.loads chain5 x in
  (* stage 3 load = cpar(10) + 0 + x4 = par*10 + 10 *)
  let nor2 = Library.find lib (Gk.Nor 2) in
  check_close ~eps:1e-9 "stage3 load" (Cell.cpar nor2 ~cin:10. +. 10.) loads.(3);
  (* last stage load ends on c_out *)
  check_close ~eps:1e-9 "stage4 load" (Cell.cpar inv ~cin:10. +. 50.) loads.(4)

let test_area_and_sum_cin () =
  let x = Path.min_sizing chain5 in
  Alcotest.(check bool) "area positive" true (Path.area chain5 x > 0.);
  (* 5 gates at cmin (drive = cmin too) -> sum ratio = 5 *)
  check_close ~eps:1e-9 "sum cin ratio" 5. (Path.sum_cin_ratio chain5 x)

let test_insert_stage () =
  let p = Path.with_stage_inserted chain5 ~at:2 { Path.cell = inv; branch = 0. } in
  Alcotest.(check int) "length+1" 6 (Path.length p);
  let kinds = Path.stage_kinds p in
  Alcotest.(check bool) "inserted inv at 3" true (Gk.equal (List.nth kinds 3) Gk.Inv)

let test_replace_stage () =
  let nand2 = Library.find lib (Gk.Nand 2) in
  let p = Path.with_stage_replaced chain5 ~at:3 { Path.cell = nand2; branch = 0. } in
  Alcotest.(check bool) "replaced" true
    (Gk.equal (List.nth (Path.stage_kinds p) 3) (Gk.Nand 2))

let test_branch_load_increases_delay () =
  let p0 = mk_path [ Gk.Inv; Gk.Inv; Gk.Inv ] in
  let p1 = mk_path ~branch:20. [ Gk.Inv; Gk.Inv; Gk.Inv ] in
  let x = Path.min_sizing p0 in
  Alcotest.(check bool) "branch slows path" true (Path.delay p1 x > Path.delay p0 x)

(* --- polarity and non-inverting kinds --- *)

let test_with_input_edge_flips () =
  let p = chain5 in
  let q = Path.with_input_edge p Edge.Falling in
  Alcotest.(check bool) "input edge changed" true
    (Edge.equal q.Path.input_edge Edge.Falling);
  Alcotest.(check bool) "stage edges flipped" true
    (Edge.equal q.Path.edges.(0) Edge.Rising);
  (* same-edge request returns an equivalent path *)
  let r = Path.with_input_edge p Edge.Rising in
  Alcotest.(check bool) "identity" true (Edge.equal r.Path.input_edge Edge.Rising)

let test_delay_worst_and_avg_bracket () =
  let x = Path.min_sizing chain5 in
  let dr = Path.delay chain5 x in
  let df = Path.delay (Path.with_input_edge chain5 Edge.Falling) x in
  let worst = Path.delay_worst chain5 x in
  let avg = Path.delay_avg chain5 x in
  check_close ~eps:1e-9 "worst is max" (Float.max dr df) worst;
  check_close ~eps:1e-9 "avg is mean" (0.5 *. (dr +. df)) avg

let test_xor_path_keeps_edge () =
  (* XOR2 is non-inverting: the edge does not flip through it *)
  let p = mk_path [ Gk.Inv; Gk.Xor2; Gk.Inv ] in
  Alcotest.(check bool) "inv flips" true (Edge.equal p.Path.edges.(0) Edge.Falling);
  Alcotest.(check bool) "xor keeps" true (Edge.equal p.Path.edges.(1) Edge.Falling);
  Alcotest.(check bool) "inv flips again" true (Edge.equal p.Path.edges.(2) Edge.Rising);
  Alcotest.(check bool) "delay finite" true
    (Float.is_finite (Path.delay p (Path.min_sizing p)))

let test_area_weight_matches_area () =
  let x = Path.clamp_sizing chain5 [| 0.; 7.; 9.; 11.; 13. |] in
  let total =
    Array.to_list (Array.mapi (fun i c -> Path.area_weight chain5 i *. c) x)
    |> List.fold_left ( +. ) 0.
  in
  check_close ~eps:1e-9 "sum of weights * cin = area" (Path.area chain5 x) total

(* --- gradient vs numerical reference --- *)

let sizing_gen n =
  QCheck.Gen.(array_size (return n) (float_range 3. 60.))

let path_gen =
  QCheck.Gen.(
    let* len = int_range 3 9 in
    let* kinds =
      list_size (return len)
        (oneofl [ Gk.Inv; Gk.Nand 2; Gk.Nand 3; Gk.Nor 2; Gk.Nor 3; Gk.Aoi21; Gk.Oai21 ])
    in
    let* branch = float_range 0. 15. in
    let* c_out = float_range 10. 200. in
    let* x = sizing_gen len in
    return (mk_path ~branch ~c_out kinds, x))

let path_arb =
  QCheck.make
    ~print:(fun (p, x) ->
      Format.asprintf "%a / [%s]" Path.pp p
        (String.concat ";" (Array.to_list (Array.map string_of_float x))))
    path_gen

let prop_gradient_matches_numerical =
  QCheck.Test.make ~name:"analytic gradient == numerical gradient" ~count:300 path_arb
    (fun (p, x) ->
      let x = Path.clamp_sizing p x in
      let g = Path.gradient p x in
      let gn = N.gradient ~f:(fun y -> Path.delay p y) x in
      let ok = ref true in
      for i = 1 to Array.length x - 1 do
        let scale = Float.max 1e-3 (Float.max (Float.abs g.(i)) (Float.abs gn.(i))) in
        if Float.abs (g.(i) -. gn.(i)) /. scale > 1e-4 then ok := false
      done;
      !ok)

let prop_midpoint_convexity =
  QCheck.Test.make ~name:"path delay is midpoint-convex in sizing" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* p, x = path_gen in
         let* y = sizing_gen (Path.length p) in
         return (p, x, y)))
    (fun (p, x, y) ->
      let x = Path.clamp_sizing p x and y = Path.clamp_sizing p y in
      let mid = Array.mapi (fun i xi -> 0.5 *. (xi +. y.(i))) x in
      (* the Miller coupling factor perturbs exact convexity by a hair;
         allow a 0.1% relative slack *)
      let rhs = (0.5 *. Path.delay p x) +. (0.5 *. Path.delay p y) in
      Path.delay p mid <= rhs *. 1.001)

let prop_gradient_zero_entry_for_drive =
  QCheck.Test.make ~name:"gradient entry 0 is zero (input gate fixed)" ~count:50 path_arb
    (fun (p, x) -> (Path.gradient p x).(0) = 0.)

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_delay"
    [
      ("edge", [ Alcotest.test_case "algebra" `Quick test_edge_algebra ]);
      ( "model",
        [
          Alcotest.test_case "transition linear in load" `Quick test_transition_linear_in_load;
          Alcotest.test_case "transition inverse in drive" `Quick test_transition_inverse_in_drive;
          Alcotest.test_case "rising slower" `Quick test_rising_slower_than_falling;
          Alcotest.test_case "slope term" `Quick test_slope_term_adds_delay;
          Alcotest.test_case "opts disable terms" `Quick test_opts_disable_terms;
          Alcotest.test_case "coupling increases delay" `Quick test_coupling_increases_delay;
          Alcotest.test_case "FO4 plausible" `Quick test_fo4_plausible;
          Alcotest.test_case "fast input range" `Quick test_fast_input_range;
        ] );
      ( "path",
        [
          Alcotest.test_case "make validations" `Quick test_path_make_validations;
          Alcotest.test_case "edges alternate" `Quick test_edges_alternate;
          Alcotest.test_case "clamp fixes drive" `Quick test_clamp_fixes_drive;
          Alcotest.test_case "delay positive" `Quick test_delay_positive_and_finite;
          Alcotest.test_case "upsizing helps at min" `Quick test_upsizing_interior_reduces_delay_at_min;
          Alcotest.test_case "oversizing hurts" `Quick test_oversizing_eventually_hurts;
          Alcotest.test_case "per-stage sums" `Quick test_delay_per_stage_sums;
          Alcotest.test_case "loads structure" `Quick test_loads_structure;
          Alcotest.test_case "area and sum-cin" `Quick test_area_and_sum_cin;
          Alcotest.test_case "insert stage" `Quick test_insert_stage;
          Alcotest.test_case "replace stage" `Quick test_replace_stage;
          Alcotest.test_case "branch load slows" `Quick test_branch_load_increases_delay;
          Alcotest.test_case "with_input_edge" `Quick test_with_input_edge_flips;
          Alcotest.test_case "worst/avg bracket" `Quick test_delay_worst_and_avg_bracket;
          Alcotest.test_case "xor path keeps edge" `Quick test_xor_path_keeps_edge;
          Alcotest.test_case "area weights" `Quick test_area_weight_matches_area;
        ] );
      ( "gradient",
        [
          qtest prop_gradient_matches_numerical;
          qtest prop_midpoint_convexity;
          qtest prop_gradient_zero_entry_for_drive;
        ] );
    ]
