(* Tests for Pops_core: bounds, constant-sensitivity sizing, buffers,
   restructuring, domains, trade-off curves and the protocol. *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Library = Pops_cell.Library
module Path = Pops_delay.Path
module Bounds = Pops_core.Bounds
module Sens = Pops_core.Sensitivity
module Buffers = Pops_core.Buffers
module Restructure = Pops_core.Restructure
module Domains = Pops_core.Domains
module Tradeoff = Pops_core.Tradeoff
module Power = Pops_core.Power
module Protocol = Pops_core.Protocol
module N = Pops_util.Numerics

(* deterministic property tests: fixed RNG seed per test *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let tech = Tech.cmos025
let lib = Library.make tech

let mk ?(branch = 0.) ?(c_out = 100.) kinds = Path.of_kinds ~lib ~branch ~c_out kinds

(* an 11-gate path like the paper's Fig. 3 example *)
let path11 =
  mk ~branch:5. ~c_out:150.
    [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nor 2; Gk.Nand 3; Gk.Inv; Gk.Aoi21;
      Gk.Inv; Gk.Nand 2; Gk.Nor 3; Gk.Inv ]

let path5 = mk [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nor 2; Gk.Inv ]

(* --- bounds --- *)

let test_bounds_order () =
  let b = Bounds.compute path11 in
  Alcotest.(check bool) "tmin < tmax" true (b.Bounds.tmin < b.Bounds.tmax);
  Alcotest.(check bool) "tmin positive" true (b.Bounds.tmin > 0.)

let test_tmin_stationary () =
  let b = Bounds.compute path11 in
  Alcotest.(check bool) "gradient vanishes at tmin sizing" true
    (Bounds.verify_stationary ~beta:b.Bounds.beta_tmin path11 b.Bounds.sizing_tmin)

let test_tmin_beats_random_probes () =
  (* the optimizer minimises the balanced rise/fall delay; no random
     perturbation may beat it on that objective *)
  let b = Bounds.compute path11 in
  let d_opt = Path.delay_avg path11 b.Bounds.sizing_tmin in
  let rng = Pops_util.Rng.create 123L in
  for _ = 1 to 200 do
    let x =
      Array.map
        (fun s -> s *. Pops_util.Rng.log_range rng 0.3 3.)
        b.Bounds.sizing_tmin
    in
    let d = Path.delay_avg path11 (Path.clamp_sizing path11 x) in
    Alcotest.(check bool) "no probe beats tmin" true (d >= d_opt -. 1e-6)
  done

let test_tmin_trace_monotone_convergence () =
  (* Fig. 1: starting from minimum drive (Tmax), the iterations descend to
     Tmin. The first point is Tmax; the last is within tolerance of Tmin. *)
  let trace = Bounds.tmin_trace path11 in
  let b = Bounds.compute path11 in
  (match trace with
  | first :: _ ->
    Alcotest.(check bool) "first point is Tmax" true
      (N.close ~rtol:1e-9 first.Bounds.delay b.Bounds.tmax)
  | [] -> Alcotest.fail "empty trace");
  let last = List.nth trace (List.length trace - 1) in
  (* the trace follows the balanced iteration; Bounds.tmin may sit on a
     different polarity weighting, so allow a few percent *)
  Alcotest.(check bool) "last point is Tmin" true
    (last.Bounds.delay <= b.Bounds.tmin *. 1.05
    && last.Bounds.delay >= b.Bounds.tmin *. 0.999);
  Alcotest.(check bool) "area grows along the descent" true
    (last.Bounds.sum_cin_ratio > (List.hd trace).Bounds.sum_cin_ratio)

let test_tmin_independent_of_start () =
  (* the paper: "the final value Tmin is conserved whatever is the initial
     solution".  Start the balanced fixed point from a random point and
     from the minimum-drive point: same optimum. *)
  let x_ref = Sens.solve_worst ~a:0. path11 in
  let rng = Pops_util.Rng.create 7L in
  let x0 = Array.map (fun s -> s *. Pops_util.Rng.log_range rng 0.5 8.) x_ref in
  let x = Sens.solve_worst ~a:0. ~x0:(Path.clamp_sizing path11 x0) path11 in
  Alcotest.(check bool) "same Tmin from random start" true
    (Float.abs (Path.delay_worst path11 x -. Path.delay_worst path11 x_ref) < 0.1)

let test_feasibility () =
  let b = Bounds.compute path5 in
  Alcotest.(check bool) "tc above tmin feasible" true
    (Bounds.feasible path5 ~tc:(b.Bounds.tmin *. 1.2));
  Alcotest.(check bool) "tc below tmin infeasible" false
    (Bounds.feasible path5 ~tc:(b.Bounds.tmin *. 0.8))

(* --- sensitivity --- *)

let test_solve_rejects_positive_a () =
  match Sens.solve ~a:1.0 path5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_delay_monotone_in_a () =
  let ds =
    List.map (fun a -> Sens.delay_of_a path11 a) [ 0.; -0.01; -0.05; -0.2; -1.; -5. ]
  in
  let rec check = function
    | d1 :: (d2 :: _ as rest) ->
      Alcotest.(check bool) "delay grows as a decreases" true (d2 >= d1 -. 1e-6);
      check rest
    | _ -> ()
  in
  check ds

let test_area_monotone_in_a () =
  let area_of a =
    let x, _ = Sens.solve ~a path11 in
    Path.area path11 x
  in
  let areas = List.map area_of [ 0.; -0.05; -0.5; -5. ] in
  let rec check = function
    | a1 :: (a2 :: _ as rest) ->
      Alcotest.(check bool) "area shrinks as a decreases" true (a2 <= a1 +. 1e-6);
      check rest
    | _ -> ()
  in
  check areas

let test_size_for_constraint_meets_tc () =
  let b = Bounds.compute path11 in
  let tc = 1.3 *. b.Bounds.tmin in
  match Sens.size_for_constraint path11 ~tc with
  | Ok r ->
    Alcotest.(check bool) "constraint met" true (r.Sens.delay <= tc +. 0.05);
    Alcotest.(check bool) "tight (within 2% of tc)" true (r.Sens.delay >= 0.9 *. tc);
    Alcotest.(check bool) "cheaper than tmin sizing" true
      (r.Sens.area <= Path.area path11 b.Bounds.sizing_tmin +. 1e-6)
  | Error (`Infeasible _) -> Alcotest.fail "1.3 Tmin must be feasible"

let test_size_for_constraint_infeasible () =
  let b = Bounds.compute path11 in
  match Sens.size_for_constraint path11 ~tc:(0.9 *. b.Bounds.tmin) with
  | Error (`Infeasible tmin) ->
    Alcotest.(check bool) "reports tmin" true (Float.abs (tmin -. b.Bounds.tmin) < 0.5)
  | Ok _ -> Alcotest.fail "sub-Tmin constraint must be infeasible"

let test_size_for_constraint_loose () =
  let tmax = Bounds.tmax path11 in
  match Sens.size_for_constraint path11 ~tc:(2. *. tmax) with
  | Ok r ->
    let min_area = Path.area path11 (Path.min_sizing path11) in
    Alcotest.(check bool) "loose constraint -> minimum area" true
      (N.close ~rtol:1e-6 min_area r.Sens.area)
  | Error _ -> Alcotest.fail "loose constraint must be feasible"

let test_frozen_stages_kept () =
  let x0 = Path.min_sizing path5 in
  x0.(2) <- 17.;
  let x, _ = Sens.solve ~a:0. ~frozen:[ 2 ] ~x0 path5 in
  Alcotest.(check bool) "frozen stage untouched" true (x.(2) = 17.)

let test_sutherland_vs_sensitivity_area () =
  (* Section 3.2's claim: at the same hard constraint the constant
     sensitivity method needs less area than equal-delay distribution. *)
  let b = Bounds.compute path11 in
  let tc = 1.2 *. b.Bounds.tmin in
  let x_suth = Sens.sutherland path11 ~tc in
  let d_suth = Path.delay path11 x_suth in
  match Sens.size_for_constraint path11 ~tc with
  | Error _ -> Alcotest.fail "feasible tc"
  | Ok r ->
    if d_suth <= tc +. 0.5 then
      Alcotest.(check bool)
        (Printf.sprintf "sensitivity area %.1f <= sutherland area %.1f" r.Sens.area
           (Path.area path11 x_suth))
        true
        (r.Sens.area <= Path.area path11 x_suth +. 1e-6)
    else
      (* Sutherland missed the constraint entirely - also a win for the
         sensitivity method; record it. *)
      Alcotest.(check bool) "sutherland missed tc" true true

(* --- buffers --- *)

let test_flimit_ordering () =
  (* Table 2: inv > nand2 > nand3 > nor2 > nor3 *)
  let f gate = Buffers.flimit ~lib ~driver:Gk.Inv ~gate () in
  let fi = f Gk.Inv and fn2 = f (Gk.Nand 2) and fn3 = f (Gk.Nand 3) in
  let fr2 = f (Gk.Nor 2) and fr3 = f (Gk.Nor 3) in
  Alcotest.(check bool)
    (Printf.sprintf "ordering: %.1f %.1f %.1f %.1f %.1f" fi fn2 fn3 fr2 fr3)
    true
    (fi > fn2 && fn2 > fn3 && fn3 > fr2 && fr2 > fr3)

let test_flimit_finite_and_plausible () =
  let f = Buffers.flimit ~lib ~driver:Gk.Inv ~gate:Gk.Inv () in
  Alcotest.(check bool) (Printf.sprintf "inv flimit %.1f in [2,30]" f) true
    (f > 2. && f < 30.)

let test_buffered_beats_direct_beyond_limit () =
  let gate = Gk.Nor 3 in
  let fl = Buffers.flimit ~lib ~driver:Gk.Inv ~gate () in
  let gate_cin = 4. *. tech.Tech.cmin in
  let test_f f expect_buffer_wins =
    let cload = f *. gate_cin in
    let direct = Buffers.delay_direct ~lib ~driver:Gk.Inv ~gate ~gate_cin ~cload in
    let buffered, _ =
      Buffers.delay_buffered ~lib ~driver:Gk.Inv ~gate ~gate_cin ~cload ()
    in
    Alcotest.(check bool)
      (Printf.sprintf "F=%.1f direct=%.1f buffered=%.1f" f direct buffered)
      expect_buffer_wins (buffered < direct)
  in
  test_f (fl *. 2.) true;
  test_f (fl /. 2.) false

let test_path_fanouts () =
  let x = Path.min_sizing path5 in
  let f = Buffers.path_fanouts path5 x in
  Alcotest.(check int) "one per stage" 5 (Array.length f);
  Array.iter (fun v -> Alcotest.(check bool) "positive" true (v > 0.)) f

let heavy_path =
  (* a path with a hugely overloaded, inverter-fed NOR3: prime target for
     both buffer insertion and the absorbed De Morgan rewrite *)
  mk ~c_out:30.
    [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nor 3; Gk.Inv; Gk.Inv ]
  |> fun p ->
  Path.with_stage_replaced p ~at:3
    { Path.cell = Pops_cell.Library.find lib (Gk.Nor 3); branch = 400. }

let test_critical_nodes_found () =
  let b = Bounds.compute heavy_path in
  let nodes = Buffers.critical_nodes ~lib heavy_path b.Bounds.sizing_tmin in
  Alcotest.(check bool) "the overloaded NOR3 is critical" true (List.mem 3 nodes)

let test_global_insertion_improves_tmin () =
  let b = Bounds.compute heavy_path in
  let r = Buffers.insert_global ~objective:`Tmin ~lib heavy_path in
  Alcotest.(check bool) "structure modified (pair or shield)" true
    (r.Buffers.inserted_after <> [] || r.Buffers.shields <> []);
  Alcotest.(check bool)
    (Printf.sprintf "tmin improved: %.1f -> %.1f" b.Bounds.tmin r.Buffers.delay)
    true
    (r.Buffers.delay < b.Bounds.tmin)

let test_shield_stage_dilutes () =
  match Buffers.shield_stage ~lib heavy_path ~at:3 with
  | None -> Alcotest.fail "the 400 fF branch must be shieldable"
  | Some (p, sh) ->
    Alcotest.(check int) "same length" (Path.length heavy_path) (Path.length p);
    Alcotest.(check bool) "branch reduced" true
      (p.Path.stages.(3).Path.branch < heavy_path.Path.stages.(3).Path.branch /. 4.);
    Alcotest.(check bool) "shield area positive" true (sh.Buffers.shield_area > 0.);
    Alcotest.(check bool) "b2 sized for the branch" true
      (sh.Buffers.b2 >= sh.Buffers.b1)

let test_shield_stage_rejects_small_branch () =
  (* path5 has no branch loads: nothing to dilute *)
  Alcotest.(check bool) "no shield on tiny branch" true
    (Buffers.shield_stage ~lib path5 ~at:2 = None)

let test_global_insertion_never_worse () =
  (* on a path with no overloaded node the result must not regress *)
  let b = Bounds.compute path5 in
  let r = Buffers.insert_global ~objective:`Tmin ~lib path5 in
  Alcotest.(check bool) "no regression" true (r.Buffers.delay <= b.Bounds.tmin +. 1e-6)

let test_local_insertion_keeps_original_sizes () =
  let b = Bounds.compute heavy_path in
  let r = Buffers.insert_local ~lib heavy_path b.Bounds.sizing_tmin in
  (* shields only: same stage count, sizes untouched, delay not worse *)
  Alcotest.(check int) "same length" (Path.length heavy_path) (Path.length r.Buffers.path);
  Alcotest.(check bool) "shield on the loaded NOR3" true
    (List.exists (fun s -> s.Buffers.stage = 3) r.Buffers.shields);
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "size %d kept" i) true
        (Float.abs (c -. b.Bounds.sizing_tmin.(i)) < 1e-9))
    r.Buffers.sizing;
  Alcotest.(check bool) "delay not worse" true (r.Buffers.delay <= b.Bounds.tmin +. 1e-6);
  Alcotest.(check bool) "area grew by the shields" true
    (r.Buffers.area > Path.area heavy_path b.Bounds.sizing_tmin)

(* --- restructure --- *)

let nor_path =
  (* NORs carrying real branch loads: the restructuring candidates *)
  let nor3 = Pops_cell.Library.find lib (Gk.Nor 3) in
  let nor2 = Pops_cell.Library.find lib (Gk.Nor 2) in
  mk ~c_out:120. [ Gk.Inv; Gk.Nand 2; Gk.Nor 3; Gk.Inv; Gk.Nor 2; Gk.Inv ]
  |> fun p -> Path.with_stage_replaced p ~at:2 { Path.cell = nor3; branch = 90. }
  |> fun p -> Path.with_stage_replaced p ~at:4 { Path.cell = nor2; branch = 90. }

let test_candidates_are_nors () =
  let cands = Restructure.candidates ~lib nor_path in
  Alcotest.(check (list int)) "NOR stages" [ 2; 4 ] cands

let test_apply_structure () =
  match Restructure.apply ~lib nor_path with
  | None -> Alcotest.fail "rewrite expected"
  | Some r ->
    (* NOR3 at 2 is NAND2-fed: expanded form (+2 stages); NOR2 at 4 is fed
       by the inverter at 3: absorbed form (+0 stages). *)
    Alcotest.(check int) "stage count" (6 + 2) (Path.length r.Restructure.path);
    Alcotest.(check int) "two rewrites" 2 (List.length r.Restructure.rewrites);
    Alcotest.(check bool) "side area positive" true (r.Restructure.side_area > 0.);
    let kinds = Path.stage_kinds r.Restructure.path in
    Alcotest.(check bool) "no NOR left" true
      (not (List.exists (function Gk.Nor _ -> true | _ -> false) kinds))

let test_apply_absorbs_feeding_inverter () =
  (* [INV NOR2] with a clean feeding inverter collapses to [NAND2 INV]. *)
  let nor2 = Pops_cell.Library.find lib (Gk.Nor 2) in
  let p =
    mk ~c_out:90. [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nor 2; Gk.Inv ]
    |> fun p -> Path.with_stage_replaced p ~at:3 { Path.cell = nor2; branch = 100. }
  in
  match Restructure.apply ~lib p with
  | None -> Alcotest.fail "rewrite expected"
  | Some r ->
    Alcotest.(check int) "same stage count" 5 (Path.length r.Restructure.path);
    let kinds = Path.stage_kinds r.Restructure.path in
    Alcotest.(check bool) "nand2 present at 2" true (Gk.equal (List.nth kinds 2) (Gk.Nand 2));
    Alcotest.(check bool) "inverter after it" true (Gk.equal (List.nth kinds 3) Gk.Inv)

let test_apply_none_without_nor () =
  (* NAND's dual is NOR, which is *less* efficient, so a NAND/INV path has
     no rewrite candidates. *)
  let p = mk [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nand 3; Gk.Inv ] in
  Alcotest.(check (list int)) "no candidates" [] (Restructure.candidates ~lib p);
  Alcotest.(check bool) "apply returns None" true (Restructure.apply ~lib p = None)

let test_restructure_area_beats_buffers_hard () =
  (* Table 4's claim: on a loaded, inverter-fed NOR under a hard
     constraint, restructuring is cheaper than buffer insertion. *)
  let nor3 = Pops_cell.Library.find lib (Gk.Nor 3) in
  let p =
    mk ~c_out:80. [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nor 3; Gk.Inv; Gk.Nand 2; Gk.Inv ]
  in
  let p = Path.with_stage_replaced p ~at:3 { Path.cell = nor3; branch = 250. } in
  let b = Bounds.compute p in
  let tc = 1.1 *. b.Bounds.tmin in
  let buf = Buffers.insert_global ~objective:(`Area_at tc) ~lib p in
  match Restructure.optimize ~lib p ~tc with
  | None -> Alcotest.fail "restructure must be feasible here"
  | Some o ->
    Alcotest.(check bool)
      (Printf.sprintf "restructure %.1f <= buffers %.1f um" o.Restructure.o_area
         buf.Buffers.area)
      true
      (o.Restructure.o_area <= buf.Buffers.area)

(* --- domains --- *)

let test_classify () =
  let t d = Domains.classify ~tmin:100. ~tc:d in
  Alcotest.(check bool) "weak" true (t 300. = Domains.Weak);
  Alcotest.(check bool) "medium" true (t 180. = Domains.Medium);
  Alcotest.(check bool) "hard" true (t 110. = Domains.Hard);
  Alcotest.(check bool) "boundary 1.2 is hard" true (t 120. = Domains.Hard);
  Alcotest.(check bool) "boundary 2.5 is medium" true (t 250. = Domains.Medium);
  Alcotest.(check bool) "infeasible" true (t 90. = Domains.Infeasible)

let test_representative_tc () =
  List.iter
    (fun d ->
      let tc = Domains.representative_tc ~tmin:100. d in
      Alcotest.(check bool) (Domains.to_string d) true
        (Domains.classify ~tmin:100. ~tc = d))
    [ Domains.Weak; Domains.Medium; Domains.Hard; Domains.Infeasible ]

(* --- tradeoff --- *)

let test_curve_monotone () =
  let curve = Tradeoff.curve ~points:15 path11 in
  Alcotest.(check int) "points" 15 (List.length curve);
  let rec check = function
    | p :: (q :: _ as rest) ->
      Alcotest.(check bool) "delay non-decreasing" true
        (q.Tradeoff.delay >= p.Tradeoff.delay -. 1e-6);
      Alcotest.(check bool) "area non-increasing" true
        (q.Tradeoff.area <= p.Tradeoff.area +. 1e-6);
      check rest
    | _ -> ()
  in
  check curve

let test_curve_endpoints () =
  let curve = Tradeoff.curve ~points:15 path11 in
  let b = Bounds.compute path11 in
  (match curve with
  | first :: _ ->
    (* the curve's a = 0 endpoint is the balanced minimum: within a few
       percent above the grid Tmin, never below *)
    Alcotest.(check bool) "starts at tmin" true
      (first.Tradeoff.delay >= b.Bounds.tmin -. 0.5
      && first.Tradeoff.delay <= b.Bounds.tmin *. 1.05)
  | [] -> Alcotest.fail "empty curve")

(* --- power --- *)

let test_leakage_tracks_area_and_corner () =
  let b = Bounds.compute path11 in
  let p_small = Power.of_path path11 (Path.min_sizing path11) in
  let p_big = Power.of_path path11 b.Bounds.sizing_tmin in
  Alcotest.(check bool) "leakage grows with width" true
    (p_big.Power.leakage_uw > p_small.Power.leakage_uw);
  (* slow corner leaks less, fast corner more *)
  let leak corner =
    let techc = Tech.at_corner tech corner in
    let libc = Library.make techc in
    let p = Path.of_kinds ~lib:libc ~c_out:100. [ Gk.Inv; Gk.Inv; Gk.Inv ] in
    (Power.of_path p (Path.min_sizing p)).Power.leakage_uw
  in
  Alcotest.(check bool) "SS < TT < FF leakage" true
    (leak Tech.SS < leak Tech.TT && leak Tech.TT < leak Tech.FF)

let test_power_scales_with_sizing () =
  let x_small = Path.min_sizing path11 in
  let b = Bounds.compute path11 in
  let p_small = Power.of_path path11 x_small in
  let p_big = Power.of_path path11 b.Bounds.sizing_tmin in
  Alcotest.(check bool) "bigger sizing -> more power" true
    (p_big.Power.dynamic_uw > p_small.Power.dynamic_uw);
  Alcotest.(check bool) "area consistent" true
    (N.close ~rtol:1e-9 p_big.Power.area (Path.area path11 b.Bounds.sizing_tmin))

(* --- protocol --- *)

let test_protocol_weak_uses_sizing () =
  let b = Bounds.compute path11 in
  let r = Protocol.run ~lib ~tc:(3. *. b.Bounds.tmin) path11 in
  Alcotest.(check bool) "weak domain" true (r.Protocol.domain = Domains.Weak);
  Alcotest.(check bool) "sizing strategy" true (r.Protocol.strategy = Protocol.Sizing_only);
  Alcotest.(check bool) "met" true r.Protocol.met

let test_protocol_hard_meets () =
  let b = Bounds.compute path11 in
  let r = Protocol.run ~lib ~tc:(1.1 *. b.Bounds.tmin) path11 in
  Alcotest.(check bool) "hard domain" true (r.Protocol.domain = Domains.Hard);
  Alcotest.(check bool) "met" true r.Protocol.met

let test_protocol_infeasible_restructures_or_buffers () =
  let b = Bounds.compute heavy_path in
  let tc = 0.97 *. b.Bounds.tmin in
  let r = Protocol.run ~lib ~tc heavy_path in
  Alcotest.(check bool) "infeasible domain" true (r.Protocol.domain = Domains.Infeasible);
  Alcotest.(check bool) "structure was modified" true
    (r.Protocol.buffers_inserted > 0 || r.Protocol.rewrites <> []);
  Alcotest.(check bool)
    (Printf.sprintf "met sub-Tmin constraint (%.1f <= %.1f)" r.Protocol.delay tc)
    true r.Protocol.met

let test_protocol_report_consistency () =
  let b = Bounds.compute path11 in
  let tc = 1.5 *. b.Bounds.tmin in
  let r = Protocol.run ~lib ~tc path11 in
  Alcotest.(check bool) "delay consistent with sizing" true
    (N.close ~rtol:1e-6 r.Protocol.delay (Path.delay r.Protocol.path r.Protocol.sizing));
  Alcotest.(check bool) "met flag consistent" true (r.Protocol.met = (r.Protocol.delay <= tc +. 0.05))

(* --- discrete --- *)

module Discrete = Pops_core.Discrete

let test_snap_up_legal_and_not_smaller () =
  let b = Bounds.compute path11 in
  let snapped = Discrete.snap_up ~lib path11 b.Bounds.sizing_tmin in
  Alcotest.(check bool) "legal" true (Discrete.is_legal ~lib path11 snapped);
  Array.iteri
    (fun i c ->
      if i > 0 then
        Alcotest.(check bool) "never shrinks" true (c >= b.Bounds.sizing_tmin.(i) -. 1e-9))
    snapped

let test_legalize_meets_constraint () =
  let b = Bounds.compute path11 in
  let tc = 1.3 *. b.Bounds.tmin in
  match Sens.size_for_constraint path11 ~tc with
  | Error _ -> Alcotest.fail "feasible"
  | Ok r ->
    let leg = Discrete.legalize ~lib path11 ~tc r.Sens.sizing in
    Alcotest.(check bool) "met on the grid" true leg.Discrete.met;
    Alcotest.(check bool) "legal" true (Discrete.is_legal ~lib path11 leg.Discrete.sizing);
    Alcotest.(check bool) "grid costs some area" true
      (leg.Discrete.area >= r.Sens.area -. 1e-9)

let test_grid_overhead_reasonable () =
  let b = Bounds.compute path11 in
  let tc = 1.4 *. b.Bounds.tmin in
  match Discrete.grid_overhead ~lib path11 ~tc with
  | None -> Alcotest.fail "feasible tc"
  | Some (cont, legal) ->
    let overhead = (legal -. cont) /. cont in
    Alcotest.(check bool)
      (Printf.sprintf "overhead %.1f%% in [0%%, 60%%]" (100. *. overhead))
      true
      (overhead >= -1e-9 && overhead < 0.6)

let test_grid_overhead_infeasible () =
  let b = Bounds.compute path11 in
  Alcotest.(check bool) "None below Tmin" true
    (Discrete.grid_overhead ~lib path11 ~tc:(0.8 *. b.Bounds.tmin) = None)

(* --- margins --- *)

module Margins = Pops_core.Margins

let loaded_path =
  mk ~branch:20. ~c_out:120. [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nor 2; Gk.Inv ]

let test_yield_zero_sigma () =
  let b = Bounds.compute loaded_path in
  let tc = 1.3 *. b.Bounds.tmin in
  match Sens.size_for_constraint loaded_path ~tc with
  | Error _ -> Alcotest.fail "feasible"
  | Ok r ->
    let y = Margins.timing_yield ~samples:50 ~sigma:0. ~tc loaded_path r.Sens.sizing in
    Alcotest.(check bool) "yield 1 with no uncertainty" true (y.Margins.yield = 1.);
    Alcotest.(check bool) "mean = nominal" true
      (Float.abs (y.Margins.mean_delay -. r.Sens.delay) < 0.5)

let test_yield_drops_with_sigma () =
  let b = Bounds.compute loaded_path in
  let tc = 1.15 *. b.Bounds.tmin in
  match Sens.size_for_constraint loaded_path ~tc with
  | Error _ -> Alcotest.fail "feasible"
  | Ok r ->
    let y_small = Margins.timing_yield ~sigma:0.05 ~tc loaded_path r.Sens.sizing in
    let y_big = Margins.timing_yield ~sigma:0.4 ~tc loaded_path r.Sens.sizing in
    Alcotest.(check bool)
      (Printf.sprintf "yield %.2f (s=0.05) >= %.2f (s=0.4)" y_small.Margins.yield
         y_big.Margins.yield)
      true
      (y_small.Margins.yield >= y_big.Margins.yield);
    Alcotest.(check bool) "big sigma breaks timing sometimes" true
      (y_big.Margins.yield < 1.);
    Alcotest.(check bool) "p95 >= mean" true
      (y_big.Margins.p95_delay >= y_big.Margins.mean_delay)

let test_yield_deterministic () =
  let x = Path.min_sizing loaded_path in
  let y1 = Margins.timing_yield ~sigma:0.2 ~tc:1000. loaded_path x in
  let y2 = Margins.timing_yield ~sigma:0.2 ~tc:1000. loaded_path x in
  Alcotest.(check bool) "same seed, same yield" true (y1.Margins.yield = y2.Margins.yield)

let test_guardband_costs_area () =
  let b = Bounds.compute loaded_path in
  let tc = 1.5 *. b.Bounds.tmin in
  let g0 = Margins.guardband ~margin:0. ~tc loaded_path in
  let g2 = Margins.guardband ~margin:0.2 ~tc loaded_path in
  Alcotest.(check bool) "both feasible" true (g0.Margins.feasible && g2.Margins.feasible);
  Alcotest.(check bool) "margin costs area" true (g2.Margins.area > g0.Margins.area);
  Alcotest.(check bool) "margin speeds nominal" true
    (g2.Margins.nominal_delay < g0.Margins.nominal_delay)

let test_margin_for_yield () =
  let b = Bounds.compute loaded_path in
  let tc = 1.5 *. b.Bounds.tmin in
  match Margins.margin_for_yield ~samples:200 ~sigma:0.15 ~tc loaded_path with
  | None -> Alcotest.fail "a margin must exist at 1.5 Tmin with 15% sigma"
  | Some g ->
    Alcotest.(check bool) "margin within bounds" true
      (g.Margins.margin >= 0. && g.Margins.margin <= 0.5);
    let y = Margins.timing_yield ~samples:200 ~sigma:0.15 ~tc loaded_path g.Margins.sizing in
    Alcotest.(check bool)
      (Printf.sprintf "yield %.2f >= 0.95" y.Margins.yield)
      true (y.Margins.yield >= 0.95)

(* --- repeaters --- *)

module Repeaters = Pops_core.Repeaters

let test_wire_validation () =
  match Repeaters.wire_of_length 0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero length accepted"

let test_unrepeated_quadratic_in_length () =
  let d len =
    Repeaters.unrepeated_delay ~lib (Repeaters.wire_of_length len)
      ~driver_cin:(8. *. tech.Tech.cmin) ~cload:10.
  in
  (* 4x the length: a linear law would give 4x the delay; the wire's
     quadratic term must push it clearly beyond *)
  Alcotest.(check bool)
    (Printf.sprintf "superlinear growth (%.1fx for 4x length)" (d 16. /. d 4.))
    true
    (d 16. /. d 4. > 4.5)

let test_repeaters_beat_long_wire () =
  let wire = Repeaters.wire_of_length 8. in
  let un =
    Repeaters.unrepeated_delay ~lib wire ~driver_cin:(32. *. tech.Tech.cmin)
      ~cload:10.
  in
  let sol = Repeaters.optimize ~lib wire ~cload:10. in
  Alcotest.(check bool)
    (Printf.sprintf "repeated %.0f < unrepeated %.0f ps" sol.Repeaters.delay un)
    true (sol.Repeaters.delay < un);
  Alcotest.(check bool) "uses several repeaters" true (sol.Repeaters.segments > 2)

let test_repeater_count_scales_with_length () =
  let n len = (Repeaters.optimize ~lib (Repeaters.wire_of_length len) ~cload:10.).Repeaters.segments in
  Alcotest.(check bool) "monotone in length" true (n 2. <= n 8. && n 8. <= n 20.);
  (* optimal count ~ proportional to length: quadrupling the wire should
     much more than double the count *)
  Alcotest.(check bool) "roughly linear scaling" true (n 8. >= 2 * n 2.)

let test_repeater_optimum_matches_closed_form () =
  (* n* = sqrt(0.4 R_w C_w / (R_inv(cmin) * cmin-ish)): check within 2x *)
  let wire = Repeaters.wire_of_length 10. in
  let sol = Repeaters.optimize ~lib wire ~cload:10. in
  let inv = Pops_cell.Library.inverter lib in
  let tech_ = Pops_cell.Library.tech lib in
  let s_avg = 0.5 *. (inv.Pops_cell.Cell.s_hl +. inv.Pops_cell.Cell.s_lh) in
  let k_drv = 1.1 *. s_avg *. tech_.Tech.tau /. 2. in
  (* per-unit-size inverter: R_inv * C_inv = k_drv * (1 + par_ratio) *)
  let rc_inv = k_drv *. (1. +. inv.Pops_cell.Cell.par_ratio) in
  let n_star = sqrt (0.4 *. wire.Repeaters.r_total *. wire.Repeaters.c_total /. rc_inv) in
  let ratio = float_of_int sol.Repeaters.segments /. n_star in
  Alcotest.(check bool)
    (Printf.sprintf "n=%d vs closed form %.1f (ratio %.2f)" sol.Repeaters.segments n_star ratio)
    true
    (ratio > 0.5 && ratio < 2.)

(* --- printers and odds --- *)

let test_protocol_pp_smoke () =
  let b = Bounds.compute path5 in
  let r = Protocol.run ~lib ~tc:(1.4 *. b.Bounds.tmin) path5 in
  let s = Format.asprintf "%a" Protocol.pp_report r in
  Alcotest.(check bool) "mentions strategy" true (String.length s > 40)

let test_guardband_infeasible_reported () =
  let b = Bounds.compute path5 in
  (* margin so large the target dips below Tmin *)
  let g = Margins.guardband ~margin:10. ~tc:(1.05 *. b.Bounds.tmin) path5 in
  Alcotest.(check bool) "reported infeasible" false g.Margins.feasible;
  Alcotest.(check bool) "falls back to the fastest sizing" true
    (Float.abs (g.Margins.nominal_delay -. b.Bounds.tmin) /. b.Bounds.tmin < 0.02)

let test_tradeoff_crossover_none_on_identical () =
  let c = Tradeoff.curve ~points:8 path5 in
  (* identical fronts never show a strict win *)
  Alcotest.(check bool) "no crossover against itself" true
    (match Tradeoff.crossover_delay c c with None -> true | Some _ -> false)

let test_domains_to_string_unique () =
  let names =
    List.map Domains.to_string
      [ Domains.Weak; Domains.Medium; Domains.Hard; Domains.Infeasible ]
  in
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare names))

(* --- qcheck properties --- *)

let kind_pool = [| Gk.Inv; Gk.Nand 2; Gk.Nand 3; Gk.Nor 2; Gk.Nor 3; Gk.Aoi21 |]

let random_path_gen =
  QCheck.Gen.(
    let* len = int_range 3 10 in
    let* kinds = list_size (return len) (oneofl (Array.to_list kind_pool)) in
    let* branch = float_range 0. 20. in
    let* c_out = float_range 20. 300. in
    return (mk ~branch ~c_out kinds))

let random_path_arb = QCheck.make ~print:(Format.asprintf "%a" Path.pp) random_path_gen

let prop_tmin_below_tmax =
  QCheck.Test.make ~name:"tmin <= tmax on random paths" ~count:60 random_path_arb
    (fun p ->
      let b = Bounds.compute p in
      b.Bounds.tmin <= b.Bounds.tmax +. 1e-6)

let prop_tmin_stationary =
  QCheck.Test.make ~name:"tmin sizing is stationary" ~count:40 random_path_arb
    (fun p ->
      let b = Bounds.compute p in
      Bounds.verify_stationary ~tol:2e-2 ~beta:b.Bounds.beta_tmin p
        b.Bounds.sizing_tmin)

let prop_constraint_met =
  QCheck.Test.make ~name:"size_for_constraint meets feasible tc" ~count:40
    (QCheck.pair random_path_arb (QCheck.float_range 1.05 4.))
    (fun (p, ratio) ->
      let b = Bounds.compute p in
      let tc = ratio *. b.Bounds.tmin in
      match Sens.size_for_constraint p ~tc with
      | Ok r -> r.Sens.delay <= tc +. 0.1
      | Error _ -> false)

let prop_protocol_always_met_when_feasible =
  QCheck.Test.make ~name:"protocol meets every feasible constraint" ~count:30
    (QCheck.pair random_path_arb (QCheck.float_range 1.02 3.5))
    (fun (p, ratio) ->
      let b = Bounds.compute p in
      let tc = ratio *. b.Bounds.tmin in
      let r = Protocol.run ~lib ~tc p in
      r.Protocol.met)

(* --- fallback ladder: watchdogs and graceful degradation --- *)

module Fault = Pops_check.Fault
module Diag = Pops_robust.Diag

let has_code code diags = List.exists (fun d -> d.Diag.code = code) diags

let test_ladder_healthy_first_rung () =
  (* faults disabled: the ladder never descends and its result is
     bit-identical to the plain entry point *)
  Fault.clear ();
  let baseline = Sens.solve_worst path11 in
  let r = Sens.solve_robust path11 in
  Alcotest.(check bool) "accelerated rung" true (r.Sens.fallback = Sens.Accelerated);
  Alcotest.(check bool) "no warnings" true
    (List.for_all (fun d -> d.Diag.severity = Diag.Info) r.Sens.diags);
  Alcotest.(check bool) "bit-identical to solve_worst" true (baseline = r.Sens.sizing);
  match Sens.solve_o path11 with
  | Pops_robust.Outcome.Exact x ->
    Alcotest.(check bool) "solve_o Exact, same sizing" true (x = baseline)
  | _ -> Alcotest.fail "healthy solve_o must be Exact"

let forced_rung spec =
  Fault.with_spec spec (fun () -> Sens.solve_robust path11)

let check_near_healthy (r : Sens.robust_report) =
  (* intermediate rungs converge to the same fixed point *)
  let healthy = Sens.solve_worst path11 in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) "close to healthy solve" true
        (Float.abs (x -. healthy.(i)) <= 1e-3 *. healthy.(i)))
    r.Sens.sizing

let test_ladder_forced_plain () =
  let r = forced_rung "solver.diverge.accel" in
  Alcotest.(check string) "rung" "plain" (Sens.rung_name r.Sens.fallback);
  Alcotest.(check bool) "divergence reported" true
    (has_code Diag.Solver_divergence r.Sens.diags);
  Alcotest.(check bool) "fallback reported" true
    (has_code Diag.Solver_fallback r.Sens.diags);
  check_near_healthy r

let test_ladder_forced_damped () =
  let r = forced_rung "solver.diverge.accel,solver.diverge.plain" in
  Alcotest.(check string) "rung" "damped" (Sens.rung_name r.Sens.fallback);
  check_near_healthy r

let test_ladder_forced_tmax_safe () =
  let b = Bounds.compute path11 in
  let r = forced_rung "solver.diverge" in
  Alcotest.(check string) "rung" "tmax-safe" (Sens.rung_name r.Sens.fallback);
  let d = Path.delay_worst path11 r.Sens.sizing in
  Alcotest.(check bool) "delay within the Tmax bound" true
    (d <= b.Bounds.tmax *. (1. +. 1e-9))

let test_ladder_nan_poisoning () =
  let r = forced_rung "solver.nan.accel" in
  Alcotest.(check string) "rung" "plain" (Sens.rung_name r.Sens.fallback);
  Alcotest.(check bool) "non-finite iterate reported" true
    (has_code Diag.Solver_nonfinite r.Sens.diags);
  Alcotest.(check bool) "injection recorded" true
    (has_code Diag.Fault_injected r.Sens.diags);
  check_near_healthy r

let test_ladder_degraded_outcome () =
  match Fault.with_spec "solver.diverge.accel" (fun () -> Sens.solve_o path11) with
  | Pops_robust.Outcome.Degraded (x, diags) ->
    Alcotest.(check bool) "diags attached" true (diags <> []);
    Alcotest.(check bool) "sizing finite" true
      (Array.for_all Float.is_finite x)
  | Pops_robust.Outcome.Exact _ -> Alcotest.fail "a forced descent must degrade"
  | Pops_robust.Outcome.Failed _ -> Alcotest.fail "a forced descent must still size"

let test_ladder_budget_keeps_iterate () =
  let budget = Pops_robust.Budget.create ~sweeps:2 () in
  let r = Sens.solve_robust ~budget path11 in
  Alcotest.(check bool) "sizing finite under a starved budget" true
    (Array.for_all Float.is_finite r.Sens.sizing);
  Alcotest.(check bool) "budget trip reported" true
    (has_code Diag.Budget_exceeded r.Sens.diags)

(* an ambient POPS_FAULT must not perturb the deterministic cases above;
   the ladder tests arm their own specs through [Fault.with_spec] *)
let () = Fault.clear ()

let () =
  Alcotest.run "pops_core"
    [
      ( "bounds",
        [
          Alcotest.test_case "tmin < tmax" `Quick test_bounds_order;
          Alcotest.test_case "tmin stationary" `Quick test_tmin_stationary;
          Alcotest.test_case "tmin beats random probes" `Quick test_tmin_beats_random_probes;
          Alcotest.test_case "trace converges (Fig.1)" `Quick test_tmin_trace_monotone_convergence;
          Alcotest.test_case "tmin independent of start" `Quick test_tmin_independent_of_start;
          Alcotest.test_case "feasibility" `Quick test_feasibility;
          qtest prop_tmin_below_tmax;
          qtest prop_tmin_stationary;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "rejects positive a" `Quick test_solve_rejects_positive_a;
          Alcotest.test_case "delay monotone in a" `Quick test_delay_monotone_in_a;
          Alcotest.test_case "area monotone in a" `Quick test_area_monotone_in_a;
          Alcotest.test_case "meets tc" `Quick test_size_for_constraint_meets_tc;
          Alcotest.test_case "infeasible below tmin" `Quick test_size_for_constraint_infeasible;
          Alcotest.test_case "loose tc -> min area" `Quick test_size_for_constraint_loose;
          Alcotest.test_case "frozen stages kept" `Quick test_frozen_stages_kept;
          Alcotest.test_case "beats sutherland area" `Quick test_sutherland_vs_sensitivity_area;
          qtest prop_constraint_met;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "healthy = first rung, bit-identical" `Quick
            test_ladder_healthy_first_rung;
          Alcotest.test_case "forced plain" `Quick test_ladder_forced_plain;
          Alcotest.test_case "forced damped" `Quick test_ladder_forced_damped;
          Alcotest.test_case "forced tmax-safe" `Quick test_ladder_forced_tmax_safe;
          Alcotest.test_case "nan poisoning" `Quick test_ladder_nan_poisoning;
          Alcotest.test_case "degraded outcome" `Quick test_ladder_degraded_outcome;
          Alcotest.test_case "starved budget keeps iterate" `Quick
            test_ladder_budget_keeps_iterate;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "flimit ordering (Table 2)" `Quick test_flimit_ordering;
          Alcotest.test_case "flimit plausible" `Quick test_flimit_finite_and_plausible;
          Alcotest.test_case "crossover behaviour" `Quick test_buffered_beats_direct_beyond_limit;
          Alcotest.test_case "path fanouts" `Quick test_path_fanouts;
          Alcotest.test_case "critical nodes found" `Quick test_critical_nodes_found;
          Alcotest.test_case "global insertion improves tmin" `Quick test_global_insertion_improves_tmin;
          Alcotest.test_case "shield dilutes branch" `Quick test_shield_stage_dilutes;
          Alcotest.test_case "shield rejects small branch" `Quick test_shield_stage_rejects_small_branch;
          Alcotest.test_case "global insertion never worse" `Quick test_global_insertion_never_worse;
          Alcotest.test_case "local insertion keeps sizes" `Quick test_local_insertion_keeps_original_sizes;
        ] );
      ( "restructure",
        [
          Alcotest.test_case "candidates are NORs" `Quick test_candidates_are_nors;
          Alcotest.test_case "apply structure" `Quick test_apply_structure;
          Alcotest.test_case "absorbs feeding inverter" `Quick test_apply_absorbs_feeding_inverter;
          Alcotest.test_case "no candidates without NOR" `Quick test_apply_none_without_nor;
          Alcotest.test_case "beats buffers under hard tc (Table 4)" `Quick
            test_restructure_area_beats_buffers_hard;
        ] );
      ( "domains",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "representative tc" `Quick test_representative_tc;
        ] );
      ( "tradeoff",
        [
          Alcotest.test_case "curve monotone" `Quick test_curve_monotone;
          Alcotest.test_case "curve endpoints" `Quick test_curve_endpoints;
        ] );
      ( "power",
        [
          Alcotest.test_case "scales with sizing" `Quick test_power_scales_with_sizing;
          Alcotest.test_case "leakage vs area and corner" `Quick test_leakage_tracks_area_and_corner;
        ] );
      ( "repeaters",
        [
          Alcotest.test_case "wire validation" `Quick test_wire_validation;
          Alcotest.test_case "quadratic wire delay" `Quick test_unrepeated_quadratic_in_length;
          Alcotest.test_case "repeaters beat long wire" `Quick test_repeaters_beat_long_wire;
          Alcotest.test_case "count scales with length" `Quick test_repeater_count_scales_with_length;
          Alcotest.test_case "matches closed form" `Quick test_repeater_optimum_matches_closed_form;
        ] );
      ( "margins",
        [
          Alcotest.test_case "zero sigma" `Quick test_yield_zero_sigma;
          Alcotest.test_case "yield drops with sigma" `Quick test_yield_drops_with_sigma;
          Alcotest.test_case "deterministic" `Quick test_yield_deterministic;
          Alcotest.test_case "guardband costs area" `Quick test_guardband_costs_area;
          Alcotest.test_case "margin for yield" `Quick test_margin_for_yield;
        ] );
      ( "discrete",
        [
          Alcotest.test_case "snap up legal" `Quick test_snap_up_legal_and_not_smaller;
          Alcotest.test_case "legalize meets tc" `Quick test_legalize_meets_constraint;
          Alcotest.test_case "grid overhead bounded" `Quick test_grid_overhead_reasonable;
          Alcotest.test_case "grid overhead infeasible" `Quick test_grid_overhead_infeasible;
        ] );
      ( "misc",
        [
          Alcotest.test_case "protocol pp" `Quick test_protocol_pp_smoke;
          Alcotest.test_case "guardband infeasible" `Quick test_guardband_infeasible_reported;
          Alcotest.test_case "crossover vs self" `Quick test_tradeoff_crossover_none_on_identical;
          Alcotest.test_case "domain names" `Quick test_domains_to_string_unique;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "weak uses sizing" `Quick test_protocol_weak_uses_sizing;
          Alcotest.test_case "hard meets" `Quick test_protocol_hard_meets;
          Alcotest.test_case "infeasible modifies structure" `Quick
            test_protocol_infeasible_restructures_or_buffers;
          Alcotest.test_case "report consistency" `Quick test_protocol_report_consistency;
          qtest prop_protocol_always_met_when_feasible;
        ] );
    ]
