(* Tests for Pops_serve.Listener: the supervised socket front end.

   The contract under test (see lib/serve/listener.mli): every
   connection is an isolated session whose result stream is
   bit-identical to running the same lines through the stdio server
   against a fresh engine; a killed client, an armed net.* fault or an
   exhausted deadline degrades only its own session while the listener
   keeps serving; and a drain request runs the in-flight work to
   completion and returns 0. *)

module Tech = Pops_process.Tech
module Generator = Pops_netlist.Generator
module Bench_io = Pops_netlist.Bench_io
module Diag = Pops_robust.Diag
module Fault = Pops_robust.Fault
module Pool = Pops_util.Pool
module Json = Pops_serve.Json
module Job = Pops_serve.Job
module Engine = Pops_serve.Engine
module Server = Pops_serve.Server
module Session = Pops_serve.Session
module Listener = Pops_serve.Listener

let tech = Tech.cmos025

(* both ends of every socket live in this process; a torn-down peer
   must surface as EPIPE, not kill the test run *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let with_domains n f =
  let old = Pool.default_size () in
  Pool.set_default_size n;
  Fun.protect ~finally:(fun () -> Pool.set_default_size old) f

let config = { Engine.default_config with Engine.times = false }

(* --- workload ------------------------------------------------------- *)

let bench_text ~seed gates =
  let nl, _ =
    Generator.generate tech
      (Generator.make_profile
         ~name:(Printf.sprintf "listener_t%d" seed)
         ~path_gates:gates ())
  in
  Bench_io.to_string nl

(* distinct seeds give distinct netlists, so a shared-engine run and a
   fresh-engine run see the same (all-miss) cache verdicts *)
let job_line ~seed ?(action = "analyze") () =
  Printf.sprintf {|{"bench":%s,"action":"%s"}|}
    (Json.to_string (Json.Str (bench_text ~seed 10)))
    action
  ^ "\n"

let job_stream ~base n =
  String.concat "" (List.init n (fun i -> job_line ~seed:(base + i) ()))

(* --- the stdio reference -------------------------------------------- *)

(* the same lines through Server.serve against a fresh engine: what any
   one socket session must reproduce byte for byte *)
let stdio_reference input =
  let r_in, w_in = Unix.pipe () in
  let bytes = Bytes.of_string input in
  let rec write_all off =
    if off < Bytes.length bytes then
      write_all (off + Unix.write w_in bytes off (Bytes.length bytes - off))
  in
  write_all 0;
  Unix.close w_in;
  let fname = Filename.temp_file "pops_listener_ref" ".ndjson" in
  let oc = open_out fname in
  let engine = Engine.create ~config tech in
  let code = Server.serve engine ~summary:false r_in oc in
  Unix.close r_in;
  close_out oc;
  let s = In_channel.with_open_bin fname In_channel.input_all in
  Sys.remove fname;
  Alcotest.(check int) "stdio reference exit" 0 code;
  s

(* --- harness -------------------------------------------------------- *)

let sock_counter = ref 0

let fresh_sock_path () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pops_lst_%d_%d.sock" (Unix.getpid ()) !sock_counter)

type harness = {
  listener : Listener.t;
  domain : int Domain.t;
  diags : Diag.t list ref;
}

let start ?(session = Session.default_config) ?(max_sessions = 64) ?address ()
    =
  let address =
    match address with
    | Some a -> a
    | None -> Listener.Unix_socket (fresh_sock_path ())
  in
  let engine = Engine.create ~config tech in
  let diags = ref [] in
  let log d = diags := d :: !diags in
  match
    Listener.create ~config:{ Listener.max_sessions; session } ~log engine
      address
  with
  | Error e -> Alcotest.failf "listener create: %s" e
  | Ok l ->
    let domain = Domain.spawn (fun () -> Listener.run l) in
    { listener = l; domain; diags }

(* drain, join, and return (exit code, diag code names in loop order) *)
let stop h =
  Listener.request_drain h.listener;
  let code = Domain.join h.domain in
  (code, List.rev_map (fun d -> Diag.code_name d.Diag.code) !(h.diags))

let connect h =
  let sockaddr =
    match Listener.address h.listener with
    | Listener.Unix_socket path -> Unix.ADDR_UNIX path
    | Listener.Tcp (_, port) ->
      Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  in
  let fd =
    Unix.socket ~cloexec:true
      (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  Unix.connect fd sockaddr;
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let recv_all fd =
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes acc buf 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents acc

let recv_lines fd n =
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let count s = String.fold_left (fun c ch -> if ch = '\n' then c + 1 else c) 0 s in
  let rec go () =
    if count (Buffer.contents acc) < n then
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | k ->
        Buffer.add_subbytes acc buf 0 k;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents acc

let roundtrip h input =
  let fd = connect h in
  send_all fd input;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let out = recv_all fd in
  Unix.close fd;
  out

(* a roundtrip that tolerates the connection being torn down under it
   (fault storms) — returns whatever arrived *)
let roundtrip_hard h input =
  match connect h with
  | exception Unix.Unix_error _ -> ""
  | fd ->
    let out =
      try
        send_all fd input;
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        recv_all fd
      with Unix.Unix_error _ -> ""
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    out

let no_summary = { Session.default_config with Session.summary = false }

(* --- bit-identity with the stdio server ----------------------------- *)

let test_socket_eq_stdio () =
  with_domains 2 @@ fun () ->
  let inputs = List.init 3 (fun c -> job_stream ~base:(100 + (10 * c)) 3) in
  let expected = List.map stdio_reference inputs in
  let h = start ~session:no_summary () in
  (* concurrent clients, one domain each, interleaving on the listener *)
  let outs =
    List.map Domain.join
      (List.map (fun input -> Domain.spawn (fun () -> roundtrip h input)) inputs)
  in
  let code, _ = stop h in
  Alcotest.(check int) "drain exit" 0 code;
  List.iteri
    (fun i (exp, got) ->
      Alcotest.(check string) (Printf.sprintf "client %d == stdio" i) exp got)
    (List.combine expected outs)

let test_session_summary () =
  with_domains 1 @@ fun () ->
  let h = start () in
  let out = roundtrip h (job_stream ~base:200 2) in
  let code, _ = stop h in
  Alcotest.(check int) "drain exit" 0 code;
  match List.rev (String.split_on_char '\n' (String.trim out)) with
  | last :: _ ->
    Alcotest.(check string) "per-session summary"
      {|{"summary":true,"jobs":2,"shed":0,"worst_exit":0}|} last
  | [] -> Alcotest.fail "no output"

let test_health_job () =
  with_domains 1 @@ fun () ->
  let h = start ~session:no_summary () in
  let out = roundtrip h "{\"action\":\"health\"}\n" in
  let code, _ = stop h in
  Alcotest.(check int) "drain exit" 0 code;
  match Json.parse (String.trim out) with
  | Error e -> Alcotest.failf "bad health line %s: %s" out e
  | Ok j ->
    Alcotest.(check (option string)) "status ok" (Some "ok")
      (Option.bind (Json.member "status" j) Json.to_str);
    Alcotest.(check bool) "health flag" true
      (Json.member "health" j = Some (Json.Bool true))

(* --- load shedding --------------------------------------------------- *)

let test_queue_shed () =
  with_domains 1 @@ fun () ->
  let session = { Session.default_config with Session.queue_limit = 1 } in
  let h = start ~session () in
  (* one write: the burst lands in a single read, so exactly one job is
     queued and the rest are shed, deterministically *)
  let out = roundtrip h (job_stream ~base:300 3) in
  let code, _ = stop h in
  Alcotest.(check int) "drain exit" 0 code;
  let lines = String.split_on_char '\n' (String.trim out) in
  let count pred = List.length (List.filter pred lines) in
  let has_status s line =
    match Json.parse line with
    | Ok j -> Option.bind (Json.member "status" j) Json.to_str = Some s
    | Error _ -> false
  in
  Alcotest.(check int) "2 shed" 2 (count (has_status "overloaded"));
  Alcotest.(check int) "1 ran" 1 (count (has_status "ok"));
  Alcotest.(check string) "summary accounts the sheds"
    {|{"summary":true,"jobs":1,"shed":2,"worst_exit":1}|}
    (List.nth lines (List.length lines - 1));
  (* shed responses carry the retry hint *)
  List.iter
    (fun line ->
      if has_status "overloaded" line then
        match Json.parse line with
        | Ok j ->
          Alcotest.(check bool) "retry_after_ms" true
            (Json.member "retry_after_ms" j <> None)
        | Error _ -> ())
    lines

(* --- crash containment ----------------------------------------------- *)

let test_killed_client_isolated () =
  with_domains 1 @@ fun () ->
  let input = job_stream ~base:400 2 in
  let expected = stdio_reference input in
  let h = start ~session:no_summary () in
  (* victim: half a frame, then an abortive close (RST) — kill -9 moral
     equivalent *)
  let fd = connect h in
  send_all fd "{\"bench\":";
  Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
  Unix.close fd;
  (* survivor is untouched: byte-identical to the stdio reference *)
  let got = roundtrip h input in
  let code, _ = stop h in
  Alcotest.(check int) "drain exit" 0 code;
  Alcotest.(check string) "survivor == stdio" expected got

let test_idle_deadline () =
  with_domains 1 @@ fun () ->
  let session = { no_summary with Session.idle_timeout = Some 0.15 } in
  let h = start ~session () in
  (* an idle connection is closed by the deadline sweep... *)
  let fd = connect h in
  let out = recv_all fd in
  Unix.close fd;
  Alcotest.(check string) "idle session got nothing" "" out;
  (* ...and the listener keeps serving *)
  let out2 = roundtrip h "{\"action\":\"health\"}\n" in
  let code, diags = stop h in
  Alcotest.(check int) "drain exit" 0 code;
  Alcotest.(check bool) "healthy after expiry" true
    (String.length out2 > 0);
  Alcotest.(check bool) "deadline diagnostic emitted" true
    (List.mem "deadline-exceeded" diags)

(* --- fault injection -------------------------------------------------- *)

let test_net_fault_storm () =
  with_domains 1 @@ fun () ->
  let input = job_stream ~base:500 3 in
  let expected = stdio_reference input in
  Fault.with_spec "net@0.4,seed=5" @@ fun () ->
  let h = start ~session:no_summary () in
  (* storm: every client either completes identically or is cut short —
     never garbled, and the listener never dies *)
  for _ = 1 to 6 do
    let out = roundtrip_hard h input in
    Alcotest.(check bool) "output is a prefix of the reference" true
      (String.length out <= String.length expected
      && String.sub expected 0 (String.length out) = out)
  done;
  let code, _ = stop h in
  Alcotest.(check int) "listener drains cleanly after the storm" 0 code

let test_net_read_deterministic_replay () =
  with_domains 1 @@ fun () ->
  let input = job_line ~seed:600 () in
  (* prob-1 net.read: the session dies on its first readable event, the
     listener survives, and the diagnostic stream replays identically *)
  let run () =
    Fault.with_spec "net.read" @@ fun () ->
    let h = start ~session:no_summary () in
    let _ = roundtrip_hard h input in
    stop h
  in
  let code_a, diags_a = run () in
  let code_b, diags_b = run () in
  Alcotest.(check int) "exit a" 0 code_a;
  Alcotest.(check int) "exit b" 0 code_b;
  Alcotest.(check (list string)) "replay is bitwise-identical"
    [ "net-error" ] diags_a;
  Alcotest.(check (list string)) "second run identical" diags_a diags_b

(* --- drain ------------------------------------------------------------ *)

let test_drain_mid_session () =
  with_domains 1 @@ fun () ->
  let h = start () in
  let fd = connect h in
  send_all fd (job_stream ~base:700 4);
  (* no shutdown: the session is still active when the drain arrives *)
  let results = recv_lines fd 4 in
  Listener.request_drain h.listener;
  let tail = recv_all fd in
  Unix.close fd;
  let code, _ = stop h in
  Alcotest.(check int) "drain exit" 0 code;
  Alcotest.(check int) "all four results arrived" 4
    (List.length (String.split_on_char '\n' (String.trim results)));
  (* the drain still appends this session's summary before closing *)
  Alcotest.(check string) "summary flushed on drain"
    {|{"summary":true,"jobs":4,"shed":0,"worst_exit":0}|}
    (String.trim tail)

(* --- binding ----------------------------------------------------------- *)

let test_stale_socket_cleanup () =
  let path = fresh_sock_path () in
  (* a bound socket file whose owner is gone: connect refused -> stale *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  let engine = Engine.create ~config tech in
  (match Listener.create ~log:ignore engine (Listener.Unix_socket path) with
  | Error e -> Alcotest.failf "stale socket not cleaned: %s" e
  | Ok l ->
    (* the path is live again: a second bind must be refused *)
    (match Listener.create ~log:ignore engine (Listener.Unix_socket path) with
    | Ok _ -> Alcotest.fail "double bind accepted"
    | Error _ -> ());
    Listener.request_drain l;
    Alcotest.(check int) "drain exit" 0 (Listener.run l));
  (* a non-socket file at the path is never deleted *)
  let plain = fresh_sock_path () in
  Out_channel.with_open_bin plain (fun oc -> Out_channel.output_string oc "x");
  (match Listener.create ~log:ignore engine (Listener.Unix_socket plain) with
  | Ok _ -> Alcotest.fail "bound over a regular file"
  | Error _ -> Alcotest.(check bool) "file untouched" true (Sys.file_exists plain));
  Sys.remove plain

let test_tcp_port_zero () =
  with_domains 1 @@ fun () ->
  let h =
    start ~session:no_summary ~address:(Listener.Tcp ("127.0.0.1", 0)) ()
  in
  (match Listener.address h.listener with
  | Listener.Tcp (_, port) ->
    Alcotest.(check bool) "kernel-assigned port" true (port > 0)
  | Listener.Unix_socket _ -> Alcotest.fail "expected a TCP address");
  let out = roundtrip h "{\"action\":\"health\"}\n" in
  let code, _ = stop h in
  Alcotest.(check int) "drain exit" 0 code;
  Alcotest.(check bool) "served over TCP" true (String.length out > 0)

(* -------------------------------------------------------------------- *)

let () = Fault.clear ()

let () =
  Alcotest.run "listener"
    [
      ( "identity",
        [
          Alcotest.test_case "concurrent sockets == stdio" `Quick
            test_socket_eq_stdio;
          Alcotest.test_case "session summary" `Quick test_session_summary;
          Alcotest.test_case "health job" `Quick test_health_job;
        ] );
      ( "backpressure",
        [ Alcotest.test_case "queue-limit shedding" `Quick test_queue_shed ] );
      ( "containment",
        [
          Alcotest.test_case "killed client" `Quick test_killed_client_isolated;
          Alcotest.test_case "idle deadline" `Quick test_idle_deadline;
        ] );
      ( "faults",
        [
          Alcotest.test_case "net.* storm" `Quick test_net_fault_storm;
          Alcotest.test_case "deterministic replay" `Quick
            test_net_read_deterministic_replay;
        ] );
      ( "drain",
        [ Alcotest.test_case "mid-session" `Quick test_drain_mid_session ] );
      ( "binding",
        [
          Alcotest.test_case "stale socket cleanup" `Quick
            test_stale_socket_cleanup;
          Alcotest.test_case "tcp port 0" `Quick test_tcp_port_zero;
        ] );
    ]
