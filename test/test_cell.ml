(* Tests for Pops_process.Tech and Pops_cell. *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Cell = Pops_cell.Cell
module Library = Pops_cell.Library

(* deterministic property tests: fixed RNG seed per test *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let tech = Tech.cmos025
let lib = Library.make tech

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Pops_util.Numerics.close ~rtol:eps ~atol:eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- tech --- *)

let test_reduced_thresholds () =
  check_close "vtn" (0.5 /. 2.5) (Tech.vtn_reduced tech);
  check_close "vtp" (0.55 /. 2.5) (Tech.vtp_reduced tech)

let test_width_cin_roundtrip () =
  let wn, wp = Tech.width_of_cin tech ~k:2. 5.6 in
  check_close "k ratio" 2. (wp /. wn);
  check_close ~eps:1e-9 "roundtrip" 5.6 (Tech.cin_of_width tech ~wn ~wp)

let test_kp_smaller_than_kn () =
  Alcotest.(check bool) "P weaker than N" true (Tech.kp tech < tech.Tech.kn)

(* --- gate kinds --- *)

let test_arity () =
  Alcotest.(check int) "inv" 1 (Gk.arity Gk.Inv);
  Alcotest.(check int) "nand3" 3 (Gk.arity (Gk.Nand 3));
  Alcotest.(check int) "aoi21" 3 (Gk.arity Gk.Aoi21);
  Alcotest.(check int) "xor2" 2 (Gk.arity Gk.Xor2)

let test_eval_inv_nand_nor () =
  Alcotest.(check bool) "inv t" false (Gk.eval Gk.Inv [| true |]);
  Alcotest.(check bool) "nand2 tt" false (Gk.eval (Gk.Nand 2) [| true; true |]);
  Alcotest.(check bool) "nand2 tf" true (Gk.eval (Gk.Nand 2) [| true; false |]);
  Alcotest.(check bool) "nor2 ff" true (Gk.eval (Gk.Nor 2) [| false; false |]);
  Alcotest.(check bool) "nor2 tf" false (Gk.eval (Gk.Nor 2) [| true; false |])

let test_eval_complex () =
  Alcotest.(check bool) "aoi22 ab" false (Gk.eval Gk.Aoi22 [| true; true; false; false |]);
  Alcotest.(check bool) "aoi22 cd" false (Gk.eval Gk.Aoi22 [| false; true; true; true |]);
  Alcotest.(check bool) "aoi22 none" true (Gk.eval Gk.Aoi22 [| true; false; false; true |]);
  Alcotest.(check bool) "oai22" true (Gk.eval Gk.Oai22 [| false; false; true; true |]);
  Alcotest.(check bool) "oai22 both" false (Gk.eval Gk.Oai22 [| true; false; false; true |]);
  Alcotest.(check bool) "aoi21 ab" false (Gk.eval Gk.Aoi21 [| true; true; false |]);
  Alcotest.(check bool) "aoi21 c" false (Gk.eval Gk.Aoi21 [| false; true; true |]);
  Alcotest.(check bool) "aoi21 none" true (Gk.eval Gk.Aoi21 [| false; true; false |]);
  Alcotest.(check bool) "oai21" true (Gk.eval Gk.Oai21 [| false; false; true |]);
  Alcotest.(check bool) "xor2" true (Gk.eval Gk.Xor2 [| true; false |]);
  Alcotest.(check bool) "xnor2" true (Gk.eval Gk.Xnor2 [| true; true |])

let test_eval_bad_arity () =
  match Gk.eval (Gk.Nand 2) [| true |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_de_morgan_dual () =
  Alcotest.(check bool) "nor2 -> nand2" true
    (match Gk.de_morgan_dual (Gk.Nor 2) with
    | Some k -> Gk.equal k (Gk.Nand 2)
    | None -> false);
  Alcotest.(check bool) "inv has none" true (Gk.de_morgan_dual Gk.Inv = None)

let test_name_roundtrip () =
  List.iter
    (fun k ->
      match Gk.of_name (Gk.name k) with
      | Some k' -> Alcotest.(check bool) (Gk.name k) true (Gk.equal k k')
      | None -> Alcotest.failf "of_name failed for %s" (Gk.name k))
    Gk.all

let test_series_stacks () =
  Alcotest.(check int) "nand3 N stack" 3 (Gk.series_n (Gk.Nand 3));
  Alcotest.(check int) "nand3 P stack" 1 (Gk.series_p (Gk.Nand 3));
  Alcotest.(check int) "nor3 N stack" 1 (Gk.series_n (Gk.Nor 3));
  Alcotest.(check int) "nor3 P stack" 3 (Gk.series_p (Gk.Nor 3))

(* --- cells --- *)

let test_inverter_symmetry () =
  let inv = Library.find lib Gk.Inv in
  (* with k = k_nominal, S_HL is exactly 1 by normalisation *)
  check_close "inv S_HL" 1. inv.Cell.s_hl;
  (* rising edge slower because k < R *)
  Alcotest.(check bool) "S_LH > S_HL" true (inv.Cell.s_lh > inv.Cell.s_hl)

let test_logical_weight_ordering () =
  let w_hl k = (Library.find lib k).Cell.dw_hl in
  let w_lh k = (Library.find lib k).Cell.dw_lh in
  Alcotest.(check bool) "nand stacks N" true
    (w_hl (Gk.Nand 3) > w_hl (Gk.Nand 2) && w_hl (Gk.Nand 2) > w_hl Gk.Inv);
  Alcotest.(check bool) "nor stacks P" true
    (w_lh (Gk.Nor 3) > w_lh (Gk.Nor 2) && w_lh (Gk.Nor 2) > w_lh Gk.Inv);
  (* NOR is the inefficient gate: its slow edge is worse than NAND's slow
     edge (Table 2's ordering ultimately comes from this). *)
  let nor2 = Library.find lib (Gk.Nor 2) and nand2 = Library.find lib (Gk.Nand 2) in
  Alcotest.(check bool) "nor2 worst-edge S > nand2 worst-edge S" true
    (Float.max nor2.Cell.s_hl nor2.Cell.s_lh
     > Float.max nand2.Cell.s_hl nand2.Cell.s_lh)

let test_parasitic_grows_with_stack () =
  let p k = (Library.find lib k).Cell.par_ratio in
  Alcotest.(check bool) "nand3 > inv" true (p (Gk.Nand 3) > p Gk.Inv)

let test_area_monotone_and_roundtrip () =
  let nand2 = Library.find lib (Gk.Nand 2) in
  let a1 = Cell.area nand2 ~cin:5. and a2 = Cell.area nand2 ~cin:10. in
  Alcotest.(check bool) "monotone" true (a2 > a1);
  check_close ~eps:1e-9 "roundtrip" 5. (Cell.cin_of_area nand2 ~area:a1)

let test_coupling_ratios () =
  let inv = Library.find lib Gk.Inv in
  (* falling output <- input rising couples through the P gate cap, which is
     k/(1+k) of the input cap, halved. *)
  check_close "cm hl" (0.5 *. 2. /. 3.) inv.Cell.cm_ratio_hl;
  check_close "cm lh" (0.5 *. 1. /. 3.) inv.Cell.cm_ratio_lh

let test_min_cin () =
  List.iter
    (fun c -> check_close "min cin is cmin" tech.Tech.cmin (Cell.min_cin c))
    (Library.cells lib)

(* --- library --- *)

let test_library_find_all () =
  List.iter (fun k -> ignore (Library.find lib k)) Gk.all

let test_library_missing () =
  let small = Library.make ~kinds:[ Gk.Inv ] tech in
  (match Library.find small (Gk.Nand 2) with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  ignore (Library.inverter small)

let test_snap_cin () =
  let cmin = tech.Tech.cmin in
  check_close "snap exact" cmin (Library.snap_cin lib cmin);
  check_close "snap up" (2. *. cmin) (Library.snap_cin lib (1.5 *. cmin));
  let huge = 1000. *. cmin in
  check_close "beyond grid unchanged" huge (Library.snap_cin lib huge)

let test_drive_grid_sorted () =
  let g = Library.drive_grid lib in
  for i = 0 to Array.length g - 2 do
    Alcotest.(check bool) "ascending" true (g.(i) < g.(i + 1))
  done

(* --- second process --- *)

let test_cmos018_library () =
  let tech18 = Tech.cmos018 in
  let lib18 = Library.make tech18 in
  List.iter (fun k -> ignore (Library.find lib18 k)) Gk.all;
  (* faster process: smaller tau, smaller cmin *)
  Alcotest.(check bool) "tau shrinks" true (tech18.Tech.tau < tech.Tech.tau);
  Alcotest.(check bool) "cmin shrinks" true (tech18.Tech.cmin < tech.Tech.cmin);
  (* normalisation holds in any process: nominal inverter has S_HL = 1 *)
  let inv18 = Library.find lib18 Gk.Inv in
  check_close "inv S_HL at 180nm" 1. inv18.Cell.s_hl

let test_buf_kind () =
  let buf = Library.find lib Gk.Buf in
  Alcotest.(check bool) "non inverting" false (Gk.inverting Gk.Buf);
  Alcotest.(check int) "single input" 1 (Gk.arity Gk.Buf);
  Alcotest.(check bool) "has weights" true (buf.Cell.dw_hl > 0. && buf.Cell.dw_lh > 0.)

let test_pp_smoke () =
  let s = Format.asprintf "%a" Cell.pp (Library.find lib (Gk.Nand 3)) in
  Alcotest.(check bool) "mentions kind" true (String.length s > 5);
  let s2 = Format.asprintf "%a" Library.pp lib in
  Alcotest.(check bool) "library dump" true (String.length s2 > 50);
  let s3 = Format.asprintf "%a" Pops_process.Tech.pp tech in
  Alcotest.(check bool) "tech dump" true (String.length s3 > 30)

let test_corners () =
  let tt = tech in
  let ss = Tech.at_corner tt Tech.SS in
  let ff = Tech.at_corner tt Tech.FF in
  let sf = Tech.at_corner tt Tech.SF in
  let fs = Tech.at_corner tt Tech.FS in
  Alcotest.(check bool) "TT is identity" true (Tech.at_corner tt Tech.TT == tt);
  Alcotest.(check bool) "SS slower" true (ss.Tech.tau > tt.Tech.tau);
  Alcotest.(check bool) "FF faster" true (ff.Tech.tau < tt.Tech.tau);
  Alcotest.(check bool) "SF weakens N/P ratio" true (sf.Tech.r_ratio < tt.Tech.r_ratio);
  Alcotest.(check bool) "FS strengthens N/P ratio" true (fs.Tech.r_ratio > tt.Tech.r_ratio);
  Alcotest.(check bool) "names distinct" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun c -> (Tech.at_corner tt c).Tech.name)
             [ Tech.TT; Tech.SS; Tech.FF; Tech.SF; Tech.FS ]))
    = 5)

let test_corner_delay_ordering () =
  (* FO4 at SS > TT > FF; the skewed corners change the rise/fall split *)
  let fo4 c = Pops_delay.Model.fo4_delay (Tech.at_corner tech c) in
  Alcotest.(check bool) "SS slowest" true (fo4 Tech.SS > fo4 Tech.TT);
  Alcotest.(check bool) "FF fastest" true (fo4 Tech.FF < fo4 Tech.TT);
  (* on an inverter, SF makes rising output relatively faster than FS *)
  let rise_fall c =
    let tc = Tech.at_corner tech c in
    let inv = Cell.make tc Gk.Inv in
    let tr = Pops_delay.Model.transition_time inv ~edge:Pops_delay.Edge.Rising ~cin:5. ~cload:20. in
    let tf = Pops_delay.Model.transition_time inv ~edge:Pops_delay.Edge.Falling ~cin:5. ~cload:20. in
    tr /. tf
  in
  Alcotest.(check bool) "SF favours rise vs FS" true
    (rise_fall Tech.SF < rise_fall Tech.FS)

(* --- properties --- *)

let kind_gen = QCheck.Gen.oneofl Gk.all
let kind_arb = QCheck.make ~print:Gk.name kind_gen

let prop_eval_total =
  QCheck.Test.make ~name:"eval total on all input combinations" ~count:100 kind_arb
    (fun k ->
      let n = Gk.arity k in
      let ok = ref true in
      for v = 0 to (1 lsl n) - 1 do
        let inputs = Array.init n (fun i -> v land (1 lsl i) <> 0) in
        let (_ : bool) = Gk.eval k inputs in
        ok := !ok && true
      done;
      !ok)

let prop_de_morgan_kind_logic =
  (* NOR(x) = !(x1|x2|...) = !x1 & !x2 & ... = !NAND(!x): the rewrite must
     invert the inputs AND the output to preserve the function. *)
  QCheck.Test.make ~name:"De Morgan dual is logically dual" ~count:50
    QCheck.(int_range 2 4)
    (fun n ->
      let nor = Gk.Nor n and nand = Gk.Nand n in
      let ok = ref true in
      for v = 0 to (1 lsl n) - 1 do
        let inputs = Array.init n (fun i -> v land (1 lsl i) <> 0) in
        let negated = Array.map not inputs in
        ok := !ok && Gk.eval nor inputs = not (Gk.eval nand negated)
      done;
      !ok)

let prop_dual_identity =
  (* for every kind with a dual: kind(x) = !dual(!x) on all vectors --
     the identity the De Morgan rewrite machinery relies on *)
  QCheck.Test.make ~name:"de morgan dual identity (all kinds)" ~count:50 kind_arb
    (fun k ->
      match Gk.de_morgan_dual k with
      | None -> true
      | Some dual ->
        let n = Gk.arity k in
        let ok = ref true in
        for v = 0 to (1 lsl n) - 1 do
          let inputs = Array.init n (fun i -> v land (1 lsl i) <> 0) in
          let negated = Array.map not inputs in
          ok := !ok && Gk.eval k inputs = not (Gk.eval dual negated)
        done;
        !ok)

let prop_snap_never_decreases =
  QCheck.Test.make ~name:"snap_cin never decreases a drive" ~count:300
    QCheck.(float_range 0.1 500.)
    (fun cin -> Library.snap_cin lib cin >= cin -. 1e-12)

let prop_area_linear_in_cin =
  QCheck.Test.make ~name:"area linear in cin" ~count:100
    (QCheck.pair kind_arb (QCheck.float_range 1. 50.))
    (fun (k, cin) ->
      let c = Library.find lib k in
      Pops_util.Numerics.close ~rtol:1e-9
        (2. *. Cell.area c ~cin)
        (Cell.area c ~cin:(2. *. cin)))

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_cell"
    [
      ( "tech",
        [
          Alcotest.test_case "reduced thresholds" `Quick test_reduced_thresholds;
          Alcotest.test_case "width/cin roundtrip" `Quick test_width_cin_roundtrip;
          Alcotest.test_case "kp < kn" `Quick test_kp_smaller_than_kn;
        ] );
      ( "gate_kind",
        [
          Alcotest.test_case "arity" `Quick test_arity;
          Alcotest.test_case "eval inv/nand/nor" `Quick test_eval_inv_nand_nor;
          Alcotest.test_case "eval aoi/oai/xor" `Quick test_eval_complex;
          Alcotest.test_case "eval bad arity" `Quick test_eval_bad_arity;
          Alcotest.test_case "de morgan dual" `Quick test_de_morgan_dual;
          Alcotest.test_case "name roundtrip" `Quick test_name_roundtrip;
          Alcotest.test_case "series stacks" `Quick test_series_stacks;
          qtest prop_eval_total;
          qtest prop_de_morgan_kind_logic;
          qtest prop_dual_identity;
        ] );
      ( "cell",
        [
          Alcotest.test_case "inverter symmetry" `Quick test_inverter_symmetry;
          Alcotest.test_case "logical weight ordering" `Quick test_logical_weight_ordering;
          Alcotest.test_case "parasitic grows with stack" `Quick test_parasitic_grows_with_stack;
          Alcotest.test_case "area monotone + roundtrip" `Quick test_area_monotone_and_roundtrip;
          Alcotest.test_case "coupling ratios" `Quick test_coupling_ratios;
          Alcotest.test_case "min cin" `Quick test_min_cin;
          qtest prop_area_linear_in_cin;
        ] );
      ( "library",
        [
          Alcotest.test_case "find all kinds" `Quick test_library_find_all;
          Alcotest.test_case "missing kind" `Quick test_library_missing;
          Alcotest.test_case "snap cin" `Quick test_snap_cin;
          Alcotest.test_case "drive grid sorted" `Quick test_drive_grid_sorted;
          Alcotest.test_case "cmos018 library" `Quick test_cmos018_library;
          Alcotest.test_case "buf kind" `Quick test_buf_kind;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
          Alcotest.test_case "corners" `Quick test_corners;
          Alcotest.test_case "corner delay ordering" `Quick test_corner_delay_ordering;
          qtest prop_snap_never_decreases;
        ] );
    ]
