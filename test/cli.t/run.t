Fault injection must never leak into the CLI's contract:

  $ unset POPS_FAULT

The delay bounds of a custom path are deterministic:

  $ pops tmin --gates inv,nand2,nor3,inv --cout 80
  custom path [inv,nand2,nor3,inv]: 4 stages
  Tmax (all gates at minimum drive) = 709.3 ps
  Tmin (link-equation optimum)      = 435.3 ps
  area at Tmin                      = 53.0 um
  +-------+-------+----------+-------------+
  | stage | gate  | cin (fF) | branch (fF) |
  +-------+-------+----------+-------------+
  |     0 | inv   |     2.80 |        0.00 |
  |     1 | nand2 |     9.04 |        0.00 |
  |     2 | nor3  |    19.99 |        0.00 |
  |     3 | inv   |    17.28 |        0.00 |
  +-------+-------+----------+-------------+
  

Unknown gates are rejected with the known list:

  $ pops tmin --gates inv,frobnicator
  pops: unknown gate in "inv,frobnicator" (known: inv, buf, nand2, nand3, nand4, nor2, nor3, nor4, aoi21, oai21, aoi22, oai22, xor2, xnor2)
  [2]

A path is required (invalid input exits 2):

  $ pops size
  pops: a path is required: --circuit <name> or --gates <list>
  [2]

Library characterisation (Table 2's metric):

  $ pops flimit | head -8
  buffer-insertion fan-out limits (driver: inv)
  +-------+--------+
  | gate  | Flimit |
  +-------+--------+
  | inv   |    9.1 |
  | nand2 |    6.1 |
  | nand3 |    4.5 |
  | nand4 |    3.6 |

An infeasible constraint reports Tmin and points at the protocol:

  $ pops size --gates inv,inv,inv --cout 40 --tc 10
  custom path [inv,inv,inv]: sizing for Tc = 10.0 ps
  INFEASIBLE: Tc is below the minimum achievable delay (191.7 ps).
  Use `pops protocol' to apply structure modification.
  [1]

A .bench netlist file round-trips through analysis:

  $ cat > tiny.bench <<'BENCH'
  > INPUT(a)
  > INPUT(b)
  > OUTPUT(y)
  > n1 = NAND(a, b)
  > y = NOT(n1)
  > BENCH

  $ pops bench-file tiny.bench --out tiny_out.bench
  netlist: 2 inputs, 2 gates, 1 outputs, depth 2
  inv: 1
  nand2: 1
  
  STA critical delay: 156.2 ps
  wrote tiny_out.bench (with cin/wire annotations)

  $ cat tiny_out.bench
  INPUT(a)
  INPUT(b)
  OUTPUT(y)
  n1 = NAND(a, b)
  y = NOT(n1)

A generated netlist with sizing/wire annotations analyzes cleanly:

  $ cat > gen.bench <<'BENCH'
  > # three-bit parity with an AOI load
  > INPUT(a) # cin=4.2
  > INPUT(b)
  > INPUT(c)
  > OUTPUT(p)
  > OUTPUT(q)
  > x1 = XOR(a, b)
  > p = XOR(x1, c) # cin=6.5
  > q = AOI21(a, b, c) # wire=3.0
  > BENCH

  $ pops bench-file gen.bench
  netlist: 3 inputs, 3 gates, 2 outputs, depth 2
  aoi21: 1
  xor2: 2
  
  STA critical delay: 317.9 ps


An unreachable constraint makes the flow exit non-zero, without ever
worsening the circuit:

  $ pops bench-file gen.bench --flow --tc 1
  netlist: 3 inputs, 3 gates, 2 outputs, depth 2
  aoi21: 1
  xor2: 2
  
  STA critical delay: 317.9 ps
  optimizing to Tc = 1.0 ps ...
  pops: constraint-infeasible: constraint 1.000 ps not met: critical delay 317.870 ps after optimization
  flow: no-progress
  delay 317.9 -> 317.9 ps
  area 19.6 -> 22.6 um
  2 rounds, 2 buffer inverters, 0 rewrites, 0 stale dropped
  equivalence: PASS
    round 1: 317.9 ps, sizing on a 2-gate path
    round 1: 317.9 ps, buffers+sizing on a 1-gate path
  [1]


The full-chip flow runs on a generated circuit straight from the CLI
(the incremental slack-driven loop at 10k gates):

  $ pops optimize --gates 10000 --shape iscas --name c10k --tc-ratio 0.9
  c10k: 10000 gates (iscas), STA critical delay 2295272.5 ps, target Tc = 2065745.2 ps
  flow: met
  delay 2295272.5 -> 2065723.1 ps
  area 171700.3 -> 171787.5 um
  1 rounds, 0 buffer inverters, 0 rewrites, 0 stale dropped
  equivalence: PASS
    round 1: 2295272.5 ps, sizing on a 48-gate path

Parse errors carry the offending line number and exit 2 (invalid input):

  $ cat > broken.bench <<'BENCH'
  > INPUT(a)
  > y = NOT(a
  > OUTPUT(y)
  > BENCH

  $ pops bench-file broken.bench
  pops: bench-syntax (line 2): expected OP(arg, ...) on the right-hand side
  [2]

A combinational cycle is named gate by gate, in signal-flow order:

  $ cat > cyclic.bench <<'BENCH'
  > INPUT(a)
  > OUTPUT(y)
  > n1 = NOT(n2)
  > n2 = NOT(n1)
  > y = AND(a, n1)
  > BENCH

  $ pops bench-file cyclic.bench
  pops: netlist-cycle (line 3): combinational cycle: n2 -> n1 -> n2
  [2]

A file cut off mid-line is flagged as truncated, not just malformed:

  $ cat > trunc.bench <<'BENCH'
  > INPUT(a)
  > INPUT(b)
  > OUTPUT(y)
  > y = NAND(a, b
  > BENCH

  $ pops bench-file trunc.bench
  pops: bench-truncated (line 4): expected OP(arg, ...) on the right-hand side
  [2]

A gate that drives nothing degrades the run (warning on stderr) but the
analysis still completes with exit 0:

  $ cat > dangle.bench <<'BENCH'
  > INPUT(a)
  > OUTPUT(y)
  > y = NOT(a)
  > n1 = NOT(a)
  > BENCH

  $ pops bench-file dangle.bench
  pops: netlist-zero-fanout (n1): gate drives nothing and is not a primary output
  netlist: 1 inputs, 2 gates, 1 outputs, depth 1
  inv: 2
  
  STA critical delay: 91.0 ps

With --vt-assign the flow runs the multi-Vt leakage pass after timing
closure: slack-rich circuits give up most of their subthreshold leakage
(here 93.3%, the all-HVT floor) without the delay leaving the target:

  $ pops optimize --gates 2000 --shape iscas --name c2k --tc-ratio 1.05 --vt-assign
  c2k: 2000 gates (iscas), STA critical delay 516481.4 ps, target Tc = 542305.5 ps
  flow: met
  delay 516481.4 -> 516481.4 ps
  area 33488.9 -> 33488.9 um
  0 rounds, 0 buffer inverters, 0 rewrites, 0 stale dropped
  equivalence: PASS
  vt-assign: leakage 12.558 -> 0.842 uW (93.3% saved)
  3973 swaps accepted, 53 rejected, 3 rounds

An infeasible constraint still exits 1 with the pass enabled, and the
pass accepts nothing - swapping up the threshold of a failing circuit
would only slow it further, so every candidate is rejected and the
leakage stays put:

  $ pops bench-file gen.bench --flow --tc 1 --vt-assign
  netlist: 3 inputs, 3 gates, 2 outputs, depth 2
  aoi21: 1
  xor2: 2
  
  STA critical delay: 317.9 ps
  optimizing to Tc = 1.0 ps ...
  pops: constraint-infeasible: constraint 1.000 ps not met: critical delay 317.870 ps after optimization
  flow: no-progress
  delay 317.9 -> 317.9 ps
  area 19.6 -> 22.6 um
  2 rounds, 2 buffer inverters, 0 rewrites, 0 stale dropped
  equivalence: PASS
  vt-assign: leakage 0.008 -> 0.008 uW (0.0% saved)
  0 swaps accepted, 5 rejected, 1 rounds
    round 1: 317.9 ps, sizing on a 2-gate path
    round 1: 317.9 ps, buffers+sizing on a 1-gate path
  [1]

A serve job opts into the pass with "vt_assign": true; the result line
gains the leakage metrics (jobs without the field are untouched - their
result lines render byte-identically to before the pass existed):

  $ cat > vt.ndjson <<'EOF'
  > {"id":"vt1","bench":"INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = NAND(a, b)\ny = NOT(n1)\n","tc_ratio":1.3,"vt_assign":true}
  > EOF
  $ POPS_DOMAINS=1 pops serve --no-times --no-summary < vt.ndjson
  {"id":"vt1","tenant":"default","seq":0,"status":"ok","exit":0,"netlist_cache":"miss","gates":2,"inputs":2,"outputs":1,"depth":2,"tc_ps":203.055,"initial_delay_ps":156.196,"final_delay_ps":156.196,"initial_area_um":4.541,"final_area_um":4.541,"rounds":0,"buffers":0,"rewrites":0,"flow":"met","met":true,"equivalence":true,"leakage_before_uw":0.002,"leakage_after_uw":0,"vt_accepted":4,"vt_rejected":0}

