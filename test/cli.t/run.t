The delay bounds of a custom path are deterministic:

  $ pops tmin --gates inv,nand2,nor3,inv --cout 80
  custom path [inv,nand2,nor3,inv]: 4 stages
  Tmax (all gates at minimum drive) = 709.3 ps
  Tmin (link-equation optimum)      = 435.3 ps
  area at Tmin                      = 53.0 um
  +-------+-------+----------+-------------+
  | stage | gate  | cin (fF) | branch (fF) |
  +-------+-------+----------+-------------+
  |     0 | inv   |     2.80 |        0.00 |
  |     1 | nand2 |     9.04 |        0.00 |
  |     2 | nor3  |    19.99 |        0.00 |
  |     3 | inv   |    17.28 |        0.00 |
  +-------+-------+----------+-------------+
  

Unknown gates are rejected with the known list:

  $ pops tmin --gates inv,frobnicator
  pops: unknown gate in "inv,frobnicator" (known: inv, buf, nand2, nand3, nand4, nor2, nor3, nor4, aoi21, oai21, aoi22, oai22, xor2, xnor2)
  [1]

A path is required:

  $ pops size
  pops: a path is required: --circuit <name> or --gates <list>
  [1]

Library characterisation (Table 2's metric):

  $ pops flimit | head -8
  buffer-insertion fan-out limits (driver: inv)
  +-------+--------+
  | gate  | Flimit |
  +-------+--------+
  | inv   |    9.1 |
  | nand2 |    6.1 |
  | nand3 |    4.5 |
  | nand4 |    3.6 |

An infeasible constraint reports Tmin and points at the protocol:

  $ pops size --gates inv,inv,inv --cout 40 --tc 10
  custom path [inv,inv,inv]: sizing for Tc = 10.0 ps
  INFEASIBLE: Tc is below the minimum achievable delay (191.7 ps).
  Use `pops protocol' to apply structure modification.
  [1]

A .bench netlist file round-trips through analysis:

  $ cat > tiny.bench <<'BENCH'
  > INPUT(a)
  > INPUT(b)
  > OUTPUT(y)
  > n1 = NAND(a, b)
  > y = NOT(n1)
  > BENCH

  $ pops bench-file tiny.bench --out tiny_out.bench
  netlist: 2 inputs, 2 gates, 1 outputs, depth 2
  inv: 1
  nand2: 1
  
  STA critical delay: 156.2 ps
  wrote tiny_out.bench (with cin/wire annotations)

  $ cat tiny_out.bench
  INPUT(a)
  INPUT(b)
  OUTPUT(y)
  n1 = NAND(a, b)
  y = NOT(n1)

A generated netlist with sizing/wire annotations analyzes cleanly:

  $ cat > gen.bench <<'BENCH'
  > # three-bit parity with an AOI load
  > INPUT(a) # cin=4.2
  > INPUT(b)
  > INPUT(c)
  > OUTPUT(p)
  > OUTPUT(q)
  > x1 = XOR(a, b)
  > p = XOR(x1, c) # cin=6.5
  > q = AOI21(a, b, c) # wire=3.0
  > BENCH

  $ pops bench-file gen.bench
  netlist: 3 inputs, 3 gates, 2 outputs, depth 2
  aoi21: 1
  xor2: 2
  
  STA critical delay: 317.9 ps


An unreachable constraint makes the flow exit non-zero, without ever
worsening the circuit:

  $ pops bench-file gen.bench --flow --tc 1
  netlist: 3 inputs, 3 gates, 2 outputs, depth 2
  aoi21: 1
  xor2: 2
  
  STA critical delay: 317.9 ps
  optimizing to Tc = 1.0 ps ...
  flow: no-progress
  delay 317.9 -> 317.9 ps
  area 19.6 -> 22.6 um
  3 rounds, 2 buffer inverters, 0 rewrites
  equivalence: PASS
  [1]


Parse errors carry the offending line number and a non-zero exit:

  $ cat > broken.bench <<'BENCH'
  > INPUT(a)
  > y = NOT(a
  > OUTPUT(y)
  > BENCH

  $ pops bench-file broken.bench
  pops: line 2: expected OP(arg, ...) on the right-hand side
  [1]
