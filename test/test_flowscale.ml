(* Incremental-flow equivalence: the slack-driven incremental
   optimization loop (persistent arrivals, backward required/slack
   sweep, endpoint heap) must reproduce the full-rebuild reference loop
   bit for bit — same selected cones, same decisions, same final netlist
   — on the paper's benchmark suite, on random edit-heavy circuits, and
   at 10k-gate scale.  Also covers the backward slack engine against its
   record-based oracle. *)

module Tech = Pops_process.Tech
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Netlist = Pops_netlist.Netlist
module Transform = Pops_netlist.Transform
module Generator = Pops_netlist.Generator
module Timing = Pops_sta.Timing
module Paths = Pops_sta.Paths
module Flow = Pops_flow.Flow
module Profiles = Pops_circuits.Profiles
module Rng = Pops_util.Rng

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xF10 |]) t
let tech = Tech.cmos025
let lib = Library.make tech
let same_f a b = a = b || (Float.is_nan a && Float.is_nan b)

let required_opt s id e =
  match Timing.required s id e with r -> r | exception Not_found -> Float.nan

(* CSR backward sweep vs the record-based oracle: required times (both
   edges) and worst slacks, bit for bit *)
let check_slacks_oracle ~what ?slacks t =
  let tc, csr =
    match slacks with
    | Some s -> (Timing.slacks_tc s, s)
    | None ->
      let tm = Timing.analyze ~lib t in
      let tc = 0.8 *. Timing.critical_delay tm in
      (tc, Timing.slacks_make tm ~tc)
  in
  let ref_ = Timing.slacks_reference (Timing.analyze ~lib t) ~tc in
  List.iter
    (fun id ->
      List.iter
        (fun e ->
          let a = required_opt csr id e and b = required_opt ref_ id e in
          if not (same_f a b) then
            Alcotest.failf "%s: node %d required differs: %.17g vs %.17g" what
              id a b)
        [ Edge.Rising; Edge.Falling ];
      let a = Timing.node_slack csr id and b = Timing.node_slack ref_ id in
      if not (same_f a b) then
        Alcotest.failf "%s: node %d slack differs: %.17g vs %.17g" what id a b)
    (Netlist.topological_order t)

(* persistent-heap cone selection vs a from-scratch heap over the same
   netlist state and constraint *)
let check_incr_selection ~what ~tc sel t =
  let live = Paths.k_worst_incr ~k:4 ~lib sel in
  let fresh =
    Paths.incr_make t (Timing.slacks_make (Timing.analyze ~lib t) ~tc)
  in
  let scratch = Paths.k_worst_incr ~k:4 ~lib fresh in
  let nodes l = List.map (fun (e : Paths.extracted) -> e.Paths.nodes) l in
  if nodes live <> nodes scratch then
    Alcotest.failf "%s: persistent cone selection differs from from-scratch"
      what

(* --- the slack engine on the paper's benchmark suite ------------------ *)

let test_slacks_profiles () =
  List.iter
    (fun (p : Profiles.t) ->
      let t, _ = Profiles.circuit tech p in
      check_slacks_oracle ~what:p.Profiles.name t)
    Profiles.all

(* --- the slack engine and heap through random edit sequences ---------- *)

let random_edit rng t =
  let gates = Array.of_list (Netlist.gate_ids t) in
  let any_gate () = gates.(Rng.int rng (Array.length gates)) in
  let pis = Array.of_list (Netlist.inputs t) in
  match Rng.int rng 6 with
  | 0 ->
    Netlist.set_cin t (any_gate ()) (tech.Tech.cmin *. Rng.log_range rng 1. 40.)
  | 1 -> Netlist.set_wire t (any_gate ()) (tech.Tech.cmin *. Rng.float rng 5.)
  | 2 -> ignore (Transform.insert_buffer t ~after:(any_gate ()))
  | 3 ->
    let g = any_gate () in
    let n = Netlist.node t g in
    let pin = Rng.int rng (Array.length n.Netlist.fanins) in
    Netlist.set_fanin t g ~pin pis.(Rng.int rng (Array.length pis))
  | 4 -> ignore (Transform.de_morgan t (any_gate ()))
  | _ -> Netlist.set_output t (any_gate ()) ~load:(Rng.float rng 50.)

let prop_incr_slacks_and_selection =
  QCheck.Test.make
    ~name:"incremental slacks + endpoint heap == from-scratch through edits"
    ~count:60
    QCheck.(pair (int_range 4 12) (int_range 0 1_000_000))
    (fun (path_gates, salt) ->
      let p =
        Generator.make_profile
          ~name:(Printf.sprintf "fs%d_%d" path_gates salt)
          ~path_gates ()
      in
      let t, _ = Generator.generate tech p in
      let tm = Timing.analyze ~lib t in
      (* a tight constraint so plenty of endpoints violate and the heap
         actually has critical cones to hand out *)
      let tc = 0.6 *. Timing.critical_delay tm in
      let s = Timing.slacks_make tm ~tc in
      let sel = Paths.incr_make t s in
      check_incr_selection ~what:"initial" ~tc sel t;
      let rng = Rng.create (Int64.of_int (salt + (path_gates * 7_919))) in
      for step = 1 to 6 do
        random_edit rng t;
        let what = Printf.sprintf "step %d" step in
        check_incr_selection ~what ~tc sel t;
        check_slacks_oracle ~what ~slacks:s t
      done;
      true)

(* --- incremental flow vs the full-rebuild reference loop -------------- *)

let netlist_sig t =
  ( List.map
      (fun id ->
        let n = Netlist.node t id in
        ( id,
          n.Netlist.kind,
          Array.to_list n.Netlist.fanins,
          n.Netlist.cin,
          n.Netlist.wire ))
      (Netlist.topological_order t),
    Netlist.outputs t )

let check_flow_equiv ~what ?max_rounds ?(tc_ratio = 0.8) t =
  let t_inc = Netlist.copy t and t_ref = Netlist.copy t in
  let tc = tc_ratio *. Timing.critical_delay (Timing.analyze ~lib t) in
  let r_inc = Flow.optimize ?max_rounds ~lib ~tc t_inc in
  let r_ref = Flow.optimize ?max_rounds ~reference:true ~lib ~tc t_ref in
  if r_inc.Flow.outcome <> r_ref.Flow.outcome then
    Alcotest.failf "%s: outcome differs" what;
  if not (same_f r_inc.Flow.final_delay r_ref.Flow.final_delay) then
    Alcotest.failf "%s: final delay differs: %.17g vs %.17g" what
      r_inc.Flow.final_delay r_ref.Flow.final_delay;
  if not (same_f r_inc.Flow.final_area r_ref.Flow.final_area) then
    Alcotest.failf "%s: final area differs" what;
  if r_inc.Flow.buffers_added <> r_ref.Flow.buffers_added then
    Alcotest.failf "%s: buffers differ: %d vs %d" what r_inc.Flow.buffers_added
      r_ref.Flow.buffers_added;
  if r_inc.Flow.rewrites <> r_ref.Flow.rewrites then
    Alcotest.failf "%s: rewrites differ" what;
  if r_inc.Flow.stale_decisions <> r_ref.Flow.stale_decisions then
    Alcotest.failf "%s: stale decisions differ: %d vs %d" what
      r_inc.Flow.stale_decisions r_ref.Flow.stale_decisions;
  if r_inc.Flow.iterations <> r_ref.Flow.iterations then
    Alcotest.failf "%s: iteration traces differ (%d vs %d entries)" what
      (List.length r_inc.Flow.iterations)
      (List.length r_ref.Flow.iterations);
  (match (r_inc.Flow.equivalence, r_ref.Flow.equivalence) with
  | Ok (), Ok () -> ()
  | Error m, _ | _, Error m ->
    Alcotest.failf "%s: flow broke equivalence: %s" what m);
  if netlist_sig t_inc <> netlist_sig t_ref then
    Alcotest.failf "%s: final netlists differ" what

let test_flow_profiles () =
  List.iter
    (fun (p : Profiles.t) ->
      let t, _ = Profiles.circuit tech p in
      check_flow_equiv ~what:p.Profiles.name t)
    Profiles.all

let prop_flow_equiv_random =
  QCheck.Test.make
    ~name:"incremental flow == reference flow on random edited circuits"
    ~count:25
    QCheck.(pair (int_range 4 10) (int_range 0 1_000_000))
    (fun (path_gates, salt) ->
      let p =
        Generator.make_profile
          ~name:(Printf.sprintf "fw%d_%d" path_gates salt)
          ~path_gates ()
      in
      let t, _ = Generator.generate tech p in
      (* pre-flow edit storm: flows starting from an already-mutated
         netlist exercise the restore/rewind interactions too *)
      let rng = Rng.create (Int64.of_int (salt + (path_gates * 104_729))) in
      for _ = 1 to 4 do
        random_edit rng t
      done;
      (match Netlist.validate t with
      | Ok () -> ()
      | Error m -> Alcotest.failf "edit storm broke invariants: %s" m);
      let ratio = 0.5 +. (0.1 *. float_of_int (salt mod 5)) in
      check_flow_equiv ~what:"random" ~max_rounds:8 ~tc_ratio:ratio t;
      true)

(* --- scale ------------------------------------------------------------ *)

let test_flow_scale_10k () =
  let t =
    Generator.generate_scale tech ~name:"fs10k" ~gates:10_000
      ~shape:Generator.Iscas
  in
  check_flow_equiv ~what:"iscas10k" ~tc_ratio:0.9 t

let () =
  Alcotest.run "pops_flowscale"
    [
      ( "slacks",
        [
          Alcotest.test_case "paper benchmark suite" `Quick test_slacks_profiles;
          qtest prop_incr_slacks_and_selection;
        ] );
      ( "flow",
        [
          Alcotest.test_case "paper benchmark suite" `Quick test_flow_profiles;
          qtest prop_flow_equiv_random;
        ] );
      ( "scale",
        [ Alcotest.test_case "10k iscas equivalence" `Slow test_flow_scale_10k ] );
    ]
