(* Property-based correctness harness: executable invariants over every
   layer of the stack, run on random circuits.  See docs/testing.md for
   the catalogue and the seed-replay workflow.

   Default profile (dune runtest): every property at its registered case
   count, well under a minute.  Deep fuzz: pops_prop --cases 2000. *)

open Pops_check
module C = Circuit
module Rng = Pops_util.Rng
module Numerics = Pops_util.Numerics
module Pool = Pops_util.Pool
module Tech = Pops_process.Tech
module Gate_kind = Pops_cell.Gate_kind
module Cell = Pops_cell.Cell
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Model = Pops_delay.Model
module Path = Pops_delay.Path
module Bounds = Pops_core.Bounds
module Sens = Pops_core.Sensitivity
module Buffers = Pops_core.Buffers
module Netlist = Pops_netlist.Netlist
module Logic = Pops_netlist.Logic
module Transform = Pops_netlist.Transform
module Bench_io = Pops_netlist.Bench_io
module Timing = Pops_sta.Timing
module Flow = Pops_flow.Flow
module Transient = Pops_spice.Transient

let require = Prop.require
let requiref = Prop.requiref
let close_to = Prop.close_to

(* ------------------------------------------------------------------ *)
(* shared generators                                                   *)
(* ------------------------------------------------------------------ *)

let spec = C.path_spec ()
let spec_factor lo hi = Gen.pair (C.path_spec ()) (Gen.float_range lo hi)

let path_of s = C.to_path s

(* a sizing strictly inside the drive box, away from the clamp kinks *)
let interior_sizing s =
  let cmin = s.C.p_tech.Tech.cmin in
  Array.of_list
    (List.map (fun m -> Numerics.clamp ~lo:2. ~hi:30. m *. cmin) s.C.mults)

(* ================================================================== *)
(* delay model (eqs. 1-3)                                              *)
(* ================================================================== *)

type mcase = {
  mc_tech : Tech.t;
  mc_kind : Gate_kind.t;
  mc_edge : Edge.t;
  mc_tau_in : float;
  mc_cin : float;
  mc_cload : float;
}

let mcase_gen =
  let print m =
    Printf.sprintf "{tech=%s; cell=%s; edge=%s; tau_in=%.4g; cin=%.4g; cload=%.4g}"
      m.mc_tech.Tech.name (Gate_kind.name m.mc_kind)
      (match m.mc_edge with Edge.Rising -> "rising" | Edge.Falling -> "falling")
      m.mc_tau_in m.mc_cin m.mc_cload
  in
  let shrink m =
    let cands = ref [] in
    if m.mc_tech.Tech.name <> C.technologies.(0).Tech.name then
      cands := { m with mc_tech = C.technologies.(0) } :: !cands;
    if not (Gate_kind.equal m.mc_kind Gate_kind.Inv) then
      cands := { m with mc_kind = Gate_kind.Inv } :: !cands;
    if m.mc_edge <> Edge.Rising then cands := { m with mc_edge = Edge.Rising } :: !cands;
    List.to_seq (List.rev !cands)
  in
  Gen.make ~shrink ~print (fun rng _ ->
      let tech = Rng.pick rng C.technologies in
      {
        mc_tech = tech;
        mc_kind = Rng.pick rng [| Gate_kind.Inv; Gate_kind.Buf; Gate_kind.Nand 2;
                                  Gate_kind.Nor 2; Gate_kind.Nand 3; Gate_kind.Nor 3;
                                  Gate_kind.Aoi21; Gate_kind.Oai21; Gate_kind.Xor2 |];
        mc_edge = (if Rng.bool rng then Edge.Rising else Edge.Falling);
        mc_tau_in = Rng.log_range rng 5. 300.;
        mc_cin = tech.Tech.cmin *. Rng.log_range rng 1. 64.;
        mc_cload = Rng.log_range rng 1. 400.;
      })

let cell_of m = Library.find (C.library m.mc_tech) m.mc_kind

let () =
  Prop.register ~name:"model.delay_monotone_load" (spec_factor 1. 4.) (fun (s, f) ->
      let x = C.sizing s in
      let d1 = Path.delay (path_of s) x in
      let d2 = Path.delay (path_of { s with C.c_out = s.C.c_out *. f }) x in
      requiref (d2 >= d1 -. (1e-9 *. d1))
        "delay decreased under a larger load: %.6g -> %.6g (load x%.3g)" d1 d2 f)

let () =
  Prop.register ~name:"model.delay_monotone_slope" (spec_factor 1. 5.) (fun (s, f) ->
      let x = C.sizing s in
      let d1 = Path.delay (path_of s) x in
      let d2 = Path.delay (path_of { s with C.input_slope = s.C.input_slope *. f }) x in
      requiref (d2 >= d1 -. (1e-9 *. d1))
        "delay decreased under a slower input: %.6g -> %.6g (slope x%.3g)" d1 d2 f)

(* eq. (1) recomputed from the raw cell coefficients, independently of
   every Model helper: the property that catches a dropped C_M term, a
   wrong threshold polarity or a broken symmetry factor. *)
let () =
  Prop.register ~name:"model.eq1_closed_form" mcase_gen (fun m ->
      let cell = cell_of m in
      let d, tau_out =
        Model.stage_delay cell ~edge_out:m.mc_edge ~tau_in:m.mc_tau_in ~cin:m.mc_cin
          ~cload:m.mc_cload
      in
      let s, cm_ratio, v_t =
        match m.mc_edge with
        | Edge.Falling ->
          (cell.Cell.s_hl, cell.Cell.cm_ratio_hl, m.mc_tech.Tech.vtn /. m.mc_tech.Tech.vdd)
        | Edge.Rising ->
          (cell.Cell.s_lh, cell.Cell.cm_ratio_lh, m.mc_tech.Tech.vtp /. m.mc_tech.Tech.vdd)
      in
      let tau_ref = s *. m.mc_tech.Tech.tau *. m.mc_cload /. m.mc_cin in
      let cm = cm_ratio *. m.mc_cin in
      let d_ref =
        (v_t *. m.mc_tau_in /. 2.)
        +. ((1. +. (2. *. cm /. (cm +. m.mc_cload))) *. tau_ref /. 2.)
      in
      close_to ~rtol:1e-12 "eq. (3) transition time" tau_ref tau_out;
      close_to ~rtol:1e-12 "eq. (1) stage delay" d_ref d)

let () =
  Prop.register ~name:"model.coupling_increases_delay" spec (fun s ->
      let x = C.sizing s in
      let on = { s with C.opts = { s.C.opts with Model.with_coupling = true } } in
      let off = { s with C.opts = { s.C.opts with Model.with_coupling = false } } in
      let d_on = Path.delay (path_of on) x and d_off = Path.delay (path_of off) x in
      requiref (d_on >= d_off -. (1e-9 *. d_off))
        "Miller coupling made the path faster: %.6g (on) < %.6g (off)" d_on d_off)

let () =
  Prop.register ~name:"model.transition_homogeneity"
    (Gen.pair mcase_gen (Gen.float_range 1. 16.))
    (fun (m, k) ->
      let cell = cell_of m in
      let t1 = Model.transition_time cell ~edge:m.mc_edge ~cin:m.mc_cin ~cload:m.mc_cload in
      let t2 =
        Model.transition_time cell ~edge:m.mc_edge ~cin:(m.mc_cin *. k)
          ~cload:(m.mc_cload *. k)
      in
      close_to ~rtol:1e-12 "tau(k*cin, k*cload) = tau(cin, cload)" t1 t2)

(* ================================================================== *)
(* bounded paths and the compiled kernel                               *)
(* ================================================================== *)

let () =
  Prop.register ~name:"path.stage_sum" spec (fun s ->
      let p = path_of s in
      let x = C.sizing s in
      let sum = Array.fold_left (fun acc (d, _) -> acc +. d) 0. (Path.delay_per_stage p x) in
      close_to ~rtol:1e-9 "sum of stage delays = path delay" sum (Path.delay p x))

(* the zero-allocation compiled kernel against a hand-rolled reference
   walk built only on Model.stage_delay *)
let () =
  Prop.register ~name:"path.kernel_vs_reference" spec (fun s ->
      let p = path_of s in
      let x = Path.clamp_sizing p (C.sizing s) in
      let loads = Path.loads p x in
      let tau = ref p.Path.input_slope in
      let total = ref 0. in
      Array.iteri
        (fun i (st : Path.stage) ->
          let d, tau_out =
            Model.stage_delay ~opts:p.Path.opts st.Path.cell ~edge_out:p.Path.edges.(i)
              ~tau_in:!tau ~cin:x.(i) ~cload:loads.(i)
          in
          total := !total +. d;
          tau := tau_out)
        p.Path.stages;
      close_to ~rtol:1e-9 "compiled kernel = reference walk" !total (Path.delay p x))

let () =
  Prop.register ~name:"path.delay_both_consistent" spec (fun s ->
      let p = path_of s in
      let x = C.sizing s in
      let sc = Path.scratch () in
      Path.delay_both p sc x;
      let flipped = Path.with_input_edge p (Edge.flip p.Path.input_edge) in
      close_to ~rtol:1e-12 "scratch.own = delay" (Path.delay p x) sc.Path.own;
      close_to ~rtol:1e-12 "scratch.flip = flipped delay" (Path.delay flipped x) sc.Path.flip;
      close_to ~rtol:1e-12 "delay_worst = max of both"
        (Float.max sc.Path.own sc.Path.flip)
        (Path.delay_worst p x))

let () =
  Prop.register ~name:"path.flip_involution" spec (fun s ->
      let p = path_of s in
      let x = C.sizing s in
      let e = p.Path.input_edge in
      let p2 = Path.with_input_edge (Path.with_input_edge p (Edge.flip e)) e in
      requiref (Path.delay p x = Path.delay p2 x)
        "double polarity flip changed the delay: %.17g vs %.17g" (Path.delay p x)
        (Path.delay p2 x))

let () =
  Prop.register ~name:"path.gradient_matches_fd" spec (fun s ->
      let p = path_of s in
      let x = interior_sizing s in
      let g = Path.gradient p x in
      let g_fd = Numerics.gradient ~f:(fun x -> Path.delay p x) x in
      require (g.(0) = 0.) "gradient entry 0 must be 0 (fixed input gate)";
      Array.iteri
        (fun i gi ->
          if i > 0 && not (Numerics.close ~rtol:1e-3 ~atol:1e-5 gi g_fd.(i)) then
            Prop.failf "dT/dx(%d): analytic %.8g vs finite-difference %.8g" i gi g_fd.(i))
        g)

let () =
  Prop.register ~name:"path.clamp_idempotent" spec (fun s ->
      let p = path_of s in
      let raw = Array.map (fun v -> (v *. 100.) -. 50.) (C.sizing s) in
      let c1 = Path.clamp_sizing p raw in
      let c2 = Path.clamp_sizing p c1 in
      require (c1 = c2) "clamp_sizing is not idempotent";
      require (c1.(0) = p.Path.drive_cin) "clamp did not pin the drive stage";
      let cmin = s.C.p_tech.Tech.cmin in
      Array.iteri
        (fun i v ->
          if i > 0 && not (v >= cmin -. 1e-12 && v <= (4096. *. cmin) +. 1e-9) then
            Prop.failf "entry %d = %.6g escapes the drive box" i v)
        c1)

let () =
  Prop.register ~name:"path.area_matches_weights"
    (Gen.pair spec (Gen.float_range 0.5 8.))
    (fun (s, delta) ->
      let p = path_of s in
      let x = interior_sizing s in
      let a0 = Path.area p x in
      for i = 1 to Path.length p - 1 do
        let x' = Array.copy x in
        x'.(i) <- x'.(i) +. delta;
        close_to ~rtol:1e-6 ~atol:1e-9
          (Printf.sprintf "area is linear in cin (stage %d)" i)
          (a0 +. (Path.area_weight p i *. delta))
          (Path.area p x')
      done)

(* ================================================================== *)
(* bounds and constant-sensitivity sizing                              *)
(* ================================================================== *)

(* Bounds.tmin is evaluated on a small polarity-weight grid, so it upper
   bounds the exact minimax by < 1%; every bracketing check carries that
   tolerance. *)
let grid_tol = 1.01

let () =
  Prop.register ~name:"bounds.bracket" spec (fun s ->
      let p = path_of s in
      let b = Bounds.compute p in
      let d_rand = Path.delay_worst p (C.sizing s) in
      close_to ~rtol:1e-9 "tmax = worst delay at minimum drive"
        (Path.delay_worst p (Path.min_sizing p))
        b.Bounds.tmax;
      requiref (b.Bounds.tmin <= (b.Bounds.tmax *. grid_tol) +. 1e-9)
        "tmin %.6g above tmax %.6g" b.Bounds.tmin b.Bounds.tmax;
      requiref (d_rand >= (b.Bounds.tmin /. grid_tol) -. 1e-9)
        "random sizing beat tmin: %.6g < %.6g" d_rand b.Bounds.tmin;
      close_to ~rtol:1e-9 "sizing_tmin achieves tmin"
        (Path.delay_worst p b.Bounds.sizing_tmin)
        b.Bounds.tmin)

let () =
  Prop.register ~name:"bounds.stationary_at_tmin" spec (fun s ->
      let p = path_of s in
      let b = Bounds.compute p in
      requiref (Bounds.verify_stationary ~beta:b.Bounds.beta_tmin p b.Bounds.sizing_tmin)
        "link equations do not vanish at the tmin sizing (beta=%.3g)" b.Bounds.beta_tmin)

let () =
  Prop.register ~name:"sens.delay_monotone_in_a"
    (Gen.pair spec (Gen.pair (Gen.float_range 0. 5.) (Gen.float_range 0. 5.)))
    (fun (s, (u, v)) ->
      let p = path_of s in
      let a_hi = -.Float.min u v and a_lo = -.Float.max u v in
      (* the pure-polarity constant-sensitivity fixed point: its own
         delay is the monotone object (a = 0 is the delay optimum, more
         negative a trades delay for area).  delay_of_a's worst-polarity
         composite is only checked against the absolute lower bound:
         on skewed corners the beta = 0.5 weighting makes it wiggle. *)
      let d_at a = Path.delay p (fst (Sens.solve ~a p)) in
      let d_hi = d_at a_hi and d_lo = d_at a_lo in
      requiref (d_lo >= d_hi -. (1e-3 *. d_hi) -. 0.05)
        "delay(a=%.4g) = %.6g < delay(a=%.4g) = %.6g: not monotone" a_lo d_lo a_hi d_hi;
      requiref (Sens.delay_of_a p a_lo >= (Bounds.tmin p /. grid_tol) -. 1e-9)
        "delay_of_a(%.4g) beat the path lower bound tmin = %.6g" a_lo (Bounds.tmin p))

let () =
  Prop.register ~name:"sens.area_monotone_in_a"
    (Gen.pair spec (Gen.pair (Gen.float_range 0. 5.) (Gen.float_range 0. 5.)))
    (fun (s, (u, v)) ->
      let p = path_of s in
      let a_hi = -.Float.min u v and a_lo = -.Float.max u v in
      let area_of a = Path.area p (Sens.solve_worst ~a p) in
      let ar_hi = area_of a_hi and ar_lo = area_of a_lo in
      requiref (ar_lo <= ar_hi +. (1e-4 *. ar_hi) +. 0.01)
        "area(a=%.4g) = %.6g > area(a=%.4g) = %.6g: not monotone" a_lo ar_lo a_hi ar_hi)

let () =
  Prop.register ~name:"sens.accel_matches_plain"
    (Gen.pair spec (Gen.float_range 0. 3.))
    (fun (s, mag) ->
      let p = path_of s in
      let a = -.mag in
      let x_acc = Sens.solve_worst ~accel:true ~a p in
      let x_plain = Sens.solve_worst ~accel:false ~a p in
      close_to ~rtol:1e-3 ~atol:1e-6 "accelerated vs plain fixed point (delay)"
        (Path.delay_avg p x_plain) (Path.delay_avg p x_acc))

let () =
  Prop.register ~name:"sens.constraint_met"
    (Gen.pair spec (Gen.float_range 0.05 1.))
    (fun (s, margin) ->
      let p = path_of s in
      let tc = Bounds.tmin p *. (1. +. margin) in
      match Sens.size_for_constraint p ~tc with
      | Error (`Infeasible tmin) ->
        Prop.failf "tc=%.6g (tmin*%.3g) declared infeasible (solver tmin %.6g)" tc
          (1. +. margin) tmin
      | Ok r ->
        requiref (r.Sens.delay <= (tc *. 1.001) +. 0.5)
          "constraint sizing misses tc: delay %.6g > tc %.6g" r.Sens.delay tc)

let () =
  Prop.register ~name:"sens.constraint_infeasible"
    (Gen.pair spec (Gen.float_range 0.1 0.5))
    (fun (s, margin) ->
      let p = path_of s in
      let tmin = Bounds.tmin p in
      let tc = tmin *. (1. -. margin) in
      match Sens.size_for_constraint p ~tc with
      | Error (`Infeasible t) ->
        requiref (t <= tmin *. grid_tol)
          "reported tmin %.6g far above grid tmin %.6g" t tmin
      | Ok r ->
        Prop.failf "tc=%.6g below tmin=%.6g accepted with delay %.6g" tc tmin r.Sens.delay)

let () =
  Prop.register ~name:"numerics.bisect_finds_root"
    (Gen.make
       ~print:(fun (r, d1, d2, a) -> Printf.sprintf "root=%.6g lo=-%.3g hi=+%.3g cubic=%.3g" r d1 d2 a)
       (fun rng _ ->
         ( Rng.range rng (-50.) 50.,
           Rng.log_range rng 0.1 30.,
           Rng.log_range rng 0.1 30.,
           Rng.log_range rng 0.01 10. ))
       )
    (fun (r, d1, d2, a) ->
      let f x = (x -. r) *. (a +. ((x -. r) *. (x -. r))) in
      let x = Numerics.bisect ~tol:1e-9 ~f ~lo:(r -. d1) ~hi:(r +. d2) () in
      requiref (Float.abs (x -. r) <= 1e-6)
        "bisect returned %.9g, root is %.9g" x r)

(* ================================================================== *)
(* buffer insertion and Flimit                                         *)
(* ================================================================== *)

let () =
  Prop.register ~name:"buffers.flimit_crossover"
    (Gen.pair (Gen.pick ~print:(fun t -> t.Tech.name) C.technologies)
       (Gen.pick ~print:Gate_kind.name
          [| Gate_kind.Inv; Gate_kind.Nand 2; Gate_kind.Nand 3; Gate_kind.Nor 2;
             Gate_kind.Nor 3; Gate_kind.Aoi21 |]))
    (fun (tech, gate) ->
      let lib = C.library tech in
      let driver = Gate_kind.Inv in
      let gate_cin = 4. *. tech.Tech.cmin in
      let fl = Buffers.flimit ~lib ~driver ~gate () in
      if Float.is_finite fl then begin
        let check f expect_buffered =
          let cload = f *. gate_cin in
          let direct = Buffers.delay_direct ~lib ~driver ~gate ~gate_cin ~cload in
          let buffered, _ = Buffers.delay_buffered ~lib ~driver ~gate ~gate_cin ~cload () in
          if expect_buffered then
            requiref (buffered < direct)
              "F=%.3g (1.25x Flimit %.3g): buffered %.6g not faster than direct %.6g" f fl
              buffered direct
          else
            requiref (direct <= buffered *. (1. +. 1e-9))
              "F=%.3g (0.8x Flimit %.3g): direct %.6g slower than buffered %.6g" f fl
              direct buffered
        in
        check (fl *. 1.25) true;
        check (fl *. 0.8) false
      end
      else begin
        (* buffering never wins below the search cap: direct must hold there *)
        let cload = 150. *. gate_cin in
        let direct = Buffers.delay_direct ~lib ~driver ~gate ~gate_cin ~cload in
        let buffered, _ = Buffers.delay_buffered ~lib ~driver ~gate ~gate_cin ~cload () in
        requiref (direct <= buffered *. (1. +. 1e-9))
          "Flimit=inf but buffering wins at F=150: direct %.6g > buffered %.6g" direct
          buffered
      end)

let () =
  Prop.register ~name:"buffers.insert_local_improves" spec (fun s ->
      let p = path_of s in
      let x = Path.clamp_sizing p (C.sizing s) in
      let lib = C.library s.C.p_tech in
      let r = Buffers.insert_local ~lib p x in
      let before = Path.delay_worst p x in
      requiref (r.Buffers.delay <= (before *. (1. +. 1e-9)) +. 1e-6)
        "local insertion worsened the path: %.6g -> %.6g" before r.Buffers.delay)

(* ================================================================== *)
(* netlists, logic, transforms                                         *)
(* ================================================================== *)

let () =
  Prop.register ~name:"netlist.generated_dag_valid" C.dag_spec (fun d ->
      let nl = C.build_dag d in
      (match Netlist.validate nl with
      | Ok () -> ()
      | Error e -> Prop.failf "generated DAG invalid: %s" e);
      let order = Netlist.topological_order nl in
      requiref (List.length order = Netlist.live_count nl)
        "topological order misses nodes: %d vs %d" (List.length order)
        (Netlist.live_count nl);
      let seen = Hashtbl.create 64 in
      List.iter
        (fun id ->
          Array.iter
            (fun f ->
              if not (Hashtbl.mem seen f) then
                Prop.failf "node %d appears before its fan-in %d" id f)
            (Netlist.node nl id).Netlist.fanins;
          Hashtbl.add seen id ())
        order;
      require (Netlist.outputs nl <> []) "generated DAG has no primary output")

let () =
  Prop.register ~name:"netlist.levels_consistent" C.dag_spec (fun d ->
      let nl = C.build_dag d in
      let ids = Netlist.inputs nl @ Netlist.gate_ids nl in
      List.iter
        (fun id ->
          let n = Netlist.node nl id in
          match n.Netlist.kind with
          | Netlist.Primary_input ->
            requiref (Netlist.level nl id = 0) "input %d at level %d" id (Netlist.level nl id)
          | Netlist.Cell _ ->
            let expect =
              1 + Array.fold_left (fun m f -> max m (Netlist.level nl f)) 0 n.Netlist.fanins
            in
            requiref (Netlist.level nl id = expect)
              "node %d: level %d, fan-ins say %d" id (Netlist.level nl id) expect)
        ids;
      let depth = Netlist.depth nl in
      requiref (depth = List.fold_left (fun m id -> max m (Netlist.level nl id)) 0 ids)
        "depth %d is not the max level" depth;
      for l = 0 to depth + 1 do
        let direct = List.length (List.filter (fun id -> Netlist.level nl id >= l) ids) in
        requiref (Netlist.count_level_ge nl l = direct)
          "count_level_ge %d = %d, direct count %d" l (Netlist.count_level_ge nl l) direct
      done)

let () =
  Prop.register ~name:"logic.word_matches_scalar"
    (Gen.make
       ~print:(fun (k, ws) ->
         Printf.sprintf "%s over [%s]" (Gate_kind.name k)
           (String.concat "; " (List.map (Printf.sprintf "0x%Lx") (Array.to_list ws))))
       (fun rng _ ->
         let k = Rng.pick rng (Array.of_list Gate_kind.all) in
         (k, Array.init (Gate_kind.arity k) (fun _ -> Rng.int64 rng)))
       )
    (fun (kind, words) ->
      let packed = Logic.word_of_kind kind words in
      for j = 0 to 63 do
        let bit w = Int64.logand (Int64.shift_right_logical w j) 1L = 1L in
        let scalar = Gate_kind.eval kind (Array.map bit words) in
        if bit packed <> scalar then
          Prop.failf "%s lane %d: packed %b, scalar %b" (Gate_kind.name kind) j
            (bit packed) scalar
      done)

let () =
  Prop.register ~name:"logic.packed_matches_scalar"
    (Gen.pair C.dag_spec Gen.int64)
    (fun (d, seed) ->
      let nl = C.build_dag d in
      let rng = Rng.create seed in
      let words = Array.init (Netlist.input_count nl) (fun _ -> Rng.int64 rng) in
      let packed = Logic.eval_packed nl words in
      for j = 0 to 63 do
        let vec = Array.map (fun w -> Int64.logand (Int64.shift_right_logical w j) 1L = 1L) words in
        let scalar = Logic.eval nl vec in
        List.iter2
          (fun (id, w) (id', b) ->
            require (id = id') "output order mismatch";
            if (Int64.logand (Int64.shift_right_logical w j) 1L = 1L) <> b then
              Prop.failf "output %d lane %d: packed and scalar evaluation disagree" id j)
          packed scalar
      done)

let () =
  Prop.register ~name:"logic.cone_table_matches_eval"
    (Gen.pair C.dag_spec (Gen.int_range 0 1023))
    (fun (d, pick) ->
      let nl = C.build_dag d in
      let gates = Netlist.gate_ids nl in
      let id = List.nth gates (pick mod List.length gates) in
      let support = Logic.cone_support nl id in
      let k = List.length support in
      if k <= Logic.cone_limit && k <= 10 then begin
        let _, table = Logic.cone_function nl id in
        let inputs = Netlist.inputs nl in
        let pos = Hashtbl.create 16 in
        List.iteri (fun i pid -> Hashtbl.replace pos pid i) inputs;
        for pat = 0 to (1 lsl k) - 1 do
          let vec = Array.make (List.length inputs) false in
          List.iteri
            (fun i pid -> vec.(Hashtbl.find pos pid) <- pat land (1 lsl i) <> 0)
            support;
          let direct = Logic.eval_node nl vec id in
          let tabled =
            Int64.logand (Int64.shift_right_logical table.(pat lsr 6) (pat land 63)) 1L = 1L
          in
          if direct <> tabled then
            Prop.failf "node %d assignment %d: cone table %b, direct eval %b" id pat
              tabled direct
        done
      end)

let () =
  Prop.register ~name:"logic.cone_self_equivalent"
    (Gen.pair C.dag_spec (Gen.int_range 0 1023))
    (fun (d, pick) ->
      let nl = C.build_dag d in
      let gates = Netlist.gate_ids nl in
      let id = List.nth gates (pick mod List.length gates) in
      if List.length (Logic.cone_support nl id) <= Logic.cone_limit then
        match Logic.cone_equivalent nl id (Netlist.copy nl) id with
        | Ok () -> ()
        | Error e -> Prop.failf "node %d not equivalent to its own copy: %s" id e)

let () =
  Prop.register ~name:"transform.de_morgan_preserves_logic"
    (Gen.pair C.dag_spec (Gen.int_range 0 1023))
    (fun (d, pick) ->
      let nl = C.build_dag d in
      let duals =
        List.filter
          (fun id ->
            match (Netlist.node nl id).Netlist.kind with
            | Netlist.Cell k -> Gate_kind.de_morgan_dual k <> None
            | Netlist.Primary_input -> false)
          (Netlist.gate_ids nl)
      in
      match duals with
      | [] -> ()
      | _ :: _ -> (
        let id = List.nth duals (pick mod List.length duals) in
        let b = Netlist.copy nl in
        match Transform.de_morgan b id with
        | Error e -> Prop.failf "de_morgan refused a dual-capable gate %d: %s" id e
        | Ok inv_id ->
          (match Netlist.validate b with
          | Ok () -> ()
          | Error e -> Prop.failf "netlist invalid after de_morgan: %s" e);
          (match Logic.equivalent nl b with
          | Ok () -> ()
          | Error e -> Prop.failf "de_morgan changed the circuit function: %s" e);
          if
            List.length (Logic.cone_support nl id) <= Logic.cone_limit
            && List.length (Logic.cone_support b inv_id) <= Logic.cone_limit
          then
            match Logic.cone_equivalent nl id b inv_id with
            | Ok () -> ()
            | Error e -> Prop.failf "de_morgan changed the local cone: %s" e))

let () =
  Prop.register ~name:"transform.insert_buffer_preserves_logic"
    (Gen.pair C.dag_spec (Gen.int_range 0 1023))
    (fun (d, pick) ->
      let nl = C.build_dag d in
      let gates = Netlist.gate_ids nl in
      let id = List.nth gates (pick mod List.length gates) in
      let b = Netlist.copy nl in
      ignore (Transform.insert_buffer b ~after:id);
      (match Netlist.validate b with
      | Ok () -> ()
      | Error e -> Prop.failf "netlist invalid after insert_buffer: %s" e);
      match Logic.equivalent nl b with
      | Ok () -> ()
      | Error e -> Prop.failf "insert_buffer changed the circuit function: %s" e)

let () =
  Prop.register ~name:"transform.cleanup_reaches_fixpoint"
    (Gen.pair C.dag_spec (Gen.list_sized ~min_len:1 (Gen.int_range 0 1023)))
    (fun (d, picks) ->
      let nl = C.build_dag d in
      let b = Netlist.copy nl in
      List.iter
        (fun pick ->
          let gates = Netlist.gate_ids b in
          ignore (Transform.insert_buffer b ~after:(List.nth gates (pick mod List.length gates))))
        picks;
      let rounds = ref 0 in
      while Transform.cleanup_inverter_pairs b > 0 && !rounds < 20 do
        incr rounds
      done;
      requiref (!rounds < 20) "cleanup_inverter_pairs did not reach a fixpoint in 20 rounds";
      require (Transform.cleanup_inverter_pairs b = 0) "fixpoint not stable";
      (match Netlist.validate b with
      | Ok () -> ()
      | Error e -> Prop.failf "netlist invalid after cleanup: %s" e);
      match Logic.equivalent nl b with
      | Ok () -> ()
      | Error e -> Prop.failf "cleanup changed the circuit function: %s" e)

(* ================================================================== *)
(* bench-file I/O                                                      *)
(* ================================================================== *)

let () =
  Prop.register ~name:"bench.roundtrip" C.dag_spec (fun d ->
      let nl = C.build_dag d in
      let text = Bench_io.to_string nl in
      match Bench_io.parse (Netlist.tech nl) text with
      | Error e -> Prop.failf "netlist failed to parse back: %s" e
      | Ok (b, _) ->
        (match Netlist.validate b with
        | Ok () -> ()
        | Error e -> Prop.failf "round-tripped netlist invalid: %s" e);
        requiref (Netlist.gate_count b = Netlist.gate_count nl)
          "gate count changed in round trip: %d -> %d" (Netlist.gate_count nl)
          (Netlist.gate_count b);
        requiref (Netlist.depth b = Netlist.depth nl)
          "depth changed in round trip: %d -> %d" (Netlist.depth nl) (Netlist.depth b);
        (match Logic.equivalent nl b with
        | Ok () -> ()
        | Error e -> Prop.failf "round trip changed the circuit function: %s" e);
        (* sizing annotations survive to the printed precision (0.001 fF) *)
        let cins t = List.sort compare (List.map (fun id -> (Netlist.node t id).Netlist.cin) (Netlist.gate_ids t)) in
        List.iter2
          (fun a b ->
            if Float.abs (a -. b) > 2e-3 then
              Prop.failf "gate size lost in round trip: %.6g vs %.6g" a b)
          (cins nl) (cins b))

let malformed_benches =
  [|
    "INPUT(a)\nz = FROB(a)\nOUTPUT(z)\n";
    "INPUT(a)\nz = NOT(q)\nOUTPUT(z)\n";
    "a = NOT(b)\nb = NOT(a)\nOUTPUT(a)\n";
    "INPUT(a)\nz = NOT(a\nOUTPUT(z)\n";
    "INPUT(a)\nz = \nOUTPUT(z)\n";
    "INPUT(a)\nz = NOT(a)\nz = NOT(a)\nOUTPUT(z)\n";
    "INPUT(a)\nz = NOT()\nOUTPUT(z)\n";
  |]

let () =
  Prop.register ~name:"bench.rejects_malformed"
    (Gen.pick ~print:(Printf.sprintf "%S") malformed_benches)
    (fun text ->
      match Bench_io.parse Tech.cmos025 text with
      | Error _ -> ()
      | Ok _ -> Prop.failf "malformed input parsed successfully: %S" text)

(* ================================================================== *)
(* generator and STA                                                   *)
(* ================================================================== *)

let () =
  Prop.register ~name:"generator.spine_valid" C.spine_spec (fun sp ->
      let nl, spine = C.build_spine Tech.cmos025 sp in
      (match Netlist.validate nl with
      | Ok () -> ()
      | Error e -> Prop.failf "generated spine circuit invalid: %s" e);
      requiref (List.length spine = sp.C.sp_path_gates)
        "spine has %d gates, profile says %d" (List.length spine) sp.C.sp_path_gates;
      requiref (Netlist.depth nl = sp.C.sp_path_gates)
        "spine does not realise the depth: depth %d, spine %d" (Netlist.depth nl)
        sp.C.sp_path_gates)

let () =
  Prop.register ~name:"sta.incremental_equals_fresh"
    (Gen.pair C.dag_spec (Gen.list_sized ~min_len:1 C.edit))
    (fun (d, edits) ->
      let nl = C.build_dag d in
      let lib = C.library (Netlist.tech nl) in
      let t = Timing.analyze ~lib nl in
      List.iter
        (fun e ->
          C.apply_edit nl e;
          Timing.update t)
        edits;
      let fresh = Timing.analyze ~lib nl in
      requiref (Timing.critical_delay t = Timing.critical_delay fresh)
        "incremental critical delay %.17g <> fresh %.17g (bit equality required)"
        (Timing.critical_delay t) (Timing.critical_delay fresh);
      List.iter
        (fun id ->
          List.iter
            (fun e ->
              let a = Timing.arrival t id e and b = Timing.arrival fresh id e in
              if not (a.Timing.time = b.Timing.time && a.Timing.slope = b.Timing.slope) then
                Prop.failf "node %d %s: incremental (%.17g, %.17g) <> fresh (%.17g, %.17g)"
                  id (match e with Edge.Rising -> "rise" | Edge.Falling -> "fall")
                  a.Timing.time a.Timing.slope b.Timing.time b.Timing.slope)
            [ Edge.Rising; Edge.Falling ])
        (Netlist.inputs nl @ Netlist.gate_ids nl))

(* the backward mirror of the invariant above: required times and slacks
   folded incrementally through an edit sequence must equal a fresh
   backward sweep of the final netlist, bit for bit (NaN-aware) *)
let () =
  Prop.register ~name:"sta.incremental_slack_equals_fresh"
    (Gen.pair C.dag_spec (Gen.list_sized ~min_len:1 C.edit))
    (fun (d, edits) ->
      let nl = C.build_dag d in
      let lib = C.library (Netlist.tech nl) in
      let t = Timing.analyze ~lib nl in
      let tc = 0.75 *. Timing.critical_delay t in
      let s = Timing.slacks_make t ~tc in
      List.iter
        (fun e ->
          C.apply_edit nl e;
          Timing.slacks_update s)
        edits;
      let fresh = Timing.slacks_make (Timing.analyze ~lib nl) ~tc in
      let same a b = a = b || (Float.is_nan a && Float.is_nan b) in
      let required_opt s id e =
        match Timing.required s id e with r -> r | exception Not_found -> Float.nan
      in
      List.iter
        (fun id ->
          List.iter
            (fun e ->
              let a = required_opt s id e and b = required_opt fresh id e in
              if not (same a b) then
                Prop.failf "node %d %s: incremental required %.17g <> fresh %.17g"
                  id (match e with Edge.Rising -> "rise" | Edge.Falling -> "fall")
                  a b)
            [ Edge.Rising; Edge.Falling ];
          let a = Timing.node_slack s id and b = Timing.node_slack fresh id in
          if not (same a b) then
            Prop.failf "node %d: incremental slack %.17g <> fresh %.17g" id a b)
        (Netlist.inputs nl @ Netlist.gate_ids nl))

let () =
  Prop.register ~name:"sta.critical_path_consistent" C.dag_spec (fun d ->
      let nl = C.build_dag d in
      let lib = C.library (Netlist.tech nl) in
      let t = Timing.analyze ~lib nl in
      let path = Timing.critical_path t in
      require (path <> []) "critical path is empty";
      let rec check_chain = function
        | a :: (b :: _ as rest) ->
          let fi = (Netlist.node nl b).Netlist.fanins in
          requiref (Array.exists (fun f -> f = a) fi)
            "critical path broken: %d is not a fan-in of %d" a b;
          check_chain rest
        | _ -> ()
      in
      check_chain path;
      let last = List.nth path (List.length path - 1) in
      requiref (List.mem_assoc last (Netlist.outputs nl))
        "critical path ends at %d, not a primary output" last;
      let worst =
        List.fold_left
          (fun acc (id, _) ->
            let _, a = Timing.node_worst t id in
            Float.max acc a.Timing.time)
          0. (Netlist.outputs nl)
      in
      requiref (worst = Timing.critical_delay t)
        "critical delay %.17g is not the max over outputs %.17g" (Timing.critical_delay t)
        worst)

(* ================================================================== *)
(* flow                                                                *)
(* ================================================================== *)

let () =
  Prop.register ~max_size:4 ~name:"flow.never_worsens"
    (Gen.pair C.spine_spec (Gen.float_range 0.5 1.2))
    (fun (sp, factor) ->
      let nl, _ = C.build_spine Tech.cmos025 sp in
      let lib = C.library Tech.cmos025 in
      let t0 = Timing.critical_delay (Timing.analyze ~lib nl) in
      let tc = t0 *. factor in
      let r = Flow.optimize ~max_rounds:3 ~lib ~tc nl in
      requiref (r.Flow.final_delay <= (r.Flow.initial_delay *. (1. +. 1e-9)) +. 1e-6)
        "flow worsened the critical delay: %.6g -> %.6g" r.Flow.initial_delay
        r.Flow.final_delay;
      (match r.Flow.equivalence with
      | Ok () -> ()
      | Error e -> Prop.failf "flow broke logic equivalence: %s" e);
      match r.Flow.outcome with
      | Flow.Met ->
        requiref (r.Flow.final_delay <= tc +. 1e-6)
          "outcome Met but final delay %.6g > tc %.6g" r.Flow.final_delay tc
      | Flow.No_progress | Flow.Budget_exhausted -> ())

(* ================================================================== *)
(* rng and pool                                                        *)
(* ================================================================== *)

let () =
  Prop.register ~name:"rng.replay_and_split" Gen.int64 (fun seed ->
      let draws n rng = List.init n (fun _ -> Rng.int64 rng) in
      require (draws 16 (Rng.create seed) = draws 16 (Rng.create seed))
        "same seed did not replay the same stream";
      let p1 = Rng.create seed and p2 = Rng.create seed in
      let p1, c1 = Rng.split p1 and p2, c2 = Rng.split p2 in
      require (draws 16 c1 = draws 16 c2) "split children do not replay";
      let after_split = draws 16 p1 in
      require (after_split = draws 16 p2) "split parents do not replay";
      let plain = Rng.create seed in
      ignore (Rng.int64 plain);
      require (after_split = draws 16 plain)
        "split changed the parent stream (must equal one plain draw)";
      (* independence in the statistical sense: child stream must not
         mirror the parent stream (collision chance ~2^-1024) *)
      let p = Rng.create seed in
      let _, c = Rng.split p in
      require (draws 16 p <> draws 16 c) "child stream mirrors the parent stream")

(* the level-parallel CSR sweep must be bit-identical to the sequential
   record-based reference at every domain count: slices write disjoint
   arrival slots and read only strictly lower levels, and chunk
   boundaries are a pure function of the range and the pool size *)
let () =
  Prop.register ~cases:25 ~name:"sta.level_parallel_equals_sequential" C.dag_spec
    (fun d ->
      let nl = C.build_dag d in
      let lib = C.library (Netlist.tech nl) in
      let reference = Timing.analyze_reference ~lib nl in
      let ids = Netlist.inputs nl @ Netlist.gate_ids nl in
      let saved = Pool.default_size () in
      Fun.protect
        ~finally:(fun () -> Pool.set_default_size saved)
        (fun () ->
          List.iter
            (fun domains ->
              Pool.set_default_size domains;
              (* level_par_min 2 forces the parallel path on every level
                 wider than one node, even on these small circuits *)
              let t = Timing.analyze ~level_par_min:2 ~lib nl in
              requiref
                (Timing.critical_delay t = Timing.critical_delay reference)
                "%d domains: critical delay %.17g <> sequential %.17g" domains
                (Timing.critical_delay t) (Timing.critical_delay reference);
              List.iter
                (fun id ->
                  List.iter
                    (fun e ->
                      let a = Timing.arrival t id e
                      and b = Timing.arrival reference id e in
                      if
                        not
                          (a.Timing.time = b.Timing.time
                          && a.Timing.slope = b.Timing.slope
                          && a.Timing.from_ = b.Timing.from_)
                      then
                        Prop.failf
                          "%d domains: node %d %s arrival differs from sequential"
                          domains id
                          (match e with Edge.Rising -> "rise" | Edge.Falling -> "fall"))
                    [ Edge.Rising; Edge.Falling ])
                ids)
            [ 1; 2; 4 ]))

let () =
  Prop.register ~name:"pool.parallel_map_ordered"
    (Gen.list_sized ~min_len:1 (Gen.int_range (-1000) 1000))
    (fun xs ->
      let arr = Array.of_list xs in
      let f i = (i * 31) + (i * i) in
      let par = Pool.parallel_map f arr in
      let seq = Array.map f arr in
      require (par = seq) "parallel_map result differs from sequential map")

(* ================================================================== *)
(* SPICE differential oracle                                           *)
(* ================================================================== *)

(* tolerance bands recorded in the golden file: lines
   "<tech-name> <lo> <hi>" bounding sim_delay / model_delay, and
   "<tech-name>.<vt-class> <lo> <hi> <leak-factor>" for the per-Vt
   differential rows, whose fourth column locks the class's leakage
   multiplier at the model level *)
let golden_tables =
  lazy
    (let path =
       if Sys.file_exists "spice_tolerances.golden" then "spice_tolerances.golden"
       else if Sys.file_exists "test/spice_tolerances.golden" then
         "test/spice_tolerances.golden"
       else failwith "spice_tolerances.golden not found (run from repo root or test/)"
     in
     let bands = Hashtbl.create 64 in
     let leaks = Hashtbl.create 64 in
     let ic = open_in path in
     (try
        while true do
          let line = String.trim (input_line ic) in
          if line <> "" && line.[0] <> '#' then
            match
              List.filter (( <> ) "") (String.split_on_char ' ' line)
            with
            | [ n; lo; hi ] ->
              Hashtbl.replace bands n (float_of_string lo, float_of_string hi)
            | [ n; lo; hi; leak ] ->
              Hashtbl.replace bands n (float_of_string lo, float_of_string hi);
              Hashtbl.replace leaks n (float_of_string leak)
            | _ -> failwith ("malformed spice_tolerances.golden line: " ^ line)
        done
      with End_of_file -> ());
     close_in ic;
     (bands, leaks))

let golden_band key =
  match Hashtbl.find_opt (fst (Lazy.force golden_tables)) key with
  | Some band -> band
  | None -> Prop.failf "%s missing from spice_tolerances.golden" key

let () =
  Prop.register ~name:"spice.model_tracks_simulation" C.spice_chain (fun s ->
      (* sanitizing keeps shrunk values inside the calibrated envelope *)
      let s = C.sanitize_spice s in
      let lo, hi = golden_band s.C.p_tech.Tech.name in
      let p = path_of s in
      let x = Path.clamp_sizing p (C.sizing s) in
      let sim = Transient.simulate_path ~steps_per_stage:500 p x in
      let model = Path.delay p x in
      let ratio = sim.Transient.total_delay /. model in
      requiref (ratio >= lo && ratio <= hi)
        "sim/model ratio %.4f outside golden band [%.3f, %.3f] (sim %.6g ps, model %.6g ps)"
        ratio lo hi sim.Transient.total_delay model)

(* Per-Vt-class differential: rebuild the chain in one Vt class
   (Vt-variant cells on the model side, the class's threshold shift in
   the path's tech record on the simulator side) and hold the sim/model
   ratio to the class's own golden band.  The simulator's transistors
   cut off cleanly below threshold — there is no subthreshold current to
   measure — so the leakage half of the class is locked at the model
   level against the golden file's recorded multiplier. *)
let () =
  Prop.register ~name:"spice.vt_model_tracks_simulation"
    (Gen.pair C.spice_chain (Gen.int_range 0 (Pops_process.Vt.count - 1)))
    (fun (s, vi) ->
      let s = C.sanitize_spice s in
      let vt = Pops_process.Vt.of_int vi in
      let tech = s.C.p_tech in
      let key =
        Printf.sprintf "%s.%s" tech.Tech.name (Pops_process.Vt.name vt)
      in
      let lo, hi = golden_band key in
      let p = C.to_vt_path s vt in
      let x = Path.clamp_sizing p (C.sizing s) in
      let sim = Transient.simulate_path ~steps_per_stage:500 p x in
      let model = Path.delay p x in
      let ratio = sim.Transient.total_delay /. model in
      requiref (ratio >= lo && ratio <= hi)
        "%s sim/model ratio %.4f outside golden band [%.3f, %.3f] (sim %.6g ps, model %.6g ps)"
        key ratio lo hi sim.Transient.total_delay model;
      let golden_leak =
        match Hashtbl.find_opt (snd (Lazy.force golden_tables)) key with
        | Some l -> l
        | None -> Prop.failf "%s has no leak-factor column in the golden file" key
      in
      let lib = C.library tech in
      List.iter
        (fun kind ->
          let cell = Library.find_vt lib kind vt in
          requiref
            (Float.abs (cell.Cell.leak_factor -. golden_leak)
            <= 1e-4 *. Float.max 1. golden_leak)
            "leak_factor %.6g of %s drifted from golden %.6g"
            cell.Cell.leak_factor key golden_leak;
          requiref (cell.Cell.tau_factor >= 1.)
            "tau_factor %.6g < 1: a higher-Vt cell cannot be faster" cell.Cell.tau_factor)
        s.C.kinds)

(* ================================================================== *)
(* fault injection: the resilience contract                            *)
(* ================================================================== *)

(* Each case derives a deterministic POPS_FAULT spec from a generated
   seed (under the CI fault leg, [Fault.case_spec] keeps the ambient
   point selection and only re-seeds), arms it with [Fault.with_spec]
   for the duration of the case, and asserts the engine's resilience
   contract: no crash, every degradation reported, degraded results
   still valid. *)

module Diag = Pops_robust.Diag
module Outcome = Pops_robust.Outcome

let has_code code diags = List.exists (fun d -> d.Diag.code = code) diags

let spec_and_seed = Gen.pair spec Gen.int64

let () =
  Prop.register ~name:"fault.solver_never_crashes" spec_and_seed (fun (s, seed) ->
      let p = path_of s in
      let r =
        Fault.with_spec
          (Fault.solver_spec (Rng.create seed))
          (fun () -> Sens.solve_robust p)
      in
      require
        (Array.for_all Float.is_finite r.Sens.sizing)
        "faulted solve returned a non-finite sizing";
      requiref
        (Float.is_finite (Path.delay_worst p r.Sens.sizing))
        "faulted solve's sizing has non-finite delay (rung %s)"
        (Sens.rung_name r.Sens.fallback))

let () =
  Prop.register ~name:"fault.ladder_descent_reported" spec_and_seed
    (fun (s, seed) ->
      let p = path_of s in
      let r =
        Fault.with_spec
          (Fault.solver_spec (Rng.create seed))
          (fun () -> Sens.solve_robust p)
      in
      if r.Sens.fallback <> Sens.Accelerated then begin
        require (r.Sens.diags <> []) "silent ladder descent";
        requiref
          (has_code Diag.Solver_fallback r.Sens.diags)
          "descent to %s missing the Solver_fallback diagnostic"
          (Sens.rung_name r.Sens.fallback);
        require
          (has_code Diag.Solver_divergence r.Sens.diags
          || has_code Diag.Solver_nonfinite r.Sens.diags)
          "descent without a divergence/non-finite cause on record"
      end)

let () =
  Prop.register ~name:"fault.full_ladder_delay_bounded" spec_and_seed
    (fun (s, seed) ->
      let p = path_of s in
      (* bounds computed healthy, before arming *)
      let b = Bounds.compute p in
      let r =
        Fault.with_spec
          (Printf.sprintf "solver.diverge,seed=%Ld" seed)
          (fun () -> Sens.solve_robust p)
      in
      requiref
        (r.Sens.fallback = Sens.Tmax_safe)
        "all rungs forced to diverge but landed on %s"
        (Sens.rung_name r.Sens.fallback);
      let d = Path.delay_worst p r.Sens.sizing in
      requiref
        (d <= b.Bounds.tmax *. (1. +. 1e-9))
        "Tmax-safe sizing slower than the Tmax bound: %.6g > %.6g" d
        b.Bounds.tmax)

let () =
  Prop.register ~name:"fault.solve_o_never_fails" spec_and_seed (fun (s, seed) ->
      let p = path_of s in
      match
        Fault.with_spec
          (Fault.solver_spec (Rng.create seed))
          (fun () -> Sens.solve_o p)
      with
      | Outcome.Failed d ->
        Prop.failf "solver fault escalated to Failed: %s" (Diag.one_line d)
      | Outcome.Exact x ->
        require (Array.for_all Float.is_finite x) "Exact sizing non-finite"
      | Outcome.Degraded (x, diags) ->
        require (Array.for_all Float.is_finite x) "Degraded sizing non-finite";
        require (diags <> []) "Degraded with an empty diagnostic list")

let () =
  Prop.register ~name:"fault.deterministic_replay" spec_and_seed (fun (s, seed) ->
      let p = path_of s in
      let spec = Fault.solver_spec (Rng.create seed) in
      let run () = Fault.with_spec spec (fun () -> Sens.solve_robust p) in
      let r1 = run () and r2 = run () in
      require (r1.Sens.fallback = r2.Sens.fallback) "replay changed the rung";
      require (r1.Sens.sizing = r2.Sens.sizing)
        "replay changed the sizing bit pattern")

let () =
  Prop.register ~name:"fault.unarmed_points_never_fire" Gen.int64 (fun seed ->
      Fault.with_spec
        (Printf.sprintf "solver.diverge.accel,seed=%Ld" seed)
        (fun () ->
          require (not (Fault.fire "pool.raise")) "unarmed pool point fired";
          require (not (Fault.fire "bench.truncate")) "unarmed bench point fired";
          require
            (not (Fault.fire "solver.diverge.plain"))
            "sibling point fired from a fully-qualified spec";
          require (Fault.fire "solver.diverge.accel") "armed point did not fire");
      List.iter
        (fun p ->
          requiref (not (Fault.fire p)) "point %s fired after the spec was restored" p)
        Fault.points)

let () =
  Prop.register ~name:"fault.pool_contains_every_task"
    (Gen.list_sized ~min_len:1 (Gen.int_range (-50) 50))
    (fun xs ->
      let slots =
        Fault.with_spec "pool.raise" (fun () ->
            Pool.map_list_contained (fun x -> x * 2) xs)
      in
      requiref (List.length slots = List.length xs)
        "containment changed the slot count: %d <> %d" (List.length slots)
        (List.length xs);
      List.iter
        (fun (result, _) ->
          match result with
          | Error d ->
            requiref
              (d.Diag.code = Diag.Pool_task_failed)
              "contained slot carries %s, not pool-task-failed"
              (Diag.code_name d.Diag.code)
          | Ok _ -> Prop.failf "a task survived a prob-1 pool.raise")
        slots;
      (* disarmed, the same fan-out is exact *)
      let healthy = Pool.map_list_contained (fun x -> x * 2) xs in
      List.iter2
        (fun x (result, _) ->
          match result with
          | Ok y -> requiref (y = 2 * x) "healthy slot wrong: %d <> %d" y (2 * x)
          | Error d -> Prop.failf "healthy task contained: %s" (Diag.one_line d))
        xs healthy)

let () =
  Prop.register ~name:"fault.pool_probabilistic_mix"
    (Gen.pair (Gen.list_sized ~min_len:4 (Gen.int_range 0 50)) Gen.int64)
    (fun (xs, seed) ->
      let slots =
        Fault.with_spec
          (Printf.sprintf "pool.raise@0.5,seed=%Ld" seed)
          (fun () -> Pool.map_list_contained (fun x -> x + 1) xs)
      in
      List.iter2
        (fun x (result, _) ->
          match result with
          | Ok y -> requiref (y = x + 1) "surviving slot wrong: %d <> %d" y (x + 1)
          | Error d ->
            requiref
              (d.Diag.code = Diag.Pool_task_failed)
              "contained slot carries %s" (Diag.code_name d.Diag.code))
        xs slots)

let () =
  Prop.register ~name:"fault.bench_truncation_contained"
    (Gen.pair C.dag_spec Gen.int64)
    (fun (d, seed) ->
      let nl = C.build_dag d in
      let text = Bench_io.to_string nl in
      match
        Fault.with_spec
          (Printf.sprintf "bench.truncate,seed=%Ld" seed)
          (fun () -> Bench_io.parse_o (Netlist.tech nl) text)
      with
      | Outcome.Failed diag ->
        (* a cut file must be rejected with a typed, user-actionable
           diagnostic, never an exception or an internal code *)
        requiref
          (Diag.classify diag.Diag.code = `Invalid_input)
          "truncation produced a non-input diagnostic: %s"
          (Diag.one_line diag)
      | Outcome.Exact (b, _) | Outcome.Degraded ((b, _), _) -> (
        (* the cut can land on a statement boundary and still parse;
           then the result must be a valid netlist *)
        match Netlist.validate b with
        | Ok () -> ()
        | Error e -> Prop.failf "truncated parse produced an invalid netlist: %s" e))

let () =
  (* [Fault.case_spec] draws one registered point per case — or keeps the
     ambient POPS_FAULT selection under the CI fault leg — so this sweeps
     the whole registry through a combined solve + parse + fan-out pass
     without ever crashing *)
  Prop.register ~name:"fault.engine_never_crashes" spec_and_seed (fun (s, seed) ->
      let p = path_of s in
      Fault.with_spec
        (Fault.case_spec (Rng.create seed))
        (fun () ->
          let r = Sens.solve_robust p in
          require
            (Array.for_all Float.is_finite r.Sens.sizing)
            "solve under an arbitrary fault point lost finiteness";
          (match
             Bench_io.parse_o Tech.cmos025
               "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = NAND(a, b)\ny = NOT(n1)\n"
           with
          | Outcome.Failed d ->
            requiref
              (Diag.classify d.Diag.code = `Invalid_input)
              "parse under faults failed with a non-input code: %s"
              (Diag.one_line d)
          | Outcome.Exact _ | Outcome.Degraded _ -> ());
          let slots = Pool.map_list_contained (fun x -> x + 1) [ 1; 2; 3 ] in
          List.iter
            (fun (result, _) ->
              match result with
              | Ok _ | Error { Diag.code = Diag.Pool_task_failed; _ } -> ()
              | Error d ->
                Prop.failf "fan-out under faults produced %s" (Diag.one_line d))
            slots))

let () =
  Prop.register ~max_size:4 ~name:"fault.flow_survives_storm"
    (Gen.pair (Gen.pair C.spine_spec (Gen.float_range 0.4 1.1)) Gen.int64)
    (fun ((sp, factor), seed) ->
      let nl, _ = C.build_spine Tech.cmos025 sp in
      let lib = C.library Tech.cmos025 in
      let t0 = Timing.critical_delay (Timing.analyze ~lib nl) in
      let tc = t0 *. factor in
      match
        Fault.with_spec
          (Printf.sprintf "all,seed=%Ld" seed)
          (fun () -> Flow.optimize_o ~max_rounds:3 ~lib ~tc nl)
      with
      | Outcome.Failed diag ->
        Prop.failf "flow failed on a valid netlist under faults: %s"
          (Diag.one_line diag)
      | Outcome.Exact r | Outcome.Degraded (r, _) ->
        requiref
          (r.Flow.final_delay <= (r.Flow.initial_delay *. (1. +. 1e-9)) +. 1e-6)
          "faulted flow worsened the delay: %.6g -> %.6g" r.Flow.initial_delay
          r.Flow.final_delay;
        (match r.Flow.equivalence with
        | Ok () -> ()
        | Error e -> Prop.failf "faulted flow broke equivalence: %s" e);
        match Netlist.validate nl with
        | Ok () -> ()
        | Error e -> Prop.failf "faulted flow left an invalid netlist: %s" e)

let () =
  Prop.register ~max_size:4 ~name:"fault.flow_reports_contained_tasks"
    (Gen.pair C.spine_spec Gen.int64)
    (fun (sp, seed) ->
      let nl, _ = C.build_spine Tech.cmos025 sp in
      let lib = C.library Tech.cmos025 in
      let t0 = Timing.critical_delay (Timing.analyze ~lib nl) in
      (* unreachable target, so at least one round must fan out *)
      let tc = t0 *. 0.01 in
      match
        Fault.with_spec
          (Printf.sprintf "pool.raise,seed=%Ld" seed)
          (fun () -> Flow.optimize_o ~max_rounds:2 ~lib ~tc nl)
      with
      | Outcome.Failed diag ->
        Prop.failf "contained tasks escalated to Failed: %s" (Diag.one_line diag)
      | Outcome.Exact _ -> Prop.failf "every task was killed yet the run is Exact"
      | Outcome.Degraded (_, diags) ->
        require
          (has_code Diag.Pool_task_failed diags)
          "contained pool tasks left no diagnostic in the outcome")

(* ================================================================== *)
(* multi-Vt assignment                                                 *)
(* ================================================================== *)

module Vt = Pops_process.Vt
module Vt_assign = Pops_flow.Vt_assign

let spine_and_slack = Gen.pair C.spine_spec (Gen.float_range 1.0 1.6)

(* (a) the pass spends slack, never timing: when the incoming netlist
   meets Tc, the worst arrival after every swap still meets it *)
let () =
  Prop.register ~max_size:6 ~name:"vt.slack_never_negative" spine_and_slack
    (fun (sp, factor) ->
      let nl, _ = C.build_spine Tech.cmos025 sp in
      let lib = C.library Tech.cmos025 in
      let timing = Timing.analyze ~lib nl in
      let tc = factor *. Timing.critical_delay timing in
      let r = Vt_assign.run ~lib ~tc ~timing nl in
      let d = Timing.critical_delay timing in
      requiref (d <= tc)
        "vt pass un-met the constraint: delay %.17g > tc %.17g (%d swaps)" d tc
        r.Vt_assign.accepted;
      let fresh = Timing.critical_delay (Timing.analyze ~lib nl) in
      requiref (d = fresh)
        "incremental delay %.17g diverged from fresh STA %.17g after swaps" d
        fresh)

(* (b) leakage is monotone non-increasing across the swap loop, and the
   report's leakage matches the power report bitwise *)
let () =
  Prop.register ~max_size:6 ~name:"vt.leakage_monotone" spine_and_slack
    (fun (sp, factor) ->
      let nl, _ = C.build_spine Tech.cmos025 sp in
      let lib = C.library Tech.cmos025 in
      let timing = Timing.analyze ~lib nl in
      let tc = factor *. Timing.critical_delay timing in
      let before = (Pops_sta.Power.analyze ~lib nl).Pops_sta.Power.leakage_uw in
      let r = Vt_assign.run ~lib ~tc ~timing nl in
      requiref (r.Vt_assign.leakage_before = before)
        "report leakage_before %.17g <> power report %.17g"
        r.Vt_assign.leakage_before before;
      requiref (r.Vt_assign.leakage_after <= r.Vt_assign.leakage_before)
        "leakage increased: %.17g -> %.17g" r.Vt_assign.leakage_before
        r.Vt_assign.leakage_after;
      let after = (Pops_sta.Power.analyze ~lib nl).Pops_sta.Power.leakage_uw in
      requiref (r.Vt_assign.leakage_after = after)
        "report leakage_after %.17g <> power report %.17g"
        r.Vt_assign.leakage_after after;
      if r.Vt_assign.accepted = 0 then
        requiref (r.Vt_assign.leakage_after = r.Vt_assign.leakage_before)
          "zero swaps yet leakage moved: %.17g -> %.17g"
          r.Vt_assign.leakage_before r.Vt_assign.leakage_after)

(* (c) the all-LVT state is the identity: under an unmeetable Tc no swap
   is accepted, every gate stays LVT, the arrival state is bitwise the
   baseline and the leakage-weighted area degenerates to the plain
   area (every LVT factor is exactly 1.0) *)
let () =
  Prop.register ~max_size:6 ~name:"vt.all_lvt_is_baseline" C.spine_spec
    (fun sp ->
      let nl, _ = C.build_spine Tech.cmos025 sp in
      let lib = C.library Tech.cmos025 in
      let timing = Timing.analyze ~lib nl in
      let d0 = Timing.critical_delay timing in
      let r = Vt_assign.run ~lib ~tc:(0.5 *. d0) ~timing nl in
      requiref (r.Vt_assign.accepted = 0)
        "unmeetable Tc accepted %d swaps" r.Vt_assign.accepted;
      List.iter
        (fun id ->
          require
            (Vt.equal (Netlist.vt_of nl id) Vt.Lvt)
            "a rejected swap left a non-LVT gate behind")
        (Netlist.gate_ids nl);
      requiref
        (Timing.critical_delay timing = d0)
        "rejected swaps moved the arrival state: %.17g <> %.17g"
        (Timing.critical_delay timing) d0;
      requiref
        (Netlist.total_leakage_area nl lib = Netlist.total_area nl lib)
        "all-LVT leakage-weighted area %.17g <> plain area %.17g"
        (Netlist.total_leakage_area nl lib)
        (Netlist.total_area nl lib))

(* (d) the assignment is a pure function of the netlist: bit-identical
   report and per-gate Vt classes at 1 and 4 pool domains *)
let () =
  Prop.register ~max_size:6 ~cases:40 ~name:"vt.deterministic_across_domains"
    spine_and_slack (fun (sp, factor) ->
      let lib = C.library Tech.cmos025 in
      let run domains =
        let nl, _ = C.build_spine Tech.cmos025 sp in
        let saved = Pool.default_size () in
        Fun.protect
          ~finally:(fun () -> Pool.set_default_size saved)
          (fun () ->
            Pool.set_default_size domains;
            let timing = Timing.analyze ~lib nl in
            let tc = factor *. Timing.critical_delay timing in
            let r = Vt_assign.run ~lib ~tc ~timing nl in
            let vts =
              List.map (fun id -> Vt.to_int (Netlist.vt_of nl id))
                (Netlist.gate_ids nl)
            in
            (r, vts))
      in
      let r1, vts1 = run 1 in
      let r4, vts4 = run 4 in
      require (vts1 = vts4) "Vt assignment differs between 1 and 4 domains";
      requiref
        (r1.Vt_assign.leakage_after = r4.Vt_assign.leakage_after
        && r1.Vt_assign.accepted = r4.Vt_assign.accepted
        && r1.Vt_assign.rejected = r4.Vt_assign.rejected
        && r1.Vt_assign.rounds = r4.Vt_assign.rounds)
        "report differs between domain counts: %d/%d vs %d/%d swaps"
        r1.Vt_assign.accepted r1.Vt_assign.rejected r4.Vt_assign.accepted
        r4.Vt_assign.rejected)

(* (e) the vt.swap fault point is contained: a deterministic Degraded
   outcome whose netlist keeps the pre-pass assignment and sizing *)
let () =
  Prop.register ~max_size:6 ~name:"fault.vt_swap_contained"
    (Gen.pair spine_and_slack Gen.int64)
    (fun ((sp, factor), seed) ->
      let nl, _ = C.build_spine Tech.cmos025 sp in
      let lib = C.library Tech.cmos025 in
      let cin0 =
        List.map (fun id -> (Netlist.node nl id).Netlist.cin)
          (Netlist.gate_ids nl)
      in
      let t0 = Timing.critical_delay (Timing.analyze ~lib nl) in
      let tc = factor *. t0 in
      match
        Fault.with_spec
          (Printf.sprintf "vt.swap,seed=%Ld" seed)
          (fun () -> Flow.optimize_o ~vt_assign:true ~max_rounds:3 ~lib ~tc nl)
      with
      | Outcome.Failed diag ->
        Prop.failf "vt.swap escalated to Failed: %s" (Diag.one_line diag)
      | Outcome.Exact _ ->
        Prop.failf "vt.swap fired (prob 1) yet the run is Exact"
      | Outcome.Degraded (r, diags) ->
        require
          (has_code Diag.Fault_injected diags)
          "aborted vt pass left no fault-injected diagnostic";
        (match r.Flow.vt with
        | None -> Prop.failf "vt_assign:true returned no vt report"
        | Some v ->
          requiref (v.Vt_assign.accepted = 0)
            "aborted pass reports %d accepted swaps" v.Vt_assign.accepted;
          requiref (v.Vt_assign.leakage_after = v.Vt_assign.leakage_before)
            "aborted pass changed leakage: %.17g -> %.17g"
            v.Vt_assign.leakage_before v.Vt_assign.leakage_after);
        List.iter
          (fun id ->
            require
              (Vt.equal (Netlist.vt_of nl id) Vt.Lvt)
              "aborted pass left a promoted gate behind")
          (Netlist.gate_ids nl);
        (* tc >= the initial delay, so the sizing loop is a no-op and the
           rewind trail is the whole story: sizes must be untouched *)
        let cin1 =
          List.map (fun id -> (Netlist.node nl id).Netlist.cin)
            (Netlist.gate_ids nl)
        in
        require (cin0 = cin1) "aborted vt pass modified the sizing")

let () = Prop.main ()
