(* Tests for Pops_netlist: graph surgery, logic evaluation/equivalence,
   structural transforms and the synthetic circuit generator. *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Library = Pops_cell.Library
module Netlist = Pops_netlist.Netlist
module Logic = Pops_netlist.Logic
module Transform = Pops_netlist.Transform
module Builder = Pops_netlist.Builder
module Generator = Pops_netlist.Generator

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let tech = Tech.cmos025
let _lib = Library.make tech

let check_valid t =
  match Netlist.validate t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid netlist: %s" msg

(* --- graph basics --- *)

let test_build_and_query () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let g = Netlist.add_gate t (Gk.Nand 2) [| a; b |] in
  let h = Netlist.add_gate t Gk.Inv [| g |] in
  Netlist.set_output t h ~load:12.;
  check_valid t;
  Alcotest.(check int) "gates" 2 (Netlist.gate_count t);
  Alcotest.(check int) "inputs" 2 (Netlist.input_count t);
  Alcotest.(check int) "depth" 2 (Netlist.depth t);
  Alcotest.(check (list int)) "fanouts of g" [ h ] (Netlist.node t g).Netlist.fanouts;
  (* load on h = terminal only; load on g = cin of h *)
  Alcotest.(check bool) "load h" true (Netlist.load_on t h = 12.);
  Alcotest.(check bool) "load g" true
    (Netlist.load_on t g = (Netlist.node t h).Netlist.cin)

let test_arity_checked () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  match Netlist.add_gate t (Gk.Nand 2) [| a |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity violation accepted"

let test_unknown_fanin () =
  let t = Netlist.create tech in
  match Netlist.add_gate t Gk.Inv [| 99 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dangling fanin accepted"

let test_set_fanin_updates_fanouts () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let g = Netlist.add_gate t Gk.Inv [| a |] in
  Netlist.set_fanin t g ~pin:0 b;
  check_valid t;
  Alcotest.(check (list int)) "a freed" [] (Netlist.node t a).Netlist.fanouts;
  Alcotest.(check (list int)) "b gained" [ g ] (Netlist.node t b).Netlist.fanouts

let test_delete_guards () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let g = Netlist.add_gate t Gk.Inv [| a |] in
  let h = Netlist.add_gate t Gk.Inv [| g |] in
  (match Netlist.delete_gate t g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deleted node with consumers");
  Netlist.set_output t h ~load:1.;
  (match Netlist.delete_gate t h with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deleted primary output")

let test_topological_order () =
  let t = Builder.c17 tech in
  let order = Netlist.topological_order t in
  let pos = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace pos id i) order;
  List.iter
    (fun id ->
      let n = Netlist.node t id in
      Array.iter
        (fun f ->
          Alcotest.(check bool) "fanin before gate" true
            (Hashtbl.find pos f < Hashtbl.find pos id))
        n.Netlist.fanins)
    (Netlist.gate_ids t)

let test_copy_independent () =
  let t = Builder.c17 tech in
  let c = Netlist.copy t in
  let g = List.hd (Netlist.gate_ids t) in
  Netlist.set_cin t g 42.;
  Alcotest.(check bool) "copy unaffected" true ((Netlist.node c g).Netlist.cin <> 42.)

(* --- logic --- *)

let test_c17_truth () =
  let t = Builder.c17 tech in
  (* independent reference model of c17 *)
  let reference v =
    match v with
    | [| i1; i2; i3; i4; i5 |] ->
      let nand a b = not (a && b) in
      let n10 = nand i1 i3 and n11 = nand i3 i4 in
      let n16 = nand i2 n11 and n19 = nand n11 i5 in
      [ nand n10 n16; nand n16 n19 ]
    | _ -> assert false
  in
  for pat = 0 to 31 do
    let v = Array.init 5 (fun i -> pat land (1 lsl i) <> 0) in
    let got = List.map snd (Logic.eval t v) in
    Alcotest.(check (list bool)) (Printf.sprintf "pattern %d" pat) (reference v) got
  done

let test_adder_matches_reference () =
  let bits = 4 in
  let t = Builder.ripple_carry_adder tech ~bits ~out_load:10. in
  check_valid t;
  for pat = 0 to (1 lsl ((2 * bits) + 1)) - 1 do
    let v = Array.init ((2 * bits) + 1) (fun i -> pat land (1 lsl i) <> 0) in
    let expected = Array.to_list (Builder.adder_reference ~bits v) in
    let got = List.map snd (Logic.eval t v) in
    Alcotest.(check (list bool)) "adder output" expected got
  done

let test_equivalent_self () =
  let t = Builder.c17 tech in
  match Logic.equivalent t (Netlist.copy t) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "self-equivalence failed: %s" m

let test_equivalent_detects_difference () =
  let t = Builder.c17 tech in
  let u = Netlist.copy t in
  (* flip one gate kind: NAND -> NOR changes the function *)
  let g = List.hd (Netlist.gate_ids u) in
  Netlist.replace_kind u g (Gk.Nor 2);
  match Logic.equivalent t u with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must detect the difference"

let test_signal_probability () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let g = Netlist.add_gate t (Gk.Nand 2) [| a; b |] in
  Netlist.set_output t g ~load:1.;
  let p = Logic.signal_probability t g in
  Alcotest.(check bool) "P(nand=1)=0.75" true (Float.abs (p -. 0.75) < 1e-9);
  let act = Logic.switching_activity t g in
  Alcotest.(check bool) "activity 2*0.75*0.25" true (Float.abs (act -. 0.375) < 1e-9)

(* --- transforms --- *)

let test_buffer_preserves_logic () =
  let t = Builder.c17 tech in
  let u = Netlist.copy t in
  let g = List.nth (Netlist.gate_ids u) 2 in
  let _b1, _b2 = Transform.insert_buffer u ~after:g in
  check_valid u;
  (match Logic.equivalent t u with
  | Ok () -> ()
  | Error m -> Alcotest.failf "buffer broke logic: %s" m);
  Alcotest.(check int) "two gates added" (Netlist.gate_count t + 2) (Netlist.gate_count u)

let test_buffer_moves_output_designation () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let g = Netlist.add_gate t Gk.Inv [| a |] in
  Netlist.set_output t g ~load:20.;
  let _b1, b2 = Transform.insert_buffer t ~after:g in
  check_valid t;
  Alcotest.(check bool) "output moved to b2" true
    (List.mem_assoc b2 (Netlist.outputs t) && not (List.mem_assoc g (Netlist.outputs t)))

let test_buffer_for_subset () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let g = Netlist.add_gate t Gk.Inv [| a |] in
  let c1 = Netlist.add_gate t Gk.Inv [| g |] in
  let c2 = Netlist.add_gate t Gk.Inv [| g |] in
  Netlist.set_output t c1 ~load:1.;
  Netlist.set_output t c2 ~load:1.;
  let _b1, b2 = Transform.insert_buffer_for t ~after:g ~only:[ c2 ] in
  check_valid t;
  Alcotest.(check bool) "c1 still reads g" true
    ((Netlist.node t c1).Netlist.fanins.(0) = g);
  Alcotest.(check bool) "c2 reads buffer" true
    ((Netlist.node t c2).Netlist.fanins.(0) = b2)

let test_de_morgan_preserves_logic () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let c = Netlist.add_input t in
  let g = Netlist.add_gate t (Gk.Nor 2) [| a; b |] in
  let h = Netlist.add_gate t (Gk.Nand 2) [| g; c |] in
  Netlist.set_output t h ~load:5.;
  let reference = Netlist.copy t in
  (match Transform.de_morgan t g with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check_valid t;
  (match Logic.equivalent reference t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "de morgan broke logic: %s" m);
  (* the NOR is gone *)
  let kinds = List.map (fun id -> (Netlist.node t id).Netlist.kind) (Netlist.gate_ids t) in
  Alcotest.(check bool) "no NOR left" true
    (not (List.exists (function Netlist.Cell (Gk.Nor _) -> true | _ -> false) kinds))

let test_de_morgan_absorbs_inverter () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let ia = Netlist.add_gate t Gk.Inv [| a |] in
  let g = Netlist.add_gate t (Gk.Nor 2) [| ia; b |] in
  Netlist.set_output t g ~load:5.;
  let reference = Netlist.copy t in
  let before = Netlist.gate_count t in
  (match Transform.de_morgan t g with Ok _ -> () | Error m -> Alcotest.fail m);
  check_valid t;
  (match Logic.equivalent reference t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "absorption broke logic: %s" m);
  (* inverter on pin 0 absorbed: net gate change = -1 (ia) +1 (inv on b)
     +1 (output inv) = +1 *)
  Alcotest.(check int) "gate count" (before + 1) (Netlist.gate_count t)

let test_de_morgan_rejects_inv () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let g = Netlist.add_gate t Gk.Inv [| a |] in
  Netlist.set_output t g ~load:1.;
  match Transform.de_morgan t g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "INV must have no dual"

let test_cleanup_inverter_pairs () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let i1 = Netlist.add_gate t Gk.Inv [| a |] in
  let i2 = Netlist.add_gate t Gk.Inv [| i1 |] in
  let g = Netlist.add_gate t (Gk.Nand 2) [| i2; a |] in
  Netlist.set_output t g ~load:5.;
  let reference = Netlist.copy t in
  let removed = Transform.cleanup_inverter_pairs t in
  check_valid t;
  Alcotest.(check int) "two inverters removed" 2 removed;
  (match Logic.equivalent reference t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "cleanup broke logic: %s" m);
  Alcotest.(check bool) "g reads a directly" true
    ((Netlist.node t g).Netlist.fanins.(0) = a)

(* --- generator --- *)

let profile = Generator.make_profile ~name:"testckt" ~path_gates:20 ()

let test_generator_valid_and_deterministic () =
  let t1, spine1 = Generator.generate tech profile in
  let t2, spine2 = Generator.generate tech profile in
  check_valid t1;
  Alcotest.(check (list int)) "same spine" spine1 spine2;
  Alcotest.(check int) "same gates" (Netlist.gate_count t1) (Netlist.gate_count t2);
  Alcotest.(check int) "spine length" 20 (List.length spine1);
  Alcotest.(check int) "total gates" 60 (Netlist.gate_count t1)

let test_generator_spine_is_depth () =
  let t, spine = Generator.generate tech profile in
  Alcotest.(check int) "depth equals spine length" (List.length spine) (Netlist.depth t)

let test_generator_spine_connected () =
  let t, spine = Generator.generate tech profile in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "chain" true
        (Array.exists (fun f -> f = a) (Netlist.node t b).Netlist.fanins);
      check rest
    | [ _ ] | [] -> ()
  in
  check spine

let test_generator_different_names_differ () =
  let p2 = Generator.make_profile ~name:"otherckt" ~path_gates:20 () in
  let t1, _ = Generator.generate tech profile in
  let t2, _ = Generator.generate tech p2 in
  (* same sizes but different structure: compare kind histograms *)
  let h1 = Netlist.kind_histogram t1 and h2 = Netlist.kind_histogram t2 in
  Alcotest.(check bool) "structures differ" true (h1 <> h2 || Netlist.depth t1 <> Netlist.depth t2
    || (let s1 = List.map (fun id -> (Netlist.node t1 id).Netlist.fanins) (Netlist.gate_ids t1) in
        let s2 = List.map (fun id -> (Netlist.node t2 id).Netlist.fanins) (Netlist.gate_ids t2) in
        s1 <> s2))

let prop_generator_valid =
  QCheck.Test.make ~name:"generated circuits validate" ~count:20
    QCheck.(pair (int_range 3 40) (int_range 0 3))
    (fun (path_gates, salt) ->
      let p =
        Generator.make_profile
          ~name:(Printf.sprintf "rnd%d_%d" path_gates salt)
          ~path_gates ()
      in
      let t, spine = Generator.generate tech p in
      Netlist.validate t = Ok ()
      && List.length spine = path_gates
      && Netlist.depth t = path_gates)

let prop_buffer_any_node_keeps_logic =
  let t0 = Builder.c17 tech in
  let ids = Array.of_list (Pops_netlist.Netlist.gate_ids t0) in
  QCheck.Test.make ~name:"buffering any c17 node keeps logic" ~count:30
    QCheck.(int_range 0 (Array.length ids - 1))
    (fun i ->
      let u = Netlist.copy t0 in
      let _ = Transform.insert_buffer u ~after:ids.(i) in
      Netlist.validate u = Ok () && Logic.equivalent t0 u = Ok ())

let prop_de_morgan_random_netlists =
  (* generate a random circuit, rewrite every NOR, check equivalence on
     random vectors *)
  QCheck.Test.make ~name:"De Morgan on generated circuits keeps logic" ~count:10
    QCheck.(int_range 5 15)
    (fun path_gates ->
      let p =
        Generator.make_profile ~name:(Printf.sprintf "dm%d" path_gates) ~path_gates ()
      in
      let t, _ = Generator.generate tech p in
      let reference = Netlist.copy t in
      let nors =
        List.filter
          (fun id ->
            match (Netlist.node t id).Netlist.kind with
            | Netlist.Cell (Gk.Nor _) -> true
            | _ -> false)
          (Netlist.gate_ids t)
      in
      List.iter (fun id -> match Transform.de_morgan t id with Ok _ -> () | Error m -> failwith m) nors;
      Netlist.validate t = Ok () && Logic.equivalent ~vectors:256 reference t = Ok ())

(* --- bench format I/O --- *)

module Bench_io = Pops_netlist.Bench_io

let c17_bench_text = {|
# ISCAS c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
|}

let parse_ok text =
  match Bench_io.parse tech text with
  | Ok r -> r
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_bench_parse_c17 () =
  let t, names = parse_ok c17_bench_text in
  Alcotest.(check int) "5 inputs" 5 (Netlist.input_count t);
  Alcotest.(check int) "6 gates" 6 (Netlist.gate_count t);
  Alcotest.(check int) "2 outputs" 2 (List.length (Netlist.outputs t));
  Alcotest.(check bool) "names cover signals" true (List.length names = 11);
  (* identical function to the embedded builder version *)
  match Logic.equivalent (Builder.c17 tech) t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "not c17: %s" m

let test_bench_and_or_expansion () =
  let t, _ =
    parse_ok "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
  in
  (* AND = NAND + NOT *)
  Alcotest.(check int) "two gates" 2 (Netlist.gate_count t);
  let v = Logic.eval t [| true; true |] in
  Alcotest.(check bool) "1*1" true (List.assoc (fst (List.hd (Netlist.outputs t))) v);
  let v = Logic.eval t [| true; false |] in
  Alcotest.(check bool) "1*0" false (snd (List.hd v))

let test_bench_wide_gate_decomposition () =
  let t, _ =
    parse_ok
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\n\
       y = NAND(a, b, c, d, e, f)\n"
  in
  Alcotest.(check bool) "decomposed into several gates" true (Netlist.gate_count t > 1);
  (* truth: NAND6 = false only when all six are true *)
  for pat = 0 to 63 do
    let v = Array.init 6 (fun i -> pat land (1 lsl i) <> 0) in
    let expected = not (Array.for_all Fun.id v) in
    let got = snd (List.hd (Logic.eval t v)) in
    Alcotest.(check bool) (Printf.sprintf "pattern %d" pat) expected got
  done

let test_bench_dff_split () =
  let t, _ =
    parse_ok "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(a)\n"
  in
  (* q becomes a pseudo input, d a pseudo output *)
  Alcotest.(check int) "two inputs (a and q)" 2 (Netlist.input_count t);
  Alcotest.(check bool) "d is an output" true (List.length (Netlist.outputs t) >= 1)

let test_bench_sizing_annotations_roundtrip () =
  let t, names = parse_ok "INPUT(a)\nOUTPUT(y)\ny = NOT(a) # cin=7.500 wire=1.250\n" in
  let y = List.assoc "y" names in
  Alcotest.(check bool) "cin parsed" true
    (Float.abs ((Netlist.node t y).Netlist.cin -. 7.5) < 1e-9);
  Alcotest.(check bool) "wire parsed" true
    (Float.abs ((Netlist.node t y).Netlist.wire -. 1.25) < 1e-9);
  let printed = Bench_io.to_string ~names t in
  let t2, names2 = parse_ok printed in
  let y2 = List.assoc "y" names2 in
  Alcotest.(check bool) "cin survives round trip" true
    (Float.abs ((Netlist.node t2 y2).Netlist.cin -. 7.5) < 1e-9)

let test_bench_roundtrip_generated () =
  let t, _ =
    Generator.generate tech (Generator.make_profile ~name:"io22" ~path_gates:22 ())
  in
  let printed = Bench_io.to_string t in
  let t2, _ = parse_ok printed in
  Alcotest.(check int) "same gate count" (Netlist.gate_count t) (Netlist.gate_count t2);
  match Logic.equivalent ~vectors:256 t t2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "round trip broke logic: %s" m

let test_bench_roundtrip_adder () =
  let t = Builder.ripple_carry_adder tech ~bits:4 ~out_load:10. in
  let printed = Bench_io.to_string t in
  let t2, _ = parse_ok printed in
  match Logic.equivalent t t2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "adder round trip: %s" m

let test_bench_errors () =
  let err text =
    match Bench_io.parse tech text with
    | Error m -> m
    | Ok _ -> Alcotest.failf "expected error for %S" text
  in
  Alcotest.(check bool) "undefined signal" true
    (String.length (err "INPUT(a)\nOUTPUT(y)\ny = NOT(zzz)\n") > 0);
  Alcotest.(check bool) "double definition" true
    (String.length (err "INPUT(a)\ny = NOT(a)\ny = NOT(a)\nOUTPUT(y)\n") > 0);
  Alcotest.(check bool) "bad op" true
    (String.length (err "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n") > 0);
  Alcotest.(check bool) "undefined output" true
    (String.length (err "INPUT(a)\nOUTPUT(nope)\n") > 0);
  Alcotest.(check bool) "combinational cycle" true
    (String.length (err "a = NOT(b)\nb = NOT(a)\nOUTPUT(a)\n") > 0);
  Alcotest.(check bool) "unbalanced parenthesis" true
    (String.length (err "INPUT(a)\ny = NOT(a\nOUTPUT(y)\n") > 0);
  Alcotest.(check bool) "empty right-hand side" true
    (String.length (err "INPUT(a)\ny = \nOUTPUT(y)\n") > 0);
  Alcotest.(check bool) "zero-argument gate" true
    (String.length (err "INPUT(a)\ny = NOT()\nOUTPUT(y)\n") > 0)

let test_eval_packed_matches_scalar () =
  let t, _ =
    Generator.generate tech (Generator.make_profile ~name:"packed" ~path_gates:15 ())
  in
  let n_in = Netlist.input_count t in
  let rng = Pops_util.Rng.create 5L in
  let words = Array.init n_in (fun _ -> Pops_util.Rng.int64 rng) in
  let packed = Logic.eval_packed t words in
  for j = 0 to 63 do
    let v =
      Array.init n_in (fun i ->
          Int64.logand (Int64.shift_right_logical words.(i) j) 1L = 1L)
    in
    let scalar = Logic.eval t v in
    List.iter2
      (fun (id1, w) (id2, b) ->
        assert (id1 = id2);
        let bit = Int64.logand (Int64.shift_right_logical w j) 1L = 1L in
        if bit <> b then Alcotest.failf "lane %d node %d disagrees" j id1)
      packed scalar
  done

let test_bench_aoi22_roundtrip () =
  let t, _ =
    parse_ok "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = AOI22(a, b, c, d)\n"
  in
  Alcotest.(check int) "one gate" 1 (Netlist.gate_count t);
  let t2, _ = parse_ok (Bench_io.to_string t) in
  match Logic.equivalent t t2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "aoi22 roundtrip: %s" m

let test_bench_out_of_order_definitions () =
  (* uses-before-defines must resolve *)
  let t, _ =
    parse_ok "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = NOT(a)\n"
  in
  Alcotest.(check int) "two gates" 2 (Netlist.gate_count t)

(* --- logic cones --- *)

(* a, b, c, d; g1 = NAND(a,b); g2 = NOR(c,d); g3 = NAND(g1,g2); i1 = NOT(g1) *)
let cone_fixture () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let b = Netlist.add_input t in
  let c = Netlist.add_input t in
  let d = Netlist.add_input t in
  let g1 = Netlist.add_gate t (Gk.Nand 2) [| a; b |] in
  let g2 = Netlist.add_gate t (Gk.Nor 2) [| c; d |] in
  let g3 = Netlist.add_gate t (Gk.Nand 2) [| g1; g2 |] in
  let i1 = Netlist.add_gate t Gk.Inv [| g1 |] in
  Netlist.set_output t g3 ~load:10.;
  Netlist.set_output t i1 ~load:10.;
  (t, (a, b, c, d), (g1, g2, g3, i1))

let test_cone_support () =
  let t, (a, b, c, d), (g1, _, g3, i1) = cone_fixture () in
  Alcotest.(check (list int)) "support of g3" [ a; b; c; d ] (Logic.cone_support t g3);
  Alcotest.(check (list int)) "support of i1" [ a; b ] (Logic.cone_support t i1);
  Alcotest.(check (list int)) "support of g1" [ a; b ] (Logic.cone_support t g1);
  Alcotest.(check (list int)) "support of an input" [ a ] (Logic.cone_support t a)

let test_cone_function_table () =
  let t, _, (g1, _, _, i1) = cone_fixture () in
  (* NAND2 truth table over (a, b): 1 1 1 0 -> bits 0111 *)
  let _, table = Logic.cone_function t g1 in
  Alcotest.(check int) "one word" 1 (Array.length table);
  Alcotest.(check bool) "nand2 table" true (table.(0) = 7L);
  (* the inverter of g1 is AND: 0 0 0 1 *)
  let _, table = Logic.cone_function t i1 in
  Alcotest.(check bool) "and2 table" true (table.(0) = 8L)

let test_cone_limit_enforced () =
  (* a 17-input NAND chain exceeds cone_limit = 16 *)
  let t = Netlist.create tech in
  let first = Netlist.add_input t in
  let g = ref first in
  for _ = 1 to Logic.cone_limit do
    let i = Netlist.add_input t in
    g := Netlist.add_gate t (Gk.Nand 2) [| !g; i |]
  done;
  Netlist.set_output t !g ~load:10.;
  Alcotest.(check int) "support size" (Logic.cone_limit + 1)
    (List.length (Logic.cone_support t !g));
  (match Logic.cone_function t !g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cone_function accepted an oversized support");
  match Logic.cone_equivalent t !g (Netlist.copy t) !g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cone_equivalent accepted an oversized union support"

let test_cone_equivalent_cross_netlist () =
  (* y = XOR(a,b) against its four-NAND decomposition, built separately *)
  let t1 = Netlist.create tech in
  let a = Netlist.add_input t1 in
  let b = Netlist.add_input t1 in
  let y1 = Netlist.add_gate t1 Gk.Xor2 [| a; b |] in
  Netlist.set_output t1 y1 ~load:10.;
  let t2 = Netlist.create tech in
  let a' = Netlist.add_input t2 in
  let b' = Netlist.add_input t2 in
  let n1 = Netlist.add_gate t2 (Gk.Nand 2) [| a'; b' |] in
  let n2 = Netlist.add_gate t2 (Gk.Nand 2) [| a'; n1 |] in
  let n3 = Netlist.add_gate t2 (Gk.Nand 2) [| b'; n1 |] in
  let y2 = Netlist.add_gate t2 (Gk.Nand 2) [| n2; n3 |] in
  Netlist.set_output t2 y2 ~load:10.;
  (match Logic.cone_equivalent t1 y1 t2 y2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "xor vs nand-xor: %s" m);
  (* and the same decomposition with one gate wrong is caught *)
  (match Logic.cone_equivalent t1 y1 t2 n1 with
  | Error m ->
    Alcotest.(check bool) "error names an assignment" true
      (String.length m > 0)
  | Ok () -> Alcotest.fail "xor declared equivalent to nand")

let test_de_morgan_preserves_cone () =
  let t, _, (_, g2, _, _) = cone_fixture () in
  let b = Netlist.copy t in
  match Transform.de_morgan b g2 with
  | Error m -> Alcotest.failf "de_morgan on nor2: %s" m
  | Ok inv_id -> (
    match Logic.cone_equivalent t g2 b inv_id with
    | Ok () -> ()
    | Error m -> Alcotest.failf "de_morgan cone mismatch: %s" m)

let prop_bench_roundtrip_fuzz =
  QCheck.Test.make ~name:"bench roundtrip on random circuits" ~count:8
    QCheck.(int_range 5 30)
    (fun path_gates ->
      let t, _ =
        Generator.generate tech
          (Generator.make_profile ~name:(Printf.sprintf "fz%d" path_gates)
             ~path_gates ())
      in
      match Bench_io.parse tech (Bench_io.to_string t) with
      | Error _ -> false
      | Ok (t2, _) ->
        Netlist.validate t2 = Ok () && Logic.equivalent ~vectors:192 t t2 = Ok ())

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_netlist"
    [
      ( "graph",
        [
          Alcotest.test_case "build and query" `Quick test_build_and_query;
          Alcotest.test_case "arity checked" `Quick test_arity_checked;
          Alcotest.test_case "unknown fanin" `Quick test_unknown_fanin;
          Alcotest.test_case "set_fanin syncs fanouts" `Quick test_set_fanin_updates_fanouts;
          Alcotest.test_case "delete guards" `Quick test_delete_guards;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
        ] );
      ( "logic",
        [
          Alcotest.test_case "c17 truth table" `Quick test_c17_truth;
          Alcotest.test_case "adder matches reference" `Quick test_adder_matches_reference;
          Alcotest.test_case "self equivalence" `Quick test_equivalent_self;
          Alcotest.test_case "detects difference" `Quick test_equivalent_detects_difference;
          Alcotest.test_case "signal probability" `Quick test_signal_probability;
          Alcotest.test_case "cone support" `Quick test_cone_support;
          Alcotest.test_case "cone function table" `Quick test_cone_function_table;
          Alcotest.test_case "cone limit enforced" `Quick test_cone_limit_enforced;
          Alcotest.test_case "cone equivalence across netlists" `Quick
            test_cone_equivalent_cross_netlist;
          Alcotest.test_case "de morgan preserves cone" `Quick test_de_morgan_preserves_cone;
        ] );
      ( "transform",
        [
          Alcotest.test_case "buffer preserves logic" `Quick test_buffer_preserves_logic;
          Alcotest.test_case "buffer moves output" `Quick test_buffer_moves_output_designation;
          Alcotest.test_case "buffer subset" `Quick test_buffer_for_subset;
          Alcotest.test_case "de morgan preserves logic" `Quick test_de_morgan_preserves_logic;
          Alcotest.test_case "de morgan absorbs inverter" `Quick test_de_morgan_absorbs_inverter;
          Alcotest.test_case "de morgan rejects inv" `Quick test_de_morgan_rejects_inv;
          Alcotest.test_case "cleanup inverter pairs" `Quick test_cleanup_inverter_pairs;
          qtest prop_buffer_any_node_keeps_logic;
          qtest prop_de_morgan_random_netlists;
        ] );
      ( "generator",
        [
          Alcotest.test_case "valid and deterministic" `Quick test_generator_valid_and_deterministic;
          Alcotest.test_case "spine is depth" `Quick test_generator_spine_is_depth;
          Alcotest.test_case "spine connected" `Quick test_generator_spine_connected;
          Alcotest.test_case "different names differ" `Quick test_generator_different_names_differ;
          qtest prop_generator_valid;
        ] );
      ( "bench_io",
        [
          Alcotest.test_case "parse c17" `Quick test_bench_parse_c17;
          Alcotest.test_case "and/or expansion" `Quick test_bench_and_or_expansion;
          Alcotest.test_case "wide gate decomposition" `Quick test_bench_wide_gate_decomposition;
          Alcotest.test_case "dff split" `Quick test_bench_dff_split;
          Alcotest.test_case "sizing annotations" `Quick test_bench_sizing_annotations_roundtrip;
          Alcotest.test_case "roundtrip generated" `Quick test_bench_roundtrip_generated;
          Alcotest.test_case "roundtrip adder" `Quick test_bench_roundtrip_adder;
          Alcotest.test_case "errors" `Quick test_bench_errors;
          Alcotest.test_case "out-of-order defs" `Quick test_bench_out_of_order_definitions;
          Alcotest.test_case "packed matches scalar" `Quick test_eval_packed_matches_scalar;
          Alcotest.test_case "aoi22 roundtrip" `Quick test_bench_aoi22_roundtrip;
          qtest prop_bench_roundtrip_fuzz;
        ] );
    ]
