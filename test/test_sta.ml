(* Tests for Pops_sta: arrival propagation, path extraction/selection,
   netlist power — plus the circuits and AMPS-baseline layers. *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Path = Pops_delay.Path
module Netlist = Pops_netlist.Netlist
module Builder = Pops_netlist.Builder
module Generator = Pops_netlist.Generator
module Timing = Pops_sta.Timing
module Paths = Pops_sta.Paths
module Power = Pops_sta.Power
module Profiles = Pops_circuits.Profiles
module Bounds = Pops_core.Bounds
module Sens = Pops_core.Sensitivity

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let tech = Tech.cmos025
let lib = Library.make tech

(* --- timing --- *)

let chain4 =
  let t = Builder.inverter_chain tech ~n:4 ~out_load:30. in
  t

let test_arrival_monotone_along_chain () =
  let timing = Timing.analyze ~lib chain4 in
  let gates = Netlist.gate_ids chain4 in
  let arrivals = List.map (fun id -> snd (Timing.node_worst timing id)) gates in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "monotone" true (b.Timing.time > a.Timing.time);
      check rest
    | [ _ ] | [] -> ()
  in
  check arrivals

let test_critical_delay_positive () =
  let timing = Timing.analyze ~lib chain4 in
  Alcotest.(check bool) "positive" true (Timing.critical_delay timing > 0.)

let test_critical_path_structure () =
  let timing = Timing.analyze ~lib chain4 in
  let path = Timing.critical_path timing in
  (* PI + 4 inverters *)
  Alcotest.(check int) "full chain" 5 (List.length path);
  let rec connected = function
    | a :: (b :: _ as rest) ->
      Array.exists (fun f -> f = a) (Netlist.node chain4 b).Netlist.fanins
      && connected rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "connected" true (connected path)

let test_arrival_edges_alternate () =
  let timing = Timing.analyze ~lib chain4 in
  let gates = Array.of_list (Netlist.gate_ids chain4) in
  (* an inverter's rising arrival comes from its fanin's falling edge *)
  let a = Timing.arrival timing gates.(1) Edge.Rising in
  match a.Timing.from_ with
  | Some (src, e) ->
    Alcotest.(check bool) "from previous gate" true (src = gates.(0));
    Alcotest.(check bool) "from falling" true (Edge.equal e Edge.Falling)
  | None -> Alcotest.fail "no provenance"

let test_upsizing_driver_reduces_delay () =
  let t = Builder.inverter_chain tech ~n:3 ~out_load:100. in
  let d0 = Timing.critical_delay (Timing.analyze ~lib t) in
  let last = List.nth (Netlist.gate_ids t) 2 in
  Netlist.set_cin t last (8. *. tech.Tech.cmin);
  let d1 = Timing.critical_delay (Timing.analyze ~lib t) in
  Alcotest.(check bool) "upsizing output driver helps" true (d1 < d0)

let test_slack () =
  let timing = Timing.analyze ~lib chain4 in
  let d = Timing.critical_delay timing in
  let last = List.nth (Netlist.gate_ids chain4) 3 in
  let s = Timing.slack timing ~tc:(d +. 100.) last in
  Alcotest.(check bool) "slack = margin" true (Float.abs (s -. 100.) < 1e-6)

(* --- path extraction --- *)

(* fresh instance per test: several tests mutate the netlist *)
let gen20 () =
  Generator.generate tech (Generator.make_profile ~name:"sta20" ~path_gates:20 ())

let test_extract_critical () =
  let t, spine = gen20 () in
  let ex = Paths.extract ~lib t spine in
  Alcotest.(check int) "stage per spine gate" (List.length spine) (Path.length ex.Paths.path);
  (* terminal load positive, branches non-negative *)
  Alcotest.(check bool) "c_out positive" true (ex.Paths.path.Path.c_out > 0.);
  Array.iter
    (fun (st : Path.stage) ->
      Alcotest.(check bool) "branch >= 0" true (st.Path.branch >= 0.))
    ex.Paths.path.Path.stages

let test_extract_branches_match_netlist () =
  let t, spine = gen20 () in
  let ex = Paths.extract ~lib t spine in
  (* for each interior spine node: branch + next cin = total load *)
  let arr = Array.of_list spine in
  Array.iteri
    (fun i (st : Path.stage) ->
      if i < Array.length arr - 1 then begin
        let total = Netlist.load_on t arr.(i) in
        let next_cin = (Netlist.node t arr.(i + 1)).Netlist.cin in
        Alcotest.(check bool)
          (Printf.sprintf "stage %d load decomposition" i)
          true
          (Float.abs (st.Path.branch +. next_cin -. total) < 1e-9)
      end)
    ex.Paths.path.Path.stages

let test_extract_rejects_disconnected () =
  let t, spine = gen20 () in
  match spine with
  | a :: _ :: c :: _ -> (
    match Paths.extract ~lib t [ a; c ] with
    | exception Invalid_argument _ -> ()
    | _ ->
      (* a might legitimately drive c through a side pin; only fail when
         extraction succeeded AND they are not connected *)
      let nc = Netlist.node t c in
      Alcotest.(check bool) "connected after all" true
        (Array.exists (fun f -> f = a) nc.Netlist.fanins))
  | _ -> Alcotest.fail "spine too short"

let test_critical_equals_spine () =
  (* the generator guarantees the spine is the deepest chain; STA's
     critical path must be at least as slow as the extracted spine *)
  let t, spine = gen20 () in
  let crit = Paths.critical ~lib t in
  let spine_ex = Paths.extract ~lib t spine in
  let delay_of ex =
    let x = Array.of_list (List.map (fun id -> (Netlist.node t id).Netlist.cin) ex.Paths.nodes) in
    Path.delay_worst ex.Paths.path x
  in
  Alcotest.(check bool) "critical >= spine delay" true
    (delay_of crit >= delay_of spine_ex -. 1.)

let test_k_worst_sorted_distinct () =
  let t, _ = gen20 () in
  let paths = Paths.k_worst ~k:4 ~lib t in
  Alcotest.(check bool) "got some paths" true (List.length paths >= 2);
  let delays =
    List.map
      (fun ex ->
        let x =
          Array.of_list (List.map (fun id -> (Netlist.node t id).Netlist.cin) ex.Paths.nodes)
        in
        Path.delay_worst ex.Paths.path x)
      paths
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "descending" true (sorted delays);
  let keys = List.map (fun ex -> ex.Paths.nodes) paths in
  Alcotest.(check int) "distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_apply_sizing_roundtrip () =
  let t, spine = gen20 () in
  let ex = Paths.extract ~lib t spine in
  let n = List.length ex.Paths.nodes in
  let sizing = Array.init n (fun i -> 5. +. float_of_int i) in
  Paths.apply_sizing t ex.Paths.nodes sizing;
  List.iteri
    (fun i id ->
      Alcotest.(check bool) "written" true
        (Float.abs ((Netlist.node t id).Netlist.cin -. sizing.(i)) < 1e-12))
    ex.Paths.nodes

(* --- sizing a real extracted path end to end --- *)

let test_optimize_extracted_path_improves_sta () =
  let t, spine = gen20 () in
  let d_before = Timing.critical_delay (Timing.analyze ~lib t) in
  let ex = Paths.extract ~lib t spine in
  let b = Bounds.compute ex.Paths.path in
  Paths.apply_sizing t ex.Paths.nodes b.Bounds.sizing_tmin;
  let d_after = Timing.critical_delay (Timing.analyze ~lib t) in
  Alcotest.(check bool)
    (Printf.sprintf "STA sees the improvement: %.1f -> %.1f" d_before d_after)
    true (d_after < d_before)

let test_c17_reconvergence () =
  (* c17 has reconvergent fan-out through n11/n16: STA must still order
     arrivals and find a 3-gate-deep critical path *)
  let t = Builder.c17 tech in
  let timing = Timing.analyze ~lib t in
  Alcotest.(check bool) "positive" true (Timing.critical_delay timing > 0.);
  let path = Timing.critical_path timing in
  (* PI + 3 gate levels *)
  Alcotest.(check int) "depth 3 critical path" 4 (List.length path)

let test_k_worst_on_c17 () =
  let t = Builder.c17 tech in
  let paths = Paths.k_worst ~k:6 ~lib t in
  Alcotest.(check bool) "several distinct paths" true (List.length paths >= 3);
  List.iter
    (fun ex ->
      Alcotest.(check bool) "each path nonempty" true (ex.Paths.nodes <> []))
    paths

let test_input_slope_propagates () =
  (* a slower primary-input edge slows the whole chain *)
  let t = Builder.inverter_chain tech ~n:3 ~out_load:40. in
  let d_fast = Timing.critical_delay (Timing.analyze ~input_slope:20. ~lib t) in
  let d_slow = Timing.critical_delay (Timing.analyze ~input_slope:400. ~lib t) in
  Alcotest.(check bool) "slope slows" true (d_slow > d_fast)

let test_min_clock_period () =
  let text =
    "INPUT(a)\nOUTPUT(q2)\nq1 = DFF(d1)\nq2 = DFF(d2)\n\
     d1 = NAND(a, q1)\nd2 = NOR(q1, a)\n"
  in
  match Pops_netlist.Bench_io.parse tech text with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok (t, _) ->
    let timing = Timing.analyze ~lib t in
    let period = Timing.min_clock_period timing in
    Alcotest.(check bool) "period > critical delay" true
      (period > Timing.critical_delay timing);
    Alcotest.(check bool) "setup honored" true
      (Float.abs (Timing.min_clock_period ~setup:100. timing
                  -. (Timing.critical_delay timing +. 100.)) < 1e-9)

(* --- report --- *)

module Report = Pops_sta.Report

let test_report_breakdown_consistent () =
  let t = Builder.inverter_chain tech ~n:4 ~out_load:30. in
  let timing = Timing.analyze ~lib t in
  let crit = Timing.critical_path timing in
  let lines = Report.path_breakdown ~lib t timing crit in
  Alcotest.(check int) "line per node" (List.length crit) (List.length lines);
  (* increments sum to the endpoint arrival *)
  let total = List.fold_left (fun acc l -> acc +. l.Report.incr) 0. lines in
  let last = List.nth lines (List.length lines - 1) in
  Alcotest.(check bool) "increments sum to arrival" true
    (Float.abs (total -. last.Report.arrival) < 1e-6);
  Alcotest.(check bool) "matches critical delay" true
    (Float.abs (last.Report.arrival -. Timing.critical_delay timing) < 1e-6)

let test_report_renders () =
  let t = Builder.c17 tech in
  let s = Report.full ~lib ~tc:500. t in
  Alcotest.(check bool) "has endpoint table" true
    (String.length s > 100);
  (* the slack column appears when tc is given *)
  let has_slack =
    let needle = "slack" in
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "slack column" true has_slack

let test_k1_matches_critical () =
  let t, _ = gen20 () in
  let k1 = Paths.k_worst ~k:1 ~lib t in
  let crit = Paths.critical ~lib t in
  (match k1 with
  | [ ex ] ->
    Alcotest.(check (list int)) "k=1 equals the critical path" crit.Paths.nodes ex.Paths.nodes
  | other -> Alcotest.failf "expected exactly one path, got %d" (List.length other))

(* --- power --- *)

let test_power_report () =
  let t, _ = gen20 () in
  let r = Power.analyze ~lib t in
  Alcotest.(check bool) "positive power" true (r.Power.dynamic_uw > 0.);
  Alcotest.(check bool) "area matches netlist" true
    (Float.abs (r.Power.area -. Netlist.total_area t lib) < 1e-9);
  Alcotest.(check bool) "per node count" true
    (List.length r.Power.per_node = Netlist.gate_count t + Netlist.input_count t)

let test_power_grows_with_sizing () =
  let t, spine = gen20 () in
  let p0 = (Power.analyze ~lib t).Power.dynamic_uw in
  List.iter (fun id -> Netlist.set_cin t id (10. *. tech.Tech.cmin)) spine;
  let p1 = (Power.analyze ~lib t).Power.dynamic_uw in
  Alcotest.(check bool) "more width, more power" true (p1 > p0)

(* --- circuits --- *)

let test_profiles_complete () =
  Alcotest.(check int) "11 benchmarks" 11 (List.length Profiles.all);
  List.iter
    (fun (p : Profiles.t) ->
      Alcotest.(check bool) (p.Profiles.name ^ " cpu ratio") true
        (p.Profiles.paper_cpu_amps_ms > 10. *. p.Profiles.paper_cpu_pops_ms))
    Profiles.all

let test_profiles_materialize () =
  let p = Option.get (Profiles.find "c880") in
  let t, spine = Profiles.circuit tech p in
  Alcotest.(check int) "spine = paper gate count" p.Profiles.path_gates
    (List.length spine);
  Alcotest.(check bool) "valid" true (Netlist.validate t = Ok ())

let test_table4_subset () =
  List.iter
    (fun (p : Profiles.t) ->
      Alcotest.(check bool) "in all" true (Profiles.find p.Profiles.name <> None))
    Profiles.table4_suite;
  Alcotest.(check int) "4 circuits" 4 (List.length Profiles.table4_suite)

(* --- integration: the protocol on a real extracted benchmark path --- *)

let test_protocol_on_extracted_circuit_all_domains () =
  let p = Option.get (Profiles.find "c432") in
  let nl, spine = Profiles.circuit tech p in
  let path = (Paths.extract ~lib nl spine).Paths.path in
  let b = Bounds.compute path in
  List.iter
    (fun domain ->
      let tc = Pops_core.Domains.representative_tc ~tmin:b.Bounds.tmin domain in
      let r = Pops_core.Protocol.run ~lib ~tc path in
      Alcotest.(check bool)
        (Printf.sprintf "domain %s met (tc=%.0f, got %.0f)"
           (Pops_core.Domains.to_string domain) tc r.Pops_core.Protocol.delay)
        true r.Pops_core.Protocol.met)
    [ Pops_core.Domains.Weak; Pops_core.Domains.Medium; Pops_core.Domains.Hard ]

(* --- amps baseline --- *)

let small_path =
  let t, spine = Generator.generate tech (Generator.make_profile ~name:"amps12" ~path_gates:12 ()) in
  (Paths.extract ~lib t spine).Paths.path

let test_tilos_meets_constraint () =
  let b = Bounds.compute small_path in
  let tc = 1.5 *. b.Bounds.tmin in
  let r = Pops_amps.Tilos.size_for_constraint small_path ~tc in
  Alcotest.(check bool) "met" true r.Pops_amps.Tilos.met;
  Alcotest.(check bool) "delay <= tc" true (r.Pops_amps.Tilos.delay <= tc +. 0.1)

let test_tilos_never_beats_tmin () =
  let b = Bounds.compute small_path in
  let r = Pops_amps.Tilos.size_for_constraint small_path ~tc:(0.5 *. b.Bounds.tmin) in
  Alcotest.(check bool) "cannot meet sub-Tmin" false r.Pops_amps.Tilos.met;
  (* Bounds.tmin is evaluated on a small polarity-weight grid, so a
     direct worst-delay greedy may undercut it by a sliver — never by
     more than ~1% *)
  Alcotest.(check bool) "delay >= 0.99 tmin" true
    (r.Pops_amps.Tilos.delay >= 0.99 *. b.Bounds.tmin)

let test_random_search_near_tmin () =
  let b = Bounds.compute small_path in
  let r = Pops_amps.Random_search.minimum_delay small_path in
  Alcotest.(check bool)
    (Printf.sprintf "pseudo-random Tmin %.1f >= deterministic %.1f" r.Pops_amps.Random_search.delay
       b.Bounds.tmin)
    true
    (r.Pops_amps.Random_search.delay >= b.Bounds.tmin -. 0.5);
  Alcotest.(check bool) "within 30% of optimum" true
    (r.Pops_amps.Random_search.delay <= 1.3 *. b.Bounds.tmin)

let test_random_search_deterministic () =
  let r1 = Pops_amps.Random_search.minimum_delay ~restarts:2 ~steps:50 small_path in
  let r2 = Pops_amps.Random_search.minimum_delay ~restarts:2 ~steps:50 small_path in
  Alcotest.(check bool) "same result same seed" true
    (r1.Pops_amps.Random_search.delay = r2.Pops_amps.Random_search.delay)

let test_amps_facade () =
  let b = Bounds.compute small_path in
  let r = Pops_amps.Amps.size_for_constraint small_path ~tc:(1.3 *. b.Bounds.tmin) in
  Alcotest.(check bool) "facade met" true r.Pops_amps.Amps.met;
  Alcotest.(check bool) "evaluations counted" true (r.Pops_amps.Amps.evaluations > 0)

let prop_pops_beats_or_ties_amps_area =
  (* Fig. 4's claim on random circuits: at 1.2 Tmin the deterministic
     distribution never needs more area than the iterative baseline
     (beyond numerical noise). *)
  QCheck.Test.make ~name:"POPS area <= AMPS area at 1.2 Tmin" ~count:8
    QCheck.(int_range 8 20)
    (fun path_gates ->
      let t, spine =
        Generator.generate tech
          (Generator.make_profile ~name:(Printf.sprintf "cmp%d" path_gates) ~path_gates ())
      in
      let path = (Paths.extract ~lib t spine).Paths.path in
      let b = Bounds.compute path in
      let tc = 1.2 *. b.Bounds.tmin in
      match Sens.size_for_constraint path ~tc with
      | Ok r ->
        let amps = Pops_amps.Amps.size_for_constraint path ~tc in
        (not amps.Pops_amps.Amps.met)
        || r.Sens.area <= amps.Pops_amps.Amps.area *. 1.02
      | Error _ -> false)

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_sta"
    [
      ( "timing",
        [
          Alcotest.test_case "arrival monotone" `Quick test_arrival_monotone_along_chain;
          Alcotest.test_case "critical delay positive" `Quick test_critical_delay_positive;
          Alcotest.test_case "critical path structure" `Quick test_critical_path_structure;
          Alcotest.test_case "edges alternate" `Quick test_arrival_edges_alternate;
          Alcotest.test_case "upsizing driver helps" `Quick test_upsizing_driver_reduces_delay;
          Alcotest.test_case "slack" `Quick test_slack;
        ] );
      ( "paths",
        [
          Alcotest.test_case "extract critical" `Quick test_extract_critical;
          Alcotest.test_case "branch decomposition" `Quick test_extract_branches_match_netlist;
          Alcotest.test_case "rejects disconnected" `Quick test_extract_rejects_disconnected;
          Alcotest.test_case "critical >= spine" `Quick test_critical_equals_spine;
          Alcotest.test_case "k worst sorted+distinct" `Quick test_k_worst_sorted_distinct;
          Alcotest.test_case "apply sizing roundtrip" `Quick test_apply_sizing_roundtrip;
          Alcotest.test_case "optimized path improves STA" `Quick test_optimize_extracted_path_improves_sta;
          Alcotest.test_case "c17 reconvergence" `Quick test_c17_reconvergence;
          Alcotest.test_case "k worst on c17" `Quick test_k_worst_on_c17;
          Alcotest.test_case "input slope propagates" `Quick test_input_slope_propagates;
        ] );
      ( "paths-extra",
        [ Alcotest.test_case "k=1 equals critical" `Quick test_k1_matches_critical ] );
      ( "sequential",
        [ Alcotest.test_case "min clock period" `Quick test_min_clock_period ] );
      ( "report",
        [
          Alcotest.test_case "breakdown consistent" `Quick test_report_breakdown_consistent;
          Alcotest.test_case "renders" `Quick test_report_renders;
        ] );
      ( "power",
        [
          Alcotest.test_case "report" `Quick test_power_report;
          Alcotest.test_case "grows with sizing" `Quick test_power_grows_with_sizing;
        ] );
      ( "circuits",
        [
          Alcotest.test_case "profiles complete" `Quick test_profiles_complete;
          Alcotest.test_case "profiles materialize" `Quick test_profiles_materialize;
          Alcotest.test_case "table4 subset" `Quick test_table4_subset;
        ] );
      ( "integration",
        [
          Alcotest.test_case "protocol on c432, all domains" `Slow
            test_protocol_on_extracted_circuit_all_domains;
        ] );
      ( "amps",
        [
          Alcotest.test_case "tilos meets constraint" `Quick test_tilos_meets_constraint;
          Alcotest.test_case "tilos can't beat tmin" `Quick test_tilos_never_beats_tmin;
          Alcotest.test_case "random search near tmin" `Quick test_random_search_near_tmin;
          Alcotest.test_case "random search deterministic" `Quick test_random_search_deterministic;
          Alcotest.test_case "facade" `Quick test_amps_facade;
          qtest prop_pops_beats_or_ties_amps_area;
        ] );
    ]
