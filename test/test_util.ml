(* Tests for Pops_util: numerics, rng, stats, table. *)

module N = Pops_util.Numerics
module Rng = Pops_util.Rng
module Stats = Pops_util.Stats
module Table = Pops_util.Table

(* deterministic property tests: fixed RNG seed per test *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let check_close ?(eps = 1e-9) msg expected actual =
  if not (N.close ~rtol:eps ~atol:eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- numerics --- *)

let test_bisect_sqrt () =
  let r = N.bisect ~f:(fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. () in
  check_close ~eps:1e-9 "sqrt 2" (sqrt 2.) r

let test_bisect_no_bracket () =
  match N.bisect ~f:(fun x -> (x *. x) +. 1.) ~lo:(-1.) ~hi:1. () with
  | exception N.No_bracket _ -> ()
  | _ -> Alcotest.fail "expected No_bracket"

let test_newton () =
  match N.newton ~f:(fun x -> (x *. x) -. 9.) ~df:(fun x -> 2. *. x) ~x0:1. () with
  | Some r -> check_close ~eps:1e-6 "newton sqrt 9" 3. r
  | None -> Alcotest.fail "newton diverged"

let test_newton_zero_derivative () =
  match N.newton ~f:(fun _ -> 1.) ~df:(fun _ -> 0.) ~x0:1. () with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None on zero derivative"

let test_golden_section () =
  let x, fx = N.golden_section_min ~f:(fun x -> (x -. 3.) ** 2. +. 1.) ~lo:0. ~hi:10. () in
  check_close ~eps:1e-6 "argmin" 3. x;
  check_close ~eps:1e-6 "min" 1. fx

let test_fixed_point () =
  (* x -> cos x converges to the Dottie number. *)
  let step x = [| cos x.(0) |] in
  let x, iters = N.fixed_point ~tol:1e-12 ~step ~distance:N.distance_inf [| 1. |] in
  check_close ~eps:1e-9 "dottie" 0.7390851332151607 x.(0);
  Alcotest.(check bool) "converged in bounded iters" true (iters < 200)

let test_fixed_point_trace () =
  let step x = [| 0.5 *. x.(0) |] in
  let trace = N.fixed_point_trace ~tol:1e-6 ~step ~distance:N.distance_inf [| 1. |] in
  Alcotest.(check bool) "trace has initial point" true (List.length trace > 3);
  (match trace with
  | first :: _ -> check_close "first is x0" 1. first.(0)
  | [] -> Alcotest.fail "empty trace");
  let last = List.nth trace (List.length trace - 1) in
  Alcotest.(check bool) "last is small" true (last.(0) < 1e-5)

let test_gradient_quadratic () =
  let f x = (x.(0) ** 2.) +. (3. *. x.(1) ** 2.) +. (x.(0) *. x.(1)) in
  let g = N.gradient ~f [| 1.; 2. |] in
  check_close ~eps:1e-5 "df/dx0" (2. +. 2.) g.(0);
  check_close ~eps:1e-5 "df/dx1" (12. +. 1.) g.(1)

let test_linspace () =
  let a = N.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length a);
  check_close "first" 0. a.(0);
  check_close "last" 1. a.(4);
  check_close "mid" 0.5 a.(2)

let test_logspace () =
  let a = N.logspace 1. 100. 3 in
  check_close ~eps:1e-9 "geometric middle" 10. a.(1)

let test_clamp () =
  check_close "below" 1. (N.clamp ~lo:1. ~hi:2. 0.);
  check_close "above" 2. (N.clamp ~lo:1. ~hi:2. 3.);
  check_close "inside" 1.5 (N.clamp ~lo:1. ~hi:2. 1.5)

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_of_string_stable () =
  let a = Rng.of_string "c432" and b = Rng.of_string "c432" in
  Alcotest.(check int64) "name-derived stream stable" (Rng.int64 a) (Rng.int64 b);
  let c = Rng.of_string "c499" in
  Alcotest.(check bool) "different names differ" true (Rng.int64 b <> Rng.int64 c)

let test_rng_float_range () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.float r 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (x >= 0. && x < 3.5)
  done

let test_rng_int_range () =
  let r = Rng.create 9L in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    let i = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (i >= 0 && i < 10);
    seen.(i) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_rng_split_independent () =
  let r = Rng.create 1L in
  let r', s = Rng.split r in
  Alcotest.(check bool) "parent returned" true (r == r');
  Alcotest.(check bool) "split streams differ" true (Rng.int64 r <> Rng.int64 s);
  (* the parent stream after a split is the plain stream minus one draw *)
  let a = Rng.create 42L and b = Rng.create 42L in
  let _, _ = Rng.split a in
  let (_ : int64) = Rng.int64 b in
  Alcotest.(check int64) "parent sequence unchanged" (Rng.int64 b) (Rng.int64 a);
  (* children are a pure function of the parent state, not of scheduling *)
  let p1 = Rng.create 7L and p2 = Rng.create 7L in
  let _, c1 = Rng.split p1 in
  let _, c2 = Rng.split p2 in
  Alcotest.(check int64) "split deterministic" (Rng.int64 c1) (Rng.int64 c2)

let test_rng_split_tree_replay () =
  (* a whole tree of splits replays from the root seed alone: the
     property harness (Pops_check) relies on this to re-generate any
     case from its recorded 64-bit seed *)
  let drain rng n = List.init n (fun _ -> Rng.int64 rng) in
  let tree seed =
    let root = Rng.create seed in
    let root, left = Rng.split root in
    let root, right = Rng.split root in
    let left, grandchild = Rng.split left in
    [ drain root 8; drain left 8; drain right 8; drain grandchild 8 ]
  in
  Alcotest.(check bool) "split tree replays" true (tree 0xFEEDL = tree 0xFEEDL);
  Alcotest.(check bool) "different seeds differ" true (tree 0xFEEDL <> tree 0xBEEFL)

let test_rng_split_streams_uncorrelated () =
  (* parent and child streams must not share draws at any aligned index
     over a long window (each coincidence has probability 2^-64) *)
  let parent = Rng.create 0xABCDEFL in
  let _, child = Rng.split parent in
  let collisions = ref 0 in
  for _ = 1 to 1024 do
    if Rng.int64 parent = Rng.int64 child then incr collisions
  done;
  Alcotest.(check int) "no aligned collisions" 0 !collisions;
  (* and a child's child is independent of both *)
  let p = Rng.create 0xABCDEFL in
  let p, c = Rng.split p in
  let _, gc = Rng.split c in
  let collisions = ref 0 in
  for _ = 1 to 1024 do
    let a = Rng.int64 p and b = Rng.int64 c and g = Rng.int64 gc in
    if a = b || b = g || a = g then incr collisions
  done;
  Alcotest.(check int) "three-way independent" 0 !collisions

let test_weighted_pick () =
  let r = Rng.create 3L in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.weighted_pick r [| ("a", 1.); ("b", 9.) |] in
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let b = Option.value ~default:0 (Hashtbl.find_opt counts "b") in
  Alcotest.(check bool) "b dominates ~9:1" true (b > 8500 && b < 9500)

let test_log_range () =
  let r = Rng.create 11L in
  for _ = 1 to 100 do
    let x = Rng.log_range r 1. 100. in
    Alcotest.(check bool) "in range" true (x >= 1. && x < 100.)
  done

(* --- stats --- *)

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_close "mean" 2.5 (Stats.mean xs);
  check_close "median" 2.5 (Stats.median xs);
  check_close "min" 1. (Stats.minimum xs);
  check_close "max" 4. (Stats.maximum xs);
  check_close ~eps:1e-9 "stddev"
    (sqrt ((1.5 ** 2. +. 0.5 ** 2. +. 0.5 ** 2. +. 1.5 ** 2.) /. 3.))
    (Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check_close "p0" 10. (Stats.percentile xs 0.);
  check_close "p100" 50. (Stats.percentile xs 100.);
  check_close "p50" 30. (Stats.percentile xs 50.);
  check_close "p25" 20. (Stats.percentile xs 25.)

let test_stats_empty () =
  check_close "mean empty" 0. (Stats.mean [||]);
  check_close "median empty" 0. (Stats.median [||])

let test_geometric_mean () =
  check_close ~eps:1e-9 "geomean" 4. (Stats.geometric_mean [| 2.; 8. |])

(* --- lru --- *)

module Lru = Pops_util.Lru

let lru_keys t = List.rev (Lru.fold (fun k _ acc -> k :: acc) t [])

let test_lru_eviction_order () =
  let t = Lru.create ~capacity:3 () in
  List.iter (fun k -> Lru.put t k (10 * k)) [ 1; 2; 3 ];
  (* touch 1 so it is most-recent; adding 4 must evict 2 *)
  Alcotest.(check (option int)) "find 1" (Some 10) (Lru.find t 1);
  Lru.put t 4 40;
  Alcotest.(check (option int)) "2 evicted" None (Lru.find t 2);
  Alcotest.(check (option int)) "3 kept" (Some 30) (Lru.find t 3);
  Alcotest.(check (option int)) "1 kept" (Some 10) (Lru.find t 1);
  Alcotest.(check int) "length" 3 (Lru.length t)

let test_lru_counters () =
  let t = Lru.create ~capacity:2 () in
  Lru.put t "a" 1;
  Lru.put t "b" 2;
  ignore (Lru.find t "a");
  (* hit *)
  ignore (Lru.find t "z");
  (* miss *)
  ignore (Lru.mem t "b");
  (* neutral *)
  ignore (Lru.peek t "b");
  (* neutral *)
  Lru.put t "c" 3;
  (* evicts the least-recent *)
  let s = Lru.stats t in
  Alcotest.(check int) "hits" 1 s.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Lru.misses;
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "length" 2 s.Lru.length;
  Lru.clear t;
  Alcotest.(check int) "clear keeps counters" 1 (Lru.stats t).Lru.hits;
  Alcotest.(check int) "clear empties" 0 (Lru.length t);
  Lru.reset_stats t;
  Alcotest.(check int) "reset" 0 (Lru.stats t).Lru.hits

let test_lru_set_capacity () =
  let t = Lru.create ~capacity:8 () in
  List.iter (fun k -> Lru.put t k k) [ 1; 2; 3; 4; 5 ];
  Lru.set_capacity t 2;
  Alcotest.(check int) "evicted down" 2 (Lru.length t);
  Alcotest.(check (list int)) "most-recent survive" [ 5; 4 ] (lru_keys t);
  (* put of an existing key updates in place, no eviction *)
  Lru.put t 5 50;
  Alcotest.(check (option int)) "update" (Some 50) (Lru.peek t 5);
  Alcotest.(check int) "no growth" 2 (Lru.length t)

let test_lru_peek_vs_find () =
  let t = Lru.create ~capacity:2 () in
  Lru.put t 1 1;
  Lru.put t 2 2;
  (* peek refreshes recency but does not count *)
  ignore (Lru.peek t 1);
  Lru.put t 3 3;
  Alcotest.(check (option int)) "peeked key survives" (Some 1) (Lru.peek t 1);
  Alcotest.(check (option int)) "other evicted" None (Lru.peek t 2);
  Alcotest.(check int) "no hits counted" 0 (Lru.stats t).Lru.hits;
  Lru.remove t 1;
  Alcotest.(check int) "remove" 1 (Lru.length t)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"lru length <= capacity, most-recent retained"
    ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, ops) ->
      let t = Lru.create ~capacity:cap () in
      List.iter (fun k -> Lru.put t k k) ops;
      Lru.length t <= cap
      && Lru.length t <= List.length (List.sort_uniq compare ops)
      (* the most recently inserted key is always present *)
      && (ops = [] || Lru.mem t (List.nth ops (List.length ops - 1))))

(* --- table --- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"T" [ ("name", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "alpha"; "1.0" ];
  Table.add_row t [ "b"; "22.5" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains alpha" true (contains s "alpha");
  Alcotest.(check bool) "right-aligned value" true (contains s "| 22.5 |");
  Alcotest.(check bool) "left-padded shorter value" true (contains s "|  1.0 |")

let test_table_short_row_padded () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Table.add_row t [ "only" ];
  let s = Table.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_cell_formats () =
  Alcotest.(check string) "cell_f" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "cell_time ps" "12.3 ps" (Table.cell_time 12.34);
  Alcotest.(check string) "cell_time ns" "1.234 ns" (Table.cell_time 1234.)

(* --- units --- *)

module Units = Pops_util.Units

let fmt_to_string pp v = Format.asprintf "%a" pp v

let test_units_conversions () =
  check_close "ps of ns" 1500. (Units.ps_of_ns 1.5);
  check_close "ns of ps" 1.5 (Units.ns_of_ps 1500.);
  check_close "ff of pf" 250. (Units.ff_of_pf 0.25);
  check_close "pf of ff" 0.25 (Units.pf_of_ff 250.)

let test_units_pp_adaptive () =
  Alcotest.(check string) "small time" "12.3 ps" (fmt_to_string Units.pp_time 12.34);
  Alcotest.(check string) "large time" "2.500 ns" (fmt_to_string Units.pp_time 2500.);
  Alcotest.(check string) "small cap" "3.20 fF" (fmt_to_string Units.pp_cap 3.2);
  Alcotest.(check string) "large cap" "1.500 pF" (fmt_to_string Units.pp_cap 1500.);
  Alcotest.(check string) "width" "4.50 um" (fmt_to_string Units.pp_width 4.5);
  Alcotest.(check string) "percent" "+13.0%" (fmt_to_string Units.pp_percent 0.13);
  Alcotest.(check string) "negative percent" "-7.5%" (fmt_to_string Units.pp_percent (-0.075))

let test_table_separator () =
  let t = Table.create [ ("a", Table.Left) ] in
  Table.add_row t [ "one" ];
  Table.add_separator t;
  Table.add_row t [ "two" ];
  let s = Table.render t in
  (* header rule + separator + closing rule + top = 4 horizontal rules *)
  let rules =
    List.length (List.filter (fun line -> String.length line > 0 && line.[0] = '+')
                   (String.split_on_char '\n' s))
  in
  Alcotest.(check int) "four rules" 4 rules

let test_table_long_row_truncated () =
  let t = Table.create [ ("a", Table.Left) ] in
  Table.add_row t [ "x"; "overflow" ];
  let s = Table.render t in
  Alcotest.(check bool) "extra cell dropped" true (not (contains s "overflow"))

(* --- qcheck properties --- *)

let prop_bisect_finds_roots =
  QCheck.Test.make ~name:"bisect finds root of monotone cubic" ~count:200
    QCheck.(float_range (-5.) 5.)
    (fun c ->
      (* f(x) = x^3 + x - c is strictly increasing, root within [-10,10] *)
      let f x = (x ** 3.) +. x -. c in
      let r = N.bisect ~f ~lo:(-10.) ~hi:10. () in
      Float.abs (f r) < 1e-6)

let prop_clamp_idempotent =
  QCheck.Test.make ~name:"clamp idempotent" ~count:500
    QCheck.(triple (float_range (-10.) 10.) (float_range (-10.) 0.) (float_range 0. 10.))
    (fun (x, lo, hi) ->
      let c = N.clamp ~lo ~hi x in
      N.clamp ~lo ~hi c = c && c >= lo && c <= hi)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
              (float_range 0. 100.))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let v = Stats.percentile a p in
      v >= Stats.minimum a -. 1e-9 && v <= Stats.maximum a +. 1e-9)

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_util"
    [
      ( "numerics",
        [
          Alcotest.test_case "bisect sqrt" `Quick test_bisect_sqrt;
          Alcotest.test_case "bisect no-bracket" `Quick test_bisect_no_bracket;
          Alcotest.test_case "newton" `Quick test_newton;
          Alcotest.test_case "newton zero derivative" `Quick test_newton_zero_derivative;
          Alcotest.test_case "golden section" `Quick test_golden_section;
          Alcotest.test_case "fixed point" `Quick test_fixed_point;
          Alcotest.test_case "fixed point trace" `Quick test_fixed_point_trace;
          Alcotest.test_case "numerical gradient" `Quick test_gradient_quadratic;
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "clamp" `Quick test_clamp;
          qtest prop_bisect_finds_roots;
          qtest prop_clamp_idempotent;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "of_string stable" `Quick test_rng_of_string_stable;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range and coverage" `Quick test_rng_int_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split tree replay" `Quick test_rng_split_tree_replay;
          Alcotest.test_case "split streams uncorrelated" `Quick
            test_rng_split_streams_uncorrelated;
          Alcotest.test_case "weighted pick" `Quick test_weighted_pick;
          Alcotest.test_case "log range" `Quick test_log_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          qtest prop_percentile_bounded;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "counters" `Quick test_lru_counters;
          Alcotest.test_case "set capacity" `Quick test_lru_set_capacity;
          Alcotest.test_case "peek vs find" `Quick test_lru_peek_vs_find;
          qtest prop_lru_never_exceeds_capacity;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short row padded" `Quick test_table_short_row_padded;
          Alcotest.test_case "cell formats" `Quick test_cell_formats;
          Alcotest.test_case "separator" `Quick test_table_separator;
          Alcotest.test_case "long row truncated" `Quick test_table_long_row_truncated;
        ] );
      ( "units",
        [
          Alcotest.test_case "conversions" `Quick test_units_conversions;
          Alcotest.test_case "adaptive printing" `Quick test_units_pp_adaptive;
        ] );
    ]
