The serving front end: NDJSON in, NDJSON out.  Results are rendered
without wall-clock fields (--no-times) so this transcript is stable.

  $ unset POPS_FAULT
  $ export POPS_DOMAINS=1

Three jobs through a pipe - a good analyze, an invalid netlist, and an
optimize whose 0.95x constraint this 2-gate circuit cannot quite meet
(status unmet, exit code 1 in the result line); one result line per
request in submission order, then the summary.  The server itself
exits 0: per-job failures are result lines, not server failures.

  $ cat > stream.ndjson <<'EOF'
  > {"bench":"INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = NAND(a, b)\ny = NOT(n1)\n","action":"analyze"}
  > {"id":"broken","bench":"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n","action":"analyze"}
  > {"id":"opt1","bench":"INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = NAND(a, b)\ny = NOT(n1)\n","tc_ratio":0.95,"max_rounds":2}
  > EOF
  $ pops serve --no-times < stream.ndjson
  {"id":"job-0","tenant":"default","seq":0,"status":"ok","exit":0,"netlist_cache":"miss","gates":2,"inputs":2,"outputs":1,"depth":2,"delay_ps":156.196,"area_um":4.541,"power_uw":5.865}
  {"id":"broken","tenant":"default","seq":1,"status":"invalid","exit":2,"netlist_cache":"miss","diags":["bench-syntax (line 3): unsupported gate FROB"]}
  {"id":"opt1","tenant":"default","seq":2,"status":"unmet","exit":1,"netlist_cache":"hit","gates":2,"inputs":2,"outputs":1,"depth":2,"tc_ps":148.387,"initial_delay_ps":156.196,"final_delay_ps":148.469,"initial_area_um":4.541,"final_area_um":5.304,"rounds":2,"buffers":0,"rewrites":0,"flow":"budget-exhausted","met":false,"equivalence":true,"diags":["constraint-infeasible: constraint 148.387 ps not met: critical delay 148.469 ps after optimization"]}
  {"summary":true,"jobs":3,"ok":1,"degraded":0,"unmet":1,"rejected":0,"invalid":1,"failed":0,"netlist_cache":{"hits":1,"misses":2,"evictions":0,"length":2},"bounds_cache":{"hits":0,"misses":2,"evictions":0,"length":2},"tenants":[{"tenant":"default","jobs":2,"rejected":0,"sweeps":2}]}

Note the third job: its netlist text is byte-identical to the first
job's, so it was served from the parsed-netlist cache ("hit") - and the
optimize then ran on a private copy.

Blank lines and comments are skipped; a line that is not JSON still
produces a result line in sequence (the stream never skips a slot).

  $ printf '\n# comment\nnot json\n' | pops serve --no-times --no-summary
  {"id":"job-0","tenant":"default","seq":0,"status":"invalid","exit":2,"error":"not a JSON object: byte 0: expected null"}

Batch mode reuses the same engine and exits with the worst per-job
code: ok(0) < unmet/rejected(1) < invalid(2).

  $ cat > jobs.ndjson <<'EOF'
  > # tiny batch: two analyzes of the same netlist
  > {"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","action":"analyze"}
  > {"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","action":"analyze"}
  > EOF
  $ pops optimize --jobs jobs.ndjson --no-times
  {"id":"job-0","tenant":"default","seq":0,"status":"ok","exit":0,"netlist_cache":"miss","gates":1,"inputs":1,"outputs":1,"depth":1,"delay_ps":90.98,"area_um":1.514,"power_uw":4.848}
  {"id":"job-1","tenant":"default","seq":1,"status":"ok","exit":0,"netlist_cache":"hit","gates":1,"inputs":1,"outputs":1,"depth":1,"delay_ps":90.98,"area_um":1.514,"power_uw":4.848}

  $ cat > mixed.ndjson <<'EOF'
  > {"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","action":"analyze"}
  > {"id":"broken","bench":"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n","action":"analyze"}
  > EOF
  $ pops optimize --jobs mixed.ndjson --no-times
  {"id":"job-0","tenant":"default","seq":0,"status":"ok","exit":0,"netlist_cache":"miss","gates":1,"inputs":1,"outputs":1,"depth":1,"delay_ps":90.98,"area_um":1.514,"power_uw":4.848}
  {"id":"broken","tenant":"default","seq":1,"status":"invalid","exit":2,"netlist_cache":"miss","diags":["bench-syntax (line 3): unsupported gate FROB"]}
  [2]

A zero tenant budget rejects at admission (exit 1, the constraint
code), with a diagnostic naming the remedy.

  $ pops optimize --jobs jobs.ndjson --no-times --tenant-sweeps 0 --summary
  {"id":"job-0","tenant":"default","seq":0,"status":"rejected","exit":1,"diags":["admission-rejected (default): job job-0 refused: tenant default spent its 0-sweep serve budget"]}
  {"id":"job-1","tenant":"default","seq":1,"status":"rejected","exit":1,"diags":["admission-rejected (default): job job-1 refused: tenant default spent its 0-sweep serve budget"]}
  {"summary":true,"jobs":2,"ok":0,"degraded":0,"unmet":0,"rejected":2,"invalid":0,"failed":0,"netlist_cache":{"hits":0,"misses":0,"evictions":0,"length":0},"bounds_cache":{"hits":0,"misses":0,"evictions":0,"length":0},"tenants":[{"tenant":"default","jobs":0,"rejected":2,"sweeps":0}]}
  [1]

The socket listener: the same protocol over a Unix domain socket, one
isolated session per connection.  The session's result lines are
bit-identical to the stdio run above; the end-of-session summary is
per-session (the engine-wide one would not be deterministic under
concurrent clients).

  $ pops serve --socket main.sock --no-times 2>main.log &
  $ SRV=$!
  $ for i in $(seq 100); do [ -S main.sock ] && break; sleep 0.1; done

  $ pops client --socket main.sock < stream.ndjson
  {"id":"job-0","tenant":"default","seq":0,"status":"ok","exit":0,"netlist_cache":"miss","gates":2,"inputs":2,"outputs":1,"depth":2,"delay_ps":156.196,"area_um":4.541,"power_uw":5.865}
  {"id":"broken","tenant":"default","seq":1,"status":"invalid","exit":2,"netlist_cache":"miss","diags":["bench-syntax (line 3): unsupported gate FROB"]}
  {"id":"opt1","tenant":"default","seq":2,"status":"unmet","exit":1,"netlist_cache":"hit","gates":2,"inputs":2,"outputs":1,"depth":2,"tc_ps":148.387,"initial_delay_ps":156.196,"final_delay_ps":148.469,"initial_area_um":4.541,"final_area_um":5.304,"rounds":2,"buffers":0,"rewrites":0,"flow":"budget-exhausted","met":false,"equivalence":true,"diags":["constraint-infeasible: constraint 148.387 ps not met: critical delay 148.469 ps after optimization"]}
  {"summary":true,"jobs":3,"shed":0,"worst_exit":2}
  [2]

A health probe is answered at intake (it can never be starved by a
busy tenant) and reports engine, cache and pool state.

  $ printf '{"action":"health"}\n' | pops client --socket main.sock
  {"id":"job-0","tenant":"default","seq":0,"status":"ok","exit":0,"health":true,"jobs":3,"window":16,"domains":1,"netlist_cache":{"hits":1,"misses":2,"evictions":0,"length":2},"bounds_cache":{"hits":0,"misses":2,"evictions":0,"length":2}}
  {"summary":true,"jobs":1,"shed":0,"worst_exit":0}

SIGTERM drains: stop accepting, finish in-flight work, flush, unlink
the socket, exit 0.

  $ kill -TERM $SRV && wait $SRV && echo drained
  drained
  $ [ -S main.sock ] || echo socket removed
  socket removed
  $ cat main.log
  pops: listening on main.sock

Backpressure: with --queue-limit 1 a burst of three requests queues
one job and sheds the rest with a typed overloaded response (exit 1)
carrying a retry hint -- shed responses are emitted immediately, which
is the point of the hint, so they precede the queued job's result.

  $ cat > burst.ndjson <<'EOF'
  > {"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","action":"analyze"}
  > {"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","action":"analyze"}
  > {"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","action":"analyze"}
  > EOF
  $ pops serve --socket shed.sock --no-times --queue-limit 1 2>shed.log &
  $ SRV2=$!
  $ for i in $(seq 100); do [ -S shed.sock ] && break; sleep 0.1; done
  $ pops client --socket shed.sock < burst.ndjson
  {"id":"job-1","tenant":"default","seq":1,"status":"overloaded","exit":1,"retry_after_ms":1000,"diags":["overloaded: job job-1 shed: the session's in-flight queue is full"]}
  {"id":"job-2","tenant":"default","seq":2,"status":"overloaded","exit":1,"retry_after_ms":1000,"diags":["overloaded: job job-2 shed: the session's in-flight queue is full"]}
  {"id":"job-0","tenant":"default","seq":0,"status":"ok","exit":0,"netlist_cache":"miss","gates":1,"inputs":1,"outputs":1,"depth":1,"delay_ps":90.98,"area_um":1.514,"power_uw":4.848}
  {"summary":true,"jobs":1,"shed":2,"worst_exit":1}
  [1]

Every shed is also re-emitted on the server's log stream, in order.

  $ kill -TERM $SRV2 && wait $SRV2 && echo drained
  drained
  $ cat shed.log
  pops: listening on shed.sock
  pops: overloaded (client-1): shed job seq 1: in-flight queue full at 1
  pops: overloaded (client-1): shed job seq 2: in-flight queue full at 1

A socket file left behind by a killed listener (kill -9: no drain, no
unlink) is provably stale -- the path is a socket and a probe connect
is refused -- so the next start cleans it up and binds; a live
listener is never displaced.

  $ pops serve --socket stale.sock --no-times 2>/dev/null &
  $ SRV3=$!
  $ for i in $(seq 100); do [ -S stale.sock ] && break; sleep 0.1; done
  $ pops serve --socket stale.sock --no-times 2>&1 | head -1
  pops: stale.sock: a listener is already serving
  $ kill -9 $SRV3 && wait $SRV3
  [137]
  $ [ -S stale.sock ] && echo stale file remains
  stale file remains
  $ pops serve --socket stale.sock --no-times 2>/dev/null &
  $ SRV4=$!
  $ for i in $(seq 100); do pops client --socket stale.sock </dev/null >/dev/null 2>&1 && break; sleep 0.1; done
  $ printf '{"action":"health"}\n' | pops client --socket stale.sock >/dev/null && echo serving again
  serving again
  $ kill -TERM $SRV4 && wait $SRV4 && echo drained
  drained

The stdio server shares the listener's deadline code path: an idle
stream is closed with a deadline-exceeded diagnostic and a clean exit,
not an error.

  $ (printf '{"action":"health"}\n'; sleep 1) | pops serve --no-times --no-summary --idle-timeout 0.3
  {"id":"job-0","tenant":"default","seq":0,"status":"ok","exit":0,"health":true,"jobs":0,"window":16,"domains":1,"netlist_cache":{"hits":0,"misses":0,"evictions":0,"length":0},"bounds_cache":{"hits":0,"misses":0,"evictions":0,"length":0}}
  pops: deadline-exceeded (stdin): stream idle past the deadline; treating as end of stream
