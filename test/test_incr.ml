(* Equivalence tests for the incremental timing engine: after any
   sequence of netlist edits, Timing.update must reproduce a from-scratch
   Timing.analyze bit for bit — arrivals, critical path, loads. *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Netlist = Pops_netlist.Netlist
module Transform = Pops_netlist.Transform
module Builder = Pops_netlist.Builder
module Generator = Pops_netlist.Generator
module Timing = Pops_sta.Timing
module Paths = Pops_sta.Paths
module Profiles = Pops_circuits.Profiles
module Rng = Pops_util.Rng

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let tech = Tech.cmos025
let lib = Library.make tech

(* reference load: the same pin-counting fold load_on performs, computed
   without the cache *)
let reference_load t id =
  let n = Netlist.node t id in
  let fanout_cap =
    List.fold_left
      (fun acc c ->
        let cn = Netlist.node t c in
        let pins =
          Array.fold_left (fun k f -> if f = id then k + 1 else k) 0 cn.Netlist.fanins
        in
        acc +. (float_of_int pins *. cn.Netlist.cin))
      0. n.Netlist.fanouts
  in
  let terminal =
    match List.assoc_opt id (Netlist.outputs t) with Some l -> l | None -> 0.
  in
  fanout_cap +. n.Netlist.wire +. terminal

let arrival_opt timing id edge =
  match Timing.arrival timing id edge with
  | a -> Some a
  | exception Not_found -> None

(* incremental [timing] vs a fresh analyze of the same netlist: arrivals
   (time, slope, provenance), critical delay/path, cached loads *)
let check_equiv ~what t timing =
  let fresh = Timing.analyze ~lib t in
  List.iter
    (fun id ->
      List.iter
        (fun edge ->
          match (arrival_opt timing id edge, arrival_opt fresh id edge) with
          | None, None -> ()
          | Some a, Some b ->
            if a.Timing.time <> b.Timing.time || a.Timing.slope <> b.Timing.slope
            then
              Alcotest.failf "%s: node %d arrival differs: %.17g/%.17g vs %.17g/%.17g"
                what id a.Timing.time a.Timing.slope b.Timing.time b.Timing.slope;
            if a.Timing.from_ <> b.Timing.from_ then
              Alcotest.failf "%s: node %d provenance differs" what id
          | Some _, None | None, Some _ ->
            Alcotest.failf "%s: node %d arrival presence differs" what id)
        [ Edge.Rising; Edge.Falling ])
    (Netlist.topological_order t);
  if Timing.critical_delay timing <> Timing.critical_delay fresh then
    Alcotest.failf "%s: critical delay differs" what;
  if Timing.critical_path timing <> Timing.critical_path fresh then
    Alcotest.failf "%s: critical path differs" what;
  List.iter
    (fun id ->
      let got = Netlist.load_on t id in
      let expected = reference_load t id in
      if Float.abs (got -. expected) > 1e-9 *. Float.max 1. (Float.abs expected)
      then Alcotest.failf "%s: node %d load %.17g <> reference %.17g" what id got expected)
    (Netlist.topological_order t)

(* one random mutator application; returns a label for failure messages *)
let random_edit rng t =
  let gates = Array.of_list (Netlist.gate_ids t) in
  let any_gate () = gates.(Rng.int rng (Array.length gates)) in
  let pis = Array.of_list (Netlist.inputs t) in
  match Rng.int rng 6 with
  | 0 ->
    let g = any_gate () in
    Netlist.set_cin t g (tech.Tech.cmin *. Rng.log_range rng 1. 40.);
    "set_cin"
  | 1 ->
    let g = any_gate () in
    Netlist.set_wire t g (tech.Tech.cmin *. Rng.float rng 5.);
    "set_wire"
  | 2 ->
    let g = any_gate () in
    ignore (Transform.insert_buffer t ~after:g);
    "insert_buffer"
  | 3 ->
    (* rewiring a pin to a primary input can never create a cycle *)
    let g = any_gate () in
    let n = Netlist.node t g in
    let pin = Rng.int rng (Array.length n.Netlist.fanins) in
    Netlist.set_fanin t g ~pin pis.(Rng.int rng (Array.length pis));
    "set_fanin"
  | 4 -> (
    let g = any_gate () in
    match Transform.de_morgan t g with
    | Ok _ -> "de_morgan"
    | Error _ -> "de_morgan(skipped)")
  | _ ->
    let g = any_gate () in
    Netlist.set_output t g ~load:(Rng.float rng 50.);
    "set_output"

let prop_incremental_matches_scratch =
  QCheck.Test.make ~name:"incremental == from-scratch on random edit sequences"
    ~count:100
    QCheck.(pair (int_range 4 16) (int_range 0 1_000_000))
    (fun (path_gates, salt) ->
      let p =
        Generator.make_profile
          ~name:(Printf.sprintf "incr%d_%d" path_gates salt)
          ~path_gates ()
      in
      let t, _ = Generator.generate tech p in
      let rng = Rng.create (Int64.of_int (salt + (path_gates * 7_919))) in
      let timing = Timing.analyze ~lib t in
      for step = 1 to 6 do
        let what = random_edit rng t in
        (match Netlist.validate t with
        | Ok () -> ()
        | Error m -> Alcotest.failf "edit %d (%s) broke invariants: %s" step what m);
        check_equiv ~what:(Printf.sprintf "step %d (%s)" step what) t timing
      done;
      true)

(* directed regressions: each mutator class on a fixed circuit *)

let gen40 () =
  Generator.generate tech (Generator.make_profile ~name:"incr-fixed" ~path_gates:40 ())

let test_set_cin_single () =
  let t, spine = gen40 () in
  let timing = Timing.analyze ~lib t in
  let g = List.nth spine 20 in
  Netlist.set_cin t g (9. *. tech.Tech.cmin);
  check_equiv ~what:"single set_cin" t timing

let test_buffer_chain () =
  let t, spine = gen40 () in
  let timing = Timing.analyze ~lib t in
  List.iteri
    (fun i g ->
      if i mod 7 = 0 then begin
        ignore (Transform.insert_buffer t ~after:g);
        check_equiv ~what:(Printf.sprintf "buffer after %d" g) t timing
      end)
    spine

let test_delete_gate_incremental () =
  let t = Netlist.create tech in
  let a = Netlist.add_input t in
  let g = Netlist.add_gate t Gk.Inv [| a |] in
  let h = Netlist.add_gate t Gk.Inv [| g |] in
  let dead = Netlist.add_gate t Gk.Inv [| g |] in
  Netlist.set_output t h ~load:10.;
  let timing = Timing.analyze ~lib t in
  Netlist.delete_gate t dead;
  check_equiv ~what:"delete_gate" t timing;
  (match Timing.arrival timing dead Edge.Rising with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "deleted node still has an arrival")

let test_cleanup_pairs_incremental () =
  let t, spine = gen40 () in
  let timing = Timing.analyze ~lib t in
  List.iteri (fun i g -> if i mod 9 = 0 then ignore (Transform.insert_buffer t ~after:g)) spine;
  check_equiv ~what:"after buffers" t timing;
  ignore (Transform.cleanup_inverter_pairs t);
  check_equiv ~what:"after cleanup" t timing

let test_update_is_noop_when_clean () =
  let t, _ = gen40 () in
  let timing = Timing.analyze ~lib t in
  let d0 = Timing.critical_delay timing in
  Timing.update timing;
  Alcotest.(check bool) "no drift" true (Timing.critical_delay timing = d0)

(* the flow keeps one Timing.t alive through hundreds of edits; its final
   answer must equal a cold re-analysis of the final netlist *)
let test_flow_final_delay_matches_cold_sta () =
  List.iter
    (fun name ->
      let p = Option.get (Profiles.find name) in
      let nl, _ = Profiles.circuit tech p in
      let nl = Netlist.copy nl in
      let d0 = Timing.critical_delay (Timing.analyze ~lib nl) in
      let r = Pops_flow.Flow.optimize ~lib ~tc:(0.8 *. d0) nl in
      let cold = Timing.critical_delay (Timing.analyze ~lib nl) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: persistent STA == cold STA (%.17g vs %.17g)" name
           r.Pops_flow.Flow.final_delay cold)
        true
        (r.Pops_flow.Flow.final_delay = cold);
      Alcotest.(check bool) (name ^ ": logic preserved") true
        (r.Pops_flow.Flow.equivalence = Ok ()))
    [ "fpd"; "c432"; "c880" ]

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_incr"
    [
      ( "equivalence",
        [
          qtest prop_incremental_matches_scratch;
          Alcotest.test_case "single set_cin" `Quick test_set_cin_single;
          Alcotest.test_case "buffer chain" `Quick test_buffer_chain;
          Alcotest.test_case "delete gate" `Quick test_delete_gate_incremental;
          Alcotest.test_case "cleanup pairs" `Quick test_cleanup_pairs_incremental;
          Alcotest.test_case "clean update is noop" `Quick test_update_is_noop_when_clean;
        ] );
      ( "flow",
        [
          Alcotest.test_case "flow == cold STA" `Slow test_flow_final_delay_matches_cold_sta;
        ] );
    ]
