(* Tests for Pops_serve: the multi-tenant job engine.

   The contract under test (see lib/serve/engine.mli): with wall caps
   off, every result rendered with times:false is a pure function of
   the job stream — identical at any domain count and identical to
   running each job alone against a fresh engine; a cache hit is
   semantically transparent; tenant budgets starve only their own
   tenant; and an injected crash fails only its own job while the
   engine keeps serving. *)

module Tech = Pops_process.Tech
module Generator = Pops_netlist.Generator
module Bench_io = Pops_netlist.Bench_io
module Diag = Pops_robust.Diag
module Fault = Pops_robust.Fault
module Pool = Pops_util.Pool
module Json = Pops_serve.Json
module Job = Pops_serve.Job
module Engine = Pops_serve.Engine
module Server = Pops_serve.Server

let tech = Tech.cmos025

let with_domains n f =
  let old = Pool.default_size () in
  Pool.set_default_size n;
  Fun.protect ~finally:(fun () -> Pool.set_default_size old) f

(* --- json ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      {|{"a":1,"b":[true,false,null],"c":"x\ny","d":-2.5}|};
      {|[]|}; {|{}|}; {|"A\"\\"|}; {|3|};
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok v -> (
        (* print-parse-print is a fixpoint *)
        let printed = Json.to_string v in
        match Json.parse printed with
        | Error e -> Alcotest.failf "reparse %s: %s" printed e
        | Ok v' ->
          Alcotest.(check string) "fixpoint" printed (Json.to_string v')))
    cases

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %s" s
      | Error _ -> ())
    [ ""; "{"; {|{"a":}|}; "[1,]"; "{} trailing"; "nul"; {|"unterminated|} ]

(* --- job decoding --------------------------------------------------- *)

let decode ?(seq = 0) s =
  match Json.parse s with
  | Error e -> Alcotest.failf "json: %s" e
  | Ok j -> Job.of_json ~seq j

let test_job_defaults () =
  match decode {|{"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"}|} with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok j ->
    Alcotest.(check string) "id" "job-0" j.Job.id;
    Alcotest.(check string) "tenant" "default" j.Job.tenant;
    (match j.Job.action with
    | Job.Optimize -> ()
    | Job.Analyze | Job.Health ->
      Alcotest.fail "default action should be optimize")

let test_job_rejects () =
  let expect_err s =
    match decode s with
    | Ok _ -> Alcotest.failf "expected decode error for %s" s
    | Error _ -> ()
  in
  expect_err {|{"bench":"x","bench_file":"y"}|};
  (* both sources *)
  expect_err {|{"action":"analyze"}|};
  (* no source *)
  expect_err {|{"bench":"x","tcps":1}|};
  (* unknown field (typo of tc_ps) *)
  expect_err {|{"bench":"x","action":"optimise"}|};
  (* unknown action *)
  expect_err {|[1,2]|}

(* --- workloads ------------------------------------------------------ *)

(* the generator is seeded from the profile name, so distinct seeds
   give distinct netlists (and distinct cache keys) *)
let bench_text ~seed gates =
  let nl, _ =
    Generator.generate tech
      (Generator.make_profile
         ~name:(Printf.sprintf "serve_t%d" seed)
         ~path_gates:gates ())
  in
  Bench_io.to_string nl

let mk_job ~seq ?(tenant = "default") ?(action = Job.Analyze) ?tc_ratio
    ?max_rounds text =
  {
    Job.seq;
    id = Printf.sprintf "job-%d" seq;
    tenant;
    source = Job.Inline text;
    action;
    tc_ps = None;
    tc_ratio;
    max_rounds;
    k_paths = None;
    vt_assign = false;
  }

(* a small mixed stream over distinct netlists: analyze and optimize,
   three tenants, all cache misses so a fresh-engine-per-job run renders
   the same verdicts *)
let mixed_jobs () =
  List.init 9 (fun i ->
      let tenant = Printf.sprintf "t%d" (i mod 3) in
      let text = bench_text ~seed:(100 + i) 12 in
      if i mod 2 = 0 then
        mk_job ~seq:i ~tenant ~action:Job.Optimize ~tc_ratio:0.9 ~max_rounds:2
          text
      else mk_job ~seq:i ~tenant text)

let config = { Engine.default_config with Engine.times = false }
let render r = Json.to_string (Job.to_json ~times:false r)
let render_all rs = List.map render rs

(* --- determinism: concurrent == sequential -------------------------- *)

let test_concurrent_eq_sequential () =
  let jobs = mixed_jobs () in
  let batched domains =
    with_domains domains (fun () ->
        render_all (Engine.run_batch (Engine.create ~config tech) jobs))
  in
  let seq1 = batched 1 in
  let par4 = batched 4 in
  Alcotest.(check (list string)) "4 domains == 1 domain" seq1 par4;
  (* one job per fresh engine, like running each in its own process *)
  let alone =
    with_domains 1 (fun () ->
        List.map
          (fun j -> render (Engine.run_job (Engine.create ~config tech) j))
          jobs)
  in
  Alcotest.(check (list string)) "batched == one-per-engine" seq1 alone

let test_batch_split_invariant () =
  (* window 2 (many small batches) and window 64 (one batch) must render
     the same stream *)
  let jobs = mixed_jobs () in
  let run window =
    with_domains 2 (fun () ->
        let engine =
          Engine.create ~config:{ config with Engine.window } tech
        in
        let rec batches = function
          | [] -> []
          | items ->
            let rec take n = function
              | x :: rest when n < window ->
                let b, r = take (n + 1) rest in
                (x :: b, r)
              | rest -> ([], rest)
            in
            let b, rest = take 0 items in
            b :: batches rest
        in
        render_all (List.concat_map (Engine.run_batch engine) (batches jobs)))
  in
  Alcotest.(check (list string)) "window 2 == window 64" (run 64) (run 2)

(* --- cache transparency --------------------------------------------- *)

let strip_bookkeeping r = { r with Job.seq = 0; id = "x"; cache = `None }

let test_cache_hit_transparent () =
  let text = bench_text ~seed:7 15 in
  let jobs = List.init 4 (fun i -> mk_job ~seq:i text) in
  let results =
    with_domains 1 (fun () ->
        Engine.run_batch (Engine.create ~config tech) jobs)
  in
  (match results with
  | first :: rest ->
    Alcotest.(check bool) "first is a miss" true (first.Job.cache = `Miss);
    List.iter
      (fun r ->
        Alcotest.(check bool) "later are hits" true (r.Job.cache = `Hit);
        Alcotest.(check string) "hit payload == miss payload"
          (render (strip_bookkeeping first))
          (render (strip_bookkeeping r)))
      rest
  | [] -> Alcotest.fail "no results");
  (* optimize jobs mutate their netlist: a hit must hand out a private
     copy, so a second optimize of the same text reproduces the first *)
  let opt i = mk_job ~seq:i ~action:Job.Optimize ~tc_ratio:0.9 ~max_rounds:2 text in
  let results =
    with_domains 1 (fun () ->
        Engine.run_batch (Engine.create ~config tech) [ opt 0; opt 1 ])
  in
  match render_all (List.map strip_bookkeeping results) with
  | [ a; b ] -> Alcotest.(check string) "optimize replay" a b
  | _ -> Alcotest.fail "expected two results"

let test_invalid_bench () =
  let r =
    Engine.run_job (Engine.create ~config tech)
      (mk_job ~seq:0 "INPUT(a)\nwhat even is this\n")
  in
  Alcotest.(check bool) "invalid" true (r.Job.status = Job.Invalid);
  Alcotest.(check int) "exit 2" 2 (Job.exit_of_status r.Job.status)

(* --- tenant budgets ------------------------------------------------- *)

let test_tenant_budget_isolation () =
  let text = bench_text ~seed:3 15 in
  let config = { config with Engine.tenant_sweeps = Some 1 } in
  with_domains 1 (fun () ->
      let engine = Engine.create ~config tech in
      let opt ~seq ~tenant =
        mk_job ~seq ~tenant ~action:Job.Optimize ~tc_ratio:0.9 ~max_rounds:2
          text
      in
      (* batch 1 spends tenant a's budget... *)
      let r1 = Engine.run_batch engine [ opt ~seq:0 ~tenant:"a" ] in
      Alcotest.(check bool) "a's first job runs" true
        (match r1 with [ r ] -> r.Job.status <> Job.Rejected | _ -> false);
      (* ...so in batch 2 tenant a is rejected while tenant b runs *)
      match Engine.run_batch engine [ opt ~seq:1 ~tenant:"a"; opt ~seq:2 ~tenant:"b" ] with
      | [ ra; rb ] ->
        Alcotest.(check bool) "a rejected" true (ra.Job.status = Job.Rejected);
        Alcotest.(check int) "rejected exit 1" 1
          (Job.exit_of_status ra.Job.status);
        Alcotest.(check bool) "a carries the admission diag" true
          (List.exists
             (fun d -> d.Diag.code = Diag.Admission_rejected)
             ra.Job.diags);
        Alcotest.(check bool) "b unaffected" true (rb.Job.status <> Job.Rejected)
      | _ -> Alcotest.fail "expected two results")

(* --- fault injection ------------------------------------------------ *)

let test_fault_storm_contained () =
  (* analyze-only jobs: these never fan out inside the flow, so the
     engine's per-job tasks are the only pool tasks and a storm either
     kills a job whole or leaves it untouched.  (Optimize jobs degrade
     gracefully under nested injection instead — PR 5 behavior, covered
     by the replay test below.) *)
  let jobs =
    List.init 9 (fun i ->
        mk_job ~seq:i
          ~tenant:(Printf.sprintf "t%d" (i mod 3))
          (bench_text ~seed:(100 + i) 12))
  in
  let baseline =
    with_domains 1 (fun () ->
        render_all (Engine.run_batch (Engine.create ~config tech) jobs))
  in
  with_domains 1 (fun () ->
      let engine = Engine.create ~config tech in
      (* a probabilistic storm: some tasks crash, the rest must render
         exactly their no-fault results *)
      let stormed =
        Fault.with_spec "pool.raise@0.5,seed=11" (fun () ->
            Engine.run_batch engine jobs)
      in
      let failed, survived =
        List.partition (fun r -> r.Job.status = Job.Failed) stormed
      in
      Alcotest.(check bool) "storm kills some jobs" true (failed <> []);
      Alcotest.(check bool) "storm spares some jobs" true (survived <> []);
      List.iter
        (fun r ->
          Alcotest.(check string) "survivor matches no-fault run"
            (List.nth baseline r.Job.seq) (render r))
        survived;
      (* the engine keeps serving after the storm; the replay hits the
         netlist cache where the fresh baseline engine missed, so
         compare modulo the verdict annotation *)
      let after = Engine.run_batch engine jobs in
      let strip r = render { r with Job.cache = `None } in
      let baseline_stripped =
        with_domains 1 (fun () ->
            List.map strip (Engine.run_batch (Engine.create ~config tech) jobs))
      in
      Alcotest.(check (list string)) "engine serves after storm"
        baseline_stripped (List.map strip after))

let test_fault_storm_replay () =
  (* the same spec replays bit-identically on fresh engines (1 domain:
     probabilistic points are deterministic only there) *)
  let jobs = mixed_jobs () in
  let storm () =
    with_domains 1 (fun () ->
        Fault.with_spec "pool.raise@0.5,seed=11" (fun () ->
            render_all (Engine.run_batch (Engine.create ~config tech) jobs)))
  in
  Alcotest.(check (list string)) "deterministic replay" (storm ()) (storm ())

let test_fault_all_tasks () =
  (* prob-1 specs are deterministic at any domain count: every job fails,
     every failure is its own result line *)
  let jobs = mixed_jobs () in
  with_domains 4 (fun () ->
      let results =
        Fault.with_spec "pool.raise" (fun () ->
            Engine.run_batch (Engine.create ~config tech) jobs)
      in
      Alcotest.(check int) "one line per job" (List.length jobs)
        (List.length results);
      List.iter
        (fun r ->
          Alcotest.(check bool) "failed" true (r.Job.status = Job.Failed);
          Alcotest.(check int) "exit 3" 3 (Job.exit_of_status r.Job.status))
        results)

(* --- server line handling ------------------------------------------- *)

let test_server_stream () =
  (* end-to-end over a real pipe: mixed good, invalid and non-JSON
     lines; one result per line in order, then the summary *)
  let input =
    String.concat "\n"
      [
        {|{"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","action":"analyze"}|};
        "# a comment";
        "";
        {|{"bench":"garbage","action":"analyze","id":"bad"}|};
        "not json";
      ]
    ^ "\n"
  in
  (* the input fits the pipe buffer, so write it all up front and close
     the write end before serving — no writer thread needed *)
  let r_in, w_in = Unix.pipe () in
  let fname = Filename.temp_file "pops_serve_test" ".ndjson" in
  let oc = open_out fname in
  let bytes = Bytes.of_string input in
  let n = Bytes.length bytes in
  let rec write_all off =
    if off < n then write_all (off + Unix.write w_in bytes off (n - off))
  in
  write_all 0;
  Unix.close w_in;
  let engine = Engine.create ~config tech in
  let code = Server.serve engine ~summary:true r_in oc in
  Unix.close r_in;
  close_out oc;
  let lines = In_channel.with_open_bin fname In_channel.input_lines in
  Sys.remove fname;
  Alcotest.(check int) "server exit 0" 0 code;
  Alcotest.(check int) "3 results + summary" 4 (List.length lines);
  let statuses =
    List.filteri (fun i _ -> i < 3) lines
    |> List.map (fun l ->
           match Json.parse l with
           | Ok j ->
             Option.value ~default:"?"
               (Option.bind (Json.member "status" j) Json.to_str)
           | Error e -> Alcotest.failf "bad result line %s: %s" l e)
  in
  Alcotest.(check (list string)) "statuses in order"
    [ "ok"; "invalid"; "invalid" ] statuses;
  match Json.parse (List.nth lines 3) with
  | Ok j ->
    Alcotest.(check bool) "summary line" true
      (Json.member "summary" j <> None)
  | Error e -> Alcotest.failf "bad summary: %s" e

(* -------------------------------------------------------------------- *)

let () = Fault.clear ()

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "job",
        [
          Alcotest.test_case "defaults" `Quick test_job_defaults;
          Alcotest.test_case "rejects" `Quick test_job_rejects;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "concurrent == sequential" `Quick
            test_concurrent_eq_sequential;
          Alcotest.test_case "batch split invariant" `Quick
            test_batch_split_invariant;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit transparent" `Quick
            test_cache_hit_transparent;
          Alcotest.test_case "invalid bench" `Quick test_invalid_bench;
        ] );
      ( "tenants",
        [
          Alcotest.test_case "budget isolation" `Quick
            test_tenant_budget_isolation;
        ] );
      ( "faults",
        [
          Alcotest.test_case "storm contained" `Quick
            test_fault_storm_contained;
          Alcotest.test_case "storm replay" `Quick test_fault_storm_replay;
          Alcotest.test_case "all tasks fail" `Quick test_fault_all_tasks;
        ] );
      ( "server",
        [ Alcotest.test_case "stream" `Quick test_server_stream ] );
    ]
