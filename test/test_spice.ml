(* Tests for Pops_spice: waveforms, the alpha-power MOSFET law, and the
   transient simulator's agreement with the analytical model. *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Model = Pops_delay.Model
module Path = Pops_delay.Path
module Waveform = Pops_spice.Waveform
module Mosfet = Pops_spice.Mosfet
module Transient = Pops_spice.Transient

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let tech = Tech.cmos025
let lib = Library.make tech

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Pops_util.Numerics.close ~rtol:eps ~atol:eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- waveform --- *)

let test_ramp_values () =
  let w = Waveform.ramp ~t0:10. ~duration:20. ~v_from:0. ~v_to:2.5 ~dt:0.5 in
  check_close ~eps:1e-6 "before" 0. (Waveform.value w 0.);
  check_close ~eps:1e-6 "after" 2.5 (Waveform.value w 100.);
  let mid = Waveform.value w 20. in
  Alcotest.(check bool) "midpoint near half" true (mid > 1.0 && mid < 1.5)

let test_crossing () =
  let w = Waveform.ramp ~t0:0. ~duration:10. ~v_from:0. ~v_to:1. ~dt:0.1 in
  (match Waveform.crossing w ~level:0.5 ~rising:true with
  | Some t -> Alcotest.(check bool) "near mid" true (Float.abs (t -. 5.) < 0.5)
  | None -> Alcotest.fail "no crossing");
  Alcotest.(check bool) "no falling crossing on a rising ramp" true
    (Waveform.crossing w ~level:0.5 ~rising:false = None)

let test_transition_time_of_ramp () =
  (* a pure linear ramp's scaled 20-80 transition equals its duration *)
  let w = Waveform.ramp ~t0:0. ~duration:30. ~v_from:0. ~v_to:2.5 ~dt:0.05 in
  match Waveform.transition_time w ~vdd:2.5 ~rising:true with
  | Some tr -> Alcotest.(check bool) "recovers duration" true (Float.abs (tr -. 30.) < 1.)
  | None -> Alcotest.fail "no transition"

let test_waveform_validation () =
  (match Waveform.create ~t0:0. ~dt:1. [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted");
  match Waveform.create ~t0:0. ~dt:(-1.) [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative dt accepted"

let test_slope () =
  let w = Waveform.ramp ~t0:0. ~duration:10. ~v_from:0. ~v_to:1. ~dt:0.1 in
  let s = Waveform.slope w 5. in
  Alcotest.(check bool) "slope ~ 0.1 V/ps" true (Float.abs (s -. 0.1) < 0.02)

(* --- mosfet --- *)

let test_cutoff () =
  let n = Mosfet.nmos tech in
  check_close "below threshold" 0. (Mosfet.current n ~w:1. ~vgs:0.3 ~vds:1.);
  check_close "zero vds" 0. (Mosfet.current n ~w:1. ~vgs:2.5 ~vds:0.)

let test_saturation_monotone_in_vgs () =
  let n = Mosfet.nmos tech in
  let i1 = Mosfet.current n ~w:1. ~vgs:1.5 ~vds:2.5 in
  let i2 = Mosfet.current n ~w:1. ~vgs:2.5 ~vds:2.5 in
  Alcotest.(check bool) "more gate drive, more current" true (i2 > i1 && i1 > 0.)

let test_linear_region_below_sat () =
  let n = Mosfet.nmos tech in
  let i_sat = Mosfet.current n ~w:1. ~vgs:2.5 ~vds:2.5 in
  let i_lin = Mosfet.current n ~w:1. ~vgs:2.5 ~vds:0.1 in
  Alcotest.(check bool) "triode current below saturation" true (i_lin < i_sat && i_lin > 0.)

let test_current_linear_in_width () =
  let n = Mosfet.nmos tech in
  let i1 = Mosfet.current n ~w:1. ~vgs:2. ~vds:2. in
  let i2 = Mosfet.current n ~w:2. ~vgs:2. ~vds:2. in
  check_close ~eps:1e-9 "doubling W doubles I" (2. *. i1) i2

let test_pmos_weaker () =
  let n = Mosfet.nmos tech and p = Mosfet.pmos tech in
  let i_n = Mosfet.current n ~w:1. ~vgs:2.5 ~vds:2.5 in
  let i_p = Mosfet.current p ~w:1. ~vgs:2.5 ~vds:2.5 in
  Alcotest.(check bool) "holes slower" true (i_p < i_n)

let test_stack_width () =
  check_close ~eps:1e-9 "single device unchanged" 2. (Mosfet.stack_width ~factor:0.7 2. ~n:1);
  Alcotest.(check bool) "stack reduces" true (Mosfet.stack_width ~factor:0.7 2. ~n:3 < 2.)

(* --- transient --- *)

let test_fo4_canonical () =
  let d = Transient.fo4 tech in
  Alcotest.(check bool) (Printf.sprintf "FO4 = %.1f ps in [60,140]" d) true
    (d > 60. && d < 140.)

let test_fo4_matches_analytic () =
  (* tau was calibrated against the simulator: the two FO4s agree to 10% *)
  let sim = Transient.fo4 tech and ana = Model.fo4_delay tech in
  Alcotest.(check bool) (Printf.sprintf "sim %.1f vs analytic %.1f" sim ana) true
    (Float.abs (sim -. ana) /. sim < 0.10)

let mixed_path =
  Path.of_kinds ~lib ~branch:5. ~c_out:60.
    [ Gk.Inv; Gk.Nand 2; Gk.Inv; Gk.Nor 2; Gk.Nand 3; Gk.Inv ]

let test_path_sim_agrees_with_model () =
  let x = Pops_core.Sensitivity.solve_worst ~a:0. mixed_path in
  let analytic = Path.delay mixed_path x in
  let sim = (Transient.simulate_path mixed_path x).Transient.total_delay in
  let ratio = sim /. analytic in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f within [0.8, 1.25]" ratio) true
    (ratio > 0.8 && ratio < 1.25)

let test_sim_monotone_in_load () =
  let p_light = Path.of_kinds ~lib ~c_out:20. [ Gk.Inv; Gk.Inv ] in
  let p_heavy = Path.of_kinds ~lib ~c_out:120. [ Gk.Inv; Gk.Inv ] in
  let x = Path.min_sizing p_light in
  let d_light = (Transient.simulate_path p_light x).Transient.total_delay in
  let d_heavy = (Transient.simulate_path p_heavy x).Transient.total_delay in
  Alcotest.(check bool) "more load, more delay" true (d_heavy > d_light)

let test_sim_improves_with_drive () =
  let p = Path.of_kinds ~lib ~c_out:120. [ Gk.Inv; Gk.Inv; Gk.Inv ] in
  let x_small = Path.min_sizing p in
  let x_big = Array.map (fun c -> 4. *. c) x_small in
  let d_small = (Transient.simulate_path p x_small).Transient.total_delay in
  let d_big = (Transient.simulate_path p (Path.clamp_sizing p x_big)).Transient.total_delay in
  Alcotest.(check bool) "bigger drive, less delay" true (d_big < d_small)

let test_sim_stack_effect () =
  (* a NAND3 (falling critical) is slower than an inverter at equal size:
     the stack effect the logical weights model *)
  let d kind =
    let p = Path.of_kinds ~lib ~c_out:50. [ Gk.Inv; kind; Gk.Inv ] in
    let x = Path.clamp_sizing p [| 0.; 11.2; 11.2 |] in
    (Transient.simulate_path_worst p x).Transient.total_delay
  in
  Alcotest.(check bool) "nand3 slower than inv" true (d (Gk.Nand 3) > d Gk.Inv);
  Alcotest.(check bool) "nor3 slower than nand3" true (d (Gk.Nor 3) > d (Gk.Nand 3))

let test_sim_slope_effect () =
  (* slower input edge -> longer stage delay (the v_T tau_in / 2 term) *)
  let mk slope = Path.of_kinds ~lib ~input_slope:slope ~c_out:30. [ Gk.Inv ] in
  let x = [| 5.6 |] in
  let d_fast = (Transient.simulate_path (mk 10.) x).Transient.total_delay in
  let d_slow = (Transient.simulate_path (mk 300.) x).Transient.total_delay in
  Alcotest.(check bool) "slow input slows gate" true (d_slow > d_fast)

let test_sim_worst_at_least_single () =
  let x = Path.min_sizing mixed_path in
  let single = (Transient.simulate_path mixed_path x).Transient.total_delay in
  let worst = (Transient.simulate_path_worst mixed_path x).Transient.total_delay in
  Alcotest.(check bool) "worst >= single polarity" true (worst >= single -. 1e-9)

let test_stage_arrays_shape () =
  let x = Path.min_sizing mixed_path in
  let r = Transient.simulate_path mixed_path x in
  Alcotest.(check int) "delays per stage" 6 (Array.length r.Transient.stage_delays);
  Alcotest.(check int) "transitions per stage" 6 (Array.length r.Transient.stage_transitions);
  Array.iter
    (fun d -> Alcotest.(check bool) "finite positive" true (Float.is_finite d && d > 0.))
    r.Transient.stage_transitions

let test_sim_xor_path () =
  (* non-inverting stage: the behavioural control swap must still settle *)
  let p = Path.of_kinds ~lib ~c_out:40. [ Gk.Inv; Gk.Xor2; Gk.Inv ] in
  let r = Transient.simulate_path ~steps_per_stage:600 p (Path.min_sizing p) in
  Alcotest.(check bool) "finite positive" true
    (Float.is_finite r.Transient.total_delay && r.Transient.total_delay > 0.)

let test_sim_falling_input () =
  let p =
    Path.of_kinds ~input_edge:Edge.Falling ~lib ~c_out:40. [ Gk.Inv; Gk.Inv ]
  in
  let r = Transient.simulate_path ~steps_per_stage:600 p (Path.min_sizing p) in
  Alcotest.(check bool) "finite positive" true (r.Transient.total_delay > 0.)

(* --- property: model/sim agreement across random sized paths --- *)

let random_case =
  QCheck.make
    ~print:(fun (p, _) -> Format.asprintf "%a" Path.pp p)
    QCheck.Gen.(
      let* len = int_range 2 5 in
      let* kinds =
        list_size (return len) (oneofl [ Gk.Inv; Gk.Nand 2; Gk.Nor 2; Gk.Nand 3 ])
      in
      let* c_out = float_range 15. 120. in
      let* scale = float_range 1. 6. in
      let p = Path.of_kinds ~lib ~c_out kinds in
      let x = Array.map (fun c -> c *. scale) (Path.min_sizing p) in
      return (p, x))

let prop_sim_vs_model_band =
  QCheck.Test.make ~name:"simulator within 35% of the analytic model" ~count:15
    random_case
    (fun (p, x) ->
      let x = Path.clamp_sizing p x in
      let analytic = Path.delay p x in
      let sim = (Transient.simulate_path ~steps_per_stage:800 p x).Transient.total_delay in
      let ratio = sim /. analytic in
      ratio > 0.65 && ratio < 1.35)

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_spice"
    [
      ( "waveform",
        [
          Alcotest.test_case "ramp values" `Quick test_ramp_values;
          Alcotest.test_case "crossing" `Quick test_crossing;
          Alcotest.test_case "transition of ramp" `Quick test_transition_time_of_ramp;
          Alcotest.test_case "validation" `Quick test_waveform_validation;
          Alcotest.test_case "slope" `Quick test_slope;
        ] );
      ( "mosfet",
        [
          Alcotest.test_case "cutoff" `Quick test_cutoff;
          Alcotest.test_case "saturation monotone" `Quick test_saturation_monotone_in_vgs;
          Alcotest.test_case "linear region" `Quick test_linear_region_below_sat;
          Alcotest.test_case "width linearity" `Quick test_current_linear_in_width;
          Alcotest.test_case "pmos weaker" `Quick test_pmos_weaker;
          Alcotest.test_case "stack width" `Quick test_stack_width;
        ] );
      ( "transient",
        [
          Alcotest.test_case "FO4 canonical" `Quick test_fo4_canonical;
          Alcotest.test_case "FO4 matches analytic" `Quick test_fo4_matches_analytic;
          Alcotest.test_case "path agrees with model" `Quick test_path_sim_agrees_with_model;
          Alcotest.test_case "monotone in load" `Quick test_sim_monotone_in_load;
          Alcotest.test_case "improves with drive" `Quick test_sim_improves_with_drive;
          Alcotest.test_case "stack effect" `Quick test_sim_stack_effect;
          Alcotest.test_case "slope effect" `Quick test_sim_slope_effect;
          Alcotest.test_case "worst >= single" `Quick test_sim_worst_at_least_single;
          Alcotest.test_case "stage arrays" `Quick test_stage_arrays_shape;
          Alcotest.test_case "xor path" `Quick test_sim_xor_path;
          Alcotest.test_case "falling input" `Quick test_sim_falling_input;
          qtest prop_sim_vs_model_band;
        ] );
    ]
