(* CSR-vs-legacy equivalence: the arena/CSR hot core must reproduce the
   record-based reference implementations bit for bit — arrivals,
   slacks, loads, k-worst paths — on the paper's benchmark suite, on
   random circuits through edit sequences, and at full-chip scale
   without a Stack_overflow. *)

module Tech = Pops_process.Tech
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Netlist = Pops_netlist.Netlist
module Transform = Pops_netlist.Transform
module Generator = Pops_netlist.Generator
module Logic = Pops_netlist.Logic
module Timing = Pops_sta.Timing
module Paths = Pops_sta.Paths
module Profiles = Pops_circuits.Profiles
module Rng = Pops_util.Rng

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC5A0 |]) t
let tech = Tech.cmos025
let lib = Library.make tech

let arrival_opt timing id edge =
  match Timing.arrival timing id edge with
  | a -> Some a
  | exception Not_found -> None

(* the same pin-counting fold load_on performs, without the cache *)
let reference_load t id =
  let n = Netlist.node t id in
  let fanout_cap =
    List.fold_left
      (fun acc c ->
        let cn = Netlist.node t c in
        let pins =
          Array.fold_left (fun k f -> if f = id then k + 1 else k) 0 cn.Netlist.fanins
        in
        acc +. (float_of_int pins *. cn.Netlist.cin))
      0. n.Netlist.fanouts
  in
  let terminal =
    match List.assoc_opt id (Netlist.outputs t) with Some l -> l | None -> 0.
  in
  fanout_cap +. n.Netlist.wire +. terminal

(* CSR analyze vs the record-based reference: arrivals (time, slope,
   provenance), critical delay/path, per-node slacks and cached loads *)
let check_sta_equiv ?(check_loads = true) ~what t =
  let csr = Timing.analyze ~lib t in
  let ref_ = Timing.analyze_reference ~lib t in
  let ids = Netlist.topological_order t in
  List.iter
    (fun id ->
      List.iter
        (fun edge ->
          match (arrival_opt csr id edge, arrival_opt ref_ id edge) with
          | None, None -> ()
          | Some a, Some b ->
            if a.Timing.time <> b.Timing.time || a.Timing.slope <> b.Timing.slope
            then
              Alcotest.failf
                "%s: node %d arrival differs: %.17g/%.17g vs %.17g/%.17g" what id
                a.Timing.time a.Timing.slope b.Timing.time b.Timing.slope;
            if a.Timing.from_ <> b.Timing.from_ then
              Alcotest.failf "%s: node %d provenance differs" what id
          | Some _, None | None, Some _ ->
            Alcotest.failf "%s: node %d arrival presence differs" what id)
        [ Edge.Rising; Edge.Falling ])
    ids;
  if Timing.critical_delay csr <> Timing.critical_delay ref_ then
    Alcotest.failf "%s: critical delay differs: %.17g vs %.17g" what
      (Timing.critical_delay csr) (Timing.critical_delay ref_);
  if Timing.critical_path csr <> Timing.critical_path ref_ then
    Alcotest.failf "%s: critical path differs" what;
  let tc = 1.1 *. Timing.critical_delay ref_ in
  List.iter
    (fun id ->
      if Timing.slack csr ~tc id <> Timing.slack ref_ ~tc id then
        Alcotest.failf "%s: node %d slack differs" what id)
    ids;
  if check_loads then
    List.iter
      (fun id ->
        let got = Netlist.load_on t id in
        let expected = reference_load t id in
        if Float.abs (got -. expected) > 1e-9 *. Float.max 1. (Float.abs expected)
        then
          Alcotest.failf "%s: node %d load %.17g <> reference %.17g" what id got
            expected)
      ids

let check_k_worst_equiv ~what ?(k = 5) t =
  let arena = Paths.k_worst ~k ~lib t in
  let legacy = Paths.k_worst_reference ~k ~lib t in
  let nodes l = List.map (fun e -> e.Paths.nodes) l in
  if nodes arena <> nodes legacy then
    Alcotest.failf "%s: k_worst paths differ from the reference enumeration" what

(* --- the paper's benchmark suite ------------------------------------- *)

let test_profile_suite () =
  List.iter
    (fun (p : Profiles.t) ->
      let t, _ = Profiles.circuit tech p in
      check_sta_equiv ~what:p.Profiles.name t;
      check_k_worst_equiv ~what:p.Profiles.name t)
    Profiles.all

(* --- random circuits through edit sequences -------------------------- *)

let random_edit rng t =
  let gates = Array.of_list (Netlist.gate_ids t) in
  let any_gate () = gates.(Rng.int rng (Array.length gates)) in
  let pis = Array.of_list (Netlist.inputs t) in
  match Rng.int rng 6 with
  | 0 ->
    let g = any_gate () in
    Netlist.set_cin t g (tech.Tech.cmin *. Rng.log_range rng 1. 40.);
    "set_cin"
  | 1 ->
    let g = any_gate () in
    Netlist.set_wire t g (tech.Tech.cmin *. Rng.float rng 5.);
    "set_wire"
  | 2 ->
    let g = any_gate () in
    ignore (Transform.insert_buffer t ~after:g);
    "insert_buffer"
  | 3 ->
    let g = any_gate () in
    let n = Netlist.node t g in
    let pin = Rng.int rng (Array.length n.Netlist.fanins) in
    Netlist.set_fanin t g ~pin pis.(Rng.int rng (Array.length pis));
    "set_fanin"
  | 4 -> (
    let g = any_gate () in
    match Transform.de_morgan t g with
    | Ok _ -> "de_morgan"
    | Error _ -> "de_morgan(skipped)")
  | _ ->
    let g = any_gate () in
    Netlist.set_output t g ~load:(Rng.float rng 50.);
    "set_output"

let prop_csr_matches_legacy =
  QCheck.Test.make ~name:"CSR == legacy on random circuits + edit sequences"
    ~count:100
    QCheck.(pair (int_range 4 16) (int_range 0 1_000_000))
    (fun (path_gates, salt) ->
      let p =
        Generator.make_profile
          ~name:(Printf.sprintf "csr%d_%d" path_gates salt)
          ~path_gates ()
      in
      let t, _ = Generator.generate tech p in
      check_sta_equiv ~what:"fresh" t;
      check_k_worst_equiv ~what:"fresh" t;
      let rng = Rng.create (Int64.of_int (salt + (path_gates * 6_271))) in
      for step = 1 to 6 do
        let what = random_edit rng t in
        (match Netlist.validate t with
        | Ok () -> ()
        | Error m -> Alcotest.failf "edit %d (%s) broke invariants: %s" step what m);
        let what = Printf.sprintf "step %d (%s)" step what in
        check_sta_equiv ~what t;
        if step mod 3 = 0 then check_k_worst_equiv ~what t
      done;
      true)

(* --- full-chip scale -------------------------------------------------- *)

(* a 100k-gate grid is the largest size where running the legacy
   reference STA per test invocation is still cheap; the 1M legs below
   only use the CSR path *)
let test_scale_100k_equiv () =
  let t = Generator.generate_scale tech ~name:"equiv100k" ~gates:100_000 ~shape:Generator.Grid in
  check_sta_equiv ~check_loads:false ~what:"grid100k" t

(* one million gates, wide shape: validate_diags must finish in one
   O(V+E) sweep (< 1 s), STA and the arena k-worst must run without a
   Stack_overflow and actually produce paths *)
let test_scale_grid_1m () =
  let t = Generator.generate_scale tech ~name:"grid1m" ~gates:1_000_000 ~shape:Generator.Grid in
  (* settle the GC debt left by generation so the timed sweep measures
     the validation pass itself, not a piggy-backed major collection *)
  Gc.full_major ();
  let t0 = Sys.time () in
  let diags = Netlist.validate_diags t in
  let elapsed = Sys.time () -. t0 in
  if diags <> [] then
    Alcotest.failf "grid1m: validate_diags reported %d problems" (List.length diags);
  if elapsed >= 1.0 then
    Alcotest.failf "grid1m: validate_diags took %.2f s (budget 1 s)" elapsed;
  let timing = Timing.analyze ~lib t in
  Alcotest.(check bool) "positive critical delay" true (Timing.critical_delay timing > 0.);
  let worst = Paths.k_worst ~k:3 ~lib t in
  Alcotest.(check int) "k_worst found 3 paths" 3 (List.length worst)

(* one million gates, maximally deep shape: depth = gate count, so any
   depth-recursive traversal (STA, backtrack, cone walk, k-worst
   suffix pass) overflows the stack here if it regresses *)
let test_scale_spine_1m () =
  let gates = 1_000_000 in
  let t = Generator.generate_scale tech ~name:"spine1m" ~gates ~shape:Generator.Spine in
  Alcotest.(check int) "depth = gate count" gates (Netlist.depth t);
  let timing = Timing.analyze ~lib t in
  let path = Timing.critical_path timing in
  Alcotest.(check int) "critical path spans the chain" (gates + 1) (List.length path);
  Alcotest.(check int) "cone support reaches the inputs" 8
    (List.length (Logic.cone_support t (List.nth path (List.length path - 1))));
  (* the enumeration hits its pop bound long before the single output at
     depth 1M — the point is that it terminates in bounded space *)
  ignore (Paths.k_worst ~k:2 ~lib t)

let () =
  Alcotest.run "pops_csr"
    [
      ( "equivalence",
        [
          Alcotest.test_case "paper benchmark suite" `Quick test_profile_suite;
          qtest prop_csr_matches_legacy;
        ] );
      ( "scale",
        [
          Alcotest.test_case "100k grid equivalence" `Slow test_scale_100k_equiv;
          Alcotest.test_case "1M grid: validate/STA/k-worst" `Slow test_scale_grid_1m;
          Alcotest.test_case "1M spine: no stack overflow" `Slow test_scale_spine_1m;
        ] );
    ]
