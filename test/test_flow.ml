(* Tests for Pops_flow: the netlist-level path-selection loop. *)

module Tech = Pops_process.Tech
module Library = Pops_cell.Library
module Netlist = Pops_netlist.Netlist
module Builder = Pops_netlist.Builder
module Generator = Pops_netlist.Generator
module Timing = Pops_sta.Timing
module Flow = Pops_flow.Flow

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

let tech = Tech.cmos025
let lib = Library.make tech

let fresh name path_gates =
  fst (Generator.generate tech (Generator.make_profile ~name ~path_gates ()))

let sta_delay t = Timing.critical_delay (Timing.analyze ~lib t)

let test_flow_meets_moderate_constraint () =
  let t = fresh "flow20" 20 in
  let d0 = sta_delay t in
  let tc = 0.7 *. d0 in
  let r = Flow.optimize ~lib ~tc t in
  Alcotest.(check bool) "outcome met" true (r.Flow.outcome = Flow.Met);
  Alcotest.(check bool) "STA confirms" true (sta_delay t <= tc *. 1.001 +. 0.05);
  Alcotest.(check bool) "equivalence kept" true (r.Flow.equivalence = Ok ())

let test_flow_improves_hard_constraint () =
  let t = fresh "flow25" 25 in
  let d0 = sta_delay t in
  (* well below what sizing alone reaches: forces structural moves *)
  let tc = 0.45 *. d0 in
  let r = Flow.optimize ~lib ~tc t in
  Alcotest.(check bool) "final faster than initial" true
    (r.Flow.final_delay < r.Flow.initial_delay);
  Alcotest.(check bool) "equivalence kept" true (r.Flow.equivalence = Ok ());
  (match Netlist.validate t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "netlist broken: %s" m);
  if r.Flow.outcome = Flow.Met then
    Alcotest.(check bool) "STA confirms" true (sta_delay t <= tc *. 1.001 +. 0.05)

let test_flow_noop_when_already_met () =
  let t = fresh "flow15" 15 in
  let d0 = sta_delay t in
  let area0 = Netlist.total_area t lib in
  let r = Flow.optimize ~lib ~tc:(2. *. d0) t in
  Alcotest.(check bool) "met immediately" true (r.Flow.outcome = Flow.Met);
  Alcotest.(check (list pass)) "no iterations" [] r.Flow.iterations;
  Alcotest.(check bool) "area untouched" true
    (Float.abs (Netlist.total_area t lib -. area0) < 1e-9)

let test_flow_reports_consistent () =
  let t = fresh "flow18" 18 in
  let d0 = sta_delay t in
  let r = Flow.optimize ~lib ~tc:(0.8 *. d0) t in
  Alcotest.(check bool) "initial delay recorded" true
    (Float.abs (r.Flow.initial_delay -. d0) < 1.);
  Alcotest.(check bool) "final delay = STA" true
    (Float.abs (r.Flow.final_delay -. sta_delay t) < 1.);
  Alcotest.(check bool) "final area = netlist" true
    (Float.abs (r.Flow.final_area -. Netlist.total_area t lib) < 1e-6)

let test_flow_on_adder () =
  let t = Builder.ripple_carry_adder tech ~bits:8 ~out_load:20. in
  let d0 = sta_delay t in
  let tc = 0.85 *. d0 in
  let r = Flow.optimize ~lib ~tc t in
  Alcotest.(check bool) "adder improves or meets" true
    (r.Flow.outcome = Flow.Met || r.Flow.final_delay < d0);
  Alcotest.(check bool) "adder logic intact" true (r.Flow.equivalence = Ok ())

let prop_flow_keeps_logic_and_validity =
  QCheck.Test.make ~name:"flow preserves logic and netlist invariants" ~count:6
    QCheck.(pair (int_range 8 20) (int_range 55 90))
    (fun (path_gates, pctl) ->
      let t =
        fresh (Printf.sprintf "flowq%d_%d" path_gates pctl) path_gates
      in
      let tc = float_of_int pctl /. 100. *. sta_delay t in
      let r = Flow.optimize ~max_rounds:8 ~lib ~tc t in
      Netlist.validate t = Ok () && r.Flow.equivalence = Ok ())

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_flow"
    [
      ( "flow",
        [
          Alcotest.test_case "meets moderate constraint" `Quick test_flow_meets_moderate_constraint;
          Alcotest.test_case "improves under hard constraint" `Quick test_flow_improves_hard_constraint;
          Alcotest.test_case "noop when already met" `Quick test_flow_noop_when_already_met;
          Alcotest.test_case "report consistent" `Quick test_flow_reports_consistent;
          Alcotest.test_case "ripple adder" `Quick test_flow_on_adder;
          qtest prop_flow_keeps_logic_and_validity;
        ] );
    ]
