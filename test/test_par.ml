(* Determinism tests for the domain pool: a fan-out over the pool must
   be bit-identical to the sequential computation at any domain count.
   The unit tests pin the pool contract (ordered results, ordered
   reduction, smallest-index exception, nesting); the integration tests
   run the real optimization entry points at 1 and 4 domains and compare
   the results field by field. *)

module Tech = Pops_process.Tech
module Library = Pops_cell.Library
module Netlist = Pops_netlist.Netlist
module Timing = Pops_sta.Timing
module Bounds = Pops_core.Bounds
module Protocol = Pops_core.Protocol
module Profiles = Pops_circuits.Profiles
module Random_search = Pops_amps.Random_search
module Flow = Pops_flow.Flow
module Pool = Pops_util.Pool

let tech = Tech.cmos025
let lib = Library.make tech

(* run [f] against a default pool of [n] domains, restoring the previous
   default afterwards even if [f] raises *)
let with_domains n f =
  let old = Pool.default_size () in
  Pool.set_default_size n;
  Fun.protect ~finally:(fun () -> Pool.set_default_size old) f

(* --- pool unit tests ------------------------------------------------ *)

let test_map_ordered () =
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      let xs = Array.init 100 Fun.id in
      let seq = Array.map (fun i -> i * i) xs in
      let par = Pool.parallel_map ~pool (fun i -> i * i) xs in
      Alcotest.(check (array int)) "ordered results" seq par;
      Alcotest.(check (array int)) "empty input" [||]
        (Pool.parallel_map ~pool (fun i -> i) [||]))

let test_map_list () =
  let pool = Pool.create ~size:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      let xs = List.init 37 string_of_int in
      Alcotest.(check (list string)) "map_list" (List.map String.uppercase_ascii xs)
        (Pool.map_list ~pool String.uppercase_ascii xs))

let test_exception_smallest_index () =
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      let xs = Array.init 64 Fun.id in
      let f i = if i >= 17 then failwith (string_of_int i) else i in
      (match Pool.parallel_map ~pool f xs with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* many tasks fail; the re-raise must pick the first submission
           index, exactly the failure a sequential map would hit *)
        Alcotest.(check string) "first failing index wins" "17" msg);
      (* the pool survives a failed fan-out *)
      let ok = Pool.parallel_map ~pool (fun i -> i + 1) (Array.init 16 Fun.id) in
      Alcotest.(check (array int)) "pool usable after failure"
        (Array.init 16 (fun i -> i + 1)) ok)

let test_reduce_ordered () =
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      let xs = Array.init 50 Fun.id in
      (* string concatenation is order-sensitive: any reordering of the
         reduction changes the result *)
      let seq =
        Array.fold_left (fun acc i -> acc ^ "," ^ string_of_int (i * 3)) "" xs
      in
      let par =
        Pool.parallel_reduce ~pool
          ~map:(fun i -> i * 3)
          ~combine:(fun acc v -> acc ^ "," ^ string_of_int v)
          ~init:"" xs
      in
      Alcotest.(check string) "ordered reduction" seq par)

let test_nested_map () =
  (* a task that itself fans out must not deadlock even when every
     worker is busy: the caller steals its own task indices *)
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      let outer = Array.init 8 Fun.id in
      let result =
        Pool.parallel_map ~pool
          (fun i ->
            let inner = Pool.parallel_map ~pool (fun j -> (i * 10) + j) (Array.init 8 Fun.id) in
            Array.fold_left ( + ) 0 inner)
          outer
      in
      let expected =
        Array.map
          (fun i -> Array.fold_left ( + ) 0 (Array.init 8 (fun j -> (i * 10) + j)))
          outer
      in
      Alcotest.(check (array int)) "nested fan-out" expected result)

let test_default_size () =
  with_domains 4 (fun () ->
      Alcotest.(check int) "set_default_size observed" 4 (Pool.default_size ());
      let xs = Array.init 25 Fun.id in
      Alcotest.(check (array int)) "default pool maps"
        (Array.map succ xs)
        (Pool.parallel_map succ xs));
  with_domains 1 (fun () ->
      Alcotest.(check int) "sequential default" 1 (Pool.default_size ()))

(* --- integration: 1 domain vs 4 domains, field by field ------------- *)

let sizing = Alcotest.(array (float 0.))

(* Flow reports compared on everything except [protocol_ms] (wall-clock
   is the one field that may legitimately differ between runs) *)
let check_flow_equal name (a : Flow.report) (b : Flow.report) =
  let outcome o =
    match o with
    | Flow.Met -> "met"
    | Flow.No_progress -> "no-progress"
    | Flow.Budget_exhausted -> "budget"
  in
  Alcotest.(check string) (name ^ ": outcome") (outcome a.Flow.outcome) (outcome b.Flow.outcome);
  Alcotest.(check (float 0.)) (name ^ ": initial delay") a.Flow.initial_delay b.Flow.initial_delay;
  Alcotest.(check (float 0.)) (name ^ ": final delay") a.Flow.final_delay b.Flow.final_delay;
  Alcotest.(check (float 0.)) (name ^ ": initial area") a.Flow.initial_area b.Flow.initial_area;
  Alcotest.(check (float 0.)) (name ^ ": final area") a.Flow.final_area b.Flow.final_area;
  Alcotest.(check int) (name ^ ": buffers") a.Flow.buffers_added b.Flow.buffers_added;
  Alcotest.(check int) (name ^ ": rewrites") a.Flow.rewrites b.Flow.rewrites;
  Alcotest.(check (list (triple int string int)))
    (name ^ ": iterations")
    (List.map
       (fun (it : Flow.iteration) ->
         (it.Flow.round, Protocol.strategy_to_string it.Flow.strategy, it.Flow.path_gates))
       a.Flow.iterations)
    (List.map
       (fun (it : Flow.iteration) ->
         (it.Flow.round, Protocol.strategy_to_string it.Flow.strategy, it.Flow.path_gates))
       b.Flow.iterations);
  Alcotest.(check bool) (name ^ ": equivalence")
    (Result.is_ok a.Flow.equivalence) (Result.is_ok b.Flow.equivalence)

let flow_report (p : Profiles.t) =
  let nl, _ = Profiles.circuit tech p in
  let nl = Netlist.copy nl in
  let d0 = Timing.critical_delay (Timing.analyze ~lib nl) in
  Flow.optimize ~max_rounds:2 ~k_paths:3 ~lib ~tc:(0.85 *. d0) nl

let test_flow_deterministic () =
  List.iter
    (fun (p : Profiles.t) ->
      let seq = with_domains 1 (fun () -> flow_report p) in
      let par = with_domains 4 (fun () -> flow_report p) in
      check_flow_equal p.Profiles.name seq par)
    Profiles.all

let extracted (p : Profiles.t) =
  let nl, spine = Profiles.circuit tech p in
  (Pops_sta.Paths.extract ~lib nl spine).Pops_sta.Paths.path

let test_protocol_deterministic () =
  List.iter
    (fun (p : Profiles.t) ->
      let path = extracted p in
      (* medium constraint = all three candidate generators fan out; on
         the longest paths the buffering/restructuring generators cost
         seconds each, so the giants assert determinism at a weak
         constraint instead (the multi-generator fan-out is covered by
         every mid-size circuit, and by the Flow test on the giants) *)
      let ratio = if p.Profiles.path_gates <= 47 then 1.5 else 2.8 in
      let tc = ratio *. (Bounds.compute path).Bounds.tmin in
      let run () = Protocol.run ~lib ~tc path in
      let seq = with_domains 1 run in
      let par = with_domains 4 run in
      let name = p.Profiles.name in
      Alcotest.(check string) (name ^ ": strategy")
        (Protocol.strategy_to_string seq.Protocol.strategy)
        (Protocol.strategy_to_string par.Protocol.strategy);
      Alcotest.(check (float 0.)) (name ^ ": delay") seq.Protocol.delay par.Protocol.delay;
      Alcotest.(check (float 0.)) (name ^ ": area") seq.Protocol.area par.Protocol.area;
      Alcotest.check sizing (name ^ ": sizing") seq.Protocol.sizing par.Protocol.sizing)
    Profiles.all

let test_random_search_deterministic () =
  List.iter
    (fun (p : Profiles.t) ->
      let path = extracted p in
      (* short search: determinism does not depend on the step budget *)
      let run () = Random_search.minimum_delay ~restarts:6 ~steps:150 path in
      let seq = with_domains 1 run in
      let par = with_domains 4 run in
      let name = p.Profiles.name in
      Alcotest.(check (float 0.)) (name ^ ": delay")
        seq.Random_search.delay par.Random_search.delay;
      Alcotest.(check (float 0.)) (name ^ ": area")
        seq.Random_search.area par.Random_search.area;
      Alcotest.(check int) (name ^ ": evaluations")
        seq.Random_search.evaluations par.Random_search.evaluations;
      Alcotest.check sizing (name ^ ": sizing")
        seq.Random_search.sizing par.Random_search.sizing)
    Profiles.all

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_par"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map is ordered" `Quick test_map_ordered;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "first-index exception" `Quick test_exception_smallest_index;
          Alcotest.test_case "ordered reduction" `Quick test_reduce_ordered;
          Alcotest.test_case "nested fan-out" `Quick test_nested_map;
          Alcotest.test_case "default pool size" `Quick test_default_size;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "Flow.optimize 1 vs 4 domains" `Quick test_flow_deterministic;
          Alcotest.test_case "Protocol.run 1 vs 4 domains" `Quick test_protocol_deterministic;
          Alcotest.test_case "Random_search 1 vs 4 domains" `Quick
            test_random_search_deterministic;
        ] );
    ]
