(* Equivalence suite for the compiled path kernel (PR 3): the
   allocation-free primitives in Pops_delay.Path and the kernel-backed
   solvers in Pops_core.Sensitivity must agree BIT FOR BIT with
   straightforward reference implementations written against the public
   boxed API (Model.stage_delay, Path.stage_coeffs).  Any divergence —
   a reordered operand, a lost clamp, a polarity mix-up in the
   precomputed tables — fails an exact comparison here, not a tolerance
   check.  The accelerated fixed point is additionally pinned to the
   plain trajectory through its bitwise fallback contract. *)

module Tech = Pops_process.Tech
module Gk = Pops_cell.Gate_kind
module Cell = Pops_cell.Cell
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Model = Pops_delay.Model
module Path = Pops_delay.Path
module Sens = Pops_core.Sensitivity
module Bounds = Pops_core.Bounds
module Profiles = Pops_circuits.Profiles
module Paths = Pops_sta.Paths
module N = Pops_util.Numerics
module Rng = Pops_util.Rng

let tech = Tech.cmos025
let lib = Library.make tech

let check_bits msg expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: expected %h, got %h" msg expected actual

let check_bits_arr msg expected actual =
  Alcotest.(check int) (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e -> check_bits (Printf.sprintf "%s [%d]" msg i) e actual.(i))
    expected

let profile_path name =
  let p = Option.get (Profiles.find name) in
  let nl, spine = Profiles.circuit tech p in
  (Paths.extract ~lib nl spine).Paths.path

(* every benchmark circuit, each under all four model-term combinations
   and both input polarities *)
let all_opts =
  [
    Model.{ with_slope = true; with_coupling = true };
    Model.{ with_slope = true; with_coupling = false };
    Model.{ with_slope = false; with_coupling = true };
    Model.{ with_slope = false; with_coupling = false };
  ]

let variants_of base =
  List.concat_map
    (fun opts ->
      List.map
        (fun input_edge ->
          Path.make ~opts ~input_slope:base.Path.input_slope ~input_edge
            ~drive_cin:base.Path.drive_cin ~tech:base.Path.tech
            ~c_out:base.Path.c_out
            (Array.to_list base.Path.stages))
        [ Edge.Rising; Edge.Falling ])
    all_opts

(* a deterministic batch of sizing vectors spanning the clamp range,
   including out-of-range entries the clamp must catch *)
let sizings path =
  let n = Path.length path in
  let rng = Rng.create 0x5EEDL in
  let random _ =
    Array.init n (fun i ->
        if i = 0 then path.Path.drive_cin
        else
          let cell = path.Path.stages.(i).Path.cell in
          Rng.log_range rng (0.1 *. Cell.min_cin cell) (10000. *. Cell.min_cin cell))
  in
  Path.min_sizing path
  :: Array.map (fun v -> v *. 3.) (Path.min_sizing path)
  :: List.init 4 random

(* --- reference implementations (boxed public API) ------------------- *)

let ref_clamp path x =
  Array.mapi
    (fun i xi ->
      if i = 0 then path.Path.drive_cin
      else
        let lo = Cell.min_cin path.Path.stages.(i).Path.cell in
        let hi = 4096. *. lo in
        Float.min hi (Float.max lo xi))
    x

(* eq. (1) folded along the path exactly as the pre-kernel code did:
   clamp, per-stage loads, Model.stage_delay, left-to-right sum *)
let ref_delay path x =
  let n = Path.length path in
  let y = ref_clamp path x in
  let total = ref 0. and tau_in = ref path.Path.input_slope in
  for i = 0 to n - 1 do
    let cell = path.Path.stages.(i).Path.cell in
    let next = if i = n - 1 then path.Path.c_out else y.(i + 1) in
    let cload = Cell.cpar cell ~cin:y.(i) +. path.Path.stages.(i).Path.branch +. next in
    let d, tau_out =
      Model.stage_delay ~opts:path.Path.opts cell ~edge_out:path.Path.edges.(i)
        ~tau_in:!tau_in ~cin:y.(i) ~cload
    in
    total := !total +. d;
    tau_in := tau_out
  done;
  !total

(* the analytic gradient written naively from the per-stage coefficient
   records (squares as explicit multiplies, matching the production
   arithmetic shape) *)
let ref_gradient path x =
  let n = Path.length path in
  let y = ref_clamp path x in
  let tau = path.Path.tech.Tech.tau in
  let coeff j =
    let c = Path.stage_coeffs path j in
    let v = if path.Path.opts.Model.with_slope then c.Path.v else 0. in
    (c.Path.s, v, c.Path.m, c.Path.p)
  in
  let branch j = path.Path.stages.(j).Path.branch in
  let g = Array.make n 0. in
  for j = 1 to n - 1 do
    let s_prev, _, m_prev, p_prev = coeff (j - 1) in
    let s_j, v_j, m_j, p_j = coeff j in
    let xm1 = y.(j - 1) and xj = y.(j) in
    let xnext = if j + 1 < n then y.(j + 1) else path.Path.c_out in
    let l_prev = (p_prev *. xm1) +. branch (j - 1) +. xj in
    let cm_prev = m_prev *. xm1 in
    let dp = cm_prev +. l_prev in
    let k1 = 1. +. (2. *. cm_prev *. cm_prev /. (dp *. dp)) in
    let upstream = s_prev *. tau /. (2. *. xm1) *. (k1 +. v_j) in
    let k_j = branch j +. xnext in
    let l_j = (p_j *. xj) +. k_j in
    let cm_j = m_j *. xj in
    let dj = cm_j +. l_j in
    let v_next = if j + 1 < n then let _, v, _, _ = coeff (j + 1) in v else 0. in
    let own =
      s_j *. tau *. k_j /. 2.
      *. (((1. +. v_next) /. (xj *. xj)) +. (2. *. m_j *. m_j /. (dj *. dj)))
    in
    g.(j) <- upstream -. own
  done;
  g

(* one backward link-equation sweep from the coefficient records — the
   reference for Sensitivity's kernel sweep (single polarity) *)
let ref_sweep path ~a x =
  let n = Path.length path in
  let tau = path.Path.tech.Tech.tau in
  for j = n - 1 downto 1 do
    let cj = Path.stage_coeffs path j and cp = Path.stage_coeffs path (j - 1) in
    let v_of (c : Path.coeffs) =
      if path.Path.opts.Model.with_slope then c.Path.v else 0.
    in
    let next_j = if j = n - 1 then path.Path.c_out else x.(j + 1) in
    let k_j = path.Path.stages.(j).Path.branch +. next_j in
    let l_prev =
      (cp.Path.p *. x.(j - 1)) +. path.Path.stages.(j - 1).Path.branch +. x.(j)
    in
    let cm_prev = cp.Path.m *. x.(j - 1) in
    let dp = cm_prev +. l_prev in
    let k1 = 1. +. (2. *. cm_prev *. cm_prev /. (dp *. dp)) in
    let upstream = cp.Path.s *. tau /. (2. *. x.(j - 1)) *. (k1 +. v_of cj) in
    let l_j = (cj.Path.p *. x.(j)) +. k_j in
    let cm_j = cj.Path.m *. x.(j) in
    let dj = cm_j +. l_j in
    let e2 = cj.Path.s *. tau *. k_j *. cj.Path.m *. cj.Path.m /. (dj *. dj) in
    let v_next =
      if j + 1 < n then v_of (Path.stage_coeffs path (j + 1)) else 0.
    in
    let num = 0. +. (1. *. cj.Path.s *. (1. +. v_next)) in
    let den = 0. +. (1. *. (upstream -. e2)) in
    let cell = path.Path.stages.(j).Path.cell in
    let lo = Cell.min_cin cell in
    let hi = 4096. *. lo in
    let denom = den -. (a *. Cell.area cell ~cin:1.) in
    x.(j) <-
      (if denom <= 1e-12 then hi
       else
         let x2 = tau *. k_j *. num /. (2. *. denom) in
         Float.min hi (Float.max lo (sqrt x2)))
  done

let ref_solve ?(a = 0.) path =
  let step x =
    let y = ref_clamp path x in
    ref_sweep path ~a y;
    y
  in
  N.fixed_point ~tol:1e-6 ~max_iter:300 ~step ~distance:N.distance_inf
    (Path.min_sizing path)

(* --- the bitwise equivalence tests ---------------------------------- *)

let delay_circuits = List.map (fun p -> p.Profiles.name) Profiles.all
let solver_circuits = [ "fpd"; "c880"; "Adder16" ]

let test_delay_bitwise () =
  List.iter
    (fun name ->
      let base = profile_path name in
      List.iter
        (fun path ->
          List.iter
            (fun x ->
              let tag = Printf.sprintf "%s delay" name in
              check_bits tag (ref_delay path x) (Path.delay path x);
              let flipped =
                Path.with_input_edge path (Edge.flip path.Path.input_edge)
              in
              let d_own = ref_delay path x and d_flip = ref_delay flipped x in
              check_bits (name ^ " delay_worst")
                (Float.max d_own d_flip)
                (Path.delay_worst path x);
              let sc = Path.scratch () in
              Path.delay_both path sc x;
              check_bits (name ^ " delay_both own") d_own sc.Path.own;
              check_bits (name ^ " delay_both flip") d_flip sc.Path.flip)
            (sizings path))
        (variants_of base))
    delay_circuits

let test_flip_is_fresh_make () =
  List.iter
    (fun name ->
      let base = profile_path name in
      List.iter
        (fun path ->
          let flip_edge = Edge.flip path.Path.input_edge in
          let flipped = Path.with_input_edge path flip_edge in
          let fresh =
            Path.make ~opts:path.Path.opts ~input_slope:path.Path.input_slope
              ~input_edge:flip_edge ~drive_cin:path.Path.drive_cin
              ~tech:path.Path.tech ~c_out:path.Path.c_out
              (Array.to_list path.Path.stages)
          in
          Alcotest.(check bool)
            (name ^ ": flipped edges match fresh construction") true
            (flipped.Path.edges = fresh.Path.edges);
          List.iter
            (fun x ->
              check_bits (name ^ " flip delay")
                (Path.delay fresh x) (Path.delay flipped x);
              check_bits_arr (name ^ " flip gradient")
                (Path.gradient fresh x) (Path.gradient flipped x))
            (sizings path);
          (* flipping twice restores the original tables *)
          let back = Path.with_input_edge flipped path.Path.input_edge in
          List.iter
            (fun x ->
              check_bits (name ^ " double flip delay")
                (Path.delay path x) (Path.delay back x))
            (sizings path))
        (variants_of base))
    [ "fpd"; "c880" ]

let test_clamp_bitwise () =
  List.iter
    (fun name ->
      let path = profile_path name in
      List.iter
        (fun x ->
          let expected = ref_clamp path x in
          check_bits_arr (name ^ " clamp_sizing") expected (Path.clamp_sizing path x);
          let dst = Array.make (Path.length path) Float.nan in
          Path.clamp_into path x dst;
          check_bits_arr (name ^ " clamp_into") expected dst;
          (* in place *)
          let y = Array.copy x in
          Path.clamp_into path y y;
          check_bits_arr (name ^ " clamp_into in place") expected y)
        (sizings path))
    delay_circuits

let test_gradient_bitwise () =
  List.iter
    (fun name ->
      let base = profile_path name in
      List.iter
        (fun path ->
          List.iter
            (fun x ->
              let expected = ref_gradient path x in
              check_bits_arr (name ^ " gradient") expected (Path.gradient path x);
              let g = Array.make (Path.length path) Float.nan in
              Path.gradient_into path x g;
              check_bits_arr (name ^ " gradient_into") expected g)
            (sizings path))
        (variants_of base))
    delay_circuits

let test_solve_plain_bitwise () =
  List.iter
    (fun name ->
      let path = profile_path name in
      List.iter
        (fun a ->
          let x_ref, iters_ref = ref_solve ~a path in
          let x, stats = Sens.solve ~accel:false ~a path in
          check_bits_arr
            (Printf.sprintf "%s solve a=%g" name a)
            x_ref x;
          Alcotest.(check int)
            (Printf.sprintf "%s solve a=%g iterations" name a)
            iters_ref stats.Sens.iterations)
        [ 0.; -0.01; -1. ])
    solver_circuits

let test_accel_agrees_when_converged () =
  (* fpd converges well inside max_iter both ways; the accelerated
     result must satisfy the same residual contract and land on the
     same fixed point to solver tolerance *)
  let path = profile_path "fpd" in
  let x_plain, st_plain = Sens.solve ~accel:false path in
  let x_acc, st_acc = Sens.solve ~accel:true path in
  Alcotest.(check bool) "both converged" true
    (st_plain.Sens.iterations < 300 && st_acc.Sens.iterations < 300);
  Alcotest.(check bool) "acceleration does not slow convergence" true
    (st_acc.Sens.iterations <= st_plain.Sens.iterations);
  Alcotest.(check bool) "residual contract" true (st_acc.Sens.residual < 1e-6);
  Alcotest.(check bool) "same fixed point" true
    (N.distance_inf x_plain x_acc < 1e-4);
  check_bits "same delay to model resolution"
    (Float.round (Path.delay_worst path x_plain *. 1e6))
    (Float.round (Path.delay_worst path x_acc *. 1e6))

let test_solver_entry_points_unaffected () =
  (* the higher-level entry points run accelerated by default; their
     results must stay interchangeable with the plain ones *)
  let path = profile_path "c880" in
  let x_acc = Sens.solve_worst path in
  let x_plain = Sens.solve_worst ~accel:false path in
  let d_acc = Path.delay_worst path x_acc
  and d_plain = Path.delay_worst path x_plain in
  Alcotest.(check bool) "accelerated at least as optimal" true
    (d_acc <= d_plain +. 1e-3)

let test_uid_identity () =
  let path = profile_path "fpd" in
  let flipped = Path.with_input_edge path (Edge.flip path.Path.input_edge) in
  Alcotest.(check bool) "flip gets fresh uid" true
    (Path.uid path <> Path.uid flipped);
  Alcotest.(check bool) "no-op flip keeps uid" true
    (Path.uid (Path.with_input_edge path path.Path.input_edge) = Path.uid path);
  let other = profile_path "fpd" in
  Alcotest.(check bool) "fresh construction gets fresh uid" true
    (Path.uid path <> Path.uid other)

let test_bounds_cached () =
  let path = profile_path "fpd" in
  let b1 = Bounds.compute path in
  let b2 = Bounds.compute path in
  Alcotest.(check bool) "second compute is the cached record" true (b1 == b2);
  check_bits "tmin reads the cache" b1.Bounds.tmin (Bounds.tmin path);
  check_bits "tmax reads the cache" b1.Bounds.tmax (Bounds.tmax path);
  (* a flipped path is a different value: its bounds must not be
     served from the original's entry *)
  let flipped = Path.with_input_edge path (Edge.flip path.Path.input_edge) in
  let bf = Bounds.compute flipped in
  Alcotest.(check bool) "flip gets its own entry" true (not (bf == b1))

let test_bisect_roots () =
  let x = N.bisect ~tol:1e-14 ~f:cos ~lo:0. ~hi:3. () in
  Alcotest.(check bool) "cos root" true (Float.abs (x -. (Float.pi /. 2.)) < 1e-10);
  let x = N.bisect ~tol:1e-14 ~f:(fun x -> (2. *. x) -. 3.) ~lo:0. ~hi:10. () in
  Alcotest.(check bool) "linear root" true (Float.abs (x -. 1.5) < 1e-10);
  (* stiff curvature: regula falsi's stuck-endpoint mode; the bisection
     safeguard must keep the classic convergence *)
  let x = N.bisect ~tol:1e-12 ~f:(fun x -> (x ** 9.) -. 0.5) ~lo:0. ~hi:1. () in
  Alcotest.(check bool) "stiff root" true
    (Float.abs (x -. (0.5 ** (1. /. 9.))) < 1e-9);
  (* step discontinuity: no root of f, converges to the jump *)
  let x = N.bisect ~tol:1e-9 ~f:(fun x -> if x < 1. then -1. else 1.) ~lo:0. ~hi:2. () in
  Alcotest.(check bool) "discontinuity located" true (Float.abs (x -. 1.) < 1e-6);
  (* swapped bounds *)
  let x = N.bisect ~tol:1e-14 ~f:cos ~lo:3. ~hi:0. () in
  Alcotest.(check bool) "swapped bracket" true
    (Float.abs (x -. (Float.pi /. 2.)) < 1e-10);
  Alcotest.check_raises "no bracket"
    (N.No_bracket "bisect: f(1)=1, f(2)=4")
    (fun () -> ignore (N.bisect ~f:(fun x -> x *. x) ~lo:1. ~hi:2. ()))

let test_bisect_for_beta () =
  let path = profile_path "fpd" in
  let b = Bounds.compute path in
  let tc = 1.2 *. b.Bounds.tmin in
  (match Sens.bisect_for_beta ~beta:0.5 path ~tc with
  | None -> Alcotest.fail "feasible constraint returned None"
  | Some r ->
    Alcotest.(check bool) "meets constraint" true (r.Sens.delay <= tc);
    Alcotest.(check bool) "close to constraint (minimum area)" true
      (r.Sens.delay >= tc *. 0.99);
    Alcotest.(check bool) "cheaper than the a=0 sizing" true
      (r.Sens.area <= Path.area path (Sens.solve_beta ~beta:0.5 path)));
  (* infeasible for this weighting *)
  Alcotest.(check bool) "infeasible returns None" true
    (Sens.bisect_for_beta ~beta:0.5 path ~tc:(0.5 *. b.Bounds.tmin) = None)

(* a stray POPS_FAULT must not perturb this deterministic suite;
   fault behaviour is covered by pops_prop and test_core's ladder *)
let () = Pops_check.Fault.clear ()

let () =
  Alcotest.run "pops_kernel"
    [
      ( "kernel",
        [
          Alcotest.test_case "delay bitwise vs reference" `Quick test_delay_bitwise;
          Alcotest.test_case "clamp bitwise vs reference" `Quick test_clamp_bitwise;
          Alcotest.test_case "gradient bitwise vs reference" `Quick
            test_gradient_bitwise;
          Alcotest.test_case "polarity flip = fresh construction" `Quick
            test_flip_is_fresh_make;
          Alcotest.test_case "uid identity" `Quick test_uid_identity;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "plain solve bitwise vs reference fixed point" `Quick
            test_solve_plain_bitwise;
          Alcotest.test_case "acceleration agrees at convergence" `Quick
            test_accel_agrees_when_converged;
          Alcotest.test_case "entry points unaffected" `Quick
            test_solver_entry_points_unaffected;
          Alcotest.test_case "bounds memoized" `Quick test_bounds_cached;
          Alcotest.test_case "regula falsi roots" `Quick test_bisect_roots;
          Alcotest.test_case "constraint bisection" `Quick test_bisect_for_beta;
        ] );
    ]
