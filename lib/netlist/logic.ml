module Gk = Pops_cell.Gate_kind

let values_of_vector t inputs =
  let input_ids = Netlist.inputs t in
  if Array.length inputs <> List.length input_ids then
    invalid_arg "Logic.eval: input vector length mismatch";
  let values = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace values id inputs.(i)) input_ids;
  let order = Netlist.topological_order t in
  List.iter
    (fun id ->
      let n = Netlist.node t id in
      match n.Netlist.kind with
      | Netlist.Primary_input -> ()
      | Netlist.Cell kind ->
        let args = Array.map (Hashtbl.find values) n.Netlist.fanins in
        Hashtbl.replace values id (Gk.eval kind args))
    order;
  values

let eval t inputs =
  let values = values_of_vector t inputs in
  List.map (fun (id, _) -> (id, Hashtbl.find values id)) (Netlist.outputs t)

let word_of_kind kind (args : int64 array) =
  let land_all () = Array.fold_left Int64.logand Int64.minus_one args in
  let lor_all () = Array.fold_left Int64.logor Int64.zero args in
  match kind with
  | Gk.Inv -> Int64.lognot args.(0)
  | Gk.Buf -> args.(0)
  | Gk.Nand _ -> Int64.lognot (land_all ())
  | Gk.Nor _ -> Int64.lognot (lor_all ())
  | Gk.Aoi21 ->
    Int64.lognot (Int64.logor (Int64.logand args.(0) args.(1)) args.(2))
  | Gk.Oai21 ->
    Int64.lognot (Int64.logand (Int64.logor args.(0) args.(1)) args.(2))
  | Gk.Aoi22 ->
    Int64.lognot
      (Int64.logor (Int64.logand args.(0) args.(1)) (Int64.logand args.(2) args.(3)))
  | Gk.Oai22 ->
    Int64.lognot
      (Int64.logand (Int64.logor args.(0) args.(1)) (Int64.logor args.(2) args.(3)))
  | Gk.Xor2 -> Int64.logxor args.(0) args.(1)
  | Gk.Xnor2 -> Int64.lognot (Int64.logxor args.(0) args.(1))

let eval_packed t inputs =
  let input_ids = Netlist.inputs t in
  if Array.length inputs <> List.length input_ids then
    invalid_arg "Logic.eval_packed: input vector length mismatch";
  let values = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace values id inputs.(i)) input_ids;
  List.iter
    (fun id ->
      let n = Netlist.node t id in
      match n.Netlist.kind with
      | Netlist.Primary_input -> ()
      | Netlist.Cell kind ->
        let args = Array.map (Hashtbl.find values) n.Netlist.fanins in
        Hashtbl.replace values id (word_of_kind kind args))
    (Netlist.topological_order t);
  List.map (fun (id, _) -> (id, Hashtbl.find values id)) (Netlist.outputs t)

let eval_node t inputs id =
  let values = values_of_vector t inputs in
  match Hashtbl.find_opt values id with
  | Some v -> v
  | None -> invalid_arg "Logic.eval_node: unknown node"

let exhaustive_limit = 12

let vector_to_string v =
  String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list v))

let equivalent ?(vectors = 512) ?(seed = 0x5EEDL) a b =
  let n_in = Netlist.input_count a in
  if n_in <> Netlist.input_count b then Error "input counts differ"
  else if List.length (Netlist.outputs a) <> List.length (Netlist.outputs b) then
    Error "output counts differ"
  else begin
    (* compare 64 vectors per evaluation; on mismatch, name the first
       offending vector for diagnosis *)
    let check_words words =
      let oa = List.map snd (eval_packed a words)
      and ob = List.map snd (eval_packed b words) in
      let diff =
        List.fold_left2 (fun acc x y -> Int64.logor acc (Int64.logxor x y))
          Int64.zero oa ob
      in
      if diff = Int64.zero then Ok ()
      else begin
        (* find the lowest differing bit position *)
        let rec first_bit j =
          if Int64.logand (Int64.shift_right_logical diff j) 1L = 1L then j
          else first_bit (j + 1)
        in
        let j = first_bit 0 in
        let v =
          Array.init n_in (fun i ->
              Int64.logand (Int64.shift_right_logical words.(i) j) 1L = 1L)
        in
        Error (Printf.sprintf "mismatch on %s" (vector_to_string v))
      end
    in
    let rec check_all = function
      | [] -> Ok ()
      | w :: rest ->
        (match check_words w with Ok () -> check_all rest | Error _ as e -> e)
    in
    if n_in <= exhaustive_limit then begin
      (* exhaustive in packed chunks of 64 patterns *)
      let total = 1 lsl n_in in
      let chunks = (total + 63) / 64 in
      check_all
        (List.init chunks (fun c ->
             let base = c * 64 in
             Array.init n_in (fun i ->
                 let w = ref Int64.zero in
                 for j = 0 to 63 do
                   let pat = base + j in
                   if pat < total && pat land (1 lsl i) <> 0 then
                     w := Int64.logor !w (Int64.shift_left 1L j)
                 done;
                 !w)))
    end
    else begin
      let rng = Pops_util.Rng.create seed in
      let words = (vectors + 63) / 64 in
      check_all
        (List.init words (fun _ -> Array.init n_in (fun _ -> Pops_util.Rng.int64 rng)))
    end
  end

let probabilities t input_prob =
  let probs = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace probs id input_prob) (Netlist.inputs t);
  List.iter
    (fun id ->
      let n = Netlist.node t id in
      match n.Netlist.kind with
      | Netlist.Primary_input -> ()
      | Netlist.Cell kind ->
        let arity = Gk.arity kind in
        let fanin_p = Array.map (Hashtbl.find probs) n.Netlist.fanins in
        (* enumerate input combinations; arities are <= 4 so this is
           cheap and exact under the independence approximation *)
        let p = ref 0. in
        for pat = 0 to (1 lsl arity) - 1 do
          let args = Array.init arity (fun i -> pat land (1 lsl i) <> 0) in
          if Gk.eval kind args then begin
            let weight = ref 1. in
            Array.iteri
              (fun i b -> weight := !weight *. (if b then fanin_p.(i) else 1. -. fanin_p.(i)))
              args;
            p := !p +. !weight
          end
        done;
        Hashtbl.replace probs id !p)
    (Netlist.topological_order t);
  probs

let signal_probabilities t ?(input_prob = 0.5) () = probabilities t input_prob

let signal_probability t ?(input_prob = 0.5) id =
  ignore (Netlist.node t id);
  Hashtbl.find (probabilities t input_prob) id

let switching_activity t ?input_prob id =
  let p = signal_probability t ?input_prob id in
  2. *. p *. (1. -. p)

(* ------------------------------------------------------------------ *)
(* cone extraction and local equivalence                               *)
(* ------------------------------------------------------------------ *)

let cone_limit = 16

(* transitive fan-in set of [id], including [id] itself; explicit
   worklist so a million-gate-deep cone cannot overflow the stack *)
let cone_set t id =
  ignore (Netlist.node t id);
  let seen = Hashtbl.create 64 in
  let stack = ref [ id ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      stack := rest;
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        let n = Netlist.node t id in
        match n.Netlist.kind with
        | Netlist.Primary_input -> ()
        | Netlist.Cell _ ->
          Array.iter (fun f -> stack := f :: !stack) n.Netlist.fanins
      end
  done;
  seen

let cone_support t id =
  let seen = cone_set t id in
  Hashtbl.fold
    (fun i () acc ->
      match (Netlist.node t i).Netlist.kind with
      | Netlist.Primary_input -> i :: acc
      | Netlist.Cell _ -> acc)
    seen []
  |> List.sort compare

(* Truth table of node [id] over an explicit variable order [support]
   (primary-input ids; must cover the cone's own support).  Bit
   [p land 63] of word [p lsr 6] is the node value under assignment [p],
   where bit [i] of [p] is variable [support.(i)]. *)
let table_over t id support =
  let k = List.length support in
  let total = 1 lsl k in
  let words = (total + 63) / 64 in
  let cone = cone_set t id in
  let order = List.filter (Hashtbl.mem cone) (Netlist.topological_order t) in
  Array.init words (fun c ->
      let values = Hashtbl.create 64 in
      List.iteri
        (fun i pid ->
          let w = ref Int64.zero in
          for j = 0 to 63 do
            let pat = (c * 64) + j in
            if pat < total && pat land (1 lsl i) <> 0 then
              w := Int64.logor !w (Int64.shift_left 1L j)
          done;
          Hashtbl.replace values pid !w)
        support;
      List.iter
        (fun nid ->
          let n = Netlist.node t nid in
          match n.Netlist.kind with
          | Netlist.Primary_input ->
            if not (Hashtbl.mem values nid) then
              invalid_arg "Logic.cone_function: support does not cover the cone"
          | Netlist.Cell kind ->
            Hashtbl.replace values nid
              (word_of_kind kind (Array.map (Hashtbl.find values) n.Netlist.fanins)))
        order;
      let v = Hashtbl.find values id in
      let live = total - (c * 64) in
      if live >= 64 then v
      else Int64.logand v (Int64.sub (Int64.shift_left 1L live) 1L))

let cone_function t id =
  let support = cone_support t id in
  let k = List.length support in
  if k > cone_limit then
    invalid_arg
      (Printf.sprintf "Logic.cone_function: support %d exceeds cone_limit %d" k cone_limit);
  (support, table_over t id support)

let assignment_to_string k pat =
  String.init k (fun i -> if pat land (1 lsl i) <> 0 then '1' else '0')

let cone_equivalent a na b nb =
  if Netlist.input_count a <> Netlist.input_count b then Error "input counts differ"
  else begin
    (* supports are matched by primary-input *position*, so the check
       also works across structurally unrelated netlists *)
    let positions t =
      let tbl = Hashtbl.create 16 in
      List.iteri (fun i id -> Hashtbl.replace tbl id i) (Netlist.inputs t);
      tbl
    in
    let pos_a = positions a and pos_b = positions b in
    let sa = List.map (Hashtbl.find pos_a) (cone_support a na)
    and sb = List.map (Hashtbl.find pos_b) (cone_support b nb) in
    let support = List.sort_uniq compare (sa @ sb) in
    let k = List.length support in
    if k > cone_limit then
      Error (Printf.sprintf "union support %d exceeds cone_limit %d" k cone_limit)
    else begin
      let ins_a = Array.of_list (Netlist.inputs a)
      and ins_b = Array.of_list (Netlist.inputs b) in
      let ta = table_over a na (List.map (fun p -> ins_a.(p)) support)
      and tb = table_over b nb (List.map (fun p -> ins_b.(p)) support) in
      let result = ref (Ok ()) in
      (try
         Array.iteri
           (fun c wa ->
             let diff = Int64.logxor wa tb.(c) in
             if diff <> Int64.zero then begin
               let rec first_bit j =
                 if Int64.logand (Int64.shift_right_logical diff j) 1L = 1L then j
                 else first_bit (j + 1)
               in
               let pat = (c * 64) + first_bit 0 in
               result :=
                 Error
                   (Printf.sprintf "cones differ on assignment %s (input positions %s)"
                      (assignment_to_string k pat)
                      (String.concat "," (List.map string_of_int support)));
               raise Exit
             end)
           ta
       with Exit -> ());
      !result
    end
  end
