(** Mutable gate-level netlists.

    A netlist is a DAG of nodes: primary inputs and cell instances.  Each
    cell node carries its gate kind, ordered fan-ins, a per-input input
    capacitance (the sizing), and an extra wire capacitance on its
    output.  Primary outputs are designated nodes with a terminal load.

    The structure is mutable because the transforms (buffering,
    De Morgan) rewrite it in place; {!validate} re-checks the invariants
    after surgery and the logic/timing layers only consume validated
    netlists.

    The netlist maintains incremental caches so the timing hot path is
    cheap: per-node output loads ({!load_on} is O(1) on unchanged nets),
    per-node topological levels (patched locally by structural edits),
    and an append-only {e dirty log} of nodes whose local timing may have
    changed.  Observers ({!Pops_sta.Timing}) keep a cursor into the log
    via {!revision}/{!dirty_since} and re-propagate arrivals only from
    the logged nodes.  See [docs/performance.md] for the invalidation
    protocol. *)

type node_kind = Primary_input | Cell of Pops_cell.Gate_kind.t

type node = private {
  id : int;
  mutable kind : node_kind;
  mutable fanins : int array;  (** ordered; empty for inputs *)
  mutable fanouts : int list;  (** derived, kept consistent *)
  mutable cin : float;  (** input capacitance per input pin, fF *)
  mutable wire : float;  (** extra capacitance on the output net, fF *)
  mutable vt : Pops_process.Vt.t;
      (** threshold class of the instance; {!Pops_process.Vt.Lvt} for
          inputs and freshly built gates — mutate via {!set_vt} *)
}

type t

val create : Pops_process.Tech.t -> t
val tech : t -> Pops_process.Tech.t

val add_input : ?name:string -> t -> int
(** New primary input node; returns its id. *)

val add_gate : ?cin:float -> ?wire:float -> t -> Pops_cell.Gate_kind.t -> int array -> int
(** [add_gate t kind fanins] adds a cell node ([cin] defaults to the
    process minimum).
    @raise Invalid_argument on arity mismatch or unknown fan-in ids. *)

val set_output : t -> int -> load:float -> unit
(** Mark a node as primary output with the given terminal load (fF);
    calling again updates the load. *)

val node : t -> int -> node
(** @raise Invalid_argument on an unknown or deleted id. *)

val node_exists : t -> int -> bool

val inputs : t -> int list
(** Primary input ids in creation order. *)

val outputs : t -> (int * float) list
(** Primary output ids with terminal loads, in designation order. *)

val is_output : t -> int -> bool
(** O(1) test against the dense terminal-load mirror; false for unknown
    ids. *)

val gate_ids : t -> int list
(** All live cell-node ids, ascending. *)

val gate_count : t -> int
val input_count : t -> int

val set_cin : t -> int -> float -> unit
(** Resize a gate.  @raise Invalid_argument on inputs or bad sizes. *)

val set_wire : t -> int -> float -> unit
(** Set the extra wire capacitance on a node's output (fF, >= 0). *)

val set_fanin : t -> int -> pin:int -> int -> unit
(** Rewire one fan-in pin (fanout lists are updated). *)

val replace_kind : t -> int -> Pops_cell.Gate_kind.t -> unit
(** Change a gate's kind.  @raise Invalid_argument if the arity differs. *)

val set_vt : t -> int -> Pops_process.Vt.t -> unit
(** Change a gate's threshold class.  Non-structural (widths, loads and
    edges are untouched): only the gate's own stage delay and leakage
    change, so observers re-propagate just its forward cone.  No-op when
    the class is unchanged.  @raise Invalid_argument on inputs. *)

val vt_of : t -> int -> Pops_process.Vt.t
(** Threshold class of a node ({!Pops_process.Vt.Lvt} for inputs and
    freshly allocated gates). *)

val rewire_fanouts : t -> from_:int -> to_:int -> except:int list -> unit
(** Point every fan-out pin reading [from_] (except the listed consumer
    ids) at [to_]; primary-output designations on [from_] move too. *)

val delete_gate : t -> int -> unit
(** Remove a node with no fan-outs.
    @raise Invalid_argument if consumers remain or it is an output. *)

val topological_order : t -> int list
(** All live nodes, inputs first (cached; rebuilt from the level cache
    after structural edits).
    @raise Pops_robust.Diag.Fatal with a {!Pops_robust.Diag.Netlist_cycle}
    diagnostic naming the actual loop on a cyclic netlist. *)

val depth : t -> int
(** Longest input-to-output path in gate counts (cached alongside the
    level population; pure resizes keep it valid). *)

val count_level_ge : t -> int -> int
(** [count_level_ge t l] is the number of live nodes whose topological
    level is [>= l], in O(1) from a cached suffix-population table
    (rebuilt lazily after structural edits).  Observers use it to bound
    the worst-case fan-out cone of an edit at level [l]: on narrow, deep
    circuits the bound is tight and lets {!Pops_sta.Timing.update} trade
    its worklist for a straight-line sweep. *)

val level : t -> int -> int
(** Cached topological level of a node: 0 for primary inputs, one above
    the deepest fan-in for gates.  Every edge goes from a strictly lower
    to a strictly higher level, so processing nodes in level order is a
    valid propagation order.
    @raise Pops_robust.Diag.Fatal on a cycle (see {!topological_order}). *)

val load_on : t -> int -> float
(** Capacitive load on a node's output: fan-out input capacitances +
    wire + terminal load if it is a primary output.  Cached; mutators
    invalidate only the nets they touch and the value is recomputed (with
    the identical fold, so bit-identical) on the next query. *)

(** Flat compressed-sparse-row view of the netlist, the storage the
    timing hot path runs on.  All arrays are indexed either by node id
    (kind codes, sizes, loads, adjacency offsets) or by {e order index}
    (the (level, id)-sorted live-node permutation), so a propagation
    sweep touches only unboxed [int]/[float] arrays — no node records,
    no lists, no allocation.

    The snapshot is owned by the netlist and {e synced in place}: after
    pure scalar edits (sizes, wires, kinds, terminal loads) {!csr}
    refreshes only the dirtied entries from the dirty log; a structural
    edit (adding, rewiring or deleting nodes) triggers a full O(V + E)
    rebuild on the next call.  Do not hold a [Csr.t] across structural
    edits. *)
module Csr : sig
  type t

  val code_kinds : Pops_cell.Gate_kind.t array
  (** The cell kinds in kind-code order: [code_kinds.(code)] is the kind
      encoded as [code] in {!kind_code}. *)

  val code_of_kind : node_kind -> int
  (** The {!kind_code} encoding of one node kind: [-1] for primary
      inputs, [-2] for cells outside {!code_kinds} (per-kind coefficient
      tables index by this without a snapshot in hand). *)

  val bound : t -> int
  (** Exclusive id bound of the snapshot ({!Netlist.id_bound} at build). *)

  val length : t -> int
  (** Number of live nodes (the length of {!node_of}). *)

  val node_of : t -> int array
  (** Live ids sorted by (level, id) — the topological order. *)

  val pos : t -> int array
  (** By id: index into {!node_of}, [-1] for dead ids. *)

  val level_off : t -> int array
  (** Level [l] occupies {!node_of} indices [level_off.(l)] to
      [level_off.(l+1) - 1]; length [depth + 2]. *)

  val depth : t -> int

  val kind_code : t -> int array
  (** By id: [-1] for primary inputs, [-2] for cells outside
      {!code_kinds}, else an index into {!code_kinds}. *)

  val vt_code : t -> int array
  (** By id: {!Pops_process.Vt.to_int} of the node's threshold class
      (0 = LVT for inputs).  Scalar-synced like {!kind_code}. *)

  val cin : t -> float array
  (** By id: input capacitance per pin, fF. *)

  val load : t -> float array
  (** By id: {!Netlist.load_on} snapshot (bit-identical to the query). *)

  val fanin_off : t -> int array
  (** By id, length [bound + 1]: node [id]'s fan-ins are
      [fanin.(fanin_off.(id))] to [fanin.(fanin_off.(id+1) - 1)], in pin
      order. *)

  val fanin : t -> int array

  val fanout_off : t -> int array
  (** Like {!fanin_off} for the packed consumer array; entries follow the
      node's fanout-list order, so folds over them replay list folds
      bit-identically. *)

  val fanout : t -> int array

  val fanout_pins : t -> int array
  (** Parallel to {!fanout}: how many pins that consumer reads the net
      on. *)
end

val csr : t -> Csr.t
(** The current CSR snapshot, rebuilt or resynced as needed (see
    {!Csr}).  Levels are (re)computed first when stale.
    @raise Pops_robust.Diag.Fatal on a cyclic netlist (see
    {!topological_order}). *)

val revision : t -> int
(** Monotone edit counter: the current length of the dirty log.  Equal
    revisions mean no timing-relevant mutation happened in between. *)

val dirty_since : t -> int -> int list
(** [dirty_since t cursor] returns the ids logged by mutators since
    [cursor] (a previous {!revision} result), oldest first.  Ids may
    repeat and may refer to since-deleted nodes.
    @raise Invalid_argument on a cursor outside [0..revision t]. *)

val id_bound : t -> int
(** Exclusive upper bound on all node ids ever allocated (dense-array
    sizing for id-indexed observers). *)

val live_count : t -> int
(** Number of live nodes (inputs + gates). *)

val validate : t -> (unit, string) result
(** Full invariant check: arities, dangling ids, fanin/fanout symmetry,
    acyclicity, positive sizes.  Stops at the first violation. *)

val validate_diags : ?name:(int -> string) -> t -> Pops_robust.Diag.t list
(** The diagnostic validation pass behind {!validate}: reports {e every}
    violation — dangling references ([Netlist_dangling]), gates driving
    nothing that are not outputs ([Netlist_zero_fanout], a warning),
    non-positive input capacitances ([Netlist_bad_cin]) and
    combinational loops ([Netlist_cycle], message walking the actual
    cycle in signal-flow order) — instead of stopping at the first.
    Empty means valid (zero-fanout warnings excepted: they degrade
    quality, not correctness).  [name] renders node ids in messages;
    the CLI passes the .bench signal names. *)

val find_cycle : t -> int list option
(** One combinational loop in signal-flow order (each node drives the
    next, the last drives the first), or [None] on a DAG.  The probe
    behind cycle diagnostics; does not raise. *)

val kind_histogram : t -> (Pops_cell.Gate_kind.t * int) list
val total_area : t -> Pops_cell.Library.t -> float
(** Total transistor width [Sigma W] over all gates, um. *)

val total_leakage_area : t -> Pops_cell.Library.t -> float
(** Leakage-weighted width: each gate's [Sigma W] scaled by the
    subthreshold-leakage factor of its Vt class.  The fold runs in the
    same order as {!total_area}, so an all-LVT netlist (every factor
    exactly 1.0) weighs bit-identically to its plain area. *)

val copy : t -> t
(** Deep copy (transforms mutate; benchmarks compare variants). *)

val restore : t -> from:t -> unit
(** [restore t ~from] rewinds [t] in place to the state captured earlier
    by [copy t].  The edit history of [t] is kept and every node live on
    either side of the rewind is appended to it, so incremental observers
    holding a cursor ({!revision}/{!dirty_since}) resync on their next
    update instead of going stale.  [from] is not aliased: restoring
    twice from the same snapshot is fine. *)

val pp_stats : Format.formatter -> t -> unit
