module Gk = Pops_cell.Gate_kind

let insert_buffer ?cin1 ?cin2 t ~after =
  let b1 = Netlist.add_gate ?cin:cin1 t Gk.Inv [| after |] in
  let b2 = Netlist.add_gate ?cin:cin2 t Gk.Inv [| b1 |] in
  (* move all original consumers (and any output designation) to b2; the
     first buffer inverter keeps reading the original node *)
  Netlist.rewire_fanouts t ~from_:after ~to_:b2 ~except:[ b1 ];
  (b1, b2)

let insert_buffer_for ?cin1 ?cin2 t ~after ~only =
  let b1 = Netlist.add_gate ?cin:cin1 t Gk.Inv [| after |] in
  let b2 = Netlist.add_gate ?cin:cin2 t Gk.Inv [| b1 |] in
  List.iter
    (fun c ->
      let cn = Netlist.node t c in
      Array.iteri
        (fun pin f -> if f = after then Netlist.set_fanin t c ~pin b2)
        cn.Netlist.fanins)
    only;
  (b1, b2)

let de_morgan t id =
  let n = Netlist.node t id in
  match n.Netlist.kind with
  | Netlist.Primary_input -> Error "primary input"
  | Netlist.Cell kind -> (
    match Gk.de_morgan_dual kind with
    | None -> Error (Printf.sprintf "%s has no De Morgan dual" (Gk.name kind))
    | Some dual ->
      (* invert (or absorb) each fan-in *)
      Array.iteri
        (fun pin src ->
          let src_node = Netlist.node t src in
          let feeds_one_pin =
            Array.fold_left (fun c f -> if f = src then c + 1 else c) 0 n.Netlist.fanins
            = 1
          in
          let absorbable =
            match src_node.Netlist.kind with
            | Netlist.Cell Gk.Inv ->
              src_node.Netlist.fanouts = [ id ]
              (* an inverter wired to several pins of this gate must stay:
                 absorbing it at one pin would delete it out from under
                 the others *)
              && feeds_one_pin
              && not (List.mem_assoc src (Netlist.outputs t))
            | Netlist.Cell
                ( Gk.Buf | Gk.Nand _ | Gk.Nor _ | Gk.Aoi21 | Gk.Oai21 | Gk.Aoi22
                | Gk.Oai22 | Gk.Xor2 | Gk.Xnor2 )
            | Netlist.Primary_input -> false
          in
          if absorbable then begin
            (* skip the inverter: read its own source directly *)
            let upstream = src_node.Netlist.fanins.(0) in
            Netlist.set_fanin t id ~pin upstream;
            Netlist.delete_gate t src
          end
          else begin
            let inv = Netlist.add_gate t Gk.Inv [| src |] in
            Netlist.set_fanin t id ~pin inv
          end)
        n.Netlist.fanins;
      Netlist.replace_kind t id dual;
      (* output inverter restores the function; consumers move to it *)
      let out_inv = Netlist.add_gate t Gk.Inv [| id |] in
      Netlist.rewire_fanouts t ~from_:id ~to_:out_inv ~except:[ out_inv ];
      Ok out_inv)

let cleanup_inverter_pairs t =
  let removed = ref 0 in
  let is_inv id =
    match (Netlist.node t id).Netlist.kind with
    | Netlist.Cell Gk.Inv -> true
    | Netlist.Cell
        ( Gk.Buf | Gk.Nand _ | Gk.Nor _ | Gk.Aoi21 | Gk.Oai21 | Gk.Aoi22 | Gk.Oai22
        | Gk.Xor2 | Gk.Xnor2 )
    | Netlist.Primary_input -> false
  in
  let progress = ref true in
  while !progress do
    progress := false;
    let candidates =
      List.filter
        (fun id ->
          Netlist.node_exists t id && is_inv id
          && (not (List.mem_assoc id (Netlist.outputs t)))
          &&
          let src = (Netlist.node t id).Netlist.fanins.(0) in
          is_inv src)
        (Netlist.gate_ids t)
    in
    List.iter
      (fun second ->
        if Netlist.node_exists t second then begin
          let first = (Netlist.node t second).Netlist.fanins.(0) in
          if
            Netlist.node_exists t first && is_inv first
            && not (List.mem_assoc second (Netlist.outputs t))
          then begin
            let origin = (Netlist.node t first).Netlist.fanins.(0) in
            Netlist.rewire_fanouts t ~from_:second ~to_:origin ~except:[];
            if (Netlist.node t second).Netlist.fanouts = [] then begin
              Netlist.delete_gate t second;
              incr removed;
              if
                (Netlist.node t first).Netlist.fanouts = []
                && not (List.mem_assoc first (Netlist.outputs t))
              then begin
                Netlist.delete_gate t first;
                incr removed
              end;
              progress := true
            end
          end
        end)
      candidates
  done;
  !removed
