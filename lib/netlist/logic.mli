(** Logic evaluation and equivalence checking of netlists.

    Used to prove that structural transforms (buffering, De Morgan
    restructuring) preserve the circuit function: exhaustively for up to
    {!exhaustive_limit} primary inputs, by seeded random vectors beyond
    that. *)

val eval : Netlist.t -> bool array -> (int * bool) list
(** [eval t inputs] evaluates the netlist for one input vector (ordered
    as {!Netlist.inputs}); returns the primary-output values in
    designation order.
    @raise Invalid_argument if the vector length differs from the input
    count. *)

val eval_node : Netlist.t -> bool array -> int -> bool
(** Value of an arbitrary node under an input vector. *)

val eval_packed : Netlist.t -> int64 array -> (int * int64) list
(** Bit-parallel evaluation: input [i]'s 64 bits are 64 independent
    vectors, evaluated simultaneously with word-wide boolean algebra.
    Returns the primary outputs' packed values.  This is what
    {!equivalent} runs on — a 64x speedup over scalar evaluation. *)

val word_of_kind : Pops_cell.Gate_kind.t -> int64 array -> int64
(** The bit-parallel boolean function of a gate: the packed counterpart
    of {!Pops_cell.Gate_kind.eval}, applied to 64 vectors at once.
    Exposed for the property suite, which checks it bit-for-bit against
    the scalar evaluation. *)

val exhaustive_limit : int
(** Maximum input count for exhaustive equivalence (12). *)

(** {1 Logic cones}

    Local equivalence: instead of comparing whole netlists, compare the
    transitive fan-in cone of one node — the granularity at which the
    restructuring transforms operate. *)

val cone_limit : int
(** Maximum cone support for truth-table construction (16). *)

val cone_support : Netlist.t -> int -> int list
(** Primary-input ids in the transitive fan-in of a node, ascending.
    @raise Invalid_argument on an unknown id. *)

val cone_function : Netlist.t -> int -> int list * int64 array
(** [(support, table)]: the node's truth table over its sorted support,
    packed 64 assignments per word — bit [p land 63] of [table.(p lsr 6)]
    is the node's value under assignment [p], where bit [i] of [p]
    assigns [List.nth support i].  Tail bits beyond [2^k] are zero.
    @raise Invalid_argument if the support exceeds {!cone_limit}. *)

val cone_equivalent : Netlist.t -> int -> Netlist.t -> int -> (unit, string) result
(** [cone_equivalent a na b nb] compares the logic functions of two
    nodes' cones over the {e union} of their supports, matching primary
    inputs by position (so it works across independently built
    netlists).  The error names the first mismatching assignment.
    Returns [Error] (not an exception) when the union support exceeds
    {!cone_limit}. *)

val equivalent :
  ?vectors:int -> ?seed:int64 -> Netlist.t -> Netlist.t -> (unit, string) result
(** [equivalent a b] checks that both netlists compute the same function
    on the same number of inputs and outputs — exhaustively when the
    input count allows, otherwise with [vectors] (default 512) seeded
    random vectors.  The error message names the first mismatching
    vector. *)

val signal_probabilities :
  Netlist.t -> ?input_prob:float -> unit -> (int, float) Hashtbl.t
(** One forward propagation pass; the table maps every live node to its
    one-probability.  Use this instead of {!signal_probability} when
    querying many nodes. *)

val signal_probability : Netlist.t -> ?input_prob:float -> int -> float
(** [signal_probability t id] is the probability that node [id] is 1
    when every primary input is 1 with probability [input_prob]
    (default 0.5), computed by forward propagation under the standard
    independence approximation. *)

val switching_activity : Netlist.t -> ?input_prob:float -> int -> float
(** [2 p (1 - p)] for the node's signal probability — the expected
    transitions per cycle used by the power estimate. *)
