module Gk = Pops_cell.Gate_kind
module Rng = Pops_util.Rng

type profile = {
  name : string;
  path_gates : int;
  total_gates : int;
  out_load : float;
  side_load : float;
}

let make_profile ?total_gates ?(out_load = 60.) ?(side_load = 8.) ~name ~path_gates () =
  if path_gates < 2 then invalid_arg "Generator.make_profile: path_gates < 2";
  let total_gates = Option.value total_gates ~default:(3 * path_gates) in
  if total_gates < path_gates then invalid_arg "Generator.make_profile: total < path";
  { name; path_gates; total_gates; out_load; side_load }

(* spine gates are inverting so polarities alternate cleanly; the mix
   reflects a typical mapped ISCAS'85 circuit *)
let spine_mix =
  [|
    (Gk.Inv, 0.28);
    (Gk.Nand 2, 0.30);
    (Gk.Nor 2, 0.16);
    (Gk.Nand 3, 0.10);
    (Gk.Nor 3, 0.07);
    (Gk.Aoi21, 0.05);
    (Gk.Oai21, 0.04);
  |]

let side_mix =
  [|
    (Gk.Inv, 0.20);
    (Gk.Nand 2, 0.28);
    (Gk.Nor 2, 0.18);
    (Gk.Nand 3, 0.08);
    (Gk.Nor 3, 0.06);
    (Gk.Xor2, 0.08);
    (Gk.Xnor2, 0.04);
    (Gk.Aoi21, 0.04);
    (Gk.Oai21, 0.04);
  |]

let generate tech profile =
  let rng = Rng.of_string profile.name in
  let t = Netlist.create tech in
  let cmin = tech.Pops_process.Tech.cmin in
  let n_inputs = max 4 (profile.path_gates / 4) in
  let pis = Array.init n_inputs (fun _ -> Netlist.add_input t) in
  (* spine: pin 0 reads the previous spine node so depth is exactly the
     spine position; remaining pins read primary inputs only.  This keeps
     the bounded-path abstraction exact: sizing a spine gate never feeds
     back into another spine gate's load through a side pin (the paper's
     "may slow down adjacent upward paths" effect, which would force the
     iterative re-verification loop the protocol is designed to avoid). *)
  let spine = Array.make profile.path_gates (-1) in
  for i = 0 to profile.path_gates - 1 do
    let kind = Rng.weighted_pick rng spine_mix in
    let arity = Gk.arity kind in
    let prev = if i = 0 then pis.(0) else spine.(i - 1) in
    let other () = pis.(Rng.int rng n_inputs) in
    let fanins = Array.init arity (fun pin -> if pin = 0 then prev else other ()) in
    spine.(i) <- Netlist.add_gate t kind fanins
  done;
  Netlist.set_output t spine.(profile.path_gates - 1) ~load:profile.out_load;
  (* side gates: loads on the spine, sinks to primary outputs, no gate
     fan-outs -> they never extend the depth.  Real extracted circuits
     carry their reconvergent fan-out unevenly: a handful of hub nodes
     collect many consumers, so pick a few spine hubs and bias the side
     gates onto them with a heavy tail. *)
  let n_side = profile.total_gates - profile.path_gates in
  (* hubs live in the interior of the spine: the first stages are driven
     by the latch (fixed drive) and the last stage's consumers would
     deepen the circuit *)
  let last_attachable = max 1 (profile.path_gates - 2) in
  let hub_lo = min 2 (last_attachable - 1) in
  let n_hubs = max 1 (profile.path_gates / 6) in
  let hubs =
    Array.init n_hubs (fun _ ->
        spine.(hub_lo + Rng.int rng (max 1 (last_attachable - hub_lo))))
  in
  for _ = 1 to n_side do
    let kind = Rng.weighted_pick rng side_mix in
    let arity = Gk.arity kind in
    let pick_source () =
      let u = Rng.float rng 1. in
      if u < 0.30 then Rng.pick rng hubs
      else if u < 0.75 then begin
        let center = profile.path_gates / 2 in
        let spread = max 1 (profile.path_gates / 3) in
        let pos = center + Rng.int rng (2 * spread) - spread in
        spine.(Pops_util.Numerics.clamp ~lo:0.
                 ~hi:(float_of_int (last_attachable - 1))
                 (float_of_int pos)
               |> int_of_float)
      end
      else pis.(Rng.int rng n_inputs)
    in
    let fanins = Array.init arity (fun _ -> pick_source ()) in
    let side_cin = cmin *. Rng.log_range rng 1. (2. *. profile.side_load) in
    let g = Netlist.add_gate ~cin:side_cin t kind fanins in
    Netlist.set_output t g ~load:(cmin *. Rng.log_range rng 0.5 2.)
  done;
  (* routing capacitance: most spine nets are short, a few are long *)
  Array.iter
    (fun id ->
      if Rng.float rng 1. < 0.25 then
        Netlist.set_wire t id (cmin *. Rng.log_range rng 0.3 3.)
      else if Rng.float rng 1. < 0.08 then
        Netlist.set_wire t id (cmin *. Rng.log_range rng 4. 12.))
    spine;
  (match Netlist.validate t with
  | Ok () -> ()
  | Error msg -> failwith ("Generator.generate: " ^ msg));
  (t, Array.to_list spine)

(* ------------------------------------------------------------------ *)
(* full-chip scale profiles                                            *)
(* ------------------------------------------------------------------ *)

type scale_shape = Grid | Spine | Iscas

let scale_shape_name = function
  | Grid -> "grid"
  | Spine -> "spine"
  | Iscas -> "iscas"

(* layered datapath-like circuit: [depth ~ 3 log2 gates] layers of
   roughly equal width, every gate reading the previous layer.  All
   bookkeeping is per-gate constant work on dense arrays — no
   intermediate per-layer lists — so generation streams at any size. *)
let generate_grid tech ~name ~gates =
  let rng = Rng.of_string name in
  let t = Netlist.create tech in
  let log2 n =
    let r = ref 0 and v = ref n in
    while !v > 1 do
      incr r;
      v := !v / 2
    done;
    !r
  in
  let depth = max 8 (3 * log2 (max 2 gates)) in
  let width = max 4 (gates / depth) in
  let mix =
    [| (Gk.Inv, 0.22); (Gk.Nand 2, 0.34); (Gk.Nor 2, 0.22);
       (Gk.Nand 3, 0.12); (Gk.Nor 3, 0.10) |]
  in
  let prev = ref (Array.init width (fun _ -> Netlist.add_input t)) in
  let made = ref 0 in
  while !made < gates do
    let n_layer = min width (gates - !made) in
    let layer = Array.make n_layer (-1) in
    let src = !prev in
    let n_src = Array.length src in
    for j = 0 to n_layer - 1 do
      let kind = Rng.weighted_pick rng mix in
      let arity = Gk.arity kind in
      (* pin 0 strides across the layer so every source keeps at least a
         chance of a consumer; other pins are uniform *)
      let fanins =
        Array.init arity (fun pin ->
            if pin = 0 then src.(j mod n_src) else src.(Rng.int rng n_src))
      in
      layer.(j) <- Netlist.add_gate t kind fanins
    done;
    made := !made + n_layer;
    prev := layer
  done;
  (* every sink-less node becomes a primary output, so the circuit
     validates and timing sees a load at each endpoint *)
  let bound = Netlist.id_bound t in
  for id = 0 to bound - 1 do
    if
      Netlist.node_exists t id
      && (Netlist.node t id).Netlist.fanouts = []
      && (match (Netlist.node t id).Netlist.kind with
         | Netlist.Cell _ -> true
         | Netlist.Primary_input -> false)
    then Netlist.set_output t id ~load:(tech.Pops_process.Tech.cmin *. 4.)
  done;
  t

(* one maximally deep chain — the Stack_overflow stress shape: depth
   equals the gate count, so any depth-recursive traversal dies here
   long before a million gates *)
let generate_spine tech ~name ~gates =
  let rng = Rng.of_string name in
  let t = Netlist.create tech in
  let n_inputs = 8 in
  let pis = Array.init n_inputs (fun _ -> Netlist.add_input t) in
  let mix = [| (Gk.Inv, 0.40); (Gk.Nand 2, 0.35); (Gk.Nor 2, 0.25) |] in
  let prev = ref pis.(0) in
  for _ = 1 to gates do
    let kind = Rng.weighted_pick rng mix in
    let arity = Gk.arity kind in
    let fanins =
      Array.init arity (fun pin ->
          if pin = 0 then !prev else pis.(Rng.int rng n_inputs))
    in
    prev := Netlist.add_gate t kind fanins
  done;
  Netlist.set_output t !prev ~load:60.;
  t

let generate_scale tech ~name ~gates ~shape =
  if gates < 8 then invalid_arg "Generator.generate_scale: gates < 8";
  match shape with
  | Grid -> generate_grid tech ~name ~gates
  | Spine -> generate_spine tech ~name ~gates
  | Iscas ->
    (* the reference spine+side shape, spine depth capped so the bulk of
       the budget goes to side fan-out the way a mapped ISCAS circuit
       spends it *)
    let path_gates = max 16 (min 2048 (gates / 48)) in
    fst (generate tech (make_profile ~name ~path_gates ~total_gates:gates ()))

let scale_trajectory = [ 100_000; 500_000; 1_000_000 ]

module Diag = Pops_robust.Diag

let generate_o tech profile =
  match generate tech profile with
  | v -> Pops_robust.Outcome.Exact v
  | exception Invalid_argument msg ->
    Pops_robust.Outcome.Failed (Diag.make Diag.Invalid_input msg)
  | exception Diag.Fatal d -> Pops_robust.Outcome.Failed d
  | exception Failure msg ->
    Pops_robust.Outcome.Failed (Diag.make Diag.Internal msg)

let make_profile_r ?total_gates ?out_load ?side_load ~name ~path_gates () =
  match make_profile ?total_gates ?out_load ?side_load ~name ~path_gates () with
  | p -> Ok p
  | exception Invalid_argument msg ->
    Error (Diag.make Diag.Invalid_input msg ~hint:"path_gates must be >= 2 and <= total_gates")
