(** ISCAS [.bench] netlist format.

    The format the ISCAS'85/'89 benchmarks are distributed in:

    {v
    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)
    v}

    Reading maps the format onto the library's primitive cells:
    - [NOT]/[INV] → inverter, [BUFF]/[BUF] → buffer;
    - [NAND]/[NOR] up to 4 inputs map directly; wider gates are
      decomposed into balanced trees;
    - [AND]/[OR] become the inverting primitive plus an inverter;
    - [XOR]/[XNOR] map directly for 2 inputs, wider ones become trees;
    - [DFF] is split combinationally, as is conventional for these
      benchmarks: its output becomes a pseudo primary input, its input a
      pseudo primary output.

    A sizing annotation extension keeps gate sizes through round trips:
    a trailing [# cin=<fF>] on a gate line sets that gate's input
    capacitance, and {!to_string} emits it for non-minimum gates. *)

type names = (string * int) list
(** bench-file signal name → netlist node id (the id of the node that
    {e drives} the signal). *)

val parse : Pops_process.Tech.t -> ?out_load:float -> string ->
  (Netlist.t * names, string) result
(** Parse a [.bench] text.  [out_load] (default [4 * cmin], fF) is the
    terminal load attached to every [OUTPUT].  Errors carry a line
    number.  Thin wrapper over {!parse_o} rendering the diagnostic to
    the historical ["line N: message"] string. *)

val parse_diag : Pops_process.Tech.t -> ?out_load:float -> string ->
  (Netlist.t * names, Pops_robust.Diag.t) result
(** {!parse} with the structured diagnostic: [Bench_syntax] with a
    [line N] subject on malformed statements, [Bench_truncated] when the
    error sits on the last statement of the input with an unclosed call
    (a file cut off mid-gate), [Netlist_cycle] naming the actual
    combinational loop through the .bench signal names. *)

val parse_o : Pops_process.Tech.t -> ?out_load:float -> string ->
  (Netlist.t * names) Pops_robust.Outcome.t
(** {!parse_diag} as an {!Pops_robust.Outcome}: a netlist that parses
    but carries quality warnings from {!Netlist.validate_diags} (e.g.
    zero-fanout gates) comes back [Degraded] with those diagnostics
    attached. *)

val parse_file : Pops_process.Tech.t -> ?out_load:float -> string ->
  (Netlist.t * names, string) result

val parse_file_o : Pops_process.Tech.t -> ?out_load:float -> string ->
  (Netlist.t * names) Pops_robust.Outcome.t
(** {!parse_o} on a file; an unreadable path is [Failed] with an
    [Invalid_input] diagnostic instead of a raised [Sys_error]. *)

val to_string : ?names:names -> Netlist.t -> string
(** Print a netlist in [.bench] syntax.  [names] (as returned by
    {!parse}) preserves signal names; unnamed nodes get [n<id>].
    AOI21/OAI21 are printed as the extension operators [AOI21]/[OAI21],
    which {!parse} accepts back — round trips preserve structure,
    sizing and wire annotations. *)

val write_file : ?names:names -> Netlist.t -> string -> unit
