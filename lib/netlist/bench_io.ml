module Gk = Pops_cell.Gate_kind
module Diag = Pops_robust.Diag
module Watch = Pops_robust.Watch
module Fault = Pops_robust.Fault

type names = (string * int) list

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

type statement =
  | S_input of string
  | S_output of string
  | S_gate of string * string * string list * float option * float option
      (* target, op, args, cin annotation, wire annotation *)

let trim = String.trim
let line_subject lineno = Printf.sprintf "line %d" lineno

let parse_annotations comment =
  (* "# cin=5.6 wire=1.2" -> (Some 5.6, Some 1.2) *)
  let tokens = String.split_on_char ' ' comment |> List.map trim in
  let find key =
    List.find_map
      (fun tok ->
        let prefix = key ^ "=" in
        if String.length tok > String.length prefix
           && String.sub tok 0 (String.length prefix) = prefix
        then
          float_of_string_opt
            (String.sub tok (String.length prefix)
               (String.length tok - String.length prefix))
        else None)
      tokens
  in
  (find "cin", find "wire")

let parse_call s =
  (* "NAND(a, b)" -> ("NAND", ["a"; "b"]) *)
  match String.index_opt s '(' with
  | None -> None
  | Some i ->
    let op = trim (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.rindex_opt rest ')' with
    | None -> None
    | Some j ->
      let args_str = String.sub rest 0 j in
      let args =
        if trim args_str = "" then []
        else String.split_on_char ',' args_str |> List.map trim
      in
      Some (String.uppercase_ascii op, args))

let parse_line lineno line =
  let code, comment =
    match String.index_opt line '#' with
    | Some i ->
      (String.sub line 0 i, String.sub line i (String.length line - i))
    | None -> (line, "")
  in
  let code = trim code in
  if code = "" then Ok None
  else
    let fail msg =
      Error (Diag.makef Diag.Bench_syntax ~subject:(line_subject lineno) "%s" msg)
    in
    match String.index_opt code '=' with
    | None -> (
      match parse_call code with
      | Some ("INPUT", [ name ]) -> Ok (Some (S_input name))
      | Some ("OUTPUT", [ name ]) -> Ok (Some (S_output name))
      | Some (("INPUT" | "OUTPUT"), _) -> fail "INPUT/OUTPUT take one signal"
      | Some (op, _) -> fail (Printf.sprintf "unknown statement %s" op)
      | None -> fail "expected INPUT(..), OUTPUT(..) or a gate assignment")
    | Some i -> (
      let target = trim (String.sub code 0 i) in
      let rhs = trim (String.sub code (i + 1) (String.length code - i - 1)) in
      if target = "" then fail "empty target signal"
      else
        match parse_call rhs with
        | None -> fail "expected OP(arg, ...) on the right-hand side"
        | Some (op, args) ->
          let cin, wire = parse_annotations comment in
          Ok (Some (S_gate (target, op, args, cin, wire))))

(* gate construction with tree decomposition for wide fan-in *)
let rec build_nand t args =
  match List.length args with
  | 0 -> Error "NAND with no inputs"
  | 1 -> Ok (Netlist.add_gate t Gk.Inv [| List.hd args |])
  | n when n <= 4 -> Ok (Netlist.add_gate t (Gk.Nand n) (Array.of_list args))
  | n ->
    let left, right = (List.filteri (fun i _ -> i < n / 2) args,
                       List.filteri (fun i _ -> i >= n / 2) args) in
    Result.bind (build_and t left) (fun a ->
        Result.bind (build_and t right) (fun b ->
            Ok (Netlist.add_gate t (Gk.Nand 2) [| a; b |])))

and build_and t args =
  match args with
  | [ single ] -> Ok single
  | _ -> Result.map (fun g -> Netlist.add_gate t Gk.Inv [| g |]) (build_nand t args)

let rec build_nor t args =
  match List.length args with
  | 0 -> Error "NOR with no inputs"
  | 1 -> Ok (Netlist.add_gate t Gk.Inv [| List.hd args |])
  | n when n <= 4 -> Ok (Netlist.add_gate t (Gk.Nor n) (Array.of_list args))
  | n ->
    let left, right = (List.filteri (fun i _ -> i < n / 2) args,
                       List.filteri (fun i _ -> i >= n / 2) args) in
    Result.bind (build_or t left) (fun a ->
        Result.bind (build_or t right) (fun b ->
            Ok (Netlist.add_gate t (Gk.Nor 2) [| a; b |])))

and build_or t args =
  match args with
  | [ single ] -> Ok single
  | _ -> Result.map (fun g -> Netlist.add_gate t Gk.Inv [| g |]) (build_nor t args)

let build_xor t args =
  match args with
  | [] -> Error "XOR with no inputs"
  | first :: rest ->
    Ok (List.fold_left (fun acc a -> Netlist.add_gate t Gk.Xor2 [| acc; a |]) first rest)

let build_gate t op args =
  match (op, args) with
  | ("NOT" | "INV"), [ a ] -> Ok (Netlist.add_gate t Gk.Inv [| a |])
  | ("NOT" | "INV"), _ -> Error "NOT takes one input"
  | ("BUF" | "BUFF"), [ a ] -> Ok (Netlist.add_gate t Gk.Buf [| a |])
  | ("BUF" | "BUFF"), _ -> Error "BUFF takes one input"
  | "NAND", args -> build_nand t args
  | "AND", args -> (
    match args with
    | [ _ ] -> Result.map (fun g -> g) (build_and t args)
    | _ -> Result.bind (build_nand t args) (fun g -> Ok (Netlist.add_gate t Gk.Inv [| g |])))
  | "NOR", args -> build_nor t args
  | "OR", args -> (
    match args with
    | [ _ ] -> build_or t args
    | _ -> Result.bind (build_nor t args) (fun g -> Ok (Netlist.add_gate t Gk.Inv [| g |])))
  | "XOR", ([ _; _ ] as args) -> Ok (Netlist.add_gate t Gk.Xor2 (Array.of_list args))
  | "XOR", args -> build_xor t args
  | "XNOR", ([ _; _ ] as args) -> Ok (Netlist.add_gate t Gk.Xnor2 (Array.of_list args))
  | "XNOR", args ->
    Result.map (fun g -> Netlist.add_gate t Gk.Inv [| g |]) (build_xor t args)
  | "AOI21", [ a; b; c ] -> Ok (Netlist.add_gate t Gk.Aoi21 [| a; b; c |])
  | "OAI21", [ a; b; c ] -> Ok (Netlist.add_gate t Gk.Oai21 [| a; b; c |])
  | "AOI22", [ a; b; c; d ] -> Ok (Netlist.add_gate t Gk.Aoi22 [| a; b; c; d |])
  | "OAI22", [ a; b; c; d ] -> Ok (Netlist.add_gate t Gk.Oai22 [| a; b; c; d |])
  | op, _ -> Error (Printf.sprintf "unsupported gate %s" op)

(* an error on the last statement-bearing line of the input, on a line
   with an unclosed call or dangling [=]/[,], is a truncated file rather
   than a typo — give it the dedicated code and hint *)
let looks_truncated line rest =
  let code =
    match String.index_opt line '#' with
    | Some i -> trim (String.sub line 0 i)
    | None -> trim line
  in
  let only_blank =
    List.for_all
      (fun l ->
        let c =
          match String.index_opt l '#' with
          | Some i -> String.sub l 0 i
          | None -> l
        in
        trim c = "")
      rest
  in
  let opens = ref 0 and closes = ref 0 in
  String.iter
    (fun c ->
      if c = '(' then incr opens else if c = ')' then incr closes)
    code;
  let n = String.length code in
  only_blank
  && (!opens > !closes
     || (n > 0 && (code.[n - 1] = '=' || code.[n - 1] = ',')))

let parse_diag tech ?out_load text =
  let out_load =
    Option.value out_load ~default:(4. *. tech.Pops_process.Tech.cmin)
  in
  let text =
    (* deterministic fault: drop the tail of the input mid-statement *)
    if Fault.fire "bench.truncate" && String.length text > 1 then begin
      Watch.emit
        (Diag.make Diag.Fault_injected ~severity:Diag.Info
           ~subject:"bench.truncate" "input truncated (fault injection)");
      String.sub text 0 (String.length text * 2 / 3)
    end
    else text
  in
  let lines = String.split_on_char '\n' text in
  (* first pass: collect statements *)
  let rec collect lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Error d ->
        Error
          (if looks_truncated line rest then
             Diag.makef ?subject:d.Diag.subject Diag.Bench_truncated "%s"
               d.Diag.message
           else d)
      | Ok None -> collect (lineno + 1) acc rest
      | Ok (Some s) -> collect (lineno + 1) ((lineno, s) :: acc) rest)
  in
  match collect 1 [] lines with
  | Error e -> Error e
  | Ok statements ->
    let t = Netlist.create tech in
    let table : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let define name id lineno =
      if Hashtbl.mem table name then
        Error
          (Diag.makef Diag.Bench_syntax ~subject:(line_subject lineno)
             "%s defined twice" name)
      else begin
        Hashtbl.replace table name id;
        Ok ()
      end
    in
    (* inputs and DFF outputs become sources immediately *)
    let sources_result =
      List.fold_left
        (fun acc (lineno, s) ->
          Result.bind acc (fun () ->
              match s with
              | S_input name -> define name (Netlist.add_input t) lineno
              | S_gate (target, "DFF", _, _, _) ->
                (* conventional combinational split: DFF output = pseudo PI *)
                define target (Netlist.add_input t) lineno
              | S_output _ | S_gate _ -> Ok ()))
        (Ok ()) statements
    in
    (* gates: iterate until all resolvable lines are built (bench files
       may reference signals defined later) *)
    let gates =
      List.filter_map
        (fun (lineno, s) ->
          match s with
          | S_gate (target, op, args, cin, wire) when op <> "DFF" ->
            Some (lineno, target, op, args, cin, wire)
          | S_gate _ | S_input _ | S_output _ -> None)
        statements
    in
    let build_ready () =
      let pending = ref gates and progress = ref true and err = ref None in
      while !progress && !err = None && !pending <> [] do
        progress := false;
        let still = ref [] in
        List.iter
          (fun ((lineno, target, op, args, cin, wire) as g) ->
            if !err <> None then still := g :: !still
            else if List.for_all (Hashtbl.mem table) args then begin
              let arg_ids = List.map (Hashtbl.find table) args in
              match build_gate t op arg_ids with
              | Error msg ->
                err :=
                  Some
                    (Diag.makef Diag.Bench_syntax ~subject:(line_subject lineno)
                       "%s" msg)
              | Ok id -> (
                (match cin with Some c -> Netlist.set_cin t id c | None -> ());
                (match wire with Some w -> Netlist.set_wire t id w | None -> ());
                match define target id lineno with
                | Error d -> err := Some d
                | Ok () -> progress := true)
            end
            else still := g :: !still)
          !pending;
        pending := List.rev !still
      done;
      let missing_of args =
        List.filter (fun a -> not (Hashtbl.mem table a)) args
      in
      let undefined lineno target missing =
        Diag.makef Diag.Bench_syntax ~subject:(line_subject lineno)
          "%s depends on undefined signal(s) %s" target
          (String.concat ", " missing)
      in
      match (!err, !pending) with
      | Some e, _ -> Error e
      | None, [] -> Ok ()
      | None, ((lineno0, target0, _, args0, _, _) :: _ as stuck) -> (
        (* a stalled build whose missing signals are all themselves stuck
           targets is a combinational loop, not an undefined signal —
           walk the dependency chain and name the actual cycle *)
        let gate_of name =
          List.find_opt (fun (_, tgt, _, _, _, _) -> tgt = name) stuck
        in
        let stuck_target name = gate_of name <> None in
        let missing0 = missing_of args0 in
        match List.find_opt (fun a -> not (stuck_target a)) missing0 with
        | Some _ -> Error (undefined lineno0 target0 missing0)
        | None ->
          let rec walk trail name =
            if List.mem name trail then
              let rec take acc = function
                | [] -> acc
                | x :: rest ->
                  if x = name then name :: acc else take (x :: acc) rest
              in
              (* the walk followed dependencies (upstream); reversed it
                 reads in signal-flow order *)
              let cycle = List.rev (take [] trail) in
              let lineno =
                match gate_of name with
                | Some (l, _, _, _, _, _) -> l
                | None -> lineno0
              in
              Error
                (Diag.makef Diag.Netlist_cycle ~subject:(line_subject lineno)
                   "combinational cycle: %s"
                   (String.concat " -> " (cycle @ [ List.hd cycle ])))
            else
              match gate_of name with
              | None -> Error (undefined lineno0 target0 missing0)
              | Some (l, tgt, _, args, _, _) -> (
                let missing = missing_of args in
                match List.find_opt stuck_target missing with
                | Some next -> walk (name :: trail) next
                | None -> Error (undefined l tgt missing))
          in
          walk [] target0)
    in
    let outputs_result () =
      List.fold_left
        (fun acc (lineno, s) ->
          Result.bind acc (fun () ->
              match s with
              | S_output name -> (
                match Hashtbl.find_opt table name with
                | Some id ->
                  Netlist.set_output t id ~load:out_load;
                  Ok ()
                | None ->
                  Error
                    (Diag.makef Diag.Bench_syntax ~subject:(line_subject lineno)
                       "OUTPUT(%s) never defined" name))
              | S_gate (_, "DFF", [ d ], _, _) -> (
                (* the DFF input is a pseudo primary output *)
                match Hashtbl.find_opt table d with
                | Some id ->
                  Netlist.set_output t id ~load:out_load;
                  Ok ()
                | None ->
                  Error
                    (Diag.makef Diag.Bench_syntax ~subject:(line_subject lineno)
                       "DFF input %s undefined" d))
              | S_gate (_, "DFF", _, _, _) ->
                Error
                  (Diag.makef Diag.Bench_syntax ~subject:(line_subject lineno)
                     "DFF takes one input")
              | S_input _ | S_gate _ -> Ok ()))
        (Ok ()) statements
    in
    Result.bind sources_result (fun () ->
        Result.bind (build_ready ()) (fun () ->
            Result.bind (outputs_result ()) (fun () ->
                match Netlist.validate t with
                | Ok () ->
                  let names = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
                  Ok (t, List.sort compare names)
                | Error msg ->
                  Error
                    (Diag.makef Diag.Internal
                       "invalid netlist after parse: %s" msg))))

(* render a diagnostic exactly as the historical string errors read:
   ["line N: message"] with a subject, bare message without *)
let render_diag d =
  match d.Diag.subject with
  | Some s -> s ^ ": " ^ d.Diag.message
  | None -> d.Diag.message

let parse tech ?out_load text =
  Result.map_error render_diag (parse_diag tech ?out_load text)

let name_fn names =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, id) -> Hashtbl.replace tbl id name) names;
  fun id ->
    match Hashtbl.find_opt tbl id with
    | Some n -> n
    | None -> Printf.sprintf "n%d" id

let parse_o tech ?out_load text =
  match parse_diag tech ?out_load text with
  | Ok (t, names) ->
    (* the structural invariants passed ([Netlist.validate] ran inside
       the parse); surface quality warnings — zero-fanout gates and
       friends — as a degradation instead of hiding them *)
    let warnings = Netlist.validate_diags ~name:(name_fn names) t in
    Pops_robust.Outcome.make (t, names) warnings
  | Error d -> Pops_robust.Outcome.Failed d
  | exception Diag.Fatal d -> Pops_robust.Outcome.Failed d
  | exception e ->
    Pops_robust.Outcome.Failed
      (Diag.makef Diag.Internal "Bench_io.parse raised: %s"
         (Printexc.to_string e))

let parse_file tech ?out_load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse tech ?out_load text
  | exception Sys_error msg -> Error msg

let parse_file_o tech ?out_load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_o tech ?out_load text
  | exception Sys_error msg ->
    Pops_robust.Outcome.Failed
      (Diag.make Diag.Invalid_input msg
         ~hint:"check the .bench path and permissions")

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let to_string ?(names = []) t =
  let cmin = (Netlist.tech t).Pops_process.Tech.cmin in
  let name_of_tbl = Hashtbl.create 64 in
  List.iter (fun (name, id) -> Hashtbl.replace name_of_tbl id name) names;
  let name_of id =
    match Hashtbl.find_opt name_of_tbl id with
    | Some n -> n
    | None -> Printf.sprintf "n%d" id
  in
  let buf = Buffer.create 1024 in
  let annotations n =
    let parts = ref [] in
    if n.Netlist.wire > 1e-9 then
      parts := Printf.sprintf "wire=%.3f" n.Netlist.wire :: !parts;
    if Float.abs (n.Netlist.cin -. cmin) > 1e-9 then
      parts := Printf.sprintf "cin=%.3f" n.Netlist.cin :: !parts;
    if !parts = [] then "" else " # " ^ String.concat " " !parts
  in
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (name_of id)))
    (Netlist.inputs t);
  List.iter
    (fun (id, _) -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (name_of id)))
    (Netlist.outputs t);
  List.iter
    (fun id ->
      let n = Netlist.node t id in
      match n.Netlist.kind with
      | Netlist.Primary_input -> ()
      | Netlist.Cell kind ->
        let args = Array.to_list (Array.map name_of n.Netlist.fanins) in
        let line op = Printf.sprintf "%s = %s(%s)%s\n" (name_of id) op
            (String.concat ", " args) (annotations n) in
        (match kind with
        | Gk.Inv -> Buffer.add_string buf (line "NOT")
        | Gk.Buf -> Buffer.add_string buf (line "BUFF")
        | Gk.Nand _ -> Buffer.add_string buf (line "NAND")
        | Gk.Nor _ -> Buffer.add_string buf (line "NOR")
        | Gk.Xor2 -> Buffer.add_string buf (line "XOR")
        | Gk.Xnor2 -> Buffer.add_string buf (line "XNOR")
        | Gk.Aoi21 -> Buffer.add_string buf (line "AOI21")
        | Gk.Oai21 -> Buffer.add_string buf (line "OAI21")
        | Gk.Aoi22 -> Buffer.add_string buf (line "AOI22")
        | Gk.Oai22 -> Buffer.add_string buf (line "OAI22")))
    (List.filter
       (fun id ->
         match (Netlist.node t id).Netlist.kind with
         | Netlist.Cell _ -> true
         | Netlist.Primary_input -> false)
       (Netlist.topological_order t));
  Buffer.contents buf

let write_file ?names t path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ?names t))
