module Gk = Pops_cell.Gate_kind
module Diag = Pops_robust.Diag

type node_kind = Primary_input | Cell of Gk.t

type node = {
  id : int;
  mutable kind : node_kind;
  mutable fanins : int array;
  mutable fanouts : int list;
  mutable cin : float;
  mutable wire : float;
  mutable vt : Pops_process.Vt.t;
      (* threshold class of the cell instance; Lvt for primary inputs *)
}

(* Incremental caches.

   [load_cache] memoises {!load_on} per node: a mutator that changes what
   a net drives invalidates (sets to nan) only the touched nets, and the
   next query recomputes the value with exactly the same fold as a cold
   computation — so cached and from-scratch loads are bit-identical and
   never drift.

   [level] caches each node's topological level (inputs at 0, a gate one
   above its deepest fan-in).  Structural mutators patch levels locally
   by re-propagating over the touched fan-out cone; a suspected cycle
   (level exceeding the live-node count) defers to a full Kahn rebuild,
   which is also what reports cycles.  [topo_cache] is a by-level order
   derived from the levels, invalidated on structural edits.

   [dirty_log] is an append-only log of node ids whose local timing
   (own delay or driving load) may have changed; observers such as
   [Pops_sta.Timing] keep a cursor into it and re-propagate only from the
   logged nodes (see docs/performance.md). *)
type csr = {
  c_bound : int;  (* id bound at snapshot build *)
  c_n : int;  (* live node count *)
  c_node_of : int array;  (* c_n entries, (level, id)-sorted *)
  c_pos : int array;  (* by id: index into c_node_of, -1 for dead ids *)
  c_level_off : int array;
      (* level l occupies c_node_of indices
         [c_level_off.(l), c_level_off.(l+1)); length depth + 2 *)
  c_kind_code : int array;  (* by id: -1 input, -2 unknown cell, else 0..13 *)
  c_vt : int array;  (* by id: Vt.to_int of the node's threshold class *)
  c_cin : float array;  (* by id *)
  c_load : float array;  (* by id: load_on snapshot *)
  c_fanin_off : int array;  (* by id, length c_bound + 1 *)
  c_fanin : int array;  (* packed fan-in ids in pin order *)
  c_fanout_off : int array;
  c_fanout : int array;  (* consumer ids, fanout-list order *)
  c_fanout_pins : int array;  (* pins the consumer reads this net on *)
}

type t = {
  tech : Pops_process.Tech.t;
  mutable nodes : node option array;
  mutable next_id : int;
  mutable input_ids : int list;  (* reversed *)
  mutable output_loads : (int * float) list;  (* reversed designation order *)
  mutable out_load : float array;
      (* dense terminal loads, nan = not an output; mirrors
         [output_loads] so {!load_on} and {!set_output} stay O(1) on
         designs with hundreds of thousands of outputs *)
  mutable load_cache : float array;  (* nan = stale *)
  mutable level : int array;
  mutable levels_valid : bool;
  mutable topo_cache : int list option;
  mutable level_counts : int array option;
      (* suffix population: [counts.(l)] = live nodes at level >= l;
         length depth + 2 (so the last entry is 0).  Rebuilt with the
         topo cache; pure resizes keep it valid. *)
  mutable n_live : int;
  mutable n_gates : int;
  mutable dirty_log : int array;
  mutable dirty_len : int;
  mutable struct_rev : int;
      (* bumped on every structural edit (alloc/rewire/delete/restore);
         equal revisions mean the id set, edges and levels are unchanged *)
  mutable csr_cache : csr option;
  mutable csr_struct_rev : int;  (* struct_rev the cache was built at *)
  mutable csr_cursor : int;  (* dirty-log position the cache is synced to *)
}

let create tech =
  {
    tech;
    nodes = Array.make 64 None;
    next_id = 0;
    input_ids = [];
    output_loads = [];
    out_load = Array.make 64 Float.nan;
    load_cache = Array.make 64 Float.nan;
    level = Array.make 64 0;
    levels_valid = true;
    topo_cache = Some [];
    level_counts = None;
    n_live = 0;
    n_gates = 0;
    dirty_log = Array.make 64 0;
    dirty_len = 0;
    struct_rev = 0;
    csr_cache = None;
    csr_struct_rev = -1;
    csr_cursor = 0;
  }

let tech t = t.tech
let id_bound t = t.next_id
let live_count t = t.n_live

let grow t =
  if t.next_id >= Array.length t.nodes then begin
    let cap = 2 * Array.length t.nodes in
    let bigger = Array.make cap None in
    Array.blit t.nodes 0 bigger 0 (Array.length t.nodes);
    t.nodes <- bigger;
    let loads = Array.make cap Float.nan in
    Array.blit t.load_cache 0 loads 0 (Array.length t.load_cache);
    t.load_cache <- loads;
    let outs = Array.make cap Float.nan in
    Array.blit t.out_load 0 outs 0 (Array.length t.out_load);
    t.out_load <- outs;
    let levels = Array.make cap 0 in
    Array.blit t.level 0 levels 0 (Array.length t.level);
    t.level <- levels
  end

let node_exists t id = id >= 0 && id < t.next_id && t.nodes.(id) <> None

let node t id =
  if not (node_exists t id) then
    invalid_arg (Printf.sprintf "Netlist.node: unknown id %d" id);
  match t.nodes.(id) with Some n -> n | None -> assert false

(* --- dirty log ------------------------------------------------------ *)

let revision t = t.dirty_len

let mark_dirty t id =
  if t.dirty_len >= Array.length t.dirty_log then begin
    let bigger = Array.make (2 * Array.length t.dirty_log) 0 in
    Array.blit t.dirty_log 0 bigger 0 t.dirty_len;
    t.dirty_log <- bigger
  end;
  t.dirty_log.(t.dirty_len) <- id;
  t.dirty_len <- t.dirty_len + 1

let dirty_since t cursor =
  if cursor < 0 || cursor > t.dirty_len then
    invalid_arg "Netlist.dirty_since: bad cursor";
  let acc = ref [] in
  for i = t.dirty_len - 1 downto cursor do
    acc := t.dirty_log.(i) :: !acc
  done;
  !acc

let invalidate_load t id = if id < t.next_id then t.load_cache.(id) <- Float.nan

(* mark every distinct fan-in source of [n]: their driven load changed *)
let touch_fanin_loads t (n : node) =
  Array.iteri
    (fun i f ->
      let dup = ref false in
      for j = 0 to i - 1 do
        if n.fanins.(j) = f then dup := true
      done;
      if not !dup then begin
        invalidate_load t f;
        mark_dirty t f
      end)
    n.fanins

(* --- levels and order ----------------------------------------------- *)

let live_ids t =
  let acc = ref [] in
  for id = t.next_id - 1 downto 0 do
    if t.nodes.(id) <> None then acc := id :: !acc
  done;
  !acc

(* Kahn residual: nodes never reaching indegree 0 sit on or downstream
   of a combinational loop.  Walking fan-ins restricted to those nodes
   must revisit one — that revisit is an actual cycle, reported in
   signal-flow order so the user can follow the loop driver to driver. *)
let find_cycle t =
  let indegree = Array.make (max 1 t.next_id) 0 in
  let ids = live_ids t in
  List.iter
    (fun id ->
      let n = node t id in
      let deg = ref 0 in
      Array.iteri
        (fun i f ->
          if node_exists t f then begin
            let dup = ref false in
            for j = 0 to i - 1 do
              if n.fanins.(j) = f then dup := true
            done;
            if not !dup then incr deg
          end)
        n.fanins;
      indegree.(id) <- !deg)
    ids;
  let queue = Queue.create () in
  List.iter (fun id -> if indegree.(id) = 0 then Queue.add id queue) ids;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    List.iter
      (fun c ->
        if node_exists t c then begin
          indegree.(c) <- indegree.(c) - 1;
          if indegree.(c) = 0 then Queue.add c queue
        end)
      (node t id).fanouts
  done;
  let stuck id = indegree.(id) > 0 in
  match List.find_opt stuck ids with
  | None -> None
  | Some start ->
    (* [on_trail] replaces a linear trail-membership scan so the walk is
       O(V + E) even when the residual is the whole netlist *)
    let on_trail = Array.make (max 1 t.next_id) false in
    let rec walk trail id =
      if on_trail.(id) then
        (* the loop is the trail from its first occurrence of [id];
           the walk followed fan-ins (upstream), so reversing it yields
           signal-flow order *)
        let rec take acc = function
          | [] -> acc
          | x :: rest -> if x = id then id :: acc else take (x :: acc) rest
        in
        Some (List.rev (take [] trail))
      else begin
        let n = node t id in
        let next = ref (-1) in
        Array.iter
          (fun f -> if !next < 0 && node_exists t f && stuck f then next := f)
          n.fanins;
        if !next < 0 then None
        else begin
          on_trail.(id) <- true;
          walk (id :: trail) !next
        end
      end
    in
    walk [] start

let cycle_diag_of ?name cycle =
  let render id =
    match name with Some f -> f id | None -> Printf.sprintf "n%d" id
  in
  match cycle with
  | Some (first :: _ as cycle) ->
    Diag.makef Diag.Netlist_cycle ~subject:(render first)
      "combinational cycle: %s"
      (String.concat " -> " (List.map render (cycle @ [ first ])))
  | Some [] | None ->
    (* unreachable when called on a stuck Kahn pass; keep a diagnostic
       anyway rather than asserting inside error reporting *)
    Diag.make Diag.Netlist_cycle "combinational cycle detected"

let cycle_diag ?name t = cycle_diag_of ?name (find_cycle t)

(* full Kahn rebuild: the fallback when local level patching bailed out,
   and the only place a cycle is diagnosed *)
let rebuild_levels t =
  let indegree = Array.make (max 1 t.next_id) 0 in
  let ids = live_ids t in
  List.iter
    (fun id ->
      (* count distinct fan-in ids: a gate may read one source on several
         pins, but that source appears once in the fanout list *)
      let n = node t id in
      let deg = ref 0 in
      Array.iteri
        (fun i f ->
          if node_exists t f then begin
            let dup = ref false in
            for j = 0 to i - 1 do
              if n.fanins.(j) = f then dup := true
            done;
            if not !dup then incr deg
          end)
        n.fanins;
      indegree.(id) <- !deg)
    ids;
  let queue = Queue.create () in
  List.iter
    (fun id ->
      if indegree.(id) = 0 then begin
        t.level.(id) <- 0;
        Queue.add id queue
      end)
    ids;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    incr seen;
    let n = node t id in
    let lvl =
      match n.kind with
      | Primary_input -> 0
      | Cell _ ->
        1
        + Array.fold_left
            (fun acc f -> if node_exists t f then max acc t.level.(f) else acc)
            0 n.fanins
    in
    t.level.(id) <- lvl;
    List.iter
      (fun c ->
        if node_exists t c then begin
          indegree.(c) <- indegree.(c) - 1;
          if indegree.(c) = 0 then Queue.add c queue
        end)
      n.fanouts
  done;
  if !seen <> t.n_live then raise (Diag.Fatal (cycle_diag t));
  t.levels_valid <- true

let ensure_levels t = if not t.levels_valid then rebuild_levels t

let compute_level t (n : node) =
  match n.kind with
  | Primary_input -> 0
  | Cell _ ->
    1
    + Array.fold_left
        (fun acc f -> if node_exists t f then max acc t.level.(f) else acc)
        0 n.fanins

(* re-propagate levels over the fan-out cone of [id] while they change;
   if a level climbs past the live-node count something is cyclic, so
   defer to the full rebuild (which raises) *)
let patch_levels_from t id =
  if t.levels_valid then begin
    let queue = Queue.create () in
    Queue.add id queue;
    while t.levels_valid && not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      if node_exists t x then begin
        let n = node t x in
        let lvl = compute_level t n in
        if lvl > t.n_live then t.levels_valid <- false
        else if lvl <> t.level.(x) then begin
          t.level.(x) <- lvl;
          List.iter (fun c -> Queue.add c queue) n.fanouts
        end
      end
    done
  end

let level t id =
  ignore (node t id);
  ensure_levels t;
  t.level.(id)

let structural_change t =
  t.topo_cache <- None;
  t.level_counts <- None;
  t.struct_rev <- t.struct_rev + 1

(* (level, id)-sorted live ids by counting sort: bucket sizes per level,
   prefix offsets, then one ascending-id placement pass (which keeps ids
   sorted within a level).  O(V + depth), no comparator closures — the
   stable sort this replaces allocated a tuple pair per comparison. *)
let level_sorted_live t =
  ensure_levels t;
  let d = ref 0 in
  for id = 0 to t.next_id - 1 do
    if t.nodes.(id) <> None then d := max !d t.level.(id)
  done;
  let off = Array.make (!d + 2) 0 in
  for id = 0 to t.next_id - 1 do
    if t.nodes.(id) <> None then
      off.(t.level.(id) + 1) <- off.(t.level.(id) + 1) + 1
  done;
  for l = 1 to !d + 1 do
    off.(l) <- off.(l) + off.(l - 1)
  done;
  let order = Array.make t.n_live 0 in
  let cursor = Array.copy off in
  for id = 0 to t.next_id - 1 do
    if t.nodes.(id) <> None then begin
      let l = t.level.(id) in
      order.(cursor.(l)) <- id;
      cursor.(l) <- cursor.(l) + 1
    end
  done;
  (order, off)

let topological_order t =
  match t.topo_cache with
  | Some order -> order
  | None ->
    let arr, _ = level_sorted_live t in
    let order = Array.to_list arr in
    t.topo_cache <- Some order;
    order

let level_suffix_counts t =
  match t.level_counts with
  | Some c -> c
  | None ->
    ensure_levels t;
    let d = ref 0 in
    for id = 0 to t.next_id - 1 do
      if t.nodes.(id) <> None then d := max !d t.level.(id)
    done;
    let counts = Array.make (!d + 2) 0 in
    for id = 0 to t.next_id - 1 do
      if t.nodes.(id) <> None then
        counts.(t.level.(id)) <- counts.(t.level.(id)) + 1
    done;
    for l = !d - 1 downto 0 do
      counts.(l) <- counts.(l) + counts.(l + 1)
    done;
    t.level_counts <- Some counts;
    counts

let depth t = Array.length (level_suffix_counts t) - 2

let count_level_ge t l =
  let counts = level_suffix_counts t in
  if l <= 0 then counts.(0)
  else if l >= Array.length counts then 0
  else counts.(l)

(* --- construction --------------------------------------------------- *)

let alloc t kind fanins cin wire =
  grow t;
  let id = t.next_id in
  let n = { id; kind; fanins; fanouts = []; cin; wire; vt = Pops_process.Vt.Lvt } in
  t.nodes.(id) <- Some n;
  t.next_id <- id + 1;
  t.n_live <- t.n_live + 1;
  (match kind with Cell _ -> t.n_gates <- t.n_gates + 1 | Primary_input -> ());
  (* fanout lists hold each consumer once, even when it reads the same
     source on several pins; dedup scans the (tiny) fanin prefix instead
     of the source's whole fanout list *)
  Array.iteri
    (fun i f ->
      let dup = ref false in
      for j = 0 to i - 1 do
        if fanins.(j) = f then dup := true
      done;
      if not !dup then begin
        let src = node t f in
        src.fanouts <- id :: src.fanouts;
        invalidate_load t f;
        mark_dirty t f
      end)
    fanins;
  t.load_cache.(id) <- Float.nan;
  if t.levels_valid then t.level.(id) <- compute_level t n;
  (* a fresh node has no consumers, so appending keeps any cached order
     valid — but keep it simple and let the next query re-derive it *)
  structural_change t;
  mark_dirty t id;
  id

let add_input ?name t =
  ignore name;
  let id = alloc t Primary_input [||] 0. 0. in
  t.input_ids <- id :: t.input_ids;
  id

let add_gate ?cin ?(wire = 0.) t kind fanins =
  let cin = Option.value cin ~default:t.tech.Pops_process.Tech.cmin in
  if Array.length fanins <> Gk.arity kind then
    invalid_arg
      (Printf.sprintf "Netlist.add_gate: %s expects %d fanins, got %d" (Gk.name kind)
         (Gk.arity kind) (Array.length fanins));
  Array.iter
    (fun f ->
      if not (node_exists t f) then
        invalid_arg (Printf.sprintf "Netlist.add_gate: unknown fanin %d" f))
    fanins;
  if cin <= 0. then invalid_arg "Netlist.add_gate: cin <= 0";
  alloc t (Cell kind) (Array.copy fanins) cin wire

let set_output t id ~load =
  ignore (node t id);
  if load < 0. then invalid_arg "Netlist.set_output: negative load";
  (* the dense mirror makes the already-an-output test O(1); designating
     a fresh output is a cons, so building a design with 100k+ outputs
     stays linear (updating an existing one stays O(outputs), which only
     tests do) *)
  if Float.is_nan t.out_load.(id) then
    t.output_loads <- (id, load) :: t.output_loads
  else
    t.output_loads <-
      List.map (fun (i, l) -> if i = id then (i, load) else (i, l)) t.output_loads;
  t.out_load.(id) <- load;
  invalidate_load t id;
  mark_dirty t id

let inputs t = List.rev t.input_ids
let outputs t = List.rev t.output_loads

let is_output t id =
  id >= 0 && id < t.next_id && not (Float.is_nan t.out_load.(id))

let gate_ids t =
  let acc = ref [] in
  for id = t.next_id - 1 downto 0 do
    match t.nodes.(id) with
    | Some n -> (match n.kind with Cell _ -> acc := id :: !acc | Primary_input -> ())
    | None -> ()
  done;
  !acc

let gate_count t = t.n_gates
let input_count t = List.length t.input_ids

(* --- mutators ------------------------------------------------------- *)

let set_cin t id cin =
  let n = node t id in
  (match n.kind with
  | Primary_input -> invalid_arg "Netlist.set_cin: primary input"
  | Cell _ -> ());
  if cin <= 0. then invalid_arg "Netlist.set_cin: cin <= 0";
  if cin <> n.cin then begin
    n.cin <- cin;
    (* the load this gate presents to its drivers changed; its own stage
       delay changed too (cin is its drive strength) *)
    touch_fanin_loads t n;
    mark_dirty t id
  end

let set_wire t id wire =
  if wire < 0. then invalid_arg "Netlist.set_wire: negative";
  let n = node t id in
  if wire <> n.wire then begin
    n.wire <- wire;
    invalidate_load t id;
    mark_dirty t id
  end

let set_fanin t id ~pin new_src =
  let n = node t id in
  if pin < 0 || pin >= Array.length n.fanins then invalid_arg "Netlist.set_fanin: pin";
  ignore (node t new_src);
  let old_src = n.fanins.(pin) in
  if old_src <> new_src then begin
    n.fanins.(pin) <- new_src;
    (* remove one occurrence of id from old_src's fanouts, unless another
       pin still reads old_src *)
    if not (Array.exists (fun f -> f = old_src) n.fanins) then
      (node t old_src).fanouts <-
        List.filter (fun f -> f <> id) (node t old_src).fanouts;
    (* the consumer is already listed when another pin reads new_src *)
    let pins_on_new =
      Array.fold_left (fun k f -> if f = new_src then k + 1 else k) 0 n.fanins
    in
    if pins_on_new = 1 then begin
      let tgt = node t new_src in
      tgt.fanouts <- id :: tgt.fanouts
    end;
    invalidate_load t old_src;
    invalidate_load t new_src;
    mark_dirty t old_src;
    mark_dirty t new_src;
    mark_dirty t id;
    structural_change t;
    patch_levels_from t id
  end

let replace_kind t id kind =
  let n = node t id in
  (match n.kind with
  | Primary_input -> invalid_arg "Netlist.replace_kind: primary input"
  | Cell old ->
    if Gk.arity old <> Gk.arity kind then
      invalid_arg "Netlist.replace_kind: arity mismatch");
  n.kind <- Cell kind;
  mark_dirty t id

let set_vt t id vt =
  let n = node t id in
  (match n.kind with
  | Primary_input -> invalid_arg "Netlist.set_vt: primary input"
  | Cell _ -> ());
  if not (Pops_process.Vt.equal n.vt vt) then begin
    (* non-structural, like replace_kind: widths and edges are untouched,
       only the node's own stage delay changes *)
    n.vt <- vt;
    mark_dirty t id
  end

let vt_of t id = (node t id).vt

let rewire_fanouts t ~from_ ~to_ ~except =
  let src = node t from_ in
  let consumers = List.filter (fun c -> not (List.mem c except)) src.fanouts in
  List.iter
    (fun c ->
      let cn = node t c in
      Array.iteri (fun pin f -> if f = from_ then set_fanin t cn.id ~pin to_) cn.fanins)
    consumers;
  (* move primary-output designation, keeping its position so the
     output order (and thus logic-equivalence comparisons) is stable *)
  if not (Float.is_nan t.out_load.(from_)) then begin
    t.output_loads <-
      List.map (fun (i, l) -> if i = from_ then (to_, l) else (i, l)) t.output_loads;
    t.out_load.(to_) <- t.out_load.(from_);
    t.out_load.(from_) <- Float.nan;
    invalidate_load t from_;
    invalidate_load t to_;
    mark_dirty t from_;
    mark_dirty t to_
  end

let delete_gate t id =
  let n = node t id in
  if n.fanouts <> [] then invalid_arg "Netlist.delete_gate: has consumers";
  if not (Float.is_nan t.out_load.(id)) then
    invalid_arg "Netlist.delete_gate: is a primary output";
  Array.iter
    (fun f ->
      if node_exists t f then begin
        (node t f).fanouts <- List.filter (fun x -> x <> id) (node t f).fanouts;
        invalidate_load t f;
        mark_dirty t f
      end)
    n.fanins;
  t.nodes.(id) <- None;
  t.n_live <- t.n_live - 1;
  (match n.kind with Cell _ -> t.n_gates <- t.n_gates - 1 | Primary_input -> ());
  structural_change t;
  mark_dirty t id

(* --- loads ----------------------------------------------------------- *)

let load_on t id =
  let n = node t id in
  let cached = t.load_cache.(id) in
  if Float.is_nan cached then begin
    (* count pins, not consumers: a gate reading this net on several pins
       presents its input capacitance once per pin *)
    let fanout_cap =
      List.fold_left
        (fun acc c ->
          let cn = node t c in
          let pins =
            Array.fold_left (fun k f -> if f = id then k + 1 else k) 0 cn.fanins
          in
          acc +. (float_of_int pins *. cn.cin))
        0. n.fanouts
    in
    let terminal = if Float.is_nan t.out_load.(id) then 0. else t.out_load.(id) in
    let load = fanout_cap +. n.wire +. terminal in
    t.load_cache.(id) <- load;
    load
  end
  else cached

(* --- CSR adjacency snapshot ------------------------------------------ *)

module Csr = struct
  type t = csr

  (* dense encoding of the cell kinds the library can hold; observers
     index per-kind coefficient tables with it instead of scanning the
     library's association list per node *)
  let code_kinds =
    [|
      Gk.Inv; Gk.Buf; Gk.Nand 2; Gk.Nand 3; Gk.Nand 4; Gk.Nor 2; Gk.Nor 3;
      Gk.Nor 4; Gk.Aoi21; Gk.Oai21; Gk.Aoi22; Gk.Oai22; Gk.Xor2; Gk.Xnor2;
    |]

  let code_of_kind = function
    | Primary_input -> -1
    | Cell k -> (
      match k with
      | Gk.Inv -> 0
      | Gk.Buf -> 1
      | Gk.Nand 2 -> 2
      | Gk.Nand 3 -> 3
      | Gk.Nand 4 -> 4
      | Gk.Nor 2 -> 5
      | Gk.Nor 3 -> 6
      | Gk.Nor 4 -> 7
      | Gk.Aoi21 -> 8
      | Gk.Oai21 -> 9
      | Gk.Aoi22 -> 10
      | Gk.Oai22 -> 11
      | Gk.Xor2 -> 12
      | Gk.Xnor2 -> 13
      | Gk.Nand _ | Gk.Nor _ -> -2)

  let bound c = c.c_bound
  let length c = c.c_n
  let node_of c = c.c_node_of
  let pos c = c.c_pos
  let level_off c = c.c_level_off
  let kind_code c = c.c_kind_code
  let vt_code c = c.c_vt
  let cin c = c.c_cin
  let load c = c.c_load
  let fanin_off c = c.c_fanin_off
  let fanin c = c.c_fanin
  let fanout_off c = c.c_fanout_off
  let fanout c = c.c_fanout
  let fanout_pins c = c.c_fanout_pins
  let depth c = Array.length c.c_level_off - 2
end

(* full O(V + E) snapshot build: levels via the (possibly rebuilt) level
   cache, order via counting sort, fan-ins packed in pin order, fan-outs
   packed in fanout-list order with per-consumer pin multiplicities, and
   loads through {!load_on} (cached or recomputed with the canonical
   fold, so snapshot loads are bit-identical to queries) *)
let build_csr t =
  let bound = t.next_id in
  let order, level_off = level_sorted_live t in
  let n = Array.length order in
  let pos = Array.make (max 1 bound) (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) order;
  let kind_code = Array.make (max 1 bound) (-1)
  and vt = Array.make (max 1 bound) 0
  and cin = Array.make (max 1 bound) Float.nan
  and load = Array.make (max 1 bound) Float.nan in
  let fanin_off = Array.make (bound + 1) 0
  and fanout_off = Array.make (bound + 1) 0 in
  for id = 0 to bound - 1 do
    match t.nodes.(id) with
    | None -> ()
    | Some nd ->
      fanin_off.(id + 1) <- Array.length nd.fanins;
      fanout_off.(id + 1) <- List.length nd.fanouts
  done;
  for id = 0 to bound - 1 do
    fanin_off.(id + 1) <- fanin_off.(id + 1) + fanin_off.(id);
    fanout_off.(id + 1) <- fanout_off.(id + 1) + fanout_off.(id)
  done;
  let fanin = Array.make (max 1 fanin_off.(bound)) 0
  and fanout = Array.make (max 1 fanout_off.(bound)) 0
  and fanout_pins = Array.make (max 1 fanout_off.(bound)) 0 in
  for id = 0 to bound - 1 do
    match t.nodes.(id) with
    | None -> ()
    | Some nd ->
      kind_code.(id) <- Csr.code_of_kind nd.kind;
      vt.(id) <- Pops_process.Vt.to_int nd.vt;
      cin.(id) <- nd.cin;
      load.(id) <- load_on t id;
      let fi = fanin_off.(id) in
      Array.iteri (fun pin f -> fanin.(fi + pin) <- f) nd.fanins;
      let fo = ref (fanout_off.(id)) in
      List.iter
        (fun c ->
          fanout.(!fo) <- c;
          let pins = ref 0 in
          (match t.nodes.(c) with
          | Some cn ->
            Array.iter (fun f -> if f = id then incr pins) cn.fanins
          | None -> ());
          fanout_pins.(!fo) <- !pins;
          incr fo)
        nd.fanouts
  done;
  {
    c_bound = bound;
    c_n = n;
    c_node_of = order;
    c_pos = pos;
    c_level_off = level_off;
    c_kind_code = kind_code;
    c_vt = vt;
    c_cin = cin;
    c_load = load;
    c_fanin_off = fanin_off;
    c_fanin = fanin;
    c_fanout_off = fanout_off;
    c_fanout = fanout;
    c_fanout_pins = fanout_pins;
  }

let csr t =
  let c =
    match t.csr_cache with
    | Some c when t.csr_struct_rev = t.struct_rev -> c
    | Some _ | None ->
      let c = build_csr t in
      t.csr_cache <- Some c;
      t.csr_struct_rev <- t.struct_rev;
      t.csr_cursor <- t.dirty_len;
      c
  in
  (* scalar resync: under an unchanged structural revision the id set,
     edges and levels are fixed, so dirty-log entries can only mean a
     kind / cin / wire / terminal-load change — refresh those in place *)
  if t.csr_cursor < t.dirty_len then begin
    for i = t.csr_cursor to t.dirty_len - 1 do
      let id = t.dirty_log.(i) in
      if id < c.c_bound && t.nodes.(id) <> None then begin
        let nd = node t id in
        c.c_kind_code.(id) <- Csr.code_of_kind nd.kind;
        c.c_vt.(id) <- Pops_process.Vt.to_int nd.vt;
        c.c_cin.(id) <- nd.cin;
        c.c_load.(id) <- load_on t id
      end
    done;
    t.csr_cursor <- t.dirty_len
  end;
  c

(* --- validation ------------------------------------------------------ *)

(* Consumers-by-driver CSR derived from the fanin arrays, each distinct
   (driver, consumer) pair once — the same dedup contract the fanout
   lists maintain.  Flat int arrays only, so the two-way fanout-list /
   fanin-array consistency check below stays O(V + E) with no hashing or
   per-edge boxing (a 1M-gate design validates in well under a second,
   see test_csr). *)
let consumer_csr t =
  let bound = max 1 t.next_id in
  let distinct_iter (n : node) k =
    Array.iteri
      (fun i f ->
        let dup = ref false in
        for j = 0 to i - 1 do
          if n.fanins.(j) = f then dup := true
        done;
        if (not !dup) && f >= 0 && f < bound then k f)
      n.fanins
  in
  let off = Array.make (bound + 1) 0 in
  for id = 0 to t.next_id - 1 do
    match t.nodes.(id) with
    | None -> ()
    | Some n -> distinct_iter n (fun f -> off.(f + 1) <- off.(f + 1) + 1)
  done;
  for f = 0 to bound - 1 do
    off.(f + 1) <- off.(f + 1) + off.(f)
  done;
  let consumers = Array.make (max 1 off.(bound)) 0 in
  let cur = Array.copy off in
  for id = 0 to t.next_id - 1 do
    match t.nodes.(id) with
    | None -> ()
    | Some n ->
      distinct_iter n (fun f ->
          consumers.(cur.(f)) <- id;
          cur.(f) <- cur.(f) + 1)
  done;
  (off, consumers)

(* The forward direction of fanout-list consistency: every actual
   consumer (per the fanin arrays) must be named by its driver's fanout
   list, and the list must not name anyone twice.  [emit] receives
   [`Missing (driver, consumer)] or [`Duplicate driver] and returns
   [true] to stop early (fail-fast validate) or [false] to keep
   sweeping (validate_diags).  Listed-but-wrong entries are the backward
   direction, checked per node by the callers. *)
let check_fanout_sync t emit =
  let off, consumers = consumer_csr t in
  let bound = max 1 t.next_id in
  (* stamp = f marks the consumers f's fanout list names this round *)
  let stamp = Array.make bound (-1) in
  try
    for f = 0 to t.next_id - 1 do
      match t.nodes.(f) with
      | None -> ()
      | Some n ->
        let listed = ref 0 in
        List.iter
          (fun c ->
            if c >= 0 && c < bound then stamp.(c) <- f;
            incr listed)
          n.fanouts;
        for i = off.(f) to off.(f + 1) - 1 do
          let c = consumers.(i) in
          if stamp.(c) <> f && emit (`Missing (f, c)) then raise Exit
        done;
        if !listed > off.(f + 1) - off.(f) && emit (`Duplicate f) then
          raise Exit
    done
  with Exit -> ()

let validate t =
  let ids = live_ids t in
  let check_node id =
    let n = node t id in
    let arity_ok =
      match n.kind with
      | Primary_input -> Array.length n.fanins = 0
      | Cell kind -> Array.length n.fanins = Gk.arity kind
    in
    if not arity_ok then Error (Printf.sprintf "node %d: arity mismatch" id)
    else if Array.exists (fun f -> not (node_exists t f)) n.fanins then
      Error (Printf.sprintf "node %d: dangling fanin" id)
    else if List.exists (fun c -> not (node_exists t c)) n.fanouts then
      Error (Printf.sprintf "node %d: dangling fanout" id)
    else if
      List.exists
        (fun c -> not (Array.exists (fun f -> f = id) (node t c).fanins))
        n.fanouts
    then Error (Printf.sprintf "node %d: fanout without matching fanin" id)
    else if (match n.kind with Cell _ -> n.cin <= 0. | Primary_input -> false) then
      Error (Printf.sprintf "node %d: non-positive cin" id)
    else Ok ()
  in
  let rec all = function
    | [] -> Ok ()
    | id :: rest -> ( match check_node id with Ok () -> all rest | Error _ as e -> e)
  in
  match all ids with
  | Error _ as e -> e
  | Ok () -> (
    let sync = ref None in
    check_fanout_sync t (fun problem ->
        (sync :=
           match problem with
           | `Missing (_, c) ->
             Some (Printf.sprintf "node %d: fanout list out of sync" c)
           | `Duplicate f ->
             Some (Printf.sprintf "node %d: duplicate fanout entries" f));
        true);
    match !sync with
    | Some e -> Error e
    | None -> (
      match topological_order t with
      | (_ : int list) -> Ok ()
      | exception Failure msg -> Error msg
      | exception Diag.Fatal d -> Error (Diag.one_line d)))

(* The diagnostic validation pass: unlike {!validate} it does not stop
   at the first problem — every violation becomes one {!Diag.t}, so a
   front end can report the whole state of a malformed netlist at once.
   [name] renders node ids (the CLI passes the .bench signal names). *)
let validate_diags ?name t =
  let render id =
    match name with Some f -> f id | None -> Printf.sprintf "n%d" id
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* [render] allocates per call — only pay for it on nodes that
     actually produce a diagnostic, never per visited node.  A direct id
     sweep (no live_ids list) keeps the pass allocation-free on a clean
     netlist. *)
  for id = 0 to t.next_id - 1 do
    match t.nodes.(id) with
    | None -> ()
    | Some n ->
      (match n.kind with
      | Primary_input ->
        if Array.length n.fanins <> 0 then
          add
            (Diag.makef Diag.Internal ~subject:(render id)
               "primary input with %d fan-ins" (Array.length n.fanins))
      | Cell kind ->
        let arity = Gk.arity kind in
        if Array.length n.fanins <> arity then
          add
            (Diag.makef Diag.Internal ~subject:(render id)
               "%s gate with %d fan-ins (arity %d)" (Gk.name kind)
               (Array.length n.fanins) arity);
        if n.cin <= 0. then
          add
            (Diag.makef Diag.Netlist_bad_cin ~subject:(render id)
               "non-positive input capacitance %g fF" n.cin));
      Array.iter
        (fun f ->
          if not (node_exists t f) then
            add
              (Diag.makef Diag.Netlist_dangling ~subject:(render id)
                 "fan-in references deleted node %d" f))
        n.fanins;
      List.iter
        (fun c ->
          if not (node_exists t c) then
            add
              (Diag.makef Diag.Netlist_dangling ~subject:(render id)
                 "fan-out references deleted node %d" c)
          else if not (Array.exists (fun f -> f = id) (node t c).fanins) then
            add
              (Diag.makef Diag.Netlist_dangling ~subject:(render id)
                 "fan-out %s does not read this net" (render c)))
        n.fanouts;
      (match n.kind with
      | Cell _ when n.fanouts = [] && Float.is_nan t.out_load.(id) ->
        add
          (Diag.makef Diag.Netlist_zero_fanout ~subject:(render id)
             "gate drives nothing and is not a primary output")
      | _ -> ())
  done;
  check_fanout_sync t (fun problem ->
      (match problem with
      | `Missing (f, c) ->
        add
          (Diag.makef Diag.Netlist_dangling ~subject:(render c)
             "fan-out list of %s misses this consumer" (render f))
      | `Duplicate f ->
        add
          (Diag.makef Diag.Internal ~subject:(render f)
             "fan-out list names a consumer twice"));
      false);
  (* the level cache doubles as an acyclicity certificate: rebuilding it
     raises on a cycle, and on a clean netlist it is already valid — so
     the expensive residual-Kahn cycle walk only runs when needed *)
  (match ensure_levels t with
  | () -> ()
  | exception (Failure _ | Diag.Fatal _) -> (
    match find_cycle t with
    | Some _ as cycle -> add (cycle_diag_of ?name cycle)
    | None -> add (Diag.make Diag.Netlist_cycle "combinational cycle detected")));
  List.rev !diags

let kind_histogram t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun id ->
      match (node t id).kind with
      | Cell kind ->
        let key = Gk.name kind in
        let prev = Option.value ~default:(kind, 0) (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (kind, snd prev + 1)
      | Primary_input -> ())
    (gate_ids t);
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (Gk.name a) (Gk.name b))

let total_area t lib =
  List.fold_left
    (fun acc id ->
      let n = node t id in
      match n.kind with
      | Cell kind ->
        acc +. Pops_cell.Cell.area (Pops_cell.Library.find lib kind) ~cin:n.cin
      | Primary_input -> acc)
    0. (gate_ids t)

(* Same fold as {!total_area} (same order, so an all-LVT netlist weighs
   bit-identically to its plain area), each gate's width scaled by its Vt
   class's leakage factor. *)
let total_leakage_area t lib =
  List.fold_left
    (fun acc id ->
      let n = node t id in
      match n.kind with
      | Cell kind ->
        let cell = Pops_cell.Library.find_vt lib kind n.vt in
        acc
        +. Pops_cell.Cell.area cell ~cin:n.cin *. cell.Pops_cell.Cell.leak_factor
      | Primary_input -> acc)
    0. (gate_ids t)

let copy t =
  {
    t with
    nodes =
      Array.map
        (Option.map (fun n ->
             { n with fanins = Array.copy n.fanins; fanouts = n.fanouts }))
        t.nodes;
    out_load = Array.copy t.out_load;
    load_cache = Array.copy t.load_cache;
    level = Array.copy t.level;
    (* the copy starts its own edit history: observers of the original
       must not see the copy's edits and vice versa *)
    dirty_log = Array.make 64 0;
    dirty_len = 0;
    (* the adjacency snapshot is synced in place — sharing it would let
       one netlist corrupt the other's view *)
    csr_cache = None;
    csr_struct_rev = -1;
    csr_cursor = 0;
  }

let restore t ~from =
  (* nodes live before the rewind must be cleared by observers, nodes
     live after it re-evaluated: log both sides (duplicates are fine,
     observers already de-duplicate their wavefront) *)
  let pre = ref [] in
  for id = 0 to t.next_id - 1 do
    if t.nodes.(id) <> None then pre := id :: !pre
  done;
  t.nodes <-
    Array.map
      (Option.map (fun n -> { n with fanins = Array.copy n.fanins }))
      from.nodes;
  t.next_id <- from.next_id;
  t.input_ids <- from.input_ids;
  t.output_loads <- from.output_loads;
  t.out_load <- Array.copy from.out_load;
  t.load_cache <- Array.copy from.load_cache;
  t.level <- Array.copy from.level;
  t.levels_valid <- from.levels_valid;
  t.topo_cache <- from.topo_cache;
  t.level_counts <- Option.map Array.copy from.level_counts;
  t.n_live <- from.n_live;
  t.n_gates <- from.n_gates;
  t.struct_rev <- t.struct_rev + 1;
  t.csr_cache <- None;
  t.csr_struct_rev <- -1;
  t.csr_cursor <- 0;
  List.iter (mark_dirty t) !pre;
  for id = 0 to t.next_id - 1 do
    if t.nodes.(id) <> None then mark_dirty t id
  done

let pp_stats ppf t =
  Format.fprintf ppf "@[<v>netlist: %d inputs, %d gates, %d outputs, depth %d@ "
    (input_count t) (gate_count t)
    (List.length t.output_loads)
    (depth t);
  List.iter
    (fun (kind, count) -> Format.fprintf ppf "%s: %d@ " (Gk.name kind) count)
    (kind_histogram t);
  Format.fprintf ppf "@]"
