(** Seeded synthetic benchmark circuits.

    The paper evaluates on ISCAS'85 netlists placed and extracted in a
    proprietary 0.25 um flow; those artifacts are not available, so the
    suite is substituted by deterministic synthetic circuits (DESIGN.md,
    "Substitutions").  Each circuit is generated around a {e spine}: a
    chain of exactly [path_gates] inverting gates that is the circuit's
    unique longest path by construction (side gates take their fan-ins
    from the spine and the inputs but never feed other gates, so they
    add branch loading without adding depth).  Everything is derived
    from the profile name's hash — the same profile always yields the
    same circuit, on any machine. *)

type profile = {
  name : string;
  path_gates : int;  (** spine length — the paper's per-circuit gate count *)
  total_gates : int;  (** spine + side gates *)
  out_load : float;  (** terminal load on the spine output, fF *)
  side_load : float;
      (** mean off-path fan-out load attached to a spine node, in
          multiples of the minimum input capacitance *)
}

val make_profile :
  ?total_gates:int -> ?out_load:float -> ?side_load:float ->
  name:string -> path_gates:int -> unit -> profile
(** [total_gates] defaults to [3 * path_gates]; [out_load] to 60 fF;
    [side_load] to 4 (reference loads). *)

val generate : Pops_process.Tech.t -> profile -> Netlist.t * int list
(** The circuit and its spine (gate ids, input side first).  The result
    satisfies {!Netlist.validate} and the spine realises
    {!Netlist.depth}. *)

type scale_shape =
  | Grid  (** layered datapath: [~ 3 log2 gates] layers of equal width *)
  | Spine
      (** one maximally deep chain (depth = gate count) — the
          Stack_overflow stress shape *)
  | Iscas  (** the reference spine+side shape with the spine depth capped *)

val scale_shape_name : scale_shape -> string

val generate_scale :
  Pops_process.Tech.t -> name:string -> gates:int -> shape:scale_shape ->
  Netlist.t
(** A full-chip scale benchmark circuit with exactly [gates] gates,
    deterministic in [name].  Generation is streamed — per-gate constant
    work on dense arrays — so million-gate circuits build in linear time
    and memory.  Every sink-less gate is promoted to a primary output.
    @raise Invalid_argument when [gates < 8]. *)

val scale_trajectory : int list
(** The benchmark gate-count trajectory: 100k, 500k, 1M. *)

val make_profile_r :
  ?total_gates:int -> ?out_load:float -> ?side_load:float ->
  name:string -> path_gates:int -> unit ->
  (profile, Pops_robust.Diag.t) result
(** {!make_profile} returning an [Invalid_input] diagnostic instead of
    raising on out-of-range gate counts. *)

val generate_o :
  Pops_process.Tech.t -> profile -> (Netlist.t * int list) Pops_robust.Outcome.t
(** {!generate} as an {!Pops_robust.Outcome}: [Failed] with a typed
    diagnostic instead of raising on an invalid profile or a
    post-generation validation failure. *)
