type stage = { cell : Pops_cell.Cell.t; branch : float }

(* Compiled per-path coefficient tables (structure-of-arrays).  Every
   value the delay/gradient/link-equation kernels need per (stage,
   polarity) is a path invariant: computed once at construction, read as
   unboxed floats ever after.  The [own] tables follow the path's
   current [input_edge]; the [flip] tables are the same stages under the
   opposite input polarity, so a polarity flip is an array swap, never a
   recomputation.  [v] is pre-zeroed when the slope term is disabled and
   [m] when coupling is disabled: the closed forms below then reduce to
   the term-less variants bit-exactly (0-valued numerators), which keeps
   the kernels branch-free. *)
type kernel = {
  uid : int;  (** unique per construction; keys external caches *)
  n : int;
  s_own : float array;  (** symmetry factor, own polarity *)
  st_own : float array;  (** s * tau (the cell's tech) — slope product *)
  v_own : float array;  (** reduced threshold (0 when slope term off) *)
  m_own : float array;  (** coupling ratio (0 when coupling off) *)
  s_flip : float array;
  st_flip : float array;
  v_flip : float array;
  m_flip : float array;
  p : float array;  (** parasitic slope: cpar = p * cin *)
  kbranch : float array;  (** fixed off-path load per stage *)
  lo : float array;  (** minimum drive per stage *)
  hi : float array;  (** 4096 * minimum drive *)
  aw : float array;  (** area weight dA/dCin per stage *)
  flip_edges : Edge.t array;  (** stage edges under the flipped input *)
}

type t = {
  tech : Pops_process.Tech.t;
  stages : stage array;
  drive_cin : float;
  c_out : float;
  input_slope : float;
  input_edge : Edge.t;
  opts : Model.opts;
  edges : Edge.t array;
  kernel : kernel;
}

type coeffs = { s : float; v : float; m : float; p : float }

(* all-float mutable record: stays flat (unboxed fields), so writing the
   two results allocates nothing *)
type scratch = { mutable own : float; mutable flip : float }

let scratch () = { own = 0.; flip = 0. }

let uid_counter = Atomic.make 0

let next_uid () = Atomic.fetch_and_add uid_counter 1

let uid t = t.kernel.uid

let compute_edges input_edge stages =
  let n = Array.length stages in
  let edges = Array.make n input_edge in
  let e = ref input_edge in
  for i = 0 to n - 1 do
    let inv = Pops_cell.Gate_kind.inverting stages.(i).cell.Pops_cell.Cell.kind in
    e := Edge.propagate ~inverting:inv !e;
    edges.(i) <- !e
  done;
  edges

let max_cin_factor = 4096.

let compile_kernel (opts : Model.opts) stages edges =
  let n = Array.length stages in
  let mk () = Array.make n 0. in
  let s_own = mk () and st_own = mk () and v_own = mk () and m_own = mk () in
  let s_flip = mk () and st_flip = mk () and v_flip = mk () and m_flip = mk () in
  let p = mk () and kbranch = mk () and lo = mk () and hi = mk () and aw = mk () in
  let flip_edges = Array.map Edge.flip edges in
  for i = 0 to n - 1 do
    let cell = stages.(i).cell in
    let fill edge s_a st_a v_a m_a =
      let s, v, m =
        match edge with
        | Edge.Falling ->
          ( cell.Pops_cell.Cell.s_hl,
            cell.Pops_cell.Cell.vtn_red,
            cell.Pops_cell.Cell.cm_ratio_hl )
        | Edge.Rising ->
          ( cell.Pops_cell.Cell.s_lh,
            cell.Pops_cell.Cell.vtp_red,
            cell.Pops_cell.Cell.cm_ratio_lh )
      in
      (* the Vt derating folds into the compiled slope products exactly as
         Model.transition_time groups it, so LVT (factor 1.0) stays
         bit-identical and higher-Vt kernels match the record oracle *)
      s_a.(i) <- s *. cell.Pops_cell.Cell.tau_factor;
      st_a.(i) <-
        s *. cell.Pops_cell.Cell.tech.Pops_process.Tech.tau
        *. cell.Pops_cell.Cell.tau_factor;
      v_a.(i) <- (if opts.Model.with_slope then v else 0.);
      m_a.(i) <- (if opts.Model.with_coupling then m else 0.)
    in
    fill edges.(i) s_own st_own v_own m_own;
    fill flip_edges.(i) s_flip st_flip v_flip m_flip;
    p.(i) <- cell.Pops_cell.Cell.par_ratio;
    kbranch.(i) <- stages.(i).branch;
    lo.(i) <- Pops_cell.Cell.min_cin cell;
    hi.(i) <- max_cin_factor *. lo.(i);
    aw.(i) <- Pops_cell.Cell.area cell ~cin:1.
  done;
  { uid = next_uid (); n; s_own; st_own; v_own; m_own; s_flip; st_flip;
    v_flip; m_flip; p; kbranch; lo; hi; aw; flip_edges }

let make ?(opts = Model.default_opts) ?input_slope ?(input_edge = Edge.Rising)
    ?drive_cin ~tech ~c_out stages =
  if stages = [] then invalid_arg "Path.make: empty stage list";
  if c_out <= 0. then invalid_arg "Path.make: c_out must be positive";
  let stages = Array.of_list stages in
  Array.iter (fun st -> if st.branch < 0. then invalid_arg "Path.make: negative branch") stages;
  let drive_cin = Option.value drive_cin ~default:tech.Pops_process.Tech.cmin in
  let input_slope =
    Option.value input_slope ~default:(2. *. tech.Pops_process.Tech.tau)
  in
  let edges = compute_edges input_edge stages in
  {
    tech;
    stages;
    drive_cin;
    c_out;
    input_slope;
    input_edge;
    opts;
    edges;
    kernel = compile_kernel opts stages edges;
  }

let of_kinds ?opts ?input_slope ?input_edge ?drive_cin ?(branch = 0.) ~lib ~c_out
    kinds =
  let stage_of_kind kind = { cell = Pops_cell.Library.find lib kind; branch } in
  make ?opts ?input_slope ?input_edge ?drive_cin
    ~tech:(Pops_cell.Library.tech lib) ~c_out
    (List.map stage_of_kind kinds)

let length t = Array.length t.stages

let[@inline] clamp_at k i v = Float.min k.hi.(i) (Float.max k.lo.(i) v)

let min_sizing t =
  let x = Array.copy t.kernel.lo in
  x.(0) <- t.drive_cin;
  x

let clamp_into t x dst =
  let k = t.kernel in
  dst.(0) <- t.drive_cin;
  for i = 1 to k.n - 1 do
    dst.(i) <- clamp_at k i x.(i)
  done

let clamp_sizing t x =
  let y = Array.copy x in
  clamp_into t x y;
  y

let stage_coeffs t i =
  let cell = t.stages.(i).cell in
  let edge = t.edges.(i) in
  let s, v, m =
    match edge with
    | Edge.Falling ->
      ( cell.Pops_cell.Cell.s_hl,
        cell.Pops_cell.Cell.vtn_red,
        cell.Pops_cell.Cell.cm_ratio_hl )
    | Edge.Rising ->
      ( cell.Pops_cell.Cell.s_lh,
        cell.Pops_cell.Cell.vtp_red,
        cell.Pops_cell.Cell.cm_ratio_lh )
  in
  let m = if t.opts.Model.with_coupling then m else 0. in
  { s = s *. cell.Pops_cell.Cell.tau_factor; v; m; p = cell.Pops_cell.Cell.par_ratio }

(* Output load of stage [i] under sizing [x] (x.(0) already forced). *)
let load t x i =
  let n = Array.length t.stages in
  let next = if i = n - 1 then t.c_out else x.(i + 1) in
  Pops_cell.Cell.cpar t.stages.(i).cell ~cin:x.(i) +. t.stages.(i).branch +. next

let loads t x =
  let x = clamp_sizing t x in
  Array.init (Array.length t.stages) (load t x)

let delay_per_stage t x =
  let x = clamp_sizing t x in
  let n = Array.length t.stages in
  let out = Array.make n (0., 0.) in
  let tau_in = ref t.input_slope in
  for i = 0 to n - 1 do
    let cload = load t x i in
    let d, tau_out =
      Model.stage_delay ~opts:t.opts t.stages.(i).cell ~edge_out:t.edges.(i)
        ~tau_in:!tau_in ~cin:x.(i) ~cload
    in
    out.(i) <- (d, tau_out);
    tau_in := tau_out
  done;
  out

(* The fused delay loops below clamp on the fly — the clamped value of
   stage i+1 is computed once, used as stage i's load and carried
   forward as stage i+1's own drive — so no sizing copy is ever made,
   and all state lives in local float refs (unboxed by the compiler).
   The arithmetic replicates Model.stage_delay term by term:
     tau_out = (s * tau) * cload / cin          (st = s * tau is compiled)
     delay   = v * tau_in / 2                   (v = 0 when slope off)
             + (1 + 2 cm / (cm + cload)) * tau_out / 2   (cm = m * cin; m = 0
                                                          when coupling off) *)
let delay t x =
  let k = t.kernel in
  let n = k.n in
  let st = k.st_own and v = k.v_own and m = k.m_own in
  let total = ref 0. in
  let tau_in = ref t.input_slope in
  let ci = ref t.drive_cin in
  for i = 0 to n - 1 do
    let cnext = if i = n - 1 then t.c_out else clamp_at k (i + 1) x.(i + 1) in
    let cload = (k.p.(i) *. !ci) +. k.kbranch.(i) +. cnext in
    let tau_out = st.(i) *. cload /. !ci in
    let cm = m.(i) *. !ci in
    let factor = 1. +. (2. *. cm /. (cm +. cload)) in
    total := !total +. ((v.(i) *. !tau_in /. 2.) +. (factor *. tau_out /. 2.));
    tau_in := tau_out;
    ci := cnext
  done;
  !total

(* Both polarities in one pass: the loads (and therefore the clamping
   work) are polarity-independent, so the flipped-path delay costs only
   the per-stage closed form, not a second traversal setup.  Results
   land in the caller-owned scratch — zero allocation. *)
let delay_both t sc x =
  let k = t.kernel in
  let n = k.n in
  let total_o = ref 0. and total_f = ref 0. in
  let tau_o = ref t.input_slope and tau_f = ref t.input_slope in
  let ci = ref t.drive_cin in
  for i = 0 to n - 1 do
    let cnext = if i = n - 1 then t.c_out else clamp_at k (i + 1) x.(i + 1) in
    let cload = (k.p.(i) *. !ci) +. k.kbranch.(i) +. cnext in
    let tau_out_o = k.st_own.(i) *. cload /. !ci in
    let cm_o = k.m_own.(i) *. !ci in
    let factor_o = 1. +. (2. *. cm_o /. (cm_o +. cload)) in
    total_o :=
      !total_o +. ((k.v_own.(i) *. !tau_o /. 2.) +. (factor_o *. tau_out_o /. 2.));
    tau_o := tau_out_o;
    let tau_out_f = k.st_flip.(i) *. cload /. !ci in
    let cm_f = k.m_flip.(i) *. !ci in
    let factor_f = 1. +. (2. *. cm_f /. (cm_f +. cload)) in
    total_f :=
      !total_f +. ((k.v_flip.(i) *. !tau_f /. 2.) +. (factor_f *. tau_out_f /. 2.));
    tau_f := tau_out_f;
    ci := cnext
  done;
  sc.own <- !total_o;
  sc.flip <- !total_f

(* Same fused loop, returning only the max — keeps delay_worst (the
   optimizers' reporting criterion) allocation-free with no scratch. *)
let delay_worst t x =
  let k = t.kernel in
  let n = k.n in
  let total_o = ref 0. and total_f = ref 0. in
  let tau_o = ref t.input_slope and tau_f = ref t.input_slope in
  let ci = ref t.drive_cin in
  for i = 0 to n - 1 do
    let cnext = if i = n - 1 then t.c_out else clamp_at k (i + 1) x.(i + 1) in
    let cload = (k.p.(i) *. !ci) +. k.kbranch.(i) +. cnext in
    let tau_out_o = k.st_own.(i) *. cload /. !ci in
    let cm_o = k.m_own.(i) *. !ci in
    let factor_o = 1. +. (2. *. cm_o /. (cm_o +. cload)) in
    total_o :=
      !total_o +. ((k.v_own.(i) *. !tau_o /. 2.) +. (factor_o *. tau_out_o /. 2.));
    tau_o := tau_out_o;
    let tau_out_f = k.st_flip.(i) *. cload /. !ci in
    let cm_f = k.m_flip.(i) *. !ci in
    let factor_f = 1. +. (2. *. cm_f /. (cm_f +. cload)) in
    total_f :=
      !total_f +. ((k.v_flip.(i) *. !tau_f /. 2.) +. (factor_f *. tau_out_f /. 2.));
    tau_f := tau_out_f;
    ci := cnext
  done;
  if !total_o >= !total_f then !total_o else !total_f

let with_input_edge t edge =
  if Edge.equal edge t.input_edge then t
  else begin
    let k = t.kernel in
    {
      t with
      input_edge = edge;
      edges = k.flip_edges;
      kernel =
        {
          k with
          uid = next_uid ();
          s_own = k.s_flip;
          st_own = k.st_flip;
          v_own = k.v_flip;
          m_own = k.m_flip;
          s_flip = k.s_own;
          st_flip = k.st_own;
          v_flip = k.v_own;
          m_flip = k.m_own;
          flip_edges = t.edges;
        };
    }
  end

let worst_edge t x =
  let sc = scratch () in
  delay_both t sc x;
  if sc.own >= sc.flip then (t.input_edge, sc.own)
  else (Edge.flip t.input_edge, sc.flip)

let delay_avg t x =
  let sc = scratch () in
  delay_both t sc x;
  0.5 *. (sc.own +. sc.flip)

(* Exact gradient.  With cm_i = m_i * x_i and L_i = p_i x_i + B_i + next_i,
   the three places x_j appears are: the load of stage j-1 (as "next"),
   stage j's own output term (through 1/x_j, L_j and cm_j — the cm and L
   dependences combine into the compact -2 m^2 K/(cm+L)^2 term because
   2 cm L / ((cm+L) x) = 2 m L / (cm+L)), and stage j+1's slope term.
   Clamped sizes are carried in a three-entry window (x_{j-1}, x_j,
   x_{j+1}), so no sizing copy is made and nothing is allocated. *)
let gradient_into t x g =
  let k = t.kernel in
  let n = k.n in
  let tau = t.tech.Pops_process.Tech.tau in
  g.(0) <- 0.;
  if n > 1 then begin
    let xm1 = ref t.drive_cin in
    let xj = ref (clamp_at k 1 x.(1)) in
    for j = 1 to n - 1 do
      let xnext = if j = n - 1 then t.c_out else clamp_at k (j + 1) x.(j + 1) in
      let l_prev = (k.p.(j - 1) *. !xm1) +. k.kbranch.(j - 1) +. !xj in
      let cm_prev = k.m_own.(j - 1) *. !xm1 in
      let dp = cm_prev +. l_prev in
      let k1 = 1. +. (2. *. cm_prev *. cm_prev /. (dp *. dp)) in
      let upstream =
        k.s_own.(j - 1) *. tau /. (2. *. !xm1) *. (k1 +. k.v_own.(j))
      in
      let k_j = k.kbranch.(j) +. xnext in
      let l_j = (k.p.(j) *. !xj) +. k_j in
      let cm_j = k.m_own.(j) *. !xj in
      let dj = cm_j +. l_j in
      let v_next = if j + 1 < n then k.v_own.(j + 1) else 0. in
      let own =
        k.s_own.(j) *. tau *. k_j /. 2.
        *. (((1. +. v_next) /. (!xj *. !xj))
            +. (2. *. k.m_own.(j) *. k.m_own.(j) /. (dj *. dj)))
      in
      g.(j) <- upstream -. own;
      xm1 := !xj;
      xj := xnext
    done
  end

let gradient t x =
  let g = Array.make (Array.length t.stages) 0. in
  gradient_into t x g;
  g

let area_weight t i = t.kernel.aw.(i)

let area t x =
  let x = clamp_sizing t x in
  let total = ref 0. in
  Array.iteri
    (fun i st -> total := !total +. Pops_cell.Cell.area st.cell ~cin:x.(i))
    t.stages;
  !total

let sum_cin_ratio t x =
  let x = clamp_sizing t x in
  Array.fold_left ( +. ) 0. x /. t.tech.Pops_process.Tech.cmin

let fast_input_violations t x =
  let x = clamp_sizing t x in
  let per_stage = delay_per_stage t x in
  let viol = ref [] in
  let tau_in = ref t.input_slope in
  Array.iteri
    (fun i (_, tau_out) ->
      let cload = load t x i in
      if
        not
          (Model.fast_input_range t.stages.(i).cell ~edge_out:t.edges.(i)
             ~tau_in:!tau_in ~cin:x.(i) ~cload)
      then viol := i :: !viol;
      tau_in := tau_out)
    per_stage;
  List.rev !viol

let rebuild t stages =
  let edges = compute_edges t.input_edge stages in
  { t with stages; edges; kernel = compile_kernel t.opts stages edges }

let with_stage_inserted t ~at st =
  let n = Array.length t.stages in
  if at < 0 || at >= n then invalid_arg "Path.with_stage_inserted";
  let stages =
    Array.init (n + 1) (fun i ->
        if i <= at then t.stages.(i) else if i = at + 1 then st else t.stages.(i - 1))
  in
  rebuild t stages

let with_stage_replaced t ~at st =
  let n = Array.length t.stages in
  if at < 0 || at >= n then invalid_arg "Path.with_stage_replaced";
  let stages = Array.mapi (fun i old -> if i = at then st else old) t.stages in
  rebuild t stages

let stage_kinds t =
  Array.to_list (Array.map (fun st -> st.cell.Pops_cell.Cell.kind) t.stages)

let pp ppf t =
  Format.fprintf ppf "@[<h>path[%d]:" (Array.length t.stages);
  Array.iter
    (fun st ->
      Format.fprintf ppf " %a%s" Pops_cell.Gate_kind.pp st.cell.Pops_cell.Cell.kind
        (if st.branch > 0. then Printf.sprintf "(+%.1ffF)" st.branch else ""))
    t.stages;
  Format.fprintf ppf " -> %.1ffF@]" t.c_out
