type opts = { with_slope : bool; with_coupling : bool }

let default_opts = { with_slope = true; with_coupling = true }

let transition_time (cell : Pops_cell.Cell.t) ~edge ~cin ~cload =
  assert (cin > 0. && cload >= 0.);
  let s = match edge with Edge.Falling -> cell.s_hl | Edge.Rising -> cell.s_lh in
  s *. cell.tech.tau *. cell.tau_factor *. cload /. cin

let coupling_cap (cell : Pops_cell.Cell.t) ~edge_out ~cin =
  let r =
    match edge_out with
    | Edge.Falling -> cell.cm_ratio_hl
    | Edge.Rising -> cell.cm_ratio_lh
  in
  r *. cin

let stage_delay ?(opts = default_opts) (cell : Pops_cell.Cell.t) ~edge_out ~tau_in
    ~cin ~cload =
  let tau_out = transition_time cell ~edge:edge_out ~cin ~cload in
  let v_t =
    match edge_out with Edge.Falling -> cell.vtn_red | Edge.Rising -> cell.vtp_red
  in
  let slope_term = if opts.with_slope then v_t *. tau_in /. 2. else 0. in
  let coupling_factor =
    if opts.with_coupling then
      let cm = coupling_cap cell ~edge_out ~cin in
      1. +. (2. *. cm /. (cm +. cload))
    else 1.
  in
  let delay = slope_term +. (coupling_factor *. tau_out /. 2.) in
  (delay, tau_out)

let fast_input_range cell ~edge_out ~tau_in ~cin ~cload =
  let tau_out = transition_time cell ~edge:edge_out ~cin ~cload in
  tau_in <= 3. *. tau_out

let fo4_delay tech =
  let inv = Pops_cell.Cell.make tech Pops_cell.Gate_kind.Inv in
  let cin = tech.Pops_process.Tech.cmin in
  let cload = (4. *. cin) +. Pops_cell.Cell.cpar inv ~cin in
  (* self-timed input: input slope equal to the stage's own output slope *)
  let tau_fall = transition_time inv ~edge:Edge.Falling ~cin ~cload in
  let tau_rise = transition_time inv ~edge:Edge.Rising ~cin ~cload in
  let d_fall, _ = stage_delay inv ~edge_out:Edge.Falling ~tau_in:tau_rise ~cin ~cload in
  let d_rise, _ = stage_delay inv ~edge_out:Edge.Rising ~tau_in:tau_fall ~cin ~cload in
  0.5 *. (d_fall +. d_rise)
