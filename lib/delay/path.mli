(** Bounded combinational paths (Section 2.2 of the paper).

    A {e bounded} path has its input gate capacitance fixed by the load
    constraint on the latch that feeds it, and its terminal load fixed by
    the input capacitance of the latches/gates it drives.  Under those two
    boundary conditions the path delay is a convex function of the
    interior gate input capacitances (the sizing vector), which is what
    makes the deterministic optimization of Sections 3–4 possible.

    A sizing vector [x] has one entry per stage, in fF of input
    capacitance per stage input pin.  [x.(0)] is the input gate: it is
    {e fixed} at [drive_cin] and functions below overwrite it before
    evaluating, so optimizers may store anything there.

    Conventions:
    - stage [i] drives stage [i+1]; the last stage drives [c_out];
    - stage [i]'s load is [cpar(i) + branch(i) + x.(i+1)] where
      [branch(i)] is the fixed off-path load (side fan-out plus wire);
    - edges alternate according to each cell's inverting polarity,
      starting from [input_edge]. *)

type stage = {
  cell : Pops_cell.Cell.t;
  branch : float;  (** fixed off-path output load, fF (fanout + wire) *)
}

(** Compiled per-path coefficient tables (structure-of-arrays), built
    once at construction.  Each array has one entry per stage; the [own]
    tables follow the path's current input polarity and the [flip]
    tables the opposite one, so {!with_input_edge} is an array swap.
    [v] is pre-zeroed when the slope term is disabled and [m] when
    coupling is disabled, which keeps the closed-form kernels reading
    them branch-free while producing bit-identical values.  The solvers
    in [Pops_core] read these tables directly in their inner loops. *)
type kernel = private {
  uid : int;  (** unique per construction; keys external caches *)
  n : int;  (** stage count *)
  s_own : float array;  (** symmetry factor, own polarity *)
  st_own : float array;  (** [s * tau] — the transition-time product *)
  v_own : float array;  (** reduced threshold (0 when slope term off) *)
  m_own : float array;  (** coupling ratio (0 when coupling off) *)
  s_flip : float array;
  st_flip : float array;
  v_flip : float array;
  m_flip : float array;
  p : float array;  (** parasitic slope: [cpar = p * cin] *)
  kbranch : float array;  (** fixed off-path load per stage *)
  lo : float array;  (** minimum drive per stage *)
  hi : float array;  (** [4096 *] minimum drive *)
  aw : float array;  (** area weight [dA/dCin] per stage *)
  flip_edges : Edge.t array;  (** stage edges under the flipped input *)
}

type t = private {
  tech : Pops_process.Tech.t;
  stages : stage array;
  drive_cin : float;  (** fixed input capacitance of stage 0, fF *)
  c_out : float;  (** fixed terminal load, fF *)
  input_slope : float;  (** transition time at the path input, ps *)
  input_edge : Edge.t;
  opts : Model.opts;
  edges : Edge.t array;  (** output edge of each stage, precomputed *)
  kernel : kernel;  (** compiled coefficient tables (see {!kernel}) *)
}

val uid : t -> int
(** Unique identity of this path value (a fresh id per construction,
    including {!with_input_edge} flips and stage edits).  External
    caches — e.g. [Pops_core.Bounds] — key on it instead of hashing the
    whole structure. *)

val make :
  ?opts:Model.opts ->
  ?input_slope:float ->
  ?input_edge:Edge.t ->
  ?drive_cin:float ->
  tech:Pops_process.Tech.t ->
  c_out:float ->
  stage list ->
  t
(** [make ~tech ~c_out stages] builds a bounded path.  [drive_cin]
    defaults to the process [cmin]; [input_slope] to 2x the process [tau];
    [input_edge] to [Rising].
    @raise Invalid_argument on an empty stage list. *)

val of_kinds :
  ?opts:Model.opts ->
  ?input_slope:float ->
  ?input_edge:Edge.t ->
  ?drive_cin:float ->
  ?branch:float ->
  lib:Pops_cell.Library.t ->
  c_out:float ->
  Pops_cell.Gate_kind.t list ->
  t
(** Convenience constructor: every stage gets the same fixed [branch] load
    (default 0.). *)

val length : t -> int
(** Number of stages. *)

val min_sizing : t -> float array
(** Every stage at its minimum drive — the paper's pseudo upper bound
    configuration (and the [C_REF] initial solution). *)

val clamp_sizing : t -> float array -> float array
(** Fresh vector with [x.(0) := drive_cin] and every interior entry
    clamped to [\[cmin, 4096 * cmin\]]. *)

val clamp_into : t -> float array -> float array -> unit
(** [clamp_into t x dst] writes the clamped sizing into the caller-owned
    [dst] (every entry of [dst] is overwritten; [dst == x] clamps in
    place).  Allocation-free: the in-place variant of
    {!clamp_sizing}. *)

type scratch = private { mutable own : float; mutable flip : float }
(** Caller-owned result cell for {!delay_both}.  All-float mutable
    record, so writing results allocates nothing.  Not synchronised:
    under a parallel fan-out each domain (or each task closure) must own
    its own scratch. *)

val scratch : unit -> scratch

val delay : t -> float array -> float
(** Total path delay (ps) for sizing [x] (eq. 1 summed along the path),
    for the path's own [input_edge].  [x.(0)] is treated as [drive_cin]
    regardless of its value.  Allocation-free: sizes are clamped on the
    fly against the compiled bound tables. *)

val delay_both : t -> scratch -> float array -> unit
(** One fused pass computing the path delay under both input polarities
    (the loads are polarity-independent, so the second polarity costs
    only its closed-form terms).  [scratch.own] receives the delay for
    the path's own [input_edge], [scratch.flip] the flipped one.
    Allocation-free. *)

val with_input_edge : t -> Edge.t -> t
(** Same path, driven by the other polarity.  O(1): the compiled kernel
    holds both polarities' tables and the pre-flipped edge array, so the
    flip swaps arrays instead of re-deriving anything. *)

val delay_worst : t -> float array -> float
(** [max] of {!delay} over the two input polarities — the criterion real
    timing sign-off uses, and the one the optimizers report against.
    Computed by the fused both-polarity pass; allocation-free. *)

val delay_avg : t -> float array -> float
(** Mean of {!delay} over the two input polarities — the balanced
    objective the sizing optimizers minimise (optimising a single
    polarity under-sizes the other's weak gates; minimising the average
    is the standard practice and a convex proxy for the minimax). *)

val worst_edge : t -> float array -> Edge.t * float
(** The input polarity achieving {!delay_worst}, with its delay. *)

val delay_per_stage : t -> float array -> (float * float) array
(** Per-stage [(delay, tau_out)] pairs, for reports and the simulator
    cross-check. *)

val gradient : t -> float array -> float array
(** Exact analytic gradient [dT/dx.(i)] of {!delay} (ps/fF).  Entry 0 is
    0 (the input gate is not a free variable).  Validated against
    {!Pops_util.Numerics.gradient} by property tests. *)

val gradient_into : t -> float array -> float array -> unit
(** [gradient_into t x g] writes the gradient into the caller-owned [g]
    (length {!length}; every entry overwritten).  Allocation-free
    variant of {!gradient} for solver inner loops. *)

val area : t -> float array -> float
(** Total transistor width, um (the paper's [Sigma W] metric). *)

val area_weight : t -> int -> float
(** [dArea/dC_IN] of a stage, um/fF — constant per stage (area is linear
    in the input capacitance).  The sizing optimizers express the
    sensitivity condition per unit of {e width}, so a 3-input cell
    (3x the width per fF) is held to a proportionally tighter
    capacitance sensitivity; this is the exact KKT condition for
    minimum [Sigma W] under a delay constraint. *)

val sum_cin_ratio : t -> float array -> float
(** [Sigma C_IN / C_REF] — the x-axis of the paper's Fig. 1. *)

val loads : t -> float array -> float array
(** Per-stage output load (fF) under sizing [x]. *)

val fast_input_violations : t -> float array -> int list
(** Stages whose input transition falls outside the fast-input range. *)

val with_stage_inserted : t -> at:int -> stage -> t
(** Path with [stage] inserted {e after} position [at] (so it drives what
    stage [at] used to drive).  Used by buffer insertion. *)

val with_stage_replaced : t -> at:int -> stage -> t
(** Path with stage [at] replaced. Used by the De Morgan restructuring. *)

val stage_kinds : t -> Pops_cell.Gate_kind.t list
(** The gate kinds along the path, in order. *)

type coeffs = {
  s : float;  (** symmetry factor for the stage's output edge *)
  v : float;  (** reduced threshold of the switching transistor *)
  m : float;  (** coupling ratio: C_M = m * cin (0 when disabled) *)
  p : float;  (** parasitic ratio: C_par = p * cin *)
}

val stage_coeffs : t -> int -> coeffs
(** Reduced per-stage coefficients (the [A_i] of the paper's eq. 4).
    Boxed compatibility accessor: the solvers' inner loops read the
    compiled {!kernel} tables instead. *)

val pp : Format.formatter -> t -> unit
