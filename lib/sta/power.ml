module Netlist = Pops_netlist.Netlist
module Logic = Pops_netlist.Logic

type report = {
  dynamic_uw : float;
  leakage_uw : float;
  switched_cap : float;
  area : float;
  per_node : (int * float) list;
}

let analyze ?(freq_mhz = 100.) ?input_prob ~lib t =
  let tech = Netlist.tech t in
  let vdd = tech.Pops_process.Tech.vdd in
  let node_cap id =
    let n = Netlist.node t id in
    let cpar =
      match n.Netlist.kind with
      | Netlist.Cell kind ->
        Pops_cell.Cell.cpar (Pops_cell.Library.find lib kind) ~cin:n.Netlist.cin
      | Netlist.Primary_input -> 0.
    in
    Netlist.load_on t id +. cpar
  in
  let ids = Netlist.inputs t @ Netlist.gate_ids t in
  let probs = Logic.signal_probabilities t ?input_prob () in
  let per_node =
    List.map
      (fun id ->
        let p1 = Hashtbl.find probs id in
        let activity = 2. *. p1 *. (1. -. p1) in
        let cap = node_cap id in
        (* fF * V^2 * MHz = nW -> uW *)
        (id, activity *. cap *. vdd *. vdd *. freq_mhz /. 1000.))
      ids
  in
  let dynamic_uw = List.fold_left (fun acc (_, p) -> acc +. p) 0. per_node in
  let switched_cap = dynamic_uw *. 1000. /. (vdd *. vdd *. freq_mhz) in
  let area = Netlist.total_area t lib in
  (* leakage-weighted width: each gate's Sigma W scaled by its Vt class's
     subthreshold factor; equals [area] bitwise on an all-LVT netlist *)
  let leak_area = Netlist.total_leakage_area t lib in
  let leakage_uw =
    tech.Pops_process.Tech.i_leak_per_um *. leak_area *. vdd /. 1000.
  in
  { dynamic_uw; leakage_uw; switched_cap; area; per_node }
