(** Path selection and extraction — the "PS" of POPS.

    The optimizer works on {e bounded combinational paths}; this module
    extracts them from netlists: the critical path, or the K most
    critical paths (paper ref. [11]), each converted to a
    {!Pops_delay.Path.t} whose per-stage branch loads are the off-path
    fan-out capacitances of the real circuit.  After optimization,
    {!apply_sizing} writes the gate sizes back into the netlist. *)

type extracted = {
  nodes : int list;  (** gate ids along the path, source side first *)
  path : Pops_delay.Path.t;  (** the bounded-path view *)
  total_gates : int;
      (** length of the full source path this extraction was windowed
          from ([List.length nodes] when nothing was windowed away);
          lets the flow tell a saturated short path from a long one
          with un-walked upstream windows *)
}

val extract :
  ?input_slope:float -> lib:Pops_cell.Library.t ->
  Pops_netlist.Netlist.t -> int list -> extracted
(** [extract ~lib t nodes] builds the bounded path through the given
    gate ids (a primary-input head is dropped automatically): stage [i]'s
    branch load is everything node [i] drives except the next on-path
    gate; the terminal load is everything the last node drives plus its
    output load.
    @raise Invalid_argument if the ids are not a connected gate chain. *)

val critical :
  ?input_slope:float -> ?timing:Timing.t -> ?max_cone:int -> ?phase:int ->
  lib:Pops_cell.Library.t -> Pops_netlist.Netlist.t -> extracted
(** {!extract} on the STA critical path.  Pass [timing] (an analysis of
    the same netlist) to reuse it incrementally — it is brought up to
    date with {!Timing.update} instead of re-running {!Timing.analyze}
    from scratch.  [max_cone] windows the extraction to [max_cone] path
    nodes — [phase] (default 0) picks which window, counted from the
    endpoint, wrapping past the head; by default the whole path is
    extracted. *)

type scratch
(** Reusable enumeration state for {!k_worst}: the per-node metric
    arrays, the search-tree arena and the unboxed priority queue.
    Create one with {!make_scratch}, hand it to repeated calls (grown on
    demand, never shrunk) and the enumerator's steady-state allocation
    drops to the materialized winner paths.  Not thread-safe: one
    scratch per domain. *)

val make_scratch : unit -> scratch

val k_worst :
  ?scratch:scratch -> ?k:int -> ?input_slope:float ->
  lib:Pops_cell.Library.t -> Pops_netlist.Netlist.t -> extracted list
(** The [k] (default 5) most critical {e distinct} input-to-output paths
    by STA delay, worst first, found by best-first enumeration with
    longest-suffix pruning.

    The search tree lives in a flat arena (node, parent, distance
    arrays) over the netlist's {!Pops_netlist.Netlist.Csr} snapshot —
    no per-path lists are built while enumerating, so memory is
    [O(V + E + k * depth)] even on million-gate designs; only the
    surviving candidates are materialized by walking parent pointers.
    Pass [scratch] to reuse the arrays across calls; results are
    identical with or without it. *)

type incr
(** Persistent endpoint state for slack-driven path selection: a
    lazy-deletion min-heap over (slack, endpoint id) entries, kept
    current across netlist edits by the {!Timing.slacks} change feed.
    Build once per optimization loop with {!incr_make}. *)

val incr_make : Pops_netlist.Netlist.t -> Timing.slacks -> incr
(** Seed the endpoint heap with every primary output whose slack is
    defined.  The slacks annotation must belong to a timing of the same
    netlist. *)

val k_worst_incr :
  ?k:int -> ?min_slack:float -> ?max_cone:int -> ?phase:int ->
  ?input_slope:float -> lib:Pops_cell.Library.t -> incr -> extracted list
(** Up to [k] (default 5) {e gate-disjoint} critical cones through the
    currently worst-slack endpoints, worst first: brings the slacks up
    to date ({!Timing.slacks_update}), folds changed endpoints into the
    heap, then pops endpoints in (slack, id) order — skipping stale
    entries and any cone sharing a gate with an already selected one —
    until [k] cones are selected, the next endpoint's slack is
    [>= min_slack] (default [0.]: timing met there, nothing critical
    remains), or [max 64 (16 k)] distinct candidates have been probed
    (on high-fanout designs thousands of violating endpoints share one
    spine; probing them all costs more than the round's re-timing, and
    the flow only needs the worst few disjoint cones).  Each cone is
    one window of at most [max_cone] (default
    48) path nodes: the protocol underneath is a bounded-path engine,
    and a bounded edit window keeps the next round's incremental re-time
    confined to a small cone.  [phase] (default 0) picks the window —
    0 is the endpoint side, each higher phase one window further
    upstream, wrapping past the head; callers advance it when the
    current windows stop yielding improvement ({!extracted.total_gates}
    tells how many windows a cone has).  Only endpoints whose slack
    changed since the previous call cost heap work, so a converging
    optimization round is [O(changed + k * depth)] instead of a full
    re-enumeration.  The selection is deterministic: the probe bound
    counts only valid, non-duplicate pops, and the valid pop sequence
    of a carried heap equals a freshly built one's, so the result is
    what sorting all endpoints by (slack, id) from scratch and probing
    the same bounded prefix would pick. *)

val k_worst_reference :
  ?k:int -> ?input_slope:float -> lib:Pops_cell.Library.t ->
  Pops_netlist.Netlist.t -> extracted list
(** The pre-arena enumeration (cons-cell path payloads): the oracle
    {!k_worst} is tested against in the equivalence suite, and the
    baseline the [sta_scale] benchmark measures.  Same results as
    {!k_worst}, not for production use. *)

val apply_sizing : Pops_netlist.Netlist.t -> int list -> float array -> unit
(** [apply_sizing t nodes sizing] writes the path sizing back into the
    netlist (entry 0 included — the extracted path's drive stage is a
    real gate).
    @raise Invalid_argument on length mismatch. *)
