(** Path selection and extraction — the "PS" of POPS.

    The optimizer works on {e bounded combinational paths}; this module
    extracts them from netlists: the critical path, or the K most
    critical paths (paper ref. [11]), each converted to a
    {!Pops_delay.Path.t} whose per-stage branch loads are the off-path
    fan-out capacitances of the real circuit.  After optimization,
    {!apply_sizing} writes the gate sizes back into the netlist. *)

type extracted = {
  nodes : int list;  (** gate ids along the path, source side first *)
  path : Pops_delay.Path.t;  (** the bounded-path view *)
}

val extract :
  ?input_slope:float -> lib:Pops_cell.Library.t ->
  Pops_netlist.Netlist.t -> int list -> extracted
(** [extract ~lib t nodes] builds the bounded path through the given
    gate ids (a primary-input head is dropped automatically): stage [i]'s
    branch load is everything node [i] drives except the next on-path
    gate; the terminal load is everything the last node drives plus its
    output load.
    @raise Invalid_argument if the ids are not a connected gate chain. *)

val critical :
  ?input_slope:float -> ?timing:Timing.t -> lib:Pops_cell.Library.t ->
  Pops_netlist.Netlist.t -> extracted
(** {!extract} on the STA critical path.  Pass [timing] (an analysis of
    the same netlist) to reuse it incrementally — it is brought up to
    date with {!Timing.update} instead of re-running {!Timing.analyze}
    from scratch. *)

val k_worst :
  ?k:int -> ?input_slope:float -> lib:Pops_cell.Library.t ->
  Pops_netlist.Netlist.t -> extracted list
(** The [k] (default 5) most critical {e distinct} input-to-output paths
    by STA delay, worst first, found by best-first enumeration with
    longest-suffix pruning.

    The search tree lives in a flat arena (node, parent, distance
    arrays) over the netlist's {!Pops_netlist.Netlist.Csr} snapshot —
    no per-path lists are built while enumerating, so memory is
    [O(V + E + k * depth)] even on million-gate designs; only the
    surviving candidates are materialized by walking parent pointers. *)

val k_worst_reference :
  ?k:int -> ?input_slope:float -> lib:Pops_cell.Library.t ->
  Pops_netlist.Netlist.t -> extracted list
(** The pre-arena enumeration (cons-cell path payloads): the oracle
    {!k_worst} is tested against in the equivalence suite, and the
    baseline the [sta_scale] benchmark measures.  Same results as
    {!k_worst}, not for production use. *)

val apply_sizing : Pops_netlist.Netlist.t -> int list -> float array -> unit
(** [apply_sizing t nodes sizing] writes the path sizing back into the
    netlist (entry 0 included — the extracted path's drive stage is a
    real gate).
    @raise Invalid_argument on length mismatch. *)
