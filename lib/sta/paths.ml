module Netlist = Pops_netlist.Netlist
module Gk = Pops_cell.Gate_kind
module Edge = Pops_delay.Edge
module Path = Pops_delay.Path
module Model = Pops_delay.Model

type extracted = { nodes : int list; path : Path.t }

let is_gate t id =
  match (Netlist.node t id).Netlist.kind with
  | Netlist.Cell _ -> true
  | Netlist.Primary_input -> false

let extract ?input_slope ~lib t nodes =
  let nodes = List.filter (is_gate t) nodes in
  if nodes = [] then invalid_arg "Paths.extract: no gates in path";
  let rec check = function
    | a :: (b :: _ as rest) ->
      let nb = Netlist.node t b in
      if not (Array.exists (fun f -> f = a) nb.Netlist.fanins) then
        invalid_arg
          (Printf.sprintf "Paths.extract: %d does not drive %d" a b);
      check rest
    | [ _ ] | [] -> ()
  in
  check nodes;
  let tech = Netlist.tech t in
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  let stage_of i id =
    let node = Netlist.node t id in
    let kind =
      match node.Netlist.kind with
      | Netlist.Cell k -> k
      | Netlist.Primary_input -> assert false
    in
    let cell = Pops_cell.Library.find lib kind in
    let total_load = Netlist.load_on t id in
    let branch =
      if i = n - 1 then 0.
      else
        let next = Netlist.node t arr.(i + 1) in
        Float.max 0. (total_load -. next.Netlist.cin)
    in
    { Path.cell; branch }
  in
  let stages = List.mapi stage_of nodes in
  let c_out =
    let last_load = Netlist.load_on t arr.(n - 1) in
    Float.max last_load (0.5 *. tech.Pops_process.Tech.cmin)
  in
  let drive_cin = (Netlist.node t arr.(0)).Netlist.cin in
  let path = Path.make ?input_slope ~drive_cin ~tech ~c_out stages in
  { nodes; path }

(* edge-agnostic per-gate delay estimate (nominal input slope, worst
   output edge) used as the additive metric for path enumeration; dense
   array indexed by node id.  Iterates the CSR order array (no list
   materialization) but evaluates each gate with the same library cell
   and model call as always, so estimates are bit-identical to the
   pre-CSR loop. *)
let delay_estimates ~lib t =
  let tech = Netlist.tech t in
  let tau_in = 2. *. tech.Pops_process.Tech.tau in
  let est = Array.make (Netlist.id_bound t) 0. in
  let c = Netlist.csr t in
  let node_of = Netlist.Csr.node_of c in
  for i = 0 to Netlist.Csr.length c - 1 do
    let id = node_of.(i) in
    let n = Netlist.node t id in
    match n.Netlist.kind with
    | Netlist.Primary_input -> est.(id) <- 0.
    | Netlist.Cell kind ->
      let cell = Pops_cell.Library.find lib kind in
      let cload =
        Netlist.load_on t id +. Pops_cell.Cell.cpar cell ~cin:n.Netlist.cin
      in
      let d edge_out =
        fst (Model.stage_delay cell ~edge_out ~tau_in ~cin:n.Netlist.cin ~cload)
      in
      est.(id) <- Float.max (d Edge.Rising) (d Edge.Falling)
  done;
  est

let critical ?input_slope ?timing ~lib t =
  let timing =
    match timing with
    | Some tm ->
      Timing.update tm;
      tm
    | None -> Timing.analyze ?input_slope ~lib t
  in
  extract ?input_slope ~lib t (Timing.critical_path timing)

module Pq = struct
  (* tiny max-priority queue on (priority, payload) *)
  type 'a t = { mutable heap : (float * 'a) array; mutable size : int }

  let create () = { heap = Array.make 64 (0., Obj.magic 0); size = 0 }

  let swap q i j =
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(j);
    q.heap.(j) <- tmp

  let push q prio v =
    if q.size >= Array.length q.heap then begin
      let bigger = Array.make (2 * Array.length q.heap) q.heap.(0) in
      Array.blit q.heap 0 bigger 0 q.size;
      q.heap <- bigger
    end;
    q.heap.(q.size) <- (prio, v);
    let i = ref q.size in
    q.size <- q.size + 1;
    while !i > 0 && fst q.heap.((!i - 1) / 2) < fst q.heap.(!i) do
      swap q !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop q =
    if q.size = 0 then None
    else begin
      let top = q.heap.(0) in
      q.size <- q.size - 1;
      q.heap.(0) <- q.heap.(q.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < q.size && fst q.heap.(l) > fst q.heap.(!largest) then largest := l;
        if r < q.size && fst q.heap.(r) > fst q.heap.(!largest) then largest := r;
        if !largest <> !i then begin
          swap q !i !largest;
          i := !largest
        end
        else continue := false
      done;
      Some top
    end
end

(* shared tail of both k_worst implementations: re-rank candidates by
   exact extracted path delay; deduplicate on the gate-only node list
   (two raw paths may share every gate and differ only in the primary
   input) *)
let rank_candidates ?input_slope ~lib t ~k candidates =
  let seen = Hashtbl.create 16 in
  let extracted =
    List.filter_map
      (fun nodes ->
        match extract ?input_slope ~lib t nodes with
        | e ->
          let key = String.concat "," (List.map string_of_int e.nodes) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.replace seen key ();
            Some e
          end
        | exception Invalid_argument _ -> None)
      candidates
  in
  let with_delay =
    List.map
      (fun e ->
        let sizing =
          Array.of_list
            (List.map (fun id -> (Netlist.node t id).Netlist.cin) e.nodes)
        in
        (Path.delay_worst e.path sizing, e))
      extracted
  in
  List.sort (fun (d1, _) (d2, _) -> compare d2 d1) with_delay
  |> List.filteri (fun i _ -> i < k)
  |> List.map snd

(* Best-first enumeration over the CSR arrays with an {e arena} of
   search-tree entries (node, parent, distance) in three flat arrays:
   the frontier never materializes a per-path list, so enumeration space
   is O(V + E + pushes) regardless of path depth — on a 1M-gate design
   the legacy cons-per-push variant kept the same asymptotic tree but
   rebuilt every emitted path eagerly; here only the <= 3k winners are
   materialized, by walking parent pointers.  Push order, priorities and
   the pop bound are identical to the legacy enumeration, so the
   surviving paths are too. *)
let k_worst ?(k = 5) ?input_slope ~lib t =
  let est = delay_estimates ~lib t in
  let c = Netlist.csr t in
  let node_of = Netlist.Csr.node_of c in
  let fanout_off = Netlist.Csr.fanout_off c in
  let fanout = Netlist.Csr.fanout c in
  (* longest-suffix bound per node under the estimate metric; CSR fanout
     entries replay the fanout-list fold order *)
  let suffix = Array.make (Netlist.id_bound t) 0. in
  for i = Netlist.Csr.length c - 1 downto 0 do
    let id = node_of.(i) in
    let best = ref 0. in
    for fo = fanout_off.(id) to fanout_off.(id + 1) - 1 do
      let cn = fanout.(fo) in
      best := Float.max !best (est.(cn) +. suffix.(cn))
    done;
    suffix.(id) <- !best
  done;
  let output_flag = Array.make (Netlist.id_bound t) false in
  List.iter (fun (id, _) -> output_flag.(id) <- true) (Netlist.outputs t);
  let a_node = ref (Array.make 1024 0)
  and a_parent = ref (Array.make 1024 (-1))
  and a_d = ref (Array.make 1024 0.)
  and a_len = ref 0 in
  let push_entry node parent d =
    if !a_len >= Array.length !a_node then begin
      let cap = 2 * Array.length !a_node in
      let grow_i a = Array.append a (Array.make (Array.length a) 0) in
      a_node := grow_i !a_node;
      a_parent := grow_i !a_parent;
      a_d := Array.append !a_d (Array.make (Array.length !a_d) 0.);
      ignore cap
    end;
    let e = !a_len in
    !a_node.(e) <- node;
    !a_parent.(e) <- parent;
    !a_d.(e) <- d;
    a_len := e + 1;
    e
  in
  let q = Pq.create () in
  List.iter
    (fun pi -> Pq.push q suffix.(pi) (push_entry pi (-1) 0.))
    (Netlist.inputs t);
  let results = ref [] and n_results = ref 0 and pops = ref 0 in
  let want = 3 * k in
  let rec search () =
    if !n_results >= want || !pops > 200_000 then ()
    else
      match Pq.pop q with
      | None -> ()
      | Some (_, e) ->
        incr pops;
        let head = !a_node.(e) in
        if output_flag.(head) then begin
          results := e :: !results;
          incr n_results
        end;
        let d = !a_d.(e) in
        for fo = fanout_off.(head) to fanout_off.(head + 1) - 1 do
          let cn = fanout.(fo) in
          let d' = d +. est.(cn) in
          Pq.push q (d' +. suffix.(cn)) (push_entry cn e d')
        done;
        search ()
  in
  search ();
  let path_of_entry e =
    let rec go e acc = if e < 0 then acc else go !a_parent.(e) (!a_node.(e) :: acc) in
    go e []
  in
  rank_candidates ?input_slope ~lib t ~k (List.rev_map path_of_entry !results)

(* the pre-arena enumeration (cons-cell payloads, list topological
   order); the oracle k_worst is tested against *)
let k_worst_reference ?(k = 5) ?input_slope ~lib t =
  let est = delay_estimates ~lib t in
  (* longest-suffix bound per node under the estimate metric *)
  let suffix = Array.make (Netlist.id_bound t) 0. in
  let order = List.rev (Netlist.topological_order t) in
  List.iter
    (fun id ->
      let n = Netlist.node t id in
      let best =
        List.fold_left
          (fun acc c -> Float.max acc (est.(c) +. suffix.(c)))
          0. n.Netlist.fanouts
      in
      suffix.(id) <- best)
    order;
  let output_flag = Array.make (Netlist.id_bound t) false in
  List.iter (fun (id, _) -> output_flag.(id) <- true) (Netlist.outputs t);
  let is_output id = output_flag.(id) in
  let q = Pq.create () in
  List.iter
    (fun pi -> Pq.push q suffix.(pi) (0., [ pi ]))
    (Netlist.inputs t);
  let results = ref [] and n_results = ref 0 and pops = ref 0 in
  let want = 3 * k in
  let rec search () =
    if !n_results >= want || !pops > 200_000 then ()
    else
      match Pq.pop q with
      | None -> ()
      | Some (_, (d, rev_nodes)) ->
        incr pops;
        let head = List.hd rev_nodes in
        let node = Netlist.node t head in
        if is_output head then begin
          results := List.rev rev_nodes :: !results;
          incr n_results
        end;
        List.iter
          (fun c ->
            let d' = d +. est.(c) in
            Pq.push q (d' +. suffix.(c)) (d', c :: rev_nodes))
          node.Netlist.fanouts;
        search ()
  in
  search ();
  rank_candidates ?input_slope ~lib t ~k (List.rev !results)

let apply_sizing t nodes sizing =
  if List.length nodes <> Array.length sizing then
    invalid_arg "Paths.apply_sizing: length mismatch";
  List.iteri (fun i id -> Netlist.set_cin t id sizing.(i)) nodes
