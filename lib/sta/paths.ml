module Netlist = Pops_netlist.Netlist
module Gk = Pops_cell.Gate_kind
module Edge = Pops_delay.Edge
module Path = Pops_delay.Path
module Model = Pops_delay.Model

type extracted = { nodes : int list; path : Path.t; total_gates : int }

let is_gate t id =
  match (Netlist.node t id).Netlist.kind with
  | Netlist.Cell _ -> true
  | Netlist.Primary_input -> false

let extract ?input_slope ~lib t nodes =
  let nodes = List.filter (is_gate t) nodes in
  if nodes = [] then invalid_arg "Paths.extract: no gates in path";
  let rec check = function
    | a :: (b :: _ as rest) ->
      let nb = Netlist.node t b in
      if not (Array.exists (fun f -> f = a) nb.Netlist.fanins) then
        invalid_arg
          (Printf.sprintf "Paths.extract: %d does not drive %d" a b);
      check rest
    | [ _ ] | [] -> ()
  in
  check nodes;
  let tech = Netlist.tech t in
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  let stage_of i id =
    let node = Netlist.node t id in
    let kind =
      match node.Netlist.kind with
      | Netlist.Cell k -> k
      | Netlist.Primary_input -> assert false
    in
    let cell = Pops_cell.Library.find_vt lib kind node.Netlist.vt in
    let total_load = Netlist.load_on t id in
    let branch =
      if i = n - 1 then 0.
      else
        let next = Netlist.node t arr.(i + 1) in
        Float.max 0. (total_load -. next.Netlist.cin)
    in
    { Path.cell; branch }
  in
  let stages = List.mapi stage_of nodes in
  let c_out =
    let last_load = Netlist.load_on t arr.(n - 1) in
    Float.max last_load (0.5 *. tech.Pops_process.Tech.cmin)
  in
  let drive_cin = (Netlist.node t arr.(0)).Netlist.cin in
  let path = Path.make ?input_slope ~drive_cin ~tech ~c_out stages in
  { nodes; path; total_gates = n }

(* Per-kind-code delay coefficients for the estimate pass, mirroring
   {!Timing.build_tables}: everything {!Model.stage_delay} reads,
   pre-multiplied where the grouping keeps results bit-identical
   ([s *. tau] is the left-most association either way).  Building them
   is 14 library lookups per call; using them is allocation-free per
   gate, where the [Model.stage_delay] call boxed a tuple per edge. *)
type est_coeffs = {
  ec_have : bool array;
  ec_stau_hl : float array;  (* (s_hl *. tau) *. tau_factor, by 3*code+vt *)
  ec_stau_lh : float array;
  ec_cm_hl : float array;
  ec_cm_lh : float array;
  ec_par : float array;
  ec_slope_r : float array;  (* vtp_red *. tau_in *. 0.5 by Vt, tau_in = 2 tau *)
  ec_slope_f : float array;  (* vtn_red *. tau_in *. 0.5 by Vt *)
}

let est_coeffs ~lib tech =
  let n = Array.length Netlist.Csr.code_kinds in
  let nv = Pops_process.Vt.count in
  let have = Array.make n false
  and stau_hl = Array.make (nv * n) Float.nan
  and stau_lh = Array.make (nv * n) Float.nan
  and cm_hl = Array.make n Float.nan
  and cm_lh = Array.make n Float.nan
  and par = Array.make n Float.nan in
  Array.iteri
    (fun code kind ->
      match Pops_cell.Library.find lib kind with
      | (cell : Pops_cell.Cell.t) ->
        have.(code) <- true;
        Array.iter
          (fun vt ->
            let vc = Pops_process.Vt.to_int vt in
            let cv = Pops_cell.Library.find_vt lib kind vt in
            stau_hl.((nv * code) + vc) <-
              cv.s_hl *. cv.tech.Pops_process.Tech.tau *. cv.tau_factor;
            stau_lh.((nv * code) + vc) <-
              cv.s_lh *. cv.tech.Pops_process.Tech.tau *. cv.tau_factor)
          Pops_process.Vt.all;
        cm_hl.(code) <- cell.cm_ratio_hl;
        cm_lh.(code) <- cell.cm_ratio_lh;
        par.(code) <- cell.par_ratio
      | exception Not_found -> ())
    Netlist.Csr.code_kinds;
  let tau_in = 2. *. tech.Pops_process.Tech.tau in
  {
    ec_have = have;
    ec_stau_hl = stau_hl;
    ec_stau_lh = stau_lh;
    ec_cm_hl = cm_hl;
    ec_cm_lh = cm_lh;
    ec_par = par;
    ec_slope_r =
      Array.map
        (fun vt -> Pops_process.Tech.vtp_reduced_vt tech vt *. tau_in *. 0.5)
        Pops_process.Vt.all;
    ec_slope_f =
      Array.map
        (fun vt -> Pops_process.Tech.vtn_reduced_vt tech vt *. tau_in *. 0.5)
        Pops_process.Vt.all;
  }

(* edge-agnostic per-gate delay estimate (nominal input slope, worst
   output edge) used as the additive metric for path enumeration; dense
   array indexed by node id, written into [est] (caller-sized).  The
   arithmetic groups exactly as {!Model.stage_delay} groups it
   ([x /. 2.] written [x *. 0.5] is exact), so estimates are
   bit-identical to the per-gate model-call loop this replaces. *)
let delay_estimates_into ~lib t est =
  let ec = est_coeffs ~lib (Netlist.tech t) in
  let c = Netlist.csr t in
  let node_of = Netlist.Csr.node_of c in
  let kind_code = Netlist.Csr.kind_code c in
  let vt_code = Netlist.Csr.vt_code c in
  let cin = Netlist.Csr.cin c in
  let load = Netlist.Csr.load c in
  for i = 0 to Netlist.Csr.length c - 1 do
    let id = node_of.(i) in
    let code = kind_code.(id) in
    if code = -1 then est.(id) <- 0.
    else if code = -2 || not ec.ec_have.(code) then raise Not_found
    else begin
      let vc = vt_code.(id) in
      let sx = (3 * code) + vc in
      let cin_v = cin.(id) in
      let cload = load.(id) +. (ec.ec_par.(code) *. cin_v) in
      let tau_r = ec.ec_stau_lh.(sx) *. cload /. cin_v in
      let tau_f = ec.ec_stau_hl.(sx) *. cload /. cin_v in
      let cm_r = ec.ec_cm_lh.(code) *. cin_v in
      let cm_f = ec.ec_cm_hl.(code) *. cin_v in
      let d_r =
        ec.ec_slope_r.(vc)
        +. ((1. +. (2. *. cm_r /. (cm_r +. cload))) *. tau_r *. 0.5)
      in
      let d_f =
        ec.ec_slope_f.(vc)
        +. ((1. +. (2. *. cm_f /. (cm_f +. cload))) *. tau_f *. 0.5)
      in
      est.(id) <- Float.max d_r d_f
    end
  done

let delay_estimates ~lib t =
  let est = Array.make (Netlist.id_bound t) 0. in
  delay_estimates_into ~lib t est;
  est

(* The [phase]-th window of at most [max_cone] elements, counted from
   the {e end} of [l]: phase 0 is the endpoint-side window, each higher
   phase moves one window upstream, and phases wrap once they pass the
   head — so walking the phase visits every segment of a long path.
   Lists shorter than [max_cone] are returned whole at every phase. *)
let cone_window ~max_cone ~phase l =
  let len = List.length l in
  if len <= max_cone then l
  else begin
    let segments = (len + max_cone - 1) / max_cone in
    let p = phase mod segments in
    let stop = len - (p * max_cone) in
    let start = max 0 (stop - max_cone) in
    let rec drop i = function
      | _ :: rest when i > 0 -> drop (i - 1) rest
      | rest -> rest
    in
    let rec take i = function
      | x :: rest when i > 0 -> x :: take (i - 1) rest
      | _ -> []
    in
    take (stop - start) (drop start l)
  end

let critical ?input_slope ?timing ?max_cone ?(phase = 0) ~lib t =
  let timing =
    match timing with
    | Some tm ->
      Timing.update tm;
      tm
    | None -> Timing.analyze ?input_slope ~lib t
  in
  let nodes = Timing.critical_path timing in
  let total = List.length nodes in
  let nodes =
    match max_cone with
    | Some n -> cone_window ~max_cone:n ~phase nodes
    | None -> nodes
  in
  { (extract ?input_slope ~lib t nodes) with total_gates = total }

module Pq = struct
  (* tiny max-priority queue on (priority, payload) *)
  type 'a t = { mutable heap : (float * 'a) array; mutable size : int }

  let create () = { heap = Array.make 64 (0., Obj.magic 0); size = 0 }

  let swap q i j =
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(j);
    q.heap.(j) <- tmp

  let push q prio v =
    if q.size >= Array.length q.heap then begin
      let bigger = Array.make (2 * Array.length q.heap) q.heap.(0) in
      Array.blit q.heap 0 bigger 0 q.size;
      q.heap <- bigger
    end;
    q.heap.(q.size) <- (prio, v);
    let i = ref q.size in
    q.size <- q.size + 1;
    while !i > 0 && fst q.heap.((!i - 1) / 2) < fst q.heap.(!i) do
      swap q !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop q =
    if q.size = 0 then None
    else begin
      let top = q.heap.(0) in
      q.size <- q.size - 1;
      q.heap.(0) <- q.heap.(q.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < q.size && fst q.heap.(l) > fst q.heap.(!largest) then largest := l;
        if r < q.size && fst q.heap.(r) > fst q.heap.(!largest) then largest := r;
        if !largest <> !i then begin
          swap q !i !largest;
          i := !largest
        end
        else continue := false
      done;
      Some top
    end
end

(* shared tail of both k_worst implementations: re-rank candidates by
   exact extracted path delay; deduplicate on the gate-only node list
   (two raw paths may share every gate and differ only in the primary
   input) *)
let rank_candidates ?input_slope ~lib t ~k candidates =
  let seen = Hashtbl.create 16 in
  let extracted =
    List.filter_map
      (fun nodes ->
        match extract ?input_slope ~lib t nodes with
        | e ->
          let key = String.concat "," (List.map string_of_int e.nodes) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.replace seen key ();
            Some e
          end
        | exception Invalid_argument _ -> None)
      candidates
  in
  let with_delay =
    List.map
      (fun e ->
        let sizing =
          Array.of_list
            (List.map (fun id -> (Netlist.node t id).Netlist.cin) e.nodes)
        in
        (Path.delay_worst e.path sizing, e))
      extracted
  in
  List.sort (fun (d1, _) (d2, _) -> compare d2 d1) with_delay
  |> List.filteri (fun i _ -> i < k)
  |> List.map snd

(* Reusable enumeration state: the estimate/suffix/output metric arrays,
   the arena of search-tree entries and the unboxed priority queue
   (parallel float-priority / int-payload arrays — the tuple-based
   {!Pq} boxed a float and a pair per push, the dominant term of the
   enumerator's ~40 minor words per gate).  Hand one scratch to repeated
   {!k_worst} calls and the steady-state allocation per call drops to
   the materialized winner paths. *)
type scratch = {
  mutable sc_est : float array;
  mutable sc_suffix : float array;
  mutable sc_out : bool array;
  mutable sc_qp : float array;  (* priorities *)
  mutable sc_qe : int array;  (* payloads: arena entry indices *)
  mutable sc_qn : int;
  mutable sc_node : int array;
  mutable sc_parent : int array;
  mutable sc_d : float array;
  mutable sc_len : int;
}

let make_scratch () =
  {
    sc_est = [||];
    sc_suffix = [||];
    sc_out = [||];
    sc_qp = Array.make 1024 0.;
    sc_qe = Array.make 1024 0;
    sc_qn = 0;
    sc_node = Array.make 1024 0;
    sc_parent = Array.make 1024 (-1);
    sc_d = Array.make 1024 0.;
    sc_len = 0;
  }

let scratch_fit sc bound =
  if Array.length sc.sc_est < bound then begin
    sc.sc_est <- Array.make bound 0.;
    sc.sc_suffix <- Array.make bound 0.;
    sc.sc_out <- Array.make bound false
  end;
  sc.sc_qn <- 0;
  sc.sc_len <- 0

(* max-heap on (priority, entry); same sift order as {!Pq}, so pop
   sequences — and hence the surviving paths — are identical *)
let q_push sc prio e =
  if sc.sc_qn >= Array.length sc.sc_qp then begin
    let n = Array.length sc.sc_qp in
    let qp = Array.make (2 * n) 0. and qe = Array.make (2 * n) 0 in
    Array.blit sc.sc_qp 0 qp 0 n;
    Array.blit sc.sc_qe 0 qe 0 n;
    sc.sc_qp <- qp;
    sc.sc_qe <- qe
  end;
  let qp = sc.sc_qp and qe = sc.sc_qe in
  qp.(sc.sc_qn) <- prio;
  qe.(sc.sc_qn) <- e;
  let i = ref sc.sc_qn in
  sc.sc_qn <- sc.sc_qn + 1;
  while !i > 0 && qp.((!i - 1) / 2) < qp.(!i) do
    let p = (!i - 1) / 2 in
    let tp = qp.(p) and te = qe.(p) in
    qp.(p) <- qp.(!i);
    qe.(p) <- qe.(!i);
    qp.(!i) <- tp;
    qe.(!i) <- te;
    i := p
  done

(* pops the top entry index, -1 when empty *)
let q_pop sc =
  if sc.sc_qn = 0 then -1
  else begin
    let qp = sc.sc_qp and qe = sc.sc_qe in
    let top = qe.(0) in
    sc.sc_qn <- sc.sc_qn - 1;
    qp.(0) <- qp.(sc.sc_qn);
    qe.(0) <- qe.(sc.sc_qn);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let largest = ref !i in
      if l < sc.sc_qn && qp.(l) > qp.(!largest) then largest := l;
      if r < sc.sc_qn && qp.(r) > qp.(!largest) then largest := r;
      if !largest <> !i then begin
        let tp = qp.(!i) and te = qe.(!i) in
        qp.(!i) <- qp.(!largest);
        qe.(!i) <- qe.(!largest);
        qp.(!largest) <- tp;
        qe.(!largest) <- te;
        i := !largest
      end
      else continue := false
    done;
    top
  end

let arena_push sc node parent d =
  if sc.sc_len >= Array.length sc.sc_node then begin
    let n = Array.length sc.sc_node in
    let grow_i a =
      let b = Array.make (2 * n) 0 in
      Array.blit a 0 b 0 n;
      b
    in
    sc.sc_node <- grow_i sc.sc_node;
    sc.sc_parent <- grow_i sc.sc_parent;
    let d' = Array.make (2 * n) 0. in
    Array.blit sc.sc_d 0 d' 0 n;
    sc.sc_d <- d'
  end;
  let e = sc.sc_len in
  sc.sc_node.(e) <- node;
  sc.sc_parent.(e) <- parent;
  sc.sc_d.(e) <- d;
  sc.sc_len <- e + 1;
  e

(* Best-first enumeration over the CSR arrays with an {e arena} of
   search-tree entries (node, parent, distance) in three flat arrays:
   the frontier never materializes a per-path list, so enumeration space
   is O(V + E + pushes) regardless of path depth; only the <= 3k winners
   are materialized, by walking parent pointers.  Push order, priorities
   and the pop bound are identical to the legacy enumeration, so the
   surviving paths are too. *)
let k_worst ?scratch ?(k = 5) ?input_slope ~lib t =
  let sc = match scratch with Some sc -> sc | None -> make_scratch () in
  scratch_fit sc (Netlist.id_bound t);
  delay_estimates_into ~lib t sc.sc_est;
  let est = sc.sc_est in
  let c = Netlist.csr t in
  let node_of = Netlist.Csr.node_of c in
  let fanout_off = Netlist.Csr.fanout_off c in
  let fanout = Netlist.Csr.fanout c in
  (* longest-suffix bound per node under the estimate metric; CSR fanout
     entries replay the fanout-list fold order *)
  let suffix = sc.sc_suffix in
  for i = Netlist.Csr.length c - 1 downto 0 do
    let id = node_of.(i) in
    let best = ref 0. in
    for fo = fanout_off.(id) to fanout_off.(id + 1) - 1 do
      let cn = fanout.(fo) in
      best := Float.max !best (est.(cn) +. suffix.(cn))
    done;
    suffix.(id) <- !best
  done;
  let output_flag = sc.sc_out in
  let outputs = Netlist.outputs t in
  List.iter (fun (id, _) -> output_flag.(id) <- true) outputs;
  List.iter
    (fun pi -> q_push sc suffix.(pi) (arena_push sc pi (-1) 0.))
    (Netlist.inputs t);
  let results = ref [] and n_results = ref 0 and pops = ref 0 in
  let want = 3 * k in
  let rec search () =
    if !n_results >= want || !pops > 200_000 then ()
    else
      let e = q_pop sc in
      if e < 0 then ()
      else begin
        incr pops;
        let head = sc.sc_node.(e) in
        if output_flag.(head) then begin
          results := e :: !results;
          incr n_results
        end;
        let d = sc.sc_d.(e) in
        for fo = fanout_off.(head) to fanout_off.(head + 1) - 1 do
          let cn = fanout.(fo) in
          let d' = d +. est.(cn) in
          q_push sc (d' +. suffix.(cn)) (arena_push sc cn e d')
        done;
        search ()
      end
  in
  search ();
  (* un-flag before returning: the scratch may be reused on a netlist
     with a different output set *)
  let path_of_entry e =
    let rec go e acc =
      if e < 0 then acc else go sc.sc_parent.(e) (sc.sc_node.(e) :: acc)
    in
    go e []
  in
  let candidates = List.rev_map path_of_entry !results in
  List.iter (fun (id, _) -> output_flag.(id) <- false) outputs;
  rank_candidates ?input_slope ~lib t ~k candidates

(* the pre-arena enumeration (cons-cell payloads, list topological
   order); the oracle k_worst is tested against *)
let k_worst_reference ?(k = 5) ?input_slope ~lib t =
  let est = delay_estimates ~lib t in
  (* longest-suffix bound per node under the estimate metric *)
  let suffix = Array.make (Netlist.id_bound t) 0. in
  let order = List.rev (Netlist.topological_order t) in
  List.iter
    (fun id ->
      let n = Netlist.node t id in
      let best =
        List.fold_left
          (fun acc c -> Float.max acc (est.(c) +. suffix.(c)))
          0. n.Netlist.fanouts
      in
      suffix.(id) <- best)
    order;
  let output_flag = Array.make (Netlist.id_bound t) false in
  List.iter (fun (id, _) -> output_flag.(id) <- true) (Netlist.outputs t);
  let is_output id = output_flag.(id) in
  let q = Pq.create () in
  List.iter
    (fun pi -> Pq.push q suffix.(pi) (0., [ pi ]))
    (Netlist.inputs t);
  let results = ref [] and n_results = ref 0 and pops = ref 0 in
  let want = 3 * k in
  let rec search () =
    if !n_results >= want || !pops > 200_000 then ()
    else
      match Pq.pop q with
      | None -> ()
      | Some (_, (d, rev_nodes)) ->
        incr pops;
        let head = List.hd rev_nodes in
        let node = Netlist.node t head in
        if is_output head then begin
          results := List.rev rev_nodes :: !results;
          incr n_results
        end;
        List.iter
          (fun c ->
            let d' = d +. est.(c) in
            Pq.push q (d' +. suffix.(c)) (d', c :: rev_nodes))
          node.Netlist.fanouts;
        search ()
  in
  search ();
  rank_candidates ?input_slope ~lib t ~k (List.rev !results)

(* Persistent endpoint heap for slack-driven selection: a lazy-deletion
   min-heap over (slack, endpoint id), lexicographic so the pop sequence
   over valid entries is exactly the endpoints sorted worst-slack-first.
   Stale entries (endpoint deleted, undesignated, or slack moved since
   the push) are detected on pop by comparing the stored priority
   against the current {!Timing.node_slack} bitwise, and dropped;
   {!Timing.slacks_changed_take} feeds fresh entries after every update,
   so every output with a defined slack always has at least one live
   entry.  Valid pops are re-pushed (after the selection loop, through a
   buffer), keeping the heap correct across rounds without rebuilds. *)
type incr = {
  in_s : Timing.slacks;
  in_nl : Netlist.t;
  mutable in_hp : float array;  (* slack priorities *)
  mutable in_hi : int array;  (* endpoint ids *)
  mutable in_hn : int;
}

(* lexicographic (slack, id) min-order; unique per endpoint *)
let incr_less p1 i1 p2 i2 = p1 < p2 || (p1 = p2 && i1 < i2)

let incr_push q prio id =
  if Float.is_nan prio then ()
  else begin
    if q.in_hn >= Array.length q.in_hp then begin
      let n = Array.length q.in_hp in
      let hp = Array.make (2 * n) 0. and hi = Array.make (2 * n) 0 in
      Array.blit q.in_hp 0 hp 0 n;
      Array.blit q.in_hi 0 hi 0 n;
      q.in_hp <- hp;
      q.in_hi <- hi
    end;
    let hp = q.in_hp and hi = q.in_hi in
    hp.(q.in_hn) <- prio;
    hi.(q.in_hn) <- id;
    let i = ref q.in_hn in
    q.in_hn <- q.in_hn + 1;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      incr_less hp.(!i) hi.(!i) hp.(p) hi.(p)
    do
      let p = (!i - 1) / 2 in
      let tp = hp.(p) and ti = hi.(p) in
      hp.(p) <- hp.(!i);
      hi.(p) <- hi.(!i);
      hp.(!i) <- tp;
      hi.(!i) <- ti;
      i := p
    done
  end

(* pops the minimum (slack, id); [None] when empty *)
let incr_pop q =
  if q.in_hn = 0 then None
  else begin
    let hp = q.in_hp and hi = q.in_hi in
    let top = (hp.(0), hi.(0)) in
    q.in_hn <- q.in_hn - 1;
    hp.(0) <- hp.(q.in_hn);
    hi.(0) <- hi.(q.in_hn);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.in_hn && incr_less hp.(l) hi.(l) hp.(!smallest) hi.(!smallest)
      then smallest := l;
      if r < q.in_hn && incr_less hp.(r) hi.(r) hp.(!smallest) hi.(!smallest)
      then smallest := r;
      if !smallest <> !i then begin
        let tp = hp.(!i) and ti = hi.(!i) in
        hp.(!i) <- hp.(!smallest);
        hi.(!i) <- hi.(!smallest);
        hp.(!smallest) <- tp;
        hi.(!smallest) <- ti;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

let incr_make nl slacks =
  let q =
    {
      in_s = slacks;
      in_nl = nl;
      in_hp = Array.make 256 0.;
      in_hi = Array.make 256 0;
      in_hn = 0;
    }
  in
  List.iter
    (fun (id, _) -> incr_push q (Timing.node_slack slacks id) id)
    (Netlist.outputs nl);
  q

let k_worst_incr ?(k = 5) ?(min_slack = 0.) ?(max_cone = 48) ?(phase = 0)
    ?input_slope ~lib q =
  let s = q.in_s and t = q.in_nl in
  Timing.slacks_update s;
  List.iter
    (fun id ->
      if Netlist.is_output t id then incr_push q (Timing.node_slack s id) id)
    (Timing.slacks_changed_take s);
  let tm = Timing.slacks_timing s in
  let seen = Hashtbl.create 16 in
  let stamped = Hashtbl.create 64 in
  let deferred = ref [] in
  let defer prio id = deferred := (prio, id) :: !deferred in
  let results = ref [] and n_results = ref 0 in
  (* Bound the candidates probed for disjointness, not just the winners:
     on high-fanout designs thousands of violating endpoints share one
     critical spine, and probing every one of them each round costs more
     than the round's re-timing.  The bound counts only {e valid} pops
     (stale entries evaporate for free), so a carried heap and a fresh
     {!incr_make} heap — whose valid pop sequences are identical — give
     up after the same candidates and select the same cones. *)
  let probe_limit = max 64 (16 * k) in
  let probes = ref 0 in
  let rec select () =
    if !n_results >= k || !probes >= probe_limit then ()
    else
      match incr_pop q with
      | None -> ()
      | Some (prio, id) ->
        let cur = Timing.node_slack s id in
        (* lazy deletion: entry must match the live slack bitwise (a NaN
           current slack never matches — the endpoint left the defined
           set and its entries just evaporate) *)
        if not (Netlist.node_exists t id && Netlist.is_output t id && cur = prio)
        then select ()
        else if prio >= min_slack then
          (* heap is sorted: nothing more critical remains *)
          defer prio id
        else if Hashtbl.mem seen id then select () (* duplicate entry *)
        else begin
          incr probes;
          Hashtbl.replace seen id ();
          defer prio id;
          (* bounded cone: the protocol underneath is a bounded-path
             engine, so hand it one [max_cone]-node window of the
             critical path — phase 0 is the endpoint-side window, each
             higher phase walks one window upstream (the flow advances
             the phase when the current windows saturate).  A bounded
             edit window also keeps the next round's incremental re-time
             confined to a small fan-out cone.  Only the window is ever
             materialized ({!Timing.path_window}): most pops lose the
             disjointness test below, and paying a full path walk per
             discarded probe dominated the selection. *)
          (* phase 0 needs no length: the endpoint-side window stops at
             [max_cone] nodes (or the head) on its own, so losing
             probes cost O(max_cone), not O(depth); the full-path walk
             is deferred to the winners (and to walked phases, where
             the window index depends on the path length) *)
          let skip, len_ =
            if phase = 0 then (0, max_cone)
            else begin
              let total = Timing.path_length tm id in
              let segments = (total + max_cone - 1) / max_cone in
              let skip = phase mod segments * max_cone in
              (skip, min max_cone (total - skip))
            end
          in
          let nodes = Timing.path_window tm id ~skip ~len:len_ in
          let gates = List.filter (is_gate t) nodes in
          let disjoint =
            not (List.exists (fun g -> Hashtbl.mem stamped g) gates)
          in
          (if disjoint then
             match extract ?input_slope ~lib t nodes with
             | e ->
               List.iter (fun g -> Hashtbl.replace stamped g ()) gates;
               results :=
                 { e with total_gates = Timing.path_length tm id } :: !results;
               incr n_results
             | exception Invalid_argument _ -> ());
          select ()
        end
  in
  select ();
  List.iter (fun (prio, id) -> incr_push q prio id) !deferred;
  List.rev !results

let apply_sizing t nodes sizing =
  if List.length nodes <> Array.length sizing then
    invalid_arg "Paths.apply_sizing: length mismatch";
  List.iteri (fun i id -> Netlist.set_cin t id sizing.(i)) nodes
