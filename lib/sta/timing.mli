(** Static timing analysis over a sized netlist.

    Arrival times and output transition times are propagated in
    topological order using the closed-form delay model (eqs. 1–3),
    separately for rising and falling node transitions.  Each gate
    evaluates every fan-in: the fan-in's arrival plus the stage delay
    computed with the gate's size, its total output load and the
    fan-in's transition time; the worst result per output edge wins and
    remembers which fan-in produced it (for path backtracking).

    Inverting cells map a rising input to a falling output and vice
    versa; XOR-class cells propagate both input edges to both output
    edges (conservative).

    The analysis is {e incremental}: arrivals live in dense arrays
    indexed by node id, and a {!t} remembers its position in the
    netlist's dirty log.  After netlist mutations, {!update} (called
    automatically by every query) pops a level-ordered worklist seeded
    with the dirtied nodes and re-propagates rise/fall arrivals only
    while they actually change — a re-evaluated node whose inputs did
    not move reproduces its arrival bit for bit and stops the wave.
    Keep one [t] alive across an edit loop instead of re-running
    {!analyze} per round. *)

type arrival = {
  time : float;  (** worst arrival, ps *)
  slope : float;  (** transition time of that worst event, ps *)
  from_ : (int * Pops_delay.Edge.t) option;
      (** fan-in node and its edge producing the worst arrival;
          [None] at primary inputs *)
}

type t
(** Timing annotation of one netlist under one sizing state. *)

val analyze :
  ?input_slope:float -> ?input_arrival:float -> ?level_par_min:int ->
  lib:Pops_cell.Library.t -> Pops_netlist.Netlist.t -> t
(** Run STA from scratch.  [input_slope] defaults to [2 * tau];
    [input_arrival] to 0 for every primary input.

    The pass sweeps the netlist's {!Pops_netlist.Netlist.Csr} snapshot
    level by level with an allocation-free inner loop; levels wider than
    [level_par_min] (default 2048) fan out across the shared
    {!Pops_util.Pool}.  Parallel slices write disjoint arrival slots and
    read only strictly lower levels, so the result is bit-identical to
    the sequential sweep — and to {!analyze_reference} — at any domain
    count. *)

val analyze_reference :
  ?input_slope:float -> ?input_arrival:float ->
  lib:Pops_cell.Library.t -> Pops_netlist.Netlist.t -> t
(** The pre-CSR implementation of {!analyze}: per-node record-based
    evaluation over the list topological order, sequential.  The oracle
    for the CSR-vs-legacy equivalence suite and the baseline the
    [sta_scale] benchmark reports speedups against; not for production
    use. *)

val update : t -> unit
(** Fold the netlist edits since the last analysis/update back into the
    arrival arrays: seeds a worklist with the dirty-log entries, pops it
    in topological-level order and re-evaluates nodes, propagating to
    fan-outs only when an arrival's time or slope actually changed.
    Results are bit-identical to a fresh {!analyze} of the mutated
    netlist.  All query functions call this implicitly; it is exposed
    for benchmarks and for forcing the propagation cost at a chosen
    point. *)

val arrival : t -> int -> Pops_delay.Edge.t -> arrival
(** Worst arrival of the given edge at a node's output.
    @raise Not_found for unknown nodes. *)

val node_worst : t -> int -> Pops_delay.Edge.t * arrival
(** Worst arrival over both edges at a node. *)

val critical_delay : t -> float
(** Worst arrival over all primary outputs and edges. *)

val critical_path : t -> int list
(** Node ids (primary input included) of the critical path, source
    first. *)

val path_through : t -> int -> int list
(** Critical path constrained to end at the given node. *)

val min_clock_period : ?setup:float -> t -> float
(** Minimum clock period for a netlist whose registers were split into
    pseudo primary inputs/outputs (as {!Pops_netlist.Bench_io} does for
    [DFF]s): the worst input-to-output arrival plus a setup time
    (default: one process [tau]). *)

val slack : t -> tc:float -> int -> float
(** [tc - worst arrival at node] — positive means timing met at that
    node for constraint [tc] (a path-level required-time view; the
    protocol operates on extracted paths, this is for reporting). *)
