(** Static timing analysis over a sized netlist.

    Arrival times and output transition times are propagated in
    topological order using the closed-form delay model (eqs. 1–3),
    separately for rising and falling node transitions.  Each gate
    evaluates every fan-in: the fan-in's arrival plus the stage delay
    computed with the gate's size, its total output load and the
    fan-in's transition time; the worst result per output edge wins and
    remembers which fan-in produced it (for path backtracking).

    Inverting cells map a rising input to a falling output and vice
    versa; XOR-class cells propagate both input edges to both output
    edges (conservative).

    The analysis is {e incremental}: arrivals live in dense arrays
    indexed by node id, and a {!t} remembers its position in the
    netlist's dirty log.  After netlist mutations, {!update} (called
    automatically by every query) pops a level-ordered worklist seeded
    with the dirtied nodes and re-propagates rise/fall arrivals only
    while they actually change — a re-evaluated node whose inputs did
    not move reproduces its arrival bit for bit and stops the wave.
    Keep one [t] alive across an edit loop instead of re-running
    {!analyze} per round. *)

type arrival = {
  time : float;  (** worst arrival, ps *)
  slope : float;  (** transition time of that worst event, ps *)
  from_ : (int * Pops_delay.Edge.t) option;
      (** fan-in node and its edge producing the worst arrival;
          [None] at primary inputs *)
}

type t
(** Timing annotation of one netlist under one sizing state. *)

val analyze :
  ?input_slope:float -> ?input_arrival:float -> ?level_par_min:int ->
  lib:Pops_cell.Library.t -> Pops_netlist.Netlist.t -> t
(** Run STA from scratch.  [input_slope] defaults to [2 * tau];
    [input_arrival] to 0 for every primary input.

    The pass sweeps the netlist's {!Pops_netlist.Netlist.Csr} snapshot
    level by level with an allocation-free inner loop; levels wider than
    [level_par_min] (default 2048) fan out across the shared
    {!Pops_util.Pool}.  Parallel slices write disjoint arrival slots and
    read only strictly lower levels, so the result is bit-identical to
    the sequential sweep — and to {!analyze_reference} — at any domain
    count. *)

val analyze_reference :
  ?input_slope:float -> ?input_arrival:float ->
  lib:Pops_cell.Library.t -> Pops_netlist.Netlist.t -> t
(** The pre-CSR implementation of {!analyze}: per-node record-based
    evaluation over the list topological order, sequential.  The oracle
    for the CSR-vs-legacy equivalence suite and the baseline the
    [sta_scale] benchmark reports speedups against; not for production
    use. *)

val update : t -> unit
(** Fold the netlist edits since the last analysis/update back into the
    arrival arrays: seeds a worklist with the dirty-log entries, pops it
    in topological-level order and re-evaluates nodes, propagating to
    fan-outs only when an arrival's time or slope actually changed.
    Results are bit-identical to a fresh {!analyze} of the mutated
    netlist.  All query functions call this implicitly; it is exposed
    for benchmarks and for forcing the propagation cost at a chosen
    point. *)

val arrival : t -> int -> Pops_delay.Edge.t -> arrival
(** Worst arrival of the given edge at a node's output.
    @raise Not_found for unknown nodes. *)

val node_worst : t -> int -> Pops_delay.Edge.t * arrival
(** Worst arrival over both edges at a node. *)

val critical_delay : t -> float
(** Worst arrival over all primary outputs and edges. *)

val critical_path : t -> int list
(** Node ids (primary input included) of the critical path, source
    first. *)

val path_through : t -> int -> int list
(** Critical path constrained to end at the given node. *)

val path_length : t -> int -> int
(** [List.length (path_through t id)] at provenance-pointer-walk cost:
    no per-step arrival records.
    @raise Not_found if no arrival reaches [id]. *)

val path_window : t -> int -> skip:int -> len:int -> int list
(** The [len] nodes of {!path_through}'s result starting [skip] steps
    upstream of the endpoint (so [skip = 0] is the endpoint-side
    window), source side first; shorter when the path ends inside the
    window.  Only the window is materialized — the probe-and-discard
    selection in {!Paths.k_worst_incr} calls this per candidate
    endpoint, where building the full path per probe dominated the
    round.
    @raise Not_found if no arrival reaches [id]. *)

val min_clock_period : ?setup:float -> t -> float
(** Minimum clock period for a netlist whose registers were split into
    pseudo primary inputs/outputs (as {!Pops_netlist.Bench_io} does for
    [DFF]s): the worst input-to-output arrival plus a setup time
    (default: one process [tau]). *)

val slack : t -> tc:float -> int -> float
(** [tc - worst arrival at node] — positive means timing met at that
    node for constraint [tc] (a path-level required-time view; the
    protocol operates on extracted paths, this is for reporting). *)

(** {2 Required times and slacks}

    The backward mirror of the arrival engine: per-node, per-edge
    {e required} times propagated from the primary outputs (required
    [tc] there) against the signal flow, and the per-node worst slack
    [required - arrival].  Like arrivals, slacks are {e incremental}: a
    {!slacks} holds cursors into the netlist dirty log {e and} into its
    timing's arrival change log, and {!slacks_update} re-propagates
    required times backward only while they actually move bitwise. *)

type slacks
(** Required-time/slack annotation bound to one {!t} and one [tc]. *)

val slacks_make : t -> tc:float -> slacks
(** Full backward sweep over the reverse levelized CSR order.  Attaches
    the arrival change log to [t] (subsequent {!update}s record which
    arrivals moved, feeding {!slacks_update}). *)

val slacks_reference : t -> tc:float -> slacks
(** The record-based from-scratch oracle (per-consumer
    {!Pops_delay.Model.stage_delay} over the reverse list topological
    order): what the equivalence suites compare {!slacks_make} and
    {!slacks_update} against.  Not for production use. *)

val slacks_update : slacks -> unit
(** Fold netlist edits and arrival changes since the last make/update
    back into the required/slack arrays: runs {!update} first, seeds a
    deepest-first worklist with every {e heavy} arrival change (slope
    moved, or an edge crossed defined/undefined — a gate's output slope
    depends only on its own size and load, so a time-only move cannot
    shift any required time) plus every dirty node and its fan-ins,
    re-evaluates required times backward, propagating to fan-ins only
    on a bitwise change, then patches the slack of time-only moves in a
    flat O(1)-per-node pass.  Results
    are bit-identical to a fresh {!slacks_make} of the mutated
    netlist.  Unlike arrivals this is {e not} called implicitly by the
    accessors — call it once per round, then query. *)

val slacks_timing : slacks -> t
val slacks_tc : slacks -> float

val required : slacks -> int -> Pops_delay.Edge.t -> float
(** Required time of the given edge at a node's output, as of the last
    make/update.  @raise Not_found when undefined (no arrival through
    that edge, or no constrained path downstream). *)

val node_slack : slacks -> int -> float
(** Worst [required - arrival] over both edges, as of the last
    make/update; negative means the node lies on a violating path.
    [nan] when undefined. *)

val slacks_changed_take : slacks -> int list
(** Drain the endpoint change list: primary outputs touched by
    {!slacks_update} calls since the last take (conservative — a
    touched endpoint's slack may be bitwise unchanged).  Feeds the
    persistent endpoint heap of {!Paths.k_worst_incr}. *)
