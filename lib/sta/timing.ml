module Netlist = Pops_netlist.Netlist
module Gk = Pops_cell.Gate_kind
module Edge = Pops_delay.Edge
module Model = Pops_delay.Model
module Pool = Pops_util.Pool

type arrival = { time : float; slope : float; from_ : (int * Edge.t) option }

(* Per-kind-code delay coefficients, hoisted out of the propagation
   sweep: everything {!Model.stage_delay} reads from the cell record,
   pre-multiplied where the grouping keeps float results bit-identical
   ([(s *. tau) *. tau_factor] is exactly how {!Model.transition_time}
   associates, and the LVT factor is exactly 1.0).  The slope products
   and reduced thresholds are per (kind, Vt class): [stau_*] is indexed
   [3 * kind_code + vt_code] and [vt*_red] by the Vt code alone (the
   threshold shift is kind-independent).  A kind missing from the
   library has [have = false] and propagating through it raises
   [Not_found], exactly like the legacy per-node library lookup. *)
type tables = {
  have : bool array;
  klass : int array;  (* 0 inverting, 1 xor-class, 2 buffer *)
  stau_hl : float array;  (* (s_hl *. tau) *. tau_factor, by 3*code+vt *)
  stau_lh : float array;
  cm_hl : float array;  (* coupling-capacitance ratio, falling output *)
  cm_lh : float array;
  par : float array;  (* parasitic ratio: cpar = par *. cin *)
  vtn_red : float array;  (* reduced thresholds by Vt code *)
  vtp_red : float array;
}

let build_tables ~lib =
  let n = Array.length Netlist.Csr.code_kinds in
  let nv = Pops_process.Vt.count in
  let have = Array.make n false
  and klass = Array.make n 0
  and stau_hl = Array.make (nv * n) Float.nan
  and stau_lh = Array.make (nv * n) Float.nan
  and cm_hl = Array.make n Float.nan
  and cm_lh = Array.make n Float.nan
  and par = Array.make n Float.nan in
  Array.iteri
    (fun code kind ->
      match Pops_cell.Library.find lib kind with
      | (cell : Pops_cell.Cell.t) ->
        have.(code) <- true;
        klass.(code) <-
          (match kind with
          | Gk.Xor2 | Gk.Xnor2 -> 1
          | Gk.Buf -> 2
          | Gk.Inv | Gk.Nand _ | Gk.Nor _ | Gk.Aoi21 | Gk.Oai21 | Gk.Aoi22
          | Gk.Oai22 -> 0);
        Array.iter
          (fun vt ->
            let vc = Pops_process.Vt.to_int vt in
            let cv = Pops_cell.Library.find_vt lib kind vt in
            stau_hl.((nv * code) + vc) <-
              cv.s_hl *. cv.tech.Pops_process.Tech.tau *. cv.tau_factor;
            stau_lh.((nv * code) + vc) <-
              cv.s_lh *. cv.tech.Pops_process.Tech.tau *. cv.tau_factor)
          Pops_process.Vt.all;
        cm_hl.(code) <- cell.cm_ratio_hl;
        cm_lh.(code) <- cell.cm_ratio_lh;
        par.(code) <- cell.par_ratio
      | exception Not_found -> ())
    Netlist.Csr.code_kinds;
  let tech = Pops_cell.Library.tech lib in
  {
    have;
    klass;
    stau_hl;
    stau_lh;
    cm_hl;
    cm_lh;
    par;
    vtn_red =
      Array.map (fun vt -> Pops_process.Tech.vtn_reduced_vt tech vt)
        Pops_process.Vt.all;
    vtp_red =
      Array.map (fun vt -> Pops_process.Tech.vtp_reduced_vt tech vt)
        Pops_process.Vt.all;
  }

(* Arrivals live in one dense float array with four slots per node id —
   [4id] rise time, [4id+1] rise slope, [4id+2] fall time, [4id+3] fall
   slope — so reading both edges of a fan-in in the propagation sweep
   touches one cache line instead of four arrays.  [time = nan] means no
   arrival is known for that (node, edge).  Provenance is packed as
   [2 * src + edge_bit], -1 for a primary input.  [cursor] is this
   analysis' position in the netlist's dirty log: queries first fold the
   log back in through {!update}, re-propagating only while arrivals
   actually change. *)
type t = {
  netlist : Netlist.t;
  lib : Pops_cell.Library.t;
  tables : tables;
  input_slope : float;
  input_arrival : float;
  level_par_min : int;  (* minimum level width to fan out across the pool *)
  mutable cap : int;  (* arrays valid for ids < cap *)
  mutable arr : float array;  (* 4 * cap arrival slots *)
  mutable rise_from : int array;
  mutable fall_from : int array;
  mutable cursor : int;
  (* Arrival change log: ids whose stored (time, slope) moved during
     {!update}, appended in processing order so a backward slack
     observer can re-seed from exactly the nodes the forward wave
     touched.  Off until a {!slacks} attaches ([log_enabled]); the
     deep-spine fallback logs every swept id (conservative — the sweep
     does not track per-node change). *)
  mutable log_enabled : bool;
  mutable change_log : int array;
  mutable change_len : int;
  (* per-entry classification of [change_log]: ['\001'] (heavy) when a
     slope moved or an edge crossed defined/undefined — the moves that
     can shift REQUIRED times downstream of the node; ['\000'] (light)
     when only arrival time values moved on already-defined edges.  A
     gate's output slope is [stau * cload / cin] — a function of its own
     size and load, not of its inputs — so slope changes die out one
     level past an edit and almost the whole forward wave is light: the
     backward engine re-evaluates required times only from heavy
     entries and patches the (req - arrival) slack of light ones in a
     flat O(1)-per-node pass. *)
  mutable change_heavy : Bytes.t;
  (* worklist scratch: per-id queued marks, reused across updates (both
     directions — the forward drain completes before the backward one
     starts, and each drain unmarks every node it pops, so the buffer is
     all-zero between uses) *)
  mutable wl_mark : Bytes.t;
  (* eval scratch (running best per edge): one block reused across every
     {!eval_store_csr} call instead of a per-call allocation *)
  wl_best : float array;
  (* Lazy-deletion max-heap over (worst output arrival, endpoint id),
     for {!critical_delay}: a flat scan over all outputs costs O(P)
     plus an O(P) list allocation per query, which an optimization
     loop pays every round; the heap answers from the entries whose
     arrivals actually moved.  Built on the third query (so a
     one-shot/per-round-rebuilt [t] — the reference flow mode — never
     pays the O(P) build), maintained by {!update} pushing every
     changed or dirtied output; stale entries are dropped on peek by
     comparing against the live arrival bitwise. *)
  mutable cd_hp : float array;
  mutable cd_hi : int array;
  mutable cd_hn : int;
  mutable cd_on : bool;
  mutable cd_queries : int;
}

let log_change t id ~heavy =
  if t.log_enabled then begin
    if t.change_len >= Array.length t.change_log then begin
      let bigger = Array.make (2 * Array.length t.change_log) 0 in
      Array.blit t.change_log 0 bigger 0 t.change_len;
      t.change_log <- bigger;
      let hv = Bytes.make (Array.length bigger) '\000' in
      Bytes.blit t.change_heavy 0 hv 0 t.change_len;
      t.change_heavy <- hv
    end;
    t.change_log.(t.change_len) <- id;
    Bytes.set t.change_heavy t.change_len (if heavy then '\001' else '\000');
    t.change_len <- t.change_len + 1
  end

(* slot offset of an edge's (time, slope) pair within a node's block *)
let edge_off = function Edge.Rising -> 0 | Edge.Falling -> 2

let edge_bit = function Edge.Rising -> 0 | Edge.Falling -> 1
let pack_from src edge = (2 * src) + edge_bit edge
let unpack_from = function
  | -1 -> None
  | p -> Some (p / 2, if p land 1 = 0 then Edge.Rising else Edge.Falling)

(* input edges that can cause the given output edge *)
let causing_input_edges kind edge_out =
  match kind with
  | Gk.Xnor2 | Gk.Xor2 -> [ Edge.Rising; Edge.Falling ]
  | Gk.Inv | Gk.Nand _ | Gk.Nor _ | Gk.Aoi21 | Gk.Oai21 | Gk.Aoi22 | Gk.Oai22 ->
    [ Edge.flip edge_out ]
  | Gk.Buf -> [ edge_out ]

let grow t =
  let bound = Netlist.id_bound t.netlist in
  if bound > t.cap then begin
    let cap = max bound (2 * t.cap) in
    let grow_i a = Array.append a (Array.make (cap - t.cap) (-1)) in
    t.arr <- Array.append t.arr (Array.make (4 * (cap - t.cap)) Float.nan);
    t.rise_from <- grow_i t.rise_from;
    t.fall_from <- grow_i t.fall_from;
    let mark = Bytes.make cap '\000' in
    Bytes.blit t.wl_mark 0 mark 0 t.cap;
    t.wl_mark <- mark;
    t.cap <- cap
  end

let clear_node t id =
  let b = 4 * id in
  t.arr.(b) <- Float.nan;
  t.arr.(b + 1) <- Float.nan;
  t.arr.(b + 2) <- Float.nan;
  t.arr.(b + 3) <- Float.nan;
  t.rise_from.(id) <- -1;
  t.fall_from.(id) <- -1

(* recompute both edges of one node from its fan-ins' stored arrivals;
   identical arithmetic and tie-breaking to a from-scratch pass, so a
   node whose inputs did not change reproduces its arrival bit for bit *)
let eval_node t id =
  let n = Netlist.node t.netlist id in
  match n.Netlist.kind with
  | Netlist.Primary_input ->
    let a = (t.input_arrival, t.input_slope, -1) in
    (Some a, Some a)
  | Netlist.Cell kind ->
    let cell = Pops_cell.Library.find_vt t.lib kind n.Netlist.vt in
    let cload =
      Netlist.load_on t.netlist id +. Pops_cell.Cell.cpar cell ~cin:n.Netlist.cin
    in
    let eval edge_out =
      let best = ref None in
      List.iter
        (fun edge_in ->
          let off = edge_off edge_in in
          Array.iter
            (fun fanin ->
              let src = (4 * fanin) + off in
              if not (Float.is_nan t.arr.(src)) then begin
                let d, tau_out =
                  Model.stage_delay cell ~edge_out ~tau_in:t.arr.(src + 1)
                    ~cin:n.Netlist.cin ~cload
                in
                let time = t.arr.(src) +. d in
                match !best with
                | Some (bt, _, _) when bt >= time -> ()
                | Some _ | None ->
                  best := Some (time, tau_out, pack_from fanin edge_in)
              end)
            n.Netlist.fanins)
        (causing_input_edges kind edge_out);
      !best
    in
    (eval Edge.Rising, eval Edge.Falling)

(* store one edge's result; returns true when time or slope moved (the
   only components downstream consumers read) *)
let store_edge arr froms ~toff id = function
  | None ->
    let b = (4 * id) + toff in
    let changed = not (Float.is_nan arr.(b)) in
    arr.(b) <- Float.nan;
    arr.(b + 1) <- Float.nan;
    froms.(id) <- -1;
    changed
  | Some (time, slope, from) ->
    let b = (4 * id) + toff in
    let changed =
      Float.is_nan arr.(b) || arr.(b) <> time || arr.(b + 1) <> slope
    in
    arr.(b) <- time;
    arr.(b + 1) <- slope;
    froms.(id) <- from;
    changed

let store_node t id (rise, fall) =
  let r = store_edge t.arr t.rise_from ~toff:0 id rise in
  let f = store_edge t.arr t.fall_from ~toff:2 id fall in
  r || f

(* --- CSR level sweep -------------------------------------------------- *)

(* Re-evaluate the order slice [lo, hi) straight off the CSR arrays.
   This is {!eval_node}+{!store_node} with every indirection peeled off:
   per-kind coefficients come from the prebuilt tables, loads and sizes
   from the snapshot, and the whole loop touches only unboxed arrays —
   no allocation per node (the running best lives in a one-slot float
   array because a float ref would box on every update).  Arithmetic is
   grouped exactly as {!Model.stage_delay} groups it and fan-ins are
   visited in the same (edge, pin) order with the same keep-first tie
   break, so results are bit-identical to the record-based evaluator.

   Nodes only read arrivals of strictly lower levels, so any partition
   of one level into slices — including a concurrent one — stores the
   same values.

   The loop body uses [Array.unsafe_get]/[unsafe_set]: every index is
   in bounds by the CSR construction invariants — [node_of.(i)] for
   [i] in [lo, hi) is a live id < [id_bound]; the per-id arrays
   ([kind_code], [cin], [load], [rise_from], [fall_from]) have length
   [id_bound] and [fanin_off] has [id_bound + 1]; [arr] has
   [4 * id_bound] slots; every [fanin] entry is itself a live id; and
   [code] indexes the per-kind tables only after [tb.have.(code)]
   (a safe access) has confirmed it. *)
let sweep_range t (c : Netlist.Csr.t) lo hi =
  let tb = t.tables in
  let node_of = Netlist.Csr.node_of c in
  let kind_code = Netlist.Csr.kind_code c in
  let vt_code = Netlist.Csr.vt_code c in
  let cin = Netlist.Csr.cin c in
  let load = Netlist.Csr.load c in
  let fanin_off = Netlist.Csr.fanin_off c in
  let fanin = Netlist.Csr.fanin c in
  let arr = t.arr in
  let rise_f = t.rise_from and fall_f = t.fall_from in
  let vtp_a = tb.vtp_red and vtn_a = tb.vtn_red in
  let best = Array.make 2 Float.nan in
  let best_from = ref (-1) in
  let best_from2 = ref (-1) in
  for i = lo to hi - 1 do
    let id = Array.unsafe_get node_of i in
    let code = Array.unsafe_get kind_code id in
    if code = -1 then begin
      let b = 4 * id in
      Array.unsafe_set arr b t.input_arrival;
      Array.unsafe_set arr (b + 1) t.input_slope;
      Array.unsafe_set arr (b + 2) t.input_arrival;
      Array.unsafe_set arr (b + 3) t.input_slope;
      Array.unsafe_set rise_f id (-1);
      Array.unsafe_set fall_f id (-1)
    end
    else if code = -2 || not tb.have.(code) then raise Not_found
    else begin
      let cin_v = Array.unsafe_get cin id in
      let cload =
        Array.unsafe_get load id +. (Array.unsafe_get tb.par code *. cin_v)
      in
      let f_lo = Array.unsafe_get fanin_off id
      and f_hi = Array.unsafe_get fanin_off (id + 1) in
      let kl = Array.unsafe_get tb.klass code in
      (* the node's Vt class picks its slope products and thresholds;
         the codes are 0..2 by construction, so the indexing is safe *)
      let vc = Array.unsafe_get vt_code id in
      let sx = (3 * code) + vc in
      let vtp = Array.unsafe_get vtp_a vc and vtn = Array.unsafe_get vtn_a vc in
      (* [x /. 2.] is written [x *. 0.5] throughout: exact for every
         IEEE double, so results stay bit-identical to the reference *)
      if kl <> 1 then begin
        (* single causing input edge per output edge: one fused pass
           over the pins evaluates both output edges, reading each
           fan-in's arrival slots once.  Per output edge the candidate
           order is still pin order, so the keep-first tie break (and
           hence every stored bit) matches the two-pass loop. *)
        let tau_r = Array.unsafe_get tb.stau_lh sx *. cload /. cin_v in
        let tau_f = Array.unsafe_get tb.stau_hl sx *. cload /. cin_v in
        let cm_r = Array.unsafe_get tb.cm_lh code *. cin_v in
        let cm_f = Array.unsafe_get tb.cm_hl code *. cin_v in
        let gterm_r = (1. +. (2. *. cm_r /. (cm_r +. cload))) *. tau_r *. 0.5 in
        let gterm_f = (1. +. (2. *. cm_f /. (cm_f +. cload))) *. tau_f *. 0.5 in
        (* rising output caused by a falling input for inverting cells,
           by a rising input for buffers (and vice versa); [or_]/[of_]
           are the slot offsets of those causing edges *)
        let or_ = if kl = 2 then 0 else 2 in
        let of_ = 2 - or_ in
        let ei_r = or_ lsr 1 in
        let ei_f = 1 - ei_r in
        Array.unsafe_set best 0 Float.nan;
        Array.unsafe_set best 1 Float.nan;
        best_from := -1;
        best_from2 := -1;
        for p = f_lo to f_hi - 1 do
          let f = Array.unsafe_get fanin p in
          let b = 4 * f in
          let str = Array.unsafe_get arr (b + or_) in
          if not (Float.is_nan str) then begin
            let time =
              str
              +. ((vtp *. Array.unsafe_get arr (b + or_ + 1) *. 0.5)
                 +. gterm_r)
            in
            if not (Array.unsafe_get best 0 >= time) then begin
              Array.unsafe_set best 0 time;
              best_from := (2 * f) + ei_r
            end
          end;
          let stf = Array.unsafe_get arr (b + of_) in
          if not (Float.is_nan stf) then begin
            let time =
              stf
              +. ((vtn *. Array.unsafe_get arr (b + of_ + 1) *. 0.5)
                 +. gterm_f)
            in
            if not (Array.unsafe_get best 1 >= time) then begin
              Array.unsafe_set best 1 time;
              best_from2 := (2 * f) + ei_f
            end
          end
        done;
        let b = 4 * id in
        if !best_from >= 0 then begin
          Array.unsafe_set arr b (Array.unsafe_get best 0);
          Array.unsafe_set arr (b + 1) tau_r;
          Array.unsafe_set rise_f id !best_from
        end
        else begin
          Array.unsafe_set arr b Float.nan;
          Array.unsafe_set arr (b + 1) Float.nan;
          Array.unsafe_set rise_f id (-1)
        end;
        if !best_from2 >= 0 then begin
          Array.unsafe_set arr (b + 2) (Array.unsafe_get best 1);
          Array.unsafe_set arr (b + 3) tau_f;
          Array.unsafe_set fall_f id !best_from2
        end
        else begin
          Array.unsafe_set arr (b + 2) Float.nan;
          Array.unsafe_set arr (b + 3) Float.nan;
          Array.unsafe_set fall_f id (-1)
        end
      end
      else
        for eo = 0 to 1 do
          (* eo: 0 = rising output, 1 = falling output (= edge_bit) *)
          let stau = if eo = 0 then tb.stau_lh.(sx) else tb.stau_hl.(sx) in
          let cmr = if eo = 0 then tb.cm_lh.(code) else tb.cm_hl.(code) in
          let v_t = if eo = 0 then vtp else vtn in
          let tau_out = stau *. cload /. cin_v in
          let cm = cmr *. cin_v in
          let gate_term = (1. +. (2. *. cm /. (cm +. cload))) *. tau_out *. 0.5 in
          best.(0) <- Float.nan;
          best_from := -1;
          (* xor-class: both causing input edges, rising first *)
          for ei = 0 to 1 do
            let off = 2 * ei in
            for p = f_lo to f_hi - 1 do
              let f = Array.unsafe_get fanin p in
              let src = (4 * f) + off in
              let st = Array.unsafe_get arr src in
              if not (Float.is_nan st) then begin
                let d = (v_t *. Array.unsafe_get arr (src + 1) *. 0.5) +. gate_term in
                let time = st +. d in
                if not (Array.unsafe_get best 0 >= time) then begin
                  Array.unsafe_set best 0 time;
                  best_from := (2 * f) + ei
                end
              end
            done
          done;
          let b = (4 * id) + (2 * eo) in
          let fr = if eo = 0 then rise_f else fall_f in
          if !best_from >= 0 then begin
            arr.(b) <- best.(0);
            arr.(b + 1) <- tau_out;
            fr.(id) <- !best_from
          end
          else begin
            arr.(b) <- Float.nan;
            arr.(b + 1) <- Float.nan;
            fr.(id) <- -1
          end
        done
    end
  done

(* level-by-level propagation from [from_level] to the sinks; a level
   wider than [level_par_min] fans out across the shared pool (slices
   write disjoint slots, see {!sweep_range}, so this is deterministic) *)
let sweep_levels t (c : Netlist.Csr.t) ~from_level =
  let level_off = Netlist.Csr.level_off c in
  let top = Array.length level_off - 2 in
  for l = from_level to top do
    let lo = level_off.(l) and hi = level_off.(l + 1) in
    if hi - lo >= t.level_par_min && Pool.default_size () > 1 then
      Pool.parallel_chunks
        ~min_chunk:(max 1 (t.level_par_min / 2))
        (fun a b -> sweep_range t c a b)
        ~lo ~hi
    else sweep_range t c lo hi
  done

(* Single-node re-evaluation straight off the CSR arrays — the worklist
   counterpart of {!sweep_range}: the same hoisted coefficients, fan-in
   visit order and keep-first tie break (so stored bits match both the
   full sweep and the record-based {!eval_node}), with {!store_edge}'s
   NaN-aware change test folded into the store.  Returns a move mask:
   0 when neither edge's stored (time, slope) moved, bit 0 when an
   arrival time value moved, bit 1 ({e heavy}) when a slope moved or an
   edge crossed defined/undefined — the only moves that can shift
   REQUIRED times downstream, since required reads a producer's slope
   but never its time.  The event-driven {!update} runs this per popped
   node; keeping the per-node cost at sweep constants (shared scratch
   block, no boxed floats, no record or list traffic) is what lets the
   incremental path beat the flat sweep on small cones instead of
   losing its asymptotic win to per-node overhead. *)

(* store one edge with {!store_edge}'s change test and classify the
   move as above.  Top-level (not a closure over the eval) so the hot
   drain allocates nothing per node. *)
let store_slot arr (fr : int array) id b time tau from =
  if from >= 0 then begin
    let old_t = Array.unsafe_get arr b in
    let old_s = Array.unsafe_get arr (b + 1) in
    Array.unsafe_set arr b time;
    Array.unsafe_set arr (b + 1) tau;
    Array.unsafe_set fr id from;
    if Float.is_nan old_t then 3
    else (if old_t <> time then 1 else 0) lor (if old_s <> tau then 2 else 0)
  end
  else begin
    let was = not (Float.is_nan (Array.unsafe_get arr b)) in
    Array.unsafe_set arr b Float.nan;
    Array.unsafe_set arr (b + 1) Float.nan;
    Array.unsafe_set fr id (-1);
    if was then 3 else 0
  end

let eval_store_csr t (c : Netlist.Csr.t) id =
  let tb = t.tables in
  let arr = t.arr in
  let code = (Netlist.Csr.kind_code c).(id) in
  if code = -1 then begin
    let b = 4 * id in
    let slot b0 =
      if Float.is_nan arr.(b0) then 3
      else
        (if arr.(b0) <> t.input_arrival then 1 else 0)
        lor if arr.(b0 + 1) <> t.input_slope then 2 else 0
    in
    let mask = slot b lor slot (b + 2) in
    arr.(b) <- t.input_arrival;
    arr.(b + 1) <- t.input_slope;
    arr.(b + 2) <- t.input_arrival;
    arr.(b + 3) <- t.input_slope;
    t.rise_from.(id) <- -1;
    t.fall_from.(id) <- -1;
    mask
  end
  else if code = -2 || not tb.have.(code) then raise Not_found
  else begin
    let cin = Netlist.Csr.cin c and load = Netlist.Csr.load c in
    let fanin_off = Netlist.Csr.fanin_off c and fanin = Netlist.Csr.fanin c in
    let vc = Array.unsafe_get (Netlist.Csr.vt_code c) id in
    let sx = (3 * code) + vc in
    let vtp = Array.unsafe_get tb.vtp_red vc
    and vtn = Array.unsafe_get tb.vtn_red vc in
    let cin_v = Array.unsafe_get cin id in
    let cload =
      Array.unsafe_get load id +. (Array.unsafe_get tb.par code *. cin_v)
    in
    let f_lo = Array.unsafe_get fanin_off id
    and f_hi = Array.unsafe_get fanin_off (id + 1) in
    let kl = Array.unsafe_get tb.klass code in
    let mask = ref 0 in
    let best = t.wl_best in
    let best_from = ref (-1) in
    let best_from2 = ref (-1) in
    if kl <> 1 then begin
      let tau_r = Array.unsafe_get tb.stau_lh sx *. cload /. cin_v in
      let tau_f = Array.unsafe_get tb.stau_hl sx *. cload /. cin_v in
      let cm_r = Array.unsafe_get tb.cm_lh code *. cin_v in
      let cm_f = Array.unsafe_get tb.cm_hl code *. cin_v in
      let gterm_r = (1. +. (2. *. cm_r /. (cm_r +. cload))) *. tau_r *. 0.5 in
      let gterm_f = (1. +. (2. *. cm_f /. (cm_f +. cload))) *. tau_f *. 0.5 in
      let or_ = if kl = 2 then 0 else 2 in
      let of_ = 2 - or_ in
      let ei_r = or_ lsr 1 in
      let ei_f = 1 - ei_r in
      Array.unsafe_set best 0 Float.nan;
      Array.unsafe_set best 1 Float.nan;
      for p = f_lo to f_hi - 1 do
        let f = Array.unsafe_get fanin p in
        let b = 4 * f in
        let str = Array.unsafe_get arr (b + or_) in
        if not (Float.is_nan str) then begin
          let time =
            str +. ((vtp *. Array.unsafe_get arr (b + or_ + 1) *. 0.5) +. gterm_r)
          in
          if not (Array.unsafe_get best 0 >= time) then begin
            Array.unsafe_set best 0 time;
            best_from := (2 * f) + ei_r
          end
        end;
        let stf = Array.unsafe_get arr (b + of_) in
        if not (Float.is_nan stf) then begin
          let time =
            stf +. ((vtn *. Array.unsafe_get arr (b + of_ + 1) *. 0.5) +. gterm_f)
          in
          if not (Array.unsafe_get best 1 >= time) then begin
            Array.unsafe_set best 1 time;
            best_from2 := (2 * f) + ei_f
          end
        end
      done;
      let b = 4 * id in
      mask := store_slot arr t.rise_from id b best.(0) tau_r !best_from;
      mask :=
        !mask lor store_slot arr t.fall_from id (b + 2) best.(1) tau_f !best_from2
    end
    else
      for eo = 0 to 1 do
        let stau = if eo = 0 then tb.stau_lh.(sx) else tb.stau_hl.(sx) in
        let cmr = if eo = 0 then tb.cm_lh.(code) else tb.cm_hl.(code) in
        let v_t = if eo = 0 then vtp else vtn in
        let tau_out = stau *. cload /. cin_v in
        let cm = cmr *. cin_v in
        let gate_term = (1. +. (2. *. cm /. (cm +. cload))) *. tau_out *. 0.5 in
        best.(0) <- Float.nan;
        best_from := -1;
        for ei = 0 to 1 do
          let off = 2 * ei in
          for p = f_lo to f_hi - 1 do
            let f = Array.unsafe_get fanin p in
            let src = (4 * f) + off in
            let st = Array.unsafe_get arr src in
            if not (Float.is_nan st) then begin
              let d =
                (v_t *. Array.unsafe_get arr (src + 1) *. 0.5) +. gate_term
              in
              let time = st +. d in
              if not (Array.unsafe_get best 0 >= time) then begin
                Array.unsafe_set best 0 time;
                best_from := (2 * f) + ei
              end
            end
          done
        done;
        let fr = if eo = 0 then t.rise_from else t.fall_from in
        mask :=
          !mask
          lor store_slot arr fr id ((4 * id) + (2 * eo)) best.(0) tau_out
                !best_from
      done;
    !mask
  end

(* worst defined arrival over both edges of a node, NaN when neither
   edge is defined — the value {!critical_delay} maximizes over the
   outputs *)
let cd_worst_of t id =
  let r = t.arr.(4 * id) and f = t.arr.((4 * id) + 2) in
  if Float.is_nan r then f else if Float.is_nan f then r else Float.max r f

(* push one (arrival, id) entry onto the endpoint-arrival max-heap;
   NaN arrivals (undefined endpoint) have no entry by construction *)
let cd_push t v id =
  if not (Float.is_nan v) then begin
    if t.cd_hn >= Array.length t.cd_hp then begin
      let n = Array.length t.cd_hp in
      let hp = Array.make (2 * n) 0. and hi = Array.make (2 * n) 0 in
      Array.blit t.cd_hp 0 hp 0 n;
      Array.blit t.cd_hi 0 hi 0 n;
      t.cd_hp <- hp;
      t.cd_hi <- hi
    end;
    let hp = t.cd_hp and hi = t.cd_hi in
    hp.(t.cd_hn) <- v;
    hi.(t.cd_hn) <- id;
    let i = ref t.cd_hn in
    t.cd_hn <- t.cd_hn + 1;
    while !i > 0 && hp.(!i) > hp.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tv = hp.(p) and ti = hi.(p) in
      hp.(p) <- hp.(!i);
      hi.(p) <- hi.(!i);
      hp.(!i) <- tv;
      hi.(!i) <- ti;
      i := p
    done
  end

(* drop the heap's top entry (stale) *)
let cd_drop t =
  let hp = t.cd_hp and hi = t.cd_hi in
  t.cd_hn <- t.cd_hn - 1;
  hp.(0) <- hp.(t.cd_hn);
  hi.(0) <- hi.(t.cd_hn);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let largest = ref !i in
    if l < t.cd_hn && hp.(l) > hp.(!largest) then largest := l;
    if r < t.cd_hn && hp.(r) > hp.(!largest) then largest := r;
    if !largest <> !i then begin
      let tv = hp.(!i) and ti = hi.(!i) in
      hp.(!i) <- hp.(!largest);
      hi.(!i) <- hi.(!largest);
      hp.(!largest) <- tv;
      hi.(!largest) <- ti;
      i := !largest
    end
    else continue := false
  done

(* Fraction of the levelized order past which the event-driven worklist
   is abandoned for a straight-line sweep, and the maximum average level
   width at which the level-population cone bound is trusted.  On a deep
   spine (width ~1) a mid-chain edit reaches half the design: paying
   heap + dedup overhead per node there is slower than a plain pass over
   the suffix of the topological order.  On wide circuits the bound
   wildly overestimates the true cone, so the worklist stays.  The
   dense-level factor governs the same trade within one worklist level:
   once the queued fraction of a level passes 1/8, re-evaluating the
   whole level linearly off the CSR order beats scattered pops (a
   no-change re-evaluation stores the same bits and wakes nobody, so
   the result is identical either way). *)
let cone_fallback_fraction = 0.6
let narrow_width_limit = 8
let dense_level_factor = 8

let update t =
  let nl = t.netlist in
  let rev = Netlist.revision nl in
  if rev <> t.cursor then begin
    let dirty = Netlist.dirty_since nl t.cursor in
    t.cursor <- rev;
    grow t;
    (* clear deleted entries up front; the survivors seed the wavefront *)
    let lmin = ref max_int in
    let live_dirty =
      List.filter
        (fun id ->
          if Netlist.node_exists nl id then begin
            let l = Netlist.level nl id in
            if l < !lmin then lmin := l;
            true
          end
          else begin
            clear_node t id;
            false
          end)
        dirty
    in
    if live_dirty <> [] then begin
      let live = Netlist.live_count nl in
      let cone_bound = Netlist.count_level_ge nl !lmin in
      let narrow = (Netlist.depth nl + 1) * narrow_width_limit >= live in
      if
        narrow
        && float_of_int cone_bound
           >= cone_fallback_fraction *. float_of_int live
      then begin
        (* Deep-spine fallback: re-evaluate every node at level >= lmin
           straight off the levelized CSR order.  Same arithmetic, same
           order as a cold analyze restricted to the suffix, so arrivals
           stay bit-identical; nodes below lmin cannot have changed
           (dirt only propagates downstream, i.e. to higher levels). *)
        let c = Netlist.csr nl in
        sweep_levels t c ~from_level:!lmin;
        let node_of = Netlist.Csr.node_of c in
        let level_off = Netlist.Csr.level_off c in
        if t.log_enabled then
          for i = level_off.(!lmin) to Netlist.Csr.length c - 1 do
            log_change t node_of.(i) ~heavy:true
          done;
        if t.cd_on then
          for i = level_off.(!lmin) to Netlist.Csr.length c - 1 do
            let id = node_of.(i) in
            if Netlist.is_output nl id then cd_push t (cd_worst_of t id) id
          done
      end
      else begin
        (* Event-driven drain in level order: a per-level bucket queue
           (arrivals only flow to strictly deeper levels, so processing
           level [l] can only wake levels above it) and the persistent
           byte-mark dedup.  O(1) push/pop with no boxed (key, value)
           pairs and no hashing; evaluation within one level is
           order-independent (nodes read only lower levels), so bucket
           LIFO order stores the same bits as any other order. *)
        let c = Netlist.csr nl in
        let depth = Netlist.Csr.depth c in
        let buckets = Array.make (depth + 1) [] in
        let mark = t.wl_mark in
        let enqueue id =
          if Bytes.get mark id = '\000' && Netlist.node_exists nl id then begin
            Bytes.set mark id '\001';
            let l = Netlist.level nl id in
            buckets.(l) <- id :: buckets.(l)
          end
        in
        List.iter enqueue live_dirty;
        let fo_off = Netlist.Csr.fanout_off c in
        let fo = Netlist.Csr.fanout c in
        let node_of = Netlist.Csr.node_of c in
        let level_off = Netlist.Csr.level_off c in
        let process id =
          let m = eval_store_csr t c id in
          if m <> 0 then begin
            log_change t id ~heavy:(m land 2 <> 0);
            if t.cd_on && Netlist.is_output nl id then
              cd_push t (cd_worst_of t id) id;
            for p = fo_off.(id) to fo_off.(id + 1) - 1 do
              enqueue fo.(p)
            done
          end
        in
        for l = !lmin to depth do
          match buckets.(l) with
          | [] -> ()
          | bucket ->
            let queued = List.length bucket in
            let lo = level_off.(l) and hi = level_off.(l + 1) in
            if queued * dense_level_factor >= hi - lo then begin
              (* dense level: one linear pass over the level's CSR
                 slice beats scattered evaluation — un-queued nodes
                 have unchanged fan-ins (any change would have queued
                 them), so their re-evaluation stores the same bits,
                 logs nothing and wakes nobody *)
              List.iter (fun id -> Bytes.set mark id '\000') bucket;
              for i = lo to hi - 1 do
                process node_of.(i)
              done
            end
            else
              List.iter
                (fun id ->
                  Bytes.set mark id '\000';
                  process id)
                bucket
        done;
        (* an output freshly (un)designated without an arrival move
           never goes through [process]; its final arrival is live by
           now, so push it directly (stale entries just evaporate) *)
        if t.cd_on then
          List.iter
            (fun id ->
              if Netlist.is_output nl id then cd_push t (cd_worst_of t id) id)
            live_dirty
      end
    end
  end

let make ?input_slope ?(input_arrival = 0.) ?(level_par_min = 2048) ~lib netlist =
  let tech = Netlist.tech netlist in
  let input_slope =
    Option.value input_slope ~default:(2. *. tech.Pops_process.Tech.tau)
  in
  let bound = Netlist.id_bound netlist in
  let cap = max 64 bound in
  (* both callers immediately run a full pass that writes all four
     slots of every live node before anything reads them, so when ids
     are dense (no dead ids whose slots must read as NaN for the
     {!arrival} Not_found contract, no padding beyond [bound]) the
     O(cap) NaN prefill is redundant *)
  let arr =
    if cap = bound && Netlist.live_count netlist = bound then
      Array.create_float (4 * cap)
    else Array.make (4 * cap) Float.nan
  in
  {
    netlist;
    lib;
    tables = build_tables ~lib;
    input_slope;
    input_arrival;
    level_par_min = max 1 level_par_min;
    cap;
    arr;
    rise_from = Array.make cap (-1);
    fall_from = Array.make cap (-1);
    cursor = Netlist.revision netlist;
    log_enabled = false;
    change_log = Array.make 64 0;
    change_len = 0;
    change_heavy = Bytes.make 64 '\000';
    wl_mark = Bytes.make cap '\000';
    wl_best = [| Float.nan; Float.nan |];
    cd_hp = Array.make 256 0.;
    cd_hi = Array.make 256 0;
    cd_hn = 0;
    cd_on = false;
    cd_queries = 0;
  }

let analyze ?input_slope ?input_arrival ?level_par_min ~lib netlist =
  let t = make ?input_slope ?input_arrival ?level_par_min ~lib netlist in
  sweep_levels t (Netlist.csr netlist) ~from_level:0;
  t

(* the pre-CSR from-scratch pass: one record-based {!eval_node} per node
   of the (list) topological order.  Kept as the oracle the refactored
   sweep is tested and benchmarked against. *)
let analyze_reference ?input_slope ?input_arrival ~lib netlist =
  let t = make ?input_slope ?input_arrival ~lib netlist in
  List.iter
    (fun id -> ignore (store_node t id (eval_node t id)))
    (Netlist.topological_order netlist);
  t

let arrival t id edge =
  update t;
  if id < 0 || id >= t.cap then raise Not_found;
  let froms =
    match edge with Edge.Rising -> t.rise_from | Edge.Falling -> t.fall_from
  in
  let b = (4 * id) + edge_off edge in
  if Float.is_nan t.arr.(b) then raise Not_found;
  { time = t.arr.(b); slope = t.arr.(b + 1); from_ = unpack_from froms.(id) }

let node_worst t id =
  update t;
  if id < 0 || id >= t.cap then raise Not_found;
  let r = t.arr.(4 * id) and f = t.arr.((4 * id) + 2) in
  match (Float.is_nan r, Float.is_nan f) with
  | false, false ->
    if r >= f then (Edge.Rising, arrival t id Edge.Rising)
    else (Edge.Falling, arrival t id Edge.Falling)
  | false, true -> (Edge.Rising, arrival t id Edge.Rising)
  | true, false -> (Edge.Falling, arrival t id Edge.Falling)
  | true, true -> raise Not_found

let critical_endpoint t =
  update t;
  let best = ref None in
  List.iter
    (fun (id, _) ->
      match node_worst t id with
      | edge, a -> (
        match !best with
        | Some (_, _, b) when b.time >= a.time -> ()
        | Some _ | None -> best := Some (id, edge, a))
      | exception Not_found -> ())
    (Netlist.outputs t.netlist);
  !best

(* Same value as [critical_endpoint]'s arrival time (max is
   order-independent), without the per-output arrival records.  The
   first two queries are a flat pass over the arrival slots; from the
   third, the query comes off the lazy-deletion max-heap (see the
   [cd_*] fields) — every output's current worst arrival has a live
   entry (full build at activation, {!update} pushes every change
   after), so the first top entry matching its live arrival bitwise is
   the maximum.  Deleted or unreachable endpoints have NaN arrivals
   and drop out exactly like their Not_found in the record walk; an
   empty (or fully stale) heap means no defined endpoint, 0 like the
   scan. *)
let critical_delay t =
  update t;
  t.cd_queries <- t.cd_queries + 1;
  if (not t.cd_on) && t.cd_queries >= 3 then begin
    t.cd_on <- true;
    List.iter
      (fun (id, _) ->
        if id >= 0 && id < t.cap then cd_push t (cd_worst_of t id) id)
      (Netlist.outputs t.netlist)
  end;
  if t.cd_on then begin
    let nl = t.netlist in
    let rec top () =
      if t.cd_hn = 0 then 0.
      else begin
        let v = t.cd_hp.(0) and id = t.cd_hi.(0) in
        if
          id < t.cap && Netlist.node_exists nl id && Netlist.is_output nl id
          && cd_worst_of t id = v
        then v
        else begin
          cd_drop t;
          top ()
        end
      end
    in
    top ()
  end
  else begin
    let best = ref Float.nan in
    List.iter
      (fun (id, _) ->
        if id >= 0 && id < t.cap then begin
          let r = t.arr.(4 * id) and f = t.arr.((4 * id) + 2) in
          if (not (Float.is_nan r)) && not (r <= !best) then best := r;
          if (not (Float.is_nan f)) && not (f <= !best) then best := f
        end)
      (Netlist.outputs t.netlist);
    if Float.is_nan !best then 0. else !best
  end

let backtrack t id edge =
  let rec go id edge acc =
    let acc = id :: acc in
    match (arrival t id edge).from_ with
    | None -> acc
    | Some (src, src_edge) -> go src src_edge acc
  in
  go id edge []

let critical_path t =
  match critical_endpoint t with
  | Some (id, edge, _) -> backtrack t id edge
  | None -> []

let path_through t id =
  let edge, _ = node_worst t id in
  backtrack t id edge

(* node_worst's edge pick without the arrival record: rising wins ties
   and single-sided cases, exactly like the record walk *)
let worst_edge_bit t id =
  if id < 0 || id >= t.cap then raise Not_found;
  let r = t.arr.(4 * id) and f = t.arr.((4 * id) + 2) in
  match (Float.is_nan r, Float.is_nan f) with
  | false, false -> if r >= f then 0 else 1
  | false, true -> 0
  | true, false -> 1
  | true, true -> raise Not_found

(* Provenance-chain walks at pointer cost: {!path_through} allocates an
   arrival record per step, which is fine for materializing one path
   but not for a selection loop that probes thousands of candidate
   endpoints per round and discards most of them.  Both walk the same
   stored provenance as {!backtrack}, so (length, window) agree with
   {!path_through} node for node. *)

let path_length t id =
  update t;
  let rec go id eb n =
    let from = if eb = 0 then t.rise_from.(id) else t.fall_from.(id) in
    if from < 0 then n + 1 else go (from / 2) (from land 1) (n + 1)
  in
  go id (worst_edge_bit t id) 0

let path_window t id ~skip ~len =
  update t;
  let rec go id eb i acc =
    let acc = if i >= skip && i < skip + len then id :: acc else acc in
    let from = if eb = 0 then t.rise_from.(id) else t.fall_from.(id) in
    if from < 0 || i + 1 >= skip + len then acc
    else go (from / 2) (from land 1) (i + 1) acc
  in
  go id (worst_edge_bit t id) 0 []

let min_clock_period ?setup t =
  let setup =
    match setup with
    | Some s -> s
    | None -> (Netlist.tech t.netlist).Pops_process.Tech.tau
  in
  critical_delay t +. setup

let slack t ~tc id =
  let _, a = node_worst t id in
  tc -. a.time

(* --- required times and slacks (backward sweep) ----------------------- *)

(* Required times live in a dense float array with two slots per node id
   — [2id] rising, [2id+1] falling; nan = undefined (no arrival through
   that edge, or no constrained path downstream).  The recurrence is the
   exact mirror of the forward one: a node's required time per edge is
   [tc] if it is a primary output, minimized with, for every consumer
   and every consumer output edge its input edge can cause,
   [required(consumer, out_edge) - stage_delay(consumer, out_edge)]
   where the stage delay uses {e this} node's stored slope as [tau_in].
   [slk.(id)] caches the worst (most negative) [required - arrival]
   over both edges, nan when neither edge has both defined. *)
type slacks = {
  s_tm : t;
  s_tc : float;
  mutable s_cap : int;
  mutable req : float array;  (* 2 * s_cap required slots *)
  mutable slk : float array;  (* s_cap worst-slack slots *)
  mutable nl_cursor : int;  (* position in the netlist dirty log *)
  mutable ch_cursor : int;  (* position in s_tm's arrival change log *)
  mutable changed : int list;  (* endpoints touched since last take *)
  (* per-id membership marks for [changed] (a hash set here costs a
     lookup per popped worklist node on wide designs); unmarked by
     {!slacks_changed_take} walking [changed], so all-zero between
     drains *)
  mutable changed_set : Bytes.t;
  (* eval scratch (running min): one slot reused across every
     {!eval_req_csr} call — a float ref would box every update, a
     per-call array would allocate per popped node *)
  s_scr : float array;
}

let nan_ne a b = not (a = b || (Float.is_nan a && Float.is_nan b))

let slacks_grow s =
  let bound = Netlist.id_bound s.s_tm.netlist in
  if bound > s.s_cap then begin
    let cap = max bound (2 * s.s_cap) in
    s.req <- Array.append s.req (Array.make (2 * (cap - s.s_cap)) Float.nan);
    s.slk <- Array.append s.slk (Array.make (cap - s.s_cap) Float.nan);
    let cs = Bytes.make cap '\000' in
    Bytes.blit s.changed_set 0 cs 0 s.s_cap;
    s.changed_set <- cs;
    s.s_cap <- cap
  end

let slacks_clear_node s id =
  s.req.(2 * id) <- Float.nan;
  s.req.((2 * id) + 1) <- Float.nan;
  s.slk.(id) <- Float.nan

(* Recompute both required slots of one node from its consumers' stored
   required times, straight off the CSR arrays — the backward
   counterpart of {!eval_store_csr}.  The same coefficient tables and
   float groupings as the forward {!sweep_range} (so [x /. 2.] is
   [x *. 0.5] etc.), and min is commutative, so any evaluation order
   over the same consumer set yields the same bits — full sweeps and
   worklist re-evaluations agree bit for bit.  Per-node cost is sweep
   constants: the CSR fanout slice replaces the consumer-list walk and
   its per-consumer record reads, and the running min lives in a
   one-slot scratch array (a float ref would box every update).
   Returns true when either slot moved. *)
let eval_req_csr s (c : Netlist.Csr.t) id =
  let tm = s.s_tm in
  let tb = tm.tables in
  let arr = tm.arr in
  let req = s.req in
  let kind_code = Netlist.Csr.kind_code c in
  let vt_code = Netlist.Csr.vt_code c in
  let cin = Netlist.Csr.cin c in
  let load = Netlist.Csr.load c in
  let fo_off = Netlist.Csr.fanout_off c in
  let fo = Netlist.Csr.fanout c in
  let is_out = Netlist.is_output tm.netlist id in
  let f_lo = fo_off.(id) and f_hi = fo_off.(id + 1) in
  let acc = s.s_scr in
  let changed = ref false in
  for eo = 0 to 1 do
    let a = arr.((4 * id) + (2 * eo)) in
    let r =
      if Float.is_nan a then Float.nan
      else begin
        let slope = arr.((4 * id) + (2 * eo) + 1) in
        acc.(0) <- (if is_out then s.s_tc else Float.nan);
        for p = f_lo to f_hi - 1 do
          let cid = Array.unsafe_get fo p in
          let code = Array.unsafe_get kind_code cid in
          (* a primary input cannot consume a net; [-1] is only
             defensive, mirroring the record walk's kind match *)
          if code = -1 then ()
          else if code = -2 || not tb.have.(code) then raise Not_found
          else begin
            let cin_v = Array.unsafe_get cin cid in
            let cload =
              Array.unsafe_get load cid
              +. (Array.unsafe_get tb.par code *. cin_v)
            in
            (* which consumer output edges our edge can cause: the
               backward image of {!causing_input_edges}; per edge the
               term is the consumer's required time minus the stage
               delay through it at our slope *)
            let kl = Array.unsafe_get tb.klass code in
            (* the stage swept backward is the consumer's, so its Vt
               class picks the coefficients *)
            let vc = Array.unsafe_get vt_code cid in
            let sx = (3 * code) + vc in
            let ob_lo = if kl = 1 then 0 else if kl = 2 then eo else 1 - eo in
            let ob_hi = if kl = 1 then 1 else ob_lo in
            for ob = ob_lo to ob_hi do
              let rc = Array.unsafe_get req ((2 * cid) + ob) in
              if not (Float.is_nan rc) then begin
                let stau =
                  if ob = 0 then Array.unsafe_get tb.stau_lh sx
                  else Array.unsafe_get tb.stau_hl sx
                in
                let cmr =
                  if ob = 0 then Array.unsafe_get tb.cm_lh code
                  else Array.unsafe_get tb.cm_hl code
                in
                let v_t =
                  if ob = 0 then Array.unsafe_get tb.vtp_red vc
                  else Array.unsafe_get tb.vtn_red vc
                in
                let tau_out = stau *. cload /. cin_v in
                let cm = cmr *. cin_v in
                let gterm =
                  (1. +. (2. *. cm /. (cm +. cload))) *. tau_out *. 0.5
                in
                let term = rc -. ((v_t *. slope *. 0.5) +. gterm) in
                if
                  not (Float.is_nan term)
                  && (Float.is_nan acc.(0) || term < acc.(0))
                then acc.(0) <- term
              end
            done
          end
        done;
        acc.(0)
      end
    in
    let slot = (2 * id) + eo in
    if nan_ne req.(slot) r then changed := true;
    req.(slot) <- r
  done;
  !changed

let eval_slack s id =
  let tm = s.s_tm in
  let worst = ref Float.nan in
  for eo = 0 to 1 do
    let a = tm.arr.((4 * id) + (2 * eo)) in
    let r = s.req.((2 * id) + eo) in
    if not (Float.is_nan a || Float.is_nan r) then begin
      let sl = r -. a in
      if Float.is_nan !worst || sl < !worst then worst := sl
    end
  done;
  let changed = nan_ne s.slk.(id) !worst in
  s.slk.(id) <- !worst;
  changed

let record_endpoint s id =
  if
    Netlist.is_output s.s_tm.netlist id
    && Bytes.get s.changed_set id = '\000'
  then begin
    Bytes.set s.changed_set id '\001';
    s.changed <- id :: s.changed
  end

(* full backward pass: reverse levelized CSR order, so every consumer's
   required time is stored before its producers read it *)
let slacks_sweep s =
  let c = Netlist.csr s.s_tm.netlist in
  let node_of = Netlist.Csr.node_of c in
  for i = Netlist.Csr.length c - 1 downto 0 do
    let id = node_of.(i) in
    ignore (eval_req_csr s c id);
    ignore (eval_slack s id)
  done

let slacks_make tm ~tc =
  update tm;
  tm.log_enabled <- true;
  let cap = max 64 (Netlist.id_bound tm.netlist) in
  let s =
    {
      s_tm = tm;
      s_tc = tc;
      s_cap = cap;
      req = Array.make (2 * cap) Float.nan;
      slk = Array.make cap Float.nan;
      nl_cursor = Netlist.revision tm.netlist;
      ch_cursor = tm.change_len;
      changed = [];
      changed_set = Bytes.make cap '\000';
      s_scr = [| Float.nan |];
    }
  in
  slacks_sweep s;
  s

(* the from-scratch oracle: per-node {!Pops_delay.Model.stage_delay}
   over the reverse list topological order, record-based — the backward
   counterpart of {!analyze_reference}, for the equivalence suites *)
let slacks_reference tm ~tc =
  update tm;
  let nl = tm.netlist in
  let cap = max 64 (Netlist.id_bound nl) in
  let s =
    {
      s_tm = tm;
      s_tc = tc;
      s_cap = cap;
      req = Array.make (2 * cap) Float.nan;
      slk = Array.make cap Float.nan;
      nl_cursor = Netlist.revision nl;
      ch_cursor = tm.change_len;
      changed = [];
      changed_set = Bytes.make cap '\000';
      s_scr = [| Float.nan |];
    }
  in
  List.iter
    (fun id ->
      let n = Netlist.node nl id in
      let is_out = Netlist.is_output nl id in
      List.iter
        (fun edge ->
          let eo = edge_bit edge in
          let a = tm.arr.((4 * id) + (2 * eo)) in
          let r =
            if Float.is_nan a then Float.nan
            else begin
              let slope = tm.arr.((4 * id) + (2 * eo) + 1) in
              let acc = ref (if is_out then tc else Float.nan) in
              let add term =
                if
                  not (Float.is_nan term)
                  && (Float.is_nan !acc || term < !acc)
                then acc := term
              in
              List.iter
                (fun c ->
                  let cn = Netlist.node nl c in
                  match cn.Netlist.kind with
                  | Netlist.Primary_input -> ()
                  | Netlist.Cell kind ->
                    let cell =
                      Pops_cell.Library.find_vt tm.lib kind cn.Netlist.vt
                    in
                    let cload =
                      Netlist.load_on nl c
                      +. Pops_cell.Cell.cpar cell ~cin:cn.Netlist.cin
                    in
                    let term edge_out =
                      let rc = s.req.((2 * c) + edge_bit edge_out) in
                      if Float.is_nan rc then Float.nan
                      else
                        let d, _ =
                          Model.stage_delay cell ~edge_out ~tau_in:slope
                            ~cin:cn.Netlist.cin ~cload
                        in
                        rc -. d
                    in
                    List.iter
                      (fun edge_out ->
                        if
                          List.mem edge
                            (causing_input_edges kind edge_out)
                        then add (term edge_out))
                      [ Edge.Rising; Edge.Falling ])
                n.Netlist.fanouts;
              !acc
            end
          in
          s.req.((2 * id) + eo) <- r)
        [ Edge.Rising; Edge.Falling ];
      ignore (eval_slack s id))
    (List.rev (Netlist.topological_order nl));
  s

let slacks_update s =
  let tm = s.s_tm in
  update tm;
  let nl = tm.netlist in
  let rev = Netlist.revision nl in
  if rev <> s.nl_cursor || tm.change_len <> s.ch_cursor then begin
    slacks_grow s;
    grow tm;
    (* Deepest-first drain over per-level buckets: required times flow
       backward, so processing level [l] only wakes strictly shallower
       levels and a node is re-evaluated only after all its touched
       consumers settled.  Same bucket queue + byte-mark dedup as the
       forward {!update} (the forward drain has completed and left the
       marks all-zero), for the same reason: O(1) push/pop at sweep
       constants instead of heap + hash overhead per popped node. *)
    let c = Netlist.csr nl in
    let depth = Netlist.Csr.depth c in
    let buckets = Array.make (depth + 1) [] in
    let mark = tm.wl_mark in
    let enqueue id =
      if Bytes.get mark id = '\000' && Netlist.node_exists nl id then begin
        Bytes.set mark id '\001';
        let l = Netlist.level nl id in
        buckets.(l) <- id :: buckets.(l)
      end
    in
    let fi_off = Netlist.Csr.fanin_off c in
    let fi = Netlist.Csr.fanin c in
    (* Seeds: (a) every {e heavy} arrival change — a slope move or a
       defined/undefined transition: the delay consumers charge the node
       (i.e. its own required time) reads its slope, never its time, so
       only these can move required times.  A time-only move leaves
       every required time in the design bitwise intact (a node's
       required depends on its consumers' required and its own slope;
       its fan-ins' on {e its} required) — those nodes skip the drain
       and get their slack patched in the flat pass below.  Since a
       gate's output slope is [stau * cload / cin] — its own size and
       load, not its inputs — slope changes die out one level past an
       edit and almost the whole forward wave is light.  (b) every
       netlist-dirty node and its fan-ins (a resize or rewire changes
       the delay {e through} the dirty node even when no slope moved
       bitwise; output designation changes the base term).  Deleted
       nodes are cleared; their fan-ins were marked dirty by the
       deletion. *)
    List.iter
      (fun id ->
        if Netlist.node_exists nl id then begin
          enqueue id;
          for p = fi_off.(id) to fi_off.(id + 1) - 1 do
            enqueue fi.(p)
          done
        end
        else if id < s.s_cap then slacks_clear_node s id)
      (Netlist.dirty_since nl s.nl_cursor);
    let ch_lo = s.ch_cursor in
    for i = ch_lo to tm.change_len - 1 do
      if Bytes.get tm.change_heavy i = '\001' then enqueue tm.change_log.(i)
    done;
    s.nl_cursor <- rev;
    s.ch_cursor <- tm.change_len;
    for l = depth downto 0 do
      List.iter
        (fun id ->
          Bytes.set mark id '\000';
          let req_moved = eval_req_csr s c id in
          ignore (eval_slack s id);
          (* conservative: every touched endpoint is reported, whether
             or not its slack moved bitwise — consumers of the change
             list tolerate duplicates (persistent heaps validate
             against the current slack on pop) *)
          record_endpoint s id;
          if req_moved then
            for p = fi_off.(id) to fi_off.(id + 1) - 1 do
              enqueue fi.(p)
            done)
        buckets.(l)
    done;
    (* light pass: arrival-time-only moves — required times settled
       above (bit-identical whether or not these ran through the
       drain), so only [slk] and the endpoint report need refreshing,
       at a handful of array reads per node *)
    for i = ch_lo to tm.change_len - 1 do
      if Bytes.get tm.change_heavy i = '\000' then begin
        let id = tm.change_log.(i) in
        if Netlist.node_exists nl id then begin
          ignore (eval_slack s id);
          record_endpoint s id
        end
      end
    done
  end

let slacks_timing s = s.s_tm
let slacks_tc s = s.s_tc

let required s id edge =
  if id < 0 || id >= s.s_cap then raise Not_found;
  let r = s.req.((2 * id) + edge_bit edge) in
  if Float.is_nan r then raise Not_found;
  r

let node_slack s id = if id < 0 || id >= s.s_cap then Float.nan else s.slk.(id)

let slacks_changed_take s =
  let l = List.rev s.changed in
  List.iter (fun id -> Bytes.set s.changed_set id '\000') s.changed;
  s.changed <- [];
  l
