module Netlist = Pops_netlist.Netlist
module Gk = Pops_cell.Gate_kind
module Edge = Pops_delay.Edge
module Model = Pops_delay.Model

type arrival = { time : float; slope : float; from_ : (int * Edge.t) option }

(* Arrivals live in dense arrays indexed by node id; [time = nan] means
   no arrival is known for that (node, edge).  Provenance is packed as
   [2 * src + edge_bit], -1 for a primary input.  [cursor] is this
   analysis' position in the netlist's dirty log: queries first fold the
   log back in through {!update}, re-propagating only while arrivals
   actually change. *)
type t = {
  netlist : Netlist.t;
  lib : Pops_cell.Library.t;
  input_slope : float;
  input_arrival : float;
  mutable cap : int;  (* arrays valid for ids < cap *)
  mutable rise_time : float array;
  mutable rise_slope : float array;
  mutable rise_from : int array;
  mutable fall_time : float array;
  mutable fall_slope : float array;
  mutable fall_from : int array;
  mutable cursor : int;
}

let edge_bit = function Edge.Rising -> 0 | Edge.Falling -> 1
let pack_from src edge = (2 * src) + edge_bit edge
let unpack_from = function
  | -1 -> None
  | p -> Some (p / 2, if p land 1 = 0 then Edge.Rising else Edge.Falling)

(* input edges that can cause the given output edge *)
let causing_input_edges kind edge_out =
  match kind with
  | Gk.Xnor2 | Gk.Xor2 -> [ Edge.Rising; Edge.Falling ]
  | Gk.Inv | Gk.Nand _ | Gk.Nor _ | Gk.Aoi21 | Gk.Oai21 | Gk.Aoi22 | Gk.Oai22 ->
    [ Edge.flip edge_out ]
  | Gk.Buf -> [ edge_out ]

let grow t =
  let bound = Netlist.id_bound t.netlist in
  if bound > t.cap then begin
    let cap = max bound (2 * t.cap) in
    let grow_f a = Array.append a (Array.make (cap - t.cap) Float.nan) in
    let grow_i a = Array.append a (Array.make (cap - t.cap) (-1)) in
    t.rise_time <- grow_f t.rise_time;
    t.rise_slope <- grow_f t.rise_slope;
    t.rise_from <- grow_i t.rise_from;
    t.fall_time <- grow_f t.fall_time;
    t.fall_slope <- grow_f t.fall_slope;
    t.fall_from <- grow_i t.fall_from;
    t.cap <- cap
  end

let clear_node t id =
  t.rise_time.(id) <- Float.nan;
  t.rise_slope.(id) <- Float.nan;
  t.rise_from.(id) <- -1;
  t.fall_time.(id) <- Float.nan;
  t.fall_slope.(id) <- Float.nan;
  t.fall_from.(id) <- -1

(* recompute both edges of one node from its fan-ins' stored arrivals;
   identical arithmetic and tie-breaking to a from-scratch pass, so a
   node whose inputs did not change reproduces its arrival bit for bit *)
let eval_node t id =
  let n = Netlist.node t.netlist id in
  match n.Netlist.kind with
  | Netlist.Primary_input ->
    let a = (t.input_arrival, t.input_slope, -1) in
    (Some a, Some a)
  | Netlist.Cell kind ->
    let cell = Pops_cell.Library.find t.lib kind in
    let cload =
      Netlist.load_on t.netlist id +. Pops_cell.Cell.cpar cell ~cin:n.Netlist.cin
    in
    let eval edge_out =
      let best = ref None in
      List.iter
        (fun edge_in ->
          let src_time, src_slope =
            match edge_in with
            | Edge.Rising -> (t.rise_time, t.rise_slope)
            | Edge.Falling -> (t.fall_time, t.fall_slope)
          in
          Array.iter
            (fun fanin ->
              if not (Float.is_nan src_time.(fanin)) then begin
                let d, tau_out =
                  Model.stage_delay cell ~edge_out ~tau_in:src_slope.(fanin)
                    ~cin:n.Netlist.cin ~cload
                in
                let time = src_time.(fanin) +. d in
                match !best with
                | Some (bt, _, _) when bt >= time -> ()
                | Some _ | None ->
                  best := Some (time, tau_out, pack_from fanin edge_in)
              end)
            n.Netlist.fanins)
        (causing_input_edges kind edge_out);
      !best
    in
    (eval Edge.Rising, eval Edge.Falling)

(* store one edge's result; returns true when time or slope moved (the
   only components downstream consumers read) *)
let store_edge times slopes froms id = function
  | None ->
    let changed = not (Float.is_nan times.(id)) in
    times.(id) <- Float.nan;
    slopes.(id) <- Float.nan;
    froms.(id) <- -1;
    changed
  | Some (time, slope, from) ->
    let changed =
      Float.is_nan times.(id) || times.(id) <> time || slopes.(id) <> slope
    in
    times.(id) <- time;
    slopes.(id) <- slope;
    froms.(id) <- from;
    changed

let store_node t id (rise, fall) =
  let r = store_edge t.rise_time t.rise_slope t.rise_from id rise in
  let f = store_edge t.fall_time t.fall_slope t.fall_from id fall in
  r || f

(* min-heap of node ids keyed by topological level: popping in level
   order guarantees a node is re-evaluated only after all its dirty
   fan-ins settled *)
module Heap = struct
  type t = { mutable a : (int * int) array; mutable size : int }

  let create () = { a = Array.make 64 (0, 0); size = 0 }

  let push h key v =
    if h.size >= Array.length h.a then begin
      let bigger = Array.make (2 * Array.length h.a) (0, 0) in
      Array.blit h.a 0 bigger 0 h.size;
      h.a <- bigger
    end;
    h.a.(h.size) <- (key, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while
      !i > 0
      && fst h.a.((!i - 1) / 2) > fst h.a.(!i)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.a.(0) in
      h.size <- h.size - 1;
      h.a.(0) <- h.a.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.a.(l) < fst h.a.(!smallest) then smallest := l;
        if r < h.size && fst h.a.(r) < fst h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.a.(!i) in
          h.a.(!i) <- h.a.(!smallest);
          h.a.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some (snd top)
    end
end

(* Fraction of the levelized order past which the event-driven worklist
   is abandoned for a straight-line sweep, and the maximum average level
   width at which the level-population cone bound is trusted.  On a deep
   spine (width ~1) a mid-chain edit reaches half the design: paying
   heap + dedup overhead per node there is slower than a plain pass over
   the suffix of the topological order.  On wide circuits the bound
   wildly overestimates the true cone, so the worklist stays. *)
let cone_fallback_fraction = 0.6
let narrow_width_limit = 8

let update t =
  let nl = t.netlist in
  let rev = Netlist.revision nl in
  if rev <> t.cursor then begin
    let dirty = Netlist.dirty_since nl t.cursor in
    t.cursor <- rev;
    grow t;
    (* clear deleted entries up front; the survivors seed the wavefront *)
    let lmin = ref max_int in
    let live_dirty =
      List.filter
        (fun id ->
          if Netlist.node_exists nl id then begin
            let l = Netlist.level nl id in
            if l < !lmin then lmin := l;
            true
          end
          else begin
            clear_node t id;
            false
          end)
        dirty
    in
    if live_dirty <> [] then begin
      let live = Netlist.live_count nl in
      let cone_bound = Netlist.count_level_ge nl !lmin in
      let narrow = (Netlist.depth nl + 1) * narrow_width_limit >= live in
      if
        narrow
        && float_of_int cone_bound
           >= cone_fallback_fraction *. float_of_int live
      then
        (* Deep-spine fallback: re-evaluate every node at level >= lmin
           straight off the levelized order.  Same evaluator, same order
           as a cold analyze restricted to the suffix, so arrivals stay
           bit-identical; nodes below lmin cannot have changed (dirt only
           propagates downstream, i.e. to higher levels). *)
        List.iter
          (fun id ->
            if Netlist.level nl id >= !lmin then
              ignore (store_node t id (eval_node t id)))
          (Netlist.topological_order nl)
      else begin
        let heap = Heap.create () in
        let queued = Hashtbl.create 64 in
        let enqueue id =
          if (not (Hashtbl.mem queued id)) && Netlist.node_exists nl id then begin
            Hashtbl.replace queued id ();
            Heap.push heap (Netlist.level nl id) id
          end
        in
        List.iter enqueue live_dirty;
        let rec drain () =
          match Heap.pop heap with
          | None -> ()
          | Some id ->
            Hashtbl.remove queued id;
            if store_node t id (eval_node t id) then
              List.iter enqueue (Netlist.node nl id).Netlist.fanouts;
            drain ()
        in
        drain ()
      end
    end
  end

let analyze ?input_slope ?(input_arrival = 0.) ~lib netlist =
  let tech = Netlist.tech netlist in
  let input_slope =
    Option.value input_slope ~default:(2. *. tech.Pops_process.Tech.tau)
  in
  let cap = max 64 (Netlist.id_bound netlist) in
  let t =
    {
      netlist;
      lib;
      input_slope;
      input_arrival;
      cap;
      rise_time = Array.make cap Float.nan;
      rise_slope = Array.make cap Float.nan;
      rise_from = Array.make cap (-1);
      fall_time = Array.make cap Float.nan;
      fall_slope = Array.make cap Float.nan;
      fall_from = Array.make cap (-1);
      cursor = Netlist.revision netlist;
    }
  in
  List.iter
    (fun id -> ignore (store_node t id (eval_node t id)))
    (Netlist.topological_order netlist);
  t

let arrival t id edge =
  update t;
  if id < 0 || id >= t.cap then raise Not_found;
  let times, slopes, froms =
    match edge with
    | Edge.Rising -> (t.rise_time, t.rise_slope, t.rise_from)
    | Edge.Falling -> (t.fall_time, t.fall_slope, t.fall_from)
  in
  if Float.is_nan times.(id) then raise Not_found;
  { time = times.(id); slope = slopes.(id); from_ = unpack_from froms.(id) }

let node_worst t id =
  update t;
  if id < 0 || id >= t.cap then raise Not_found;
  let r = t.rise_time.(id) and f = t.fall_time.(id) in
  match (Float.is_nan r, Float.is_nan f) with
  | false, false ->
    if r >= f then (Edge.Rising, arrival t id Edge.Rising)
    else (Edge.Falling, arrival t id Edge.Falling)
  | false, true -> (Edge.Rising, arrival t id Edge.Rising)
  | true, false -> (Edge.Falling, arrival t id Edge.Falling)
  | true, true -> raise Not_found

let critical_endpoint t =
  update t;
  let best = ref None in
  List.iter
    (fun (id, _) ->
      match node_worst t id with
      | edge, a -> (
        match !best with
        | Some (_, _, b) when b.time >= a.time -> ()
        | Some _ | None -> best := Some (id, edge, a))
      | exception Not_found -> ())
    (Netlist.outputs t.netlist);
  !best

let critical_delay t =
  match critical_endpoint t with Some (_, _, a) -> a.time | None -> 0.

let backtrack t id edge =
  let rec go id edge acc =
    let acc = id :: acc in
    match (arrival t id edge).from_ with
    | None -> acc
    | Some (src, src_edge) -> go src src_edge acc
  in
  go id edge []

let critical_path t =
  match critical_endpoint t with
  | Some (id, edge, _) -> backtrack t id edge
  | None -> []

let path_through t id =
  let edge, _ = node_worst t id in
  backtrack t id edge

let min_clock_period ?setup t =
  let setup =
    match setup with
    | Some s -> s
    | None -> (Netlist.tech t.netlist).Pops_process.Tech.tau
  in
  critical_delay t +. setup

let slack t ~tc id =
  let _, a = node_worst t id in
  tc -. a.time
