module Netlist = Pops_netlist.Netlist
module Gk = Pops_cell.Gate_kind
module Edge = Pops_delay.Edge
module Model = Pops_delay.Model
module Pool = Pops_util.Pool

type arrival = { time : float; slope : float; from_ : (int * Edge.t) option }

(* Per-kind-code delay coefficients, hoisted out of the propagation
   sweep: everything {!Model.stage_delay} reads from the cell record,
   pre-multiplied where the grouping keeps float results bit-identical
   ([s *. tau] is the left-most association of eq. 1 either way).
   Indexed by {!Netlist.Csr.kind_code}; a kind missing from the library
   has [have = false] and propagating through it raises [Not_found],
   exactly like the legacy per-node library lookup. *)
type tables = {
  have : bool array;
  klass : int array;  (* 0 inverting, 1 xor-class, 2 buffer *)
  stau_hl : float array;  (* s_hl *. tau *)
  stau_lh : float array;
  cm_hl : float array;  (* coupling-capacitance ratio, falling output *)
  cm_lh : float array;
  par : float array;  (* parasitic ratio: cpar = par *. cin *)
  vtn_red : float;
  vtp_red : float;
}

let build_tables ~lib =
  let n = Array.length Netlist.Csr.code_kinds in
  let have = Array.make n false
  and klass = Array.make n 0
  and stau_hl = Array.make n Float.nan
  and stau_lh = Array.make n Float.nan
  and cm_hl = Array.make n Float.nan
  and cm_lh = Array.make n Float.nan
  and par = Array.make n Float.nan in
  Array.iteri
    (fun code kind ->
      match Pops_cell.Library.find lib kind with
      | (cell : Pops_cell.Cell.t) ->
        have.(code) <- true;
        klass.(code) <-
          (match kind with
          | Gk.Xor2 | Gk.Xnor2 -> 1
          | Gk.Buf -> 2
          | Gk.Inv | Gk.Nand _ | Gk.Nor _ | Gk.Aoi21 | Gk.Oai21 | Gk.Aoi22
          | Gk.Oai22 -> 0);
        stau_hl.(code) <- cell.s_hl *. cell.tech.Pops_process.Tech.tau;
        stau_lh.(code) <- cell.s_lh *. cell.tech.Pops_process.Tech.tau;
        cm_hl.(code) <- cell.cm_ratio_hl;
        cm_lh.(code) <- cell.cm_ratio_lh;
        par.(code) <- cell.par_ratio
      | exception Not_found -> ())
    Netlist.Csr.code_kinds;
  let tech = Pops_cell.Library.tech lib in
  {
    have;
    klass;
    stau_hl;
    stau_lh;
    cm_hl;
    cm_lh;
    par;
    vtn_red = Pops_process.Tech.vtn_reduced tech;
    vtp_red = Pops_process.Tech.vtp_reduced tech;
  }

(* Arrivals live in one dense float array with four slots per node id —
   [4id] rise time, [4id+1] rise slope, [4id+2] fall time, [4id+3] fall
   slope — so reading both edges of a fan-in in the propagation sweep
   touches one cache line instead of four arrays.  [time = nan] means no
   arrival is known for that (node, edge).  Provenance is packed as
   [2 * src + edge_bit], -1 for a primary input.  [cursor] is this
   analysis' position in the netlist's dirty log: queries first fold the
   log back in through {!update}, re-propagating only while arrivals
   actually change. *)
type t = {
  netlist : Netlist.t;
  lib : Pops_cell.Library.t;
  tables : tables;
  input_slope : float;
  input_arrival : float;
  level_par_min : int;  (* minimum level width to fan out across the pool *)
  mutable cap : int;  (* arrays valid for ids < cap *)
  mutable arr : float array;  (* 4 * cap arrival slots *)
  mutable rise_from : int array;
  mutable fall_from : int array;
  mutable cursor : int;
}

(* slot offset of an edge's (time, slope) pair within a node's block *)
let edge_off = function Edge.Rising -> 0 | Edge.Falling -> 2

let edge_bit = function Edge.Rising -> 0 | Edge.Falling -> 1
let pack_from src edge = (2 * src) + edge_bit edge
let unpack_from = function
  | -1 -> None
  | p -> Some (p / 2, if p land 1 = 0 then Edge.Rising else Edge.Falling)

(* input edges that can cause the given output edge *)
let causing_input_edges kind edge_out =
  match kind with
  | Gk.Xnor2 | Gk.Xor2 -> [ Edge.Rising; Edge.Falling ]
  | Gk.Inv | Gk.Nand _ | Gk.Nor _ | Gk.Aoi21 | Gk.Oai21 | Gk.Aoi22 | Gk.Oai22 ->
    [ Edge.flip edge_out ]
  | Gk.Buf -> [ edge_out ]

let grow t =
  let bound = Netlist.id_bound t.netlist in
  if bound > t.cap then begin
    let cap = max bound (2 * t.cap) in
    let grow_i a = Array.append a (Array.make (cap - t.cap) (-1)) in
    t.arr <- Array.append t.arr (Array.make (4 * (cap - t.cap)) Float.nan);
    t.rise_from <- grow_i t.rise_from;
    t.fall_from <- grow_i t.fall_from;
    t.cap <- cap
  end

let clear_node t id =
  let b = 4 * id in
  t.arr.(b) <- Float.nan;
  t.arr.(b + 1) <- Float.nan;
  t.arr.(b + 2) <- Float.nan;
  t.arr.(b + 3) <- Float.nan;
  t.rise_from.(id) <- -1;
  t.fall_from.(id) <- -1

(* recompute both edges of one node from its fan-ins' stored arrivals;
   identical arithmetic and tie-breaking to a from-scratch pass, so a
   node whose inputs did not change reproduces its arrival bit for bit *)
let eval_node t id =
  let n = Netlist.node t.netlist id in
  match n.Netlist.kind with
  | Netlist.Primary_input ->
    let a = (t.input_arrival, t.input_slope, -1) in
    (Some a, Some a)
  | Netlist.Cell kind ->
    let cell = Pops_cell.Library.find t.lib kind in
    let cload =
      Netlist.load_on t.netlist id +. Pops_cell.Cell.cpar cell ~cin:n.Netlist.cin
    in
    let eval edge_out =
      let best = ref None in
      List.iter
        (fun edge_in ->
          let off = edge_off edge_in in
          Array.iter
            (fun fanin ->
              let src = (4 * fanin) + off in
              if not (Float.is_nan t.arr.(src)) then begin
                let d, tau_out =
                  Model.stage_delay cell ~edge_out ~tau_in:t.arr.(src + 1)
                    ~cin:n.Netlist.cin ~cload
                in
                let time = t.arr.(src) +. d in
                match !best with
                | Some (bt, _, _) when bt >= time -> ()
                | Some _ | None ->
                  best := Some (time, tau_out, pack_from fanin edge_in)
              end)
            n.Netlist.fanins)
        (causing_input_edges kind edge_out);
      !best
    in
    (eval Edge.Rising, eval Edge.Falling)

(* store one edge's result; returns true when time or slope moved (the
   only components downstream consumers read) *)
let store_edge arr froms ~toff id = function
  | None ->
    let b = (4 * id) + toff in
    let changed = not (Float.is_nan arr.(b)) in
    arr.(b) <- Float.nan;
    arr.(b + 1) <- Float.nan;
    froms.(id) <- -1;
    changed
  | Some (time, slope, from) ->
    let b = (4 * id) + toff in
    let changed =
      Float.is_nan arr.(b) || arr.(b) <> time || arr.(b + 1) <> slope
    in
    arr.(b) <- time;
    arr.(b + 1) <- slope;
    froms.(id) <- from;
    changed

let store_node t id (rise, fall) =
  let r = store_edge t.arr t.rise_from ~toff:0 id rise in
  let f = store_edge t.arr t.fall_from ~toff:2 id fall in
  r || f

(* min-heap of node ids keyed by topological level: popping in level
   order guarantees a node is re-evaluated only after all its dirty
   fan-ins settled *)
module Heap = struct
  type t = { mutable a : (int * int) array; mutable size : int }

  let create () = { a = Array.make 64 (0, 0); size = 0 }

  let push h key v =
    if h.size >= Array.length h.a then begin
      let bigger = Array.make (2 * Array.length h.a) (0, 0) in
      Array.blit h.a 0 bigger 0 h.size;
      h.a <- bigger
    end;
    h.a.(h.size) <- (key, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while
      !i > 0
      && fst h.a.((!i - 1) / 2) > fst h.a.(!i)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.a.(0) in
      h.size <- h.size - 1;
      h.a.(0) <- h.a.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.a.(l) < fst h.a.(!smallest) then smallest := l;
        if r < h.size && fst h.a.(r) < fst h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.a.(!i) in
          h.a.(!i) <- h.a.(!smallest);
          h.a.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some (snd top)
    end
end

(* --- CSR level sweep -------------------------------------------------- *)

(* Re-evaluate the order slice [lo, hi) straight off the CSR arrays.
   This is {!eval_node}+{!store_node} with every indirection peeled off:
   per-kind coefficients come from the prebuilt tables, loads and sizes
   from the snapshot, and the whole loop touches only unboxed arrays —
   no allocation per node (the running best lives in a one-slot float
   array because a float ref would box on every update).  Arithmetic is
   grouped exactly as {!Model.stage_delay} groups it and fan-ins are
   visited in the same (edge, pin) order with the same keep-first tie
   break, so results are bit-identical to the record-based evaluator.

   Nodes only read arrivals of strictly lower levels, so any partition
   of one level into slices — including a concurrent one — stores the
   same values.

   The loop body uses [Array.unsafe_get]/[unsafe_set]: every index is
   in bounds by the CSR construction invariants — [node_of.(i)] for
   [i] in [lo, hi) is a live id < [id_bound]; the per-id arrays
   ([kind_code], [cin], [load], [rise_from], [fall_from]) have length
   [id_bound] and [fanin_off] has [id_bound + 1]; [arr] has
   [4 * id_bound] slots; every [fanin] entry is itself a live id; and
   [code] indexes the per-kind tables only after [tb.have.(code)]
   (a safe access) has confirmed it. *)
let sweep_range t (c : Netlist.Csr.t) lo hi =
  let tb = t.tables in
  let node_of = Netlist.Csr.node_of c in
  let kind_code = Netlist.Csr.kind_code c in
  let cin = Netlist.Csr.cin c in
  let load = Netlist.Csr.load c in
  let fanin_off = Netlist.Csr.fanin_off c in
  let fanin = Netlist.Csr.fanin c in
  let arr = t.arr in
  let rise_f = t.rise_from and fall_f = t.fall_from in
  let vtp = tb.vtp_red and vtn = tb.vtn_red in
  let best = Array.make 2 Float.nan in
  let best_from = ref (-1) in
  let best_from2 = ref (-1) in
  for i = lo to hi - 1 do
    let id = Array.unsafe_get node_of i in
    let code = Array.unsafe_get kind_code id in
    if code = -1 then begin
      let b = 4 * id in
      Array.unsafe_set arr b t.input_arrival;
      Array.unsafe_set arr (b + 1) t.input_slope;
      Array.unsafe_set arr (b + 2) t.input_arrival;
      Array.unsafe_set arr (b + 3) t.input_slope;
      Array.unsafe_set rise_f id (-1);
      Array.unsafe_set fall_f id (-1)
    end
    else if code = -2 || not tb.have.(code) then raise Not_found
    else begin
      let cin_v = Array.unsafe_get cin id in
      let cload =
        Array.unsafe_get load id +. (Array.unsafe_get tb.par code *. cin_v)
      in
      let f_lo = Array.unsafe_get fanin_off id
      and f_hi = Array.unsafe_get fanin_off (id + 1) in
      let kl = Array.unsafe_get tb.klass code in
      (* [x /. 2.] is written [x *. 0.5] throughout: exact for every
         IEEE double, so results stay bit-identical to the reference *)
      if kl <> 1 then begin
        (* single causing input edge per output edge: one fused pass
           over the pins evaluates both output edges, reading each
           fan-in's arrival slots once.  Per output edge the candidate
           order is still pin order, so the keep-first tie break (and
           hence every stored bit) matches the two-pass loop. *)
        let tau_r = Array.unsafe_get tb.stau_lh code *. cload /. cin_v in
        let tau_f = Array.unsafe_get tb.stau_hl code *. cload /. cin_v in
        let cm_r = Array.unsafe_get tb.cm_lh code *. cin_v in
        let cm_f = Array.unsafe_get tb.cm_hl code *. cin_v in
        let gterm_r = (1. +. (2. *. cm_r /. (cm_r +. cload))) *. tau_r *. 0.5 in
        let gterm_f = (1. +. (2. *. cm_f /. (cm_f +. cload))) *. tau_f *. 0.5 in
        (* rising output caused by a falling input for inverting cells,
           by a rising input for buffers (and vice versa); [or_]/[of_]
           are the slot offsets of those causing edges *)
        let or_ = if kl = 2 then 0 else 2 in
        let of_ = 2 - or_ in
        let ei_r = or_ lsr 1 in
        let ei_f = 1 - ei_r in
        Array.unsafe_set best 0 Float.nan;
        Array.unsafe_set best 1 Float.nan;
        best_from := -1;
        best_from2 := -1;
        for p = f_lo to f_hi - 1 do
          let f = Array.unsafe_get fanin p in
          let b = 4 * f in
          let str = Array.unsafe_get arr (b + or_) in
          if not (Float.is_nan str) then begin
            let time =
              str
              +. ((vtp *. Array.unsafe_get arr (b + or_ + 1) *. 0.5)
                 +. gterm_r)
            in
            if not (Array.unsafe_get best 0 >= time) then begin
              Array.unsafe_set best 0 time;
              best_from := (2 * f) + ei_r
            end
          end;
          let stf = Array.unsafe_get arr (b + of_) in
          if not (Float.is_nan stf) then begin
            let time =
              stf
              +. ((vtn *. Array.unsafe_get arr (b + of_ + 1) *. 0.5)
                 +. gterm_f)
            in
            if not (Array.unsafe_get best 1 >= time) then begin
              Array.unsafe_set best 1 time;
              best_from2 := (2 * f) + ei_f
            end
          end
        done;
        let b = 4 * id in
        if !best_from >= 0 then begin
          Array.unsafe_set arr b (Array.unsafe_get best 0);
          Array.unsafe_set arr (b + 1) tau_r;
          Array.unsafe_set rise_f id !best_from
        end
        else begin
          Array.unsafe_set arr b Float.nan;
          Array.unsafe_set arr (b + 1) Float.nan;
          Array.unsafe_set rise_f id (-1)
        end;
        if !best_from2 >= 0 then begin
          Array.unsafe_set arr (b + 2) (Array.unsafe_get best 1);
          Array.unsafe_set arr (b + 3) tau_f;
          Array.unsafe_set fall_f id !best_from2
        end
        else begin
          Array.unsafe_set arr (b + 2) Float.nan;
          Array.unsafe_set arr (b + 3) Float.nan;
          Array.unsafe_set fall_f id (-1)
        end
      end
      else
        for eo = 0 to 1 do
          (* eo: 0 = rising output, 1 = falling output (= edge_bit) *)
          let stau = if eo = 0 then tb.stau_lh.(code) else tb.stau_hl.(code) in
          let cmr = if eo = 0 then tb.cm_lh.(code) else tb.cm_hl.(code) in
          let v_t = if eo = 0 then vtp else vtn in
          let tau_out = stau *. cload /. cin_v in
          let cm = cmr *. cin_v in
          let gate_term = (1. +. (2. *. cm /. (cm +. cload))) *. tau_out *. 0.5 in
          best.(0) <- Float.nan;
          best_from := -1;
          (* xor-class: both causing input edges, rising first *)
          for ei = 0 to 1 do
            let off = 2 * ei in
            for p = f_lo to f_hi - 1 do
              let f = Array.unsafe_get fanin p in
              let src = (4 * f) + off in
              let st = Array.unsafe_get arr src in
              if not (Float.is_nan st) then begin
                let d = (v_t *. Array.unsafe_get arr (src + 1) *. 0.5) +. gate_term in
                let time = st +. d in
                if not (Array.unsafe_get best 0 >= time) then begin
                  Array.unsafe_set best 0 time;
                  best_from := (2 * f) + ei
                end
              end
            done
          done;
          let b = (4 * id) + (2 * eo) in
          let fr = if eo = 0 then rise_f else fall_f in
          if !best_from >= 0 then begin
            arr.(b) <- best.(0);
            arr.(b + 1) <- tau_out;
            fr.(id) <- !best_from
          end
          else begin
            arr.(b) <- Float.nan;
            arr.(b + 1) <- Float.nan;
            fr.(id) <- -1
          end
        done
    end
  done

(* level-by-level propagation from [from_level] to the sinks; a level
   wider than [level_par_min] fans out across the shared pool (slices
   write disjoint slots, see {!sweep_range}, so this is deterministic) *)
let sweep_levels t (c : Netlist.Csr.t) ~from_level =
  let level_off = Netlist.Csr.level_off c in
  let top = Array.length level_off - 2 in
  for l = from_level to top do
    let lo = level_off.(l) and hi = level_off.(l + 1) in
    if hi - lo >= t.level_par_min && Pool.default_size () > 1 then
      Pool.parallel_chunks
        ~min_chunk:(max 1 (t.level_par_min / 2))
        (fun a b -> sweep_range t c a b)
        ~lo ~hi
    else sweep_range t c lo hi
  done

(* Fraction of the levelized order past which the event-driven worklist
   is abandoned for a straight-line sweep, and the maximum average level
   width at which the level-population cone bound is trusted.  On a deep
   spine (width ~1) a mid-chain edit reaches half the design: paying
   heap + dedup overhead per node there is slower than a plain pass over
   the suffix of the topological order.  On wide circuits the bound
   wildly overestimates the true cone, so the worklist stays. *)
let cone_fallback_fraction = 0.6
let narrow_width_limit = 8

let update t =
  let nl = t.netlist in
  let rev = Netlist.revision nl in
  if rev <> t.cursor then begin
    let dirty = Netlist.dirty_since nl t.cursor in
    t.cursor <- rev;
    grow t;
    (* clear deleted entries up front; the survivors seed the wavefront *)
    let lmin = ref max_int in
    let live_dirty =
      List.filter
        (fun id ->
          if Netlist.node_exists nl id then begin
            let l = Netlist.level nl id in
            if l < !lmin then lmin := l;
            true
          end
          else begin
            clear_node t id;
            false
          end)
        dirty
    in
    if live_dirty <> [] then begin
      let live = Netlist.live_count nl in
      let cone_bound = Netlist.count_level_ge nl !lmin in
      let narrow = (Netlist.depth nl + 1) * narrow_width_limit >= live in
      if
        narrow
        && float_of_int cone_bound
           >= cone_fallback_fraction *. float_of_int live
      then
        (* Deep-spine fallback: re-evaluate every node at level >= lmin
           straight off the levelized CSR order.  Same arithmetic, same
           order as a cold analyze restricted to the suffix, so arrivals
           stay bit-identical; nodes below lmin cannot have changed
           (dirt only propagates downstream, i.e. to higher levels). *)
        sweep_levels t (Netlist.csr nl) ~from_level:!lmin
      else begin
        let heap = Heap.create () in
        let queued = Hashtbl.create 64 in
        let enqueue id =
          if (not (Hashtbl.mem queued id)) && Netlist.node_exists nl id then begin
            Hashtbl.replace queued id ();
            Heap.push heap (Netlist.level nl id) id
          end
        in
        List.iter enqueue live_dirty;
        let rec drain () =
          match Heap.pop heap with
          | None -> ()
          | Some id ->
            Hashtbl.remove queued id;
            if store_node t id (eval_node t id) then
              List.iter enqueue (Netlist.node nl id).Netlist.fanouts;
            drain ()
        in
        drain ()
      end
    end
  end

let make ?input_slope ?(input_arrival = 0.) ?(level_par_min = 2048) ~lib netlist =
  let tech = Netlist.tech netlist in
  let input_slope =
    Option.value input_slope ~default:(2. *. tech.Pops_process.Tech.tau)
  in
  let bound = Netlist.id_bound netlist in
  let cap = max 64 bound in
  (* both callers immediately run a full pass that writes all four
     slots of every live node before anything reads them, so when ids
     are dense (no dead ids whose slots must read as NaN for the
     {!arrival} Not_found contract, no padding beyond [bound]) the
     O(cap) NaN prefill is redundant *)
  let arr =
    if cap = bound && Netlist.live_count netlist = bound then
      Array.create_float (4 * cap)
    else Array.make (4 * cap) Float.nan
  in
  {
    netlist;
    lib;
    tables = build_tables ~lib;
    input_slope;
    input_arrival;
    level_par_min = max 1 level_par_min;
    cap;
    arr;
    rise_from = Array.make cap (-1);
    fall_from = Array.make cap (-1);
    cursor = Netlist.revision netlist;
  }

let analyze ?input_slope ?input_arrival ?level_par_min ~lib netlist =
  let t = make ?input_slope ?input_arrival ?level_par_min ~lib netlist in
  sweep_levels t (Netlist.csr netlist) ~from_level:0;
  t

(* the pre-CSR from-scratch pass: one record-based {!eval_node} per node
   of the (list) topological order.  Kept as the oracle the refactored
   sweep is tested and benchmarked against. *)
let analyze_reference ?input_slope ?input_arrival ~lib netlist =
  let t = make ?input_slope ?input_arrival ~lib netlist in
  List.iter
    (fun id -> ignore (store_node t id (eval_node t id)))
    (Netlist.topological_order netlist);
  t

let arrival t id edge =
  update t;
  if id < 0 || id >= t.cap then raise Not_found;
  let froms =
    match edge with Edge.Rising -> t.rise_from | Edge.Falling -> t.fall_from
  in
  let b = (4 * id) + edge_off edge in
  if Float.is_nan t.arr.(b) then raise Not_found;
  { time = t.arr.(b); slope = t.arr.(b + 1); from_ = unpack_from froms.(id) }

let node_worst t id =
  update t;
  if id < 0 || id >= t.cap then raise Not_found;
  let r = t.arr.(4 * id) and f = t.arr.((4 * id) + 2) in
  match (Float.is_nan r, Float.is_nan f) with
  | false, false ->
    if r >= f then (Edge.Rising, arrival t id Edge.Rising)
    else (Edge.Falling, arrival t id Edge.Falling)
  | false, true -> (Edge.Rising, arrival t id Edge.Rising)
  | true, false -> (Edge.Falling, arrival t id Edge.Falling)
  | true, true -> raise Not_found

let critical_endpoint t =
  update t;
  let best = ref None in
  List.iter
    (fun (id, _) ->
      match node_worst t id with
      | edge, a -> (
        match !best with
        | Some (_, _, b) when b.time >= a.time -> ()
        | Some _ | None -> best := Some (id, edge, a))
      | exception Not_found -> ())
    (Netlist.outputs t.netlist);
  !best

let critical_delay t =
  match critical_endpoint t with Some (_, _, a) -> a.time | None -> 0.

let backtrack t id edge =
  let rec go id edge acc =
    let acc = id :: acc in
    match (arrival t id edge).from_ with
    | None -> acc
    | Some (src, src_edge) -> go src src_edge acc
  in
  go id edge []

let critical_path t =
  match critical_endpoint t with
  | Some (id, edge, _) -> backtrack t id edge
  | None -> []

let path_through t id =
  let edge, _ = node_worst t id in
  backtrack t id edge

let min_clock_period ?setup t =
  let setup =
    match setup with
    | Some s -> s
    | None -> (Netlist.tech t.netlist).Pops_process.Tech.tau
  in
  critical_delay t +. setup

let slack t ~tc id =
  let _, a = node_worst t id in
  tc -. a.time
