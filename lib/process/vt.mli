(** Threshold-voltage (Vt) classes.

    Multi-Vt libraries trade speed for subthreshold leakage: a low-Vt
    (LVT) device switches fastest but leaks exponentially more than a
    standard- (SVT) or high-Vt (HVT) device of the same width.  The
    class is a property of each {e cell instance} — the optimizer swaps
    gates toward higher Vt wherever timing slack allows, never changing
    widths or topology.

    [Lvt] is the identity class: every derived factor is exactly [1.0]
    (and every threshold shift exactly [0.0]), so an all-LVT netlist is
    bit-identical to one that predates the Vt axis. *)

type t = Lvt | Svt | Hvt

val count : int
(** Number of classes, [3]. *)

val all : t array
(** [[| Lvt; Svt; Hvt |]] — ascending threshold order. *)

val to_int : t -> int
(** Dense code: [Lvt -> 0], [Svt -> 1], [Hvt -> 2].  Used to index the
    flattened per-class coefficient tables in the STA kernels. *)

val of_int : int -> t
(** Inverse of {!to_int}; raises [Invalid_argument] outside [0..2]. *)

val name : t -> string
(** ["lvt"] / ["svt"] / ["hvt"]. *)

val of_string : string -> t option
(** Inverse of {!name}. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by threshold: [Lvt < Svt < Hvt]. *)

val next : t -> t option
(** The next-higher-threshold class, if any — the direction leakage
    swaps move in. *)

val pp : Format.formatter -> t -> unit
