type t = {
  name : string;
  vdd : float;
  vtn : float;
  vtp : float;
  tau : float;
  r_ratio : float;
  k_ratio : float;
  cg_per_um : float;
  cj_per_um : float;
  cmin : float;
  wmin : float;
  alpha : float;
  kn : float;
  coupling_ratio : float;
  i_leak_per_um : float;
  subthreshold_slope : float;
}

(* Textbook 250 nm values: Cox ~ 6 fF/um^2, Lgate 0.25 um -> ~1.5 fF/um of
   gate width plus overlap; junction ~ half of gate; a minimum inverter is
   Wn = 0.5 um, Wp = k * Wn = 1.0 um -> cmin ~ 2.8 fF.  tau is calibrated so
   that the analytic FO4 inverter delay lands near the canonical ~90 ps of a
   250 nm process (the transient simulator cross-checks this in tests). *)
let cmos025 =
  {
    name = "cmos025";
    vdd = 2.5;
    vtn = 0.50;
    vtp = 0.55;
    tau = 29.0;
    r_ratio = 2.4;
    k_ratio = 2.0;
    cg_per_um = 1.85;
    cj_per_um = 1.0;
    cmin = 2.8;
    wmin = 0.5;
    alpha = 1.3;
    kn = 230.;
    coupling_ratio = 0.5;
    i_leak_per_um = 0.15;
    subthreshold_slope = 85.;
  }

let cmos018 =
  {
    name = "cmos018";
    vdd = 1.8;
    vtn = 0.42;
    vtp = 0.45;
    tau = 22.7;
    r_ratio = 2.2;
    k_ratio = 1.9;
    cg_per_um = 1.6;
    cj_per_um = 0.85;
    cmin = 1.7;
    wmin = 0.35;
    alpha = 1.25;
    kn = 300.;
    coupling_ratio = 0.5;
    i_leak_per_um = 1.2;
    subthreshold_slope = 90.;
  }

type corner = TT | SS | FF | SF | FS

let corner_name = function
  | TT -> "tt"
  | SS -> "ss"
  | FF -> "ff"
  | SF -> "sf"
  | FS -> "fs"

let at_corner t corner =
  let slow = 1.15 and fast = 0.87 and vt_shift = 0.04 in
  (* threshold shifts move subthreshold leakage exponentially *)
  let leak_factor dvt = 10. ** (-1000. *. dvt /. t.subthreshold_slope) in
  let named c = { t with name = t.name ^ "-" ^ corner_name c } in
  match corner with
  | TT -> t
  | SS ->
    { (named SS) with
      tau = t.tau *. slow;
      kn = t.kn *. fast;
      vtn = t.vtn +. vt_shift;
      vtp = t.vtp +. vt_shift;
      i_leak_per_um = t.i_leak_per_um *. leak_factor vt_shift }
  | FF ->
    { (named FF) with
      tau = t.tau *. fast;
      kn = t.kn *. slow;
      vtn = t.vtn -. vt_shift;
      vtp = t.vtp -. vt_shift;
      i_leak_per_um = t.i_leak_per_um *. leak_factor (-.vt_shift) }
  | SF ->
    (* slow N, fast P: pull-down weakens relative to pull-up *)
    { (named SF) with r_ratio = t.r_ratio *. 0.75; vtn = t.vtn +. vt_shift;
      vtp = t.vtp -. vt_shift }
  | FS ->
    { (named FS) with r_ratio = t.r_ratio *. 1.25; vtn = t.vtn -. vt_shift;
      vtp = t.vtp +. vt_shift }

let vtn_reduced t = t.vtn /. t.vdd
let vtp_reduced t = t.vtp /. t.vdd

(* Vt-class derivations.  All four functions are the identity at [Lvt]
   (shift 0.0, factors exactly 1.0), which keeps an all-LVT netlist
   bit-identical to the pre-multi-Vt model. *)

let vt_shift = function Vt.Lvt -> 0. | Vt.Svt -> 0.05 | Vt.Hvt -> 0.10

let vt_tau_factor t vt =
  match vt with
  | Vt.Lvt -> 1.0
  | _ ->
    (* alpha-power drive loss: Id ~ (VDD - VT)^alpha, so a threshold
       raised by dvt slows the stage by ((VDD-VT)/(VDD-VT-dvt))^alpha,
       evaluated at the mean of the N and P thresholds *)
    let vt_mean = (t.vtn +. t.vtp) *. 0.5 in
    let dvt = vt_shift vt in
    ((t.vdd -. vt_mean) /. (t.vdd -. vt_mean -. dvt)) ** t.alpha

let vt_leak_factor t vt =
  match vt with
  | Vt.Lvt -> 1.0
  | _ -> 10. ** (-1000. *. vt_shift vt /. t.subthreshold_slope)

let vtn_reduced_vt t vt =
  match vt with Vt.Lvt -> t.vtn /. t.vdd | _ -> (t.vtn +. vt_shift vt) /. t.vdd

let vtp_reduced_vt t vt =
  match vt with Vt.Lvt -> t.vtp /. t.vdd | _ -> (t.vtp +. vt_shift vt) /. t.vdd

let cin_of_width t ~wn ~wp = t.cg_per_um *. (wn +. wp)

let width_of_cin t ~k cin =
  let wn = cin /. (t.cg_per_um *. (1. +. k)) in
  (wn, k *. wn)

let kp t = t.kn /. t.r_ratio

let pp ppf t =
  Format.fprintf ppf
    "@[<v>process %s: VDD=%.2fV VTN=%.2fV VTP=%.2fV tau=%.1fps R=%.2f k=%.2f@ \
     Cg=%.2ffF/um Cj=%.2ffF/um Cmin=%.2ffF Wmin=%.2fum alpha=%.2f@]"
    t.name t.vdd t.vtn t.vtp t.tau t.r_ratio t.k_ratio t.cg_per_um t.cj_per_um
    t.cmin t.wmin t.alpha
