type t = Lvt | Svt | Hvt

let count = 3
let all = [| Lvt; Svt; Hvt |]
let to_int = function Lvt -> 0 | Svt -> 1 | Hvt -> 2

let of_int = function
  | 0 -> Lvt
  | 1 -> Svt
  | 2 -> Hvt
  | n -> invalid_arg (Printf.sprintf "Vt.of_int: %d" n)

let name = function Lvt -> "lvt" | Svt -> "svt" | Hvt -> "hvt"

let of_string = function
  | "lvt" -> Some Lvt
  | "svt" -> Some Svt
  | "hvt" -> Some Hvt
  | _ -> None

let equal (a : t) (b : t) = a = b
let compare a b = Int.compare (to_int a) (to_int b)
let next = function Lvt -> Some Svt | Svt -> Some Hvt | Hvt -> None
let pp ppf t = Format.pp_print_string ppf (name t)
