(** Technology (process) parameters.

    The paper works in a 0.25 um industrial CMOS process.  That process is
    proprietary; {!cmos025} is a self-consistent parameter set with the
    textbook values of a 250 nm node.  Everything the delay model and the
    optimizer consume is in this record, so swapping a process swaps the
    whole stack's behaviour coherently.

    Units follow {!Pops_util.Units}: ps, fF, V, uA, um. *)

type t = {
  name : string;
  vdd : float;  (** supply voltage, V *)
  vtn : float;  (** NMOS threshold, V (positive) *)
  vtp : float;  (** PMOS threshold magnitude, V (positive) *)
  tau : float;
      (** process time unit of eq. (2), ps: the metric transition time of a
          minimum inverter loaded by one identical input capacitance. *)
  r_ratio : float;
      (** N-over-P current ratio [R] at equal width (eq. 3); ~2–3. *)
  k_ratio : float;
      (** default P/N configuration width ratio [k] used by library cells. *)
  cg_per_um : float;
      (** gate capacitance per um of transistor width, fF/um. *)
  cj_per_um : float;
      (** drain junction (parasitic output) capacitance per um, fF/um. *)
  cmin : float;
      (** minimum available gate input capacitance [C_REF], fF: the input
          capacitance of the minimum-drive inverter. *)
  wmin : float;  (** minimum NMOS width, um. *)
  alpha : float;
      (** alpha-power-law velocity-saturation index (Sakurai-Newton); ~1.3
          at 250 nm. *)
  kn : float;
      (** NMOS saturation transconductance, uA/um at (VDD - VTN)^alpha. *)
  coupling_ratio : float;
      (** C_M as a fraction of the switching transistor gate capacitance
          (paper: "one half the input capacitance of the P(N) transistor"
          for rising (falling) input — this is that 0.5 factor). *)
  i_leak_per_um : float;
      (** subthreshold leakage per um of transistor width at the nominal
          threshold, nA/um (a 0.25 um-class value; leakage was small but
          not zero at this node). *)
  subthreshold_slope : float;
      (** subthreshold swing, mV/decade — converts threshold shifts
          into leakage factors: [10^(dVt / slope)]. *)
}

val cmos025 : t
(** The default process: 250 nm, VDD 2.5 V. *)

val cmos018 : t
(** A 180 nm set used only for scaling sanity checks. *)

type corner = TT | SS | FF | SF | FS
(** Process corners: typical, slow/slow, fast/fast, and the skewed
    slow-N/fast-P and fast-N/slow-P corners that unbalance rise and
    fall. *)

val corner_name : corner -> string

val at_corner : t -> corner -> t
(** Derated parameter set: SS slows both devices ~15% (tau up, thresholds
    up), FF the reverse; SF and FS move the N/P current ratio [R] by
    ±25% and rename the process accordingly.  The skewed corners change
    which polarity is critical — the case the beta-weighted optimizer
    exists for. *)

val vtn_reduced : t -> float
(** [vtn / vdd] — the reduced threshold [v_TN] of eq. (1). *)

val vtp_reduced : t -> float
(** [vtp / vdd] — the reduced threshold [v_TP] of eq. (1). *)

val vt_shift : Vt.t -> float
(** Threshold increase of a Vt class over the process nominal, V:
    [0.0] for {!Vt.Lvt}, [0.05] for {!Vt.Svt}, [0.10] for {!Vt.Hvt}. *)

val vt_tau_factor : t -> Vt.t -> float
(** Delay derating of a Vt class: the alpha-power drive-current loss
    [((VDD - VT) / (VDD - VT - dVt))^alpha] at the mean N/P threshold.
    Exactly [1.0] at {!Vt.Lvt}. *)

val vt_leak_factor : t -> Vt.t -> float
(** Subthreshold-leakage multiplier of a Vt class relative to the
    nominal (LVT) device: [10^(-dVt / slope)] — exponential in the
    threshold shift, so SVT/HVT cut leakage by roughly 4x/15x at a
    typical 85 mV/decade swing.  Exactly [1.0] at {!Vt.Lvt}. *)

val vtn_reduced_vt : t -> Vt.t -> float
(** [(vtn + vt_shift vt) / vdd] — the reduced NMOS threshold of a cell
    in the given Vt class.  Bit-identical to {!vtn_reduced} at
    {!Vt.Lvt}. *)

val vtp_reduced_vt : t -> Vt.t -> float
(** PMOS counterpart of {!vtn_reduced_vt}. *)

val cin_of_width : t -> wn:float -> wp:float -> float
(** Input capacitance (fF) of a transistor pair of given widths (um). *)

val width_of_cin : t -> k:float -> float -> float * float
(** [width_of_cin tech ~k cin] splits an input capacitance into [(wn, wp)]
    with [wp = k * wn]. *)

val kp : t -> float
(** PMOS transconductance derived from {!t.kn} and {!t.r_ratio}. *)

val pp : Format.formatter -> t -> unit
