type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_string s =
  (* FNV-1a, 64-bit *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  create !h

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

(* SplitMix-style split: consume one draw from [t] (so the parent's
   subsequent sequence is exactly what it was before this API returned a
   pair) and seed the child from it.  Deriving one child per restart /
   sweep point up front gives every parallel task its own reproducible
   stream, independent of which domain runs it. *)
let split t = (t, create (int64 t))

let float t bound =
  assert (bound > 0.);
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  let u = Int64.to_float bits /. 9007199254740992. in
  u *. bound

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so Int64.to_int cannot wrap to a negative value *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let range t lo hi = lo +. float t (hi -. lo)

let log_range t lo hi =
  assert (0. < lo && lo < hi);
  exp (range t (log lo) (log hi))

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let weighted_pick t choices =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. choices in
  assert (total > 0.);
  let target = float t total in
  let rec go i acc =
    let x, w = choices.(i) in
    let acc = acc +. w in
    if target < acc || i = Array.length choices - 1 then x else go (i + 1) acc
  in
  go 0 0.
