(* Classic hashtable + intrusive doubly-linked recency list.  The list
   head is most-recently-used, the tail the eviction candidate; every
   operation is O(1) amortised.  Sentinel-free: [first]/[last] options
   keep the node type simple at the cost of a few match arms. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;  (* most recently used *)
  mutable last : ('k, 'v) node option;  (* least recently used *)
  mutable capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    table = Hashtbl.create (min capacity 64);
    first = None;
    last = None;
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity (t : (_, _) t) = t.capacity
let length t = Hashtbl.length t.table

(* detach [n] from the recency list (it must be linked) *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let touch t n =
  let already_first = match t.first with Some f -> f == n | None -> false in
  if not already_first then begin
    unlink t n;
    push_front t n
  end

let evict_last t =
  match t.last with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.evictions <- t.evictions + 1

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    t.hits <- t.hits + 1;
    touch t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    None

let mem t k = Hashtbl.mem t.table k

let peek t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    touch t n;
    Some n.value
  | None -> None

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    touch t n
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_last t;
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table k
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None

let set_capacity (t : (_, _) t) c =
  if c < 1 then invalid_arg "Lru.set_capacity: capacity must be >= 1";
  t.capacity <- c;
  while Hashtbl.length t.table > c do
    evict_last t
  done

let stats (t : (_, _) t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    length = length t;
    capacity = t.capacity;
  }

let reset_stats (t : (_, _) t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let fold f t init =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f n.key n.value acc) n.next
  in
  go init t.first
