(** Numerical routines shared by the optimizer and the simulator.

    Everything here is deterministic and allocation-light; the optimizer
    calls these in inner loops.  All tolerances are absolute unless the
    name says otherwise. *)

exception No_bracket of string
(** Raised by root finders when the supplied interval does not bracket a
    root. The payload names the caller for diagnosis. *)

val bisect :
  ?caller:string -> ?tol:float -> ?max_iter:int ->
  f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds [x] in [\[lo, hi\]] with [f x = 0] assuming
    [f lo] and [f hi] have opposite signs.  Internally a safeguarded
    regula falsi: secant steps where they converge superlinearly, with a
    bisection fallback whenever a step degenerates or fails to halve the
    bracket, so the worst case stays the bisection bound.  Terminates
    when the bracket width drops below [tol] (or at [max_iter]) and
    returns the bracket midpoint.
    @raise No_bracket if the signs agree. *)

val newton :
  ?tol:float -> ?max_iter:int ->
  f:(float -> float) -> df:(float -> float) -> x0:float -> unit -> float option
(** Newton-Raphson from [x0]; [None] when it diverges or the derivative
    vanishes.  Callers fall back to {!bisect}. *)

val golden_section_min :
  ?tol:float -> ?max_iter:int ->
  f:(float -> float) -> lo:float -> hi:float -> unit -> float * float
(** [golden_section_min ~f ~lo ~hi ()] minimises a unimodal [f] on
    [\[lo, hi\]], returning [(argmin, min)]. *)

val fixed_point :
  ?tol:float -> ?max_iter:int ->
  step:(float array -> float array) ->
  distance:(float array -> float array -> float) ->
  float array -> float array * int
(** [fixed_point ~step ~distance x0] iterates [step] until
    [distance x (step x) < tol] or [max_iter] is hit.  Returns the final
    iterate and the number of iterations performed. *)

val fixed_point_trace :
  ?tol:float -> ?max_iter:int ->
  step:(float array -> float array) ->
  distance:(float array -> float array -> float) ->
  float array -> float array list
(** Like {!fixed_point} but returns every iterate, first to last.  Used to
    reproduce the Fig. 1 convergence plot. *)

val gradient : f:(float array -> float) -> ?h:float -> float array -> float array
(** Central-difference numerical gradient, relative step [h] (default
    1e-5) scaled by [max 1. |x_i|].  Reference implementation used by
    property tests to validate analytic gradients. *)

val norm_inf : float array -> float
(** L-infinity norm. *)

val distance_inf : float array -> float array -> float
(** L-infinity distance between two vectors of equal length. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to [\[lo, hi\]]. *)

val close : ?rtol:float -> ?atol:float -> float -> float -> bool
(** Approximate float equality: [|a - b| <= atol + rtol * max |a| |b|].
    Defaults: [rtol = 1e-9], [atol = 1e-12]. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] gives [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n]: [n] points geometrically spaced from [a] to [b];
    requires [a > 0.] and [b > 0.]. *)
