(** Deterministic pseudo-random numbers (SplitMix64).

    Benchmarks and the synthetic circuit generator must be reproducible
    across runs and machines, so we do not use [Stdlib.Random].  The state
    is explicit; splitting produces statistically independent streams, used
    to give each generated benchmark circuit its own stream. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed. *)

val of_string : string -> t
(** [of_string s] seeds a generator from the FNV-1a hash of [s]; used to
    derive a circuit's stream from its name. *)

val split : t -> t * t
(** [split t] advances [t] by one draw and returns [(t, child)] where
    [child] is a statistically independent generator seeded from that
    draw (SplitMix-style).  The parent's own sequence after the split is
    identical to what one plain {!int64} draw would have left, so
    single-stream sequences for a given seed are unchanged; splitting
    one child per parallel task up front makes results reproducible
    independent of scheduling. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. [bound > 0.]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val range : t -> float -> float -> float
(** [range t lo hi] draws uniformly from [\[lo, hi)]. *)

val log_range : t -> float -> float -> float
(** [log_range t lo hi] draws log-uniformly from [\[lo, hi)];
    requires [0. < lo < hi]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted_pick : t -> ('a * float) array -> 'a
(** [weighted_pick t choices] draws proportionally to the (positive)
    weights. *)
