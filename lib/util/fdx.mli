(** Select/poll loop helpers shared by the serving front ends.

    The stdio server and the socket listener both sit in the same
    posture: block in [select] until a descriptor is ready {e or} the
    nearest deadline passes, then perform non-blocking reads and writes
    that classify every failure instead of raising.  This module owns
    that posture so both transports share one deadline code path (no
    socket-only robustness) and neither spins on a zero-timeout poll.

    Deadlines are absolute [Unix.gettimeofday] instants, the same clock
    {!Pops_robust.Budget} uses for wall caps. *)

val now : unit -> float
(** The deadline clock ([Unix.gettimeofday]). *)

type readiness = {
  readable : Unix.file_descr list;
  writable : Unix.file_descr list;
  timed_out : bool;  (** the deadline passed with nothing ready *)
}

val wait :
  ?deadline:float ->
  read:Unix.file_descr list ->
  write:Unix.file_descr list ->
  unit ->
  readiness
(** Block in [select] until some watched descriptor is ready or
    [deadline] passes ([None] = wait forever).  [EINTR] retries with a
    recomputed timeout, so a signal handler that only sets a flag cannot
    make the wait return a bogus verdict; a deadline already in the past
    still polls once (timeout 0) before reporting [timed_out]. *)

val wait_readable : ?deadline:float -> Unix.file_descr -> [ `Ready | `Timeout ]
(** {!wait} on one read descriptor. *)

val readable_now : Unix.file_descr -> bool
(** One zero-timeout poll: is a read guaranteed not to block?  ([false]
    on [EINTR] — the caller's loop will come back.) *)

type read_result =
  | Read of int  (** [n > 0] bytes landed in the buffer *)
  | Read_eof
  | Read_blocked  (** descriptor not ready (only on non-blocking fds) *)
  | Read_closed of string  (** connection-level failure, e.g. [ECONNRESET] *)

val read : Unix.file_descr -> bytes -> read_result
(** [read fd buf] classifies every outcome of one [Unix.read]: peer
    resets and kindred connection errors become {!Read_closed} instead
    of an exception, so a hostile client can never throw past the
    caller's loop.  [EINTR] reads as {!Read_blocked}. *)

type write_result =
  | Wrote of int
  | Write_blocked
  | Write_closed of string  (** [EPIPE], [ECONNRESET], ... *)

val write : Unix.file_descr -> bytes -> int -> int -> write_result
(** [write fd buf pos len] — one [Unix.write], classified like {!read}.
    Callers must have [SIGPIPE] ignored (the serving front ends do) so a
    vanished reader surfaces as [Write_closed "EPIPE"]. *)

val set_nonblock : Unix.file_descr -> unit
val set_block : Unix.file_descr -> unit

val pipe_self : unit -> Unix.file_descr * Unix.file_descr
(** A non-blocking self-pipe [(r, w)] — the classic way to make
    [select] wake up for an event raised from a signal handler or
    another domain.  {!notify} the write end; {!drain} the read end. *)

val notify : Unix.file_descr -> unit
(** Write one byte to a self-pipe, ignoring [EAGAIN] (already
    signalled) and every other error (worst case: a spurious timeout
    later). *)

val drain : Unix.file_descr -> unit
(** Empty a self-pipe's read end without blocking. *)
