(* A fixed-size domain pool.  Workers park on a mutex/condition-guarded
   queue of jobs; a fan-out enqueues one "helper" job per worker and the
   calling domain immediately starts stealing task indices itself, so
   completion never depends on a worker being free (nested fan-outs from
   inside a task therefore cannot deadlock).  Every task writes its
   result into a slot keyed by submission index, which is what makes the
   parallel result bit-identical to the sequential one. *)

type job = unit -> unit

type t = {
  size : int;
  queue : job Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let env_size () =
  match Sys.getenv_opt "POPS_DOMAINS" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_size_hint () =
  match env_size () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

let worker pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stopped do
      Condition.wait pool.work_available pool.lock
    done;
    match Queue.take_opt pool.queue with
    | Some job ->
      Mutex.unlock pool.lock;
      job ();
      loop ()
    | None ->
      (* stopped and drained *)
      Mutex.unlock pool.lock
  in
  loop ()

let create ?size () =
  let size =
    match size with Some s -> max 1 s | None -> default_size_hint ()
  in
  let pool =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopped = false;
      workers = [];
    }
  in
  if size > 1 then
    pool.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopped <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* --- the shared default pool ---------------------------------------- *)

let default_pool : t option ref = ref None
let default_lock = Mutex.create ()

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create () in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_lock;
  pool

let default_size () =
  match !default_pool with Some p -> p.size | None -> default_size_hint ()

let set_default_size n =
  Mutex.lock default_lock;
  let old = !default_pool in
  default_pool := Some (create ~size:n ());
  Mutex.unlock default_lock;
  match old with Some p -> shutdown p | None -> ()

(* --- fan-out --------------------------------------------------------- *)

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let parallel_map ?pool f xs =
  let pool = match pool with Some p -> p | None -> default () in
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.size = 1 || pool.stopped || n = 1 then Array.map f xs
  else begin
    let slots = Array.make n Pending in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let finished_lock = Mutex.create () in
    let finished = Condition.create () in
    let run_one i =
      let r =
        try Done (f xs.(i))
        with e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      slots.(i) <- r;
      if Atomic.fetch_and_add completed 1 = n - 1 then begin
        Mutex.lock finished_lock;
        Condition.broadcast finished;
        Mutex.unlock finished_lock
      end
    in
    (* every participant — helpers and the caller — drains the same
       atomic index counter until no task is left *)
    let steal () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_one i;
          go ()
        end
      in
      go ()
    in
    let helpers = min (pool.size - 1) (n - 1) in
    Mutex.lock pool.lock;
    for _ = 1 to helpers do
      Queue.add steal pool.queue
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    steal ();
    (* the index counter is exhausted; wait for tasks still running on
       worker domains (helpers that never started exit instantly when a
       worker eventually pops them) *)
    Mutex.lock finished_lock;
    while Atomic.get completed < n do
      Condition.wait finished finished_lock
    done;
    Mutex.unlock finished_lock;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      slots;
    Array.map (function Done v -> v | Pending | Failed _ -> assert false) slots
  end

let map_list ?pool f xs =
  Array.to_list (parallel_map ?pool f (Array.of_list xs))

(* Split [lo, hi) into at most [size] contiguous chunks of at least
   [min_chunk] indices and run [f a b] on each.  Chunk boundaries depend
   only on the range, the pool size and [min_chunk] — never on
   scheduling — so a caller whose chunks write disjoint slots gets
   bit-identical results at any domain count. *)
let parallel_chunks ?pool ~min_chunk f ~lo ~hi =
  if hi > lo then begin
    let pool = match pool with Some p -> p | None -> default () in
    let len = hi - lo in
    let pieces = min pool.size (max 1 (len / max 1 min_chunk)) in
    if pieces <= 1 || pool.stopped then f lo hi
    else begin
      let base = len / pieces and rem = len mod pieces in
      let bounds =
        Array.init pieces (fun i ->
            let a = lo + (i * base) + min i rem in
            let b = a + base + (if i < rem then 1 else 0) in
            (a, b))
      in
      ignore (parallel_map ~pool (fun (a, b) -> f a b) bounds)
    end
  end

let parallel_reduce ?pool ~map ~combine ~init xs =
  Array.fold_left combine init (parallel_map ?pool map xs)

(* --- per-task containment -------------------------------------------- *)

module Diag = Pops_robust.Diag
module Watch = Pops_robust.Watch
module Fault = Pops_robust.Fault

let contain_diag e =
  match e with
  | Fault.Injected point ->
    Diag.makef Diag.Pool_task_failed ~subject:point
      "fault injected in pool task"
  | Diag.Fatal d -> d
  | e ->
    Diag.makef Diag.Pool_task_failed "pool task raised: %s"
      (Printexc.to_string e)

(* Contained fan-out: a crashing task degrades its own slot instead of
   killing the whole fan-out (and, transitively, the optimization run).
   Each task runs under its own Watch collector on whichever domain
   executes it; the collected diagnostics travel back with the slot so
   the caller can re-emit them in deterministic submission order.  The
   [pool.raise] injection point fires here, before the task body. *)
let parallel_map_contained ?pool f xs =
  parallel_map ?pool
    (fun x ->
      Watch.collect (fun () ->
          match
            Fault.inject "pool.raise";
            f x
          with
          | v -> Ok v
          | exception e -> Error (contain_diag e)))
    xs

let map_list_contained ?pool f xs =
  Array.to_list (parallel_map_contained ?pool f (Array.of_list xs))
