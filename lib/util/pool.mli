(** Fixed-size domain pool with deterministic fan-out.

    OCaml 5 gives the runtime true shared-memory parallelism; this module
    packages it behind a deliberately narrow interface: a fixed set of
    worker domains plus [parallel_map] / [parallel_reduce] combinators
    whose results are {e bit-identical} to their sequential equivalents.

    The determinism contract:
    - results are stored (and reduced) in {e submission order}, never in
      completion order, so scheduling cannot reorder floating-point
      combines;
    - the mapped function must be pure with respect to observable state
      (internal memo tables guarded by locks are fine — see
      [Pops_core.Buffers.flimit]);
    - an exception raised by a worker is re-raised at the call site; when
      several tasks fail, the one with the {e smallest index} wins, which
      is again what the sequential order would have reported first.

    Nesting is safe: the calling domain always participates in its own
    fan-out and never blocks on the shared queue, so a task that itself
    calls [parallel_map] cannot deadlock the pool — idle workers only add
    throughput. *)

type t
(** A pool handle: [size] domains total (the caller counts as one, so a
    pool of size [n] keeps [n - 1] worker domains parked on a queue). *)

val create : ?size:int -> unit -> t
(** [create ~size ()] builds a pool.  [size] defaults to the environment
    override [POPS_DOMAINS] when set, else
    [Domain.recommended_domain_count ()].  A size of 1 spawns no domains
    and makes every combinator run sequentially in the caller. *)

val size : t -> int
(** Total parallelism of the pool (including the calling domain). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool degrades to
    sequential execution afterwards. *)

val default : unit -> t
(** The process-wide shared pool, created lazily on first use with
    [create ()].  All library entry points fan out on this pool unless
    given an explicit one. *)

val default_size : unit -> int
(** [size (default ())] without forcing worker creation when the
    configured size is 1. *)

val set_default_size : int -> unit
(** Replace the shared pool with one of the given size (shutting the old
    one down).  Used by benchmarks and the determinism test-suite to
    compare domain counts inside one process; normal programs configure
    the pool once via [POPS_DOMAINS]. *)

val parallel_map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] computed on the pool.
    Results land at the index of their input regardless of which domain
    ran them.  Exceptions re-raise at the call site (smallest failing
    index wins); remaining tasks still run to completion first. *)

val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map] for lists, preserving order. *)

val parallel_chunks :
  ?pool:t -> min_chunk:int -> (int -> int -> unit) -> lo:int -> hi:int -> unit
(** [parallel_chunks ~min_chunk f ~lo ~hi] covers the index range
    [lo, hi)] with disjoint contiguous chunks of at least [min_chunk]
    indices (at most one per pool domain) and runs [f a b] on each,
    possibly concurrently.  Chunk boundaries are a pure function of the
    range, the pool size and [min_chunk], so when every [f a b] writes
    only slots in [a, b) the combined result is bit-identical to the
    sequential [f lo hi] at any domain count.  Runs [f lo hi] inline when
    the range is too small to split or the pool is sequential. *)

val parallel_reduce :
  ?pool:t -> map:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc ->
  'a array -> 'acc
(** [parallel_reduce ~map ~combine ~init xs] maps on the pool, then folds
    the results {e sequentially in submission order} — the reduction is
    deterministic even when [combine] is not associative (floating-point
    sums, first-strictly-better selections). *)

val parallel_map_contained :
  ?pool:t -> ('a -> 'b) -> 'a array ->
  (('b, Pops_robust.Diag.t) result * Pops_robust.Diag.t list) array
(** Contained fan-out: like {!parallel_map}, but a task that raises
    degrades its own slot to [Error diag] instead of re-raising at the
    call site — one crashing candidate cannot kill the whole fan-out.
    Each slot also carries the diagnostics the task emitted
    ({!Pops_robust.Watch}) on whichever domain ran it, so the caller can
    re-emit them in deterministic submission order.  The
    [pool.raise] fault-injection point fires here.  Exceptions become
    {!Pops_robust.Diag.Pool_task_failed} diagnostics (a
    {!Pops_robust.Diag.Fatal} payload passes through unchanged). *)

val map_list_contained :
  ?pool:t -> ('a -> 'b) -> 'a list ->
  (('b, Pops_robust.Diag.t) result * Pops_robust.Diag.t list) list
(** {!parallel_map_contained} for lists, preserving order. *)
