let now () = Unix.gettimeofday ()

type readiness = {
  readable : Unix.file_descr list;
  writable : Unix.file_descr list;
  timed_out : bool;
}

let rec wait ?deadline ~read ~write () =
  let timeout =
    match deadline with
    | None -> -1. (* block until something is ready *)
    | Some d -> Float.max 0. (d -. now ())
  in
  match Unix.select read write [] timeout with
  | [], [], _ when timeout >= 0. && read = [] && write = [] ->
    { readable = []; writable = []; timed_out = true }
  | [], [], _ ->
    (* select can return early (timeout rounding): only report a timeout
       once the deadline has really passed, else go around again *)
    if timeout >= 0. && now () >= Option.get deadline then
      { readable = []; writable = []; timed_out = true }
    else wait ?deadline ~read ~write ()
  | readable, writable, _ -> { readable; writable; timed_out = false }
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    (* a signal (e.g. the drain handler) interrupted the wait: recompute
       the timeout and go back to sleep — the handler's self-pipe byte
       makes the retry return readable immediately when it matters *)
    wait ?deadline ~read ~write ()

let wait_readable ?deadline fd =
  let r = wait ?deadline ~read:[ fd ] ~write:[] () in
  if r.timed_out then `Timeout else `Ready

let readable_now fd =
  match Unix.select [ fd ] [] [] 0. with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

type read_result =
  | Read of int
  | Read_eof
  | Read_blocked
  | Read_closed of string

let read fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> Read_eof
  | n -> Read n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> Read_blocked
  | exception Unix.Unix_error (e, _, _) -> Read_closed (Unix.error_message e)

type write_result =
  | Wrote of int
  | Write_blocked
  | Write_closed of string

let write fd buf pos len =
  match Unix.write fd buf pos len with
  | n -> Wrote n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> Write_blocked
  | exception Unix.Unix_error (e, _, _) -> Write_closed (Unix.error_message e)

let set_nonblock fd = try Unix.set_nonblock fd with Unix.Unix_error _ -> ()
let set_block fd = try Unix.clear_nonblock fd with Unix.Unix_error _ -> ()

let pipe_self () =
  let r, w = Unix.pipe () in
  set_nonblock r;
  set_nonblock w;
  (r, w)

let notify fd =
  match Unix.write fd (Bytes.make 1 '!') 0 1 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let drain fd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fd buf 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()
