exception No_bracket of string

(* Safeguarded regula falsi (false position with a bisection fallback).
   Each step first tries the secant point of the bracket — superlinear
   near a simple root, where plain bisection grinds through its fixed
   log2((hi-lo)/tol) evaluations — and falls back to the midpoint
   whenever the secant step degenerates (non-finite, or pinned within 1%
   of an endpoint) or the previous step failed to halve the bracket
   (regula falsi's stuck-endpoint mode).  The fallback guarantees the
   bracket width at least halves every other iteration, so the classic
   bisection bound still holds.  The contract is unchanged: a width
   [< tol] (or [max_iter]) stops and returns the bracket midpoint. *)
let bisect ?(caller = "bisect") ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then
    raise (No_bracket (Printf.sprintf "%s: f(%g)=%g, f(%g)=%g" caller lo flo hi fhi))
  else
    let rec loop lo hi flo fhi iter force_bisect =
      if hi -. lo < tol || iter >= max_iter then 0.5 *. (lo +. hi)
      else
        let w = hi -. lo in
        let x =
          if force_bisect then 0.5 *. (lo +. hi)
          else
            let x = lo +. (flo /. (flo -. fhi) *. w) in
            if Float.is_finite x && x > lo +. (0.01 *. w) && x < hi -. (0.01 *. w)
            then x
            else 0.5 *. (lo +. hi)
        in
        let fx = f x in
        if fx = 0. then x
        else if flo *. fx < 0. then
          loop lo x flo fx (iter + 1) (x -. lo > 0.5 *. w)
        else loop x hi fx fhi (iter + 1) (hi -. x > 0.5 *. w)
    in
    if lo <= hi then loop lo hi flo fhi 0 false else loop hi lo fhi flo 0 false

let newton ?(tol = 1e-12) ?(max_iter = 60) ~f ~df ~x0 () =
  let rec loop x iter =
    if iter >= max_iter then None
    else
      let fx = f x in
      if Float.abs fx < tol then Some x
      else
        let d = df x in
        if Float.abs d < 1e-300 then None
        else
          let x' = x -. (fx /. d) in
          if not (Float.is_finite x') then None
          else if Float.abs (x' -. x) < tol *. (1. +. Float.abs x') then Some x'
          else loop x' (iter + 1)
  in
  loop x0 0

let golden_ratio = (sqrt 5. -. 1.) /. 2.

let golden_section_min ?(tol = 1e-10) ?(max_iter = 200) ~f ~lo ~hi () =
  let rec loop a b x1 x2 f1 f2 iter =
    if b -. a < tol || iter >= max_iter then
      let xm = 0.5 *. (a +. b) in
      (xm, f xm)
    else if f1 < f2 then
      let b = x2 and x2 = x1 and f2 = f1 in
      let x1 = b -. (golden_ratio *. (b -. a)) in
      loop a b x1 x2 (f x1) f2 (iter + 1)
    else
      let a = x1 and x1 = x2 and f1 = f2 in
      let x2 = a +. (golden_ratio *. (b -. a)) in
      loop a b x1 x2 f1 (f x2) (iter + 1)
  in
  let a = min lo hi and b = max lo hi in
  let x1 = b -. (golden_ratio *. (b -. a)) in
  let x2 = a +. (golden_ratio *. (b -. a)) in
  loop a b x1 x2 (f x1) (f x2) 0

let fixed_point ?(tol = 1e-9) ?(max_iter = 500) ~step ~distance x0 =
  let rec loop x iter =
    let x' = step x in
    if distance x x' < tol || iter + 1 >= max_iter then (x', iter + 1)
    else loop x' (iter + 1)
  in
  loop x0 0

let fixed_point_trace ?(tol = 1e-9) ?(max_iter = 500) ~step ~distance x0 =
  let rec loop x iter acc =
    let x' = step x in
    let acc = x' :: acc in
    if distance x x' < tol || iter + 1 >= max_iter then List.rev acc
    else loop x' (iter + 1) acc
  in
  loop x0 0 [ x0 ]

let gradient ~f ?(h = 1e-5) x =
  let n = Array.length x in
  let g = Array.make n 0. in
  for i = 0 to n - 1 do
    let xi = x.(i) in
    let step = h *. Float.max 1. (Float.abs xi) in
    x.(i) <- xi +. step;
    let fp = f x in
    x.(i) <- xi -. step;
    let fm = f x in
    x.(i) <- xi;
    g.(i) <- (fp -. fm) /. (2. *. step)
  done;
  g

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. x

let distance_inf a b =
  assert (Array.length a = Array.length b);
  let d = ref 0. in
  Array.iteri (fun i ai -> d := Float.max !d (Float.abs (ai -. b.(i)))) a;
  !d

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let close ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let linspace a b n =
  assert (n >= 2);
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. h))

let logspace a b n =
  assert (a > 0. && b > 0.);
  Array.map exp (linspace (log a) (log b) n)
