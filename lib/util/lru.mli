(** Bounded least-recently-used cache with observability counters.

    A polymorphic key/value store that holds at most [capacity] entries
    and evicts the least-recently-{e used} one on overflow — both
    {!find} hits and {!put}s refresh an entry's recency.  Built for the
    long-lived serving engine, where unbounded memo tables (the former
    [Bounds.compute] reset-at-a-bound table) are a slow leak: the LRU
    turns them into a fixed working set whose effectiveness is visible
    through {!stats}.

    The structure is {e not} synchronised: concurrent users wrap every
    operation in their own mutex (see [Pops_core.Bounds] and
    [Pops_serve.Cache]), which also lets a caller make compound
    find-or-compute sequences atomic. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;  (** {!find}s that came back empty *)
  evictions : int;  (** entries displaced by capacity, not {!remove}d *)
  length : int;  (** current entry count *)
  capacity : int;
}

val create : capacity:int -> unit -> ('k, 'v) t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val set_capacity : ('k, 'v) t -> int -> unit
(** Shrinking evicts oldest-first down to the new bound (counted in
    {!stats}).  @raise Invalid_argument when the new capacity [< 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** A hit refreshes the entry to most-recently-used and counts in
    {!stats}; a miss counts too. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership probe: does {e not} touch recency or the counters. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** {!find} without the counters: refreshes recency on a hit but records
    neither hit nor miss.  For opportunistic probes whose miss path is
    cheap and should not dilute the hit-rate statistics. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, making the entry most-recently-used; evicts the
    least-recently-used entry when the cache is full. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Drop an entry if present (not an eviction for {!stats}). *)

val clear : ('k, 'v) t -> unit
(** Drop every entry.  Counters are preserved — use {!reset_stats} to
    zero them. *)

val stats : ('k, 'v) t -> stats
val reset_stats : ('k, 'v) t -> unit

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Fold over the live entries, most-recently-used first; does not
    touch recency or the counters. *)
