(** The result shape of resilient entry points.

    [Exact v] — the nominal computation succeeded with no anomaly.
    [Degraded (v, diags)] — a usable result was produced, but something
    degraded along the way (a solver fell down its fallback ladder, a
    pool task was contained, a budget ran out); [diags] says what and
    why.  [Failed d] — no usable result exists (the input itself is
    invalid); [d] is the blocking diagnostic.

    The resilience contract of the optimization engine: given a {e
    valid} netlist, flow entry points never return [Failed] — at worst
    they degrade to the Tmax-safe sizing and report it. *)

type 'a t =
  | Exact of 'a
  | Degraded of 'a * Diag.t list
  | Failed of Diag.t

val make : 'a -> Diag.t list -> 'a t
(** [Exact] when the list carries no warning/error, [Degraded] otherwise
    (info-only diagnostics do not demote an exact result). *)

val of_result : ?diags:Diag.t list -> ('a, Diag.t) result -> 'a t

val value : 'a t -> 'a option
val get : 'a t -> 'a
(** @raise Diag.Fatal on [Failed] — the legacy-wrapper bridge. *)

val diags : 'a t -> Diag.t list
val degraded : 'a t -> bool
val map : ('a -> 'b) -> 'a t -> 'b t
val to_result : 'a t -> ('a * Diag.t list, Diag.t) result
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
