type severity = Info | Warning | Error

type code =
  | Solver_divergence
  | Solver_nonfinite
  | Solver_stalled
  | Solver_fallback
  | Bracket_collapse
  | Budget_exceeded
  | Netlist_cycle
  | Netlist_dangling
  | Netlist_zero_fanout
  | Netlist_bad_cin
  | Bench_syntax
  | Bench_truncated
  | Invalid_input
  | Constraint_infeasible
  | Admission_rejected
  | Overloaded
  | Deadline_exceeded
  | Net_error
  | Pool_task_failed
  | Fault_injected
  | Internal

type t = {
  code : code;
  severity : severity;
  subject : string option;
  message : string;
  hint : string option;
}

exception Fatal of t

let code_name = function
  | Solver_divergence -> "solver-divergence"
  | Solver_nonfinite -> "solver-nonfinite"
  | Solver_stalled -> "solver-stalled"
  | Solver_fallback -> "solver-fallback"
  | Bracket_collapse -> "bracket-collapse"
  | Budget_exceeded -> "budget-exceeded"
  | Netlist_cycle -> "netlist-cycle"
  | Netlist_dangling -> "netlist-dangling"
  | Netlist_zero_fanout -> "netlist-zero-fanout"
  | Netlist_bad_cin -> "netlist-bad-cin"
  | Bench_syntax -> "bench-syntax"
  | Bench_truncated -> "bench-truncated"
  | Invalid_input -> "invalid-input"
  | Constraint_infeasible -> "constraint-infeasible"
  | Admission_rejected -> "admission-rejected"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"
  | Net_error -> "net-error"
  | Pool_task_failed -> "pool-task-failed"
  | Fault_injected -> "fault-injected"
  | Internal -> "internal"

let default_severity = function
  | Netlist_zero_fanout | Solver_fallback | Bracket_collapse -> Warning
  | Fault_injected -> Info
  | Solver_divergence | Solver_nonfinite | Solver_stalled | Budget_exceeded
  | Overloaded | Deadline_exceeded | Net_error | Pool_task_failed -> Warning
  | Netlist_cycle | Netlist_dangling | Netlist_bad_cin | Bench_syntax
  | Bench_truncated | Invalid_input | Constraint_infeasible
  | Admission_rejected | Internal -> Error

(* what a front end should do with the diagnostic: reject the input,
   report an unmet constraint, keep going with a degraded result, or
   treat it as a bug in the engine *)
let classify = function
  | Netlist_cycle | Netlist_dangling | Netlist_bad_cin | Bench_syntax
  | Bench_truncated | Invalid_input -> `Invalid_input
  | Constraint_infeasible | Admission_rejected | Overloaded -> `Constraint
  | Solver_divergence | Solver_nonfinite | Solver_stalled | Solver_fallback
  | Bracket_collapse | Budget_exceeded | Netlist_zero_fanout
  | Deadline_exceeded | Net_error | Pool_task_failed | Fault_injected ->
    `Degradation
  | Internal -> `Internal

let default_hint = function
  | Solver_divergence | Solver_nonfinite | Solver_stalled ->
    Some "the solver fell back down the ladder; see docs/robustness.md"
  | Solver_fallback ->
    Some "result is valid but conservative (no worse than the Tmax bound)"
  | Budget_exceeded -> Some "raise the budget caps or relax the constraint"
  | Netlist_cycle -> Some "break the combinational loop before optimizing"
  | Netlist_bad_cin -> Some "gate input capacitances must be positive"
  | Bench_syntax | Bench_truncated -> Some "fix the .bench source line"
  | Constraint_infeasible ->
    Some "Tc is below Tmin: apply structure modification (pops protocol)"
  | Admission_rejected ->
    Some "the tenant's serve budget is exhausted: raise --tenant-sweeps or spread the jobs"
  | Overloaded ->
    Some "the server shed this job under load: retry after the hinted delay"
  | Deadline_exceeded ->
    Some "the connection sat idle past --idle-timeout; reconnect to continue"
  | _ -> None

let make ?severity ?subject ?hint code message =
  let severity = Option.value severity ~default:(default_severity code) in
  let hint = match hint with Some _ as h -> h | None -> default_hint code in
  { code; severity; subject; message; hint }

let makef ?severity ?subject ?hint code fmt =
  Printf.ksprintf (make ?severity ?subject ?hint code) fmt

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let to_string d =
  Printf.sprintf "[%s] %s%s: %s%s" (severity_name d.severity) (code_name d.code)
    (match d.subject with Some s -> " (" ^ s ^ ")" | None -> "")
    d.message
    (match d.hint with Some h -> " [hint: " ^ h ^ "]" | None -> "")

let one_line d =
  Printf.sprintf "%s%s: %s" (code_name d.code)
    (match d.subject with Some s -> " (" ^ s ^ ")" | None -> "")
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let fatal ?severity ?subject ?hint code message =
  raise (Fatal (make ?severity ?subject ?hint code message))

let () =
  Printexc.register_printer (function
    | Fatal d -> Some ("Pops_robust.Diag.Fatal: " ^ to_string d)
    | _ -> None)
