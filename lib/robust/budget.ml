type t = {
  deadline : float option;  (* absolute Unix time, seconds *)
  sweep_cap : int option;
  mutable sweeps : int;
}

let create ?wall_ms ?sweeps () =
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) wall_ms
  in
  { deadline; sweep_cap = sweeps; sweeps = 0 }

let unlimited () = { deadline = None; sweep_cap = None; sweeps = 0 }

let spend b n = b.sweeps <- b.sweeps + n

let sweeps_spent b = b.sweeps

let over_sweeps b =
  match b.sweep_cap with Some cap -> b.sweeps >= cap | None -> false

let over_wall b =
  match b.deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

let exhausted b = over_sweeps b || over_wall b

(* how many iterations a loop may still run; callers use it to cap their
   [max_iter] so a budgeted solve stops at the cap instead of overshooting *)
let remaining_sweeps b ~default =
  match b.sweep_cap with
  | None -> default
  | Some cap -> max 0 (min default (cap - b.sweeps))

let diag b =
  let what =
    match (over_sweeps b, over_wall b) with
    | true, true -> "iteration and wall-clock caps"
    | true, false -> Printf.sprintf "iteration cap (%d sweeps)" b.sweeps
    | false, true -> "wall-clock cap"
    | false, false -> "budget"
  in
  Diag.makef Diag.Budget_exceeded "optimization budget exhausted: %s" what
