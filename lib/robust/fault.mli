(** Deterministic fault injection — the registry behind [POPS_FAULT].

    The engine carries a small, closed set of named injection points
    ({!points}): force a solver rung to diverge, poison an iterate with
    NaN, raise inside a pool task, truncate a [.bench] mid-statement,
    abort the multi-Vt swap loop, or break the socket listener's
    connection lifecycle ([net.accept] refuses a fresh connection,
    [net.read] / [net.write] fail a session's I/O, [net.stall] freezes
    a session until its idle deadline trips).
    A {e spec} arms a subset of them:

    {v entry  ::= point [ "@" prob ] | "seed=" int64
spec   ::= entry ("," entry)*          v}

    where [point] is a registered name, a dot-prefix of one
    ([solver.diverge] arms all three rung variants), or [all].  [prob]
    defaults to [1.] (always fire).  Examples:
    [POPS_FAULT=all], [POPS_FAULT=solver.nan@0.25,pool.raise,seed=7].

    Firing is a pure function of (seed, point name, per-point call
    index) — SplitMix64-hashed, so a spec replays deterministically on
    one domain; at [prob = 1] it is deterministic at any domain count.

    The spec from the [POPS_FAULT] environment variable is armed at
    program start; test harnesses re-arm programmatically with
    {!with_spec} and disable with {!clear}.  See docs/robustness.md. *)

exception Injected of string
(** Raised by {!inject} sites (the pool-task point); carries the point
    name.  Contained fan-outs convert it into a
    {!Diag.Pool_task_failed} diagnostic. *)

val points : string list
(** Registered injection-point names. *)

val fire : string -> bool
(** [fire point] — should this occurrence of [point] inject?  False
    when no spec is armed, the point is not armed, or the probability
    draw misses.  One atomic read on the disarmed path. *)

val inject : string -> unit
(** [inject point] raises {!Injected} iff [fire point]. *)

val arm : string -> (unit, string) result
(** Parse a spec and make it current (replacing any previous one). *)

val clear : unit -> unit
(** Disarm all injection points. *)

val with_spec : string -> (unit -> 'a) -> 'a
(** Arm a spec around a call, restoring the previous spec after.
    @raise Invalid_argument on a malformed spec. *)

val active : unit -> string option
(** The currently armed spec text, if any. *)

val ambient : string option
(** The [POPS_FAULT] environment value captured at program start (armed
    automatically when it parses; see {!ambient_error}). *)

val ambient_error : string option
(** Parse error of the ambient spec, for front ends to surface. *)
