(** Structured diagnostics: the vocabulary of the resilience layer.

    Every recoverable anomaly in the engine — a solver walking its
    fallback ladder, a netlist failing validation, a contained pool-task
    crash — is described by one {!t}: a machine-readable {!code}, a
    severity, the subject it concerns (a node, a path, a [file:line]),
    a human message and a remediation hint.  Boundary APIs surface lists
    of these through {!Outcome.t}; front ends map {!classify} onto exit
    codes (see docs/robustness.md for the full table). *)

type severity = Info | Warning | Error

type code =
  | Solver_divergence  (** residual grew / fault forced the rung to fail *)
  | Solver_nonfinite  (** NaN/Inf detected in the solver iterate *)
  | Solver_stalled  (** iteration cap reached without convergence *)
  | Solver_fallback  (** the Tmax-safe minimum-drive rung was used *)
  | Bracket_collapse  (** a root bracket collapsed before meeting target *)
  | Budget_exceeded  (** wall-clock or iteration budget exhausted *)
  | Netlist_cycle  (** combinational loop (message names the cycle) *)
  | Netlist_dangling  (** dangling fanin/fanout reference *)
  | Netlist_zero_fanout  (** gate drives nothing and is not an output *)
  | Netlist_bad_cin  (** non-positive input capacitance *)
  | Bench_syntax  (** .bench parse error (subject = [line N]) *)
  | Bench_truncated  (** .bench input ends mid-statement *)
  | Invalid_input  (** other malformed user input *)
  | Constraint_infeasible  (** Tc below the achievable Tmin *)
  | Admission_rejected
      (** a serve-mode job was refused at admission: its tenant's
          aggregate budget is exhausted (the job never ran) *)
  | Overloaded
      (** the server shed this job under load (bounded in-flight queue
          full, or session table full); the result carries a
          [retry_after_ms] hint and the job never ran *)
  | Deadline_exceeded
      (** a connection sat idle (or failed to drain its responses)
          past the configured idle deadline and was closed *)
  | Net_error
      (** a connection-level I/O failure (reset, broken pipe, refused
          accept); degrades only that session *)
  | Pool_task_failed  (** a contained domain task raised *)
  | Fault_injected  (** an injection point fired (testing only) *)
  | Internal  (** invariant violation inside the engine *)

type t = {
  code : code;
  severity : severity;
  subject : string option;  (** node id, path label, or [file:line] *)
  message : string;
  hint : string option;  (** remediation hint *)
}

exception Fatal of t
(** Raised by legacy (exception-based) wrappers around [Result]/
    [Outcome]-returning entry points.  A printer is registered. *)

val make :
  ?severity:severity -> ?subject:string -> ?hint:string -> code -> string -> t
(** [make code message] with the code's {!default_severity} and
    {!default_hint} unless overridden. *)

val makef :
  ?severity:severity -> ?subject:string -> ?hint:string -> code ->
  ('a, unit, string, t) format4 -> 'a
(** Formatted {!make}. *)

val fatal : ?severity:severity -> ?subject:string -> ?hint:string -> code -> string -> 'a
(** [fatal code message] raises {!Fatal} with the built diagnostic. *)

val code_name : code -> string
(** Stable kebab-case name, e.g. ["solver-divergence"] — the spelling
    used in docs, CLI output and fault specs. *)

val default_severity : code -> severity
val default_hint : code -> string option

val classify : code -> [ `Invalid_input | `Constraint | `Degradation | `Internal ]
(** What a front end should do: reject the input (exit 2), report an
    unmet constraint (exit 1), continue with a degraded result (exit 0),
    or treat as an engine bug (exit 3). *)

val severity_name : severity -> string
val to_string : t -> string
val one_line : t -> string
(** [to_string] includes severity and hint; [one_line] is the compact
    [code (subject): message] form the CLI prints. *)

val pp : Format.formatter -> t -> unit
