(* Deterministic fault injection.

   A spec is a comma-separated list of entries:

     entry   ::= point [ "@" prob ] | "seed=" int64
     point   ::= a registered name, a dot-prefix of one, or "all"

   Example: POPS_FAULT="solver.diverge@0.5,pool.raise,seed=7".

   Firing is a pure function of (seed, point, per-point call index):
   each armed point keeps an atomic call counter and the n-th query
   fires iff splitmix64(seed ^ fnv(point) ^ n) < prob.  With a single
   domain this is fully reproducible; across pool domains the per-point
   indices are claimed in scheduling order, so only probabilistic specs
   (prob < 1) can vary between runs — prob 1 (the default) always
   fires everywhere. *)

exception Injected of string

(* the closed registry of injection points; "all" and prefix matching
   resolve against this list at parse time *)
let points =
  [
    "solver.diverge.accel";
    "solver.diverge.plain";
    "solver.diverge.damped";
    "solver.nan.accel";
    "solver.nan.plain";
    "solver.nan.damped";
    "pool.raise";
    "bench.truncate";
    "vt.swap";
    "net.accept";
    "net.read";
    "net.write";
    "net.stall";
  ]

(* --- hashing --------------------------------------------------------- *)

let splitmix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let unit_float h =
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.p-53

(* --- specs ----------------------------------------------------------- *)

type armed = { prob : float; counter : int Atomic.t }

type spec = {
  text : string;
  seed : int64;
  table : (string, armed) Hashtbl.t;
}

let default_seed = 0x9095_FA17_2005L

let matches_entry entry point =
  entry = "all" || entry = point
  || String.length point > String.length entry
     && String.sub point 0 (String.length entry) = entry
     && point.[String.length entry] = '.'

let parse text =
  let entries =
    String.split_on_char ',' text |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let seed = ref default_seed in
  let armed : (string * float) list ref = ref [] in
  let err = ref None in
  List.iter
    (fun entry ->
      if !err = None then
        match String.index_opt entry '=' with
        | Some i when String.sub entry 0 i = "seed" -> (
          let v = String.sub entry (i + 1) (String.length entry - i - 1) in
          match Int64.of_string_opt v with
          | Some s -> seed := s
          | None -> err := Some (Printf.sprintf "bad seed %S" v))
        | Some _ -> err := Some (Printf.sprintf "bad entry %S" entry)
        | None -> (
          let name, prob =
            match String.index_opt entry '@' with
            | None -> (entry, 1.)
            | Some i ->
              let p = String.sub entry (i + 1) (String.length entry - i - 1) in
              ( String.sub entry 0 i,
                match float_of_string_opt p with
                | Some p when p >= 0. && p <= 1. -> p
                | Some _ | None -> Float.nan )
          in
          if Float.is_nan prob then
            err := Some (Printf.sprintf "bad probability in %S" entry)
          else
            match List.filter (matches_entry name) points with
            | [] ->
              err :=
                Some
                  (Printf.sprintf "unknown injection point %S (known: %s)" name
                     (String.concat ", " ("all" :: points)))
            | matched ->
              armed := List.map (fun p -> (p, prob)) matched @ !armed))
    entries;
  match !err with
  | Some e -> Error ("POPS_FAULT: " ^ e)
  | None ->
    let table = Hashtbl.create 16 in
    (* later entries win, so iterate in order and overwrite *)
    List.iter
      (fun (p, prob) ->
        Hashtbl.replace table p { prob; counter = Atomic.make 0 })
      (List.rev !armed);
    Ok { text; seed = !seed; table }

(* --- global state ---------------------------------------------------- *)

let ambient = Sys.getenv_opt "POPS_FAULT"

let ambient_error, initial =
  match ambient with
  | None -> (None, None)
  | Some text -> (
    match parse text with
    | Ok s -> (None, Some s)
    | Error e -> (Some e, None))

(* atomic so pool worker domains armed from the main domain observe the
   spec without locking on the hot (disarmed) path *)
let current : spec option Atomic.t = Atomic.make initial
let lock = Mutex.create ()

let active () = Option.map (fun s -> s.text) (Atomic.get current)

let clear () = Mutex.protect lock (fun () -> Atomic.set current None)

let arm text =
  match parse text with
  | Error _ as e -> e
  | Ok s ->
    Mutex.protect lock (fun () -> Atomic.set current (Some s));
    Ok ()

let with_spec text f =
  let previous = Mutex.protect lock (fun () -> Atomic.get current) in
  (match arm text with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fault.with_spec: " ^ e));
  Fun.protect
    ~finally:(fun () -> Mutex.protect lock (fun () -> Atomic.set current previous))
    f

let fire point =
  match Atomic.get current with
  | None -> false
  | Some s -> (
    match Hashtbl.find_opt s.table point with
    | None -> false
    | Some a ->
      if a.prob >= 1. then true
      else if a.prob <= 0. then false
      else
        let n = Atomic.fetch_and_add a.counter 1 in
        let h =
          splitmix
            (Int64.logxor
               (Int64.logxor s.seed (fnv1a64 point))
               (Int64.of_int n))
        in
        unit_float h < a.prob)

let inject point = if fire point then raise (Injected point)

let () =
  Printexc.register_printer (function
    | Injected p -> Some (Printf.sprintf "Pops_robust.Fault.Injected(%s)" p)
    | _ -> None)
