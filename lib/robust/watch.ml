(* A per-domain stack of diagnostic collectors.  Boundary entry points
   install a collector around the work; anything below emits into the
   innermost frame without threading an accumulator through every
   signature.  Emission with no collector installed is a no-op, so the
   plain (exception-based) entry points cost one DLS read per emission
   and nothing else.

   Frames are domain-local: a pool task on a worker domain does NOT see
   the submitting domain's collector.  Contained fan-outs
   (Pops_util.Pool.map_list_contained) install a frame around each task
   and ship the collected diagnostics back with the slot result, so the
   caller can re-emit them in deterministic submission order. *)

type frame = Diag.t list ref

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let active () = !(Domain.DLS.get stack_key) <> []

let emit d =
  match !(Domain.DLS.get stack_key) with
  | [] -> ()
  | frame :: _ -> frame := d :: !frame

let emit_all ds = List.iter emit ds

let collect f =
  let stack = Domain.DLS.get stack_key in
  let frame : frame = ref [] in
  stack := frame :: !stack;
  let pop () =
    match !stack with
    | top :: rest when top == frame -> stack := rest
    | _ ->
      (* a nested collect leaked its frame: drop down to ours *)
      stack := List.filter (fun fr -> fr != frame) !stack
  in
  Fun.protect ~finally:pop (fun () ->
      let v = f () in
      (v, List.rev !frame))
