(** Wall-clock and iteration budgets for the solver and flow loops.

    A budget is a mutable accumulator shared down a call tree: loops
    {!spend} what they use and poll {!exhausted}; when a cap is hit the
    engine degrades gracefully (returns the best state reached, plus a
    {!Diag.Budget_exceeded} diagnostic) instead of running open-ended.
    Granularity: budgets are checked between fixed-point sweeps and
    between flow rounds, so an overrun is bounded by one sweep / one
    round, never detected mid-kernel. *)

type t

val create : ?wall_ms:float -> ?sweeps:int -> unit -> t
(** [wall_ms] — wall-clock cap from now, milliseconds; [sweeps] — total
    link-equation sweep cap.  Omitted caps are unlimited. *)

val unlimited : unit -> t

val spend : t -> int -> unit
(** Record [n] sweeps (or abstract work units) against the budget. *)

val sweeps_spent : t -> int
val exhausted : t -> bool

val remaining_sweeps : t -> default:int -> int
(** Iterations a loop may still run, clamped to [default] when the
    budget has no sweep cap. *)

val diag : t -> Diag.t
(** A {!Diag.Budget_exceeded} diagnostic naming the cap that tripped. *)
