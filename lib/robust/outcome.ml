type 'a t =
  | Exact of 'a
  | Degraded of 'a * Diag.t list
  | Failed of Diag.t

let make v diags =
  match
    List.filter (fun (d : Diag.t) -> d.Diag.severity <> Diag.Info) diags
  with
  | [] -> Exact v
  | _ :: _ -> Degraded (v, diags)

let of_result ?(diags = []) = function
  | Ok v -> make v diags
  | Error d -> Failed d

let value = function Exact v | Degraded (v, _) -> Some v | Failed _ -> None

let get = function
  | Exact v | Degraded (v, _) -> v
  | Failed d -> raise (Diag.Fatal d)

let diags = function
  | Exact _ -> []
  | Degraded (_, ds) -> ds
  | Failed d -> [ d ]

let degraded = function Degraded _ -> true | Exact _ | Failed _ -> false

let map f = function
  | Exact v -> Exact (f v)
  | Degraded (v, ds) -> Degraded (f v, ds)
  | Failed d -> Failed d

let to_result = function
  | Exact v -> Ok (v, [])
  | Degraded (v, ds) -> Ok (v, ds)
  | Failed d -> Error d

let pp pp_v ppf = function
  | Exact v -> Format.fprintf ppf "@[<v>exact: %a@]" pp_v v
  | Degraded (v, ds) ->
    Format.fprintf ppf "@[<v>degraded (%d diagnostics): %a" (List.length ds) pp_v v;
    List.iter (fun d -> Format.fprintf ppf "@ %a" Diag.pp d) ds;
    Format.fprintf ppf "@]"
  | Failed d -> Format.fprintf ppf "failed: %a" Diag.pp d
