(** Ambient diagnostic collection (per-domain collector stack).

    {!collect} installs a collector for the duration of a call and
    returns everything {!emit}ted below it, in emission order.
    Emission with no collector installed is a no-op — the plain,
    exception-based entry points pay one domain-local read and stay
    allocation-free on the healthy path.

    Collectors are domain-local: work shipped to pool worker domains
    must collect on the worker and hand the list back with the result
    (see {!Pops_util.Pool.map_list_contained}), which also keeps the
    merged order deterministic (submission order, not completion
    order). *)

val collect : (unit -> 'a) -> 'a * Diag.t list
(** Run [f] under a fresh innermost collector; nested {!collect}s
    capture exclusively (the inner caller decides what to re-{!emit}). *)

val emit : Diag.t -> unit
val emit_all : Diag.t list -> unit

val active : unit -> bool
(** Is any collector installed on this domain? *)
