module Path = Pops_delay.Path
module Diag = Pops_robust.Diag
module Watch = Pops_robust.Watch

type t = {
  tmin : float;
  tmax : float;
  sizing_tmin : float array;
  beta_tmin : float;
}

(* Characterising a path costs dozens of fixed-point solves (the Tmin
   grid scan plus golden-section refinement), and the protocol asks for
   the same path's bounds repeatedly — feasibility check, then the
   constraint sizer, then reporting.  Memoize by the path's construction
   uid: a Path.t is immutable and every edit/flip makes a fresh uid, so
   a hit is always exact.  The table is mutex-guarded for the PR 2
   domain pool; the solve itself runs outside the lock (a racing
   duplicate compute is deterministic, so last-write-wins is fine).

   The memo is a bounded LRU: path uids are never reused, so in a
   one-shot CLI run stale entries were only a space concern — but in the
   long-lived serving engine an ever-growing (or periodically
   reset-to-empty) table is respectively a leak or a recurring cold
   start.  The LRU keeps the hot working set pinned at a fixed size;
   [set_cache_capacity] lets the server scale it to its window. *)
(* Entries carry the diagnostics their solves reported so that a miss
   can both cache and re-emit them; a hit deliberately does NOT re-emit
   (the characterisation was not re-run, and replaying the same warning
   on every feasibility probe would drown real signal — the tradeoff is
   documented on [compute_o]). *)
let default_cache_capacity = 256

let cache : (int, t * Diag.t list) Pops_util.Lru.t =
  Pops_util.Lru.create ~capacity:default_cache_capacity ()

let cache_lock = Mutex.create ()

let set_cache_capacity c =
  Mutex.protect cache_lock (fun () -> Pops_util.Lru.set_capacity cache c)

let cache_stats () = Mutex.protect cache_lock (fun () -> Pops_util.Lru.stats cache)

let clear_cache ?(reset_stats = false) () =
  Mutex.protect cache_lock (fun () ->
      Pops_util.Lru.clear cache;
      if reset_stats then Pops_util.Lru.reset_stats cache)

let compute_uncached path =
  Watch.collect (fun () ->
      let x_min = Path.min_sizing path in
      let tmax = Path.delay_worst path x_min in
      let tmin, sizing_tmin, beta_tmin = Sensitivity.minimum_delay path in
      { tmin; tmax; sizing_tmin; beta_tmin })

let compute_diags path =
  let key = Path.uid path in
  let hit = Mutex.protect cache_lock (fun () -> Pops_util.Lru.find cache key) in
  match hit with
  | Some (b, diags) -> (b, diags)
  | None ->
    let b, diags = compute_uncached path in
    (* re-emit to the ambient collector: Watch.collect above swallowed
       them into the cache entry *)
    Watch.emit_all diags;
    Mutex.protect cache_lock (fun () -> Pops_util.Lru.put cache key (b, diags));
    (b, diags)

let compute path = fst (compute_diags path)

let compute_o path =
  match compute_diags path with
  | b, diags -> Pops_robust.Outcome.make b diags
  | exception Diag.Fatal d -> Pops_robust.Outcome.Failed d
  | exception e ->
    Pops_robust.Outcome.Failed
      (Diag.makef Diag.Internal "Bounds.compute raised: %s"
         (Printexc.to_string e))

let tmin path = (compute path).tmin

let tmax path =
  let key = Path.uid path in
  (* a peek, not a find: an absent entry is served by two cheap delay
     evaluations, not a solve, so it must not count as a cache miss *)
  let hit = Mutex.protect cache_lock (fun () -> Pops_util.Lru.peek cache key) in
  match hit with
  | Some (b, _) -> b.tmax
  | None -> Path.delay_worst path (Path.min_sizing path)

type trace_point = { sum_cin_ratio : float; delay : float }

let tmin_trace path =
  let iterates = Sensitivity.solve_trace ~a:0. path in
  List.map
    (fun x ->
      { sum_cin_ratio = Path.sum_cin_ratio path x; delay = Path.delay_worst path x })
    iterates

let feasible path ~tc = tc >= tmin path

let verify_stationary ?(tol = 5e-3) ?(beta = 0.5) path sizing =
  let x = Path.clamp_sizing path sizing in
  (* the exact stationarity condition is on the beta-weighted polarity
     gradient that the solver minimised *)
  let flipped = Path.with_input_edge path (Pops_delay.Edge.flip path.Path.input_edge) in
  let g1 = Path.gradient path x and g2 = Path.gradient flipped x in
  let ok = ref true in
  for j = 1 to Path.length path - 1 do
    let cell = path.Path.stages.(j).Path.cell in
    let lo = Pops_cell.Cell.min_cin cell in
    let hi = 4096. *. lo in
    let at_bound = x.(j) <= lo *. (1. +. 1e-6) || x.(j) >= hi *. (1. -. 1e-6) in
    let g = (beta *. g1.(j)) +. ((1. -. beta) *. g2.(j)) in
    if (not at_bound) && Float.abs g > tol then ok := false
  done;
  !ok
