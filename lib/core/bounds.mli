(** Path delay bounds (Section 3.1): the optimization-space
    characterisation that makes constraint feasibility decidable.

    - [Tmax]: the pseudo upper bound — every gate at the minimum available
      drive (no upper bound exists without a size limit, so the paper
      takes the realistic minimum-area configuration);
    - [Tmin]: the lower bound, reached when every interior gate satisfies
      the link equations (eq. 4, i.e. zero delay sensitivity), computed by
      the backward fixed-point iteration of {!Sensitivity.solve}. *)

type t = {
  tmin : float;
      (** minimum achievable worst-polarity delay, ps.  Evaluated on a
          small polarity-weight grid (balanced and both pure polarities),
          so it upper-bounds the exact minimax by well under 1%. *)
  tmax : float;  (** worst-polarity delay at minimum drive, ps *)
  sizing_tmin : float array;  (** the sizing achieving [tmin] *)
  beta_tmin : float;
      (** the polarity weight whose link equations produced
          [sizing_tmin] (see {!Sensitivity.solve_beta}) *)
}

val compute : Pops_delay.Path.t -> t
(** Memoized by {!Pops_delay.Path.uid}: a path value is immutable and
    every structural edit or polarity flip constructs a fresh uid, so
    repeated characterisations of the same path — feasibility check,
    constraint sizing, reporting — pay the grid-scan solves once.
    Thread-safe (the table is mutex-guarded; the solve itself runs
    outside the lock).

    The memo is a {e bounded LRU} ({!Pops_util.Lru}), so a long-lived
    process (the serving engine) holds a fixed working set instead of
    leaking one entry per path ever characterised.  The default capacity
    ({!default_cache_capacity}) comfortably covers a one-shot CLI run,
    preserving its historical behaviour. *)

val default_cache_capacity : int
(** 256 — the reset bound of the pre-LRU memo. *)

val set_cache_capacity : int -> unit
(** Resize the memo (shrinking evicts oldest-first).  The serving engine
    scales it to its job window.  @raise Invalid_argument below 1. *)

val cache_stats : unit -> Pops_util.Lru.stats
(** Hit/miss/eviction counters of the memo — a miss is a full
    characterisation solve.  Surfaced in serve-mode reports. *)

val clear_cache : ?reset_stats:bool -> unit -> unit
(** Drop every memo entry (benchmarks use this to measure cold starts);
    [reset_stats] (default false) also zeroes the counters. *)

val compute_o : Pops_delay.Path.t -> t Pops_robust.Outcome.t
(** {!compute} with the characterisation's diagnostics attached:
    [Degraded] when any of the Tmin solves fell down the ladder (the
    bounds then come from a fallback sizing and [tmin] may be
    pessimistic), [Failed] instead of raising.  Diagnostics are cached
    with the entry but {e re-emitted to the ambient
    {!Pops_robust.Watch} collector only on a miss} — a cache hit did
    not re-run the solves, and replaying the same warning on every
    feasibility probe of a hot path would drown real signal. *)

val tmin : Pops_delay.Path.t -> float
(** [(compute path).tmin] — shares the cache. *)

val tmax : Pops_delay.Path.t -> float
(** The minimum-drive worst delay.  Served from the cache when the path
    was already characterised, otherwise computed directly (two delay
    evaluations) without triggering the full [Tmin] solve. *)

type trace_point = {
  sum_cin_ratio : float;  (** [Sigma C_IN / C_REF] — Fig. 1's x axis *)
  delay : float;  (** path delay at this iterate — Fig. 1's y axis *)
}

val tmin_trace : Pops_delay.Path.t -> trace_point list
(** The (area, delay) trajectory of the fixed-point iterations from the
    minimum-drive initial solution to the optimum — the paper's Fig. 1. *)

val feasible : Pops_delay.Path.t -> tc:float -> bool
(** Whether a delay constraint can be met by sizing alone
    ([tc >= tmin]). *)

val verify_stationary :
  ?tol:float -> ?beta:float -> Pops_delay.Path.t -> float array -> bool
(** True when the [beta]-weighted polarity gradient (default balanced,
    0.5) vanishes at [sizing] for every interior entry — i.e. the sizing
    really is the optimum of that objective.  Entries clamped at the
    drive bounds are exempt (their optimum may lie outside the box).
    Used by tests and the CLI's [--check] flag. *)
