module Path = Pops_delay.Path
module Gk = Pops_cell.Gate_kind
module Library = Pops_cell.Library
module N = Pops_util.Numerics

type buffer_style = Single_inverter | Inverter_pair

let buffer_kinds = function
  | Single_inverter -> [ Gk.Inv ]
  | Inverter_pair -> [ Gk.Inv; Gk.Inv ]

(* Both structures include the (identical) driver stage, so the A/B delay
   difference isolates the effect of buffering gate [gate]'s output. *)
let structure_path ?input_edge ~lib ~driver ~gate ~cload extra_kinds =
  Path.of_kinds ?input_edge ~lib ~c_out:cload ([ driver; gate ] @ extra_kinds)

(* Characterisation compares worst-polarity delays: buffering must rescue
   the gate's critical (slow) edge, which is what the paper's per-gate
   limits capture. *)
let delay_direct ~lib ~driver ~gate ~gate_cin ~cload =
  let p = structure_path ~lib ~driver ~gate ~cload [] in
  let x = Path.min_sizing p in
  x.(1) <- gate_cin;
  Path.delay_worst p x

let delay_buffered ?(style = Inverter_pair) ~lib ~driver ~gate ~gate_cin ~cload () =
  let p = structure_path ~lib ~driver ~gate ~cload (buffer_kinds style) in
  let x0 = Path.min_sizing p in
  x0.(1) <- gate_cin;
  (* gate keeps its size; only the buffer stages are free *)
  let x = Sensitivity.solve_worst ~a:0. ~frozen:[ 1 ] ~x0 p in
  (Path.delay_worst p x, x)

(* Flimit is a pure function of (process, style, driver, gate); it is
   queried once per path stage, so memoise it.  The table is shared by
   every pool domain evaluating buffer candidates, hence the lock; a
   cache miss computes outside the lock (flimit is deterministic, so a
   racing duplicate computation stores the same value). *)
let flimit_cache : (string * string * string * string, float) Hashtbl.t =
  Hashtbl.create 64

let flimit_lock = Mutex.create ()

let flimit_uncached ?(style = Inverter_pair) ~lib ~driver ~gate () =
  let tech = Library.tech lib in
  let gate_cin = 4. *. tech.Pops_process.Tech.cmin in
  let gain f =
    let cload = f *. gate_cin in
    let direct = delay_direct ~lib ~driver ~gate ~gate_cin ~cload in
    let buffered, _ = delay_buffered ~style ~lib ~driver ~gate ~gate_cin ~cload () in
    direct -. buffered
  in
  let f_lo = 1.2 and f_hi = 200. in
  if gain f_hi <= 0. then Float.infinity
  else if gain f_lo >= 0. then f_lo
  else N.bisect ~caller:"flimit" ~tol:1e-3 ~f:gain ~lo:f_lo ~hi:f_hi ()

let flimit ?(style = Inverter_pair) ~lib ~driver ~gate () =
  let style_name =
    match style with Single_inverter -> "inv1" | Inverter_pair -> "inv2"
  in
  let key =
    ( (Library.tech lib).Pops_process.Tech.name,
      style_name,
      Gk.name driver,
      Gk.name gate )
  in
  let cached =
    Mutex.lock flimit_lock;
    let r = Hashtbl.find_opt flimit_cache key in
    Mutex.unlock flimit_lock;
    r
  in
  match cached with
  | Some v -> v
  | None ->
    let v = flimit_uncached ~style ~lib ~driver ~gate () in
    Mutex.lock flimit_lock;
    if not (Hashtbl.mem flimit_cache key) then Hashtbl.add flimit_cache key v;
    Mutex.unlock flimit_lock;
    v

let characterize_library ?style ~lib ~driver kinds =
  List.map (fun gate -> (gate, flimit ?style ~lib ~driver ~gate ())) kinds

let path_fanouts path sizing =
  let x = Path.clamp_sizing path sizing in
  let loads = Path.loads path x in
  Array.mapi (fun i l -> l /. x.(i)) loads

(* Identification must happen at the minimum-drive configuration (the
   paper's C_REF initial solution): once the optimizer has sized a path,
   fan-outs self-equalise and an overloaded node hides inside an inflated
   gate.  The [sizing] argument is therefore ignored for the fan-out
   computation and kept for API stability; the ratio F / Flimit ranks the
   overload severity. *)
let overload_ratios ~lib path =
  let fanouts = path_fanouts path (Path.min_sizing path) in
  Array.mapi
    (fun i f ->
      let kind = path.Path.stages.(i).Path.cell.Pops_cell.Cell.kind in
      let limit = flimit ~lib ~driver:Gk.Inv ~gate:kind () in
      f /. limit)
    fanouts

let critical_nodes ~lib path _sizing =
  let ratios = overload_ratios ~lib path in
  let crit = ref [] in
  Array.iteri (fun i r -> if r > 1. then crit := i :: !crit) ratios;
  List.rev !crit

type shield = { stage : int; b1 : float; b2 : float; shield_area : float }

type insertion_result = {
  path : Path.t;
  sizing : float array;
  delay : float;
  area : float;
  inserted_after : int list;
  shields : shield list;
}

(* Insert an inverter pair after stage [at]: the pair shields stage [at]
   from both its branch load and the downstream gate, so the branch moves
   to the second buffer inverter. *)
let insert_pair ~lib path ~at =
  let inv = Library.inverter lib in
  let branch = path.Path.stages.(at).Path.branch in
  let cell_at = path.Path.stages.(at).Path.cell in
  let p = Path.with_stage_replaced path ~at { Path.cell = cell_at; branch = 0. } in
  let p = Path.with_stage_inserted p ~at { Path.cell = inv; branch = 0. } in
  Path.with_stage_inserted p ~at:(at + 1) { Path.cell = inv; branch }

(* Load dilution (Fig. 5 / Section 4.1 discussion): an off-path inverter
   pair takes over the branch load, so the on-path stage sees only the
   first shield inverter.  Its size follows a fixed electrical-effort
   rule; the shield's own delay is off the critical path. *)
let shield_stage ?(fanout_target = 4.) ~lib path ~at =
  let cmin = (Library.tech lib).Pops_process.Tech.cmin in
  let st = path.Path.stages.(at) in
  let branch = st.Path.branch in
  let b2 = Float.max cmin (branch /. fanout_target) in
  let b1 = Float.max cmin (b2 /. fanout_target) in
  if b1 >= branch then None
  else begin
    let inv = Library.inverter lib in
    let shield_area =
      Pops_cell.Cell.area inv ~cin:b1 +. Pops_cell.Cell.area inv ~cin:b2
    in
    let p =
      Path.with_stage_replaced path ~at { Path.cell = st.Path.cell; branch = b1 }
    in
    Some (p, { stage = at; b1; b2; shield_area })
  end

let objective_eval ~objective p =
  match objective with
  | `Tmin ->
    (* shared Tmin definition so the semantics agree with Bounds *)
    let d, x, _ = Sensitivity.minimum_delay p in
    (d, x, d, Path.area p x)
  | `Area_at tc -> (
    match Sensitivity.size_for_constraint p ~tc with
    | Ok r ->
      (r.Sensitivity.area, r.Sensitivity.sizing, r.Sensitivity.delay, r.Sensitivity.area)
    | Error (`Infeasible tmin) ->
      (* infeasible: objective value = huge + tmin so that lower tmin
         still compares better among infeasible options *)
      let x = Sensitivity.solve_worst ~a:0. p in
      (1e12 +. tmin, x, Path.delay_worst p x, Path.area p x))

type accum = {
  a_path : Path.t;
  a_score : float;  (* objective value including shield area *)
  a_sizing : float array;
  a_delay : float;
  a_area : float;  (* path area only *)
  a_extra : float;  (* shield area *)
  a_pairs : int list;
  a_shields : shield list;
}

let max_insertion_trials = 8

let insert_global ?(objective = `Tmin) ~lib path =
  (* the shield area participates in the `Area_at objective but not in
     `Tmin (where the score is the delay) *)
  let score_of ~raw_score ~extra =
    match objective with `Tmin -> raw_score | `Area_at _ -> raw_score +. extra
  in
  let eval p extra =
    let raw, x, d, a = objective_eval ~objective p in
    (score_of ~raw_score:raw ~extra, x, d, a)
  in
  let score0, x0, d0, a0 = eval path 0. in
  let base =
    {
      a_path = path;
      a_score = score0;
      a_sizing = x0;
      a_delay = d0;
      a_area = a0;
      a_extra = 0.;
      a_pairs = [];
      a_shields = [];
    }
  in
  let ratios = overload_ratios ~lib path in
  let nodes =
    Array.to_list (Array.mapi (fun i r -> (i, r)) ratios)
    |> List.filter (fun (_, r) -> r > 1.)
    |> List.sort (fun (_, r1) (_, r2) -> compare r2 r1)
    |> List.map fst
  in
  (* Phase 1 - shields.  Dilutions at distinct stages barely interact, so
     apply them as one batch and evaluate once; fall back to per-node
     greedy acceptance only if the batch does not pay. *)
  let shield_all acc stages =
    List.fold_left
      (fun acc at ->
        match shield_stage ~lib acc.a_path ~at with
        | None -> acc
        | Some (p', sh) ->
          { acc with a_path = p';
            a_extra = acc.a_extra +. sh.shield_area;
            a_shields = sh :: acc.a_shields })
      acc stages
  in
  let after_shields =
    let batch = shield_all base nodes in
    if batch.a_shields = [] then base
    else begin
      let score', x', d', a' = eval batch.a_path batch.a_extra in
      if score' < base.a_score -. 1e-9 then
        { batch with a_score = score'; a_sizing = x'; a_delay = d'; a_area = a' }
      else begin
        (* per-node fallback *)
        List.fold_left
          (fun acc at ->
            match shield_stage ~lib acc.a_path ~at with
            | None -> acc
            | Some (p', sh) ->
              let extra = acc.a_extra +. sh.shield_area in
              let score', x', d', a' = eval p' extra in
              if score' < acc.a_score -. 1e-9 then
                { a_path = p'; a_score = score'; a_sizing = x'; a_delay = d';
                  a_area = a'; a_extra = extra; a_pairs = acc.a_pairs;
                  a_shields = sh :: acc.a_shields }
              else acc)
          base nodes
      end
    end
  in
  (* Phase 2 - series pairs on the most overloaded remaining nodes, one
     greedy accept/reject each (descending stage order keeps indices
     valid: inserting after [at] only shifts indices > at). *)
  let pair_candidates =
    List.filteri (fun rank _ -> rank < max_insertion_trials) nodes
    |> List.sort (fun a b -> compare b a)
  in
  let step acc at =
    let p' = insert_pair ~lib acc.a_path ~at in
    let score', x', d', a' = eval p' acc.a_extra in
    if score' < acc.a_score -. 1e-9 then
      { acc with a_path = p'; a_score = score'; a_sizing = x'; a_delay = d';
        a_area = a'; a_pairs = at :: acc.a_pairs }
    else acc
  in
  let final = List.fold_left step after_shields pair_candidates in
  {
    path = final.a_path;
    sizing = final.a_sizing;
    delay = final.a_delay;
    area = final.a_area +. final.a_extra;
    inserted_after = List.rev final.a_pairs;
    shields = List.rev final.a_shields;
  }

let insert_local ~lib path sizing =
  (* Fig. 5's local method: "we conserve the size of gates (i-1) and (i)
     and just size the buffer".  Every critical node's branch is diluted
     by an off-path shield pair; no on-path stage is added or resized, so
     the path delay can only improve. *)
  let x = Path.clamp_sizing path sizing in
  let nodes = critical_nodes ~lib path x in
  let p, shields =
    List.fold_left
      (fun (p, shs) at ->
        match shield_stage ~lib p ~at with
        | Some (p', sh) -> (p', sh :: shs)
        | None -> (p, shs))
      (path, []) nodes
  in
  let shields = List.rev shields in
  let shield_area = List.fold_left (fun acc s -> acc +. s.shield_area) 0. shields in
  {
    path = p;
    sizing = x;
    delay = Path.delay_worst p x;
    area = Path.area p x +. shield_area;
    inserted_after = [];
    shields;
  }
