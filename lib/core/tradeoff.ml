module Path = Pops_delay.Path

type point = { a : float; delay : float; area : float }

let curve ?(points = 40) ?(a_deep = 50.) path =
  let sample a =
    let x = Sensitivity.solve_worst ~a path in
    (* one fused both-polarity pass per point; the scratch is created
       inside the task closure so each pool domain owns its own *)
    let sc = Path.scratch () in
    Path.delay_both path sc x;
    let delay = if sc.Path.own >= sc.Path.flip then sc.Path.own else sc.Path.flip in
    { a; delay; area = Path.area path x }
  in
  (* every Pareto point is an independent fixed-point solve at its own
     sensitivity, so fan the sweep out per point; the result list keeps
     the magnitude order regardless of which domain solved which point *)
  let magnitudes = Pops_util.Numerics.logspace 1e-4 a_deep (points - 1) in
  let sweep =
    Array.to_list (Pops_util.Pool.parallel_map (fun m -> sample (-.m)) magnitudes)
  in
  sample 0. :: sweep

let sizing_vs_buffering ~lib ?points path =
  let plain = curve ?points path in
  let inserted = Buffers.insert_global ~objective:`Tmin ~lib path in
  let buffered = curve ?points inserted.Buffers.path in
  (plain, buffered)

let crossover_delay plain buffered =
  (* Both curves are sorted by increasing delay (a = 0 first ... actually
     a = 0 is the fastest, so delay increases along the list).  For each
     plain point, find the buffered area at (or just below) that delay and
     compare. *)
  let interp_area curve d =
    let rec go = function
      | [] -> None
      | [ p ] -> if p.delay <= d then Some p.area else None
      | p :: (q :: _ as rest) ->
        if p.delay <= d && d < q.delay then Some p.area
        else if d < p.delay then None
        else go rest
    in
    go curve
  in
  let rec scan = function
    | [] -> None
    | p :: rest -> (
      match interp_area buffered p.delay with
      | Some ab when ab < p.area -> Some p.delay
      | _ -> scan rest)
  in
  scan plain
