(** The constant-sensitivity sizing method (Section 3.2, eqs. 5–6).

    The method imposes the same delay sensitivity on every free gate of a
    bounded path:

    [dT/dC_IN(i) = a]   for all interior stages [i]            (eq. 5)

    For [a = 0] this is the minimum-delay condition (the link equations of
    eq. 4); decreasing [a] below zero trades delay for area, sweeping the
    entire Pareto front of the convex sizing problem (the paper's Fig. 3).
    The solution of the resulting system (eq. 6) is computed by the
    backward Gauss–Seidel fixed point the paper describes: starting from
    the minimum-drive initial solution and processing from the output
    (where the terminal load is known) towards the input.

    The sensitivity is expressed per unit of {e transistor width}
    ([a = dT/dW_i], ps/um): with the paper's [Sigma W] area objective the
    exact optimality (KKT) condition is a uniform width-sensitivity, so
    a 3-input cell is held to a proportionally tighter capacitance
    sensitivity ([dT/dC_IN(i) = a * dW_i/dC_IN(i)]).  [a] is 0 or
    negative. *)

type solve_stats = {
  iterations : int;  (** fixed-point sweeps performed (probe sweeps included) *)
  residual : float;  (** final max sizing change, fF *)
}

(** All solvers run the backward Gauss–Seidel sweep directly on the
    path's compiled {!Pops_delay.Path.kernel} tables with per-domain
    scratch buffers, so a solve allocates only its result vector.

    [?accel] (default [true]) enables Aitken Δ² extrapolation of the
    fixed point: after every three plain iterates a component-wise Δ²
    candidate is probed with one extra (counted) sweep and accepted only
    if it contracts strictly better than the plain sequence; otherwise
    the plain iterates continue bitwise-unchanged, so [~accel:false]
    reproduces the unaccelerated trajectory exactly and acceleration can
    only change how many sweeps convergence takes, not the contract the
    result satisfies. *)

val solve : ?budget:Pops_robust.Budget.t -> ?accel:bool -> ?a:float ->
  ?frozen:int list -> ?x0:float array -> ?tol:float -> ?max_iter:int ->
  Pops_delay.Path.t -> float array * solve_stats
(** [solve ~a path] returns the sizing satisfying eq. (5) with sensitivity
    [a] (default [0.], i.e. minimum delay), entries clamped to the
    available drive range.  Stages listed in [frozen] keep their [x0]
    size (default: the minimum drive) — used by local buffer insertion,
    where only the buffer may be sized.

    Every solver entry point runs under the fallback ladder (see
    {!rung}): a rung whose iterate goes non-finite or whose residual
    diverges is abandoned and the next rung retried, ending — in the
    worst case — at the Tmax-safe minimum-drive sizing, so a valid
    sizing always comes back.  Degradations are reported through
    {!Pops_robust.Watch} and, for {!solve_robust}/{!solve_o}, returned
    alongside the result.  A fault-free converging solve is
    bit-identical to the pre-ladder solver.  [budget] caps the sweeps /
    wall clock spent; an exhausted budget keeps the last iterate and
    reports {!Pops_robust.Diag.Budget_exceeded}.
    @raise Invalid_argument if [a > 0.]. *)

val solve_worst : ?accel:bool -> ?a:float -> ?frozen:int list ->
  ?x0:float array -> Pops_delay.Path.t -> float array
(** Like {!solve} but for the balanced rise/fall objective
    {!Pops_delay.Path.delay_avg}: the link equations keep their closed
    form with the per-stage coefficient bundles averaged over the two
    polarities.  All higher-level entry points (bounds, constraint
    sizing, the protocol) use this, so NOR/NAND weak edges are never
    hidden by a lucky polarity; results are then {e reported} against
    {!Pops_delay.Path.delay_worst}. *)

val solve_beta : ?accel:bool -> ?a:float -> ?frozen:int list ->
  ?x0:float array -> beta:float -> Pops_delay.Path.t -> float array
(** The generalised weighted solve behind {!solve_worst}: [beta] is the
    weight of the path's own input polarity ([1] = pure own-polarity
    link equations, [0] = pure flipped, [0.5] = balanced).  Constraint
    sizing sweeps a small [beta] grid because the KKT-optimal weighting
    depends on which polarity constraint binds. *)

(** {2 Watchdogs and graceful degradation} *)

(** The fallback ladder, top to bottom.  Each solve starts at the
    highest rung its [accel] flag allows and descends one rung per
    watchdog trip ([Solver_nonfinite] iterate, [Solver_divergence]
    residual growth, or an armed [solver.*] fault); [Tmax_safe] — the
    minimum-drive sizing whose delay {e defines} the path's Tmax bound —
    needs no solver and cannot fail. *)
type rung =
  | Accelerated  (** Aitken-accelerated Gauss–Seidel (the default) *)
  | Plain  (** unaccelerated Gauss–Seidel *)
  | Damped  (** under-relaxed sweep, blend factor 0.5 *)
  | Tmax_safe  (** minimum-drive sizing, no iteration *)

val rung_name : rung -> string
(** Kebab-case rung name as it appears in diagnostics
    ([accelerated] / [plain] / [damped] / [tmax-safe]). *)

type robust_report = {
  sizing : float array;  (** always valid: clamped, finite *)
  stats : solve_stats;  (** of the rung that produced [sizing] *)
  fallback : rung;  (** the rung that produced [sizing] *)
  diags : Pops_robust.Diag.t list;
      (** everything the ladder reported, in emission order; empty for a
          clean first-rung convergence *)
}

val solve_robust : ?budget:Pops_robust.Budget.t -> ?accel:bool -> ?a:float ->
  ?frozen:int list -> ?x0:float array -> ?beta:float -> Pops_delay.Path.t ->
  robust_report
(** {!solve_beta} (default [beta = 0.5], i.e. {!solve_worst}) with the
    ladder's verdict attached.  Never raises on solver trouble — the
    bottom rung always yields a sizing.
    @raise Invalid_argument if [a > 0.]. *)

val solve_o : ?budget:Pops_robust.Budget.t -> ?accel:bool -> ?a:float ->
  ?frozen:int list -> ?x0:float array -> ?beta:float -> Pops_delay.Path.t ->
  float array Pops_robust.Outcome.t
(** {!solve_robust} as an {!Pops_robust.Outcome}: [Exact] on a clean
    solve, [Degraded] when any warning-or-worse diagnostic was reported,
    [Failed] instead of raising on invalid input. *)

val solve_trace : ?a:float -> ?tol:float -> ?max_iter:int -> Pops_delay.Path.t ->
  float array list
(** Every fixed-point iterate (first is the minimum-drive initial
    solution); reproduces the convergence trajectory of Fig. 1.  Always
    runs the plain (unaccelerated) iteration, so no probe iterates
    appear in the trace. *)

val minimum_delay : Pops_delay.Path.t -> float * float array * float
(** [(tmin, sizing, beta)]: the minimum achievable worst-polarity delay,
    the sizing reaching it and the polarity weight whose link equations
    produced it (grid scan plus golden-section refinement).  The shared
    Tmin definition used by [Bounds], the constraint sizer and the
    buffer-insertion objective. *)

val delay_of_a : Pops_delay.Path.t -> float -> float
(** Path delay of the sizing obtained with sensitivity [a]. Monotone
    non-decreasing as [a] decreases (property-tested). *)

type constraint_result = {
  sizing : float array;
  a : float;  (** the sensitivity achieving the constraint *)
  delay : float;
  area : float;
}

val bisect_for_beta :
  ?accel:bool -> beta:float -> Pops_delay.Path.t -> tc:float ->
  constraint_result option
(** Root-find on the sensitivity [a] so the worst-polarity delay of the
    [beta]-weighted solve meets [tc] at minimum area, warm-starting each
    fixed point from the previous bracket iterate.  Safeguarded regula
    falsi on [delay(a) - tc] — the secant step exploits the smooth
    monotone delay-vs-[a] curve, with a bisection fallback preserving
    the classic worst case.  [None] when even [a = 0] misses [tc] under
    this weighting.  One probe of {!size_for_constraint}'s grid; exposed
    for the equivalence tests and the kernel benchmark.  A bracket that
    collapses with the best delay still well under target reports
    {!Pops_robust.Diag.Bracket_collapse} through {!Pops_robust.Watch}. *)

val bisect_for_beta_o : ?accel:bool -> beta:float -> Pops_delay.Path.t ->
  tc:float -> constraint_result option Pops_robust.Outcome.t
(** {!bisect_for_beta} with its diagnostics collected: [Degraded] when
    the bracket collapsed or any solver rung degraded during the
    root-find, [Failed] instead of raising on internal errors. *)

val size_for_constraint :
  ?tol_ps:float -> Pops_delay.Path.t -> tc:float ->
  (constraint_result, [ `Infeasible of float ]) result
(** [size_for_constraint path ~tc] finds by bisection on [a] the
    minimum-area sizing whose delay meets [tc].  [`Infeasible tmin] when
    [tc] is below the path's minimum achievable delay (the caller must
    then modify the structure — Section 4). When [tc] exceeds the
    minimum-drive delay the all-minimum sizing is returned. *)

val sweeps_performed : unit -> int
(** Total link-equation sweeps executed by this process so far — one
    sweep costs one whole-path retiming, making this the
    hardware-independent cost metric the Table 1 benchmark reports.
    Monotone counter; sample before/after the work to measure. *)

val sutherland : ?iters:int -> Pops_delay.Path.t -> tc:float -> float array
(** The equal-delay-per-stage constraint distribution (Sutherland/Mead,
    paper refs [4,15]): every stage gets the budget [tc / n].  The fast
    classical method the paper compares against — it oversizes gates with
    large logical weight; the benchmark harness quantifies the area gap. *)
