module Path = Pops_delay.Path
module Diag = Pops_robust.Diag
module Watch = Pops_robust.Watch

type strategy =
  | Sizing_only
  | Local_buffers
  | Buffers_and_sizing
  | Restructure_and_sizing

type report = {
  tc : float;
  tmin : float;
  tmax : float;
  domain : Domains.t;
  strategy : strategy;
  path : Path.t;
  sizing : float array;
  delay : float;
  area : float;
  met : bool;
  buffers_inserted : int;
  rewrites : Restructure.rewrite list;
  pairs : int list;  (* original stage indices that received a series pair *)
  shields : Buffers.shield list;  (* branch loads diluted off-path *)
}

type candidate = {
  c_strategy : strategy;
  c_path : Path.t;
  c_sizing : float array;
  c_delay : float;
  c_area : float;
  c_buffers : int;
  c_rewrites : Restructure.rewrite list;
  c_pairs : int list;
  c_shields : Buffers.shield list;
}

let met_tc ~tc delay = delay <= tc *. (1. +. 1e-6) +. 0.02

let sizing_candidate path ~tc =
  match Sensitivity.size_for_constraint path ~tc with
  | Ok r ->
    Some
      {
        c_strategy = Sizing_only;
        c_path = path;
        c_sizing = r.Sensitivity.sizing;
        c_delay = r.Sensitivity.delay;
        c_area = r.Sensitivity.area;
        c_buffers = 0;
        c_rewrites = [];
        c_pairs = [];
        c_shields = [];
      }
  | Error (`Infeasible _) -> None

let buffer_count (r : Buffers.insertion_result) =
  (2 * List.length r.Buffers.inserted_after) + (2 * List.length r.Buffers.shields)

let buffers_candidate ~lib path ~tc =
  let r = Buffers.insert_global ~objective:(`Area_at tc) ~lib path in
  if buffer_count r = 0 then None
  else
    Some
      {
        c_strategy = Buffers_and_sizing;
        c_path = r.Buffers.path;
        c_sizing = r.Buffers.sizing;
        c_delay = r.Buffers.delay;
        c_area = r.Buffers.area;
        c_buffers = buffer_count r;
        c_rewrites = [];
        c_pairs = r.Buffers.inserted_after;
        c_shields = r.Buffers.shields;
      }

let restructure_candidate ~lib path ~tc =
  match Restructure.optimize ~lib path ~tc with
  | None -> None
  | Some o ->
    Some
      {
        c_strategy = Restructure_and_sizing;
        c_path = o.Restructure.o_path;
        c_sizing = o.Restructure.o_sizing;
        c_delay = o.Restructure.o_delay;
        c_area = o.Restructure.o_area;
        c_buffers = 0;
        c_rewrites = o.Restructure.o_rewrites;
        c_pairs = [];
        c_shields = [];
      }

(* Best-effort fallback when no alternative meets the constraint: the
   fastest structure we can build (buffers at minimum delay). *)
let fastest_candidate ~lib path =
  let r = Buffers.insert_global ~objective:`Tmin ~lib path in
  {
    c_strategy = (if buffer_count r = 0 then Sizing_only else Buffers_and_sizing);
    c_path = r.Buffers.path;
    c_sizing = r.Buffers.sizing;
    c_delay = r.Buffers.delay;
    c_area = r.Buffers.area;
    c_buffers = buffer_count r;
    c_rewrites = [];
    c_pairs = r.Buffers.inserted_after;
    c_shields = r.Buffers.shields;
  }

let pick_best ~tc candidates =
  let feasible = List.filter (fun c -> met_tc ~tc c.c_delay) candidates in
  match feasible with
  | [] -> None
  | _ :: _ ->
    Some
      (List.fold_left
         (fun best c -> if c.c_area < best.c_area then c else best)
         (List.hd feasible) (List.tl feasible))

let finalize ~tc ~bounds ~domain c =
  {
    tc;
    tmin = bounds.Bounds.tmin;
    tmax = bounds.Bounds.tmax;
    domain;
    strategy = c.c_strategy;
    path = c.c_path;
    sizing = c.c_sizing;
    delay = c.c_delay;
    area = c.c_area;
    met = met_tc ~tc c.c_delay;
    buffers_inserted = c.c_buffers;
    rewrites = c.c_rewrites;
    pairs = c.c_pairs;
    shields = c.c_shields;
  }

let run ?(allow_restructure = true) ~lib ~tc path =
  let bounds = Bounds.compute path in
  let domain = Domains.classify ~tmin:bounds.Bounds.tmin ~tc in
  let sizing () = sizing_candidate path ~tc in
  let buffers () = buffers_candidate ~lib path ~tc in
  let maybe_restructure () =
    if allow_restructure then restructure_candidate ~lib path ~tc else None
  in
  (* each per-domain alternative is an independent closed-form solve over
     the same immutable path, so evaluate them on the pool; the candidate
     list keeps its submission order, which is what [pick_best]'s
     min-area tie-breaking keys on — the choice is bit-identical at any
     domain count *)
  let generators =
    match domain with
    | Domains.Weak -> [ sizing ]
    | Domains.Medium | Domains.Hard -> [ sizing; buffers; maybe_restructure ]
    | Domains.Infeasible -> [ buffers; maybe_restructure ]
  in
  (* contained fan-out: a crashing candidate generator degrades to a
     diagnostic and drops out of the comparison instead of killing the
     run — the sizing alternative (or the fastest-structure fallback)
     still comes back.  Slot diagnostics re-emit in submission order, so
     the report is deterministic at any domain count. *)
  let slots =
    Pops_util.Pool.map_list_contained (fun gen -> gen ()) generators
  in
  let candidates =
    List.concat_map
      (fun (result, diags) ->
        Watch.emit_all diags;
        match result with
        | Ok c -> Option.to_list c
        | Error d ->
          Watch.emit d;
          [])
      slots
  in
  match pick_best ~tc candidates with
  | Some best -> finalize ~tc ~bounds ~domain best
  | None -> finalize ~tc ~bounds ~domain (fastest_candidate ~lib path)

let run_o ?allow_restructure ~lib ~tc path =
  match
    Watch.collect (fun () -> run ?allow_restructure ~lib ~tc path)
  with
  | r, diags ->
    let diags =
      if r.met then diags
      else
        diags
        @ [
            Diag.makef Diag.Constraint_infeasible
              "constraint %.3f ps not met: achieved %.3f ps (tmin %.3f ps)"
              tc r.delay r.tmin;
          ]
    in
    Pops_robust.Outcome.make r diags
  | exception Diag.Fatal d -> Pops_robust.Outcome.Failed d
  | exception e ->
    Pops_robust.Outcome.Failed
      (Diag.makef Diag.Internal "Protocol.run raised: %s"
         (Printexc.to_string e))

let strategy_to_string = function
  | Sizing_only -> "sizing"
  | Local_buffers -> "local-buffers"
  | Buffers_and_sizing -> "buffers+sizing"
  | Restructure_and_sizing -> "restructure+sizing"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>tc=%.1fps domain=%a strategy=%s@ tmin=%.1fps tmax=%.1fps@ \
     achieved delay=%.1fps area=%.1fum met=%b buffers=%d rewrites=%d@]"
    r.tc Domains.pp r.domain
    (strategy_to_string r.strategy)
    r.tmin r.tmax r.delay r.area r.met r.buffers_inserted
    (List.length r.rewrites)
