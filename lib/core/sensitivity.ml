module Path = Pops_delay.Path
module Model = Pops_delay.Model
module N = Pops_util.Numerics

type solve_stats = { iterations : int; residual : float }

(* One backward Gauss-Seidel sweep of the link equations (eq. 6): solve
   dT/dx_j = a w_j for x_j with every other size frozen at its current
   value (see docs/model.md for the derivation), for a weighted
   combination of path polarity variants (all sharing the same stage
   geometry, differing only in per-stage coefficients).  For the
   single-polarity objective pass one variant with weight 1; for the
   balanced rise/fall objective pass both with weight 1/2 — the averaged
   delay is itself a sum of per-stage terms, so the link equation keeps
   its closed form with coefficient bundles averaged.  Processing
   j = n-1 .. 1 uses the freshly updated downstream size, exactly the
   paper's "backward from the output, where the terminal load is known"
   iteration. *)
(* atomic: sweeps run concurrently on pool domains (protocol candidates,
   Pareto sweeps) and the bench reads the counter for its cost columns *)
let sweep_counter = Atomic.make 0

let sweeps_performed () = Atomic.get sweep_counter

let sweep_variants ?(skip = fun _ -> false) (variants : (Path.t * float) list) ~a x =
  Atomic.incr sweep_counter;
  let path = match variants with (p, _) :: _ -> p | [] -> invalid_arg "sweep" in
  let n = Path.length path in
  let tech = path.Path.tech in
  let tau = tech.Pops_process.Tech.tau in
  let opts = path.Path.opts in
  let x = Path.clamp_sizing path x in
  for j = n - 1 downto 1 do
    if not (skip j) then begin
      let next_j = if j = n - 1 then path.Path.c_out else x.(j + 1) in
      let k_j = path.Path.stages.(j).Path.branch +. next_j in
      let cell = path.Path.stages.(j).Path.cell in
      let num = ref 0. and den = ref 0. in
      List.iter
        (fun (variant, w) ->
          let cj = Path.stage_coeffs variant j in
          let cjm1 = Path.stage_coeffs variant (j - 1) in
          let l_prev =
            (cjm1.Path.p *. x.(j - 1))
            +. path.Path.stages.(j - 1).Path.branch
            +. x.(j)
          in
          let cm_prev = cjm1.Path.m *. x.(j - 1) in
          let k1 =
            if opts.Model.with_coupling then
              1. +. (2. *. cm_prev *. cm_prev /. ((cm_prev +. l_prev) ** 2.))
            else 1.
          in
          let slope_j = if opts.Model.with_slope then cj.Path.v else 0. in
          let upstream = cjm1.Path.s *. tau /. (2. *. x.(j - 1)) *. (k1 +. slope_j) in
          let l_j = (cj.Path.p *. x.(j)) +. k_j in
          let cm_j = cj.Path.m *. x.(j) in
          let e2 =
            if opts.Model.with_coupling then
              cj.Path.s *. tau *. k_j *. cj.Path.m *. cj.Path.m
              /. ((cm_j +. l_j) ** 2.)
            else 0.
          in
          let v_next =
            if j + 1 < n && opts.Model.with_slope then
              (Path.stage_coeffs variant (j + 1)).Path.v
            else 0.
          in
          num := !num +. (w *. cj.Path.s *. (1. +. v_next));
          den := !den +. (w *. (upstream -. e2)))
        variants;
      (* the sensitivity target is per unit of WIDTH (eq. 5 with the
         paper's Sigma-W objective): dT/dW_j = a  <=>  dT/dx_j = a * w_j
         with w_j the stage's area-per-fF *)
      let denom = !den -. (a *. Path.area_weight path j) in
      let lo = Pops_cell.Cell.min_cin cell in
      let hi = 4096. *. lo in
      x.(j) <-
        (if denom <= 1e-12 then hi
         else
           let x2 = tau *. k_j *. !num /. (2. *. denom) in
           N.clamp ~lo ~hi (sqrt x2))
    end
  done;
  x

let sweep ?skip (path : Path.t) ~a x = sweep_variants ?skip [ (path, 1.) ] ~a x

let check_a a = if a > 0. then invalid_arg "Sensitivity: a must be <= 0."

let solve ?(a = 0.) ?(frozen = []) ?x0 ?(tol = 1e-6) ?(max_iter = 300) path =
  check_a a;
  let x0 = Option.value x0 ~default:(Path.min_sizing path) in
  let skip j = List.mem j frozen in
  let x, iterations =
    N.fixed_point ~tol ~max_iter ~step:(sweep ~skip path ~a) ~distance:N.distance_inf
      x0
  in
  let residual = N.distance_inf x (sweep ~skip path ~a x) in
  (x, { iterations; residual })

(* Weighted two-polarity solve: [beta] is the weight of the path's own
   polarity (1 = pure own-polarity link equations, 0 = pure flipped,
   0.5 = balanced). *)
let solve_beta ?(a = 0.) ?(frozen = []) ?x0 ~beta path =
  check_a a;
  let x0 = Option.value x0 ~default:(Path.min_sizing path) in
  let skip j = List.mem j frozen in
  let flipped = Path.with_input_edge path (Pops_delay.Edge.flip path.Path.input_edge) in
  let variants =
    if beta >= 0.999 then [ (path, 1.) ]
    else if beta <= 0.001 then [ (flipped, 1.) ]
    else [ (path, beta); (flipped, 1. -. beta) ]
  in
  let x, _ =
    (* 1e-4 fF is ~0.004% of the minimum drive: far below anything the
       delay model can resolve, at roughly half the sweeps of 1e-6 *)
    N.fixed_point ~tol:1e-4 ~max_iter:300
      ~step:(sweep_variants ~skip variants ~a)
      ~distance:N.distance_inf x0
  in
  x

let solve_worst ?a ?frozen ?x0 path = solve_beta ?a ?frozen ?x0 ~beta:0.5 path

(* The minimum achievable worst-polarity delay: the minimax optimum may
   sit on either pure polarity or strictly between, so scan a small
   weight grid and refine by golden section. *)
let minimum_delay path =
  (* warm-start each solve from the previous optimum: nearby weights have
     nearby fixed points, so convergence takes a few sweeps instead of a
     cold-start descent *)
  let warm = ref None in
  let eval beta =
    let x = solve_beta ~a:0. ?x0:!warm ~beta path in
    warm := Some x;
    (Path.delay_worst path x, x, beta)
  in
  let best_of =
    List.fold_left
      (fun ((db, _, _) as best) ((d, _, _) as cand) -> if d < db then cand else best)
  in
  let candidates = List.map eval [ 0.5; 1.0; 0.0 ] in
  let _, _, beta_grid = best_of (List.hd candidates) (List.tl candidates) in
  let lo = Float.max 0. (beta_grid -. 0.5) and hi = Float.min 1. (beta_grid +. 0.5) in
  let beta_refined, _ =
    N.golden_section_min ~tol:0.02 ~max_iter:10
      ~f:(fun beta ->
        let d, _, _ = eval beta in
        d)
      ~lo ~hi ()
  in
  best_of (eval beta_refined) candidates

let solve_trace ?(a = 0.) ?(tol = 1e-6) ?(max_iter = 300) path =
  check_a a;
  let x0 = Path.min_sizing path in
  let flipped = Path.with_input_edge path (Pops_delay.Edge.flip path.Path.input_edge) in
  let variants = [ (path, 0.5); (flipped, 0.5) ] in
  N.fixed_point_trace ~tol ~max_iter
    ~step:(sweep_variants variants ~a)
    ~distance:N.distance_inf x0

let delay_of_a path a =
  let x = solve_worst ~a path in
  Path.delay_worst path x

type constraint_result = {
  sizing : float array;
  a : float;
  delay : float;
  area : float;
}

let result_of path a sizing =
  { sizing; a; delay = Path.delay_worst path sizing; area = Path.area path sizing }

(* For one polarity weight [beta]: bisect on [a] so the worst-polarity
   delay meets [tc] at minimum area; returns the best feasible candidate
   seen, or [None] when even [a = 0] misses [tc] under this weighting.
   The fixed point is warm-started from the previous iterate. *)
let bisect_for_beta ~beta path ~tc =
  let solve_at ?x0 a = solve_beta ~a ?x0 ~beta path in
  let x0 = solve_at 0. in
  let d0 = Path.delay_worst path x0 in
  if d0 > tc then None
  else begin
    let rec expand a_lo x =
      if a_lo < -1e6 then (a_lo, x)
      else
        let x' = solve_at ~x0:x a_lo in
        if Path.delay_worst path x' >= tc then (a_lo, x')
        else expand (a_lo *. 4.) x'
    in
    let a_lo, x_lo = expand (-1e-3) x0 in
    let rec bisect a_lo a_hi x_prev best iter =
      (* invariant: delay(a_hi) <= tc (feasible), delay(a_lo) >= tc
         (or a_lo is the expansion cap); stop early once the feasible
         delay is within 0.1% of the constraint — further tightening
         cannot buy measurable area *)
      if
        iter >= 60
        || a_hi -. a_lo < 1e-9 *. Float.max 1. (Float.abs a_lo)
        || best.delay >= tc *. 0.999
      then best
      else
        let a_mid = 0.5 *. (a_lo +. a_hi) in
        let x = solve_at ~x0:x_prev a_mid in
        let d = Path.delay_worst path x in
        if d <= tc then
          let cand = result_of path a_mid x in
          let best = if cand.area < best.area then cand else best in
          bisect a_lo a_mid x best (iter + 1)
        else bisect a_mid a_hi x best (iter + 1)
    in
    Some (bisect a_lo 0. x_lo (result_of path 0. x0) 0)
  end

(* The constraint is on the worst polarity, so the minimum-area sizing
   satisfies the KKT conditions of "min area s.t. rise <= tc, fall <=
   tc": when one constraint binds, the pure single-polarity link
   equations are exact; when both bind, the optimal weighting lies
   between — area(beta) is unimodal, so after a coarse grid a short
   golden-section refinement on [beta] finds it. *)
let size_for_constraint ?(tol_ps = 0.01) path ~tc =
  let tmin, x_tmin, beta_tmin = minimum_delay path in
  let grid = [ 1.0; 0.0; 0.5; beta_tmin ] in
  if tc < tmin -. tol_ps then Error (`Infeasible tmin)
  else begin
    let x_min_area = Path.min_sizing path in
    let tmax = Path.delay_worst path x_min_area in
    if tc >= tmax then Ok (result_of path Float.neg_infinity x_min_area)
    else begin
      let cache = Hashtbl.create 16 in
      let candidate beta =
        let key = int_of_float (beta *. 1000.) in
        match Hashtbl.find_opt cache key with
        | Some c -> c
        | None ->
          let c = bisect_for_beta ~beta path ~tc in
          Hashtbl.replace cache key c;
          c
      in
      let area_of beta =
        match candidate beta with Some c -> c.area | None -> Float.infinity
      in
      let best_beta_on_grid =
        List.fold_left
          (fun best beta -> if area_of beta < area_of best then beta else best)
          1.0 grid
      in
      (* golden-section refinement around the best grid point *)
      let lo = Float.max 0. (best_beta_on_grid -. 0.5) in
      let hi = Float.min 1. (best_beta_on_grid +. 0.5) in
      let refined_beta, _ =
        Pops_util.Numerics.golden_section_min ~tol:0.04 ~max_iter:8 ~f:area_of ~lo
          ~hi ()
      in
      let all_candidates =
        List.filter_map candidate (refined_beta :: grid)
        @ List.filter_map Fun.id (Hashtbl.fold (fun _ c acc -> c :: acc) cache [])
      in
      match all_candidates with
      | [] ->
        (* tc within tol of tmin: return the fastest sizing *)
        Ok (result_of path 0. x_tmin)
      | first :: rest ->
        Ok
          (List.fold_left
             (fun best c -> if c.area < best.area then c else best)
             first rest)
    end
  end

let sutherland ?(iters = 4) path ~tc =
  let n = Path.length path in
  let x = ref (Path.min_sizing path) in
  for _ = 1 to iters do
    let per = Path.delay_per_stage path !x in
    let slopes = Array.make n path.Path.input_slope in
    for i = 1 to n - 1 do
      slopes.(i) <- snd per.(i - 1)
    done;
    let d0 = fst per.(0) in
    let budget = Float.max 0.1 ((tc -. d0) /. float_of_int (max 1 (n - 1))) in
    let y = Path.clamp_sizing path !x in
    for j = n - 1 downto 1 do
      let cell = path.Path.stages.(j).Path.cell in
      let next = if j = n - 1 then path.Path.c_out else y.(j + 1) in
      let fixed_load = path.Path.stages.(j).Path.branch +. next in
      let stage_delay xj =
        let cload = Pops_cell.Cell.cpar cell ~cin:xj +. fixed_load in
        fst
          (Model.stage_delay ~opts:path.Path.opts cell
             ~edge_out:path.Path.edges.(j) ~tau_in:slopes.(j) ~cin:xj ~cload)
      in
      let lo = Pops_cell.Cell.min_cin cell in
      let hi = 4096. *. lo in
      y.(j) <-
        (if stage_delay lo <= budget then lo
         else if stage_delay hi >= budget then hi
         else N.bisect ~caller:"sutherland" ~tol:1e-6
                ~f:(fun xj -> stage_delay xj -. budget)
                ~lo ~hi ())
    done;
    x := y
  done;
  !x
