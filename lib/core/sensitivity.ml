module Path = Pops_delay.Path
module Model = Pops_delay.Model
module N = Pops_util.Numerics
module Diag = Pops_robust.Diag
module Watch = Pops_robust.Watch
module Fault = Pops_robust.Fault
module Budget = Pops_robust.Budget

type solve_stats = { iterations : int; residual : float }

(* One backward Gauss-Seidel sweep of the link equations (eq. 6): solve
   dT/dx_j = a w_j for x_j with every other size frozen at its current
   value (see docs/model.md for the derivation), for a weighted
   combination of the path's two polarity variants (same stage geometry,
   per-stage coefficients from the compiled kernel's own/flip tables).
   For the single-polarity objective the other weight is 0; for the
   balanced rise/fall objective both are 1/2 — the averaged delay is
   itself a sum of per-stage terms, so the link equation keeps its
   closed form with coefficient bundles averaged.  Processing
   j = n-1 .. 1 uses the freshly updated downstream size, exactly the
   paper's "backward from the output, where the terminal load is known"
   iteration.

   The sweep updates [x] in place and allocates nothing: every
   coefficient is an unboxed read from the kernel's structure-of-arrays
   tables ([v] pre-zeroed when the slope term is off, [m] when coupling
   is off, so the closed form needs no option branches), and the squared
   denominators are explicit multiplies. *)
(* atomic: sweeps run concurrently on pool domains (protocol candidates,
   Pareto sweeps) and the bench reads the counter for its cost columns *)
let sweep_counter = Atomic.make 0

let sweeps_performed () = Atomic.get sweep_counter

let no_skip _ = false

let sweep_kernel (path : Path.t) ~w_own ~w_flip ~a ~skip x =
  Atomic.incr sweep_counter;
  let k = path.Path.kernel in
  let n = k.Path.n in
  let tau = path.Path.tech.Pops_process.Tech.tau in
  for j = n - 1 downto 1 do
    if not (skip j) then begin
      let next_j = if j = n - 1 then path.Path.c_out else x.(j + 1) in
      let k_j = k.Path.kbranch.(j) +. next_j in
      (* the two polarity contributions are spelled out (rather than
         shared through a local function) so [num]/[den] stay unboxed:
         a closure capturing them would heap-box every accumulation *)
      let num = ref 0. and den = ref 0. in
      if w_own <> 0. then begin
        let s = k.Path.s_own and v = k.Path.v_own and m = k.Path.m_own in
        let l_prev = (k.Path.p.(j - 1) *. x.(j - 1)) +. k.Path.kbranch.(j - 1) +. x.(j) in
        let cm_prev = m.(j - 1) *. x.(j - 1) in
        let dp = cm_prev +. l_prev in
        let k1 = 1. +. (2. *. cm_prev *. cm_prev /. (dp *. dp)) in
        let upstream = s.(j - 1) *. tau /. (2. *. x.(j - 1)) *. (k1 +. v.(j)) in
        let l_j = (k.Path.p.(j) *. x.(j)) +. k_j in
        let cm_j = m.(j) *. x.(j) in
        let dj = cm_j +. l_j in
        let e2 = s.(j) *. tau *. k_j *. m.(j) *. m.(j) /. (dj *. dj) in
        let v_next = if j + 1 < n then v.(j + 1) else 0. in
        num := !num +. (w_own *. s.(j) *. (1. +. v_next));
        den := !den +. (w_own *. (upstream -. e2))
      end;
      if w_flip <> 0. then begin
        let s = k.Path.s_flip and v = k.Path.v_flip and m = k.Path.m_flip in
        let l_prev = (k.Path.p.(j - 1) *. x.(j - 1)) +. k.Path.kbranch.(j - 1) +. x.(j) in
        let cm_prev = m.(j - 1) *. x.(j - 1) in
        let dp = cm_prev +. l_prev in
        let k1 = 1. +. (2. *. cm_prev *. cm_prev /. (dp *. dp)) in
        let upstream = s.(j - 1) *. tau /. (2. *. x.(j - 1)) *. (k1 +. v.(j)) in
        let l_j = (k.Path.p.(j) *. x.(j)) +. k_j in
        let cm_j = m.(j) *. x.(j) in
        let dj = cm_j +. l_j in
        let e2 = s.(j) *. tau *. k_j *. m.(j) *. m.(j) /. (dj *. dj) in
        let v_next = if j + 1 < n then v.(j + 1) else 0. in
        num := !num +. (w_flip *. s.(j) *. (1. +. v_next));
        den := !den +. (w_flip *. (upstream -. e2))
      end;
      (* the sensitivity target is per unit of WIDTH (eq. 5 with the
         paper's Sigma-W objective): dT/dW_j = a  <=>  dT/dx_j = a * w_j
         with w_j the stage's area-per-fF *)
      let denom = !den -. (a *. k.Path.aw.(j)) in
      let lo = k.Path.lo.(j) and hi = k.Path.hi.(j) in
      x.(j) <-
        (if denom <= 1e-12 then hi
         else
           let x2 = tau *. k_j *. !num /. (2. *. denom) in
           (* N.clamp, inlined so the floats stay unboxed in the loop *)
           Float.min hi (Float.max lo (sqrt x2)))
    end
  done

(* --- per-domain scratch ------------------------------------------- *)

(* The fixed point needs a handful of working vectors (current and
   previous iterate, the Aitken history and candidate).  One scratch
   lives per domain (Domain.DLS), sized to the largest path seen there,
   so repeated solves — the constraint bisection warm-starts dozens per
   path — allocate nothing after the first.  The busy flag covers the
   (currently impossible) re-entrant case by falling back to a fresh
   scratch instead of corrupting the one in flight; tasks on the PR 2
   domain pool each run on their own domain, so scratches are never
   shared. *)
type scratch = {
  mutable cap : int;
  mutable cur : float array;
  mutable prev : float array;
  mutable h0 : float array;
  mutable h1 : float array;
  mutable h2 : float array;
  mutable cand : float array;
  mutable cand_next : float array;
  mutable busy : bool;
}

let make_scratch cap =
  {
    cap;
    cur = Array.make cap 0.;
    prev = Array.make cap 0.;
    h0 = Array.make cap 0.;
    h1 = Array.make cap 0.;
    h2 = Array.make cap 0.;
    cand = Array.make cap 0.;
    cand_next = Array.make cap 0.;
    busy = false;
  }

let scratch_key = Domain.DLS.new_key (fun () -> make_scratch 0)

let with_scratch n f =
  let sc = Domain.DLS.get scratch_key in
  if sc.busy then f (make_scratch n)
  else begin
    if sc.cap < n then begin
      let fresh = make_scratch (max n (2 * sc.cap)) in
      fresh.busy <- sc.busy;
      Domain.DLS.set scratch_key fresh;
      sc.cap <- fresh.cap;
      sc.cur <- fresh.cur;
      sc.prev <- fresh.prev;
      sc.h0 <- fresh.h0;
      sc.h1 <- fresh.h1;
      sc.h2 <- fresh.h2;
      sc.cand <- fresh.cand;
      sc.cand_next <- fresh.cand_next
    end;
    sc.busy <- true;
    Fun.protect ~finally:(fun () -> sc.busy <- false) (fun () -> f sc)
  end

let dist_n n a b =
  let d = ref 0. in
  for i = 0 to n - 1 do
    let x = Float.abs (a.(i) -. b.(i)) in
    if x > !d then d := x
  done;
  !d

(* [dist_n] deliberately ignores NaN components (the [>] comparison is
   false), so a poisoned iterate can "converge" with a zero distance —
   the watchdog therefore scans the final iterate explicitly. *)
let nonfinite_index x =
  let n = Array.length x in
  let rec go i =
    if i >= n then -1 else if Float.is_finite x.(i) then go (i + 1) else i
  in
  go 0

(* --- the accelerated fixed point ----------------------------------- *)

(* Plain mode ([accel = false]) replicates Numerics.fixed_point over the
   clamp-then-sweep step exactly: same iterates bit for bit, same
   iteration count, same stopping rule (max sizing change < tol, or
   max_iter sweeps).

   Accelerated mode additionally tries a component-wise Aitken Δ²
   extrapolation after every three consecutive plain iterates.  The
   candidate is accepted only if one sweep from it contracts strictly
   better than the plain sequence's latest step (its residual is
   smaller); otherwise it is discarded and the plain sequence continues
   from its own, bitwise-untouched iterate — so when no candidate is
   ever accepted the accelerated solver walks the exact plain
   trajectory, just with extra (counted) probe sweeps.  Either way the
   result satisfies the same residual-< tol contract; acceleration can
   only change how many sweeps it takes to get there. *)
let solve_weighted ?budget ?(damping = 1.) ~accel ~w_own ~w_flip ~a ~skip ~tol
    ~max_iter ~with_residual path x0 =
  let n = Path.length path in
  with_scratch n @@ fun sc ->
  let cur = sc.cur and prev = sc.prev in
  Array.blit x0 0 cur 0 n;
  let iter = ref 0 in
  let converged = ref false in
  let hist = ref 0 in
  let in_budget () =
    match budget with None -> true | Some b -> not (Budget.exhausted b)
  in
  let spend k = match budget with None -> () | Some b -> Budget.spend b k in
  (* divergence watchdog: a contracting fixed point shrinks the step; a
     step that keeps growing past any plausible sizing scale is runaway.
     The thresholds are astronomical on purpose — healthy solves (even
     slow ones) never trip them, so the watchdog cannot perturb the
     bit-identical healthy trajectory. *)
  let d_prev = ref Float.infinity in
  let grow = ref 0 in
  let diverged = ref false in
  while (not !converged) && (not !diverged) && !iter < max_iter && in_budget ()
  do
    Array.blit cur 0 prev 0 n;
    Path.clamp_into path cur cur;
    sweep_kernel path ~w_own ~w_flip ~a ~skip cur;
    incr iter;
    spend 1;
    (* under-relaxation (the ladder's damped rung): blend the sweep with
       the previous iterate.  [damping = 1.] must stay bit-identical to
       the plain sweep, hence the guard. *)
    if damping <> 1. then
      for i = 0 to n - 1 do
        cur.(i) <- prev.(i) +. (damping *. (cur.(i) -. prev.(i)))
      done;
    let d = dist_n n prev cur in
    if d >= !d_prev then incr grow else grow := 0;
    d_prev := d;
    if (!grow >= 8 && d > 1e6) || d > 1e12 then diverged := true;
    if d < tol then converged := true
    else if accel then begin
      let t = sc.h0 in
      sc.h0 <- sc.h1;
      sc.h1 <- sc.h2;
      sc.h2 <- t;
      Array.blit cur 0 sc.h2 0 n;
      incr hist;
      if !hist >= 3 && !iter < max_iter then begin
        let cand = sc.cand and cand_next = sc.cand_next in
        for i = 0 to n - 1 do
          let x0i = sc.h0.(i) and x1i = sc.h1.(i) and x2i = sc.h2.(i) in
          let dden = x2i -. (2. *. x1i) +. x0i in
          let dx = x2i -. x1i in
          let y = x2i -. (dx *. dx /. dden) in
          cand.(i) <- (if Float.is_finite y then y else x2i)
        done;
        Path.clamp_into path cand cand;
        Array.blit cand 0 cand_next 0 n;
        sweep_kernel path ~w_own ~w_flip ~a ~skip cand_next;
        incr iter;
        let dc = dist_n n cand cand_next in
        if dc < d then begin
          Array.blit cand_next 0 cur 0 n;
          if dc < tol then converged := true
        end;
        (* accepted or not, restart the history: Δ² needs three iterates
           of a single geometric tail, and probing every window turned
           out to burn more sweeps than the extra attempts recover *)
        hist := 0
      end
    end
  done;
  let residual =
    if not with_residual then Float.nan
    else begin
      Array.blit cur 0 sc.cand 0 n;
      Path.clamp_into path sc.cand sc.cand;
      sweep_kernel path ~w_own ~w_flip ~a ~skip sc.cand;
      dist_n n cur sc.cand
    end
  in
  let x = Array.sub cur 0 n in
  let status =
    match nonfinite_index x with
    | i when i >= 0 -> `Nonfinite i
    | _ ->
      if !diverged then `Diverged
      else if !converged then `Converged
      else `Stalled
  in
  (x, !iter, residual, status)

(* --- the fallback ladder ------------------------------------------- *)

type rung = Accelerated | Plain | Damped | Tmax_safe

let rung_name = function
  | Accelerated -> "accelerated"
  | Plain -> "plain"
  | Damped -> "damped"
  | Tmax_safe -> "tmax-safe"

(* injection-point suffix; Tmax_safe has no solve to fault *)
let rung_tag = function
  | Accelerated -> "accel"
  | Plain -> "plain"
  | Damped -> "damped"
  | Tmax_safe -> "tmax-safe"

type ladder_result = {
  lx : float array;
  lstats : solve_stats;
  lrung : rung;
  ldiags : Diag.t list;
}

(* The Tmax-safe bottom of the ladder: every free interior stage at its
   minimum drive.  Always valid (it is the sizing defining the Tmax
   bound), needs no solver, and preserves the drive slot and any frozen
   stages from [x0]. *)
let tmax_safe_sizing ~skip path x0 =
  let n = Path.length path in
  let y = Array.copy x0 in
  let mins = Path.min_sizing path in
  for j = 1 to n - 1 do
    if not (skip j) then y.(j) <- mins.(j)
  done;
  Path.clamp_into path y y;
  (* a poisoned frozen slot would survive the copy; scrub it *)
  for j = 0 to n - 1 do
    if not (Float.is_finite y.(j)) then y.(j) <- mins.(j)
  done;
  y

(* Walk the documented fallback ladder: Aitken-accelerated -> plain
   Gauss-Seidel -> damped (under-relaxed, 0.5) sweep -> Tmax-safe
   minimum-drive sizing.  A rung fails on a non-finite iterate or a
   diverging residual (or a forced [solver.*] fault); a rung that merely
   runs out of sweeps keeps the historical contract — report and return
   the last iterate — so fault-free solves stay bit-identical to the
   pre-ladder code.  Every event is recorded in the returned diagnostics
   and emitted to the ambient {!Watch} collector. *)
let solve_weighted_ladder ?budget ~accel ~w_own ~w_flip ~a ~skip ~tol ~max_iter
    ~with_residual path x0 =
  let diags = ref [] in
  let note d =
    diags := d :: !diags;
    Watch.emit d
  in
  let attempt rung =
    let tag = rung_tag rung in
    if Fault.fire ("solver.diverge." ^ tag) then begin
      note
        (Diag.makef Diag.Solver_divergence
           ~subject:("solver.diverge." ^ tag)
           "forced divergence on the %s rung (fault injection)"
           (rung_name rung));
      None
    end
    else begin
      let x0 =
        if Fault.fire ("solver.nan." ^ tag) then begin
          note
            (Diag.makef Diag.Fault_injected ~severity:Diag.Info
               ~subject:("solver.nan." ^ tag)
               "initial iterate poisoned with NaN (fault injection)");
          let p = Array.copy x0 in
          p.(Array.length p - 1) <- Float.nan;
          p
        end
        else x0
      in
      let x, iterations, residual, status =
        solve_weighted ?budget
          ~damping:(if rung = Damped then 0.5 else 1.)
          ~accel:(rung = Accelerated) ~w_own ~w_flip ~a ~skip ~tol ~max_iter
          ~with_residual path x0
      in
      let stats = { iterations; residual } in
      match status with
      | `Converged -> Some (x, stats)
      | `Stalled -> (
        match budget with
        | Some b when Budget.exhausted b ->
          note (Budget.diag b);
          Some (x, stats)
        | _ ->
          note
            (Diag.makef Diag.Solver_stalled ~subject:(rung_name rung)
               "fixed point not converged after %d sweeps (last step %g fF)"
               iterations residual);
          Some (x, stats))
      | `Nonfinite i ->
        note
          (Diag.makef Diag.Solver_nonfinite ~subject:(rung_name rung)
             "non-finite sizing at stage %d after %d sweeps" i iterations);
        None
      | `Diverged ->
        note
          (Diag.makef Diag.Solver_divergence ~subject:(rung_name rung)
             "residual diverging after %d sweeps" iterations);
        None
    end
  in
  let rungs = if accel then [ Accelerated; Plain; Damped ] else [ Plain; Damped ] in
  let rec descend fell = function
    | [] ->
      note
        (Diag.make Diag.Solver_fallback ~subject:(rung_name Tmax_safe)
           "all solver rungs failed; using the Tmax-safe minimum-drive sizing");
      {
        lx = tmax_safe_sizing ~skip path x0;
        lstats = { iterations = 0; residual = Float.nan };
        lrung = Tmax_safe;
        ldiags = List.rev !diags;
      }
    | rung :: rest -> (
      match attempt rung with
      | Some (x, stats) ->
        if fell then
          note
            (Diag.makef Diag.Solver_fallback ~subject:(rung_name rung)
               "solver degraded to the %s rung" (rung_name rung));
        { lx = x; lstats = stats; lrung = rung; ldiags = List.rev !diags }
      | None -> descend true rest)
  in
  descend false rungs

let check_a a = if a > 0. then invalid_arg "Sensitivity: a must be <= 0."

let solve ?budget ?(accel = true) ?(a = 0.) ?(frozen = []) ?x0 ?(tol = 1e-6)
    ?(max_iter = 300) path =
  check_a a;
  let x0 = Option.value x0 ~default:(Path.min_sizing path) in
  let skip = match frozen with [] -> no_skip | l -> fun j -> List.mem j l in
  let r =
    solve_weighted_ladder ?budget ~accel ~w_own:1. ~w_flip:0. ~a ~skip ~tol
      ~max_iter ~with_residual:true path x0
  in
  (r.lx, r.lstats)

(* Weighted two-polarity solve: [beta] is the weight of the path's own
   polarity (1 = pure own-polarity link equations, 0 = pure flipped,
   0.5 = balanced). *)
let solve_beta_ladder ?budget ?(accel = true) ?(a = 0.) ?(frozen = []) ?x0
    ~beta path =
  check_a a;
  let x0 = Option.value x0 ~default:(Path.min_sizing path) in
  let skip = match frozen with [] -> no_skip | l -> fun j -> List.mem j l in
  let w_own, w_flip =
    if beta >= 0.999 then (1., 0.)
    else if beta <= 0.001 then (0., 1.)
    else (beta, 1. -. beta)
  in
  (* 1e-4 fF is ~0.004% of the minimum drive: far below anything the
     delay model can resolve, at roughly half the sweeps of 1e-6 *)
  solve_weighted_ladder ?budget ~accel ~w_own ~w_flip ~a ~skip ~tol:1e-4
    ~max_iter:300 ~with_residual:false path x0

let solve_beta ?accel ?a ?frozen ?x0 ~beta path =
  (solve_beta_ladder ?accel ?a ?frozen ?x0 ~beta path).lx

let solve_worst ?accel ?a ?frozen ?x0 path =
  solve_beta ?accel ?a ?frozen ?x0 ~beta:0.5 path

(* --- robust entry points ------------------------------------------- *)

type robust_report = {
  sizing : float array;
  stats : solve_stats;
  fallback : rung;
  diags : Diag.t list;
}

let solve_robust ?budget ?accel ?a ?frozen ?x0 ?(beta = 0.5) path =
  let r = solve_beta_ladder ?budget ?accel ?a ?frozen ?x0 ~beta path in
  { sizing = r.lx; stats = r.lstats; fallback = r.lrung; diags = r.ldiags }

let solve_o ?budget ?accel ?a ?frozen ?x0 ?beta path =
  match solve_robust ?budget ?accel ?a ?frozen ?x0 ?beta path with
  | r -> Pops_robust.Outcome.make r.sizing r.diags
  | exception Diag.Fatal d -> Pops_robust.Outcome.Failed d
  | exception Invalid_argument msg ->
    Pops_robust.Outcome.Failed (Diag.make Diag.Invalid_input msg)

(* The minimum achievable worst-polarity delay: the minimax optimum may
   sit on either pure polarity or strictly between, so scan a small
   weight grid and refine by golden section. *)
let minimum_delay path =
  (* warm-start each solve from the previous optimum: nearby weights have
     nearby fixed points, so convergence takes a few sweeps instead of a
     cold-start descent *)
  let warm = ref None in
  let eval beta =
    let x = solve_beta ~a:0. ?x0:!warm ~beta path in
    warm := Some x;
    (Path.delay_worst path x, x, beta)
  in
  let best_of =
    List.fold_left
      (fun ((db, _, _) as best) ((d, _, _) as cand) -> if d < db then cand else best)
  in
  let candidates = List.map eval [ 0.5; 1.0; 0.0 ] in
  let _, _, beta_grid = best_of (List.hd candidates) (List.tl candidates) in
  let lo = Float.max 0. (beta_grid -. 0.5) and hi = Float.min 1. (beta_grid +. 0.5) in
  let beta_refined, _ =
    N.golden_section_min ~tol:0.02 ~max_iter:10
      ~f:(fun beta ->
        let d, _, _ = eval beta in
        d)
      ~lo ~hi ()
  in
  best_of (eval beta_refined) candidates

let solve_trace ?(a = 0.) ?(tol = 1e-6) ?(max_iter = 300) path =
  check_a a;
  let x0 = Path.min_sizing path in
  (* the plain (unaccelerated) balanced iteration: the trace reproduces
     the paper's Fig. 1 trajectory, so no probe sweeps may appear in it *)
  let step x =
    let y = Path.clamp_sizing path x in
    sweep_kernel path ~w_own:0.5 ~w_flip:0.5 ~a ~skip:no_skip y;
    y
  in
  N.fixed_point_trace ~tol ~max_iter ~step ~distance:N.distance_inf x0

let delay_of_a path a =
  let x = solve_worst ~a path in
  Path.delay_worst path x

type constraint_result = {
  sizing : float array;
  a : float;
  delay : float;
  area : float;
}

let result_of path a sizing =
  { sizing; a; delay = Path.delay_worst path sizing; area = Path.area path sizing }

(* For one polarity weight [beta]: root-find on [a] so the worst-polarity
   delay meets [tc] at minimum area; returns the best feasible candidate
   seen, or [None] when even [a = 0] misses [tc] under this weighting.
   The fixed point is warm-started from the previous iterate.

   The bracket step is a safeguarded regula falsi on delay(a) - tc
   (delay is monotone non-increasing in [a], so both bracket delays are
   tracked): the secant point homes in on the constraint in a couple of
   solves where plain bisection pays its full log2 schedule, and the
   midpoint fallback fires whenever the secant step degenerates, pins to
   an endpoint, or the previous step failed to halve the bracket — so
   the worst case stays the bisection bound.  The stopping rules are
   unchanged (60 iterations, relative bracket width, or a feasible delay
   within 0.1% of the constraint). *)
let bisect_for_beta ?accel ~beta path ~tc =
  let solve_at ?x0 a = solve_beta ?accel ~a ?x0 ~beta path in
  let x0 = solve_at 0. in
  let d0 = Path.delay_worst path x0 in
  if d0 > tc then None
  else begin
    let rec expand a_lo x =
      if a_lo < -1e6 then (a_lo, x)
      else
        let x' = solve_at ~x0:x a_lo in
        if Path.delay_worst path x' >= tc then (a_lo, x')
        else expand (a_lo *. 4.) x'
    in
    let a_lo, x_lo = expand (-1e-3) x0 in
    let d_lo = Path.delay_worst path x_lo in
    (* invariant: delay(a_hi) <= tc (feasible), delay(a_lo) >= tc
       (or a_lo is the expansion cap) *)
    let rec refine a_lo d_lo a_hi d_hi x_prev best iter force_bisect =
      if
        iter >= 60
        || a_hi -. a_lo < 1e-9 *. Float.max 1. (Float.abs a_lo)
        || best.delay >= tc *. 0.999
      then begin
        (* a bracket that shrank to nothing while the best delay is still
           well under target means delay(a) jumped across [tc] (a clamp
           kicked in, or the fixed point changed basin): the result is
           valid but conservative, so surface it *)
        if
          a_hi -. a_lo < 1e-9 *. Float.max 1. (Float.abs a_lo)
          && best.delay < tc *. 0.99
        then
          Watch.emit
            (Diag.makef Diag.Bracket_collapse ~subject:"bisect_for_beta"
               "sensitivity bracket collapsed at a = %g with delay %.3f ps \
                well under the %.3f ps target"
               a_lo best.delay tc);
        best
      end
      else begin
        let w = a_hi -. a_lo in
        let a_mid =
          if force_bisect then 0.5 *. (a_lo +. a_hi)
          else
            let f_lo = d_lo -. tc and f_hi = d_hi -. tc in
            let denom = f_lo -. f_hi in
            let a_int = a_lo +. (f_lo /. denom *. w) in
            if
              Float.is_finite a_int
              && a_int > a_lo +. (0.01 *. w)
              && a_int < a_hi -. (0.01 *. w)
            then a_int
            else 0.5 *. (a_lo +. a_hi)
        in
        let x = solve_at ~x0:x_prev a_mid in
        let d = Path.delay_worst path x in
        if d <= tc then
          let cand = result_of path a_mid x in
          let best = if cand.area < best.area then cand else best in
          refine a_lo d_lo a_mid d x best (iter + 1) (a_mid -. a_lo > 0.5 *. w)
        else refine a_mid d a_hi d_hi x best (iter + 1) (a_hi -. a_mid > 0.5 *. w)
      end
    in
    Some (refine a_lo d_lo 0. d0 x_lo (result_of path 0. x0) 0 false)
  end

let bisect_for_beta_o ?accel ~beta path ~tc =
  match Watch.collect (fun () -> bisect_for_beta ?accel ~beta path ~tc) with
  | v, diags -> Pops_robust.Outcome.make v diags
  | exception Diag.Fatal d -> Pops_robust.Outcome.Failed d
  | exception e ->
    Pops_robust.Outcome.Failed
      (Diag.makef Diag.Internal "bisect_for_beta raised: %s"
         (Printexc.to_string e))

(* The constraint is on the worst polarity, so the minimum-area sizing
   satisfies the KKT conditions of "min area s.t. rise <= tc, fall <=
   tc": when one constraint binds, the pure single-polarity link
   equations are exact; when both bind, the optimal weighting lies
   between — area(beta) is unimodal, so after a coarse grid a short
   golden-section refinement on [beta] finds it. *)
let size_for_constraint ?(tol_ps = 0.01) path ~tc =
  let tmin, x_tmin, beta_tmin = minimum_delay path in
  let grid = [ 1.0; 0.0; 0.5; beta_tmin ] in
  if tc < tmin -. tol_ps then Error (`Infeasible tmin)
  else begin
    let x_min_area = Path.min_sizing path in
    let tmax = Path.delay_worst path x_min_area in
    if tc >= tmax then Ok (result_of path Float.neg_infinity x_min_area)
    else begin
      let cache = Hashtbl.create 16 in
      let candidate beta =
        let key = int_of_float (beta *. 1000.) in
        match Hashtbl.find_opt cache key with
        | Some c -> c
        | None ->
          let c = bisect_for_beta ~beta path ~tc in
          Hashtbl.replace cache key c;
          c
      in
      let area_of beta =
        match candidate beta with Some c -> c.area | None -> Float.infinity
      in
      let best_beta_on_grid =
        List.fold_left
          (fun best beta -> if area_of beta < area_of best then beta else best)
          1.0 grid
      in
      (* golden-section refinement around the best grid point *)
      let lo = Float.max 0. (best_beta_on_grid -. 0.5) in
      let hi = Float.min 1. (best_beta_on_grid +. 0.5) in
      let refined_beta, _ =
        Pops_util.Numerics.golden_section_min ~tol:0.04 ~max_iter:8 ~f:area_of ~lo
          ~hi ()
      in
      let all_candidates =
        List.filter_map candidate (refined_beta :: grid)
        @ List.filter_map Fun.id (Hashtbl.fold (fun _ c acc -> c :: acc) cache [])
      in
      match all_candidates with
      | [] ->
        (* tc within tol of tmin: return the fastest sizing *)
        Ok (result_of path 0. x_tmin)
      | first :: rest ->
        Ok
          (List.fold_left
             (fun best c -> if c.area < best.area then c else best)
             first rest)
    end
  end

let sutherland ?(iters = 4) path ~tc =
  let n = Path.length path in
  let x = ref (Path.min_sizing path) in
  for _ = 1 to iters do
    let per = Path.delay_per_stage path !x in
    let slopes = Array.make n path.Path.input_slope in
    for i = 1 to n - 1 do
      slopes.(i) <- snd per.(i - 1)
    done;
    let d0 = fst per.(0) in
    let budget = Float.max 0.1 ((tc -. d0) /. float_of_int (max 1 (n - 1))) in
    let y = Path.clamp_sizing path !x in
    for j = n - 1 downto 1 do
      let cell = path.Path.stages.(j).Path.cell in
      let next = if j = n - 1 then path.Path.c_out else y.(j + 1) in
      let fixed_load = path.Path.stages.(j).Path.branch +. next in
      let stage_delay xj =
        let cload = Pops_cell.Cell.cpar cell ~cin:xj +. fixed_load in
        fst
          (Model.stage_delay ~opts:path.Path.opts cell
             ~edge_out:path.Path.edges.(j) ~tau_in:slopes.(j) ~cin:xj ~cload)
      in
      let lo = Pops_cell.Cell.min_cin cell in
      let hi = 4096. *. lo in
      y.(j) <-
        (if stage_delay lo <= budget then lo
         else if stage_delay hi >= budget then hi
         else N.bisect ~caller:"sutherland" ~tol:1e-6
                ~f:(fun xj -> stage_delay xj -. budget)
                ~lo ~hi ())
    done;
    x := y
  done;
  !x
