(** The complete optimization protocol (Fig. 7).

    Given a bounded path and a delay constraint [Tc]:

    + characterise the optimization space: [Tmin], [Tmax] (Section 3.1)
      — and, once per library, the [Flimit] of every gate kind;
    + if [Tc < Tmin] the constraint is infeasible by sizing alone: modify
      the structure — buffer insertion with global sizing, and (when
      allowed) De Morgan restructuring, keeping the better result;
    + otherwise classify the constraint domain and pick the alternative:
      weak: gate sizing; medium: buffer insertion (kept only if it saves
      area); hard: buffer insertion with global sizing, optionally
      compared against restructuring. *)

type strategy =
  | Sizing_only
  | Local_buffers
  | Buffers_and_sizing
  | Restructure_and_sizing

type report = {
  tc : float;
  tmin : float;  (** of the original path *)
  tmax : float;
  domain : Domains.t;
  strategy : strategy;
  path : Pops_delay.Path.t;  (** final structure *)
  sizing : float array;
  delay : float;
  area : float;  (** including off-path side inverters, if any *)
  met : bool;  (** whether [delay <= tc] *)
  buffers_inserted : int;
  rewrites : Restructure.rewrite list;
  pairs : int list;
      (** original stage indices that received a series inverter pair *)
  shields : Buffers.shield list;
      (** branch loads diluted by off-path shield buffers *)
}

val run :
  ?allow_restructure:bool ->
  lib:Pops_cell.Library.t ->
  tc:float ->
  Pops_delay.Path.t ->
  report
(** Run the protocol.  [allow_restructure] (default true) enables the
    Section 4.2 alternative in the hard/infeasible domains.

    The candidate alternatives are evaluated with
    {!Pops_util.Pool.map_list_contained}: one crashing generator
    degrades to a {!Pops_robust.Diag.Pool_task_failed} diagnostic and
    drops out of the min-area comparison instead of aborting the run.
    Diagnostics flow to the ambient {!Pops_robust.Watch} collector in
    deterministic submission order. *)

val run_o :
  ?allow_restructure:bool ->
  lib:Pops_cell.Library.t ->
  tc:float ->
  Pops_delay.Path.t ->
  report Pops_robust.Outcome.t
(** {!run} with its diagnostics collected into an
    {!Pops_robust.Outcome}: [Exact] on a clean met constraint,
    [Degraded] when any solver/candidate degradation was reported or the
    constraint was not met (a {!Pops_robust.Diag.Constraint_infeasible}
    diagnostic is appended in that case — the report still carries the
    best-effort fastest structure), [Failed] instead of raising. *)

val strategy_to_string : strategy -> string
val pp_report : Format.formatter -> report -> unit
