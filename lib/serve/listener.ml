module Diag = Pops_robust.Diag
module Fault = Pops_robust.Fault
module Fdx = Pops_util.Fdx

type address = Unix_socket of string | Tcp of string * int

let address_name = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type config = { max_sessions : int; session : Session.config }

let default_config = { max_sessions = 64; session = Session.default_config }

type t = {
  engine : Engine.t;
  config : config;
  log : Diag.t -> unit;
  listen_fd : Unix.file_descr;
  address : address;  (* resolved: TCP port 0 becomes the bound port *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  draining : bool Atomic.t;
  mutable sessions : Session.t list;  (* in accept order *)
  mutable next_id : int;
}

(* ------------------------------------------------------------------ *)
(* binding                                                             *)
(* ------------------------------------------------------------------ *)

(* a socket file left behind by a killed listener must not wedge the
   next start — but only provably-stale files are removed: the path
   must be a socket, and a probe connect must be refused *)
let cleanup_stale path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> Error (Printf.sprintf "%s: a listener is already serving" path)
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Ok ()
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "%s: cannot probe stale socket: %s" path
             (Unix.error_message e))
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    verdict)
  | _ -> Error (Printf.sprintf "%s exists and is not a socket" path)

let bind_listen fd sockaddr resolved =
  match
    Unix.bind fd sockaddr;
    Unix.listen fd 64
  with
  | () -> Ok (fd, resolved fd)
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unix.error_message e)

let bind_unix path =
  match cleanup_stale path with
  | Error e -> Error e
  | Ok () ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match bind_listen fd (Unix.ADDR_UNIX path) (fun _ -> Unix_socket path) with
    | Ok _ as ok -> ok
    | Error e -> Error (Printf.sprintf "cannot bind %s: %s" path e))

let bind_tcp host port =
  let addr =
    try Ok (Unix.inet_addr_of_string host)
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        Error (Printf.sprintf "%s: unknown host" host)
      | h -> Ok h.Unix.h_addr_list.(0))
  in
  match addr with
  | Error e -> Error e
  | Ok addr ->
    let sockaddr = Unix.ADDR_INET (addr, port) in
    let fd =
      Unix.socket ~cloexec:true
        (Unix.domain_of_sockaddr sockaddr)
        Unix.SOCK_STREAM 0
    in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let resolved fd =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Tcp (host, p)
      | _ -> Tcp (host, port)
    in
    (match bind_listen fd sockaddr resolved with
    | Ok _ as ok -> ok
    | Error e -> Error (Printf.sprintf "cannot bind %s:%d: %s" host port e))

let create ?(config = default_config) ~log engine address =
  let bound =
    match address with
    | Unix_socket path -> bind_unix path
    | Tcp (host, port) -> bind_tcp host port
  in
  match bound with
  | Error e -> Error e
  | Ok (listen_fd, resolved) ->
    Fdx.set_nonblock listen_fd;
    let wake_r, wake_w = Fdx.pipe_self () in
    Ok
      {
        engine;
        config;
        log;
        listen_fd;
        address = resolved;
        wake_r;
        wake_w;
        draining = Atomic.make false;
        sessions = [];
        next_id = 0;
      }

let address t = t.address

(* safe from a signal handler or another domain: one atomic store and
   one self-pipe write *)
let request_drain t =
  Atomic.set t.draining true;
  Fdx.notify t.wake_w

(* ------------------------------------------------------------------ *)
(* the event loop                                                      *)
(* ------------------------------------------------------------------ *)

let accept_burst t =
  let rec go () =
    if
      (not (Atomic.get t.draining))
      && List.length t.sessions < t.config.max_sessions
    then
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _peer ->
        t.next_id <- t.next_id + 1;
        let peer = Printf.sprintf "client-%d" t.next_id in
        if Fault.fire "net.accept" then begin
          (* the connection is dropped, the listener is not *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.log
            (Diag.makef ~subject:peer Diag.Net_error
               "injected accept failure (net.accept): connection dropped")
        end
        else begin
          let s =
            Session.create ~id:t.next_id ~peer ~log:t.log
              ~config:t.config.session t.engine fd
          in
          t.sessions <- t.sessions @ [ s ]
        end;
        go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error (e, _, _) ->
        t.log
          (Diag.makef Diag.Net_error "accept failed: %s" (Unix.error_message e))
  in
  go ()

let prune t =
  t.sessions <- List.filter (fun s -> not (Session.closed s)) t.sessions

(* run every queued job before going back to sleep: one engine window
   per runnable session per pass, round-robin in accept order, flushing
   as results land — select never blocks while work is waiting *)
let work t =
  let rec go () =
    if not (Atomic.get t.draining) then begin
      let runnable = List.filter Session.runnable t.sessions in
      if runnable <> [] then begin
        List.iter
          (fun s ->
            Session.step s;
            Session.flush s)
          runnable;
        go ()
      end
    end
  in
  go ()

let drain t =
  (* stop accepting first, so "drain" is observable as a refused
     connect, then let every session run its queue to completion under
     the engine's per-job budgets *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  List.iter (fun s -> Session.finish s) t.sessions;
  t.sessions <- [];
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  0

let run t =
  let rec loop () =
    prune t;
    work t;
    prune t;
    if Atomic.get t.draining then drain t
    else begin
      let accept_ok = List.length t.sessions < t.config.max_sessions in
      let read =
        (t.wake_r :: (if accept_ok then [ t.listen_fd ] else []))
        @ List.filter_map
            (fun s -> if Session.wants_read s then Some (Session.fd s) else None)
            t.sessions
      in
      let write =
        List.filter_map
          (fun s -> if Session.wants_write s then Some (Session.fd s) else None)
          t.sessions
      in
      let deadline =
        List.fold_left
          (fun acc s ->
            match (Session.deadline s, acc) with
            | Some d, Some a -> Some (min a d)
            | Some d, None -> Some d
            | None, acc -> acc)
          None t.sessions
      in
      let ready = Fdx.wait ?deadline ~read ~write () in
      Fdx.drain t.wake_r;
      if Atomic.get t.draining then drain t
      else begin
        if accept_ok && List.memq t.listen_fd ready.Fdx.readable then
          accept_burst t;
        List.iter
          (fun s ->
            if List.memq (Session.fd s) ready.Fdx.readable then
              Session.handle_readable s)
          t.sessions;
        let now = Fdx.now () in
        List.iter (fun s -> ignore (Session.expire s ~now)) t.sessions;
        List.iter
          (fun s -> if Session.wants_write s then Session.flush s)
          t.sessions;
        loop ()
      end
    end
  in
  loop ()
