module Diag = Pops_robust.Diag
module Fault = Pops_robust.Fault
module Fdx = Pops_util.Fdx

(* ------------------------------------------------------------------ *)
(* shared protocol helpers: one implementation for every transport     *)
(* ------------------------------------------------------------------ *)

type item = (Job.t, int * string) result

let skippable line =
  let line = String.trim line in
  line = "" || line.[0] = '#'

(* a line that fails JSON or job decoding still yields a result line in
   sequence position — the stream never skips or reorders *)
let decode ~seq line : item =
  match Json.parse line with
  | Error e -> Error (seq, Printf.sprintf "not a JSON object: %s" e)
  | Ok json -> (
    match Job.of_json ~seq json with
    | Ok job -> Ok job
    | Error e -> Error (seq, e))

let bad_line_result ~seq error =
  {
    Job.seq;
    id = Printf.sprintf "job-%d" seq;
    tenant = "default";
    status = Job.Invalid;
    cache = `None;
    metrics = [ ("error", Json.Str error) ];
    diags = [];
    ms = 0.;
  }

let overloaded_result ~retry_after_ms item =
  let seq, id, tenant =
    match item with
    | Ok (j : Job.t) -> (j.Job.seq, j.Job.id, j.Job.tenant)
    | Error (seq, _) -> (seq, Printf.sprintf "job-%d" seq, "default")
  in
  {
    Job.seq;
    id;
    tenant;
    status = Job.Overloaded;
    cache = `None;
    metrics = [ ("retry_after_ms", Json.Num (float_of_int retry_after_ms)) ];
    diags =
      [ Diag.makef Diag.Overloaded
          "job %s shed: the session's in-flight queue is full" id ];
    ms = 0.;
  }

(* run one batch of decoded items: good jobs go through the engine
   together, bad lines become Invalid results, and the merged output is
   in submission order *)
let run_items engine items =
  let jobs =
    List.filter_map (function Ok job -> Some job | Error _ -> None) items
  in
  let results = Engine.run_batch engine jobs in
  let rec merge items results =
    match (items, results) with
    | [], [] -> []
    | Error (seq, e) :: items, results ->
      bad_line_result ~seq e :: merge items results
    | Ok _ :: items, r :: results -> r :: merge items results
    | Ok _ :: _, [] | [], _ :: _ -> assert false
  in
  merge items results

let render engine r =
  let times = (Engine.config engine).Engine.times in
  Json.to_string (Job.to_json ~times r) ^ "\n"

let worst_exit results =
  List.fold_left
    (fun acc r -> max acc (Job.exit_of_status r.Job.status))
    0 results

(* ------------------------------------------------------------------ *)
(* line buffer                                                         *)
(* ------------------------------------------------------------------ *)

module Linebuf = struct
  type t = {
    buf : Buffer.t;
    mutable scan_from : int;  (* no '\n' in buf before this offset *)
  }

  let create () = { buf = Buffer.create 4096; scan_from = 0 }

  let push t bytes len = Buffer.add_subbytes t.buf bytes 0 len

  let pop_line t =
    let s = Buffer.contents t.buf in
    match String.index_from_opt s t.scan_from '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
      t.scan_from <- 0;
      (* tolerate CRLF clients *)
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | None ->
      t.scan_from <- String.length s;
      None

  let pop_residue t =
    if Buffer.length t.buf = 0 then None
    else begin
      let line = Buffer.contents t.buf in
      Buffer.clear t.buf;
      t.scan_from <- 0;
      Some line
    end
end

(* ------------------------------------------------------------------ *)
(* the per-connection state machine                                    *)
(* ------------------------------------------------------------------ *)

type config = {
  queue_limit : int;
  idle_timeout : float option;
  retry_after_ms : int;
  summary : bool;
}

let default_config =
  { queue_limit = 256; idle_timeout = None; retry_after_ms = 1000;
    summary = true }

(* a client that sends but never reads must not buffer the server into
   the ground: past this backlog the session is closed, not grown *)
let out_limit = 8 * 1024 * 1024

type phase =
  | Active  (* reading requests *)
  | Draining  (* client EOF seen; run what is queued, then summarise *)
  | Finishing  (* everything rendered; flush the backlog, then close *)
  | Closed

type t = {
  id : int;
  sock : Unix.file_descr;
  peer_label : string;
  log : Diag.t -> unit;
  config : config;
  engine : Engine.t;
  inbuf : Linebuf.t;
  chunk : Bytes.t;
  queue : item Queue.t;
  outq : Buffer.t;  (* rendered lines not yet moved to [pending] *)
  mutable pending : Bytes.t;  (* being written *)
  mutable pos : int;
  mutable phase : phase;
  mutable seq : int;
  mutable jobs : int;  (* results that went through the engine *)
  mutable shed : int;
  mutable worst : int;
  mutable deadline : float option;
}

let create ~id ~peer ~log ~config engine sock =
  Fdx.set_nonblock sock;
  let t =
    {
      id;
      sock;
      peer_label = peer;
      log;
      config;
      engine;
      inbuf = Linebuf.create ();
      chunk = Bytes.create 65536;
      queue = Queue.create ();
      outq = Buffer.create 4096;
      pending = Bytes.empty;
      pos = 0;
      phase = Active;
      seq = 0;
      jobs = 0;
      shed = 0;
      worst = 0;
      deadline = None;
    }
  in
  (match config.idle_timeout with
  | Some s -> t.deadline <- Some (Fdx.now () +. s)
  | None -> ());
  t

let fd t = t.sock
let peer t = t.peer_label
let closed t = t.phase = Closed
let wants_read t = t.phase = Active

let out_bytes t = Bytes.length t.pending - t.pos + Buffer.length t.outq
let wants_write t = t.phase <> Closed && out_bytes t > 0
let deadline t = if t.phase = Closed then None else t.deadline

let touch t =
  match t.config.idle_timeout with
  | Some s -> t.deadline <- Some (Fdx.now () +. s)
  | None -> ()

let net_diag t fmt = Diag.makef ~subject:t.peer_label Diag.Net_error fmt

let close ?diag t =
  if t.phase <> Closed then begin
    (match diag with Some d -> t.log d | None -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    t.phase <- Closed
  end

let emit t r =
  t.worst <- max t.worst (Job.exit_of_status r.Job.status);
  Buffer.add_string t.outq (render t.engine r);
  if out_bytes t > out_limit then
    close t
      ~diag:
        (net_diag t "response backlog exceeded %d bytes: client is not reading"
           out_limit)

let intake t line =
  if not (skippable line) then begin
    let seq = t.seq in
    t.seq <- seq + 1;
    let item = decode ~seq line in
    if Queue.length t.queue >= t.config.queue_limit then begin
      (* explicit load-shedding: a typed response with a retry hint
         instead of a silently growing queue *)
      t.shed <- t.shed + 1;
      t.log
        (Diag.makef ~subject:t.peer_label Diag.Overloaded
           "shed job seq %d: in-flight queue full at %d" seq
           t.config.queue_limit);
      emit t (overloaded_result ~retry_after_ms:t.config.retry_after_ms item)
    end
    else Queue.add item t.queue
  end

let handle_readable t =
  if t.phase = Active then begin
    if Fault.fire "net.stall" then begin
      (* simulate a stalled connection: stop reading and let the idle
         deadline machinery close the session deterministically *)
      t.log
        (Diag.makef ~subject:t.peer_label ~severity:Diag.Info
           Diag.Fault_injected
           "net.stall: session frozen until its idle deadline");
      t.deadline <- Some (Fdx.now () -. 1.)
    end
    else if Fault.fire "net.read" then
      close t ~diag:(net_diag t "injected read failure (net.read)")
    else begin
      (* bounded pull per visit so one firehose client cannot starve the
         other sessions; leftover bytes keep the descriptor readable *)
      let rec pull budget =
        if budget = 0 then `More
        else
          match Fdx.read t.sock t.chunk with
          | Fdx.Read n ->
            Linebuf.push t.inbuf t.chunk n;
            touch t;
            pull (budget - 1)
          | Fdx.Read_blocked -> `Blocked
          | Fdx.Read_eof -> `Eof
          | Fdx.Read_closed e -> `Failed e
      in
      let verdict = pull 4 in
      let rec pop () =
        match Linebuf.pop_line t.inbuf with
        | Some line ->
          intake t line;
          pop ()
        | None -> ()
      in
      pop ();
      match verdict with
      | `More | `Blocked -> ()
      | `Eof ->
        (* a final unterminated line still counts *)
        (match Linebuf.pop_residue t.inbuf with
        | Some line -> intake t line
        | None -> ());
        t.phase <- Draining
      | `Failed e -> close t ~diag:(net_diag t "read failed: %s" e)
    end
  end

let summary_line t =
  Json.to_string
    (Json.Obj
       [ ("summary", Json.Bool true);
         ("jobs", Json.Num (float_of_int t.jobs));
         ("shed", Json.Num (float_of_int t.shed));
         ("worst_exit", Json.Num (float_of_int t.worst)) ])
  ^ "\n"

let runnable t =
  match t.phase with
  | Active -> not (Queue.is_empty t.queue)
  | Draining -> true
  | Finishing | Closed -> false

let step t =
  if t.phase = Active || t.phase = Draining then begin
    if not (Queue.is_empty t.queue) then begin
      let window = (Engine.config t.engine).Engine.window in
      let rec take acc n =
        if n >= window || Queue.is_empty t.queue then List.rev acc
        else take (Queue.pop t.queue :: acc) (n + 1)
      in
      let items = take [] 0 in
      let results = run_items t.engine items in
      t.jobs <- t.jobs + List.length results;
      List.iter (emit t) results
    end;
    if t.phase = Draining && Queue.is_empty t.queue then begin
      if t.config.summary then Buffer.add_string t.outq (summary_line t);
      t.phase <- Finishing
    end
  end

let flush t =
  if t.phase <> Closed then
    if out_bytes t > 0 && Fault.fire "net.write" then
      close t ~diag:(net_diag t "injected write failure (net.write)")
    else begin
      let rec go () =
        if t.phase = Closed then ()
        else if t.pos < Bytes.length t.pending then
          match
            Fdx.write t.sock t.pending t.pos (Bytes.length t.pending - t.pos)
          with
          | Fdx.Wrote n ->
            t.pos <- t.pos + n;
            touch t;
            go ()
          | Fdx.Write_blocked -> ()
          | Fdx.Write_closed e ->
            close t ~diag:(net_diag t "write failed: %s" e)
        else if Buffer.length t.outq > 0 then begin
          t.pending <- Buffer.to_bytes t.outq;
          Buffer.clear t.outq;
          t.pos <- 0;
          go ()
        end
        else if t.phase = Finishing then close t
      in
      go ()
    end

let expire t ~now =
  match t.deadline with
  | Some d when t.phase <> Closed && now >= d ->
    close t
      ~diag:
        (Diag.makef ~subject:t.peer_label Diag.Deadline_exceeded
           "session closed: idle past its deadline");
    true
  | _ -> false

let finish t =
  if t.phase <> Closed then begin
    if t.phase = Active then t.phase <- Draining;
    while runnable t do
      step t
    done;
    (* the client may be gone; a blocking flush classifies the failure
       instead of raising, and close is unconditional *)
    Fdx.set_block t.sock;
    flush t;
    close t
  end
