(** Minimal JSON for the NDJSON job protocol.

    The serving engine speaks one JSON object per line; this module is
    the whole dependency — a small recursive-descent parser and a
    deterministic printer, no external library.  It covers the full
    scalar/array/object grammar of RFC 8259 with two deliberate
    simplifications: numbers are always [float]s (the protocol's
    integers are small and exact in a double), and [\u] escapes outside
    the BMP-ASCII range are passed through byte-wise rather than
    transcoded ([.bench] payloads are plain ASCII). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** insertion order preserved *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  The error names the byte offset. *)

val to_string : t -> string
(** Compact (no whitespace), fields in the order given.  Numbers print
    via [%.12g] — lossless for the protocol's rounded metrics — so equal
    values always render to equal strings. *)

(** Accessors: total functions returning [option] so job parsing can
    distinguish "absent" from "wrong type" at its own granularity. *)

val member : string -> t -> t option
(** Field of an object ([None] on non-objects too). *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] with integral value only. *)

val to_str : t -> string option
val to_bool : t -> bool option

val obj_keys : t -> string list
(** Keys of an object in order, [] for non-objects. *)
