(** The NDJSON stream front end of the engine.

    [pops serve] speaks newline-delimited JSON over a pipe or socketpair:
    one request object per input line, one result object per output line,
    results in submission order, flushed as each batch completes, and an
    optional summary object at end of stream.

    Batching is adaptive: the intake loop blocks for the first request,
    then drains whatever further lines are {e already available} (its
    own buffer plus a zero-timeout poll of the descriptor) up to the
    engine's window.  A client that streams jobs gets window-sized
    batches and full pool fan-out; a client that sends one request and
    waits gets a batch of one and minimum latency — no flags, no
    timers.

    The protocol itself (decoding, batching, rendering, exit codes)
    lives in {!Session} and is shared with the socket {!Listener}, so
    the two transports return bit-identical result streams. *)

module Line_source : sig
  (** Buffered line reader over a raw descriptor, with a non-blocking
      probe.  [In_channel] cannot say whether bytes are already
      buffered, which is exactly what adaptive batching needs, so the
      server owns its buffering. *)

  type t

  val of_fd : Unix.file_descr -> t

  val next : ?deadline:float -> t -> [ `Line of string | `Eof | `Timeout ]
  (** Blocking read of the next line.  Blocks in [select]
      ({!Pops_util.Fdx.wait_readable}) until bytes arrive or the
      absolute [deadline] passes — never parks in [read] past the
      deadline.  A final unterminated line is returned as a line. *)

  val next_ready : t -> string option option
  (** Non-blocking: [Some (Some line)] when a full line is available
      without waiting, [Some None] at end of stream, [None] when a read
      would block. *)
end

val serve :
  Engine.t ->
  ?summary:bool ->
  ?idle_timeout:float ->
  ?log:(Pops_robust.Diag.t -> unit) ->
  Unix.file_descr ->
  out_channel ->
  int
(** Run the request loop until end of stream; returns the process exit
    code (0 — per-job failures are result lines, not server failures;
    see docs/serving.md).  [summary] (default true) appends the
    {!Engine.summary_json} line at shutdown.  [idle_timeout] (seconds)
    closes an idle stream through the same deadline path the socket
    listener uses: the timeout is treated as end of stream and a
    [deadline-exceeded] diagnostic goes to [log] (default: dropped). *)

val run_jobs_file :
  Engine.t -> ?summary:bool -> string -> out_channel -> int
(** Batch mode ([pops optimize --jobs FILE]): feed every line of the
    file through the engine in window-sized batches, print the result
    lines, and return the {e worst} per-job exit code (the PR 5
    contract: 3 internal > 2 invalid > 1 unmet/rejected > 0 ok).
    Blank lines and [#] comment lines are skipped.  [summary] defaults
    to false. *)
