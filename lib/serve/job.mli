(** Job requests and results of the NDJSON serving protocol.

    One request per line, one result line per request, in submission
    order.  The full schema is documented in [docs/serving.md]; this
    module owns the decoding of a parsed {!Json.t} into a typed job and
    the deterministic rendering of its result. *)

type source =
  | Inline of string  (** [.bench] text embedded in the request *)
  | File of string  (** path readable by the server process *)

type action =
  | Analyze  (** parse, validate, STA, power — no mutation *)
  | Optimize  (** the full timing-closure flow ({!Pops_flow.Flow}) *)
  | Health
      (** readiness probe: report engine/cache/pool state without
          touching a netlist ([source] is an empty [Inline]) *)

type t = {
  seq : int;  (** submission index, assigned by the intake loop *)
  id : string;  (** client handle echoed in the result; default [job-<seq>] *)
  tenant : string;  (** budget-accounting principal; default ["default"] *)
  source : source;
  action : action;
  tc_ps : float option;  (** absolute delay constraint, ps *)
  tc_ratio : float option;
      (** constraint as a multiple of the initial STA critical delay;
          used when [tc_ps] is absent (engine default 0.8) *)
  max_rounds : int option;
  k_paths : int option;
  vt_assign : bool;
      (** run the multi-Vt leakage pass after sizing (default false) *)
}

val of_json : seq:int -> Json.t -> (t, string) result
(** Decode a request object.  Unknown fields are rejected (a typo'd
    option silently ignored is a debugging trap); exactly one of
    ["bench"] / ["bench_file"] is required. *)

(** Results.  [status] is the job-level verdict; {!exit_of_status} maps
    it onto the PR 5 CLI exit contract (0 ok / 1 constraint unmet or
    rejected / 2 invalid input / 3 internal), and batch mode exits with
    the worst code over all jobs. *)

type status =
  | Ok_  (** met, nominal *)
  | Degraded  (** usable result, quality diagnostics attached *)
  | Unmet  (** ran to completion but the constraint is not met *)
  | Rejected  (** refused at admission (tenant budget) — never ran *)
  | Overloaded
      (** shed by the transport under load (bounded in-flight queue);
          never ran — the result carries a [retry_after_ms] metric *)
  | Invalid  (** malformed request or netlist *)
  | Failed  (** the job's task crashed; other jobs are unaffected *)

type result = {
  seq : int;
  id : string;
  tenant : string;
  status : status;
  cache : [ `Hit | `Miss | `None ];  (** parsed-netlist cache verdict *)
  metrics : (string * Json.t) list;  (** action-specific payload, ordered *)
  diags : Pops_robust.Diag.t list;
  ms : float;  (** wall-clock of the job's execution stage *)
}

val status_name : status -> string
val exit_of_status : status -> int

val to_json : times:bool -> result -> Json.t
(** The result line.  [times:false] omits the wall-clock field — the
    rendering is then a pure function of the job outcome, which is what
    the determinism suite and the cram tests compare. *)

val round3 : float -> float
(** Metric rounding (3 decimals) applied by the engine so result lines
    are compact and print identically across formatting paths. *)
