(** One supervised connection of the socket listener — and the protocol
    helpers every NDJSON transport shares.

    A session owns exactly the state of its connection: a line buffer, a
    bounded queue of decoded-but-unrun jobs, an outgoing byte backlog,
    and an idle deadline.  The {!Listener} drives it from a single
    select loop; nothing a session does — a malformed frame, a client
    that disconnects mid-request, an armed [net.*] fault — can degrade
    anything but the session itself.  Every abnormal closure is reported
    through the session's log callback as a typed {!Pops_robust.Diag.t},
    in the deterministic order the loop processed it.

    The protocol helpers ({!decode}, {!run_items}, {!render}, ...) are
    the single implementation used by both this module and the stdio
    {!Server}, so the two transports cannot drift. *)

(** {1 Shared protocol helpers} *)

type item = (Job.t, int * string) result
(** One intake slot: a decoded job, or [(seq, error)] for a line that
    failed JSON or job decoding — either way the slot renders exactly
    one result line in sequence position. *)

val skippable : string -> bool
(** Blank lines and [#] comments — skipped without consuming a seq. *)

val decode : seq:int -> string -> item

val bad_line_result : seq:int -> string -> Job.result

val overloaded_result : retry_after_ms:int -> item -> Job.result
(** The typed load-shed response for an intake slot: status
    [overloaded], exit 1, a [retry_after_ms] metric and an
    {!Pops_robust.Diag.Overloaded} diagnostic.  Echoes the decoded
    job's [id]/[tenant] when the line parsed; the job never reaches
    the engine. *)

val run_items : Engine.t -> item list -> Job.result list
(** Run one batch: good jobs go through the engine together, bad lines
    become [invalid] results, and the merged output is in submission
    order. *)

val render : Engine.t -> Job.result -> string
(** One result line (newline-terminated), honouring the engine's
    [times] configuration. *)

val worst_exit : Job.result list -> int

(** {1 Sessions} *)

type config = {
  queue_limit : int;
      (** max decoded jobs waiting to run; further frames are shed with
          {!overloaded_result} instead of stalling silently *)
  idle_timeout : float option;
      (** seconds of inactivity (no bytes read, no write progress)
          before the session is closed with a
          {!Pops_robust.Diag.Deadline_exceeded} diagnostic *)
  retry_after_ms : int;  (** hint carried by shed responses *)
  summary : bool;
      (** append the session-local summary line
          ([{"summary":true,"jobs":N,"shed":K,"worst_exit":E}]) before
          a clean close *)
}

val default_config : config
(** queue limit 256, no idle timeout, retry hint 1000 ms, summary on. *)

type t

val create :
  id:int -> peer:string -> log:(Pops_robust.Diag.t -> unit) ->
  config:config -> Engine.t -> Unix.file_descr -> t
(** Takes ownership of the (socket) descriptor and switches it to
    non-blocking mode.  [peer] labels the session's diagnostics. *)

val fd : t -> Unix.file_descr
val peer : t -> string
val closed : t -> bool

val wants_read : t -> bool
val wants_write : t -> bool
(** Which select sets the session belongs in right now. *)

val deadline : t -> float option
(** The absolute instant at which {!expire} would close the session;
    the listener blocks in select no longer than the nearest one. *)

val handle_readable : t -> unit
(** Pull available bytes, decode complete lines into the queue (shedding
    beyond [queue_limit]), note EOF.  [net.read] and [net.stall] fault
    points fire here. *)

val step : t -> unit
(** Run at most one engine window of queued jobs and render the results
    into the outgoing backlog.  After EOF, the last step appends the
    summary line and moves the session to flush-then-close. *)

val runnable : t -> bool
(** Does {!step} have work to do? *)

val flush : t -> unit
(** Non-blocking write of the outgoing backlog.  [net.write] fires
    here; a vanished client closes only this session. *)

val expire : t -> now:float -> bool
(** Close the session if its deadline has passed (deadline-exceeded
    diagnostic); returns whether it did. *)

val finish : t -> unit
(** Drain mode: run {e all} queued jobs (each still under the engine's
    per-job budgets), append the summary, flush blockingly, close. *)

val close : ?diag:Pops_robust.Diag.t -> t -> unit
(** Close the descriptor (idempotent).  [diag] marks an abnormal cause
    and is re-emitted through the log callback. *)
