module Netlist = Pops_netlist.Netlist
module Timing = Pops_sta.Timing
module NPower = Pops_sta.Power
module Flow = Pops_flow.Flow
module Bounds = Pops_core.Bounds
module Library = Pops_cell.Library
module Budget = Pops_robust.Budget
module Diag = Pops_robust.Diag
module Outcome = Pops_robust.Outcome
module Pool = Pops_util.Pool

type config = {
  window : int;
  tenant_sweeps : int option;
  job_sweeps : int option;
  job_wall_ms : float option;
  netlist_cache : int;
  bounds_cache : int;
  out_load : float option;
  default_tc_ratio : float;
  default_max_rounds : int;
  times : bool;
}

let default_config =
  {
    window = 16;
    tenant_sweeps = None;
    job_sweeps = None;
    job_wall_ms = None;
    netlist_cache = 64;
    bounds_cache = Bounds.default_cache_capacity;
    out_load = None;
    default_tc_ratio = 0.8;
    default_max_rounds = 20;
    times = true;
  }

type tenant = {
  budget : Budget.t;  (* aggregate sweep account, spent at batch close *)
  mutable jobs : int;
  mutable rejected : int;
}

type counters = {
  mutable ok : int;
  mutable degraded : int;
  mutable unmet : int;
  mutable rejected : int;
  mutable invalid : int;
  mutable failed : int;
}

type t = {
  config : config;
  lib : Library.t;
  cache : Cache.t;
  tenants : (string, tenant) Hashtbl.t;
  counters : counters;
  mutable jobs_run : int;
}

let create ?(config = default_config) tech =
  if config.window < 1 then invalid_arg "Engine.create: window must be >= 1";
  Bounds.set_cache_capacity config.bounds_cache;
  {
    config;
    lib = Library.make tech;
    cache = Cache.create ~capacity:config.netlist_cache ?out_load:config.out_load tech;
    tenants = Hashtbl.create 16;
    counters = { ok = 0; degraded = 0; unmet = 0; rejected = 0; invalid = 0; failed = 0 };
    jobs_run = 0;
  }

let config t = t.config
let jobs_run t = t.jobs_run

(* ------------------------------------------------------------------ *)
(* intake: sequential, in submission order — every decision here       *)
(* (admission, budget reservation, cache verdicts) is deterministic    *)
(* in the job stream                                                   *)
(* ------------------------------------------------------------------ *)

type prepared =
  | Ready of {
      job : Job.t;
      nl : Netlist.t;  (* the job's private copy *)
      names : Pops_netlist.Bench_io.names;
      parse_diags : Diag.t list;
      cache : Cache.verdict;
      budget : Budget.t;  (* per-job; sweeps read back at batch close *)
      tenant : tenant;
    }
  | Done of Job.result  (* decided at intake: rejected / invalid *)

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
    let tn =
      { budget = Budget.create ?sweeps:t.config.tenant_sweeps ();
        jobs = 0; rejected = 0 }
    in
    Hashtbl.add t.tenants name tn;
    tn

(* the tenant's remaining sweep allowance, [None] when uncapped (the
   max_int default only survives the round trip when there is no cap) *)
let tenant_remaining tn =
  let r = Budget.remaining_sweeps tn.budget ~default:max_int in
  if r = max_int then None else Some r

let job_budget t tn =
  let sweeps =
    match (t.config.job_sweeps, tenant_remaining tn) with
    | None, None -> None
    | (Some _ as s), None | None, (Some _ as s) -> s
    | Some a, Some b -> Some (min a b)
  in
  Budget.create ?wall_ms:t.config.job_wall_ms ?sweeps ()

let intake_result (job : Job.t) status ?(cache = `None) diags =
  {
    Job.seq = job.Job.seq;
    id = job.Job.id;
    tenant = job.Job.tenant;
    status;
    cache;
    metrics = [];
    diags;
    ms = 0.;
  }

let status_of_blocking_diag d =
  match Diag.classify d.Diag.code with
  | `Invalid_input -> Job.Invalid
  | `Constraint -> Job.Unmet
  | `Degradation | `Internal -> Job.Failed

let source_text (job : Job.t) =
  match job.Job.source with
  | Job.Inline text -> Ok text
  | Job.File path -> (
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> Ok text
    | exception Sys_error e ->
      Error (Diag.makef Diag.Invalid_input "cannot read netlist file: %s" e))

let lru_stats_json (s : Pops_util.Lru.stats) =
  Json.Obj
    [ ("hits", Json.Num (float_of_int s.Pops_util.Lru.hits));
      ("misses", Json.Num (float_of_int s.Pops_util.Lru.misses));
      ("evictions", Json.Num (float_of_int s.Pops_util.Lru.evictions));
      ("length", Json.Num (float_of_int s.Pops_util.Lru.length)) ]

(* the readiness probe: engine/cache/pool state, served at intake so it
   can never be starved by a tenant budget or a crashed job — a health
   line is a pure function of the engine state at its stream position *)
let health_metrics t =
  [ ("health", Json.Bool true);
    ("jobs", Json.Num (float_of_int t.jobs_run));
    ("window", Json.Num (float_of_int t.config.window));
    ("domains", Json.Num (float_of_int (Pool.default_size ())));
    ("netlist_cache", lru_stats_json (Cache.stats t.cache));
    ("bounds_cache", lru_stats_json (Bounds.cache_stats ())) ]

let admit t (job : Job.t) =
  if job.Job.action = Job.Health then
    Done
      { Job.seq = job.Job.seq; id = job.Job.id; tenant = job.Job.tenant;
        status = Job.Ok_; cache = `None; metrics = health_metrics t;
        diags = []; ms = 0. }
  else
  let tn = tenant_of t job.Job.tenant in
  if Budget.exhausted tn.budget then begin
    tn.rejected <- tn.rejected + 1;
    intake_result job Job.Rejected
      [ Diag.makef ~subject:job.Job.tenant Diag.Admission_rejected
          "job %s refused: tenant %s spent its %d-sweep serve budget" job.Job.id
          job.Job.tenant
          (Budget.sweeps_spent tn.budget) ]
    |> fun r -> Done r
  end
  else
    match source_text job with
    | Error d -> Done (intake_result job Job.Invalid [ d ])
    | Ok text -> (
      let parsed, verdict = Cache.fetch t.cache text in
      match parsed with
      | Error d ->
        Done
          (intake_result job (status_of_blocking_diag d)
             ~cache:(verdict :> [ `Hit | `Miss | `None ])
             [ d ])
      | Ok (nl, names, parse_diags) ->
        tn.jobs <- tn.jobs + 1;
        Ready
          { job; nl; names; parse_diags; cache = verdict;
            budget = job_budget t tn; tenant = tn })

(* ------------------------------------------------------------------ *)
(* execution: one contained pool task per job                          *)
(* ------------------------------------------------------------------ *)

let name_fn names =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, id) -> Hashtbl.replace tbl id name) names;
  fun id ->
    match Hashtbl.find_opt tbl id with
    | Some n -> n
    | None -> Printf.sprintf "n%d" id

let num3 x = Json.Num (Job.round3 x)

let shape_metrics nl =
  [ ("gates", Json.Num (float_of_int (Netlist.gate_count nl)));
    ("inputs", Json.Num (float_of_int (Netlist.input_count nl)));
    ("outputs", Json.Num (float_of_int (List.length (Netlist.outputs nl))));
    ("depth", Json.Num (float_of_int (Netlist.depth nl))) ]

let has_warnings diags =
  List.exists (fun d -> d.Diag.severity <> Diag.Info) diags

let exec_analyze t (job : Job.t) nl parse_diags =
  let timing = Timing.analyze ~lib:t.lib nl in
  let delay = Timing.critical_delay timing in
  let power = NPower.analyze ~lib:t.lib nl in
  let metrics =
    shape_metrics nl
    @ [ ("delay_ps", num3 delay); ("area_um", num3 power.NPower.area);
        ("power_uw", num3 power.NPower.dynamic_uw) ]
    @
    match job.Job.tc_ps with
    | Some tc -> [ ("tc_ps", num3 tc); ("met", Json.Bool (delay <= tc)) ]
    | None -> []
  in
  let status =
    match job.Job.tc_ps with
    | Some tc when delay > tc -> Job.Unmet
    | _ -> if has_warnings parse_diags then Job.Degraded else Job.Ok_
  in
  (status, metrics, parse_diags)

let flow_outcome_name = function
  | Flow.Met -> "met"
  | Flow.No_progress -> "no-progress"
  | Flow.Budget_exhausted -> "budget-exhausted"

let flow_metrics ~tc (r : Flow.report) =
  [ ("tc_ps", num3 tc); ("initial_delay_ps", num3 r.Flow.initial_delay);
    ("final_delay_ps", num3 r.Flow.final_delay);
    ("initial_area_um", num3 r.Flow.initial_area);
    ("final_area_um", num3 r.Flow.final_area);
    ("rounds", Json.Num (float_of_int (List.length r.Flow.iterations)));
    ("buffers", Json.Num (float_of_int r.Flow.buffers_added));
    ("rewrites", Json.Num (float_of_int r.Flow.rewrites));
    ("flow", Json.Str (flow_outcome_name r.Flow.outcome));
    ("met", Json.Bool (r.Flow.outcome = Flow.Met));
    ("equivalence", Json.Bool (Result.is_ok r.Flow.equivalence)) ]
  @
  (* only when the job opted into the pass, so pre-existing result
     lines stay byte-identical *)
  match r.Flow.vt with
  | None -> []
  | Some v ->
    [ ("leakage_before_uw", num3 v.Pops_flow.Vt_assign.leakage_before);
      ("leakage_after_uw", num3 v.Pops_flow.Vt_assign.leakage_after);
      ("vt_accepted", Json.Num (float_of_int v.Pops_flow.Vt_assign.accepted));
      ("vt_rejected", Json.Num (float_of_int v.Pops_flow.Vt_assign.rejected)) ]

let exec_optimize t (job : Job.t) ~budget nl names parse_diags =
  let d0 = Timing.critical_delay (Timing.analyze ~lib:t.lib nl) in
  let tc =
    match job.Job.tc_ps with
    | Some tc -> tc
    | None ->
      Option.value job.Job.tc_ratio ~default:t.config.default_tc_ratio *. d0
  in
  let max_rounds =
    Option.value job.Job.max_rounds ~default:t.config.default_max_rounds
  in
  let outcome =
    Flow.optimize_o ~budget ~max_rounds ?k_paths:job.Job.k_paths
      ~vt_assign:job.Job.vt_assign ~name:(name_fn names) ~lib:t.lib ~tc nl
  in
  match outcome with
  | Outcome.Failed d ->
    (status_of_blocking_diag d, shape_metrics nl, parse_diags @ [ d ])
  | Outcome.Exact r ->
    let status = if has_warnings parse_diags then Job.Degraded else Job.Ok_ in
    (status, shape_metrics nl @ flow_metrics ~tc r, parse_diags)
  | Outcome.Degraded (r, diags) ->
    let status = if r.Flow.outcome = Flow.Met then Job.Degraded else Job.Unmet in
    (status, shape_metrics nl @ flow_metrics ~tc r, parse_diags @ diags)

let exec t prepared =
  match prepared with
  | Done result -> result
  | Ready r ->
    let t0 = Unix.gettimeofday () in
    let status, metrics, diags =
      match r.job.Job.action with
      | Job.Analyze -> exec_analyze t r.job r.nl r.parse_diags
      | Job.Optimize ->
        exec_optimize t r.job ~budget:r.budget r.nl r.names r.parse_diags
      | Job.Health ->
        (* health probes are answered at intake, never prepared *)
        (Job.Ok_, health_metrics t, [])
    in
    {
      Job.seq = r.job.Job.seq;
      id = r.job.Job.id;
      tenant = r.job.Job.tenant;
      status;
      cache = (r.cache :> [ `Hit | `Miss | `None ]);
      metrics;
      diags;
      ms = 1000. *. (Unix.gettimeofday () -. t0);
    }

(* ------------------------------------------------------------------ *)
(* batch close: containment unwrap + deterministic accounting          *)
(* ------------------------------------------------------------------ *)

let crash_result prepared d task_diags =
  match prepared with
  | Done r -> r (* unreachable: trivial tasks do not crash *)
  | Ready r ->
    {
      Job.seq = r.job.Job.seq;
      id = r.job.Job.id;
      tenant = r.job.Job.tenant;
      status = Job.Failed;
      cache = (r.cache :> [ `Hit | `Miss | `None ]);
      metrics = [];
      diags = task_diags @ [ d ];
      ms = 0.;
    }

let count t (r : Job.result) =
  t.jobs_run <- t.jobs_run + 1;
  let c = t.counters in
  match r.Job.status with
  | Job.Ok_ -> c.ok <- c.ok + 1
  | Job.Degraded -> c.degraded <- c.degraded + 1
  | Job.Unmet -> c.unmet <- c.unmet + 1
  | Job.Rejected -> c.rejected <- c.rejected + 1
  (* transport-level sheds never pass through the engine; counted with
     rejections if one ever does *)
  | Job.Overloaded -> c.rejected <- c.rejected + 1
  | Job.Invalid -> c.invalid <- c.invalid + 1
  | Job.Failed -> c.failed <- c.failed + 1

let run_batch t jobs =
  let prepared = List.map (admit t) jobs in
  let executed = Pool.map_list_contained (exec t) prepared in
  let results =
    List.map2
      (fun prep (res, task_diags) ->
        match res with
        | Ok (r : Job.result) ->
          if task_diags = [] then r
          else { r with Job.diags = r.Job.diags @ task_diags }
        | Error d -> crash_result prep d task_diags)
      prepared executed
  in
  (* charge actual usage to the tenants, in submission order — the only
     cross-job state, settled at a deterministic point *)
  List.iter
    (function
      | Ready r -> Budget.spend r.tenant.budget (Budget.sweeps_spent r.budget)
      | Done _ -> ())
    prepared;
  List.iter (count t) results;
  results

let run_job t job =
  match run_batch t [ job ] with
  | [ r ] -> r
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* summary                                                             *)
(* ------------------------------------------------------------------ *)

let summary_json t =
  let c = t.counters in
  let tenants =
    Hashtbl.fold (fun name tn acc -> (name, tn) :: acc) t.tenants []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, tn) ->
           Json.Obj
             [ ("tenant", Json.Str name);
               ("jobs", Json.Num (float_of_int tn.jobs));
               ("rejected", Json.Num (float_of_int tn.rejected));
               ("sweeps", Json.Num (float_of_int (Budget.sweeps_spent tn.budget))) ])
  in
  Json.Obj
    [ ("summary", Json.Bool true);
      ("jobs", Json.Num (float_of_int t.jobs_run));
      ("ok", Json.Num (float_of_int c.ok));
      ("degraded", Json.Num (float_of_int c.degraded));
      ("unmet", Json.Num (float_of_int c.unmet));
      ("rejected", Json.Num (float_of_int c.rejected));
      ("invalid", Json.Num (float_of_int c.invalid));
      ("failed", Json.Num (float_of_int c.failed));
      ("netlist_cache", lru_stats_json (Cache.stats t.cache));
      ("bounds_cache", lru_stats_json (Bounds.cache_stats ()));
      ("tenants", Json.Arr tenants) ]
