module Line_source = struct
  type t = {
    fd : Unix.file_descr;
    buf : Buffer.t;
    mutable scan_from : int;  (* no '\n' in buf before this offset *)
    mutable eof : bool;
  }

  let of_fd fd = { fd; buf = Buffer.create 4096; scan_from = 0; eof = false }

  let chunk = Bytes.create 65536

  (* take the first complete line out of the buffer, if any *)
  let pop_line t =
    let s = Buffer.contents t.buf in
    match String.index_from_opt s t.scan_from '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
      t.scan_from <- 0;
      (* tolerate CRLF clients *)
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | None ->
      t.scan_from <- String.length s;
      None

  let pop_residue t =
    if Buffer.length t.buf = 0 then None
    else begin
      let line = Buffer.contents t.buf in
      Buffer.clear t.buf;
      t.scan_from <- 0;
      Some line
    end

  let refill t =
    match Unix.read t.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      t.eof <- true;
      false
    | n ->
      Buffer.add_subbytes t.buf chunk 0 n;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true

  let rec next t =
    match pop_line t with
    | Some _ as line -> line
    | None ->
      if t.eof then pop_residue t
      else if refill t then next t
      else pop_residue t

  let readable_now fd =
    match Unix.select [ fd ] [] [] 0. with
    | [ _ ], _, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

  let rec next_ready t =
    match pop_line t with
    | Some line -> Some (Some line)
    | None ->
      if t.eof then Some (pop_residue t)
      else if readable_now t.fd then
        if refill t then next_ready t else Some (pop_residue t)
      else None
end

(* ------------------------------------------------------------------ *)

(* a line that fails JSON or job decoding still yields a result line in
   sequence position — the stream never skips or reorders *)
let decode ~seq line =
  match Json.parse line with
  | Error e -> Error (Printf.sprintf "not a JSON object: %s" e)
  | Ok json -> Job.of_json ~seq json

let bad_line_result ~seq error =
  {
    Job.seq;
    id = Printf.sprintf "job-%d" seq;
    tenant = "default";
    status = Job.Invalid;
    cache = `None;
    metrics = [ ("error", Json.Str error) ];
    diags = [];
    ms = 0.;
  }

let skippable line =
  let line = String.trim line in
  line = "" || line.[0] = '#'

(* run one batch of decoded items: good jobs go through the engine
   together, bad lines become Invalid results, and the merged output is
   in submission order *)
let run_items engine items =
  let jobs =
    List.filter_map (function Ok job -> Some job | Error _ -> None) items
  in
  let results = Engine.run_batch engine jobs in
  let rec merge items results =
    match (items, results) with
    | [], [] -> []
    | Error (seq, e) :: items, results ->
      bad_line_result ~seq e :: merge items results
    | Ok _ :: items, r :: results -> r :: merge items results
    | Ok _ :: _, [] | [], _ :: _ -> assert false
  in
  merge items results

let emit engine oc results =
  let times = (Engine.config engine).Engine.times in
  List.iter
    (fun r -> output_string oc (Json.to_string (Job.to_json ~times r) ^ "\n"))
    results;
  flush oc

let worst_exit results =
  List.fold_left
    (fun acc r -> max acc (Job.exit_of_status r.Job.status))
    0 results

(* ------------------------------------------------------------------ *)

let serve engine ?(summary = true) fd oc =
  let window = (Engine.config engine).Engine.window in
  let src = Line_source.of_fd fd in
  let seq = ref 0 in
  let decode_next line =
    let s = !seq in
    incr seq;
    match decode ~seq:s line with Ok j -> Ok j | Error e -> Error (s, e)
  in
  (* one batch: block for a first line, then drain what is already
     pending up to the window *)
  let rec fill acc n =
    if n >= window then List.rev acc
    else
      match Line_source.next_ready src with
      | Some (Some line) when skippable line -> fill acc n
      | Some (Some line) -> fill (decode_next line :: acc) (n + 1)
      | Some None | None -> List.rev acc
  in
  let rec loop () =
    match Line_source.next src with
    | None -> ()
    | Some line when skippable line -> loop ()
    | Some line ->
      let items = fill [ decode_next line ] 1 in
      emit engine oc (run_items engine items);
      loop ()
  in
  loop ();
  if summary then begin
    output_string oc (Json.to_string (Engine.summary_json engine) ^ "\n");
    flush oc
  end;
  0

let run_jobs_file engine ?(summary = false) path oc =
  let window = (Engine.config engine).Engine.window in
  let lines = In_channel.with_open_bin path In_channel.input_lines in
  let items =
    List.filteri (fun _ line -> not (skippable line)) lines
    |> List.mapi (fun seq line ->
           match decode ~seq line with Ok j -> Ok j | Error e -> Error (seq, e))
  in
  let rec batches items =
    match items with
    | [] -> []
    | _ ->
      let rec split n = function
        | x :: rest when n < window ->
          let taken, rest = split (n + 1) rest in
          (x :: taken, rest)
        | rest -> ([], rest)
      in
      let batch, rest = split 0 items in
      batch :: batches rest
  in
  let code =
    List.fold_left
      (fun acc batch ->
        let results = run_items engine batch in
        emit engine oc results;
        max acc (worst_exit results))
      0 (batches items)
  in
  if summary then begin
    output_string oc (Json.to_string (Engine.summary_json engine) ^ "\n");
    flush oc
  end;
  code
