module Diag = Pops_robust.Diag
module Fdx = Pops_util.Fdx

module Line_source = struct
  type t = {
    fd : Unix.file_descr;
    buf : Buffer.t;
    mutable scan_from : int;  (* no '\n' in buf before this offset *)
    mutable eof : bool;
  }

  let of_fd fd = { fd; buf = Buffer.create 4096; scan_from = 0; eof = false }

  let chunk = Bytes.create 65536

  (* take the first complete line out of the buffer, if any *)
  let pop_line t =
    let s = Buffer.contents t.buf in
    match String.index_from_opt s t.scan_from '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
      t.scan_from <- 0;
      (* tolerate CRLF clients *)
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | None ->
      t.scan_from <- String.length s;
      None

  let pop_residue t =
    if Buffer.length t.buf = 0 then None
    else begin
      let line = Buffer.contents t.buf in
      Buffer.clear t.buf;
      t.scan_from <- 0;
      Some line
    end

  (* block in select (honouring [deadline]) before the blocking read, so
     an idle stream times out instead of parking in [Unix.read] forever *)
  let refill ?deadline t =
    match Fdx.wait_readable ?deadline t.fd with
    | `Timeout -> `Timeout
    | `Ready -> (
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        t.eof <- true;
        `Eof
      | n ->
        Buffer.add_subbytes t.buf chunk 0 n;
        `Bytes
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Bytes)

  let residue_or_eof t =
    match pop_residue t with Some line -> `Line line | None -> `Eof

  let rec next ?deadline t =
    match pop_line t with
    | Some line -> `Line line
    | None ->
      if t.eof then residue_or_eof t
      else (
        match refill ?deadline t with
        | `Bytes -> next ?deadline t
        | `Eof -> residue_or_eof t
        | `Timeout -> `Timeout)

  let rec next_ready t =
    match pop_line t with
    | Some line -> Some (Some line)
    | None ->
      if t.eof then Some (pop_residue t)
      else if Fdx.readable_now t.fd then (
        match refill t with
        | `Bytes -> next_ready t
        | `Eof -> Some (pop_residue t)
        | `Timeout -> None)
      else None
end

(* ------------------------------------------------------------------ *)

let emit engine oc results =
  List.iter (fun r -> output_string oc (Session.render engine r)) results;
  flush oc

let serve engine ?(summary = true) ?idle_timeout ?(log = fun _ -> ()) fd oc =
  let window = (Engine.config engine).Engine.window in
  let src = Line_source.of_fd fd in
  let seq = ref 0 in
  let decode_next line =
    let s = !seq in
    incr seq;
    Session.decode ~seq:s line
  in
  let deadline () = Option.map (fun s -> Fdx.now () +. s) idle_timeout in
  (* one batch: block for a first line, then drain what is already
     pending up to the window *)
  let rec fill acc n =
    if n >= window then List.rev acc
    else
      match Line_source.next_ready src with
      | Some (Some line) when Session.skippable line -> fill acc n
      | Some (Some line) -> fill (decode_next line :: acc) (n + 1)
      | Some None | None -> List.rev acc
  in
  let rec loop () =
    match Line_source.next ?deadline:(deadline ()) src with
    | `Eof -> ()
    | `Timeout ->
      (* same contract as a socket session: an idle stream is closed
         with a deadline diagnostic, not an error exit *)
      log
        (Diag.makef ~subject:"stdin" Diag.Deadline_exceeded
           "stream idle past the deadline; treating as end of stream")
    | `Line line when Session.skippable line -> loop ()
    | `Line line ->
      let items = fill [ decode_next line ] 1 in
      emit engine oc (Session.run_items engine items);
      loop ()
  in
  loop ();
  if summary then begin
    output_string oc (Json.to_string (Engine.summary_json engine) ^ "\n");
    flush oc
  end;
  0

let run_jobs_file engine ?(summary = false) path oc =
  let window = (Engine.config engine).Engine.window in
  let lines = In_channel.with_open_bin path In_channel.input_lines in
  let items =
    List.filteri (fun _ line -> not (Session.skippable line)) lines
    |> List.mapi (fun seq line -> Session.decode ~seq line)
  in
  let rec batches items =
    match items with
    | [] -> []
    | _ ->
      let rec split n = function
        | x :: rest when n < window ->
          let taken, rest = split (n + 1) rest in
          (x :: taken, rest)
        | rest -> ([], rest)
      in
      let batch, rest = split 0 items in
      batch :: batches rest
  in
  let code =
    List.fold_left
      (fun acc batch ->
        let results = Session.run_items engine batch in
        emit engine oc results;
        max acc (Session.worst_exit results))
      0 (batches items)
  in
  if summary then begin
    output_string oc (Json.to_string (Engine.summary_json engine) ^ "\n");
    flush oc
  end;
  code
