type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

(* ------------------------------------------------------------------ *)
(* parser: recursive descent over a string with a mutable cursor       *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c.pos (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "expected %s" word)

let parse_string_body c =
  (* cursor sits just past the opening quote *)
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents b
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail c.pos "unterminated escape"
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.s then fail c.pos "truncated \\u escape";
          let hex = String.sub c.s c.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail c.pos "bad \\u escape"
          in
          c.pos <- c.pos + 4;
          (* UTF-8 encode the code point (surrogate pairs not recombined:
             the protocol's payloads are ASCII) *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail (c.pos - 1) "unknown escape");
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail start ("bad number " ^ text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        expect c '"';
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> fail c.pos "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c.pos "expected ',' or ']'"
      in
      Arr (elements [])
    end
  | Some '"' ->
    advance c;
    Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character '%c'" ch)

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "byte %d: trailing garbage" c.pos)
    else Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "byte %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* printer                                                             *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s -> escape_string b s
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          go x)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e9 -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let obj_keys = function Obj fields -> List.map fst fields | _ -> []
