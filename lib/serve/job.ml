module Diag = Pops_robust.Diag

type source = Inline of string | File of string
type action = Analyze | Optimize | Health

type t = {
  seq : int;
  id : string;
  tenant : string;
  source : source;
  action : action;
  tc_ps : float option;
  tc_ratio : float option;
  max_rounds : int option;
  k_paths : int option;
  vt_assign : bool;
}

let known_fields =
  [ "id"; "tenant"; "bench"; "bench_file"; "action"; "tc_ps"; "tc_ratio";
    "max_rounds"; "k_paths"; "vt_assign" ]

let of_json ~seq json =
  match json with
  | Json.Obj _ -> (
    match
      List.find_opt (fun k -> not (List.mem k known_fields)) (Json.obj_keys json)
    with
    | Some k -> Error (Printf.sprintf "unknown field %S" k)
    | None ->
      let str k = Option.bind (Json.member k json) Json.to_str in
      let num k = Option.bind (Json.member k json) Json.to_float in
      let int k = Option.bind (Json.member k json) Json.to_int in
      let action =
        match Json.member "action" json with
        | None -> Ok Optimize
        | Some (Json.Str "analyze") -> Ok Analyze
        | Some (Json.Str "optimize") -> Ok Optimize
        | Some (Json.Str "health") -> Ok Health
        | Some (Json.Str s) ->
          Error (Printf.sprintf "unknown action %S (analyze | optimize | health)" s)
        | Some _ -> Error "\"action\" must be a string"
      in
      let source =
        match (str "bench", str "bench_file") with
        | Some text, None -> Ok (Inline text)
        | None, Some file -> Ok (File file)
        | Some _, Some _ -> Error "give either \"bench\" or \"bench_file\", not both"
        | None, None ->
          if Json.member "bench" json <> None || Json.member "bench_file" json <> None
          then Error "\"bench\" / \"bench_file\" must be strings"
          else if action = Ok Health then
            (* a health probe carries no netlist *)
            Ok (Inline "")
          else Error "a netlist is required: \"bench\" or \"bench_file\""
      in
      match (source, action) with
      | Error e, _ | _, Error e -> Error e
      | Ok source, Ok action ->
        Ok
          {
            seq;
            id = Option.value (str "id") ~default:(Printf.sprintf "job-%d" seq);
            tenant = Option.value (str "tenant") ~default:"default";
            source;
            action;
            tc_ps = num "tc_ps";
            tc_ratio = num "tc_ratio";
            max_rounds = int "max_rounds";
            k_paths = int "k_paths";
            vt_assign =
              Option.value
                (Option.bind (Json.member "vt_assign" json) Json.to_bool)
                ~default:false;
          })
  | _ -> Error "a job request must be a JSON object"

type status = Ok_ | Degraded | Unmet | Rejected | Overloaded | Invalid | Failed

type result = {
  seq : int;
  id : string;
  tenant : string;
  status : status;
  cache : [ `Hit | `Miss | `None ];
  metrics : (string * Json.t) list;
  diags : Diag.t list;
  ms : float;
}

let status_name = function
  | Ok_ -> "ok"
  | Degraded -> "degraded"
  | Unmet -> "unmet"
  | Rejected -> "rejected"
  | Overloaded -> "overloaded"
  | Invalid -> "invalid"
  | Failed -> "failed"

(* the PR 5 contract: 0 success (possibly degraded), 1 constraint (an
   admission rejection or a load-shed is a resource constraint), 2
   invalid input, 3 internal error *)
let exit_of_status = function
  | Ok_ | Degraded -> 0
  | Unmet | Rejected | Overloaded -> 1
  | Invalid -> 2
  | Failed -> 3

let round3 x =
  if Float.is_finite x then Float.round (x *. 1000.) /. 1000. else x

let to_json ~times r =
  let base =
    [ ("id", Json.Str r.id); ("tenant", Json.Str r.tenant);
      ("seq", Json.Num (float_of_int r.seq));
      ("status", Json.Str (status_name r.status));
      ("exit", Json.Num (float_of_int (exit_of_status r.status))) ]
  in
  let cache =
    match r.cache with
    | `Hit -> [ ("netlist_cache", Json.Str "hit") ]
    | `Miss -> [ ("netlist_cache", Json.Str "miss") ]
    | `None -> []
  in
  let diags =
    match r.diags with
    | [] -> []
    | ds -> [ ("diags", Json.Arr (List.map (fun d -> Json.Str (Diag.one_line d)) ds)) ]
  in
  let ms = if times then [ ("ms", Json.Num (round3 r.ms)) ] else [] in
  Json.Obj (base @ cache @ r.metrics @ diags @ ms)
