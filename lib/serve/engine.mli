(** The multi-tenant optimization job engine.

    A long-lived engine turns the one-netlist-per-process CLI into a
    service: batches of {!Job.t}s are admitted sequentially (per-tenant
    {!Pops_robust.Budget} accounting, parsed-netlist cache probes), then
    executed concurrently over the shared {!Pops_util.Pool} with the
    PR 5 contained-task machinery — a job that crashes (or is killed by
    an armed [POPS_FAULT] point) degrades to a [Failed] result line and
    cannot touch any other job.

    Determinism contract: with wall-clock caps disabled (the default),
    every {!Job.result} rendered with [times:false] is a pure function
    of the job stream — bit-identical whether the batch ran on 1 domain
    or N, in one batch or many, and identical to running each job alone
    in a fresh process with the same engine configuration.  The pieces
    that make this true: intake (admission, budget reservation, cache
    verdicts) is sequential in submission order; results are emitted in
    submission order; the caches are semantically transparent (a hit
    replays the cached computation's outcome, and the {!Pops_core.Bounds}
    LRU is keyed by path uids that are never shared across jobs); and
    the underlying flow is bit-identical at any domain count (PR 2).

    Tenant budgets are the one stateful coupling between jobs, and they
    are applied at {e batch} granularity: a job's sweep spend is charged
    to its tenant when its batch completes, so admission decisions are
    deterministic in the job stream and a tenant can overshoot its cap
    by at most one window of jobs.  One tenant exhausting its budget
    starves only itself: other tenants' admissions are untouched. *)

type config = {
  window : int;  (** max jobs fanned out per batch (≥ 1) *)
  tenant_sweeps : int option;
      (** aggregate solver-sweep budget per tenant; [None] = unlimited *)
  job_sweeps : int option;  (** per-job sweep cap *)
  job_wall_ms : float option;
      (** per-job wall-clock cap.  Protection against pathological
          inputs at the cost of determinism (a wall cap makes results
          timing-dependent); off by default. *)
  netlist_cache : int;  (** parsed-netlist LRU capacity *)
  bounds_cache : int;
      (** {!Pops_core.Bounds} memo capacity installed by {!create} *)
  out_load : float option;  (** [.bench] terminal load override, fF *)
  default_tc_ratio : float;
      (** [tc] when a job gives neither [tc_ps] nor [tc_ratio], as a
          multiple of the initial STA critical delay (0.8) *)
  default_max_rounds : int;  (** flow rounds when the job does not say (20) *)
  times : bool;  (** include wall-clock [ms] fields in result lines *)
}

val default_config : config
(** window 16, unlimited budgets, no wall caps, netlist cache 64,
    bounds cache {!Pops_core.Bounds.default_cache_capacity}, times on. *)

type t

val create : ?config:config -> Pops_process.Tech.t -> t
(** Also installs [config.bounds_cache] as the {!Pops_core.Bounds} memo
    capacity (that memo is process-global). *)

val config : t -> config

val run_batch : t -> Job.t list -> Job.result list
(** Admit, execute and account one batch (callers should respect
    [config.window]; the engine does not split oversized batches).
    Results are in submission order, one per job, always — rejection,
    invalid input and crashes are result lines, never exceptions.
    [Health] jobs are answered at intake (engine/cache/pool state) and
    can never be starved by a tenant budget or another job's crash. *)

val run_job : t -> Job.t -> Job.result
(** A batch of one. *)

val jobs_run : t -> int

val summary_json : t -> Json.t
(** The end-of-stream summary line: job counts by status, parsed-netlist
    and bounds-memo cache counters, per-tenant accounting (sorted by
    tenant name). *)
