(** Cross-request parsed-netlist cache.

    Serving repeated traffic, the dominant per-job fixed cost is
    re-parsing the same [.bench] text and re-deriving its topology.
    This cache keys a {e pristine} parsed netlist by the MD5 of the
    request's netlist text (plus the output-load parameter, which
    changes the parse result), and hands every job a deep
    {!Pops_netlist.Netlist.copy} — jobs mutate their copy freely while
    the pristine original, whose level/load caches and CSR snapshot were
    warmed once at insertion, is never touched.  Copies inherit the
    warmed level and load arrays, so a cache hit skips both the parse
    and the topology derivation.

    Parse {e failures} are cached too (bounded by the same LRU): a
    malformed netlist resubmitted by a retrying client costs one table
    probe, not one parse per retry.

    All operations are mutex-guarded; the engine calls {!fetch} from its
    sequential intake loop, so per-job hit/miss verdicts are
    deterministic in the job stream. *)

type t

type verdict = [ `Hit | `Miss ]

val create :
  capacity:int -> ?out_load:float -> Pops_process.Tech.t -> t
(** [out_load] is passed through to {!Pops_netlist.Bench_io.parse};
    it is part of every cache key. *)

val fetch :
  t -> string ->
  (Pops_netlist.Netlist.t * Pops_netlist.Bench_io.names * Pops_robust.Diag.t list,
   Pops_robust.Diag.t)
  result
  * verdict
(** [fetch t text] — the parse outcome for [text] (a private netlist
    copy plus the parse/validation diagnostics captured when the text
    was first parsed) and whether it was served from the cache. *)

val stats : t -> Pops_util.Lru.stats
val clear : t -> unit
(** Drop the entries, keep the counters. *)
