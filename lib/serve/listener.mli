(** The supervised socket front end: many concurrent NDJSON clients,
    one engine, one thread.

    A single select loop owns every descriptor: the listening socket, a
    self-pipe for drain wake-ups, and one {!Session} per accepted
    connection.  The loop blocks until a descriptor is ready or the
    nearest session deadline passes — it never spins — and runs queued
    jobs round-robin, one engine window per session per pass, so a
    firehose client cannot starve the others.

    Isolation contract: each session's result stream is bit-identical
    (with [times:false]) to running the same request lines through the
    stdio server against a fresh engine — intake order, sequence
    numbers and cache transparency are all per-session.  A malformed
    frame, a killed client, an exhausted deadline or an armed [net.*]
    fault point closes {e that session only}, re-emitting the typed
    diagnostic through the log callback in deterministic loop order;
    the listener keeps serving.

    Lifecycle: {!request_drain} (async-signal-safe; wired to
    SIGTERM/SIGINT by the CLI) makes {!run} stop accepting, unlink a
    Unix socket path, run every queued job to completion under the
    engine's per-job budgets, append each session's summary, flush, and
    return 0. *)

type address =
  | Unix_socket of string  (** filesystem path ([--socket PATH]) *)
  | Tcp of string * int  (** host, port ([--listen HOST:PORT]) *)

val address_name : address -> string

type config = {
  max_sessions : int;
      (** accepted-connection cap; at the cap the listener stops
          watching the accept descriptor (kernel-backlog backpressure)
          until a session closes *)
  session : Session.config;  (** applied to every accepted session *)
}

val default_config : config
(** 64 sessions, {!Session.default_config} per session. *)

type t

val create :
  ?config:config ->
  log:(Pops_robust.Diag.t -> unit) ->
  Engine.t ->
  address ->
  (t, string) result
(** Bind and listen.  A stale Unix socket file (the path is a socket
    {e and} a probe connect is refused) is silently removed and rebound;
    a live listener or a non-socket file at the path is an error.
    [log] receives every connection-level diagnostic (shed jobs,
    injected faults, deadline closures, I/O failures) in the
    deterministic order the loop observed them. *)

val address : t -> address
(** The bound address — a TCP request for port 0 reports the real
    kernel-assigned port. *)

val run : t -> int
(** The event loop; returns the process exit code (0) after a drain.
    Per-job and per-session failures are result lines and diagnostics,
    never listener exits. *)

val request_drain : t -> unit
(** Ask {!run} to drain and return.  One atomic store plus one
    self-pipe write: safe from a signal handler or another domain. *)
