module Netlist = Pops_netlist.Netlist
module Bench_io = Pops_netlist.Bench_io
module Diag = Pops_robust.Diag
module Outcome = Pops_robust.Outcome
module Lru = Pops_util.Lru

type verdict = [ `Hit | `Miss ]

type entry =
  | Parsed of Netlist.t * Bench_io.names * Diag.t list
      (** pristine — handed out only as copies *)
  | Malformed of Diag.t

type t = {
  tech : Pops_process.Tech.t;
  out_load : float option;
  lru : (string, entry) Lru.t;
  lock : Mutex.t;
}

let create ~capacity ?out_load tech =
  { tech; out_load; lru = Lru.create ~capacity (); lock = Mutex.create () }

(* the out_load parameter changes what a given text parses to, so it is
   part of the key; MD5 keeps keys fixed-size for arbitrarily large
   netlist payloads *)
let key t text =
  Digest.to_hex
    (Digest.string
       (match t.out_load with
       | None -> text
       | Some l -> Printf.sprintf "%h|" l ^ text))

let parse_entry t text =
  match Bench_io.parse_o t.tech ?out_load:t.out_load text with
  | Outcome.Exact (nl, names) ->
    ignore (Netlist.csr nl);
    Parsed (nl, names, [])
  | Outcome.Degraded ((nl, names), diags) ->
    ignore (Netlist.csr nl);
    Parsed (nl, names, diags)
  | Outcome.Failed d -> Malformed d

let result_of_entry = function
  | Parsed (nl, names, diags) ->
    (* the copy inherits the pristine's warmed level/load caches; the
       CSR snapshot itself is rebuilt per copy (it is synced in place
       and must not be shared across mutating owners) *)
    Ok (Netlist.copy nl, names, diags)
  | Malformed d -> Error d

let fetch t text =
  let k = key t text in
  Mutex.protect t.lock (fun () ->
      match Lru.find t.lru k with
      | Some entry -> (result_of_entry entry, `Hit)
      | None ->
        let entry = parse_entry t text in
        Lru.put t.lru k entry;
        (result_of_entry entry, `Miss))

let stats t = Mutex.protect t.lock (fun () -> Lru.stats t.lru)
let clear t = Mutex.protect t.lock (fun () -> Lru.clear t.lru)
