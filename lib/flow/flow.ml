module Netlist = Pops_netlist.Netlist
module Transform = Pops_netlist.Transform
module Logic = Pops_netlist.Logic
module Timing = Pops_sta.Timing
module Paths = Pops_sta.Paths
module Path = Pops_delay.Path
module Bounds = Pops_core.Bounds
module Sens = Pops_core.Sensitivity
module Buffers = Pops_core.Buffers
module Protocol = Pops_core.Protocol
module Diag = Pops_robust.Diag
module Watch = Pops_robust.Watch
module Budget = Pops_robust.Budget

type outcome = Met | No_progress | Budget_exhausted

type iteration = {
  round : int;
  critical_delay : float;
  strategy : Protocol.strategy;
  path_gates : int;
}

type report = {
  outcome : outcome;
  initial_delay : float;
  final_delay : float;
  initial_area : float;
  final_area : float;
  iterations : iteration list;
  buffers_added : int;
  rewrites : int;
  stale_decisions : int;
  equivalence : (unit, string) result;
  protocol_ms : float;
  analysis_ms : float;
  loop_ms : float;
  vt : Vt_assign.report option;
}

(* Map one path-level protocol decision back onto the netlist.  Sizing is
   a direct write-back through [size] (monotone, journaled by the
   caller); structural moves go through the logic-preserving Transform
   surgeries at the node the stage index points to.  After a structural
   change the stage indexing is stale, so the caller re-runs STA and
   sizes the fresh critical path on the next round. *)
let apply_decision ~size t (nodes : int array) (r : Protocol.report) =
  let buffers = ref 0 and rewrites = ref 0 in
  if r.Protocol.strategy = Protocol.Sizing_only then
    size (Array.to_list nodes) r.Protocol.sizing
  else begin
    (* shields: dilute each recorded branch with an off-path pair sized
       by the path-level decision *)
    List.iter
      (fun (sh : Buffers.shield) ->
        let stage = sh.Buffers.stage in
        if stage < Array.length nodes - 1 then begin
          let node = nodes.(stage) in
          let next = nodes.(stage + 1) in
          let off_path =
            List.filter (fun c -> c <> next) (Netlist.node t node).Netlist.fanouts
          in
          if off_path <> [] then begin
            ignore
              (Transform.insert_buffer_for ~cin1:sh.Buffers.b1 ~cin2:sh.Buffers.b2 t
                 ~after:node ~only:off_path);
            buffers := !buffers + 2
          end
        end)
      r.Protocol.shields;
    (* series pairs: all consumers move behind the pair, matching the
       path-level semantics; the pair is sized on the next round *)
    List.iter
      (fun stage ->
        if stage < Array.length nodes then begin
          ignore (Transform.insert_buffer t ~after:nodes.(stage));
          buffers := !buffers + 2
        end)
      r.Protocol.pairs;
    (* De Morgan rewrites.  A rewrite absorbs single-fanout fan-in
       inverters, so an earlier rewrite in this list can delete the node
       a later one points to — skip stages whose node is gone. *)
    List.iter
      (fun (rw : Pops_core.Restructure.rewrite) ->
        let stage = rw.Pops_core.Restructure.stage in
        if stage < Array.length nodes && Netlist.node_exists t nodes.(stage) then
          match Transform.de_morgan t nodes.(stage) with
          | Ok _ -> incr rewrites
          | Error _ -> ())
      r.Protocol.rewrites
  end;
  (!buffers, !rewrites)

(* Write-backs are snapped to a 2^-12 relative grid (~0.02%, far below
   any physical sizing precision): once a solver has converged on a
   gate, the next round's re-solve rewrites the same bits, the journal
   skips the write, and the incremental re-time never hears about it —
   without the snap, sub-ULP solver churn re-dirties the full fan-out
   cone of every sized gate every round. *)
let quantize x =
  let m, e = Float.frexp x in
  Float.ldexp (Float.round (m *. 4096.) /. 4096.) e

(* the edit window handed to the bounded-path protocol and to the
   end-of-round re-size; see {!Pops_sta.Paths.k_worst_incr} *)
let max_cone = 48

(* Retarget the global endpoint constraint onto a bounded window of its
   critical path: the window meets its share when it gets faster by the
   endpoint's violation, i.e. its local constraint is its own delay
   plus the (negative) endpoint slack.  NaN-safe: returns [wd] (no
   speedup required) when the slack is undefined. *)
let window_tc ~slack wd = if Float.is_nan slack then wd else wd +. slack

(* size the current critical path's [phase] window for tc (best effort
   below the window's Tmin) *)
let size_critical ~size ~lib ~tc ~timing ~phase t =
  let d = Timing.critical_delay timing in
  let ex = Paths.critical ~timing ~max_cone ~phase ~lib t in
  let sizing_now =
    Array.of_list
      (List.map (fun id -> (Netlist.node t id).Netlist.cin) ex.Paths.nodes)
  in
  let wtc =
    window_tc ~slack:(tc -. d) (Path.delay_worst ex.Paths.path sizing_now)
  in
  let sizing =
    match Sens.size_for_constraint ex.Paths.path ~tc:wtc with
    | Ok r -> r.Sens.sizing
    | Error (`Infeasible _) ->
      let _, x, _ = Sens.minimum_delay ex.Paths.path in
      x
  in
  size ex.Paths.nodes sizing

(* Best-state bookkeeping without a copy per improving round.  Sizing
   writes are journaled as (gate, old size); as long as only sizing
   happened since the best state was seen, that state is [Best_mark]
   (undo the journal suffix to get back).  The first structural surgery
   of a round materializes the mark into a real [Best_copy] before the
   netlist diverges unjournalably. *)
type best_state = Best_mark of int * float | Best_copy of Netlist.t * float

let optimize ?budget ?(max_rounds = 20) ?(allow_restructure = true)
    ?(k_paths = 3) ?(reference = false) ?(vt_assign = false) ~lib ~tc t =
  let ref_nl = Netlist.copy t in
  let t_loop = Unix.gettimeofday () in
  (* The analysis portion of the loop — (re)building or updating
     timing/slacks/selection and reading the critical delay — bracketed
     directly, so the report can separate what the incremental engine
     accelerates from solver time and from mode-independent bookkeeping
     (best-state copies, journaling), which a loop-minus-protocol
     subtraction would misattribute. *)
  let analysis_ms = ref 0. in
  let in_analysis f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    analysis_ms := !analysis_ms +. (1000. *. (Unix.gettimeofday () -. t0));
    r
  in
  (* one persistent analysis + backward slack annotation + endpoint heap
     for the whole run: every round re-propagates only the touched
     fan-out cone forward (Timing.update) and the touched fan-in cones
     backward (Timing.slacks_update), and re-examines only endpoints
     whose slack moved (Paths.k_worst_incr).  [reference] mode rebuilds
     all three from scratch every round — same policy, used by the
     equivalence suite and the flow_scale baseline. *)
  let timing = ref (in_analysis (fun () -> Timing.analyze ~lib t)) in
  let slacks = ref (in_analysis (fun () -> Timing.slacks_make !timing ~tc)) in
  let sel = ref (in_analysis (fun () -> Paths.incr_make t !slacks)) in
  let initial_delay = Timing.critical_delay !timing in
  let initial_area = Netlist.total_area t lib in
  (* structural surgery is speculative: a De Morgan rewrite or shield can
     overshoot and the remaining rounds may never win the delay back.
     Track the best state seen so the run can rewind instead of returning
     something worse than it ever had.  The initial best IS the reference
     snapshot — both are only ever read, so no second O(V) copy. *)
  let journal = ref [] and journal_len = ref 0 in
  let best = ref (Best_copy (ref_nl, initial_delay)) in
  let best_delay () =
    match !best with Best_mark (_, d) | Best_copy (_, d) -> d
  in
  (* rewind the journaled sizing writes made after the [keep] mark onto
     [nl]; newest first, so re-sized gates land on their oldest value *)
  let undo_suffix nl keep =
    let n = !journal_len - keep in
    let rec go i = function
      | (id, old) :: rest when i < n ->
        Netlist.set_cin nl id old;
        go (i + 1) rest
      | _ -> ()
    in
    go 0 !journal
  in
  let materialize () =
    match !best with
    | Best_copy _ -> ()
    | Best_mark (keep, d) ->
      let snap = Netlist.copy t in
      undo_suffix snap keep;
      best := Best_copy (snap, d);
      journal := [];
      journal_len := 0
  in
  (* monotone journaled write-back: never shrink a gate below its current
     size, so cones sharing a gate cannot degrade each other across
     rounds; bitwise no-op writes are skipped (no dirty-log traffic) *)
  let size nodes sizing =
    List.iteri
      (fun i id ->
        let current = (Netlist.node t id).Netlist.cin in
        let v = Float.max current (quantize sizing.(i)) in
        if v <> current then begin
          journal := (id, current) :: !journal;
          incr journal_len;
          Netlist.set_cin t id v
        end)
      nodes
  in
  let buffers_added = ref 0 and rewrites_total = ref 0 in
  let stale_decisions = ref 0 in
  let iterations = ref [] in
  let protocol_ms = ref 0. in
  (* how many [max_cone] windows the longest cone selected last round
     has: the stall handler below walks the window phase through them
     before concluding the run is out of headroom *)
  let segments_avail = ref 1 in
  let rec loop round phase prev_delay =
    if reference then
      in_analysis (fun () ->
          timing := Timing.analyze ~lib t;
          slacks := Timing.slacks_make !timing ~tc;
          sel := Paths.incr_make t !slacks);
    let d = in_analysis (fun () -> Timing.critical_delay !timing) in
    if d < best_delay () then best := Best_mark (!journal_len, d);
    if d <= tc *. (1. +. 1e-6) +. 0.02 then Met
    else if round > max_rounds then Budget_exhausted
    else if
      match budget with
      | Some b when Budget.exhausted b ->
        Watch.emit (Budget.diag b);
        true
      | _ -> false
    then Budget_exhausted
    else begin
      (* a stalled round means the current windows are saturated (the
         monotone sizing has taken what they had to give): walk the
         window phase one segment upstream and keep going; only when
         every window of the longest path has been visited is the run
         genuinely out of progress *)
      let stalled = round > 1 && d >= prev_delay -. (0.001 *. prev_delay) in
      if stalled && phase + 1 >= !segments_avail then No_progress
      else begin
      let phase = if stalled then phase + 1 else phase in
      (* Phase 1 (sequential): select up to K worst gate-disjoint
         critical cones off the endpoint heap.  Each [Paths.extracted]
         is an immutable snapshot — stage geometry, branch loads and the
         sizes current at the start of the round — fully decoupled from
         the mutable netlist; disjointness means the protocol runs
         cannot claim each other's gates. *)
      let worst =
        in_analysis (fun () ->
            Paths.k_worst_incr ~k:k_paths ~max_cone ~phase ~lib !sel)
      in
      segments_avail :=
        List.fold_left
          (fun acc (ex : Paths.extracted) ->
            max acc ((ex.Paths.total_gates + max_cone - 1) / max_cone))
          1 worst;
      let snapshots =
        List.map
          (fun (ex : Paths.extracted) ->
            let sizing_now =
              Array.of_list
                (List.map
                   (fun id -> (Netlist.node t id).Netlist.cin)
                   ex.Paths.nodes)
            in
            (* the window's local constraint: absorb the (negative)
               slack at its tail gate — on the worst path that equals
               the endpoint violation this cone was selected for *)
            let tail = List.fold_left (fun _ id -> id) (-1) ex.Paths.nodes in
            let wtc =
              window_tc
                ~slack:(Timing.node_slack !slacks tail)
                (Path.delay_worst ex.Paths.path sizing_now)
            in
            (ex, sizing_now, wtc))
          worst
      in
      (* Phase 2 (parallel): run the protocol on every violating cone
         concurrently.  The workers only read their snapshots, never the
         netlist, so the decisions are a pure function of the round's
         starting state — bit-identical at any domain count. *)
      let t0 = Unix.gettimeofday () in
      (* contained fan-out: a protocol task that crashes on one cone
         degrades to a diagnostic and a skipped decision — the other
         cones' decisions still apply and the flow completes.  Per-task
         diagnostics re-emit in submission order below, keeping the
         run's report deterministic at any domain count. *)
      let slots =
        Pops_util.Pool.map_list_contained
          (fun ((ex : Paths.extracted), sizing_now, wtc) ->
            if wtc < Path.delay_worst ex.Paths.path sizing_now then
              Some (Protocol.run ~allow_restructure ~lib ~tc:wtc ex.Paths.path)
            else None)
          snapshots
      in
      let decisions =
        List.map
          (fun (result, diags) ->
            Watch.emit_all diags;
            match result with
            | Ok decision -> decision
            | Error d ->
              Watch.emit d;
              None)
          slots
      in
      protocol_ms := !protocol_ms +. (1000. *. (Unix.gettimeofday () -. t0));
      (match budget with Some b -> Budget.spend b 1 | None -> ());
      (* Phase 3 (sequential): apply the winners in submission order.
         The cones are gate-disjoint, so decisions cannot invalidate each
         other through sizing; a structural surgery can still delete a
         node another snapshot points to (e.g. an absorbed fan-in
         inverter off-cone), which makes that decision stale — counted
         and dropped, the end-of-round [size_critical] covers its
         endpoint. *)
      let structural_change = ref false in
      List.iter2
        (fun ((ex : Paths.extracted), _, _) decision ->
          match decision with
          | None -> ()
          | Some _ when not (List.for_all (Netlist.node_exists t) ex.Paths.nodes)
            -> incr stale_decisions
          | Some r ->
            if r.Protocol.strategy <> Protocol.Sizing_only then materialize ();
            let b, rw = apply_decision ~size t (Array.of_list ex.Paths.nodes) r in
            buffers_added := !buffers_added + b;
            rewrites_total := !rewrites_total + rw;
            if b > 0 || rw > 0 then structural_change := true;
            iterations :=
              {
                round;
                critical_delay = d;
                strategy = r.Protocol.strategy;
                path_gates = List.length ex.Paths.nodes;
              }
              :: !iterations)
        snapshots decisions;
      (* after surgery the indices moved: re-size the fresh critical
         path.  Solver time, like the fan-out above — counted in
         protocol_ms, not analysis_ms: it is identical in both modes
         and would otherwise dilute the analysis comparison. *)
      if !structural_change then begin
        let t0 = Unix.gettimeofday () in
        size_critical ~size ~lib ~tc ~timing:!timing ~phase t;
        protocol_ms := !protocol_ms +. (1000. *. (Unix.gettimeofday () -. t0))
      end;
      loop (round + 1) phase d
      end
    end
  in
  let outcome = loop 1 0 Float.infinity in
  (* rewind if the exploration ended worse than its best state; the
     persistent analysis resyncs off the rewind's dirty entries *)
  let final_delay =
    let d = Timing.critical_delay !timing in
    if d > best_delay () then begin
      (match !best with
      | Best_mark (keep, _) -> undo_suffix t keep
      | Best_copy (snap, _) -> Netlist.restore t ~from:snap);
      Timing.critical_delay !timing
    end
    else d
  in
  (* the leakage pass runs on the settled netlist: after the rewind so
     a rolled-back surgery cannot strand accepted swaps, on the same
     persistent timing so every accept test is an incremental re-time *)
  let vt =
    if vt_assign then Some (Vt_assign.run ~lib ~tc ~timing:!timing t)
    else None
  in
  let loop_ms = 1000. *. (Unix.gettimeofday () -. t_loop) in
  {
    outcome;
    initial_delay;
    final_delay;
    initial_area;
    final_area = Netlist.total_area t lib;
    iterations = List.rev !iterations;
    buffers_added = !buffers_added;
    rewrites = !rewrites_total;
    stale_decisions = !stale_decisions;
    equivalence = Logic.equivalent ref_nl t;
    protocol_ms = !protocol_ms;
    analysis_ms = !analysis_ms;
    loop_ms;
    vt;
  }

(* The boundary entry point: validate first (a malformed netlist is the
   caller's bug, not a degradation), then run the flow under a Watch
   collector so every ladder descent, contained crash and budget trip
   surfaces in the returned Outcome. *)
let optimize_o ?budget ?max_rounds ?allow_restructure ?k_paths ?reference
    ?vt_assign ?name ~lib ~tc t =
  let problems =
    List.filter
      (fun d -> d.Diag.severity = Diag.Error)
      (Netlist.validate_diags ?name t)
  in
  match problems with
  | d :: _ -> Pops_robust.Outcome.Failed d
  | [] -> (
    match
      Watch.collect (fun () ->
          optimize ?budget ?max_rounds ?allow_restructure ?k_paths ?reference
            ?vt_assign ~lib ~tc t)
    with
    | r, diags ->
      let diags =
        if r.outcome = Met then diags
        else
          diags
          @ [
              Diag.makef Diag.Constraint_infeasible
                "constraint %.3f ps not met: critical delay %.3f ps after \
                 optimization"
                tc r.final_delay;
            ]
      in
      Pops_robust.Outcome.make r diags
    | exception Diag.Fatal d -> Pops_robust.Outcome.Failed d
    | exception e ->
      Pops_robust.Outcome.Failed
        (Diag.makef Diag.Internal "Flow.optimize raised: %s"
           (Printexc.to_string e)))

let outcome_to_string = function
  | Met -> "met"
  | No_progress -> "no-progress"
  | Budget_exhausted -> "budget-exhausted"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>flow: %s@ delay %.1f -> %.1f ps@ area %.1f -> %.1f um@ \
     %d rounds, %d buffer inverters, %d rewrites, %d stale dropped@ \
     equivalence: %s@]"
    (outcome_to_string r.outcome)
    r.initial_delay r.final_delay r.initial_area r.final_area
    (List.length r.iterations)
    r.buffers_added r.rewrites r.stale_decisions
    (match r.equivalence with Ok () -> "PASS" | Error m -> "FAIL: " ^ m);
  match r.vt with
  | None -> ()
  | Some v -> Format.fprintf ppf "@,%a" Vt_assign.pp_report v
