module Netlist = Pops_netlist.Netlist
module Transform = Pops_netlist.Transform
module Logic = Pops_netlist.Logic
module Timing = Pops_sta.Timing
module Paths = Pops_sta.Paths
module Path = Pops_delay.Path
module Bounds = Pops_core.Bounds
module Sens = Pops_core.Sensitivity
module Buffers = Pops_core.Buffers
module Protocol = Pops_core.Protocol
module Diag = Pops_robust.Diag
module Watch = Pops_robust.Watch
module Budget = Pops_robust.Budget

type outcome = Met | No_progress | Budget_exhausted

type iteration = {
  round : int;
  critical_delay : float;
  strategy : Protocol.strategy;
  path_gates : int;
}

type report = {
  outcome : outcome;
  initial_delay : float;
  final_delay : float;
  initial_area : float;
  final_area : float;
  iterations : iteration list;
  buffers_added : int;
  rewrites : int;
  equivalence : (unit, string) result;
  protocol_ms : float;
}

(* Map one path-level protocol decision back onto the netlist.  Sizing is
   a direct write-back; structural moves go through the logic-preserving
   Transform surgeries at the node the stage index points to.  After a
   structural change the stage indexing is stale, so the caller re-runs
   STA and sizes the fresh critical path on the next round. *)
(* monotone write-back: never shrink a gate below its current size, so
   paths sharing a prefix cannot degrade each other across rounds *)
let apply_sizing_max t nodes sizing =
  List.iteri
    (fun i id ->
      let current = (Netlist.node t id).Netlist.cin in
      Netlist.set_cin t id (Float.max current sizing.(i)))
    nodes

let apply_decision t (nodes : int array) (r : Protocol.report) =
  let buffers = ref 0 and rewrites = ref 0 in
  if r.Protocol.strategy = Protocol.Sizing_only then
    apply_sizing_max t (Array.to_list nodes) r.Protocol.sizing
  else begin
    (* shields: dilute each recorded branch with an off-path pair sized
       by the path-level decision *)
    List.iter
      (fun (sh : Buffers.shield) ->
        let stage = sh.Buffers.stage in
        if stage < Array.length nodes - 1 then begin
          let node = nodes.(stage) in
          let next = nodes.(stage + 1) in
          let off_path =
            List.filter (fun c -> c <> next) (Netlist.node t node).Netlist.fanouts
          in
          if off_path <> [] then begin
            ignore
              (Transform.insert_buffer_for ~cin1:sh.Buffers.b1 ~cin2:sh.Buffers.b2 t
                 ~after:node ~only:off_path);
            buffers := !buffers + 2
          end
        end)
      r.Protocol.shields;
    (* series pairs: all consumers move behind the pair, matching the
       path-level semantics; the pair is sized on the next round *)
    List.iter
      (fun stage ->
        if stage < Array.length nodes then begin
          ignore (Transform.insert_buffer t ~after:nodes.(stage));
          buffers := !buffers + 2
        end)
      r.Protocol.pairs;
    (* De Morgan rewrites.  A rewrite absorbs single-fanout fan-in
       inverters, so an earlier rewrite in this list can delete the node
       a later one points to — skip stages whose node is gone. *)
    List.iter
      (fun (rw : Pops_core.Restructure.rewrite) ->
        let stage = rw.Pops_core.Restructure.stage in
        if stage < Array.length nodes && Netlist.node_exists t nodes.(stage) then
          match Transform.de_morgan t nodes.(stage) with
          | Ok _ -> incr rewrites
          | Error _ -> ())
      r.Protocol.rewrites
  end;
  (!buffers, !rewrites)

(* size the current critical path for tc (best effort below Tmin) *)
let size_critical ~lib ~tc ~timing t =
  let ex = Paths.critical ~timing ~lib t in
  let sizing =
    match Sens.size_for_constraint ex.Paths.path ~tc with
    | Ok r -> r.Sens.sizing
    | Error (`Infeasible _) ->
      let _, x, _ = Sens.minimum_delay ex.Paths.path in
      x
  in
  apply_sizing_max t ex.Paths.nodes sizing

let optimize ?budget ?(max_rounds = 20) ?(allow_restructure = true)
    ?(k_paths = 3) ~lib ~tc t =
  let reference = Netlist.copy t in
  (* one persistent analysis for the whole run: every query after an
     edit re-propagates only the touched fan-out cone (Timing.update)
     instead of re-running STA from scratch each round *)
  let timing = Timing.analyze ~lib t in
  let initial_delay = Timing.critical_delay timing in
  let initial_area = Netlist.total_area t lib in
  (* structural surgery is speculative: a De Morgan rewrite or shield can
     overshoot and the remaining rounds may never win the delay back.
     Track the best state seen so the run can rewind instead of returning
     something worse than it ever had.  The initial best IS the reference
     snapshot — both are only ever read, so no second O(V) copy. *)
  let best = ref (reference, initial_delay) in
  let buffers_added = ref 0 and rewrites_total = ref 0 in
  let iterations = ref [] in
  let protocol_ms = ref 0. in
  let rec loop round prev_delay =
    let d = Timing.critical_delay timing in
    if d < snd !best then best := (Netlist.copy t, d);
    if d <= tc *. (1. +. 1e-6) +. 0.02 then Met
    else if round > max_rounds then Budget_exhausted
    else if
      match budget with
      | Some b when Budget.exhausted b ->
        Watch.emit (Budget.diag b);
        true
      | _ -> false
    then Budget_exhausted
    else if round > 1 && d >= prev_delay -. (0.001 *. prev_delay) then No_progress
    else begin
      (* Phase 1 (sequential): extract the K worst paths.  Each
         [Paths.extracted] is an immutable snapshot — stage geometry,
         branch loads and the sizes current at the start of the round —
         fully decoupled from the mutable netlist. *)
      let worst = Paths.k_worst ~k:k_paths ~lib t in
      let snapshots =
        List.map
          (fun (ex : Paths.extracted) ->
            let sizing_now =
              Array.of_list
                (List.map
                   (fun id -> (Netlist.node t id).Netlist.cin)
                   ex.Paths.nodes)
            in
            (ex, sizing_now))
          worst
      in
      (* Phase 2 (parallel): run the protocol on every violating path
         concurrently.  The workers only read their snapshots, never the
         netlist, so the decisions are a pure function of the round's
         starting state — bit-identical at any domain count. *)
      let t0 = Unix.gettimeofday () in
      (* contained fan-out: a protocol task that crashes on one path
         degrades to a diagnostic and a skipped decision — the other
         paths' decisions still apply and the flow completes.  Per-task
         diagnostics re-emit in submission order below, keeping the
         run's report deterministic at any domain count. *)
      let slots =
        Pops_util.Pool.map_list_contained
          (fun ((ex : Paths.extracted), sizing_now) ->
            if Path.delay_worst ex.Paths.path sizing_now > tc then
              Some (Protocol.run ~allow_restructure ~lib ~tc ex.Paths.path)
            else None)
          snapshots
      in
      let decisions =
        List.map
          (fun (result, diags) ->
            Watch.emit_all diags;
            match result with
            | Ok decision -> decision
            | Error d ->
              Watch.emit d;
              None)
          slots
      in
      protocol_ms := !protocol_ms +. (1000. *. (Unix.gettimeofday () -. t0));
      (match budget with Some b -> Budget.spend b 1 | None -> ());
      (* Phase 3 (sequential): apply the winners in submission order.
         Conflicts between paths sharing gates resolve deterministically:
         [apply_sizing_max] never shrinks, so a gate claimed by two paths
         keeps the larger size; structural surgeries land in K-worst
         order. *)
      let structural_change = ref false in
      List.iter2
        (fun ((ex : Paths.extracted), _) decision ->
          match decision with
          | None -> ()
          (* a surgery applied earlier this round (e.g. a De Morgan
             rewrite on a shared gate) may have deleted nodes this
             snapshot still points to; the decision is stale, and the
             end-of-round [size_critical] covers the path it was for *)
          | Some _ when not (List.for_all (Netlist.node_exists t) ex.Paths.nodes) -> ()
          | Some r ->
            let b, rw = apply_decision t (Array.of_list ex.Paths.nodes) r in
            buffers_added := !buffers_added + b;
            rewrites_total := !rewrites_total + rw;
            if b > 0 || rw > 0 then structural_change := true;
            iterations :=
              {
                round;
                critical_delay = d;
                strategy = r.Protocol.strategy;
                path_gates = List.length ex.Paths.nodes;
              }
              :: !iterations)
        snapshots decisions;
      (* after surgery the indices moved: re-size the fresh critical path *)
      if !structural_change then size_critical ~lib ~tc ~timing t;
      loop (round + 1) d
    end
  in
  let outcome = loop 1 Float.infinity in
  (* rewind if the exploration ended worse than its best state; the
     persistent analysis resyncs off the restore's dirty entries *)
  let final_delay =
    let d = Timing.critical_delay timing in
    let best_t, best_d = !best in
    if d > best_d then begin
      Netlist.restore t ~from:best_t;
      Timing.critical_delay timing
    end
    else d
  in
  {
    outcome;
    initial_delay;
    final_delay;
    initial_area;
    final_area = Netlist.total_area t lib;
    iterations = List.rev !iterations;
    buffers_added = !buffers_added;
    rewrites = !rewrites_total;
    equivalence = Logic.equivalent reference t;
    protocol_ms = !protocol_ms;
  }

(* The boundary entry point: validate first (a malformed netlist is the
   caller's bug, not a degradation), then run the flow under a Watch
   collector so every ladder descent, contained crash and budget trip
   surfaces in the returned Outcome. *)
let optimize_o ?budget ?max_rounds ?allow_restructure ?k_paths ?name ~lib ~tc t
    =
  let problems =
    List.filter
      (fun d -> d.Diag.severity = Diag.Error)
      (Netlist.validate_diags ?name t)
  in
  match problems with
  | d :: _ -> Pops_robust.Outcome.Failed d
  | [] -> (
    match
      Watch.collect (fun () ->
          optimize ?budget ?max_rounds ?allow_restructure ?k_paths ~lib ~tc t)
    with
    | r, diags ->
      let diags =
        if r.outcome = Met then diags
        else
          diags
          @ [
              Diag.makef Diag.Constraint_infeasible
                "constraint %.3f ps not met: critical delay %.3f ps after \
                 optimization"
                tc r.final_delay;
            ]
      in
      Pops_robust.Outcome.make r diags
    | exception Diag.Fatal d -> Pops_robust.Outcome.Failed d
    | exception e ->
      Pops_robust.Outcome.Failed
        (Diag.makef Diag.Internal "Flow.optimize raised: %s"
           (Printexc.to_string e)))

let outcome_to_string = function
  | Met -> "met"
  | No_progress -> "no-progress"
  | Budget_exhausted -> "budget-exhausted"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>flow: %s@ delay %.1f -> %.1f ps@ area %.1f -> %.1f um@ \
     %d rounds, %d buffer inverters, %d rewrites@ equivalence: %s@]"
    (outcome_to_string r.outcome)
    r.initial_delay r.final_delay r.initial_area r.final_area
    (List.length r.iterations)
    r.buffers_added r.rewrites
    (match r.equivalence with Ok () -> "PASS" | Error m -> "FAIL: " ^ m)
