(** The netlist-level optimization flow — the "Path Selection" in POPS.

    The path engine of [Pops_core] optimizes one bounded path; a real
    circuit is closed only when {e every} path meets the constraint.
    This module runs the tool's outer loop on a netlist:

    + STA; if the critical delay meets [tc], done;
    + extract the critical path (or the K worst) as bounded paths;
    + run the protocol on each: sizing, buffer insertion (series pairs
      and branch shields), De Morgan restructuring;
    + apply the decisions back to the netlist — sizes via
      {!Pops_sta.Paths.apply_sizing}, buffers and rewrites via the
      {!Pops_netlist.Transform} surgeries — and re-run STA;
    + iterate until timing is met, no progress is possible, or the
      iteration budget runs out.

    Every structural surgery preserves the logic function; {!optimize}
    re-checks equivalence against the input netlist and reports it. *)

type outcome = Met | No_progress | Budget_exhausted

type iteration = {
  round : int;
  critical_delay : float;  (** STA delay at the start of the round, ps *)
  strategy : Pops_core.Protocol.strategy;
  path_gates : int;  (** length of the path optimised this round *)
}

type report = {
  outcome : outcome;
  initial_delay : float;  (** STA critical delay before, ps *)
  final_delay : float;  (** after, ps *)
  initial_area : float;  (** [Sigma W] before, um *)
  final_area : float;
  iterations : iteration list;  (** oldest first *)
  buffers_added : int;  (** inverters added by pairs and shields *)
  rewrites : int;  (** De Morgan rewrites applied *)
  stale_decisions : int;
      (** protocol decisions dropped because a structural surgery earlier
          in the same round deleted a node their cone snapshot still
          points to (previously discarded silently) *)
  equivalence : (unit, string) result;
      (** logic check of the final netlist against the input *)
  protocol_ms : float;
      (** wall-clock solver time: the per-round parallel protocol
          fan-outs (the domain-pool phase) plus the end-of-round
          critical-path re-size after structural surgery, summed over
          all rounds. *)
  analysis_ms : float;
      (** wall-clock time of the timing-analysis portion the
          incremental engine accelerates, bracketed directly: the
          initial analyze/slack/selector build (and, in
          [~reference:true] mode, the per-round full rebuilds), the
          per-round critical-delay query, and the per-round worst-cone
          selection with its backward slack sweep.  Everything else in
          [loop_ms] — protocol fan-outs, structural surgery,
          best-state bookkeeping — is mode-independent. *)
  loop_ms : float;
      (** wall-clock time of the whole optimization loop — analysis,
          selection, protocol, apply, rewind — excluding the initial
          reference copy and the final equivalence check *)
  vt : Vt_assign.report option;
      (** the multi-Vt leakage pass, when requested with [~vt_assign] —
          runs after the sizing loop and the best-state rewind *)
}

val optimize :
  ?budget:Pops_robust.Budget.t ->
  ?max_rounds:int ->
  ?allow_restructure:bool ->
  ?k_paths:int ->
  ?reference:bool ->
  ?vt_assign:bool ->
  lib:Pops_cell.Library.t ->
  tc:float ->
  Pops_netlist.Netlist.t ->
  report
(** [optimize ~lib ~tc netlist] mutates [netlist] in place and returns
    the report.  [max_rounds] defaults to 20; [k_paths] (default 3) is
    how many of the worst {e gate-disjoint} critical cones are optimised
    per round; [allow_restructure] defaults to true.  The equivalence
    check runs on a pre-flow copy kept internally.

    The loop is {e incremental}: one {!Pops_sta.Timing.t}, one
    {!Pops_sta.Timing.slacks} and one endpoint heap
    ({!Pops_sta.Paths.incr_make}) persist across rounds, so each round
    costs the touched forward/backward cones plus the changed endpoints
    instead of a full re-analysis and path re-enumeration.  With
    [reference] (default false) all three are rebuilt from scratch every
    round — same policy, bit-identical final netlist and report, used by
    the equivalence suite and as the [flow_scale] benchmark baseline.

    Resilience: the per-round protocol fan-out is {e contained} (a
    crashing path task degrades to a diagnostic, the other decisions
    still apply), every solver underneath runs the fallback ladder (see
    {!Pops_core.Sensitivity.rung}), and the best-state rollback
    guarantees the returned netlist is never slower than the best state
    visited — in the worst case the untouched input, whose delay is the
    Tmax bound of its paths.  [budget] bounds the run (one unit per
    round plus the solver sweeps underneath); exhaustion ends the flow
    with [Budget_exhausted] and the usual rollback.  Diagnostics flow to
    the ambient {!Pops_robust.Watch} collector; {!optimize_o} returns
    them directly.

    With [vt_assign] (default false) the {!Vt_assign} leakage pass runs
    once after the sizing loop and its best-state rewind, on the same
    persistent timing annotation, and its report lands in the [vt]
    field; it trades remaining positive slack for lower leakage and
    never un-meets a met constraint. *)

val optimize_o :
  ?budget:Pops_robust.Budget.t ->
  ?max_rounds:int ->
  ?allow_restructure:bool ->
  ?k_paths:int ->
  ?reference:bool ->
  ?vt_assign:bool ->
  ?name:(int -> string) ->
  lib:Pops_cell.Library.t ->
  tc:float ->
  Pops_netlist.Netlist.t ->
  report Pops_robust.Outcome.t
(** {!optimize} as an {!Pops_robust.Outcome}.  Runs
    {!Pops_netlist.Netlist.validate_diags} first and returns [Failed]
    with the first error-severity diagnostic (cycle, dangling reference,
    bad cin) {e before} touching the netlist; [name] renders node ids in
    those messages.  Otherwise [Exact] on a clean met constraint,
    [Degraded] with the collected diagnostics when anything degraded or
    the constraint finished unmet ({!Pops_robust.Diag.Constraint_infeasible}
    appended), [Failed] instead of raising. *)

val outcome_to_string : outcome -> string
val pp_report : Format.formatter -> report -> unit
