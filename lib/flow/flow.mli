(** The netlist-level optimization flow — the "Path Selection" in POPS.

    The path engine of [Pops_core] optimizes one bounded path; a real
    circuit is closed only when {e every} path meets the constraint.
    This module runs the tool's outer loop on a netlist:

    + STA; if the critical delay meets [tc], done;
    + extract the critical path (or the K worst) as bounded paths;
    + run the protocol on each: sizing, buffer insertion (series pairs
      and branch shields), De Morgan restructuring;
    + apply the decisions back to the netlist — sizes via
      {!Pops_sta.Paths.apply_sizing}, buffers and rewrites via the
      {!Pops_netlist.Transform} surgeries — and re-run STA;
    + iterate until timing is met, no progress is possible, or the
      iteration budget runs out.

    Every structural surgery preserves the logic function; {!optimize}
    re-checks equivalence against the input netlist and reports it. *)

type outcome = Met | No_progress | Budget_exhausted

type iteration = {
  round : int;
  critical_delay : float;  (** STA delay at the start of the round, ps *)
  strategy : Pops_core.Protocol.strategy;
  path_gates : int;  (** length of the path optimised this round *)
}

type report = {
  outcome : outcome;
  initial_delay : float;  (** STA critical delay before, ps *)
  final_delay : float;  (** after, ps *)
  initial_area : float;  (** [Sigma W] before, um *)
  final_area : float;
  iterations : iteration list;  (** oldest first *)
  buffers_added : int;  (** inverters added by pairs and shields *)
  rewrites : int;  (** De Morgan rewrites applied *)
  equivalence : (unit, string) result;
      (** logic check of the final netlist against the input *)
  protocol_ms : float;
      (** wall-clock time spent in the per-round parallel protocol
          fan-outs (the domain-pool phase), summed over all rounds *)
}

val optimize :
  ?max_rounds:int ->
  ?allow_restructure:bool ->
  ?k_paths:int ->
  lib:Pops_cell.Library.t ->
  tc:float ->
  Pops_netlist.Netlist.t ->
  report
(** [optimize ~lib ~tc netlist] mutates [netlist] in place and returns
    the report.  [max_rounds] defaults to 20; [k_paths] (default 3) is
    how many of the worst paths are optimised per round;
    [allow_restructure] defaults to true.  The equivalence check runs on
    a pre-flow copy kept internally. *)

val pp_report : Format.formatter -> report -> unit
