(** Post-sizing multi-Vt leakage assignment.

    After the sizing flow meets (or best-efforts) its constraint, the
    circuit usually has gates with positive slack — off-critical logic
    whose speed is wasted.  This pass converts that slack into leakage
    savings by promoting gates to higher threshold classes
    ({!Pops_process.Vt.t}: LVT -> SVT -> HVT), whose subthreshold
    leakage is exponentially lower at a small delay penalty.

    The protocol is a greedy accept/reject loop: rank all promotable
    gates by the leakage a one-step promotion would save, try them
    best-first, keep a swap iff the incrementally re-timed worst
    arrival still meets [tc], and repeat until a round accepts nothing.
    Sizing is never modified.  See docs/multi-vt.md for the model and
    the determinism contract. *)

type report = {
  leakage_before : float;  (** uW, under the incoming Vt assignment *)
  leakage_after : float;  (** uW, under the final assignment *)
  accepted : int;  (** swaps kept (slack remained non-negative) *)
  rejected : int;  (** swaps tried and reverted *)
  rounds : int;  (** ranking passes, including the final empty one *)
  ms : float;  (** wall-clock of the pass *)
}

val leakage_uw : lib:Pops_cell.Library.t -> Pops_netlist.Netlist.t -> float
(** Leakage of the netlist under its current Vt assignment, uW —
    bitwise the [leakage_uw] field of {!Pops_sta.Power.analyze}. *)

val run :
  ?pool:Pops_util.Pool.t ->
  lib:Pops_cell.Library.t ->
  tc:float ->
  timing:Pops_sta.Timing.t ->
  Pops_netlist.Netlist.t ->
  report
(** Run the assignment loop on [t], mutating gate Vt classes in place
    through {!Pops_netlist.Netlist.set_vt} and re-timing through the
    caller's persistent [timing] (which must be an annotation of [t]).

    Guarantees:
    - leakage is monotone non-increasing across the loop;
    - if the incoming netlist meets [tc] (worst arrival [<= tc]), the
      final one does too — every accepted swap re-checks the bitwise
      STA verdict; on a netlist that misses [tc] no swap is accepted
      and the pass is a no-op;
    - the result is a pure function of the incoming netlist: the
      candidate ranking is ordered (saving descending, id ascending),
      so runs are bit-identical at any pool domain count.

    The ranking fans out over [pool] (the shared default when omitted);
    the accept/reject walk is sequential.

    Fault containment: the [vt.swap] injection point fires inside the
    swap loop; on injection the pass rewinds every accepted swap,
    emits a {!Pops_robust.Diag.Fault_injected} warning through
    {!Pops_robust.Watch} and returns a zero-swap report — callers see a
    degraded outcome with the pre-pass assignment and sizing intact. *)

val pp_report : Format.formatter -> report -> unit
