module Netlist = Pops_netlist.Netlist
module Timing = Pops_sta.Timing
module Vt = Pops_process.Vt
module Tech = Pops_process.Tech
module Cell = Pops_cell.Cell
module Library = Pops_cell.Library
module Diag = Pops_robust.Diag
module Watch = Pops_robust.Watch
module Fault = Pops_robust.Fault

type report = {
  leakage_before : float;
  leakage_after : float;
  accepted : int;
  rejected : int;
  rounds : int;
  ms : float;
}

(* leakage of the whole netlist under its current Vt assignment, uW —
   the same expression Power.analyze reports, factored here so the
   before/after delta in the report matches the power report bitwise *)
let leakage_uw ~lib t =
  let tech = Netlist.tech t in
  tech.Tech.i_leak_per_um
  *. Netlist.total_leakage_area t lib
  *. tech.Tech.vdd /. 1000.

(* Leakage saved (uW) by promoting gate [id] one Vt step up, and the
   step itself.  Pure per-gate arithmetic over the current sizes —
   safe to fan out read-only over the pool. *)
let candidate ~lib t id =
  let n = Netlist.node t id in
  match n.Netlist.kind with
  | Netlist.Primary_input -> None
  | Netlist.Cell kind -> (
    let vt = n.Netlist.vt in
    match Vt.next vt with
    | None -> None
    | Some vt' ->
      let tech = Netlist.tech t in
      let cell = Library.find_vt lib kind vt in
      let cell' = Library.find_vt lib kind vt' in
      let a = Cell.area cell ~cin:n.Netlist.cin in
      let saving =
        tech.Tech.i_leak_per_um *. a
        *. (cell.Cell.leak_factor -. cell'.Cell.leak_factor)
        *. tech.Tech.vdd /. 1000.
      in
      Some (id, vt', saving))

(* Greedy multi-Vt assignment (see docs/multi-vt.md).

   Each round ranks every promotable gate by the leakage it would save
   if moved one Vt class up (LVT -> SVT -> HVT), then walks the ranking
   best-first: promote the gate, re-time incrementally, keep the swap
   iff the worst endpoint arrival still meets [tc], revert otherwise.
   Rounds repeat — a gate promoted to SVT becomes an SVT -> HVT
   candidate next round — until a full round accepts nothing.

   Determinism: the ranking is computed with a pure per-gate map (the
   pool only changes scheduling, not values), sorted with (saving
   descending, id ascending) as a total order, and the accept test is
   the bitwise STA verdict — so the final assignment is bit-identical
   at any domain count. *)
let run ?pool ~lib ~tc ~(timing : Timing.t) t =
  let t0 = Unix.gettimeofday () in
  let leakage_before = leakage_uw ~lib t in
  let accepted = ref 0 and rejected = ref 0 and rounds = ref 0 in
  (* (gate, class it held before its accepted promotion), newest first:
     the rewind trail for a contained abort *)
  let journal : (int * Vt.t) list ref = ref [] in
  let finish () =
    {
      leakage_before;
      leakage_after = leakage_uw ~lib t;
      accepted = !accepted;
      rejected = !rejected;
      rounds = !rounds;
      ms = 1000. *. (Unix.gettimeofday () -. t0);
    }
  in
  try
    let gates = Array.of_list (Netlist.gate_ids t) in
    let progressed = ref true in
    while !progressed do
      progressed := false;
      incr rounds;
      let ranked =
        Pops_util.Pool.parallel_map ?pool (candidate ~lib t) gates
        |> Array.to_list
        |> List.filter_map Fun.id
        |> List.sort (fun (ida, _, sa) (idb, _, sb) ->
               match compare sb sa with 0 -> compare ida idb | c -> c)
      in
      List.iter
        (fun (id, vt', _) ->
          Fault.inject "vt.swap";
          let prev = Netlist.vt_of t id in
          (* a structural surgery cannot run mid-pass, but an earlier
             accept this round may already have moved this gate;
             re-check the step is still the one the ranking priced *)
          if Vt.next prev = Some vt' then begin
            Netlist.set_vt t id vt';
            if Timing.critical_delay timing <= tc then begin
              journal := (id, prev) :: !journal;
              incr accepted;
              progressed := true
            end
            else begin
              Netlist.set_vt t id prev;
              incr rejected
            end
          end)
        ranked
    done;
    finish ()
  with Fault.Injected point ->
    (* contained degradation: rewind every accepted swap (newest first)
       so the caller keeps the pre-pass netlist — sizing was never
       touched — and report the abort as a warning, not a crash *)
    List.iter (fun (id, vt) -> Netlist.set_vt t id vt) !journal;
    ignore (Timing.critical_delay timing);
    accepted := 0;
    rejected := 0;
    journal := [];
    Watch.emit
      (Diag.make Diag.Fault_injected ~severity:Diag.Warning ~subject:point
         ~hint:"result keeps the pre-pass Vt assignment and sizing"
         "multi-Vt assignment aborted by fault injection; all swaps \
          rewound");
    finish ()

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>vt-assign: leakage %.3f -> %.3f uW (%.1f%% saved)@ %d swaps \
     accepted, %d rejected, %d rounds@]"
    r.leakage_before r.leakage_after
    (if r.leakage_before > 0. then
       100. *. (r.leakage_before -. r.leakage_after) /. r.leakage_before
     else 0.)
    r.accepted r.rejected r.rounds
