(** Domain generators: technologies, bounded paths, random DAG netlists,
    edit sequences and spine circuits.

    Everything is deterministic in the harness seed.  Structures that are
    too entangled to shrink directly (netlists) are represented by small
    {e spec} records — the spec is what gets generated, shrunk and
    printed, and a pure builder expands it into the real structure, so a
    minimal counterexample is always a one-line spec. *)

module Tech = Pops_process.Tech

val technologies : Tech.t array
(** Both process nodes at all five corners, [cmos025] TT first (so
    {!tech} shrinks towards the default process). *)

val tech : Tech.t Gen.t

val library : Tech.t -> Pops_cell.Library.t
(** Characterised library for a technology, cached by process name
    (characterisation is cheap but properties draw thousands of cases). *)

(** {1 Bounded paths} *)

type path_spec = {
  p_tech : Tech.t;
  kinds : Pops_cell.Gate_kind.t list;  (** >= 1 stage *)
  mults : float list;  (** per-stage drive, multiples of [cmin]; same length *)
  c_out : float;  (** terminal load, fF *)
  branch : float;  (** fixed off-path load per stage, fF *)
  input_slope : float;  (** ps *)
  input_edge : Pops_delay.Edge.t;
  opts : Pops_delay.Model.opts;
}

val path_spec :
  ?kinds:Pops_cell.Gate_kind.t array ->
  ?min_stages:int ->
  ?max_stages:int ->
  unit ->
  path_spec Gen.t
(** Stage count between [min_stages] (default 1) and [max_stages]
    (default 8), ramped by the runner size.  [kinds] defaults to the full
    static-CMOS taxonomy; pass a restricted array (e.g. chain gates for
    the SPICE oracle).  Shrinks by dropping stages, then simplifying
    kinds to [Inv], drives to 1x, the technology to the base process and
    the loads/slope towards their minima. *)

val to_path : path_spec -> Pops_delay.Path.t
val sizing : path_spec -> float array
(** The spec's drive multiples as a sizing vector (fF). *)

(** {1 Random DAG netlists} *)

type dag_spec = {
  d_seed : int64;  (** stream for the deterministic builder *)
  n_inputs : int;
  n_gates : int;
}

val dag_spec : dag_spec Gen.t
(** Shrinks the gate then the input count (the seed is kept, so the
    shrunk circuit is a prefix-like variant of the failing one). *)

val build_dag : ?tech:Tech.t -> dag_spec -> Pops_netlist.Netlist.t
(** Pure function of the spec: fan-ins are drawn from already-created
    nodes (acyclic by construction, biased towards recent nodes for
    depth), sizes are log-uniform in [\[cmin, 16 cmin\]], occasional wire
    load, and every sink becomes a primary output.  The result satisfies
    {!Pops_netlist.Netlist.validate}. *)

(** {1 Edit sequences} (random incremental-STA workloads) *)

type edit =
  | Resize of int * float  (** gate index (wraps), drive multiple *)
  | Set_wire of int * float  (** gate index, wire fF *)
  | Set_load of int * float  (** output index, terminal load fF *)
  | Insert_buffer of int  (** gate index *)
  | De_morgan of int  (** gate index *)

val print_edit : edit -> string
val edit : edit Gen.t

val apply_edit : Pops_netlist.Netlist.t -> edit -> unit
(** Total: indices wrap modulo the live gate/output count and
    inapplicable edits (e.g. De Morgan on an inverter) are no-ops, so any
    generated sequence is a valid workload. *)

(** {1 Spine circuits} (via [Netlist.Generator]) *)

type spine_spec = {
  sp_tag : int;  (** profile-name disambiguator *)
  sp_path_gates : int;
  sp_total_gates : int;
  sp_out_load : float;
}

val spine_spec : spine_spec Gen.t
val build_spine : Tech.t -> spine_spec -> Pops_netlist.Netlist.t * int list
(** The circuit and its spine gate ids, input side first. *)

(** {1 SPICE oracle domain} *)

val spice_chain : path_spec Gen.t
(** 2-6 stage chains of the calibrated oracle gates (inverter, NAND2,
    NOR2). *)

val sanitize_spice : path_spec -> path_spec
(** Clamp a spec (including shrunk variants) into the envelope the
    differential-oracle tolerance bands were measured on: default model
    options, moderate loads, slopes and drives. *)

val to_vt_path : path_spec -> Pops_process.Vt.t -> Pops_delay.Path.t
(** The spec's path rebuilt in one Vt class: every stage uses the
    class's cell variant ({!Pops_cell.Library.find_vt}), so the delay
    model sees the class's derated thresholds and [tau_factor], while
    the path's technology record carries [vtn]/[vtp] shifted by
    {!Tech.vt_shift} — which is what the transistor-level simulator
    reads — so the differential oracle compares the same physical
    threshold shift on both sides.  [to_vt_path s Lvt] is equivalent to
    {!to_path} (all factors are exactly 1, the shift exactly 0). *)
