(** Sized random generators with integrated shrinkers.

    The in-tree property-testing harness ([Pops_check.Prop]) is built on
    {!Pops_util.Rng} instead of an external QuickCheck so that every
    generated case is reproducible from one 64-bit seed across machines
    and OCaml versions — the same guarantee the benchmark circuits give.

    A generator receives an explicit RNG state and a {e size} (the runner
    ramps it up over the cases, so early cases are small and late cases
    stress-test); a shrinker enumerates strictly simpler candidate values,
    most aggressive first — the runner keeps the first candidate that
    still fails and repeats greedily until a minimal counterexample
    remains. *)

type 'a t = {
  gen : Pops_util.Rng.t -> int -> 'a;  (** draw a value at the given size *)
  shrink : 'a -> 'a Seq.t;  (** simpler candidates, most aggressive first *)
  print : 'a -> string;  (** render a counterexample for the report *)
}

val make :
  ?shrink:('a -> 'a Seq.t) -> print:('a -> string) ->
  (Pops_util.Rng.t -> int -> 'a) -> 'a t
(** [make ~print gen] wraps a raw generator; [shrink] defaults to no
    shrinking. *)

val return : print:('a -> string) -> 'a -> 'a t
(** Constant generator. *)

val int_range : int -> int -> int t
(** [int_range lo hi] draws uniformly from [\[lo, hi\]] (inclusive);
    shrinks towards [lo]. *)

val float_range : float -> float -> float t
(** Uniform on [\[lo, hi)]; shrinks towards [lo] by bisection. *)

val log_float_range : float -> float -> float t
(** Log-uniform on [\[lo, hi)]; requires [0 < lo < hi]; shrinks towards
    [lo]. *)

val bool : bool t
(** Fair coin; [true] shrinks to [false]. *)

val int64 : int64 t
(** Raw 64-bit draw (seeds for nested deterministic structures); does not
    shrink. *)

val pick : print:('a -> string) -> 'a array -> 'a t
(** Uniform choice from a non-empty array; shrinks towards earlier
    elements (put the simplest value first). *)

val pair : 'a t -> 'b t -> ('a * 'b) t
(** Shrinks the first component first, then the second. *)

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val list_sized : ?min_len:int -> 'a t -> 'a list t
(** Length between [min_len] (default 0) and [max min_len size];
    shrinks by dropping chunks of elements, then by shrinking individual
    elements. *)

(** {1 Shrinking building blocks} (for hand-written generators) *)

val no_shrink : 'a -> 'a Seq.t

val shrink_int : lo:int -> int -> int Seq.t
(** Candidates between [lo] and the value, [lo] first then halving in. *)

val shrink_float : lo:float -> float -> float Seq.t

val shrink_list : ?elt:('a -> 'a Seq.t) -> min_len:int -> 'a list -> 'a list Seq.t
(** Chunk removals (keeping at least [min_len] elements) followed by
    single-element shrinks via [elt]. *)
