module Rng = Pops_util.Rng

exception Failed of string

let failf fmt = Printf.ksprintf (fun s -> raise (Failed s)) fmt
let require cond msg = if not cond then raise (Failed msg)
let requiref cond fmt = Printf.ksprintf (fun s -> if not cond then raise (Failed s)) fmt

let close_to ?(rtol = 1e-9) ?(atol = 1e-12) label expected actual =
  if not (Pops_util.Numerics.close ~rtol ~atol expected actual) then
    failf "%s: expected %.17g, got %.17g (rtol=%g atol=%g)" label expected actual rtol atol

let default_seed = 0x9095_5EED_2005L

type reg =
  | Reg : {
      name : string;
      cases : int;
      min_size : int;
      max_size : int;
      arb : 'a Gen.t;
      prop : 'a -> unit;
    }
      -> reg

let registry : reg list ref = ref []

let register ?(cases = 100) ?(min_size = 1) ?(max_size = 20) ~name arb prop =
  registry := Reg { name; cases; min_size; max_size; arb; prop } :: !registry

let registered () = List.rev_map (fun (Reg r) -> r.name) !registry

(* ------------------------------------------------------------------ *)
(* running one property                                                *)
(* ------------------------------------------------------------------ *)

type failure = {
  case_index : int;  (** 0-based index of the failing case *)
  case_seed : int64;
  counterexample : string;
  error : string;
  shrink_steps : int;
}

type prop_result = {
  r_name : string;
  r_cases : int;  (** cases executed (including the failing one) *)
  r_ms : float;
  r_failure : failure option;
}

let exn_message e bt =
  match e with
  | Failed s -> s
  | e ->
    let msg = "exception: " ^ Printexc.to_string e in
    let bt = Printexc.raw_backtrace_to_string bt in
    if Printexc.backtrace_status () && String.trim bt <> "" then msg ^ "\n" ^ bt else msg

(* [None] = the property holds on [v]. *)
let run_value prop v =
  match prop v with
  | () -> None
  | exception e -> Some (exn_message e (Printexc.get_raw_backtrace ()))

let gen_value (arb : _ Gen.t) seed size =
  match arb.Gen.gen (Rng.create seed) size with
  | v -> Ok v
  | exception e -> Error (Printexc.to_string e)

(* Greedy minimisation: first re-generate at smaller sizes (generators
   are pure in (seed, size), so this shrinks whole structures for free),
   then walk the value shrinker, always keeping the first candidate that
   still fails. *)
let shrink_failing (type a) (arb : a Gen.t) prop ~case_seed ~size ~min_size (v0 : a) err0 =
  let v = ref v0 and err = ref err0 and steps = ref 0 in
  (try
     for s = min_size to size - 1 do
       match gen_value arb case_seed s with
       | Error _ -> ()
       | Ok c -> (
         match run_value prop c with
         | Some e ->
           v := c;
           err := e;
           incr steps;
           raise Exit
         | None -> ())
     done
   with Exit -> ());
  let budget = ref 400 in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    (try
       Seq.iter
         (fun c ->
           decr budget;
           if !budget < 0 then raise Exit;
           match run_value prop c with
           | Some e ->
             v := c;
             err := e;
             incr steps;
             improved := true;
             raise Exit
           | None -> ())
         (arb.Gen.shrink !v)
     with Exit -> ())
  done;
  (!v, !err, !steps)

let size_of_case ~min_size ~max_size ~cases i =
  if cases <= 1 then max_size
  else min_size + ((max_size - min_size) * i / (cases - 1))

let run_prop ~global_seed ~cases_override (Reg r) =
  let cases = match cases_override with Some n -> max 1 n | None -> r.cases in
  let prop_seed = Int64.logxor global_seed (Rng.int64 (Rng.of_string r.name)) in
  let rng = Rng.create prop_seed in
  let t0 = Unix.gettimeofday () in
  let failure = ref None in
  let executed = ref 0 in
  (try
     for i = 0 to cases - 1 do
       executed := i + 1;
       let case_seed = Rng.int64 rng in
       let size = size_of_case ~min_size:r.min_size ~max_size:r.max_size ~cases i in
       match gen_value r.arb case_seed size with
       | Error e ->
         failure :=
           Some
             {
               case_index = i;
               case_seed;
               counterexample = "<generator raised>";
               error = "generator raised: " ^ e;
               shrink_steps = 0;
             };
         raise Exit
       | Ok v -> (
         match run_value r.prop v with
         | None -> ()
         | Some err ->
           let v', err', steps =
             shrink_failing r.arb r.prop ~case_seed ~size ~min_size:r.min_size v err
           in
           failure :=
             Some
               {
                 case_index = i;
                 case_seed;
                 counterexample = r.arb.Gen.print v';
                 error = err';
                 shrink_steps = steps;
               };
           raise Exit)
     done
   with Exit -> ());
  {
    r_name = r.name;
    r_cases = !executed;
    r_ms = (Unix.gettimeofday () -. t0) *. 1000.;
    r_failure = !failure;
  }

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

type config = {
  cases_override : int option;
  seed : int64;
  only : string list;
  list_only : bool;
}

let parse_seed s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "bad seed %S (decimal or 0x hex)" s)

let usage () =
  print_string
    "pops_prop — property-based correctness harness\n\
     options:\n\
    \  --cases N    run every property with N cases (deep fuzz)\n\
    \  --seed S     global seed, decimal or 0x hex (env: POPS_PROP_SEED)\n\
    \  --only SUB   run only properties whose name contains SUB (repeatable)\n\
    \  --list       print registered property names and exit\n"

let parse_argv argv =
  let cfg =
    ref
      {
        cases_override = None;
        seed =
          (match Sys.getenv_opt "POPS_PROP_SEED" with
          | Some s -> parse_seed s
          | None -> default_seed);
        only = [];
        list_only = false;
      }
  in
  let rec go = function
    | [] -> ()
    | "--cases" :: n :: rest ->
      cfg := { !cfg with cases_override = Some (int_of_string n) };
      go rest
    | "--seed" :: s :: rest ->
      cfg := { !cfg with seed = parse_seed s };
      go rest
    | "--only" :: sub :: rest ->
      cfg := { !cfg with only = sub :: !cfg.only };
      go rest
    | "--list" :: rest ->
      cfg := { !cfg with list_only = true };
      go rest
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S (try --help)" arg)
  in
  go (List.tl (Array.to_list argv));
  !cfg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let failure_file () =
  Option.value (Sys.getenv_opt "POPS_PROP_FAILURE_FILE") ~default:"pops_prop_failures.txt"

(* the POPS_FAULT value the process started with; part of the failure's
   identity — a fault-leg counterexample only replays under the same
   spec, so every repro line and artifact records it *)
let fault_spec = Pops_robust.Fault.ambient

let repro_command ~seed ~cases name =
  Printf.sprintf "%sPOPS_PROP_SEED=0x%Lx dune exec test/pops_prop.exe -- --only '%s'%s"
    (match fault_spec with
    | Some spec -> Printf.sprintf "POPS_FAULT='%s' " spec
    | None -> "")
    seed name
    (match cases with None -> "" | Some n -> Printf.sprintf " --cases %d" n)

let report_failure oc ~seed ~cases_override r f =
  Printf.fprintf oc "[FAIL] %s (case %d/%d, %d shrink steps, case seed 0x%Lx)\n" r.r_name
    (f.case_index + 1) r.r_cases f.shrink_steps f.case_seed;
  Printf.fprintf oc "  counterexample: %s\n" f.counterexample;
  Printf.fprintf oc "  error: %s\n" f.error;
  Printf.fprintf oc "  replay: %s\n" (repro_command ~seed ~cases:cases_override r.r_name)

let main () =
  let cfg = parse_argv Sys.argv in
  (* the ambient spec must not leak into properties that assert exact
     behaviour; fault properties re-arm it per case through
     [Fault.with_spec]/[Fault.case_spec] *)
  Pops_robust.Fault.clear ();
  (match Pops_robust.Fault.ambient_error with
  | Some e -> prerr_endline ("pops_prop: ignoring malformed spec: " ^ e)
  | None -> ());
  let props = List.rev !registry in
  let props =
    match cfg.only with
    | [] -> props
    | subs -> List.filter (fun (Reg r) -> List.exists (contains r.name) subs) props
  in
  if cfg.list_only then begin
    List.iter (fun (Reg r) -> Printf.printf "%s (%d cases)\n" r.name r.cases) props;
    exit 0
  end;
  if props = [] then begin
    prerr_endline "pops_prop: no properties match the --only filters";
    exit 1
  end;
  Printf.printf "pops_prop: %d properties, seed 0x%Lx%s%s\n%!" (List.length props) cfg.seed
    (match cfg.cases_override with
    | Some n -> Printf.sprintf ", %d cases each" n
    | None -> "")
    (match fault_spec with
    | Some spec -> Printf.sprintf ", POPS_FAULT=%s" spec
    | None -> "");
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  let total_cases = ref 0 in
  List.iter
    (fun reg ->
      let r = run_prop ~global_seed:cfg.seed ~cases_override:cfg.cases_override reg in
      total_cases := !total_cases + r.r_cases;
      (match r.r_failure with
      | None -> Printf.printf "[PASS] %-46s %5d cases %9.1f ms\n%!" r.r_name r.r_cases r.r_ms
      | Some f ->
        report_failure stdout ~seed:cfg.seed ~cases_override:cfg.cases_override r f;
        failures := (r, f) :: !failures);
      ())
    props;
  let elapsed = Unix.gettimeofday () -. t0 in
  (match List.rev !failures with
  | [] -> ()
  | fs ->
    (* persist for the CI artifact *)
    let oc = open_out (failure_file ()) in
    Printf.fprintf oc "pops_prop failures (global seed 0x%Lx%s)\n\n" cfg.seed
      (match fault_spec with
      | Some spec -> Printf.sprintf ", POPS_FAULT=%s" spec
      | None -> ", no fault injection");
    List.iter (fun (r, f) -> report_failure oc ~seed:cfg.seed ~cases_override:cfg.cases_override r f) fs;
    close_out oc);
  Printf.printf "%d properties, %d cases, %d failure%s in %.1f s\n" (List.length props)
    !total_cases (List.length !failures)
    (if List.length !failures = 1 then "" else "s")
    elapsed;
  if !failures <> [] then begin
    Printf.printf "failure details written to %s\n" (failure_file ());
    exit 1
  end
