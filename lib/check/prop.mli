(** Property runner: deterministic seeds, greedy shrinking, one-line
    repro commands.

    Properties are registered with {!register} and executed by {!main}
    (the [pops_prop] executable).  Every run is reproducible: each
    property derives its stream from the global seed (the
    [POPS_PROP_SEED] environment variable, or [--seed], default
    {!default_seed}) and the property's name, and every case records the
    one 64-bit seed it was generated from.  On failure the runner

    + re-generates the case at smaller sizes (structural shrinking for
      free, since generators are pure functions of seed and size),
    + then greedily applies the generator's value shrinker,

    and prints the minimal counterexample together with a command line
    that replays it.  Failures are also appended to
    [pops_prop_failures.txt] (override with [POPS_PROP_FAILURE_FILE]) so
    CI can upload them as an artifact.  A [POPS_FAULT] spec present at
    startup is part of a failure's identity: {!main} disarms it (fault
    properties re-arm per case via {!Fault.case_spec}) but records it in
    the banner, the artifact header and every repro command line.

    Command line of {!main}:
    [--cases N] run every property with N cases (deep-fuzz profile);
    [--seed S] global seed (decimal or 0x hex);
    [--only SUB] run only properties whose name contains SUB (repeatable);
    [--list] print the registered property names and exit. *)

exception Failed of string
(** Raise (via the helpers below) to fail the current case with a
    message; any other exception also fails the case, with
    [Printexc.to_string] as the message. *)

val failf : ('a, unit, string, 'b) format4 -> 'a
(** Fail the current case with a formatted message. *)

val require : bool -> string -> unit
(** [require cond msg] fails with [msg] unless [cond]. *)

val requiref : bool -> ('a, unit, string, unit) format4 -> 'a
(** [requiref cond fmt ...] — formatted {!require}.  The message
    arguments are evaluated eagerly. *)

val close_to : ?rtol:float -> ?atol:float -> string -> float -> float -> unit
(** [close_to label expected actual] fails unless
    [|e - a| <= atol + rtol * max |e| |a|] (defaults
    [rtol = 1e-9], [atol = 1e-12]). *)

val default_seed : int64

val register :
  ?cases:int -> ?min_size:int -> ?max_size:int -> name:string ->
  'a Gen.t -> ('a -> unit) -> unit
(** [register ~name gen prop] adds a property to the registry.  [cases]
    (default 100) is the default-profile case count — [--cases] overrides
    it for deep runs.  The generator size ramps linearly from [min_size]
    (default 1) to [max_size] (default 20) across the cases. *)

val registered : unit -> string list
(** Names, in registration order. *)

val main : unit -> unit
(** Parse [Sys.argv], run the (filtered) registry, print a per-property
    line and a summary, and [exit 1] if any property failed. *)
