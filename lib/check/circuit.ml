module Rng = Pops_util.Rng
module Tech = Pops_process.Tech
module Gate_kind = Pops_cell.Gate_kind
module Library = Pops_cell.Library
module Edge = Pops_delay.Edge
module Model = Pops_delay.Model
module Path = Pops_delay.Path
module Netlist = Pops_netlist.Netlist
module Transform = Pops_netlist.Transform
module Generator = Pops_netlist.Generator

let technologies =
  let corners = [| Tech.TT; Tech.SS; Tech.FF; Tech.SF; Tech.FS |] in
  Array.concat
    (List.map
       (fun t -> Array.map (Tech.at_corner t) corners)
       [ Tech.cmos025; Tech.cmos018 ])

let tech = Gen.pick ~print:(fun t -> t.Tech.name) technologies

let libraries : (string, Library.t) Hashtbl.t = Hashtbl.create 16

let library t =
  match Hashtbl.find_opt libraries t.Tech.name with
  | Some lib -> lib
  | None ->
    let lib = Library.make t in
    Hashtbl.add libraries t.Tech.name lib;
    lib

(* ------------------------------------------------------------------ *)
(* bounded paths                                                       *)
(* ------------------------------------------------------------------ *)

type path_spec = {
  p_tech : Tech.t;
  kinds : Gate_kind.t list;
  mults : float list;
  c_out : float;
  branch : float;
  input_slope : float;
  input_edge : Edge.t;
  opts : Model.opts;
}

let all_path_kinds =
  [|
    Gate_kind.Inv;
    Gate_kind.Buf;
    Gate_kind.Nand 2;
    Gate_kind.Nor 2;
    Gate_kind.Nand 3;
    Gate_kind.Nor 3;
    Gate_kind.Nand 4;
    Gate_kind.Nor 4;
    Gate_kind.Aoi21;
    Gate_kind.Oai21;
    Gate_kind.Aoi22;
    Gate_kind.Oai22;
    Gate_kind.Xor2;
    Gate_kind.Xnor2;
  |]

let opts_choices =
  [|
    Model.default_opts;
    { Model.with_slope = false; with_coupling = true };
    { Model.with_slope = true; with_coupling = false };
    { Model.with_slope = false; with_coupling = false };
  |]

let print_opts (o : Model.opts) =
  Printf.sprintf "slope=%b coupling=%b" o.with_slope o.with_coupling

let print_edge = function Edge.Rising -> "rising" | Edge.Falling -> "falling"

let print_path_spec s =
  Printf.sprintf
    "{tech=%s; kinds=[%s]; mults=[%s]; c_out=%.4g fF; branch=%.4g fF; slope=%.4g ps; edge=%s; %s}"
    s.p_tech.Tech.name
    (String.concat "; " (List.map Gate_kind.name s.kinds))
    (String.concat "; " (List.map (Printf.sprintf "%.3g") s.mults))
    s.c_out s.branch s.input_slope (print_edge s.input_edge) (print_opts s.opts)

let drop_nth i l = List.filteri (fun j _ -> j <> i) l
let set_nth i v l = List.mapi (fun j x -> if j = i then v else x) l

let shrink_path_spec ~min_stages s =
  let cands = ref [] in
  let add c = cands := c :: !cands in
  let n = List.length s.kinds in
  if n > min_stages then
    for i = 0 to n - 1 do
      add { s with kinds = drop_nth i s.kinds; mults = drop_nth i s.mults }
    done;
  if s.p_tech.Tech.name <> technologies.(0).Tech.name then
    add { s with p_tech = technologies.(0) };
  List.iteri
    (fun i k ->
      if not (Gate_kind.equal k Gate_kind.Inv) then
        add { s with kinds = set_nth i Gate_kind.Inv s.kinds })
    s.kinds;
  List.iteri (fun i m -> if m > 1.001 then add { s with mults = set_nth i 1. s.mults }) s.mults;
  if s.input_edge <> Edge.Rising then add { s with input_edge = Edge.Rising };
  if s.opts <> Model.default_opts then add { s with opts = Model.default_opts };
  Seq.iter (fun v -> add { s with c_out = v }) (Gen.shrink_float ~lo:2. s.c_out);
  Seq.iter (fun v -> add { s with branch = v }) (Gen.shrink_float ~lo:0. s.branch);
  Seq.iter (fun v -> add { s with input_slope = v }) (Gen.shrink_float ~lo:5. s.input_slope);
  List.to_seq (List.rev !cands)

let path_spec ?(kinds = all_path_kinds) ?(min_stages = 1) ?(max_stages = 8) () =
  if min_stages < 1 || max_stages < min_stages then invalid_arg "Circuit.path_spec";
  let gen rng size =
    let span = min (max_stages - min_stages + 1) (max 1 size) in
    let n = min_stages + Rng.int rng span in
    let ks = List.init n (fun _ -> Rng.pick rng kinds) in
    let mults = List.init n (fun _ -> Rng.log_range rng 1. 32.) in
    {
      p_tech = Rng.pick rng technologies;
      kinds = ks;
      mults;
      c_out = Rng.log_range rng 2. 200.;
      branch = Rng.float rng 20.;
      input_slope = Rng.log_range rng 5. 300.;
      input_edge = (if Rng.bool rng then Edge.Rising else Edge.Falling);
      opts = Rng.pick rng opts_choices;
    }
  in
  Gen.make ~shrink:(shrink_path_spec ~min_stages) ~print:print_path_spec gen

let to_path s =
  Path.of_kinds ~opts:s.opts ~input_slope:s.input_slope ~input_edge:s.input_edge
    ~branch:s.branch ~lib:(library s.p_tech) ~c_out:s.c_out s.kinds

let sizing s =
  let cmin = s.p_tech.Tech.cmin in
  Array.of_list (List.map (fun m -> m *. cmin) s.mults)

(* ------------------------------------------------------------------ *)
(* random DAG netlists                                                 *)
(* ------------------------------------------------------------------ *)

type dag_spec = { d_seed : int64; n_inputs : int; n_gates : int }

let print_dag_spec s =
  Printf.sprintf "dag{seed=0x%Lx; inputs=%d; gates=%d}" s.d_seed s.n_inputs s.n_gates

let shrink_dag_spec s =
  Seq.append
    (Seq.map (fun g -> { s with n_gates = g }) (Gen.shrink_int ~lo:1 s.n_gates))
    (Seq.map (fun i -> { s with n_inputs = i }) (Gen.shrink_int ~lo:2 s.n_inputs))

let dag_spec =
  Gen.make ~shrink:shrink_dag_spec ~print:print_dag_spec (fun rng size ->
      {
        d_seed = Rng.int64 rng;
        n_inputs = 2 + Rng.int rng (max 1 (min size 8));
        n_gates = 1 + Rng.int rng (max 1 (2 * size));
      })

let dag_kinds = all_path_kinds

let build_dag ?(tech = Tech.cmos025) spec =
  let rng = Rng.create spec.d_seed in
  let nl = Netlist.create tech in
  let n_inputs = max 2 spec.n_inputs and n_gates = max 1 spec.n_gates in
  let nodes = Array.make (n_inputs + n_gates) 0 in
  for i = 0 to n_inputs - 1 do
    nodes.(i) <- Netlist.add_input nl
  done;
  for g = 0 to n_gates - 1 do
    let avail = n_inputs + g in
    let kind = Rng.pick rng dag_kinds in
    let fanins =
      Array.init (Gate_kind.arity kind) (fun _ ->
          (* bias towards recent nodes so the DAG develops depth *)
          let off =
            if Rng.bool rng then Rng.int rng (min avail 12) else Rng.int rng avail
          in
          nodes.(avail - 1 - off))
    in
    let cin = tech.Tech.cmin *. Rng.log_range rng 1. 16. in
    let wire = if Rng.int rng 4 = 0 then Rng.float rng 10. else 0. in
    nodes.(avail) <- Netlist.add_gate ~cin ~wire nl kind fanins
  done;
  List.iter
    (fun id ->
      if (Netlist.node nl id).Netlist.fanouts = [] then
        Netlist.set_output nl id ~load:(5. +. Rng.float rng 55.))
    (Netlist.gate_ids nl);
  (match Netlist.outputs nl with
  | [] -> Netlist.set_output nl nodes.(n_inputs + n_gates - 1) ~load:30.
  | _ :: _ -> ());
  nl

(* ------------------------------------------------------------------ *)
(* edit sequences                                                      *)
(* ------------------------------------------------------------------ *)

type edit =
  | Resize of int * float
  | Set_wire of int * float
  | Set_load of int * float
  | Insert_buffer of int
  | De_morgan of int

let print_edit = function
  | Resize (i, m) -> Printf.sprintf "resize(%d, %.3gx)" i m
  | Set_wire (i, w) -> Printf.sprintf "set_wire(%d, %.3g fF)" i w
  | Set_load (i, l) -> Printf.sprintf "set_load(%d, %.3g fF)" i l
  | Insert_buffer i -> Printf.sprintf "insert_buffer(%d)" i
  | De_morgan i -> Printf.sprintf "de_morgan(%d)" i

let shrink_edit e =
  let ints i rebuild = Seq.map rebuild (Gen.shrink_int ~lo:0 i) in
  match e with
  | Resize (i, m) ->
    Seq.append (ints i (fun i' -> Resize (i', m)))
      (Seq.map (fun m' -> Resize (i, m')) (Gen.shrink_float ~lo:1. m))
  | Set_wire (i, w) ->
    Seq.append (Seq.return (Resize (i, 1.))) (ints i (fun i' -> Set_wire (i', w)))
  | Set_load (i, l) ->
    Seq.append (Seq.return (Resize (i, 1.))) (ints i (fun i' -> Set_load (i', l)))
  | Insert_buffer i ->
    Seq.append (Seq.return (Resize (i, 1.))) (ints i (fun i' -> Insert_buffer i'))
  | De_morgan i ->
    Seq.append (Seq.return (Resize (i, 1.))) (ints i (fun i' -> De_morgan i'))

let edit =
  Gen.make ~shrink:shrink_edit ~print:print_edit (fun rng _size ->
      match Rng.int rng 5 with
      | 0 -> Resize (Rng.int rng 64, Rng.log_range rng 1. 32.)
      | 1 -> Set_wire (Rng.int rng 64, Rng.float rng 15.)
      | 2 -> Set_load (Rng.int rng 8, 5. +. Rng.float rng 55.)
      | 3 -> Insert_buffer (Rng.int rng 64)
      | _ -> De_morgan (Rng.int rng 64))

let nth_wrap l i = match List.length l with 0 -> None | n -> Some (List.nth l (i mod n))

let apply_edit nl e =
  let cmin = (Netlist.tech nl).Tech.cmin in
  match e with
  | Resize (i, m) -> (
    match nth_wrap (Netlist.gate_ids nl) i with
    | Some id ->
      Netlist.set_cin nl id (Float.min (1000. *. cmin) (Float.max cmin (m *. cmin)))
    | None -> ())
  | Set_wire (i, w) -> (
    match nth_wrap (Netlist.gate_ids nl) i with
    | Some id -> Netlist.set_wire nl id (Float.max 0. w)
    | None -> ())
  | Set_load (i, l) -> (
    match nth_wrap (List.map fst (Netlist.outputs nl)) i with
    | Some id -> Netlist.set_output nl id ~load:(Float.max 0. l)
    | None -> ())
  | Insert_buffer i -> (
    match nth_wrap (Netlist.gate_ids nl) i with
    | Some id -> ignore (Transform.insert_buffer nl ~after:id)
    | None -> ())
  | De_morgan i -> (
    match nth_wrap (Netlist.gate_ids nl) i with
    | Some id -> ignore (Transform.de_morgan nl id)
    | None -> ())

(* ------------------------------------------------------------------ *)
(* spine circuits                                                      *)
(* ------------------------------------------------------------------ *)

type spine_spec = {
  sp_tag : int;
  sp_path_gates : int;
  sp_total_gates : int;
  sp_out_load : float;
}

let print_spine_spec s =
  Printf.sprintf "spine{tag=%d; path=%d; total=%d; out_load=%.3g fF}" s.sp_tag
    s.sp_path_gates s.sp_total_gates s.sp_out_load

let shrink_spine_spec s =
  Seq.append
    (Seq.map
       (fun p -> { s with sp_path_gates = p; sp_total_gates = max (2 * p) (2 * 3) })
       (Gen.shrink_int ~lo:3 s.sp_path_gates))
    (Seq.map (fun t -> { s with sp_tag = t }) (Gen.shrink_int ~lo:0 s.sp_tag))

let spine_spec =
  Gen.make ~shrink:shrink_spine_spec ~print:print_spine_spec (fun rng size ->
      let path_gates = 3 + Rng.int rng (max 1 (min size 5)) in
      {
        sp_tag = Rng.int rng 1_000_000;
        sp_path_gates = path_gates;
        sp_total_gates = 2 * path_gates;
        sp_out_load = 30. +. Rng.float rng 60.;
      })

let build_spine tech s =
  let profile =
    Generator.make_profile
      ~name:(Printf.sprintf "prop-%d-%d" s.sp_tag s.sp_path_gates)
      ~path_gates:s.sp_path_gates ~total_gates:s.sp_total_gates
      ~out_load:s.sp_out_load ()
  in
  Generator.generate tech profile

(* ------------------------------------------------------------------ *)
(* SPICE oracle domain                                                 *)
(* ------------------------------------------------------------------ *)

let spice_chain =
  path_spec ~kinds:[| Gate_kind.Inv; Gate_kind.Nand 2; Gate_kind.Nor 2 |]
    ~min_stages:2 ~max_stages:6 ()

let sanitize_spice s =
  let clampf lo hi v = Float.min hi (Float.max lo v) in
  {
    s with
    opts = Model.default_opts;
    branch = clampf 0. 5. s.branch;
    c_out = clampf 10. 100. s.c_out;
    input_slope = clampf 20. 100. s.input_slope;
    mults = List.map (clampf 1. 16.) s.mults;
  }

let to_vt_path s vt =
  let lib = library s.p_tech in
  let shift = Tech.vt_shift vt in
  let tech =
    { s.p_tech with Tech.vtn = s.p_tech.Tech.vtn +. shift;
      vtp = s.p_tech.Tech.vtp +. shift }
  in
  let stage kind =
    { Path.cell = Pops_cell.Library.find_vt lib kind vt; branch = s.branch }
  in
  Path.make ~opts:s.opts ~input_slope:s.input_slope ~input_edge:s.input_edge
    ~tech ~c_out:s.c_out (List.map stage s.kinds)
