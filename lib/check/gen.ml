module Rng = Pops_util.Rng

type 'a t = {
  gen : Rng.t -> int -> 'a;
  shrink : 'a -> 'a Seq.t;
  print : 'a -> string;
}

let no_shrink _ = Seq.empty

let make ?(shrink = no_shrink) ~print gen = { gen; shrink; print }

let return ~print v = { gen = (fun _ _ -> v); shrink = no_shrink; print }

let shrink_int ~lo n =
  if n <= lo then Seq.empty
  else
    (* lo first (most aggressive), then halving back towards n *)
    let rec steps d acc = if d <= 0 then List.rev acc else steps (d / 2) ((n - d) :: acc) in
    steps (n - lo) []
    |> List.sort_uniq compare
    |> List.filter (fun x -> x >= lo && x < n)
    |> List.to_seq

let shrink_float ~lo x =
  if (not (Float.is_finite x)) || x <= lo then Seq.empty
  else
    let rec steps d k acc =
      if k = 0 || d <= 1e-9 *. (Float.abs x +. 1.) then List.rev acc
      else steps (d /. 2.) (k - 1) ((x -. d) :: acc)
    in
    List.to_seq (steps (x -. lo) 8 [])

let int_range lo hi =
  if hi < lo then invalid_arg "Gen.int_range";
  {
    gen = (fun rng _ -> lo + Rng.int rng (hi - lo + 1));
    shrink = shrink_int ~lo;
    print = string_of_int;
  }

let float_range lo hi =
  if hi <= lo then invalid_arg "Gen.float_range";
  {
    gen = (fun rng _ -> Rng.range rng lo hi);
    shrink = shrink_float ~lo;
    print = (fun x -> Printf.sprintf "%.6g" x);
  }

let log_float_range lo hi =
  if not (0. < lo && lo < hi) then invalid_arg "Gen.log_float_range";
  {
    gen = (fun rng _ -> Rng.log_range rng lo hi);
    shrink = shrink_float ~lo;
    print = (fun x -> Printf.sprintf "%.6g" x);
  }

let bool =
  {
    gen = (fun rng _ -> Rng.bool rng);
    shrink = (fun b -> if b then Seq.return false else Seq.empty);
    print = string_of_bool;
  }

let int64 =
  {
    gen = (fun rng _ -> Rng.int64 rng);
    shrink = no_shrink;
    print = (fun x -> Printf.sprintf "0x%Lx" x);
  }

let pick ~print xs =
  if Array.length xs = 0 then invalid_arg "Gen.pick: empty array";
  let index_of v =
    let rec go i = if i >= Array.length xs then None else if xs.(i) = v then Some i else go (i + 1) in
    go 0
  in
  {
    gen = (fun rng _ -> Rng.pick rng xs);
    shrink =
      (fun v ->
        match index_of v with
        | Some i when i > 0 -> List.to_seq (List.init i (fun j -> xs.(j)))
        | _ -> Seq.empty);
    print;
  }

let pair a b =
  {
    gen = (fun rng size -> (a.gen rng size, b.gen rng size));
    shrink =
      (fun (x, y) ->
        Seq.append
          (Seq.map (fun x' -> (x', y)) (a.shrink x))
          (Seq.map (fun y' -> (x, y')) (b.shrink y)));
    print = (fun (x, y) -> Printf.sprintf "(%s, %s)" (a.print x) (b.print y));
  }

let triple a b c =
  {
    gen = (fun rng size -> (a.gen rng size, b.gen rng size, c.gen rng size));
    shrink =
      (fun (x, y, z) ->
        List.to_seq
          [
            Seq.map (fun x' -> (x', y, z)) (a.shrink x);
            Seq.map (fun y' -> (x, y', z)) (b.shrink y);
            Seq.map (fun z' -> (x, y, z')) (c.shrink z);
          ]
        |> Seq.concat);
    print =
      (fun (x, y, z) ->
        Printf.sprintf "(%s, %s, %s)" (a.print x) (b.print y) (c.print z));
  }

let shrink_list ?(elt = no_shrink) ~min_len l =
  let n = List.length l in
  if n <= min_len then
    (* only element-level shrinks remain *)
    List.to_seq
      (List.concat
         (List.mapi
            (fun i x ->
              List.of_seq
                (Seq.map
                   (fun x' -> List.mapi (fun j y -> if j = i then x' else y) l)
                   (elt x)))
            l))
  else
    let arr = Array.of_list l in
    (* drop a chunk of k consecutive elements, big chunks first *)
    let drops = ref [] in
    let k = ref (n - min_len) in
    while !k >= 1 do
      let kk = !k in
      for start = 0 to n - kk do
        let kept = ref [] in
        for i = n - 1 downto 0 do
          if i < start || i >= start + kk then kept := arr.(i) :: !kept
        done;
        drops := !kept :: !drops
      done;
      k := !k / 2
    done;
    let drops = List.rev !drops in
    let elems =
      List.concat
        (List.mapi
           (fun i x ->
             List.of_seq
               (Seq.map (fun x' -> List.mapi (fun j y -> if j = i then x' else y) l) (elt x)))
           l)
    in
    List.to_seq (drops @ elems)

let list_sized ?(min_len = 0) elt =
  {
    gen =
      (fun rng size ->
        let hi = max min_len size in
        let len = min_len + Rng.int rng (hi - min_len + 1) in
        List.init len (fun _ -> elt.gen rng size));
    shrink = (fun l -> shrink_list ~elt:elt.shrink ~min_len l);
    print = (fun l -> "[" ^ String.concat "; " (List.map elt.print l) ^ "]");
  }
