(** Test-harness face of {!Pops_robust.Fault}.

    Re-exports the injection registry and adds the deterministic
    per-case spec builders the property suite arms with
    {!Pops_robust.Fault.with_spec}.  When the [POPS_FAULT] environment
    variable is set (the CI fault leg runs [POPS_FAULT=all]), the
    builders keep the operator's point selection and only re-seed per
    case; otherwise they draw a single point from the registry. *)

include module type of Pops_robust.Fault

val case_spec : Pops_util.Rng.t -> string
(** A spec arming one registered point (or the ambient [POPS_FAULT]
    selection, if armed) with a seed drawn from [rng]. *)

val solver_spec : Pops_util.Rng.t -> string
(** Like {!case_spec} but restricted to the [solver.*] points — single
    rungs and whole-family prefixes — so a property can force ladder
    descents without touching pool or parser behaviour. *)
