include Pops_robust.Fault

module Rng = Pops_util.Rng

(* Keep the operator's point selection when POPS_FAULT is armed (so
   `POPS_FAULT=all dune runtest` sweeps every point), but re-seed per
   case: a later seed= entry overrides an earlier one in the spec
   grammar, so appending is enough. *)
let case_spec rng =
  let seed = Rng.int64 rng in
  match ambient with
  | Some text when ambient_error = None -> Printf.sprintf "%s,seed=%Ld" text seed
  | _ ->
    let point = Rng.pick rng (Array.of_list points) in
    Printf.sprintf "%s,seed=%Ld" point seed

let solver_spec rng =
  let seed = Rng.int64 rng in
  let point =
    Rng.pick rng
      [| "solver.diverge.accel"; "solver.diverge.plain"; "solver.diverge.damped";
         "solver.nan.accel"; "solver.nan.plain"; "solver.nan.damped";
         "solver.diverge"; "solver.nan" |]
  in
  Printf.sprintf "%s,seed=%Ld" point seed
