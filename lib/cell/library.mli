(** A characterised cell library for one process.

    Construction characterises every {!Gate_kind.t} once; lookups are then
    O(1).  The library also owns the discrete drive grid used when the
    continuous optimum must be snapped to implementable drives (the paper
    sizes continuously; snapping quantifies the cost of a real library). *)

type t

val make : ?kinds:Gate_kind.t list -> Pops_process.Tech.t -> t
(** [make tech] characterises [kinds] (default: {!Gate_kind.all}) in
    process [tech]. *)

val tech : t -> Pops_process.Tech.t

val find : t -> Gate_kind.t -> Cell.t
(** The LVT (nominal-speed) variant of a kind — the cell the sizing flow
    optimizes with.
    @raise Not_found if the kind was excluded at construction. *)

val find_vt : t -> Gate_kind.t -> Pops_process.Vt.t -> Cell.t
(** The given Vt variant of a kind.  [find_vt t kind Lvt == find t kind].
    @raise Not_found if the kind was excluded at construction. *)

val inverter : t -> Cell.t
(** The inverter cell, used pervasively by buffering code. *)

val cells : t -> Cell.t list

val drive_grid : t -> float array
(** Available discrete drives as multiples of [cmin]:
    [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64]. *)

val snap_cin : t -> float -> float
(** [snap_cin lib cin] rounds an input capacitance up to the nearest grid
    drive (never down, so a met delay constraint stays met); values above
    the largest grid point are left unchanged (continuous beyond x64). *)

val pp : Format.formatter -> t -> unit
