type t = {
  kind : Gate_kind.t;
  tech : Pops_process.Tech.t;
  k : float;
  dw_hl : float;
  dw_lh : float;
  s_hl : float;
  s_lh : float;
  par_ratio : float;
  cm_ratio_hl : float;
  cm_ratio_lh : float;
  vt : Pops_process.Vt.t;
  tau_factor : float;
  leak_factor : float;
  vtn_red : float;
  vtp_red : float;
}

(* NMOS at 0.25 um is strongly velocity saturated: stacking costs less
   than linearly.  Holes are much less saturated, so PMOS stacks pay the
   full (slightly super-) linear price — this is why measured NOR efforts
   exceed the symmetric first-order theory, and why the paper's Table 2
   ranks nor2 below nand3. *)
let stack_factor_n = 0.70
let stack_factor_p = 1.35
let stack_factor = stack_factor_n

let weight_of_stack factor n = 1. +. (factor *. float_of_int (n - 1))

(* XOR-class cells carry the pass/extra transistors of their CMOS
   realisation: more area and junction per fF of input. *)
let area_factor = function
  | Gate_kind.Xor2 | Gate_kind.Xnor2 -> 1.5
  | Gate_kind.Inv | Gate_kind.Buf | Gate_kind.Nand _ | Gate_kind.Nor _
  | Gate_kind.Aoi21 | Gate_kind.Oai21 | Gate_kind.Aoi22 | Gate_kind.Oai22 -> 1.0

let make ?k ?(vt = Pops_process.Vt.Lvt) (tech : Pops_process.Tech.t) kind =
  let k = Option.value k ~default:tech.k_ratio in
  let k_nom = tech.k_ratio in
  let dw_hl = weight_of_stack stack_factor_n (Gate_kind.series_n kind) in
  let dw_lh = weight_of_stack stack_factor_p (Gate_kind.series_p kind) in
  (* Eq. (3), normalised so a nominal inverter has S_HL = 1: the falling
     edge is driven by the N stack (width cin/(cg(1+k))), the rising edge by
     the P stack, penalised by the current ratio R and helped by k. *)
  let s_hl = dw_hl *. (1. +. k) /. (1. +. k_nom) in
  let s_lh = dw_lh *. tech.r_ratio *. (1. +. k) /. (k *. (1. +. k_nom)) in
  let stack = max (Gate_kind.series_n kind) (Gate_kind.series_p kind) in
  let par_ratio =
    tech.cj_per_um /. tech.cg_per_um
    *. (1. +. (0.35 *. float_of_int (stack - 1)))
    *. area_factor kind
  in
  let cm_ratio_hl = tech.coupling_ratio *. (k /. (1. +. k)) in
  let cm_ratio_lh = tech.coupling_ratio *. (1. /. (1. +. k)) in
  {
    kind;
    tech;
    k;
    dw_hl;
    dw_lh;
    s_hl;
    s_lh;
    par_ratio;
    cm_ratio_hl;
    cm_ratio_lh;
    vt;
    tau_factor = Pops_process.Tech.vt_tau_factor tech vt;
    leak_factor = Pops_process.Tech.vt_leak_factor tech vt;
    vtn_red = Pops_process.Tech.vtn_reduced_vt tech vt;
    vtp_red = Pops_process.Tech.vtp_reduced_vt tech vt;
  }

let arity t = Gate_kind.arity t.kind

let min_cin t = t.tech.cmin

let cpar t ~cin = t.par_ratio *. cin

let area t ~cin =
  float_of_int (arity t) *. area_factor t.kind *. cin /. t.tech.cg_per_um

let cin_of_area t ~area:a =
  a *. t.tech.cg_per_um /. (float_of_int (arity t) *. area_factor t.kind)

let pp ppf t =
  Format.fprintf ppf
    "%a: k=%.2f DW(hl/lh)=%.2f/%.2f S(hl/lh)=%.2f/%.2f par=%.2f"
    Gate_kind.pp t.kind t.k t.dw_hl t.dw_lh t.s_hl t.s_lh t.par_ratio
