(** Electrical model of a library cell.

    A cell couples a {!Gate_kind.t} with the reduced electrical parameters
    the delay model (eqs. 1–3 of the paper) consumes:

    - logical weights [DW_HL] / [DW_LH]: ratio of the current available in
      an inverter to that of the cell's series transistor array (paper
      ref. [14]).  A stack of [n] transistors has weight
      [1 + stack_factor * (n - 1)] — slightly below [n] because velocity
      saturation softens stacking at 0.25 um;
    - symmetry factors [S_HL] / [S_LH] (eq. 3), built from the P/N
      configuration ratio [k], the N/P current ratio [R] and the weights;
    - the parasitic (drain-junction) output capacitance, proportional to
      the cell's own input capacitance;
    - the input-to-output coupling capacitance [C_M] per switching edge
      (half the gate capacitance of the P (resp. N) transistor for a
      rising (resp. falling) input edge).

    Cells are continuously sizable: an instance is a [cell] plus an input
    capacitance [cin] (fF per input), from which widths and area follow. *)

type t = private {
  kind : Gate_kind.t;
  tech : Pops_process.Tech.t;
  k : float;  (** P/N width ratio used by this cell *)
  dw_hl : float;
  dw_lh : float;
  s_hl : float;  (** symmetry factor, falling output edge *)
  s_lh : float;  (** symmetry factor, rising output edge *)
  par_ratio : float;  (** C_par = par_ratio * cin *)
  cm_ratio_hl : float;  (** C_M = cm_ratio_hl * cin for output-falling *)
  cm_ratio_lh : float;  (** C_M = cm_ratio_lh * cin for output-rising *)
  vt : Pops_process.Vt.t;  (** threshold class of this cell variant *)
  tau_factor : float;
      (** delay derating of the Vt class ({!Pops_process.Tech.vt_tau_factor});
          exactly [1.0] for LVT *)
  leak_factor : float;
      (** leakage multiplier of the Vt class
          ({!Pops_process.Tech.vt_leak_factor}); exactly [1.0] for LVT *)
  vtn_red : float;  (** reduced NMOS threshold [(vtn + shift) / vdd] *)
  vtp_red : float;  (** reduced PMOS threshold [(vtp + shift) / vdd] *)
}

val stack_factor_n : float
(** Per-stage weight increment of NMOS series stacks (< 1: velocity
    saturation softens N stacking at 0.25 um). *)

val stack_factor_p : float
(** Per-stage weight increment of PMOS series stacks (~1: holes are barely
    velocity saturated, so P stacks pay the full price — this is what
    makes NOR gates the inefficient ones, cf. the paper's Table 2). *)

val stack_factor : float
(** Alias for {!stack_factor_n} (kept for the simulator's stack model). *)

val make : ?k:float -> ?vt:Pops_process.Vt.t -> Pops_process.Tech.t -> Gate_kind.t -> t
(** [make tech kind] builds the cell model; [k] defaults to the process
    configuration ratio [tech.k_ratio], [vt] to {!Pops_process.Vt.Lvt}
    (the fastest, leakiest class — the pre-multi-Vt behaviour). *)

val arity : t -> int

val min_cin : t -> float
(** Smallest available drive (fF per input): the process [cmin] — every
    cell's minimum instance presents one reference load per input. *)

val cpar : t -> cin:float -> float
(** Parasitic output capacitance of an instance (fF). *)

val area : t -> cin:float -> float
(** Total transistor width of an instance, um — the paper's area (and
    power) metric [Sigma W]. *)

val cin_of_area : t -> area:float -> float
(** Inverse of {!area}. *)

val pp : Format.formatter -> t -> unit
