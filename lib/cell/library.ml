type t = {
  tech : Pops_process.Tech.t;
  cells : (Gate_kind.t * Cell.t array) list;
      (* per kind, the three Vt variants indexed by [Vt.to_int] *)
  grid : float array;
}

let grid_multiples = [| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 24.; 32.; 48.; 64. |]

let make ?(kinds = Gate_kind.all) tech =
  let cells =
    List.map
      (fun kind ->
        (kind, Array.map (fun vt -> Cell.make ~vt tech kind) Pops_process.Vt.all))
      kinds
  in
  { tech; cells; grid = Array.map (fun m -> m *. tech.cmin) grid_multiples }

let tech t = t.tech

let find_variants t kind =
  match List.find_opt (fun (k, _) -> Gate_kind.equal k kind) t.cells with
  | Some (_, variants) -> variants
  | None -> raise Not_found

let find t kind = (find_variants t kind).(0)

let find_vt t kind vt = (find_variants t kind).(Pops_process.Vt.to_int vt)

let inverter t = find t Gate_kind.Inv

let cells t = List.map (fun (_, variants) -> variants.(0)) t.cells

let drive_grid t = Array.copy t.grid

let snap_cin t cin =
  let n = Array.length t.grid in
  if cin > t.grid.(n - 1) then cin
  else
    let rec go i = if t.grid.(i) >= cin then t.grid.(i) else go (i + 1) in
    go 0

let pp ppf t =
  Format.fprintf ppf "@[<v>library (%s):@ " t.tech.name;
  List.iter (fun (_, variants) -> Format.fprintf ppf "%a@ " Cell.pp variants.(0)) t.cells;
  Format.fprintf ppf "@]"
