(** Pseudo-random minimum-delay search — the paper's Fig. 2 foil.

    The paper compares its deterministic Tmin against "a pseudo-random
    sizing technique" (the industrial tool's minimum-delay mode): random
    multi-start hill climbing over the sizing vector.  It converges near
    the optimum but never quite reaches it and burns orders of magnitude
    more evaluations. *)

type result = {
  sizing : float array;
  delay : float;  (** best worst-polarity delay found, ps *)
  area : float;
  evaluations : int;
}

val minimum_delay :
  ?restarts:int -> ?steps:int -> ?seed:int64 -> Pops_delay.Path.t -> result
(** [restarts] random starting points (default 8), [steps] hill-climbing
    moves each (default [60 * path length]); a deterministic coordinate
    polish runs on the best point found.  Each restart draws from its own
    split stream ([Pops_util.Rng.split]) derived sequentially from [seed]
    (default [0x1AB5L]) and the restarts run concurrently on the domain
    pool, with the best-of reduction performed in restart order — the
    result is bit-identical for a given seed at any [POPS_DOMAINS]. *)
