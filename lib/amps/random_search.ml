module Path = Pops_delay.Path
module Rng = Pops_util.Rng
module Pool = Pops_util.Pool

type result = {
  sizing : float array;
  delay : float;
  area : float;
  evaluations : int;
}

let minimum_delay ?(restarts = 8) ?steps ?(seed = 0x1AB5L) path =
  let n = Path.length path in
  (* longer paths need proportionally more moves to converge *)
  let steps = match steps with Some s -> s | None -> max 400 (60 * n) in
  let cmin = path.Path.tech.Pops_process.Tech.cmin in
  (* one split child per restart, derived sequentially up front: each
     restart owns a reproducible stream, so the search result is the same
     at any domain count and under any scheduling *)
  let rng = Rng.create seed in
  let restart_rngs = Array.make restarts rng in
  for i = 0 to restarts - 1 do
    restart_rngs.(i) <- snd (Rng.split rng)
  done;
  (* deterministic per-gate polish: backward coordinate sweeps, each gate
     tried at a few multiplicative steps — the local refinement every
     industrial sizer runs after its global search *)
  let polish evaluations x d =
    let delay_of x =
      incr evaluations;
      Path.delay_worst path x
    in
    let x = ref x and d = ref d in
    for _ = 1 to 4 do
      for j = n - 1 downto 1 do
        List.iter
          (fun m ->
            let y = Array.copy !x in
            y.(j) <- y.(j) *. m;
            let y = Path.clamp_sizing path y in
            let dy = delay_of y in
            if dy < !d then begin
              x := y;
              d := dy
            end)
          [ 0.8; 0.92; 1.08; 1.25 ]
      done
    done;
    (!x, !d)
  in
  (* one restart: random initial sizing (log-uniform over two decades)
     followed by random multiplicative hill-climbing moves; each restart
     counts its own evaluations *)
  let restart rng =
    let evaluations = ref 0 in
    let delay_of x =
      incr evaluations;
      Path.delay_worst path x
    in
    let x =
      ref
        (Path.clamp_sizing path
           (Array.init n (fun _ -> cmin *. Rng.log_range rng 1. 100.)))
    in
    let d = ref (delay_of !x) in
    for _ = 1 to steps do
      let j = 1 + Rng.int rng (max 1 (n - 1)) in
      let y = Array.copy !x in
      y.(j) <- y.(j) *. Rng.log_range rng 0.7 1.45;
      let y = Path.clamp_sizing path y in
      let dy = delay_of y in
      if dy < !d then begin
        x := y;
        d := dy
      end
    done;
    (!d, !x, !evaluations)
  in
  (* fan the restarts out, then reduce in submission order: the earliest
     restart wins ties exactly as a sequential loop would *)
  let best =
    Pool.parallel_reduce ~map:restart
      ~combine:(fun best (d, x, evals) ->
        match best with
        | Some (db, xb, total) ->
          if db <= d then Some (db, xb, total + evals)
          else Some (d, x, total + evals)
        | None -> Some (d, x, evals))
      ~init:None restart_rngs
  in
  match best with
  | Some (d, x, evals) ->
    let evaluations = ref evals in
    let x, d = polish evaluations x d in
    {
      sizing = x;
      delay = d;
      area = Path.area path x;
      evaluations = !evaluations;
    }
  | None -> invalid_arg "Random_search.minimum_delay: restarts < 1"
