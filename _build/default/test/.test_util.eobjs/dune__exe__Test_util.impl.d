test/test_util.ml: Alcotest Array Float Format Fun Gen Hashtbl List Option Pops_util QCheck QCheck_alcotest Random String
