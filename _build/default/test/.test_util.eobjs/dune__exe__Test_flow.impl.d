test/test_flow.ml: Alcotest Float Pops_cell Pops_flow Pops_netlist Pops_process Pops_sta Printf QCheck QCheck_alcotest Random
