test/test_cell.ml: Alcotest Array Float Format List Pops_cell Pops_delay Pops_process Pops_util QCheck QCheck_alcotest Random String
