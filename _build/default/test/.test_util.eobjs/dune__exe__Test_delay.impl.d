test/test_delay.ml: Alcotest Array Float Format List Pops_cell Pops_delay Pops_process Pops_util Printf QCheck QCheck_alcotest Random String
