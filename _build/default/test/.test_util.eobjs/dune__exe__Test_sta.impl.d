test/test_sta.ml: Alcotest Array Float List Option Pops_amps Pops_cell Pops_circuits Pops_core Pops_delay Pops_netlist Pops_process Pops_sta Printf QCheck QCheck_alcotest Random String
