test/test_spice.ml: Alcotest Array Float Format Pops_cell Pops_core Pops_delay Pops_process Pops_spice Pops_util Printf QCheck QCheck_alcotest Random
