test/test_core.ml: Alcotest Array Float Format List Pops_cell Pops_core Pops_delay Pops_process Pops_util Printf QCheck QCheck_alcotest Random String
