test/test_netlist.ml: Alcotest Array Float Fun Hashtbl Int64 List Pops_cell Pops_netlist Pops_process Pops_util Printf QCheck QCheck_alcotest Random String
