  $ pops tmin --gates inv,nand2,nor3,inv --cout 80
  $ pops tmin --gates inv,frobnicator
  $ pops size
  $ pops flimit | head -8
  $ pops size --gates inv,inv,inv --cout 40 --tc 10
  $ cat > tiny.bench <<'BENCH'
  > INPUT(a)
  > INPUT(b)
  > OUTPUT(y)
  > n1 = NAND(a, b)
  > y = NOT(n1)
  > BENCH
  $ pops bench-file tiny.bench --out tiny_out.bench
  $ cat tiny_out.bench
