module Path = Pops_delay.Path
module Edge = Pops_delay.Edge
module Cell = Pops_cell.Cell
module Gk = Pops_cell.Gate_kind

type result = {
  stage_delays : float array;
  stage_transitions : float array;
  total_delay : float;
}

type stage_devices = {
  w_n_eff : float;  (** effective pulldown width after stack reduction, um *)
  w_p_eff : float;  (** effective pullup width, um *)
  c_m : float;  (** coupling capacitance, fF *)
  inverting : bool;
}

let devices_of_stage (tech : Pops_process.Tech.t) (st : Path.stage) ~cin ~edge_out =
  let cell = st.Path.cell in
  let kind = cell.Cell.kind in
  let win = cin /. tech.cg_per_um in
  let wn = win /. (1. +. cell.Cell.k) in
  let wp = cell.Cell.k *. win /. (1. +. cell.Cell.k) in
  let w_n_eff =
    Mosfet.stack_width ~factor:Cell.stack_factor_n wn ~n:(Gk.series_n kind)
  in
  let w_p_eff =
    Mosfet.stack_width ~factor:Cell.stack_factor_p wp ~n:(Gk.series_p kind)
  in
  let c_m = Pops_delay.Model.coupling_cap cell ~edge_out ~cin in
  { w_n_eff; w_p_eff; c_m; inverting = Gk.inverting kind }

(* Integrate one stage: input waveform vin, output settles to the rail
   opposite its start.  Returns the sampled output waveform. *)
let integrate_stage (tech : Pops_process.Tech.t) devices ~c_load ~vin ~edge_out ~steps =
  let vdd = tech.vdd in
  let nmos = Mosfet.nmos tech and pmos = Mosfet.pmos tech in
  let v_start, v_target =
    match edge_out with Edge.Falling -> (vdd, 0.) | Edge.Rising -> (0., vdd)
  in
  let c_node = c_load +. devices.c_m in
  (* drive-time estimate for the integration window *)
  let i_drive =
    match edge_out with
    | Edge.Falling -> Mosfet.current nmos ~w:devices.w_n_eff ~vgs:vdd ~vds:(vdd /. 2.)
    | Edge.Rising -> Mosfet.current pmos ~w:devices.w_p_eff ~vgs:vdd ~vds:(vdd /. 2.)
  in
  let i_drive = Float.max 1e-3 i_drive in
  let t_drive = 1000. *. c_node *. vdd /. i_drive in
  let t0 = Waveform.t_start vin in
  let simulate window =
    let dt = window /. float_of_int steps in
    let samples = Array.make (steps + 1) v_start in
    (* control voltages: for a non-inverting (behavioural) stage the
       internal inversion is folded in by swapping the control sense *)
    let control t =
      let v = Waveform.value vin t in
      if devices.inverting then v else vdd -. v
    in
    let deriv t vout =
      let vc = control t in
      let i_down =
        Mosfet.current nmos ~w:devices.w_n_eff ~vgs:vc ~vds:(Float.max 0. vout)
      in
      let i_up =
        Mosfet.current pmos ~w:devices.w_p_eff ~vgs:(vdd -. vc)
          ~vds:(Float.max 0. (vdd -. vout))
      in
      let miller =
        let dvin =
          if devices.inverting then Waveform.slope vin t else -.Waveform.slope vin t
        in
        devices.c_m *. dvin
      in
      (((i_up -. i_down) /. 1000.) +. miller) /. c_node
    in
    let v = ref v_start in
    for i = 0 to steps - 1 do
      let t = t0 +. (dt *. float_of_int i) in
      let k1 = deriv t !v in
      let k2 = deriv (t +. (dt /. 2.)) (!v +. (dt *. k1 /. 2.)) in
      let k3 = deriv (t +. (dt /. 2.)) (!v +. (dt *. k2 /. 2.)) in
      let k4 = deriv (t +. dt) (!v +. (dt *. k3)) in
      v := !v +. (dt /. 6. *. (k1 +. (2. *. k2) +. (2. *. k3) +. k4));
      v := Pops_util.Numerics.clamp ~lo:(-0.5) ~hi:(vdd +. 0.5) !v;
      samples.(i + 1) <- !v
    done;
    (Waveform.create ~t0 ~dt samples, !v)
  in
  (* settled = at the target rail, or past it in the drive direction
     (Miller injection can overshoot the rail and the model has no
     reverse-conduction path to bring it back exactly) *)
  let settled v_final =
    match edge_out with
    | Edge.Rising -> v_final >= v_target -. (0.05 *. vdd)
    | Edge.Falling -> v_final <= v_target +. (0.05 *. vdd)
  in
  let rec attempt window tries =
    let wave, v_final = simulate window in
    if settled v_final then wave
    else if tries > 0 then attempt (window *. 3.) (tries - 1)
    else
      failwith
        (Printf.sprintf "Transient: stage did not settle (v=%.2f, target=%.2f)"
           v_final v_target)
  in
  attempt (Waveform.t_end vin -. t0 +. (10. *. t_drive)) 2

let simulate_path ?(steps_per_stage = 2000) (path : Path.t) sizing =
  let tech = path.Path.tech in
  let vdd = tech.vdd in
  let x = Path.clamp_sizing path sizing in
  let n = Path.length path in
  let loads = Path.loads path x in
  let dt0 = Float.max 0.05 (path.Path.input_slope /. 200.) in
  let input =
    match path.Path.input_edge with
    | Edge.Rising ->
      Waveform.ramp ~t0:0. ~duration:path.Path.input_slope ~v_from:0. ~v_to:vdd ~dt:dt0
    | Edge.Falling ->
      Waveform.ramp ~t0:0. ~duration:path.Path.input_slope ~v_from:vdd ~v_to:0. ~dt:dt0
  in
  let stage_delays = Array.make n 0. in
  let stage_transitions = Array.make n 0. in
  let vin = ref input in
  let in_edge = ref path.Path.input_edge in
  for i = 0 to n - 1 do
    let edge_out = path.Path.edges.(i) in
    let devices = devices_of_stage tech path.Path.stages.(i) ~cin:x.(i) ~edge_out in
    let vout =
      integrate_stage tech devices ~c_load:loads.(i) ~vin:!vin ~edge_out
        ~steps:steps_per_stage
    in
    let mid = vdd /. 2. in
    let t_in =
      Waveform.crossing !vin ~level:mid ~rising:(Edge.equal !in_edge Edge.Rising)
    in
    let t_out =
      Waveform.crossing vout ~level:mid ~rising:(Edge.equal edge_out Edge.Rising)
    in
    (match (t_in, t_out) with
    | Some a, Some b -> stage_delays.(i) <- b -. a
    | Some _, None | None, Some _ | None, None ->
      failwith "Transient: missing 50% crossing");
    (match
       Waveform.transition_time vout ~vdd ~rising:(Edge.equal edge_out Edge.Rising)
     with
    | Some tr -> stage_transitions.(i) <- tr
    | None -> failwith "Transient: missing transition measurement");
    vin := vout;
    in_edge := edge_out
  done;
  let t_first =
    Waveform.crossing input ~level:(vdd /. 2.)
      ~rising:(Edge.equal path.Path.input_edge Edge.Rising)
  in
  let t_last =
    Waveform.crossing !vin ~level:(vdd /. 2.)
      ~rising:(Edge.equal path.Path.edges.(n - 1) Edge.Rising)
  in
  let total_delay =
    match (t_first, t_last) with
    | Some a, Some b -> b -. a
    | Some _, None | None, Some _ | None, None ->
      failwith "Transient: missing path crossing"
  in
  { stage_delays; stage_transitions; total_delay }

let simulate_path_worst ?steps_per_stage path sizing =
  let r1 = simulate_path ?steps_per_stage path sizing in
  let flipped = Path.with_input_edge path (Edge.flip path.Path.input_edge) in
  let r2 = simulate_path ?steps_per_stage flipped sizing in
  if r1.total_delay >= r2.total_delay then r1 else r2

let fo4 tech =
  let lib = Pops_cell.Library.make ~kinds:[ Gk.Inv ] tech in
  let path =
    Path.of_kinds ~lib ~c_out:(64. *. tech.Pops_process.Tech.cmin)
      [ Gk.Inv; Gk.Inv; Gk.Inv ]
  in
  let cmin = tech.Pops_process.Tech.cmin in
  let sizing = [| cmin; 4. *. cmin; 16. *. cmin |] in
  let r1 = simulate_path path sizing in
  let flipped = Path.with_input_edge path (Edge.flip path.Path.input_edge) in
  let r2 = simulate_path flipped sizing in
  0.5 *. (r1.stage_delays.(1) +. r2.stage_delays.(1))
