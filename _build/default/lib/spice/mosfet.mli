(** Alpha-power-law MOSFET model (Sakurai–Newton).

    The transient simulator needs a transistor I–V law that is
    {e independent} of the closed-form delay model it validates: here the
    drain current is the nonlinear alpha-power law

    [Idsat = k * W * (Vgs - Vth)^alpha]

    with a linear region below the saturation voltage
    [Vd0 = vd0_coeff * (Vgs - Vth)^(alpha/2)].  Velocity saturation makes
    [alpha ~ 1.3] at 0.25 um (long-channel square law would be 2). *)

type params = {
  vth : float;  (** threshold, V *)
  k : float;  (** transconductance, uA/um at 1 V overdrive *)
  alpha : float;
  vd0_coeff : float;  (** saturation-voltage coefficient *)
}

val nmos : Pops_process.Tech.t -> params
val pmos : Pops_process.Tech.t -> params

val current : params -> w:float -> vgs:float -> vds:float -> float
(** Drain current in uA for a device of width [w] um; 0 below threshold;
    [vgs] and [vds] are magnitudes (caller handles polarity). *)

val stack_width : factor:float -> float -> n:int -> float
(** Effective single-device width of an [n]-high series stack of
    [w]-wide devices: [w / (1 + factor * (n-1))].  Use
    {!Pops_cell.Cell.stack_factor_n} / [stack_factor_p] for the factor —
    the same physical statement (N stacks soften under velocity
    saturation, P stacks do not) that the analytical weights encode. *)
