(** Sampled voltage waveforms for the transient simulator.

    A waveform is a uniformly sampled trace starting at [t0] with step
    [dt]; values before the first sample hold the first value, values
    after the last hold the last (DC settling). *)

type t

val create : t0:float -> dt:float -> float array -> t
(** @raise Invalid_argument on an empty sample array or [dt <= 0.]. *)

val ramp : t0:float -> duration:float -> v_from:float -> v_to:float -> dt:float -> t
(** Saturated linear ramp from [v_from] to [v_to] over [duration] ps,
    padded with one flat sample on each side. *)

val value : t -> float -> float
(** Linear interpolation, clamped at both ends. *)

val slope : t -> float -> float
(** Finite-difference slope (V/ps) at a time. *)

val t_start : t -> float
val t_end : t -> float

val crossing : t -> level:float -> rising:bool -> float option
(** First time the waveform crosses [level] in the given direction
    (linear interpolation between samples). *)

val transition_time : t -> vdd:float -> rising:bool -> float option
(** 20%–80% crossing interval scaled to the full swing (divided by 0.6) —
    comparable to the analytical model's extrapolated transition time. *)
