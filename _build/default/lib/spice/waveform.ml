type t = { t0 : float; dt : float; samples : float array }

let create ~t0 ~dt samples =
  if Array.length samples = 0 then invalid_arg "Waveform.create: empty";
  if dt <= 0. then invalid_arg "Waveform.create: dt <= 0";
  { t0; dt; samples }

let ramp ~t0 ~duration ~v_from ~v_to ~dt =
  let n = max 2 (int_of_float (ceil (duration /. dt))) in
  let samples =
    Array.init (n + 2) (fun i ->
        if i = 0 then v_from
        else if i > n then v_to
        else v_from +. ((v_to -. v_from) *. float_of_int (i - 1) /. float_of_int (n - 1)))
  in
  (* first sample sits one dt before the ramp foot *)
  { t0 = t0 -. dt; dt; samples }

let t_start w = w.t0
let t_end w = w.t0 +. (w.dt *. float_of_int (Array.length w.samples - 1))

let value w t =
  let n = Array.length w.samples in
  let pos = (t -. w.t0) /. w.dt in
  if pos <= 0. then w.samples.(0)
  else if pos >= float_of_int (n - 1) then w.samples.(n - 1)
  else
    let i = int_of_float pos in
    let frac = pos -. float_of_int i in
    ((1. -. frac) *. w.samples.(i)) +. (frac *. w.samples.(i + 1))

let slope w t =
  let h = w.dt /. 2. in
  (value w (t +. h) -. value w (t -. h)) /. (2. *. h)

let crossing w ~level ~rising =
  let n = Array.length w.samples in
  let rec go i =
    if i >= n - 1 then None
    else
      let a = w.samples.(i) and b = w.samples.(i + 1) in
      let crossed = if rising then a <= level && b > level else a >= level && b < level in
      if crossed then
        let frac = (level -. a) /. (b -. a) in
        Some (w.t0 +. (w.dt *. (float_of_int i +. frac)))
      else go (i + 1)
  in
  go 0

let transition_time w ~vdd ~rising =
  let lo = 0.2 *. vdd and hi = 0.8 *. vdd in
  let t_lo = crossing w ~level:(if rising then lo else hi) ~rising in
  let t_hi = crossing w ~level:(if rising then hi else lo) ~rising in
  match (t_lo, t_hi) with
  | Some a, Some b when b > a -> Some ((b -. a) /. 0.6)
  | Some _, Some _ | Some _, None | None, Some _ | None, None -> None
