(** Gate-level transient simulation of a sized path — the HSPICE
    stand-in.

    Each stage is simulated as a static-CMOS stage: the switching input
    ramps (the previous stage's simulated output waveform), the pull-up
    and pull-down networks conduct per the alpha-power law (including the
    short-circuit interval where both are on), series stacks are reduced
    to effective widths, and the input-to-output coupling capacitance
    injects the Miller current.  The output node ODE

    [(C_L + C_M) dVout/dt = I_pullup - I_pulldown + C_M dVin/dt]

    is integrated with fixed-step RK4.  Delays are measured at the 50%
    crossings and transitions as scaled 20–80% intervals, exactly as a
    SPICE deck would.

    The simulator shares the process parameters with the analytical model
    but none of its equations: eq. (1)–(3) are linear closed forms, this
    is a nonlinear I–V integration.  Agreement between the two is the
    validation the paper performs against HSPICE. *)

type result = {
  stage_delays : float array;  (** 50%-to-50% per stage, ps *)
  stage_transitions : float array;  (** scaled 20–80% output transitions, ps *)
  total_delay : float;  (** input 50% to final output 50%, ps *)
}

val simulate_path :
  ?steps_per_stage:int -> Pops_delay.Path.t -> float array -> result
(** [simulate_path path sizing] drives the path with a ramp of the path's
    [input_slope] and polarity and propagates stage by stage.
    [steps_per_stage] (default 2000) controls integration resolution.
    @raise Failure if a stage output never settles (diagnostic, should
    not happen on valid paths). *)

val simulate_path_worst : ?steps_per_stage:int -> Pops_delay.Path.t -> float array -> result
(** {!simulate_path} for both input polarities, returning the slower. *)

val fo4 : Pops_process.Tech.t -> float
(** Simulated FO4 inverter delay (both edges averaged) — used to check
    the calibration of the analytical time unit [tau]. *)
