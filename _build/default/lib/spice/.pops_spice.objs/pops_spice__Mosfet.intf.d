lib/spice/mosfet.mli: Pops_process
