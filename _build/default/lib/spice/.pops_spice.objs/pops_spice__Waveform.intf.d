lib/spice/waveform.mli:
