lib/spice/waveform.ml: Array
