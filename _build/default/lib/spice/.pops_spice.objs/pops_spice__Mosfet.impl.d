lib/spice/mosfet.ml: Float Pops_process
