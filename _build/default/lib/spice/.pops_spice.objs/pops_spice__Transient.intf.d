lib/spice/transient.mli: Pops_delay Pops_process
