lib/spice/transient.ml: Array Float Mosfet Pops_cell Pops_delay Pops_process Pops_util Printf Waveform
