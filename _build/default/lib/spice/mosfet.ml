type params = { vth : float; k : float; alpha : float; vd0_coeff : float }

let nmos (tech : Pops_process.Tech.t) =
  { vth = tech.vtn; k = tech.kn; alpha = tech.alpha; vd0_coeff = 0.64 }

let pmos (tech : Pops_process.Tech.t) =
  {
    vth = tech.vtp;
    k = Pops_process.Tech.kp tech;
    (* holes are less velocity-saturated: closer to the square law *)
    alpha = Float.min 2. (tech.alpha +. 0.25);
    vd0_coeff = 0.75;
  }

let current p ~w ~vgs ~vds =
  if vgs <= p.vth || vds <= 0. || w <= 0. then 0.
  else
    let vov = vgs -. p.vth in
    let idsat = p.k *. w *. (vov ** p.alpha) in
    let vd0 = p.vd0_coeff *. (vov ** (p.alpha /. 2.)) in
    if vds >= vd0 then idsat
    else
      let r = vds /. vd0 in
      idsat *. r *. (2. -. r)

let stack_width ~factor w ~n = w /. (1. +. (factor *. float_of_int (n - 1)))
