lib/process/tech.mli: Format
