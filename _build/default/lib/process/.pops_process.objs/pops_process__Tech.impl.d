lib/process/tech.ml: Format
