lib/util/rng.mli:
