lib/util/numerics.mli:
