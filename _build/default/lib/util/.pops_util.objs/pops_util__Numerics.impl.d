lib/util/numerics.ml: Array Float List Printf
