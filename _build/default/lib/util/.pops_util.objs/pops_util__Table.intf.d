lib/util/table.mli:
