lib/util/stats.mli:
