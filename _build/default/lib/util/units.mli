(** Unit conventions and formatting.

    Internal units throughout the code base:
    - time: picoseconds (ps)
    - capacitance: femtofarads (fF)
    - voltage: volts (V)
    - current: microamps (uA)  — so that uA / fF = V / ps holds exactly
    - transistor width / area: micrometers (um) of gate width

    These are the natural magnitudes of a 0.25 um process, keeping all
    numbers near 1 and the ODE integration well conditioned. *)

val ps_of_ns : float -> float
val ns_of_ps : float -> float
val ff_of_pf : float -> float
val pf_of_ff : float -> float

val pp_time : Format.formatter -> float -> unit
(** Prints a time in ps with an adaptive unit (ps or ns). *)

val pp_cap : Format.formatter -> float -> unit
(** Prints a capacitance in fF with an adaptive unit (fF or pF). *)

val pp_width : Format.formatter -> float -> unit
(** Prints a transistor width in um. *)

val pp_percent : Format.formatter -> float -> unit
(** Prints a ratio as a signed percentage, e.g. [0.13 -> "+13.0%"]. *)
