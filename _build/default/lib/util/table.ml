type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  header : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  {
    title;
    header = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let ncols t = List.length t.header

let add_row t cells =
  let n = ncols t in
  let len = List.length cells in
  let cells =
    if len = n then cells
    else if len < n then cells @ List.init (n - len) (fun _ -> "")
    else List.filteri (fun i _ -> i < n) cells
  in
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  let update_widths = function
    | Separator -> ()
    | Cells cs ->
      List.iteri
        (fun i c -> if i < Array.length widths then widths.(i) <- max widths.(i) (String.length c))
        cs
  in
  List.iter update_widths rows;
  let buf = Buffer.create 1024 in
  let pad i c =
    let w = widths.(i) in
    let n = w - String.length c in
    match t.aligns.(i) with
    | Left -> c ^ String.make n ' '
    | Right -> String.make n ' ' ^ c
  in
  let hline () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri (fun i c -> Buffer.add_string buf ("| " ^ pad i c ^ " ")) cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  hline ();
  line t.header;
  hline ();
  List.iter (function Separator -> hline () | Cells cs -> line cs) rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_time ps =
  if Float.abs ps >= 1000. then Printf.sprintf "%.3f ns" (ps /. 1000.)
  else Printf.sprintf "%.1f ps" ps
