let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.
  else
    let ys = sorted xs in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then ys.(lo)
    else
      let w = rank -. float_of_int lo in
      ((1. -. w) *. ys.(lo)) +. (w *. ys.(hi))

let median xs = percentile xs 50.

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty";
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty";
  Array.fold_left Float.max xs.(0) xs

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    Array.iter (fun x -> assert (x > 0.)) xs;
    exp (Array.fold_left (fun acc x -> acc +. log x) 0. xs /. float_of_int n)
  end
