(** Small summary-statistics helpers for the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0. when n < 2. *)

val median : float array -> float
(** Median (does not mutate its argument); 0. on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation between
    order statistics; 0. on the empty array. *)

val minimum : float array -> float
(** Smallest element. @raise Invalid_argument on the empty array. *)

val maximum : float array -> float
(** Largest element. @raise Invalid_argument on the empty array. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values; 0. on the empty array. *)
