(** ASCII table rendering for the benchmark harness.

    The bench executable prints every reproduced paper table/figure as a
    plain-text table; this module keeps the layout logic in one place. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Appends a row.  Rows shorter than the header are right-padded with
    empty cells; longer rows are truncated.  *)

val add_separator : t -> unit
(** Appends a horizontal rule between row groups. *)

val render : t -> string
(** Renders the table; every call reflects all rows added so far. *)

val print : t -> unit
(** [render] then print to stdout followed by a newline. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell with [decimals] fraction digits (default 2). *)

val cell_time : float -> string
(** Format a time-in-ps cell adaptively (ps / ns). *)
