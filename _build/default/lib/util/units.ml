let ps_of_ns x = x *. 1000.
let ns_of_ps x = x /. 1000.
let ff_of_pf x = x *. 1000.
let pf_of_ff x = x /. 1000.

let pp_time ppf t =
  if Float.abs t >= 1000. then Format.fprintf ppf "%.3f ns" (ns_of_ps t)
  else Format.fprintf ppf "%.1f ps" t

let pp_cap ppf c =
  if Float.abs c >= 1000. then Format.fprintf ppf "%.3f pF" (pf_of_ff c)
  else Format.fprintf ppf "%.2f fF" c

let pp_width ppf w = Format.fprintf ppf "%.2f um" w

let pp_percent ppf r = Format.fprintf ppf "%+.1f%%" (r *. 100.)
